package mycroft

import (
	"fmt"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/logdiag"
	"mycroft/internal/obs"
	"mycroft/internal/otrace"
	"mycroft/internal/perfdiag"
	"mycroft/internal/sim"
)

// Modality names a diagnosis channel (re-exported from core).
type Modality = core.Modality

const (
	// ModalityTracepoint is the paper's 112-byte trace pipeline.
	ModalityTracepoint = core.ModalityTracepoint
	// ModalityLog is the template-clustered training-log channel.
	ModalityLog = core.ModalityLog
	// ModalityPerf is the black-box iteration-timing channel.
	ModalityPerf = core.ModalityPerf
)

// Modalities returns the valid channel set, in canonical order.
func Modalities() []Modality { return core.Modalities() }

// Evidence is one channel's contribution to a fused verdict.
type Evidence = core.Evidence

// FusionConfig tunes evidence fusion (see core.FusionConfig).
type FusionConfig = core.FusionConfig

// Fusion outcomes, for metrics and assertions.
const (
	FusionSingle       = core.FusionSingle
	FusionCorroborated = core.FusionCorroborated
	FusionConflicted   = core.FusionConflicted
)

// Vias for channel-sourced verdicts.
const (
	ViaLogTemplate  = core.ViaLogTemplate
	ViaPerfEnvelope = core.ViaPerfEnvelope
)

// ChannelAnomaly is the payload of an EventLogAnomaly: one channel finding,
// published as it happens (before, and independent of, any report it may
// escalate into).
type ChannelAnomaly = core.LogAnomaly

// LogLine is one structured training-log line on the ingest path. At is
// virtual time; zero means "now".
type LogLine struct {
	Rank  Rank
	At    time.Duration
	Level string // "info", "warn" or "error" (anything else reads as info)
	Text  string
}

// IterationSample is one per-rank iteration-completion timestamp — the only
// signal the black-box perf channel needs.
type IterationSample struct {
	Rank Rank
	Iter int
	At   time.Duration
}

// IngestResult reports one channel ingest batch: how many items were folded
// in and how many anomalies the triggered analysis pass currently sees.
type IngestResult struct {
	Job       JobID
	Accepted  int
	Anomalies int
}

// ChannelInfo is one diagnosis channel's counters inside a
// ChannelStatsResult.
type ChannelInfo struct {
	Channel Modality
	// Ingested counts the channel's native unit: trace records, log lines or
	// timing samples.
	Ingested uint64
	// Anomalies counts channel findings (triggers for the tracepoint channel,
	// published anomalies for log/perf).
	Anomalies uint64
	// Reports counts verdicts this channel delivered (by Via).
	Reports uint64
	// Templates is the live log-template cluster count (log channel only).
	Templates int
}

// FusionInfo summarizes evidence fusion for one job.
type FusionInfo struct {
	Window time.Duration
	// Outcomes counts delivered reports by fusion outcome
	// (single/corroborated/conflicted).
	Outcomes map[string]uint64
	// LastOutcome and LastConfidence describe the most recent report.
	LastOutcome    string
	LastConfidence float64
}

// ChannelStatsResult is the Client.ChannelStats answer: per-channel counters
// in canonical order plus the job's fusion summary.
type ChannelStatsResult struct {
	Job      JobID
	Channels []ChannelInfo
	Fusion   FusionInfo
}

// channelEventInterval rate-limits repeated EventLogAnomaly publication for
// the same finding; channelReportMute rate-limits report escalation per
// channel (an ongoing anomaly is one incident, not one per ingest batch).
const (
	channelEventInterval = 5 * time.Second
	channelReportMute    = 30 * time.Second
)

// jobChannels is one hosted job's non-tracepoint diagnosis state: the two
// detectors, the shared fusion, and the rate-limit/counter bookkeeping.
type jobChannels struct {
	logs   *logdiag.Detector
	perf   *perfdiag.Detector
	fusion *core.Fusion

	lastEvent map[string]time.Duration // anomaly key → last publish time
	muteUntil map[Modality]time.Duration

	logIngested, perfIngested   uint64
	logAnomalies, perfAnomalies uint64
	logReports, perfReports     uint64

	fusionOutcomes map[string]uint64
	lastOutcome    string
	lastConfidence float64

	// Prometheus twins of the counters above (set by registerJobMetrics).
	mIngest, mAnomalies, mReports map[Modality]*obs.Counter
}

func newJobChannels(world int, fusion *core.Fusion) *jobChannels {
	return &jobChannels{
		logs:           logdiag.New(world, logdiag.Config{}),
		perf:           perfdiag.New(world, perfdiag.Config{}),
		fusion:         fusion,
		lastEvent:      make(map[string]time.Duration),
		muteUntil:      make(map[Modality]time.Duration),
		fusionOutcomes: make(map[string]uint64),
	}
}

// registerChannelMetrics attaches the per-channel instrument set, labeled
// {job, channel}.
func (s *Service) registerChannelMetrics(h *JobHandle) {
	jl := obs.L("job", string(h.ID))
	ch := h.channels
	ch.mIngest = make(map[Modality]*obs.Counter)
	ch.mAnomalies = make(map[Modality]*obs.Counter)
	ch.mReports = make(map[Modality]*obs.Counter)
	for _, m := range []Modality{ModalityLog, ModalityPerf} {
		ml := obs.L("channel", string(m))
		ch.mIngest[m] = s.reg.Counter("mycroft_channel_ingest_total",
			"Channel-native items ingested (log lines, timing samples).", jl, ml)
		ch.mAnomalies[m] = s.reg.Counter("mycroft_channel_anomalies_total",
			"Channel anomalies published.", jl, ml)
		ch.mReports[m] = s.reg.Counter("mycroft_channel_reports_total",
			"Verdicts escalated by the channel.", jl, ml)
	}
}

// IngestLogs feeds structured training-log lines into a job's log-diagnosis
// channel and runs one analysis pass. It is the tracepoint-free ingest path:
// a job that never emits a single trace record still reaches verdicts (and
// remediation) through here.
func (s *Service) IngestLogs(job JobID, lines []LogLine) (IngestResult, error) {
	h, err := s.resolveJob(job)
	if err != nil {
		return IngestResult{}, err
	}
	ch := h.channels
	now := s.Eng.Now()
	for _, l := range lines {
		at := sim.Time(l.At)
		if l.At <= 0 {
			at = now
		}
		ch.logs.Ingest(logdiag.Line{Rank: l.Rank, At: at, Level: l.Level, Text: l.Text})
	}
	ch.logIngested += uint64(len(lines))
	if c := ch.mIngest[ModalityLog]; c != nil {
		c.Add(uint64(len(lines)))
	}
	// Any channel's ingest proves the job is alive: bump the heartbeat
	// watermark the health ladder reads.
	h.lastIngest = s.Now()
	n := h.analyzeLogs(now)
	return IngestResult{Job: h.ID, Accepted: len(lines), Anomalies: n}, nil
}

// IngestTimings feeds per-rank iteration timestamps into a job's black-box
// perf channel and runs one analysis pass.
func (s *Service) IngestTimings(job JobID, samples []IterationSample) (IngestResult, error) {
	h, err := s.resolveJob(job)
	if err != nil {
		return IngestResult{}, err
	}
	ch := h.channels
	now := s.Eng.Now()
	for _, smp := range samples {
		at := sim.Time(smp.At)
		if smp.At <= 0 {
			at = now
		}
		ch.perf.Ingest(perfdiag.Sample{Rank: smp.Rank, Iter: smp.Iter, At: at})
	}
	ch.perfIngested += uint64(len(samples))
	if c := ch.mIngest[ModalityPerf]; c != nil {
		c.Add(uint64(len(samples)))
	}
	h.lastIngest = s.Now()
	n := h.analyzePerf(now)
	return IngestResult{Job: h.ID, Accepted: len(samples), Anomalies: n}, nil
}

// analyzeLogs runs one log-channel analysis pass under its pipeline span:
// publish every divergence as an EventLogAnomaly (rate-limited), feed the
// fusion, and escalate the strongest warn/error anomaly into a Report.
func (h *JobHandle) analyzeLogs(now sim.Time) int {
	ch := h.channels
	span := h.tracer.StageAt(otrace.StageLogAnalyze, now)
	anoms := ch.logs.Analyze(now)
	h.tracer.Annotate(span, "", fmt.Sprintf("%d line(s) clustered into %d template(s), %d anomalous",
		ch.logs.Ingested(), ch.logs.Templates(), len(anoms)))
	h.tracer.EndAt(span, now)
	for _, a := range anoms {
		ch.fusion.Observe(Evidence{
			Channel: ModalityLog, Rank: a.Rank, Category: a.Category,
			Score: a.Score, At: now, Detail: a.Template,
		})
		h.publishAnomaly(ChannelAnomaly{
			Channel: ModalityLog, Rank: a.Rank, Ranks: a.Ranks,
			Template: a.Template, Level: a.Level, Count: a.Count, Fleet: a.Fleet,
			Score: a.Score, Category: a.Category, At: now,
		})
	}
	for _, a := range anoms {
		// Info-level chatter never escalates on its own: it corroborates via
		// the fusion but a verdict needs at least a warning.
		if a.Level == "info" {
			continue
		}
		h.escalateLog(a, now)
		break
	}
	return len(anoms)
}

// analyzePerf runs one perf-channel analysis pass under its pipeline span.
func (h *JobHandle) analyzePerf(now sim.Time) int {
	ch := h.channels
	span := h.tracer.StageAt(otrace.StagePerfAnalyze, now)
	finds := ch.perf.Analyze(now)
	h.tracer.Annotate(span, "", fmt.Sprintf("%d sample(s) enveloped, %d finding(s)",
		ch.perf.Ingested(), len(finds)))
	h.tracer.EndAt(span, now)
	for _, f := range finds {
		cat := CatComputeStraggler
		ch.fusion.Observe(Evidence{
			Channel: ModalityPerf, Rank: f.Rank, Category: cat,
			Score: f.Ratio, At: now, Detail: string(f.Kind),
		})
		h.publishAnomaly(ChannelAnomaly{
			Channel: ModalityPerf, Rank: f.Rank, Ranks: f.Ranks,
			Template: string(f.Kind), Level: "warn",
			Count: f.Persisted, Fleet: h.WorldSize(),
			Score: f.Ratio, Category: cat, At: now,
		})
		h.escalatePerf(f, now)
	}
	return len(finds)
}

// publishAnomaly dispatches one EventLogAnomaly, rate-limited per
// (channel, finding, rank) so a persistent anomaly re-announces at most every
// channelEventInterval.
func (h *JobHandle) publishAnomaly(a ChannelAnomaly) {
	ch := h.channels
	key := fmt.Sprintf("%s|%s|%d", a.Channel, a.Template, a.Rank)
	at := time.Duration(a.At)
	if last, ok := ch.lastEvent[key]; ok && at-last < channelEventInterval {
		return
	}
	ch.lastEvent[key] = at
	switch a.Channel {
	case ModalityLog:
		ch.logAnomalies++
	case ModalityPerf:
		ch.perfAnomalies++
	}
	if c := ch.mAnomalies[a.Channel]; c != nil {
		c.Inc()
	}
	h.svc.dispatch(Event{Job: h.ID, Kind: EventLogAnomaly, At: at, LogAnomaly: &a})
}

// channelMuted gates report escalation per channel and arms the mute on
// passage.
func (ch *jobChannels) channelMuted(m Modality, now sim.Time) bool {
	at := time.Duration(now)
	if at < ch.muteUntil[m] {
		return true
	}
	ch.muteUntil[m] = at + channelReportMute
	return false
}

// escalateLog turns one log divergence into a full Report on the standard
// delivery path: subscribers, remediation and cluster replication see it
// exactly like a tracepoint verdict.
func (h *JobHandle) escalateLog(a logdiag.Anomaly, now sim.Time) {
	ch := h.channels
	if ch.channelMuted(ModalityLog, now) {
		return
	}
	ip := h.Job.Cluster.IPOf(a.Rank)
	rep := core.Report{
		Trigger: core.Trigger{
			Kind: core.TriggerFailure, Rank: a.Rank, IP: ip, At: now,
			Reason: fmt.Sprintf("log-template divergence: %q", a.Template),
		},
		Suspect: a.Rank, SuspectIP: ip, Category: a.Category,
		Via: ViaLogTemplate, AnalyzedAt: now,
		Details: fmt.Sprintf("log channel: template %q (%s) concentrated on rank %d (%d/%d in window, score %.2f)",
			a.Template, a.Level, a.Rank, a.Count, a.Fleet, a.Score),
		Chain:   []core.Hop{{Suspect: a.Rank, Via: ViaLogTemplate}},
		Victims: victimsBeside(a.Ranks, a.Rank),
	}
	h.Backend.DeliverExternal(rep, Evidence{
		Channel: ModalityLog, Rank: a.Rank, Category: a.Category,
		Score: a.Score, At: now, Detail: a.Template,
	})
	ch.logReports++
	if c := ch.mReports[ModalityLog]; c != nil {
		c.Inc()
	}
}

// escalatePerf turns one timing-envelope finding into a Report.
func (h *JobHandle) escalatePerf(f perfdiag.Finding, now sim.Time) {
	ch := h.channels
	if ch.channelMuted(ModalityPerf, now) {
		return
	}
	ip := h.Job.Cluster.IPOf(f.Rank)
	rep := core.Report{
		Trigger: core.Trigger{
			Kind: core.TriggerStraggler, Rank: f.Rank, IP: ip, At: now,
			Reason: fmt.Sprintf("timing envelope: %s", f.Kind),
		},
		Suspect: f.Rank, SuspectIP: ip, Category: CatComputeStraggler,
		Via: ViaPerfEnvelope, AnalyzedAt: now,
		Details: fmt.Sprintf("perf channel: %s on rank %d (median %.3fs vs fleet %.3fs, ×%.2f over %d passes)",
			f.Kind, f.Rank, f.RankMedian, f.FleetMedian, f.Ratio, f.Persisted),
		Chain:   []core.Hop{{Suspect: f.Rank, Via: ViaPerfEnvelope}},
		Victims: victimsBeside(f.Ranks, f.Rank),
	}
	h.Backend.DeliverExternal(rep, Evidence{
		Channel: ModalityPerf, Rank: f.Rank, Category: CatComputeStraggler,
		Score: f.Ratio, At: now, Detail: string(f.Kind),
	})
	ch.perfReports++
	if c := ch.mReports[ModalityPerf]; c != nil {
		c.Inc()
	}
}

// victimsBeside returns the affected set minus the suspect (already sorted by
// the detectors), the Report.Victims convention.
func victimsBeside(ranks []Rank, suspect Rank) []Rank {
	var out []Rank
	for _, r := range ranks {
		if r != suspect {
			out = append(out, r)
		}
	}
	return out
}

// observeFusion audits one delivered report's fusion outcome (the dispatch
// hook). Labels are register-on-demand like remediation outcomes.
func (h *JobHandle) observeFusion(rep Report) {
	ch := h.channels
	out := rep.FusionOutcome()
	ch.fusionOutcomes[out]++
	ch.lastOutcome = out
	ch.lastConfidence = rep.Confidence
	h.svc.reg.Counter("mycroft_fusion_total", "Delivered reports by fusion outcome.",
		obs.L("job", string(h.ID)), obs.L("outcome", out)).Inc()
}

// ChannelStats reports a job's per-channel diagnosis counters and fusion
// summary. Part of the Client interface.
func (s *Service) ChannelStats(job JobID) (ChannelStatsResult, error) {
	h, err := s.resolveJob(job)
	if err != nil {
		return ChannelStatsResult{}, err
	}
	ch := h.channels
	var traceReports, logReports, perfReports uint64
	for _, rep := range h.Backend.Reports() {
		switch rep.Via {
		case ViaLogTemplate:
			logReports++
		case ViaPerfEnvelope:
			perfReports++
		default:
			traceReports++
		}
	}
	res := ChannelStatsResult{
		Job: h.ID,
		Channels: []ChannelInfo{
			{Channel: ModalityTracepoint, Ingested: h.Job.DB.Ingested(),
				Anomalies: uint64(len(h.Backend.Triggers())), Reports: traceReports},
			{Channel: ModalityLog, Ingested: ch.logIngested,
				Anomalies: ch.logAnomalies, Reports: logReports, Templates: ch.logs.Templates()},
			{Channel: ModalityPerf, Ingested: ch.perfIngested,
				Anomalies: ch.perfAnomalies, Reports: perfReports},
		},
		Fusion: FusionInfo{
			Window:         ch.fusion.Config().Window,
			Outcomes:       make(map[string]uint64, len(ch.fusionOutcomes)),
			LastOutcome:    ch.lastOutcome,
			LastConfidence: ch.lastConfidence,
		},
	}
	for k, v := range ch.fusionOutcomes {
		res.Fusion.Outcomes[k] = v
	}
	return res, nil
}
