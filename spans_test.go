package mycroft_test

import (
	"testing"

	"mycroft"
	"mycroft/internal/scenario"
)

// TestIncidentSpanTreeCoversPipeline is the tracing acceptance criterion:
// one incident in the pp-cascade builtin must yield a single causal span
// tree covering ingest → detect → RCA → publish → remediate, with the
// consecutive stage durations summing exactly to the end-to-end
// trigger→verified latency. pp-cascade carries no Remediate block, so the
// self-healing policy is attached here the way an operator would.
func TestIncidentSpanTreeCoversPipeline(t *testing.T) {
	spec, ok := scenario.Lookup("pp-cascade")
	if !ok {
		t.Fatal("no pp-cascade builtin")
	}
	p, err := scenario.Prepare(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc := p.Service
	job := p.Handles[0].ID
	if err := svc.AttachPolicy(job, mycroft.SelfHealPolicy()); err != nil {
		t.Fatal(err)
	}
	p.Start()
	svc.Run(p.Horizon())

	res, err := svc.QuerySpans(mycroft.SpanQuery{Job: job, Incident: "trigger-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("no spans for incident trigger-1")
	}

	byStage := make(map[string][]mycroft.Span)
	for _, s := range res.Spans {
		byStage[s.Stage] = append(byStage[s.Stage], s)
	}
	if n := len(byStage[mycroft.StageIncident]); n != 1 {
		t.Fatalf("incident trigger-1 has %d root spans, want exactly 1", n)
	}
	root := byStage[mycroft.StageIncident][0]
	if root.Parent != 0 {
		t.Errorf("incident root has parent %d, want none", root.Parent)
	}
	if root.End == 0 {
		t.Fatal("incident root never closed: remediation did not verify within the horizon")
	}

	// Every pipeline stage must appear in the tree, parented under the root.
	one := func(stage string) mycroft.Span {
		t.Helper()
		spans := byStage[stage]
		if len(spans) == 0 {
			t.Fatalf("incident tree has no %q span (stages present: %v)", stage, stages(byStage))
		}
		s := spans[0]
		if s.Parent != root.ID {
			t.Errorf("%s span #%d parented under #%d, want root #%d", stage, s.ID, s.Parent, root.ID)
		}
		return s
	}
	upload := one(mycroft.StageUpload)
	ingest := one(mycroft.StageIngest)
	detect := one(mycroft.StageDetect)
	rca := one(mycroft.StageRCA)
	publish := one(mycroft.StagePublish)
	one(mycroft.StageDeliver)
	apply := one(mycroft.StageApply)
	verify := one(mycroft.StageVerify)

	// The adopted ingest batch is the data the detector fired on: it must
	// precede (or coincide with) the trigger, and detection is downstream of
	// analysis stages in virtual-time order.
	if upload.Start > root.Start || ingest.Start > root.Start {
		t.Errorf("adopted batch after the trigger: upload %v, ingest %v, trigger %v",
			upload.Start, ingest.Start, root.Start)
	}
	if detect.Start != root.Start {
		t.Errorf("detect at %v, want trigger instant %v", detect.Start, root.Start)
	}
	if publish.Start != rca.End {
		t.Errorf("publish at %v, want RCA completion %v", publish.Start, rca.End)
	}

	// Per-stage latency attribution: the contiguous stages partition the
	// incident exactly — RCA, then the remedy backoff/apply, then the verify
	// window, with no gaps and no overlap.
	if rca.Start != root.Start || apply.Start != rca.End || verify.Start != apply.End || verify.End != root.End {
		t.Errorf("stage timeline not contiguous: root [%v %v] rca [%v %v] apply [%v %v] verify [%v %v]",
			root.Start, root.End, rca.Start, rca.End, apply.Start, apply.End, verify.Start, verify.End)
	}
	if sum := rca.Dur() + apply.Dur() + verify.Dur(); sum != root.Dur() {
		t.Errorf("stage durations sum to %v, want end-to-end %v (rca %v + apply %v + verify %v)",
			sum, root.Dur(), rca.Dur(), apply.Dur(), verify.Dur())
	}

	// End-to-end anchors: the root is trigger→verified, matching the audit log.
	rem, err := svc.QueryRemediations(mycroft.RemediationQuery{Jobs: []mycroft.JobID{job}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rem.Attempts) == 0 {
		t.Fatal("no remediation attempts recorded")
	}
	last := rem.Attempts[len(rem.Attempts)-1]
	if root.End.String() != last.ResolvedAt.String() {
		t.Errorf("root closes at %v, audit log resolves at %v", root.End, last.ResolvedAt)
	}
	if verify.Detail != "succeeded" {
		t.Errorf("verify span outcome %q, want succeeded", verify.Detail)
	}
}

func stages(m map[string][]mycroft.Span) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
