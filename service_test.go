package mycroft

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestServiceMultiJobDeterministic is the acceptance criterion for the
// multi-tenant API: four concurrent jobs on one engine, two of them
// faulted, and the full report stream is byte-identical across runs of the
// same seed.
func TestServiceMultiJobDeterministic(t *testing.T) {
	run := func() string {
		svc := NewService(ServiceOptions{Seed: 11})
		for i := 0; i < 4; i++ {
			if _, err := svc.AddJob("", JobOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		svc.Start()
		j0, _ := svc.Job("job-0")
		j2, _ := svc.Job("job-2")
		j0.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
		j2.Inject(Fault{Kind: GPUHang, Rank: 1, At: 20 * time.Second})
		svc.Run(50 * time.Second)
		defer svc.Stop()

		var b strings.Builder
		res, err := svc.QueryReports(ReportQuery{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Reports {
			fmt.Fprintf(&b, "%s: %v\n", r.Job, r.Report)
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("multi-job run not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "job-0") || !strings.Contains(a, "job-2") {
		t.Fatalf("expected verdicts for job-0 and job-2, got:\n%s", a)
	}
	if strings.Contains(a, "job-1:") || strings.Contains(a, "job-3:") {
		t.Fatalf("healthy tenants produced verdicts:\n%s", a)
	}
}

func TestServiceJobManagement(t *testing.T) {
	svc := NewService(ServiceOptions{})
	h := svc.MustAddJob("alpha", JobOptions{})
	if h.ID != "alpha" || h.WorldSize() != 8 {
		t.Fatalf("handle = %v world %d", h.ID, h.WorldSize())
	}
	if _, err := svc.AddJob("alpha", JobOptions{}); err == nil {
		t.Fatal("duplicate job id accepted")
	}
	if _, err := svc.AddJob("bad", JobOptions{Topo: TopoConfig{Nodes: 1, GPUsPerNode: 1, TP: 2, PP: 1, DP: 1}}); err == nil {
		t.Fatal("bad topo accepted")
	}
	auto := svc.MustAddJob("", JobOptions{})
	if auto.ID != "job-1" {
		t.Fatalf("auto id = %q, want job-1", auto.ID)
	}
	if got := svc.Jobs(); len(got) != 2 || got[0] != "alpha" || got[1] != "job-1" {
		t.Fatalf("Jobs = %v", got)
	}
	// Auto-generated ids probe past explicitly taken names.
	svc.MustAddJob("job-2", JobOptions{})
	if h := svc.MustAddJob("", JobOptions{}); h.ID != "job-3" {
		t.Fatalf("auto id = %q, want job-3 (job-2 taken)", h.ID)
	}
	if _, ok := svc.Job("nope"); ok {
		t.Fatal("unknown job reported ok")
	}
}

// TestServiceAddJobWhileRunning: the always-on service accepts tenants
// mid-run; a job added at t=10s starts immediately and trains.
func TestServiceAddJobWhileRunning(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 3})
	svc.MustAddJob("first", JobOptions{})
	svc.Start()
	svc.Run(10 * time.Second)
	late := svc.MustAddJob("late", JobOptions{})
	svc.Run(20 * time.Second)
	if late.Job.IterationsDone() == 0 {
		t.Fatal("late-added job never iterated")
	}
}

func TestSubscribeFilters(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 2})
	svc.MustAddJob("a", JobOptions{})
	svc.MustAddJob("b", JobOptions{})

	all := svc.Subscribe(EventFilter{})
	onlyB := svc.Subscribe(EventFilter{Jobs: []JobID{"b"}})
	reports := svc.Subscribe(EventFilter{Kinds: []EventKind{EventReport}})
	rank5 := svc.Subscribe(EventFilter{Ranks: []Rank{5}, Kinds: []EventKind{EventReport}})
	netCat := svc.Subscribe(EventFilter{Categories: []Category{CatNetworkSendPath, CatNetworkDegrade}})
	early := svc.Subscribe(EventFilter{To: 10 * time.Second})

	var pushed []Event
	svc.Subscribe(EventFilter{Kinds: []EventKind{EventTrigger}}).Each(func(e Event) { pushed = append(pushed, e) })

	svc.Start()
	ja, _ := svc.Job("a")
	ja.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(45 * time.Second)
	svc.Stop()

	if all.Len() == 0 {
		t.Fatal("unfiltered stream saw nothing")
	}
	for _, e := range onlyB.Drain() {
		if e.Job != "b" {
			t.Fatalf("job filter leaked %v", e)
		}
	}
	reps := reports.Drain()
	if len(reps) == 0 {
		t.Fatal("no reports streamed")
	}
	for _, e := range reps {
		if e.Kind != EventReport || e.Report == nil {
			t.Fatalf("kind filter leaked %v", e)
		}
	}
	for _, e := range rank5.Drain() {
		if e.Report.Suspect != 5 {
			t.Fatalf("rank filter leaked suspect %d", e.Report.Suspect)
		}
	}
	nc := netCat.Drain()
	if len(nc) == 0 {
		t.Fatal("category filter saw no network verdicts")
	}
	for _, e := range nc {
		if e.Report.Category != CatNetworkSendPath && e.Report.Category != CatNetworkDegrade {
			t.Fatalf("category filter leaked %v", e)
		}
	}
	for _, e := range early.Drain() {
		if e.At > 10*time.Second {
			t.Fatalf("time filter leaked %v", e)
		}
	}
	if len(pushed) == 0 {
		t.Fatal("push handler saw no triggers")
	}
	// Lifecycle events: job/backend started and stopped for both jobs.
	var phases []string
	for _, e := range all.Drain() {
		if e.Kind == EventLifecycle {
			phases = append(phases, string(e.Job)+":"+e.Phase)
		}
	}
	for _, want := range []string{
		"a:" + PhaseJobStarted, "a:" + PhaseBackendStarted, "a:" + PhaseJobStopped,
		"b:" + PhaseJobStarted, "b:" + PhaseBackendStopped,
	} {
		found := false
		for _, p := range phases {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("lifecycle %q missing in %v", want, phases)
		}
	}
}

func TestStreamCloseAndNext(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 4})
	svc.MustAddJob("x", JobOptions{})
	st := svc.Subscribe(EventFilter{Kinds: []EventKind{EventLifecycle}})
	svc.Start()
	if e, ok := st.Next(); !ok || e.Phase != PhaseJobStarted {
		t.Fatalf("Next = %v %v", e, ok)
	}
	st.Close()
	before := st.Len()
	svc.Stop() // would emit job-stopped; the stream is closed
	if st.Len() != before {
		t.Fatal("closed stream still receiving")
	}
}

func TestQueryTraceService(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 5})
	svc.MustAddJob("a", JobOptions{})
	svc.MustAddJob("b", JobOptions{})
	svc.Start()
	svc.Run(10 * time.Second)

	if _, err := svc.QueryTrace(TraceQuery{}); err == nil {
		t.Fatal("ambiguous job accepted with two tenants")
	}
	if _, err := svc.QueryTrace(TraceQuery{Job: "zzz"}); err == nil {
		t.Fatal("unknown job accepted")
	}
	res, err := svc.QueryTrace(TraceQuery{Job: "a", Ranks: []Rank{0}, Kinds: []RecordKind{RecordCompletion}})
	if err != nil || len(res.Records) == 0 {
		t.Fatalf("completion query: %v, %d records", err, len(res.Records))
	}
	for _, r := range res.Records {
		if r.Kind != RecordCompletion || r.Rank != 0 {
			t.Fatalf("predicate leak: %+v", r)
		}
	}
	// Pagination walks the same set as one unpaged query.
	var paged int
	q := TraceQuery{Job: "a", Limit: 100}
	for {
		page, err := svc.QueryTrace(q)
		if err != nil {
			t.Fatal(err)
		}
		paged += len(page.Records)
		if page.Next == nil {
			break
		}
		q.Cursor = page.Next
	}
	whole, _ := svc.QueryTrace(TraceQuery{Job: "a"})
	if paged != len(whole.Records) || paged == 0 {
		t.Fatalf("paged %d vs whole %d", paged, len(whole.Records))
	}

	// Single-tenant services may omit the job id.
	solo := NewService(ServiceOptions{Seed: 5})
	solo.MustAddJob("only", JobOptions{})
	solo.Start()
	solo.Run(5 * time.Second)
	r, err := solo.QueryTrace(TraceQuery{})
	if err != nil || r.Job != "only" || len(r.Records) == 0 {
		t.Fatalf("solo query: %v job=%s n=%d", err, r.Job, len(r.Records))
	}
}

func TestQueryTriggersAndReports(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 6})
	svc.MustAddJob("a", JobOptions{})
	svc.MustAddJob("b", JobOptions{})
	svc.Start()
	ja, _ := svc.Job("a")
	ja.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(45 * time.Second)

	trs, err := svc.QueryTriggers(TriggerQuery{Kinds: []TriggerKind{TriggerFailure, TriggerStraggler}})
	if err != nil || trs.Total == 0 {
		t.Fatalf("triggers: %v total=%d", err, trs.Total)
	}
	for _, tr := range trs.Triggers {
		if tr.Job != "a" {
			t.Fatalf("healthy job triggered: %v", tr)
		}
	}
	if got, _ := svc.QueryTriggers(TriggerQuery{Jobs: []JobID{"b"}}); got.Total != 0 {
		t.Fatalf("job filter: %d triggers on b", got.Total)
	}
	if _, err := svc.QueryTriggers(TriggerQuery{Jobs: []JobID{"zzz"}}); err == nil {
		t.Fatal("unknown job accepted")
	}

	reps, err := svc.QueryReports(ReportQuery{Suspects: []Rank{5}})
	if err != nil || reps.Total == 0 {
		t.Fatalf("reports: %v total=%d", err, reps.Total)
	}
	for _, r := range reps.Reports {
		if r.Suspect != 5 {
			t.Fatalf("suspect filter leaked %v", r)
		}
	}
	// Time-window query the old API could not express: nothing before the
	// fault.
	if got, _ := svc.QueryReports(ReportQuery{To: 15 * time.Second}); got.Total != 0 {
		t.Fatalf("%d verdicts before the fault", got.Total)
	}
	// Offset/limit pagination is consistent with Total.
	page, _ := svc.QueryReports(ReportQuery{Limit: 1})
	if len(page.Reports) != 1 {
		t.Fatalf("limit ignored: %d reports", len(page.Reports))
	}
	rest, _ := svc.QueryReports(ReportQuery{Offset: 1})
	if len(rest.Reports) != page.Total-1 {
		t.Fatalf("offset pagination: %d + 1 != total %d", len(rest.Reports), page.Total)
	}
}

// TestOptionsTopoMismatch: a caller-supplied Train.Topo that disagrees with
// Options.Topo must error instead of being silently clobbered.
func TestOptionsTopoMismatch(t *testing.T) {
	tc := TrainConfig{Topo: TopoConfig{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 2, DP: 4}}
	_, err := NewSystem(Options{
		Topo:  TopoConfig{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		Train: &tc,
	})
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("topo mismatch not rejected: %v", err)
	}

	// Agreeing topologies pass.
	tc2 := TrainConfig{Topo: TopoConfig{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}}
	if _, err := NewSystem(Options{Topo: tc2.Topo, Train: &tc2}); err != nil {
		t.Fatalf("matching topos rejected: %v", err)
	}

	// Train.Topo alone sizes the job.
	tc3 := TrainConfig{Topo: TopoConfig{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 2, DP: 4}}
	sys, err := NewSystem(Options{Train: &tc3})
	if err != nil {
		t.Fatal(err)
	}
	if sys.WorldSize() != 16 {
		t.Fatalf("world = %d, want 16 from Train.Topo", sys.WorldSize())
	}
}

// TestQueryDependenciesAndBlastRadius drives a NIC-down fault and reads the
// dependency graph through the service layer: wait edges appear, the blast
// radius names the victims, and the DOT export is deterministic.
func TestQueryDependenciesAndBlastRadius(t *testing.T) {
	run := func() (DependencyResult, []Rank, string) {
		svc := NewService(ServiceOptions{Seed: 3})
		job := svc.MustAddJob("j", JobOptions{})
		svc.Start()
		job.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
		svc.Run(30 * time.Second)
		defer svc.Stop()
		deps, err := svc.QueryDependencies(DependencyQuery{})
		if err != nil {
			t.Fatal(err)
		}
		br, err := svc.BlastRadius("j", 5)
		if err != nil {
			t.Fatal(err)
		}
		return deps, br, job.DependencyDOT()
	}
	deps, br, dot := run()
	if len(deps.Edges) == 0 {
		t.Fatal("stuck job has no dependency edges")
	}
	if len(br) == 0 {
		t.Fatalf("NIC-down blast radius empty")
	}
	for _, r := range br {
		if r == 5 {
			t.Fatalf("suspect in its own blast radius: %v", br)
		}
	}
	if !strings.Contains(dot, "digraph mycroft_deps") {
		t.Fatalf("DOT export malformed:\n%s", dot)
	}
	_, _, dot2 := run()
	if dot != dot2 {
		t.Fatal("DOT export not deterministic across same-seed runs")
	}
}

// TestDependencyQueryFilters exercises DependencyQuery's Ranks filter and
// the error paths.
func TestDependencyQueryFilters(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 3})
	job := svc.MustAddJob("j", JobOptions{})
	svc.Start()
	job.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(30 * time.Second)
	defer svc.Stop()

	all, err := svc.QueryDependencies(DependencyQuery{})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := svc.QueryDependencies(DependencyQuery{Ranks: []Rank{5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Edges) == 0 || len(filtered.Edges) >= len(all.Edges) {
		t.Fatalf("rank filter: %d of %d edges", len(filtered.Edges), len(all.Edges))
	}
	for _, e := range filtered.Edges {
		if e.From.Rank != 5 && e.To.Rank != 5 {
			t.Fatalf("edge does not touch rank 5: %+v", e)
		}
	}
	if _, err := svc.QueryDependencies(DependencyQuery{Job: "nope"}); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := svc.BlastRadius("nope", 0); err == nil {
		t.Fatal("unknown job accepted by BlastRadius")
	}
}

// TestReportChainVictimsFilters covers the new report-shaped event filters:
// Victims (blast-radius membership) and MinChain (cascade selection).
func TestReportChainVictimsFilters(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 5})
	job := svc.MustAddJob("j", JobOptions{})
	victimStream := svc.Subscribe(EventFilter{Victims: []Rank{5}})
	deepStream := svc.Subscribe(EventFilter{MinChain: 99})
	svc.Start()
	job.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(40 * time.Second)
	defer svc.Stop()

	reps := job.Reports()
	if len(reps) == 0 {
		t.Fatal("no reports")
	}
	if len(reps[0].Chain) == 0 {
		t.Fatalf("report has no chain: %+v", reps[0])
	}
	// Every report fingers rank 5 (as suspect or victim), so the victim
	// stream sees exactly the report events; triggers/lifecycle are dropped.
	if victimStream.Len() != len(reps) {
		t.Fatalf("victim stream got %d events, want %d", victimStream.Len(), len(reps))
	}
	for _, e := range victimStream.Drain() {
		if e.Kind != EventReport {
			t.Fatalf("non-report event passed Victims filter: %v", e)
		}
	}
	// An absurd chain bound matches nothing.
	if deepStream.Len() != 0 {
		t.Fatalf("MinChain 99 matched %d events", deepStream.Len())
	}
}
