// Benchmark harness: one benchmark per reproduced table/figure (E1–E9; the
// experiments live in internal/experiments) plus micro-benchmarks for the
// implementation claims of §4.2
// and §6.1 (M1–M5). Experiment benches print the regenerated table once per
// run via b.Log; `go test -bench . -benchtime 1x -v` shows them all, and
// cmd/mycroft-bench prints the same tables directly.
//
// This file is an external test package so it can pull in internal/scenario
// (which itself imports mycroft) without an import cycle.
package mycroft_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"mycroft"
	"mycroft/internal/clouddb"
	"mycroft/internal/core"
	"mycroft/internal/depgraph"
	"mycroft/internal/experiments"
	"mycroft/internal/faults"
	"mycroft/internal/obs"
	"mycroft/internal/otrace"
	"mycroft/internal/scenario"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// BenchmarkServiceMultiJob tracks multi-tenant throughput: one Service
// hosting four concurrent 8-GPU jobs on a shared engine, simulating 30
// virtual seconds per iteration with a fault on one tenant.
func BenchmarkServiceMultiJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		svc := mycroft.NewService(mycroft.ServiceOptions{Seed: 1})
		for j := 0; j < 4; j++ {
			svc.MustAddJob("", mycroft.JobOptions{})
		}
		svc.Start()
		lead, _ := svc.Job("job-0")
		lead.Inject(mycroft.Fault{Kind: faults.NICDown, Rank: 5, At: 15 * time.Second})
		svc.Run(30 * time.Second)
		svc.Stop()
		if len(lead.Triggers()) == 0 {
			b.Fatal("fault undetected")
		}
	}
}

// BenchmarkRemediationLoop measures the closed loop end to end: a nic-down
// is injected, diagnosed, recovered by the attached policy and verified
// quiet. Custom metrics split the loop: detect (inject→report), act
// (report→action applied) and verify (applied→succeeded) latency, all in
// virtual seconds.
func BenchmarkRemediationLoop(b *testing.B) {
	var detect, act, verify time.Duration
	for i := 0; i < b.N; i++ {
		svc := mycroft.NewService(mycroft.ServiceOptions{Seed: 1})
		job := svc.MustAddJob("llm", mycroft.JobOptions{
			Backend: mycroft.BackendConfig{RearmDelay: 10 * time.Second},
		})
		if err := svc.AttachPolicy("llm", mycroft.SelfHealPolicy()); err != nil {
			b.Fatal(err)
		}
		const faultAt = 15 * time.Second
		svc.Start()
		job.Inject(mycroft.Fault{Kind: faults.NICDown, Rank: 5, At: faultAt})
		svc.Run(75 * time.Second)
		svc.Stop()
		log := job.RemediationLog()
		if len(log) == 0 {
			b.Fatal("no remediation attempts")
		}
		healed := log[len(log)-1]
		if healed.Outcome != mycroft.RemedySucceeded {
			b.Fatalf("loop did not close: %v", healed)
		}
		detect += time.Duration(log[0].ReportedAt) - faultAt
		act += time.Duration(healed.AppliedAt - healed.ReportedAt)
		verify += time.Duration(healed.ResolvedAt - healed.AppliedAt)
	}
	n := float64(b.N)
	b.ReportMetric(detect.Seconds()/n, "vs-detect/op")
	b.ReportMetric(act.Seconds()/n, "vs-act/op")
	b.ReportMetric(verify.Seconds()/n, "vs-verify/op")
}

// BenchmarkQueryWindow measures the Algorithm 1/2 access pattern — "recent
// window, specific kind, across ranks" — on the sharded store versus the
// pre-refactor access pattern, which fetched each rank's full history and
// filtered caller-side (what cmd/mycroft-trace and ad-hoc tooling did
// before the unified query layer existed).
func BenchmarkQueryWindow(b *testing.B) {
	eng := sim.NewEngine(1)
	db := clouddb.New(eng, 0)
	// 32 ranks × 10 minutes of logs at 10 Hz: the window under query is
	// ~0.2% of the retained history.
	const ranks, hz, secs = 32, 10, 600
	for s := 0; s < secs*hz; s++ {
		ts := sim.Time(time.Duration(s) * 100 * time.Millisecond)
		batch := make([]trace.Record, 0, ranks)
		for r := topo.Rank(0); r < ranks; r++ {
			kind := trace.KindState
			if s%4 == 3 {
				kind = trace.KindCompletion
			}
			batch = append(batch, trace.Record{
				Kind: kind, Time: ts, Rank: r, CommID: uint64(r%4 + 1), IP: "10.0.0.1",
			})
		}
		db.Ingest(batch)
	}
	now := sim.Time(time.Duration(secs) * time.Second)
	from := now.Add(-time.Second)

	b.Run("sharded-query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := db.Query(clouddb.Query{
				Kinds: []trace.Kind{trace.KindCompletion}, From: from, To: now,
			})
			if len(res.Records) == 0 {
				b.Fatal("empty window")
			}
		}
	})
	b.Run("fullscan-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var got []trace.Record
			for _, r := range db.Ranks() {
				for _, rec := range db.QueryRank(r, 0, now) {
					if rec.Kind == trace.KindCompletion && rec.Time > from {
						got = append(got, rec)
					}
				}
			}
			if len(got) == 0 {
				b.Fatal("empty window")
			}
		}
	})
}

// BenchmarkServeQuery measures what the wire costs: the same Client queries
// answered by an in-process Service versus by a mycroft-serve endpoint over
// real HTTP (JSON marshal both ways, loopback transport, mutex
// serialization). The delta is the per-query overhead a deployment pays for
// running Mycroft as a shared daemon instead of a linked-in library.
func BenchmarkServeQuery(b *testing.B) {
	build := func() *mycroft.Service {
		svc := mycroft.NewService(mycroft.ServiceOptions{Seed: 1})
		svc.MustAddJob("trace", mycroft.JobOptions{})
		svc.Start()
		h, _ := svc.Job("trace")
		h.Inject(mycroft.Fault{Kind: faults.NICDown, Rank: 5, At: 15 * time.Second})
		svc.Run(40 * time.Second)
		return svc
	}
	svc := build()
	srv := mycroft.NewServer(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rc, err := mycroft.Dial(ts.URL)
	if err != nil {
		b.Fatal(err)
	}

	bench := func(name string, c mycroft.Client) {
		b.Run(name+"/reports", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := c.QueryReports(mycroft.ReportQuery{})
				if err != nil || res.Total == 0 {
					b.Fatalf("reports: total %d err %v", res.Total, err)
				}
			}
		})
		b.Run(name+"/trace-page", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := c.QueryTrace(mycroft.TraceQuery{Ranks: []mycroft.Rank{5}, Limit: 256})
				if err != nil || len(res.Records) == 0 {
					b.Fatalf("trace: %d records err %v", len(res.Records), err)
				}
			}
		})
	}
	bench("in-process", svc)
	bench("http", rc)
}

// BenchmarkDepGraphBuild compares the two ways to answer a trigger's
// dependency questions (where is this rank stuck, who is blocked by whom)
// over a long-retention store:
//
//   - incremental: the depgraph frontier is maintained as batches ingest, so
//     each trigger costs only the graph walk;
//   - rescan-baseline: rebuild the frontier from the trace store on every
//     trigger — the pattern the pre-depgraph RCA used, cost proportional to
//     retained history instead of to the answer.
func BenchmarkDepGraphBuild(b *testing.B) {
	const ranks, hz, secs = 32, 10, 600
	mkBatch := func(s int) []trace.Record {
		ts := sim.Time(time.Duration(s) * 100 * time.Millisecond)
		batch := make([]trace.Record, 0, ranks)
		for r := topo.Rank(0); r < ranks; r++ {
			kind := trace.KindState
			if s%4 == 3 {
				kind = trace.KindCompletion
			}
			stuck := int64(0)
			if s > secs*hz-100 { // the last ~10 s: everything wedges mid-op
				kind = trace.KindState
				stuck = int64(time.Duration(s-(secs*hz-100)) * 100 * time.Millisecond)
			}
			batch = append(batch, trace.Record{
				Kind: kind, Time: ts, Rank: r, CommID: uint64(r%4 + 1), IP: "10.0.0.1",
				Op: trace.OpAllReduce, OpSeq: uint64(s / 8), TotalChunks: 128, GPUReady: 64,
				RDMATransmitted: 60, RDMADone: 58, StuckNs: stuck,
			})
		}
		return batch
	}
	eng := sim.NewEngine(1)
	db := clouddb.New(eng, 0)
	live := depgraph.New()
	db.AddIngestObserver(live.ObserveBatch)
	for s := 0; s < secs*hz; s++ {
		db.Ingest(mkBatch(s))
	}
	now := sim.Time(time.Duration(secs) * time.Second)
	from := now.Add(-5 * time.Second)

	query := func(b *testing.B, g *depgraph.Graph) {
		if _, ok := g.StuckComm(1, 0, from, now); !ok {
			b.Fatal("no stuck comm")
		}
		if len(g.Victims(1)) == 0 {
			b.Fatal("no victims")
		}
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			query(b, live)
		}
	})
	b.Run("rescan-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := depgraph.New()
			db.Replay(g.Observe)
			query(b, g)
		}
	})
}

// BenchmarkScenarioRun tracks scenario-runner throughput: one full run of
// the canonical single-fault scenario (build, simulate 75 virtual seconds,
// assert) per iteration.
func BenchmarkScenarioRun(b *testing.B) {
	spec, ok := scenario.Lookup("nic-down")
	if !ok {
		b.Fatal("nic-down builtin missing")
	}
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("scenario failed:\n%s", res.Render())
		}
	}
}

// --- E-benchmarks: the paper's tables and figures ---

func BenchmarkE1_CapabilityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE1(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE2_FaultInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE2(2)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE3_DetectionCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE3(28)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE4_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE4(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE5_Propagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE5([]int{16, 64, 256})
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE6_DataVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE6(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE7_Sampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE7(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE8_Thresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE8(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkE9_Integration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE9(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

// --- M-benchmarks: implementation claims ---

// M1: the tracepoint write path ("virtually no overhead", §4.2). This is
// real wall-clock cost of one fixed-size record into the preallocated ring.
func BenchmarkM1_TracepointWrite(b *testing.B) {
	ring := trace.NewRing(1 << 16)
	rec := trace.Record{
		Kind: trace.KindState, IP: "10.0.0.1", CommID: 1, Rank: 3,
		Op: trace.OpAllReduce, TotalChunks: 128, GPUReady: 64, RDMATransmitted: 60, RDMADone: 58,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.OpSeq = uint64(i)
		ring.Emit(rec)
	}
}

// M2: record encode/decode (the fixed 112-byte wire format).
func BenchmarkM2_RecordMarshal(b *testing.B) {
	rec := trace.Record{Kind: trace.KindState, IP: "10.0.0.1", CommID: 1, Rank: 3, Op: trace.OpAllReduce}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := rec.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var out trace.Record
		if err := out.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// M3: ring drain throughput (the per-host agent's read path).
func BenchmarkM3_RingDrain(b *testing.B) {
	ring := trace.NewRing(1 << 14)
	rd := ring.NewReader()
	rec := trace.Record{Kind: trace.KindState}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			ring.Emit(rec)
		}
		if got := rd.Drain(); len(got) != 64 {
			b.Fatalf("drained %d", len(got))
		}
	}
}

// M4: cloud-DB ingest + group query (the backend's data access path).
func BenchmarkM4_DBIngestQuery(b *testing.B) {
	eng := sim.NewEngine(1)
	db := clouddb.New(eng, 0)
	batch := make([]trace.Record, 64)
	ts := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			ts += 1000
			batch[j] = trace.Record{Kind: trace.KindState, Time: ts, Rank: topo.Rank(j % 8), CommID: 1, IP: "10.0.0.1"}
		}
		db.Ingest(batch)
		if got := db.QueryGroup(1, ts-64000, ts); len(got) == 0 {
			b.Fatal("empty query")
		}
	}
}

// M5: one full Algorithm 1 evaluation pass plus Algorithm 2 failure analysis
// over a realistic stuck-state database (seconds-level analysis claim).
func BenchmarkM5_TriggerAndRCA(b *testing.B) {
	eng := sim.NewEngine(1)
	db := clouddb.New(eng, 0)
	// A stuck 32-rank group: 30 s of state logs at 10 Hz per rank.
	ts := sim.Time(0)
	for s := 0; s < 300; s++ {
		ts = sim.Time(time.Duration(s) * 100 * time.Millisecond)
		var batch []trace.Record
		for r := topo.Rank(0); r < 32; r++ {
			stuck := int64(0)
			if s > 150 {
				stuck = int64(time.Duration(s-150) * 100 * time.Millisecond)
			}
			batch = append(batch, trace.Record{
				Kind: trace.KindState, Time: ts, Rank: r, CommID: 1,
				IP: topo.IP("10.0.0.1"), Op: trace.OpAllReduce, OpSeq: 7,
				TotalChunks: 256, GPUReady: 100, RDMATransmitted: 100, RDMADone: 96,
				StuckNs: stuck,
			})
		}
		db.Ingest(batch)
	}
	eng.RunUntil(ts)
	bk := core.NewBackend(eng, db, core.SampleWorld(32, 10), core.Config{})
	tr := core.Trigger{Kind: core.TriggerFailure, Rank: 0, IP: "10.0.0.1", At: ts, CommID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Evaluate(ts)
		rep := bk.AnalyzeFailure(tr)
		if rep.Suspect < 0 {
			b.Fatal("no suspect")
		}
	}
}

// --- Obs-benchmarks: the observability plane's hot-path budget ---

// BenchmarkObsCounter is the instrument primitive itself: one atomic
// increment, allocation-free — the cost every instrumented event pays.
func BenchmarkObsCounter(b *testing.B) {
	reg := obs.New()
	c := reg.Counter("bench_events_total", "Benchmark counter.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	b.StopTimer()
	if c.Value() != uint64(b.N) {
		b.Fatalf("counter %d after %d Incs", c.Value(), b.N)
	}
}

// BenchmarkIngestInstrumented prices the observability hooks on the M4
// ingest path: identical 64-record batch ingest bare, with metrics
// instruments on the store, and with the pipeline span tracer attached on
// top. The acceptance budget for each instrumented path is a ≤5%
// regression over bare.
func BenchmarkIngestInstrumented(b *testing.B) {
	run := func(b *testing.B, instrumented, spanned bool) {
		eng := sim.NewEngine(1)
		db := clouddb.New(eng, 0)
		if instrumented {
			reg := obs.New()
			db.SetMetrics(&clouddb.Metrics{
				Records:      reg.Counter("mycroft_ingest_records_total", "Records ingested."),
				Bytes:        reg.Counter("mycroft_ingest_bytes_total", "Bytes ingested."),
				Batches:      reg.Counter("mycroft_ingest_batches_total", "Batches accepted."),
				Pruned:       reg.Counter("mycroft_store_pruned_records_total", "Records pruned."),
				Queries:      reg.Counter("mycroft_queries_total", "Queries served."),
				QueryLatency: reg.Histogram("mycroft_query_latency_seconds", "Query latency.", obs.LatencyBuckets),
			})
		}
		if spanned {
			db.SetTracer(otrace.NewTracer(otrace.NewRecorder(otrace.DefaultCapacity, eng.Now), "bench"))
		}
		batch := make([]trace.Record, 64)
		ts := sim.Time(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range batch {
				ts += 1000
				batch[j] = trace.Record{Kind: trace.KindState, Time: ts, Rank: topo.Rank(j % 8), CommID: 1, IP: "10.0.0.1"}
			}
			db.Ingest(batch)
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, false, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true, false) })
	b.Run("instrumented+spans", func(b *testing.B) { run(b, true, true) })
}

// Ablation benches for the backend's design knobs (§9 heuristics): virtual
// end-to-end detection latency under different knobs, reported as
// ns/op of simulated runtime (lower = same work simulated faster) with the
// detection latency logged.
func benchDetection(b *testing.B, mutate func(*core.Config, *experiments.JobProfile)) {
	cfg := core.Config{}
	profile := experiments.ComputeHeavy
	mutate(&cfg, &profile)
	var lastDetect time.Duration
	for i := 0; i < b.N; i++ {
		c := experiments.RunCase(int64(i+1), experiments.SmallTestbed(),
			faults.Spec{Kind: faults.NICDown, Rank: 5}, 15*time.Second, 30*time.Second)
		if !c.Detected {
			b.Fatal("undetected")
		}
		lastDetect = c.DetectLatency
	}
	b.Logf("detection latency: %v", lastDetect)
}

func BenchmarkAblation_DetectionDefault(b *testing.B) {
	benchDetection(b, func(*core.Config, *experiments.JobProfile) {})
}

func BenchmarkAblation_UploadLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationUploadLatency(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkAblation_StateLogPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationStatePeriod(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkAblation_Channels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationChannels(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}

func BenchmarkAblation_ChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationChunkSize(1)
		if i == 0 {
			b.Log("\n" + r.Table())
		}
	}
}
