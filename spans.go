package mycroft

import (
	"time"

	"mycroft/internal/otrace"
)

// Span re-exports the pipeline span record so downstream users need only
// this package. Spans carry both virtual (Start/End) and wall-clock
// (WallStart/WallEnd) timestamps; deterministic surfaces render only the
// virtual fields.
type Span = otrace.Span

// SpanID identifies one recorded span (monotonic per job; 0 = none).
type SpanID = otrace.SpanID

// Pipeline stage labels, re-exported for query filters and renderers.
const (
	StageIncident    = otrace.StageIncident
	StageUpload      = otrace.StageUpload
	StageIngest      = otrace.StageIngest
	StageDetect      = otrace.StageDetect
	StageRCA         = otrace.StageRCA
	StagePublish     = otrace.StagePublish
	StageDeliver     = otrace.StageDeliver
	StageApply       = otrace.StageApply
	StageVerify      = otrace.StageVerify
	StageReplicate   = otrace.StageReplicate
	StageLogAnalyze  = otrace.StageLogAnalyze
	StagePerfAnalyze = otrace.StagePerfAnalyze
)

// SpanQuery asks for pipeline spans from one job's recorder.
type SpanQuery struct {
	// Job addresses the hosted job (empty = the sole hosted job).
	Job JobID
	// Incident restricts to one causal tree by its cause label ("trigger-1").
	Incident string
	// Stage restricts to one pipeline stage ("rca", "remedy-apply", ...).
	Stage string
	// AfterID restricts to spans with ID > AfterID (incremental tailing).
	AfterID SpanID
	// MinWall keeps only closed spans at least this wall-clock wide — the
	// slow-op scan shape.
	MinWall time.Duration
	// Limit caps the returned page (0 = everything); Total still counts all.
	Limit int
}

// SpanResult is one query's answer: matching spans ascending by ID (record
// order), the total matched before Limit, and how many spans the ring has
// overwritten over the recorder's lifetime.
type SpanResult struct {
	Job     JobID
	Spans   []Span
	Total   int
	Dropped uint64
}

// QuerySpans answers a SpanQuery against the job's span recorder.
func (s *Service) QuerySpans(q SpanQuery) (SpanResult, error) {
	h, err := s.resolveJob(q.Job)
	if err != nil {
		return SpanResult{}, err
	}
	res := h.tracer.Recorder().Spans(otrace.Query{
		Cause: q.Incident, Stage: q.Stage, AfterID: q.AfterID, MinWall: q.MinWall, Limit: q.Limit,
	})
	return SpanResult{Job: h.ID, Spans: res.Spans, Total: res.Total, Dropped: res.Dropped}, nil
}
