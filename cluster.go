package mycroft

import (
	"fmt"
	"net/http"
	"slices"
	"sort"
	"sync"
	"time"

	"mycroft/internal/api"
	"mycroft/internal/cluster"
	"mycroft/internal/obs"
	"mycroft/internal/otrace"
	"mycroft/internal/sim"
)

// Cluster mode: N mycroft-serve daemons form one diagnosis plane. A
// consistent-hash ring (internal/cluster) places every job on a primary
// peer; the primary appends each job event to a seq-numbered log and
// asynchronously replicates the log, periodic snapshots and a best-effort
// trace mirror to the job's R ring successors over /v1/cluster/*. Replicas
// answer queries for followed jobs from the replicated state, and serve the
// same seq-resumable event tail the primary does — which is what lets a
// DialCluster client fail a live subscription over to a replica with exact
// drop accounting (drops are the seq gaps, nothing else).

// ClusterConfig enables cluster mode on a Server.
type ClusterConfig struct {
	// ID names the cluster; peers refuse requests carrying a different one.
	ID string
	// Self is this peer's name in Peers; SelfAddr its advertised base URL.
	Self     string
	SelfAddr string
	// Peers maps every member name (including self) to its base URL.
	Peers map[string]string
	// Replicas is R: how many ring successors each job replicates to.
	// Clamped to len(Peers)-1.
	Replicas int
	// VNodes tunes ring smoothness (0 = cluster.DefaultVNodes).
	VNodes int
	// LogCap bounds each per-job event log (0 = cluster.DefaultLogCap). The
	// log is the failover window: a resuming subscriber can only replay what
	// is still held, and anything older surfaces as counted drops.
	LogCap int
	// TraceMirror bounds the per-job trace mirror on replicas
	// (0 = cluster.DefaultTraceMirror).
	TraceMirror int
	// Batch caps entries and trace records per replication batch (0 = 512).
	Batch int
}

// serverCluster is the per-Server cluster state: ring membership, the local
// jobs' event logs, the replica store for followed jobs, and replication
// cursors per (peer, job).
type serverCluster struct {
	cfg   ClusterConfig
	node  *cluster.Node
	store *cluster.ReplicaStore
	tap   *Stream                     // unbounded feed of local job events
	logs  map[JobID]*cluster.EventLog // one per hosted job; immutable map
	hc    *http.Client

	ackMu sync.Mutex
	acks  map[string]*peerAck // "peer/job" → cursors

	reg           *obs.Registry
	mReplEvents   *obs.Counter
	mReplBatches  *obs.Counter
	mReplFailures *obs.Counter
	mHandoffs     *obs.Counter
	mTail         map[string]*obs.Counter // by source
}

type peerAck struct {
	seq     uint64
	traceNs int64
}

// EnableCluster turns this server into a cluster peer. Call after every job
// is added (the per-job logs are fixed here) and before the drive loop
// starts. Requires an in-process Service (a proxy has no engine to tap).
func (sv *Server) EnableCluster(cfg ClusterConfig) error {
	if sv.svc == nil {
		return fmt.Errorf("mycroft: cluster mode requires an in-process service")
	}
	peers := make(map[string]string, len(cfg.Peers))
	for name, addr := range cfg.Peers {
		peers[name] = normalizeBase(addr)
	}
	cfg.SelfAddr = normalizeBase(cfg.SelfAddr)
	node, err := cluster.NewNode(cfg.ID, cfg.Self, cfg.SelfAddr, peers, cfg.Replicas, cfg.VNodes)
	if err != nil {
		return err
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 512
	}
	cl := &serverCluster{
		cfg: cfg, node: node,
		store: cluster.NewReplicaStore(cfg.LogCap, cfg.TraceMirror),
		logs:  make(map[JobID]*cluster.EventLog),
		hc:    &http.Client{Timeout: 10 * time.Second},
		acks:  make(map[string]*peerAck),
	}
	res, err := sv.svc.ListJobs()
	if err != nil {
		return err
	}
	for _, j := range res.Jobs {
		cl.logs[j.ID] = cluster.NewEventLog(cfg.LogCap)
	}
	cl.tap = sv.svc.Subscribe(EventFilter{}) // Buffer 0: in-process, unbounded

	reg := sv.svc.Metrics()
	cl.reg = reg
	cl.mReplEvents = reg.Counter("mycroft_cluster_replicated_events_total", "Event-log entries shipped to followers.")
	cl.mReplBatches = reg.Counter("mycroft_cluster_replication_batches_total", "Replication batches acknowledged by followers.")
	cl.mReplFailures = reg.Counter("mycroft_cluster_replication_failures_total", "Replication batches that failed to reach a follower.")
	cl.mHandoffs = reg.Counter("mycroft_cluster_handoffs_total", "Clean-shutdown job handoffs completed.")
	cl.mTail = map[string]*obs.Counter{}
	for _, src := range []string{"primary", "replica", "promoted"} {
		cl.mTail[src] = reg.Counter("mycroft_cluster_tails_total",
			"Tail pages served, by answering role — the replica series climbing is the server-visible failover signal.",
			obs.L("source", src))
	}
	for _, state := range []string{api.PeerAlive, api.PeerSuspect, api.PeerDead} {
		st := state
		reg.GaugeFunc("mycroft_cluster_peers", "Cluster peers by health state, from this peer's table.",
			func() float64 {
				n := 0
				for _, row := range node.View() {
					if row.State == st {
						n++
					}
				}
				return float64(n)
			}, obs.L("state", st))
	}

	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.cluster != nil {
		cl.tap.Close()
		return fmt.Errorf("mycroft: cluster mode already enabled")
	}
	sv.cluster = cl
	return nil
}

// loadCluster reads the cluster state without assuming the caller holds
// sv.mu (it takes it briefly).
func (sv *Server) loadCluster() *serverCluster {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.cluster
}

// ClusterNode exposes this server's membership view (nil when cluster mode
// is disabled); cmd/mycroft-serve uses it for placement logging.
func (sv *Server) ClusterNode() *cluster.Node {
	if cl := sv.loadCluster(); cl != nil {
		return cl.node
	}
	return nil
}

// drainTap moves every event the engine has dispatched since the last drain
// into the per-job logs, in dispatch order. It runs after each Advance and
// before each replication round, so the logs are exactly as fresh as the
// engine the moment either completes.
func (cl *serverCluster) drainTap() {
	for {
		e, ok := cl.tap.Next()
		if !ok {
			return
		}
		if log := cl.logs[e.Job]; log != nil {
			log.Append(eventToWire(e))
		}
	}
}

func (cl *serverCluster) ack(peer string, job JobID) *peerAck {
	cl.ackMu.Lock()
	defer cl.ackMu.Unlock()
	key := peer + "/" + string(job)
	a := cl.acks[key]
	if a == nil {
		a = &peerAck{}
		cl.acks[key] = a
	}
	return a
}

// ReplicateNow runs one synchronous replication round: drain the tap, then
// for every hosted job ship the log suffix past each follower's ack, the
// trace window past its trace watermark, and a fresh snapshot. It returns
// the first error per unreachable follower; reaching every follower returns
// nil. The daemon calls this on a timer (StartCluster); tests call it
// directly for deterministic replication.
func (sv *Server) ReplicateNow() []error {
	cl := sv.loadCluster()
	if cl == nil {
		return nil
	}
	cl.drainTap()
	var errs []error
	for _, job := range sortedJobs(cl.logs) {
		log := cl.logs[job]
		_, replicas := cl.node.Placement(string(job))
		for _, peer := range replicas {
			if err := sv.replicateTo(cl, peer, job, log); err != nil {
				errs = append(errs, fmt.Errorf("replicating %s to %s: %w", job, peer, err))
			}
		}
	}
	return errs
}

func sortedJobs(logs map[JobID]*cluster.EventLog) []JobID {
	out := make([]JobID, 0, len(logs))
	for id := range logs {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

func (sv *Server) replicateTo(cl *serverCluster, peer string, job JobID, log *cluster.EventLog) error {
	a := cl.ack(peer, job)
	entries, wm := log.TailAfter(a.seq, cl.cfg.Batch)

	sv.mu.Lock()
	snap := sv.snapshotLocked(job)
	trace, traceWM := sv.traceSinceLocked(job, a.traceNs, cl.cfg.Batch)
	// Replication runs off-engine, so the virtual instant and the job's
	// tracer are captured while serialized with the drive loop.
	var tracer *otrace.Tracer
	var vnow sim.Time
	if sv.svc != nil {
		tracer = sv.svc.Tracer(job)
		vnow = sv.svc.Eng.Now()
	}
	sv.mu.Unlock()

	// One replicate-ship span per non-empty batch, labeled with the target
	// peer; if an incident is open it joins that tree, so per-peer fan-out
	// segments show up alongside detection and remediation stages.
	var span otrace.SpanID
	if tracer != nil && len(entries) > 0 {
		parent, cause := tracer.Incident()
		span = tracer.Recorder().BeginAt(string(job), otrace.StageReplicate, cause, parent, vnow)
		tracer.Annotate(span, peer, "")
	}

	req := api.ReplicateRequest{
		ClusterID: cl.cfg.ID, From: cl.cfg.Self, Job: string(job),
		Entries: entries, Trace: trace, TraceWatermarkNs: traceWM,
		Snapshot: snap, Watermark: wm,
	}
	var resp api.ReplicateResponse
	err := clusterPost(cl.hc, cl.node.Addr(peer), "/cluster/replicate", req, &resp)
	cl.node.MarkContact(peer, err == nil)
	if err != nil {
		cl.mReplFailures.Inc()
		if span != 0 {
			tracer.Annotate(span, "", fmt.Sprintf("%d event(s) after seq %d: ship failed: %v", len(entries), a.seq, err))
			tracer.Recorder().EndAt(span, vnow)
		}
		return err
	}
	if span != 0 {
		tracer.Annotate(span, "", fmt.Sprintf("%d event(s) shipped, ack seq %d", len(entries), resp.AckSeq))
		tracer.Recorder().EndAt(span, vnow)
	}
	cl.ackMu.Lock()
	a.seq = resp.AckSeq
	if resp.TraceAckNs > a.traceNs {
		a.traceNs = resp.TraceAckNs
	}
	cl.ackMu.Unlock()
	cl.mReplBatches.Inc()
	cl.mReplEvents.Add(uint64(len(entries)))
	lag := uint64(0)
	if wm > resp.AckSeq {
		lag = wm - resp.AckSeq
	}
	cl.reg.Gauge("mycroft_cluster_replication_lag_events",
		"Event-log entries a follower is behind this primary, per job and peer.",
		obs.L("job", string(job)), obs.L("peer", peer)).Set(int64(lag))
	return nil
}

// snapshotLocked builds the coarse replicated state for one job. Callers
// hold sv.mu.
func (sv *Server) snapshotLocked(job JobID) *api.ClusterSnapshot {
	jobs, err := sv.c.ListJobs()
	if err != nil {
		return nil
	}
	w := jobsResultToWire(jobs)
	snap := api.ClusterSnapshot{NowNs: w.NowNs}
	found := false
	for _, j := range w.Jobs {
		if j.ID == string(job) {
			snap.Job = j
			found = true
		}
	}
	if !found {
		return nil
	}
	if health, err := sv.c.Health(); err == nil {
		hw := healthResultToWire(health)
		for _, jh := range hw.Jobs {
			if jh.Job == string(job) {
				snap.Health = jh
			}
		}
	}
	if stats, err := sv.c.ChannelStats(job); err == nil {
		cw := channelStatsToWire(stats)
		snap.Channels = &cw
	}
	return &snap
}

// traceSinceLocked returns the trace window (afterNs, ...] for one job,
// capped at limit records, plus the new watermark (max record time shipped;
// afterNs when nothing matched). Callers hold sv.mu. Records sharing the
// boundary timestamp with the watermark can be skipped on the next window —
// the mirror is documented best-effort; the event log is the exact record.
func (sv *Server) traceSinceLocked(job JobID, afterNs int64, limit int) ([]api.TraceRecord, int64) {
	q, err := traceQueryFromWire(api.TraceRequest{Job: string(job), FromNs: afterNs + 1, Limit: limit})
	if err != nil {
		return nil, afterNs
	}
	res, err := sv.c.QueryTrace(q)
	if err != nil {
		return nil, afterNs
	}
	w := traceResultToWire(res)
	wm := afterNs
	for _, r := range w.Records {
		if r.TimeNs > wm {
			wm = r.TimeNs
		}
	}
	return w.Records, wm
}

// JoinPeers announces this peer to every other member once, merging the
// views that come back. Unreachable peers are marked and retried by the
// gossip loop; join is best-effort because membership is static anyway.
func (sv *Server) JoinPeers() {
	cl := sv.loadCluster()
	if cl == nil {
		return
	}
	for _, peer := range cl.node.Others() {
		var resp api.JoinResponse
		err := clusterPost(cl.hc, cl.node.Addr(peer), "/cluster/join",
			api.JoinRequest{ClusterID: cl.cfg.ID, Name: cl.cfg.Self, Addr: cl.cfg.SelfAddr}, &resp)
		cl.node.MarkContact(peer, err == nil)
		if err == nil {
			cl.node.Merge(resp.Peers)
		}
	}
}

// GossipOnce exchanges health views with every other peer and merges the
// responses by freshest LastSeen.
func (sv *Server) GossipOnce() {
	cl := sv.loadCluster()
	if cl == nil {
		return
	}
	view := cl.node.View()
	for _, peer := range cl.node.Others() {
		var resp api.GossipResponse
		err := clusterPost(cl.hc, cl.node.Addr(peer), "/cluster/gossip",
			api.GossipRequest{ClusterID: cl.cfg.ID, From: cl.cfg.Self, Peers: view}, &resp)
		cl.node.MarkContact(peer, err == nil)
		if err == nil {
			cl.node.Merge(resp.Peers)
		}
	}
}

// StartCluster launches the wall-clock cluster loops — one join sweep, then
// replication every replicateEvery and gossip every gossipEvery — and
// returns a stop function. Use from a daemon; tests drive ReplicateNow and
// GossipOnce directly for determinism.
func (sv *Server) StartCluster(replicateEvery, gossipEvery time.Duration) (stop func()) {
	if replicateEvery <= 0 {
		replicateEvery = 250 * time.Millisecond
	}
	if gossipEvery <= 0 {
		gossipEvery = time.Second
	}
	done := make(chan struct{})
	go func() {
		sv.JoinPeers()
		rt := time.NewTicker(replicateEvery)
		gt := time.NewTicker(gossipEvery)
		defer rt.Stop()
		defer gt.Stop()
		for {
			select {
			case <-done:
				return
			case <-rt.C:
				sv.ReplicateNow()
			case <-gt.C:
				sv.GossipOnce()
			}
		}
	}()
	return func() { close(done) }
}

// HandoffAll is the clean-shutdown path: flush one final replication round,
// then tell the first reachable follower of every hosted job that it now
// answers authoritatively. It returns how many jobs were handed off.
func (sv *Server) HandoffAll() int {
	cl := sv.loadCluster()
	if cl == nil {
		return 0
	}
	sv.ReplicateNow()
	n := 0
	for _, job := range sortedJobs(cl.logs) {
		log := cl.logs[job]
		_, replicas := cl.node.Placement(string(job))
		for _, peer := range replicas {
			if !cl.node.Alive(peer) {
				continue
			}
			var resp api.HandoffResponse
			err := clusterPost(cl.hc, cl.node.Addr(peer), "/cluster/handoff",
				api.HandoffRequest{ClusterID: cl.cfg.ID, From: cl.cfg.Self, Job: string(job), Watermark: log.Watermark()}, &resp)
			cl.node.MarkContact(peer, err == nil)
			if err == nil && resp.Accepted {
				cl.mHandoffs.Inc()
				n++
				break
			}
		}
	}
	return n
}

// clusterPost is the peer-to-peer call: one JSON POST, no retries — the
// health ladder (MarkContact) is the retry policy.
func clusterPost(hc *http.Client, base, path string, in, out any) error {
	if base == "" {
		return fmt.Errorf("mycroft: no address for peer")
	}
	c := &RemoteClient{base: base, hc: hc}
	return c.post(api.Prefix+path, in, out)
}

// --- /v1/cluster/* backend endpoints -------------------------------------

var errClusterDisabled = fmt.Errorf("mycroft: cluster mode disabled on this daemon")

func (b *apiBackend) ClusterInfo() (api.ClusterInfoResponse, error) {
	cl := b.sv.loadCluster()
	if cl == nil {
		return api.ClusterInfoResponse{}, errClusterDisabled
	}
	resp := api.ClusterInfoResponse{
		ClusterID: cl.cfg.ID, Self: cl.node.Self,
		Replicas: cl.node.Replicas, VNodes: cl.node.VNodes,
		Peers: cl.node.View(),
		Stats: &api.ClusterStats{
			ReplicatedEvents:    cl.mReplEvents.Value(),
			ReplicationBatches:  cl.mReplBatches.Value(),
			ReplicationFailures: cl.mReplFailures.Value(),
			Handoffs:            cl.mHandoffs.Value(),
			TailPrimary:         cl.mTail["primary"].Value(),
			TailReplica:         cl.mTail["replica"].Value(),
			TailPromoted:        cl.mTail["promoted"].Value(),
		},
	}
	for _, job := range sortedJobs(cl.logs) {
		p, reps := cl.node.Placement(string(job))
		resp.Jobs = append(resp.Jobs, api.ClusterJob{
			ID: string(job), Primary: p, Replicas: reps,
			Local: true, Watermark: cl.logs[job].Watermark(),
		})
	}
	for _, id := range cl.store.Jobs() {
		row := cl.store.Job(id).Describe()
		row.Primary, row.Replicas = cl.node.Placement(id)
		resp.Jobs = append(resp.Jobs, row)
	}
	sort.Slice(resp.Jobs, func(i, j int) bool { return resp.Jobs[i].ID < resp.Jobs[j].ID })
	return resp, nil
}

func (cl *serverCluster) checkID(id string) error {
	if id != cl.cfg.ID {
		return fmt.Errorf("mycroft: cluster id mismatch: peer says %q, this daemon is %q", id, cl.cfg.ID)
	}
	return nil
}

func (b *apiBackend) ClusterJoin(req api.JoinRequest) (api.JoinResponse, error) {
	cl := b.sv.loadCluster()
	if cl == nil {
		return api.JoinResponse{}, errClusterDisabled
	}
	if err := cl.checkID(req.ClusterID); err != nil {
		return api.JoinResponse{}, err
	}
	cl.node.Heard(req.Name)
	return api.JoinResponse{Accepted: true, Self: cl.node.Self, Peers: cl.node.View()}, nil
}

func (b *apiBackend) ClusterGossip(req api.GossipRequest) (api.GossipResponse, error) {
	cl := b.sv.loadCluster()
	if cl == nil {
		return api.GossipResponse{}, errClusterDisabled
	}
	if err := cl.checkID(req.ClusterID); err != nil {
		return api.GossipResponse{}, err
	}
	cl.node.Heard(req.From)
	cl.node.Merge(req.Peers)
	return api.GossipResponse{Peers: cl.node.View()}, nil
}

func (b *apiBackend) ClusterReplicate(req api.ReplicateRequest) (api.ReplicateResponse, error) {
	cl := b.sv.loadCluster()
	if cl == nil {
		return api.ReplicateResponse{}, errClusterDisabled
	}
	if err := cl.checkID(req.ClusterID); err != nil {
		return api.ReplicateResponse{}, err
	}
	cl.node.Heard(req.From)
	return cl.store.Apply(req), nil
}

// ClusterTail serves the seq-resumable event tail. On the job's primary it
// reads the live log; on a follower, the replicated one — same request,
// same semantics, which is exactly what lets a subscription move between
// peers. The long-poll parks outside the server mutex.
func (b *apiBackend) ClusterTail(req api.TailRequest) (api.TailResponse, error) {
	cl := b.sv.loadCluster()
	if cl == nil {
		return api.TailResponse{}, errClusterDisabled
	}
	timeout := time.Duration(req.TimeoutMs) * time.Millisecond
	if timeout > 30*time.Second {
		timeout = 30 * time.Second
	}
	if log := cl.logs[JobID(req.Job)]; log != nil {
		entries, wm := log.TailWait(req.AfterSeq, req.Max, timeout)
		cl.mTail["primary"].Inc()
		return api.TailResponse{Job: req.Job, Entries: entries, Watermark: wm, Source: "primary"}, nil
	}
	rj := cl.store.Job(req.Job)
	if rj == nil {
		return api.TailResponse{}, fmt.Errorf("mycroft: peer %s neither hosts nor follows job %q", cl.cfg.Self, req.Job)
	}
	entries, wm := rj.Log.TailWait(req.AfterSeq, req.Max, timeout)
	source := "replica"
	if rj.Promoted() {
		source = "promoted"
	}
	cl.mTail[source].Inc()
	return api.TailResponse{Job: req.Job, Entries: entries, Watermark: wm, Source: source}, nil
}

func (b *apiBackend) ClusterHandoff(req api.HandoffRequest) (api.HandoffResponse, error) {
	cl := b.sv.loadCluster()
	if cl == nil {
		return api.HandoffResponse{}, errClusterDisabled
	}
	if err := cl.checkID(req.ClusterID); err != nil {
		return api.HandoffResponse{}, err
	}
	cl.node.Heard(req.From)
	lag, err := cl.store.Promote(req.Job, req.From, req.Watermark)
	if err != nil {
		return api.HandoffResponse{}, err
	}
	return api.HandoffResponse{Accepted: true, Lag: lag}, nil
}

// --- replica-backed query fallbacks --------------------------------------
//
// A peer asked about jobs it does not host answers from its replica store
// when every requested job is followed here; otherwise the live path (and
// its "unknown job" error) stands. DialCluster routes per job, so in
// practice these see exactly one job per request.

// replicaJobsFor resolves the request's job list against the replica store.
// It returns nil unless every listed job is non-local and followed here.
func (cl *serverCluster) replicaJobsFor(jobs []string) []*cluster.ReplicaJob {
	if cl == nil || len(jobs) == 0 {
		return nil
	}
	out := make([]*cluster.ReplicaJob, 0, len(jobs))
	for _, j := range jobs {
		if _, local := cl.logs[JobID(j)]; local {
			return nil
		}
		rj := cl.store.Job(j)
		if rj == nil {
			return nil
		}
		out = append(out, rj)
	}
	return out
}

func (b *apiBackend) replicaTriggers(req api.TriggersRequest) (api.TriggersResponse, bool) {
	rjs := b.sv.loadCluster().replicaJobsFor(req.Jobs)
	if rjs == nil {
		return api.TriggersResponse{}, false
	}
	if len(rjs) == 1 {
		return rjs[0].QueryTriggers(req), true
	}
	full := req
	full.Offset, full.Limit = 0, 0
	var all []api.JobTrigger
	for _, rj := range rjs {
		all = append(all, rj.QueryTriggers(full).Triggers...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Trigger.AtNs < all[j].Trigger.AtNs })
	lo, hi, next := cluster.Page(len(all), req.Offset, req.Limit)
	return api.TriggersResponse{Triggers: all[lo:hi], Total: len(all), NextOffset: next}, true
}

func (b *apiBackend) replicaReports(req api.ReportsRequest) (api.ReportsResponse, bool) {
	rjs := b.sv.loadCluster().replicaJobsFor(req.Jobs)
	if rjs == nil {
		return api.ReportsResponse{}, false
	}
	if len(rjs) == 1 {
		return rjs[0].QueryReports(req), true
	}
	full := req
	full.Offset, full.Limit = 0, 0
	var all []api.JobReport
	for _, rj := range rjs {
		all = append(all, rj.QueryReports(full).Reports...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Report.AnalyzedAtNs < all[j].Report.AnalyzedAtNs })
	lo, hi, next := cluster.Page(len(all), req.Offset, req.Limit)
	return api.ReportsResponse{Reports: all[lo:hi], Total: len(all), NextOffset: next}, true
}

func (b *apiBackend) replicaRemediations(req api.RemediationsRequest) (api.RemediationsResponse, bool) {
	rjs := b.sv.loadCluster().replicaJobsFor(req.Jobs)
	if rjs == nil {
		return api.RemediationsResponse{}, false
	}
	if len(rjs) == 1 {
		return rjs[0].QueryRemediations(req), true
	}
	full := req
	full.Offset, full.Limit = 0, 0
	var all []api.JobAttempt
	for _, rj := range rjs {
		all = append(all, rj.QueryRemediations(full).Attempts...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Attempt.ReportedAtNs < all[j].Attempt.ReportedAtNs })
	lo, hi, next := cluster.Page(len(all), req.Offset, req.Limit)
	return api.RemediationsResponse{Attempts: all[lo:hi], Total: len(all), NextOffset: next}, true
}

// replicaSpans answers a span query for a followed (non-local) job. Span
// rings live only in the primary's engine — a replica answers with an empty
// page rather than an error so a CLI riding a failover degrades gracefully.
func (b *apiBackend) replicaSpans(req api.SpansRequest) (api.SpansResponse, bool) {
	if req.Job == "" {
		return api.SpansResponse{}, false
	}
	rjs := b.sv.loadCluster().replicaJobsFor([]string{req.Job})
	if rjs == nil {
		return api.SpansResponse{}, false
	}
	return api.SpansResponse{Job: req.Job}, true
}

func (b *apiBackend) replicaTrace(req api.TraceRequest) (api.TraceResponse, bool) {
	if req.Job == "" {
		return api.TraceResponse{}, false
	}
	rjs := b.sv.loadCluster().replicaJobsFor([]string{req.Job})
	if rjs == nil {
		return api.TraceResponse{}, false
	}
	return rjs[0].QueryTrace(req), true
}

func (b *apiBackend) replicaChannels(job string) (api.ChannelsResponse, bool) {
	if job == "" {
		return api.ChannelsResponse{}, false
	}
	rjs := b.sv.loadCluster().replicaJobsFor([]string{job})
	if rjs == nil {
		return api.ChannelsResponse{}, false
	}
	snap := rjs[0].Snapshot()
	if snap == nil || snap.Channels == nil {
		return api.ChannelsResponse{}, false
	}
	return *snap.Channels, true
}

func (b *apiBackend) replicaTriage(job string) (api.TriageResponse, bool) {
	if job == "" {
		return api.TriageResponse{}, false
	}
	rjs := b.sv.loadCluster().replicaJobsFor([]string{job})
	if rjs == nil {
		return api.TriageResponse{}, false
	}
	events := rjs[0].Events()
	for i := len(events) - 1; i >= 0; i-- {
		if rep := events[i].Event.Report; rep != nil {
			return api.TriageResponse{
				Job: job, Source: "mycroft", Rank: rep.Suspect,
				Summary: fmt.Sprintf("replicated verdict: %s at rank %d via %s", rep.Category, rep.Suspect, rep.Via),
				OK:      false,
			}, true
		}
	}
	return api.TriageResponse{Job: job, Source: "mycroft", Summary: "no incident in replicated window", OK: true}, true
}

// replicaGraphErr answers the endpoints a replica cannot serve: dependency
// graphs live only in the primary's engine.
func (cl *serverCluster) replicaGraphErr(job string) error {
	if cl == nil || job == "" {
		return nil
	}
	if _, local := cl.logs[JobID(job)]; local {
		return nil
	}
	if cl.store.Job(job) == nil {
		return nil
	}
	primary, _ := cl.node.Placement(job)
	return fmt.Errorf("mycroft: job %q is served from a replica here; dependency graphs are not replicated — ask its primary %s at %s",
		job, primary, cl.node.Addr(primary))
}
