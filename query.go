package mycroft

import (
	"slices"
	"sort"
	"time"

	"mycroft/internal/clouddb"
	"mycroft/internal/depgraph"
	"mycroft/internal/sim"
)

// TraceQuery asks one hosted job's sharded trace store for raw Coll-level
// records. Zero-value predicates match everything.
type TraceQuery struct {
	// Job selects the hosted job. Empty is allowed only when the service
	// hosts exactly one.
	Job JobID
	// Ranks restricts to these ranks (nil = all; with Comm set, the
	// communicator's members).
	Ranks []Rank
	// Comm restricts to one communicator (0 = any).
	Comm uint64
	// Kinds restricts record kinds (nil = any).
	Kinds []RecordKind
	// From and To bound emission time as (From, To] in virtual time.
	// To 0 means "now".
	From, To time.Duration
	// Limit caps the page size (0 = everything). Resume with Cursor.
	Limit int
	// Cursor continues a paginated query; pass TraceResult.Next verbatim.
	Cursor *TraceCursor
}

// TraceCursor marks where a paginated TraceQuery resumes.
type TraceCursor = clouddb.Cursor

// TraceResult is one page of matching records, ordered by (rank, time).
type TraceResult struct {
	Job     JobID
	Records []TraceRecord
	// Total counts every match of the query, computed on the walk's first
	// page; a cursor-resumed page that fills to Limit reports -1 instead of
	// re-scanning the remainder (track progress from the first page).
	Total int
	// Next is non-nil when Limit cut the page short.
	Next *TraceCursor
}

// QueryTrace answers a TraceQuery against the job's sharded store.
func (s *Service) QueryTrace(q TraceQuery) (TraceResult, error) {
	h, err := s.resolveJob(q.Job)
	if err != nil {
		return TraceResult{}, err
	}
	to := sim.Time(q.To)
	if q.To == 0 {
		to = s.Eng.Now()
	}
	res := h.Job.DB.Query(clouddb.Query{
		Ranks: q.Ranks, Comm: q.Comm, Kinds: q.Kinds,
		From: sim.Time(q.From), To: to,
		Limit: q.Limit, Cursor: q.Cursor,
	})
	return TraceResult{Job: h.ID, Records: res.Records, Total: res.Total, Next: res.Next}, nil
}

// TriggerQuery asks for Algorithm 1 firings across hosted jobs.
type TriggerQuery struct {
	// Jobs restricts to these hosted jobs (nil = all).
	Jobs []JobID
	// Ranks restricts to triggers fired by these sampled ranks.
	Ranks []Rank
	// Kinds restricts to failure and/or straggler triggers.
	Kinds []TriggerKind
	// From and To bound the firing time, inclusive. To 0 means unbounded.
	From, To time.Duration
	// Offset and Limit paginate the matched set (Limit 0 = everything).
	Offset, Limit int
}

// JobTrigger is a trigger tagged with the job it fired on.
type JobTrigger struct {
	Job JobID
	Trigger
}

// TriggerResult is one page of matches, ordered by firing time (job arrival
// order breaks ties). Total counts all matches before pagination;
// NextOffset is the offset of the first unreturned match, -1 when this page
// exhausted them.
type TriggerResult struct {
	Triggers   []JobTrigger
	Total      int
	NextOffset int
}

// QueryTriggers answers a TriggerQuery across the selected jobs.
func (s *Service) QueryTriggers(q TriggerQuery) (TriggerResult, error) {
	hs, err := s.selectJobs(q.Jobs)
	if err != nil {
		return TriggerResult{}, err
	}
	var all []JobTrigger
	for _, h := range hs {
		for _, tr := range h.Backend.Triggers() {
			if len(q.Ranks) > 0 && !slices.Contains(q.Ranks, tr.Rank) {
				continue
			}
			if len(q.Kinds) > 0 && !slices.Contains(q.Kinds, tr.Kind) {
				continue
			}
			if !inWindow(time.Duration(tr.At), q.From, q.To) {
				continue
			}
			all = append(all, JobTrigger{Job: h.ID, Trigger: tr})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	total := len(all)
	page := paginate(all, q.Offset, q.Limit)
	return TriggerResult{Triggers: page, Total: total, NextOffset: nextOffset(q.Offset, len(page), total)}, nil
}

// ReportQuery asks for Algorithm 2 verdicts across hosted jobs.
type ReportQuery struct {
	// Jobs restricts to these hosted jobs (nil = all).
	Jobs []JobID
	// Suspects restricts to verdicts naming these ranks.
	Suspects []Rank
	// Categories restricts to these RC-table categories.
	Categories []Category
	// Comm restricts to verdicts reached on one communicator (0 = any).
	Comm uint64
	// From and To bound the analysis time, inclusive. To 0 means unbounded.
	From, To time.Duration
	// Offset and Limit paginate the matched set (Limit 0 = everything).
	Offset, Limit int
}

// JobReport is a verdict tagged with the job it was produced for.
type JobReport struct {
	Job JobID
	Report
}

// ReportResult is one page of matches, ordered by analysis time (job
// arrival order breaks ties). Total counts all matches before pagination;
// NextOffset is -1 when this page exhausted them.
type ReportResult struct {
	Reports    []JobReport
	Total      int
	NextOffset int
}

// QueryReports answers a ReportQuery across the selected jobs.
func (s *Service) QueryReports(q ReportQuery) (ReportResult, error) {
	hs, err := s.selectJobs(q.Jobs)
	if err != nil {
		return ReportResult{}, err
	}
	var all []JobReport
	for _, h := range hs {
		for _, rep := range h.Backend.Reports() {
			if len(q.Suspects) > 0 && !slices.Contains(q.Suspects, rep.Suspect) {
				continue
			}
			if len(q.Categories) > 0 && !slices.Contains(q.Categories, rep.Category) {
				continue
			}
			if q.Comm != 0 && rep.CommID != q.Comm {
				continue
			}
			if !inWindow(time.Duration(rep.AnalyzedAt), q.From, q.To) {
				continue
			}
			all = append(all, JobReport{Job: h.ID, Report: rep})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].AnalyzedAt < all[j].AnalyzedAt })
	total := len(all)
	page := paginate(all, q.Offset, q.Limit)
	return ReportResult{Reports: page, Total: total, NextOffset: nextOffset(q.Offset, len(page), total)}, nil
}

// Dependency-graph views. The graph is maintained incrementally as each
// job's records ingest, so these queries read the current frontier without
// touching the trace store.
type (
	// DependencyNode is one op-level state: (rank, communicator, op seq).
	DependencyNode = depgraph.Node
	// DependencyEdge is one wait: From is blocked by To.
	DependencyEdge = depgraph.Edge
	// DependencyEdgeKind classifies an edge (barrier, pipeline, nested).
	DependencyEdgeKind = depgraph.EdgeKind
)

// Dependency edge kinds.
const (
	EdgeBarrier  = depgraph.EdgeBarrier
	EdgePipeline = depgraph.EdgePipeline
	EdgeNested   = depgraph.EdgeNested
)

// DependencyQuery asks one hosted job's dependency graph for its current
// wait edges.
type DependencyQuery struct {
	// Job selects the hosted job. Empty is allowed only when the service
	// hosts exactly one.
	Job JobID
	// Comm restricts to edges touching one communicator, including nested
	// hops out of it (0 = all).
	Comm uint64
	// Ranks restricts to edges whose endpoints involve one of these ranks
	// (nil = all).
	Ranks []Rank
	// RenderDOT additionally renders the whole (unfiltered) graph as
	// Graphviz dot into DependencyResult.DOT, so a remote caller gets the
	// deterministic export without a second round trip.
	RenderDOT bool
}

// DependencyResult is the matched edge set, grouped per communicator in
// ascending id order (wait edges first, then nested hops; deterministic).
type DependencyResult struct {
	Job   JobID
	Edges []DependencyEdge
	// DOT is the Graphviz export of the job's full graph (RenderDOT only).
	DOT string
}

// QueryDependencies answers a DependencyQuery from the job's live graph.
func (s *Service) QueryDependencies(q DependencyQuery) (DependencyResult, error) {
	h, err := s.resolveJob(q.Job)
	if err != nil {
		return DependencyResult{}, err
	}
	edges := h.Backend.Graph().Edges(q.Comm)
	if len(q.Ranks) > 0 {
		edges = slices.DeleteFunc(edges, func(e DependencyEdge) bool {
			return !slices.Contains(q.Ranks, e.From.Rank) && !slices.Contains(q.Ranks, e.To.Rank)
		})
	}
	res := DependencyResult{Job: h.ID, Edges: edges}
	if q.RenderDOT {
		res.DOT = h.Backend.Graph().DOT()
	}
	return res, nil
}

// BlastRadius returns every rank the job's dependency graph shows
// transitively blocked by the given rank right now (sorted; the rank itself
// is excluded). An empty job id is allowed only when the service hosts
// exactly one job.
func (s *Service) BlastRadius(job JobID, suspect Rank) ([]Rank, error) {
	h, err := s.resolveJob(job)
	if err != nil {
		return nil, err
	}
	return h.Backend.Graph().Victims(suspect), nil
}

func inWindow(at, from, to time.Duration) bool {
	if at < from {
		return false
	}
	if to > 0 && at > to {
		return false
	}
	return true
}

// nextOffset computes a paginated result's resume offset: the index of the
// first unreturned match, or -1 when the page reached the end of the
// matched set.
func nextOffset(offset, page, total int) int {
	if offset < 0 {
		offset = 0
	}
	if offset+page >= total {
		return -1
	}
	return offset + page
}

// paginate slices one page out of the matched set. Negative Offset/Limit
// are clamped to "from the start" / "no cap" — callers hand these straight
// from user queries, so they must never panic or mis-slice.
func paginate[T any](all []T, offset, limit int) []T {
	if offset < 0 {
		offset = 0
	}
	if offset >= len(all) {
		return nil
	}
	all = all[offset:]
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}
