package mycroft

import (
	"fmt"
	"time"

	"mycroft/internal/sim"
)

// HealthState is a hosted job's heartbeat verdict. States form a ladder —
// stopped, healthy, degraded, stale — driven by the job's ingest watermark:
// a job whose store last saw records less than half the staleness threshold
// ago is healthy, past half it is degraded, past the full threshold it is
// stale. Transitions are published as EventHealth events.
type HealthState string

const (
	// HealthStopped: the job is not started (no heartbeat expected).
	HealthStopped HealthState = "stopped"
	// HealthHealthy: ingest is current.
	HealthHealthy HealthState = "healthy"
	// HealthDegraded: no ingest for at least half the staleness threshold.
	HealthDegraded HealthState = "degraded"
	// HealthStale: no ingest for the full staleness threshold.
	HealthStale HealthState = "stale"
)

// score maps a state onto the mycroft_job_health gauge scale.
func (hs HealthState) score() int64 {
	switch hs {
	case HealthHealthy:
		return 1
	case HealthDegraded:
		return 2
	case HealthStale:
		return 3
	default:
		return 0
	}
}

// DefaultStaleAfter is the staleness threshold when ServiceOptions.StaleAfter
// is zero: a started job with no ingest for this much virtual time is Stale
// (and Degraded halfway there).
const DefaultStaleAfter = 10 * time.Second

// HealthChange is the payload of an EventHealth event: one job health
// transition.
type HealthChange struct {
	From, To HealthState
	// LastIngest is the job's ingest watermark (virtual time) at the
	// transition.
	LastIngest time.Duration
	// Reason says what moved the state, deterministically derived from
	// virtual time.
	Reason string
}

func (c HealthChange) String() string {
	return fmt.Sprintf("%s -> %s (%s)", c.From, c.To, c.Reason)
}

// JobHealth is one job's heartbeat view inside a HealthResult.
type JobHealth struct {
	Job   JobID
	State HealthState
	// Since is the virtual time of the last health transition.
	Since time.Duration
	// LastIngest is the virtual time records last reached the job's store.
	LastIngest time.Duration
	// Reason explains a non-healthy state ("" when healthy or stopped).
	Reason string
}

// SubStats summarizes the service's subscription fan-out.
type SubStats struct {
	Active    int    // live streams
	Delivered uint64 // events delivered to streams, lifetime
	Dropped   uint64 // events aged out of full stream buffers, lifetime
}

// HealthResult is the Client.Health answer: the service clock, identity and
// per-job heartbeat verdicts. Now and everything under Jobs are virtual-time
// deterministic; Uptime and Server describe the serving process (wall clock
// and build identity) and are zero for a plain in-process Service.
type HealthResult struct {
	Now    time.Duration
	Uptime time.Duration
	Server string
	Subs   SubStats
	Jobs   []JobHealth
}

// Health reports per-job heartbeat state and subscription fan-out. It is
// part of the Client interface; the daemon adds process uptime and identity
// on top of this answer.
func (s *Service) Health() (HealthResult, error) {
	res := HealthResult{Now: s.Now()}
	s.streamsMu.Lock()
	res.Subs.Active = len(s.streams)
	s.streamsMu.Unlock()
	res.Subs.Delivered = s.subDelivered.Value()
	res.Subs.Dropped = s.subDropped.Value()
	for _, id := range s.order {
		h := s.jobs[id]
		res.Jobs = append(res.Jobs, JobHealth{
			Job: id, State: h.health, Since: h.healthSince,
			LastIngest: h.lastIngest, Reason: h.healthReason,
		})
	}
	return res, nil
}

// Health returns the job's current heartbeat verdict.
func (h *JobHandle) Health() HealthState { return h.health }

// armHealthMonitor starts the heartbeat ticker (idempotent; a no-op when
// monitoring is disabled). The ticker draws no randomness, so arming it
// never perturbs a seeded run.
func (s *Service) armHealthMonitor() {
	if s.healthTicker != nil || s.staleAfter <= 0 {
		return
	}
	s.healthTicker = s.Eng.NewTicker(s.staleAfter/4, func(sim.Time) { s.checkHealth() })
}

// disarmHealthMonitor stops the ticker.
func (s *Service) disarmHealthMonitor() {
	if s.healthTicker != nil {
		s.healthTicker.Stop()
		s.healthTicker = nil
	}
}

// checkHealth is one monitor pass: re-derive every started job's state from
// its ingest watermark and publish transitions. Start/Stop set their states
// silently (lifecycle events already announce those edges); only watermark-
// driven movement emits EventHealth.
func (s *Service) checkHealth() {
	now := s.Now()
	for _, id := range s.order {
		h := s.jobs[id]
		if !h.started {
			continue
		}
		age := now - h.lastIngest
		want, reason := HealthHealthy, ""
		switch {
		case age >= s.staleAfter:
			want = HealthStale
			reason = fmt.Sprintf("no ingest for %v (threshold %v)", age, s.staleAfter)
		case age >= s.staleAfter/2:
			want = HealthDegraded
			reason = fmt.Sprintf("no ingest for %v (threshold %v)", age, s.staleAfter)
		}
		if want == h.health {
			continue
		}
		if want == HealthHealthy {
			reason = "ingest resumed"
		}
		ch := HealthChange{From: h.health, To: want, LastIngest: h.lastIngest, Reason: reason}
		h.health, h.healthSince = want, now
		h.healthReason = ""
		if want != HealthHealthy {
			h.healthReason = reason
		}
		s.dispatch(Event{Job: id, Kind: EventHealth, At: now, Health: &ch})
	}
}
