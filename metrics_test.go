package mycroft

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// metricsService builds the full-plane run for scrape tests: one job with
// the self-healing policy attached, nic-down injected, driven far enough
// that ingest, detection, remediation and verification have all happened.
func metricsService(t *testing.T) *Service {
	t.Helper()
	svc := NewService(ServiceOptions{Seed: 1})
	h, err := svc.AddJob("trace", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AttachPolicy("trace", SelfHealPolicy()); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	h.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	return svc
}

// sampleLine matches one Prometheus text-format sample:
// name{labels} value — no timestamps, no exotic suffixes. Label values may
// themselves contain braces (route patterns like "/v1/subscriptions/{id}").
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [^ ]+$`)

// TestMetricsEndpoint scrapes GET /metrics off a driven daemon and checks
// both the format (every line parses as comment or sample, one HELP/TYPE
// header per family) and the content: the ingest, query-latency,
// subscription, detection, remediation, HTTP and health families the
// operator plane promises.
func TestMetricsEndpoint(t *testing.T) {
	svc := metricsService(t)
	srv := NewServer(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 60; i++ {
		srv.Advance(time.Second)
	}
	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.QueryTrace(TraceQuery{Ranks: []Rank{5}, Limit: 10}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q is not Prometheus text format", ct)
	}

	text := string(body)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("line %d is not a valid sample: %q", i+1, line)
		}
	}

	for _, want := range []string{
		`mycroft_ingest_records_total{job="trace"}`,
		`mycroft_ingest_bytes_total{job="trace"}`,
		`mycroft_queries_total{job="trace"}`,
		`mycroft_query_latency_seconds_bucket{job="trace",le="+Inf"}`,
		`mycroft_query_latency_seconds_count{job="trace"}`,
		"mycroft_subscriptions_active ",
		"mycroft_subscription_events_total ",
		"mycroft_subscription_events_dropped_total ",
		`mycroft_triggers_total{job="trace",kind="failure"}`,
		`mycroft_reports_total{job="trace"}`,
		`mycroft_rca_latency_seconds_count{job="trace"}`,
		`mycroft_rca_chain_depth_count{job="trace"}`,
		`mycroft_remedy_attempts_total{job="trace",action="recover-fault",outcome=`,
		`mycroft_remedy_verify_seconds_count{job="trace"}`,
		`mycroft_job_health{job="trace"}`,
		`mycroft_store_records{job="trace"}`,
		`mycroft_store_shard_records{job="trace",shard="0"}`,
		`mycroft_http_requests_total{endpoint="/v1/ping"}`,
		`mycroft_http_requests_total{endpoint="/v1/trace/query"}`,
		`mycroft_http_request_seconds_count{endpoint="/v1/ping"}`,
		"mycroft_jobs 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}

	for _, family := range []string{
		"mycroft_ingest_records_total", "mycroft_query_latency_seconds",
		"mycroft_subscriptions_active", "mycroft_remedy_attempts_total",
	} {
		if n := strings.Count(text, "# TYPE "+family+" "); n != 1 {
			t.Errorf("family %s has %d TYPE headers, want exactly 1", family, n)
		}
	}
}

// TestIngestCountersMatchStore pins the instrument truth: the obs counters
// must agree with the store's own bookkeeping, not drift beside it.
func TestIngestCountersMatchStore(t *testing.T) {
	svc := metricsService(t)
	svc.Run(40 * time.Second)
	jobs, err := svc.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	info := jobs.Jobs[0]
	var buf strings.Builder
	svc.Metrics().WritePrometheus(&buf)
	text := buf.String()

	line := `mycroft_ingest_records_total{job="trace"} `
	idx := strings.Index(text, line)
	if idx < 0 {
		t.Fatalf("no ingest counter in scrape:\n%s", text)
	}
	rest := text[idx+len(line):]
	got := rest[:strings.IndexByte(rest, '\n')]
	if want := strconv.FormatUint(info.Records, 10); got != want {
		t.Errorf("ingest counter %s, store ingested %s (live %d, pruned %d)", got, want, info.Store.Records, info.Store.Pruned)
	}
}
