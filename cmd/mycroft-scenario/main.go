// Command mycroft-scenario runs declarative fault scenarios on the
// simulated substrate.
//
//	mycroft-scenario list                        # built-in scenario library
//	mycroft-scenario validate <file.json|name>   # parse + validate a spec
//	mycroft-scenario run <name|file.json> [-seed N] [-json]
//
// Scenarios are JSON files (see README.md for the format) or names from the
// built-in library. A fleet declares one or many jobs; with
// "shared_engine": true the whole fleet runs concurrently on one
// mycroft.Service (the multi-tenant production shape). Runs are
// deterministic: the same spec and seed produce a byte-identical report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mycroft/internal/faults"
	"mycroft/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "validate":
		validate(os.Args[2:])
	case "run":
		run(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mycroft-scenario: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: mycroft-scenario <command> [args]

  list                         list the built-in scenario library
  validate <file.json|name>    parse and validate a scenario spec
  validate -all                validate every builtin scenario
  run <name|file.json> [flags] execute a scenario and print its report

run flags:
  -seed N       override the scenario seed (default: spec seed, else 1)
  -json         emit the structured result as JSON instead of text
  -record DIR   capture one incident artifact per job to DIR/<job>.mycrec
                (replay them with "mycroft-trace replay")
`)
}

// load resolves a CLI argument to a spec: a readable file is parsed as
// JSON; otherwise the argument names a builtin.
func load(arg string) (scenario.Spec, error) {
	if data, err := os.ReadFile(arg); err == nil {
		return scenario.Parse(data)
	} else if strings.ContainsAny(arg, "./") {
		return scenario.Spec{}, fmt.Errorf("mycroft-scenario: %w", err)
	}
	if spec, ok := scenario.Lookup(arg); ok {
		return spec, nil
	}
	return scenario.Spec{}, fmt.Errorf("mycroft-scenario: no file or builtin scenario %q (try `mycroft-scenario list`)", arg)
}

// kindsOf renders a spec's fault-kind set for the listing.
func kindsOf(kinds []faults.Kind) string {
	if len(kinds) == 0 {
		return "-"
	}
	strs := make([]string, len(kinds))
	for i, k := range kinds {
		strs[i] = string(k)
	}
	return strings.Join(strs, ",")
}

func list() {
	builtins := scenario.Builtins()
	w := 0
	for _, s := range builtins {
		if len(s.Name) > w {
			w = len(s.Name)
		}
	}
	covered := map[faults.Kind]bool{}
	for _, s := range builtins {
		kinds := s.FaultKinds()
		fmt.Printf("%-*s  %-40s  %s\n", w, s.Name, kindsOf(kinds), s.Description)
		for _, k := range kinds {
			covered[k] = true
		}
	}
	fmt.Printf("\n%d scenarios covering %d/%d fault kinds\n", len(builtins), len(covered), len(faults.All()))
}

func validate(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: mycroft-scenario validate <file.json|name|-all>")
		os.Exit(2)
	}
	if args[0] == "-all" || args[0] == "--all" {
		// Every builtin must validate AND survive a JSON round-trip — the
		// library is also the file-format documentation.
		for _, spec := range scenario.Builtins() {
			if err := spec.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			data, err := json.Marshal(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mycroft-scenario: %s: marshal: %v\n", spec.Name, err)
				os.Exit(1)
			}
			if _, err := scenario.Parse(data); err != nil {
				fmt.Fprintf(os.Stderr, "mycroft-scenario: %s: round-trip: %v\n", spec.Name, err)
				os.Exit(1)
			}
			describe(spec)
		}
		fmt.Printf("%d builtin scenarios valid\n", len(scenario.Builtins()))
		return
	}
	spec, err := load(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	describe(spec)
}

func describe(spec scenario.Spec) {
	engine := "independent engines"
	if spec.Fleet.SharedEngine {
		engine = "one shared engine"
	}
	extra := ""
	if n := len(spec.Remediate); n > 0 {
		extra = fmt.Sprintf(", %d remediation polic(ies)", n)
	}
	fmt.Printf("%s: valid (%d events, %d assertions, %d job(s) on %s%s)\n",
		spec.Name, len(spec.Events), len(spec.Assertions), spec.JobCount(), engine, extra)
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the scenario seed")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	recordDir := fs.String("record", "", "record per-job incident artifacts to this directory")
	var target string
	// Accept the target anywhere among the flags: `run name -seed 2`,
	// `run -seed 2 name` and `run -seed 2 name -json` all work.
	rest := args
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		target, rest = rest[0], rest[1:]
	}
	_ = fs.Parse(rest)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
		_ = fs.Parse(fs.Args()[1:]) // flags that followed the positional
	}
	if target == "" {
		fmt.Fprintln(os.Stderr, "usage: mycroft-scenario run <name|file.json> [-seed N] [-json] [-record DIR]")
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mycroft-scenario run: unexpected argument %q (one scenario per run)\n", fs.Arg(0))
		os.Exit(2)
	}
	spec, err := load(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := scenario.RunWith(spec, *seed, scenario.RunOptions{RecordDir: *recordDir})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *recordDir != "" {
		fmt.Fprintf(os.Stderr, "mycroft-scenario: recorded %d incident artifact(s) under %s\n", len(res.Jobs), *recordDir)
	}
	if *asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(res.Render())
	}
	if !res.Pass {
		os.Exit(1)
	}
}
