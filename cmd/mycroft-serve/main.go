// mycroft-serve hosts a Mycroft Service behind the versioned /v1 HTTP wire
// protocol — the production deployment shape the paper describes: one
// always-on diagnosis service that many operators and tools query
// concurrently, instead of a library linked into each consumer.
//
// Two ways to seed the daemon:
//
//	mycroft-serve -addr :7466 -fault nic-down -rank 5 -at 15s -for 40s
//	mycroft-serve -addr :7466 -scenario multi-job-shared
//
// The first hosts a single job (id "trace", matching mycroft-trace's
// in-process setup, so the same flags yield byte-identical query output
// either way); the second hosts a whole scenario fleet on one shared
// engine. Either way the daemon starts serving immediately and advances
// virtual time in the background — -step virtual time per -tick of wall
// time — until the horizon, then keeps serving the final state. Attach
// early to watch the run unfold:
//
//	curl -s -X POST localhost:7466/v1/subscribe -d '{"filter":{}}'
//	curl -N localhost:7466/v1/subscriptions/sub-1/sse
//
// SIGINT/SIGTERM shut the daemon down cleanly: live subscribers receive a
// terminal server-shutdown lifecycle event, in-flight requests finish, and
// the process exits 0.
//
// Cluster mode shards a scenario fleet across N daemons that replicate to
// each other and fail over together:
//
//	mycroft-serve -addr :7471 -scenario multi-job-shared \
//	  -cluster-id demo -self p1 -peers p1=:7471,p2=:7472,p3=:7473
//
// Every peer runs the same command with its own -self: placement is the
// shared consistent-hash ring, so each daemon hosts exactly the jobs it
// owns and follows the ones it replicates. Attach with
// mycroft-trace -addr :7471,:7472,:7473 for job-aware routing and failover.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mycroft"
	"mycroft/internal/cluster"
	"mycroft/internal/scenario"
	"mycroft/internal/seedjob"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7466", "HTTP listen address")
		seed      = flag.Int64("seed", 1, "simulation seed")
		jobID     = flag.String("job", "trace", "job id for single-job mode")
		faultName = flag.String("fault", "nic-down", "fault kind to inject (see mycroft-sim) or none")
		rank      = flag.Int("rank", 5, "rank to inject at")
		at        = flag.Duration("at", 15*time.Second, "injection time")
		horizon   = flag.Duration("for", 40*time.Second, "virtual time to drive before idling")
		remedy    = flag.Bool("remedy", false, "attach the self-healing policy (tightens the backend re-arm like mycroft-trace remedy)")
		scen      = flag.String("scenario", "", "host a scenario fleet (builtin name or spec file) instead of a single job")
		step      = flag.Duration("step", time.Second, "virtual time advanced per tick")
		tick      = flag.Duration("tick", 20*time.Millisecond, "wall-time pause between ticks (0 = drive flat out)")
		recordDir = flag.String("record", "", "record per-job incident artifacts to this directory (download live at /v1/jobs/{id}/record)")
		pprofOn   = flag.Bool("pprof", true, "mount net/http/pprof under /debug/pprof/")
		slowOp    = flag.Duration("slow-op", 0, "log pipeline spans whose wall-clock cost exceeds this threshold (0 = off)")

		clusterID = flag.String("cluster-id", "", "enable cluster mode under this cluster name (requires -scenario, -self, -peers)")
		selfName  = flag.String("self", "", "this peer's name in -peers")
		peerList  = flag.String("peers", "", "comma-separated name=addr list of every cluster member, including self")
		replicas  = flag.Int("replicas", 1, "replication factor R: ring successors each job replicates to")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per peer on the placement ring (0 = default)")
		replEvery = flag.Duration("replicate-every", 250*time.Millisecond, "wall-time between replication pushes")
		gossEvery = flag.Duration("gossip-every", time.Second, "wall-time between peer-health gossip rounds")
	)
	flag.Parse()

	var clusterCfg *mycroft.ClusterConfig
	if *clusterID != "" {
		peers, err := parsePeers(*peerList)
		if err != nil {
			die(err)
		}
		if *selfName == "" || peers[*selfName] == "" {
			die(fmt.Errorf("cluster mode needs -self naming an entry in -peers"))
		}
		if *scen == "" {
			die(fmt.Errorf("cluster mode shards a fleet; use -scenario"))
		}
		clusterCfg = &mycroft.ClusterConfig{
			ID: *clusterID, Self: *selfName, SelfAddr: peers[*selfName],
			Peers: peers, Replicas: *replicas, VNodes: *vnodes,
		}
	}

	// Recording must attach before the first simulated instant for the
	// artifacts to replay byte-for-byte, so both seeding modes defer their
	// Start until the recorders (if any) are armed.
	var (
		svc     *mycroft.Service
		start   func()
		runFor  = *horizon
		jobDesc string
	)
	if *scen != "" {
		spec, err := loadSpec(*scen)
		if err != nil {
			die(err)
		}
		// In cluster mode each peer hosts only the fleet members it owns on
		// the shared ring; identity is preserved, so the shards' union is
		// exactly the full fleet.
		var keep func(index int, id string) bool
		if clusterCfg != nil {
			ring := cluster.NewRing(peerNames(clusterCfg.Peers), clusterCfg.VNodes)
			keep = func(_ int, id string) bool { return ring.Primary(id) == clusterCfg.Self }
		}
		p, err := scenario.PrepareSubset(spec, *seed, keep)
		if err != nil {
			die(err)
		}
		svc = p.Service
		start = p.Start
		runFor = p.Horizon()
		jobDesc = fmt.Sprintf("scenario %s, %d job(s)", spec.Name, len(p.Handles))
		if clusterCfg != nil {
			jobDesc = fmt.Sprintf("scenario %s, %d/%d job(s) on peer %s",
				spec.Name, len(p.Handles), spec.JobCount(), clusterCfg.Self)
		}
	} else {
		var err error
		svc, start, err = seedjob.Assemble(mycroft.JobID(*jobID), *seed, *faultName, *rank, *at, *remedy)
		if err != nil {
			die(err)
		}
		jobDesc = fmt.Sprintf("job %q", *jobID)
	}

	srv := mycroft.NewServer(svc)
	if clusterCfg != nil {
		if err := srv.EnableCluster(*clusterCfg); err != nil {
			die(err)
		}
	}
	if *recordDir != "" {
		if err := srv.RecordTo(*recordDir); err != nil {
			die(err)
		}
		for id, path := range srv.RecordPaths() {
			fmt.Fprintf(os.Stderr, "mycroft-serve: recording job %q to %s\n", id, path)
		}
	}
	start()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	outer := http.NewServeMux()
	outer.Handle("/", srv.Handler())
	if *pprofOn {
		// Explicit mounts keep the daemon's mux self-contained instead of
		// leaning on http.DefaultServeMux.
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	hs := &http.Server{Handler: outer}
	fmt.Fprintf(os.Stderr, "mycroft-serve: listening on http://%s (%s, horizon %v, seed %d)\n",
		ln.Addr(), jobDesc, runFor, *seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mycroft-serve:", err)
		}
	}()

	stopCluster := func() {}
	if clusterCfg != nil {
		srv.JoinPeers()
		stopCluster = srv.StartCluster(*replEvery, *gossEvery)
		fmt.Fprintf(os.Stderr, "mycroft-serve: cluster %q peer %s (R=%d, %d peer(s))\n",
			clusterCfg.ID, clusterCfg.Self, clusterCfg.Replicas, len(clusterCfg.Peers))
	}

	// Drive loop: advance virtual time in steps so subscribers attached
	// early watch the run unfold, then idle serving the final state.
	go func() {
		scan := slowOpScanner(svc, *slowOp)
		for driven := time.Duration(0); driven < runFor; {
			d := *step
			if rem := runFor - driven; d > rem {
				d = rem
			}
			srv.Advance(d)
			driven += d
			scan()
			if *tick > 0 {
				time.Sleep(*tick)
			}
		}
		scan()
		fmt.Fprintf(os.Stderr, "mycroft-serve: horizon %v reached; serving final state\n", runFor)
	}()

	<-ctx.Done()
	stopCluster()
	if clusterCfg != nil {
		// Final replication push plus explicit handoff, so a replica is
		// promoted (and queryable) before this peer's listener dies.
		if n := srv.HandoffAll(); n > 0 {
			fmt.Fprintf(os.Stderr, "mycroft-serve: handed off %d job(s)\n", n)
		}
	}
	// Subscribers get a terminal server-shutdown event before their streams
	// close — a watcher sees the daemon leave, not a silent hangup.
	srv.AnnounceShutdown()
	closed := srv.CloseSubscriptions()
	if err := srv.CloseRecorders(); err != nil {
		fmt.Fprintln(os.Stderr, "mycroft-serve: finalizing recordings:", err)
	}
	fmt.Fprintf(os.Stderr, "mycroft-serve: shutting down (%d subscription(s) force-closed)\n", closed)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
	}
}

// slowOpScanner returns a closure that logs pipeline spans whose wall-clock
// cost crossed the -slow-op threshold. Each call scans every job's recorder
// incrementally (spans past the last one seen) between engine advances, so
// the scan never races the simulation. Threshold 0 disables it.
func slowOpScanner(svc *mycroft.Service, threshold time.Duration) func() {
	if threshold <= 0 {
		return func() {}
	}
	last := make(map[mycroft.JobID]mycroft.SpanID)
	return func() {
		for _, id := range svc.Jobs() {
			res, err := svc.QuerySpans(mycroft.SpanQuery{Job: id, AfterID: last[id]})
			if err != nil {
				continue
			}
			for _, s := range res.Spans {
				last[id] = s.ID
				// Spans still open here are waiting on virtual time (incident
				// roots, pending remedies): their wall span is dominated by
				// tick pacing, not processing cost, so only closed spans count.
				if s.WallEnd != 0 && s.WallDur() >= threshold {
					fmt.Fprintf(os.Stderr, "mycroft-serve: slow-op job=%s span=%d stage=%s cause=%s wall=%v virt=%v\n",
						id, s.ID, s.Stage, s.Cause, s.WallDur(), s.Dur())
				}
			}
		}
	}
}

// loadSpec resolves -scenario: a readable file parses as JSON, otherwise
// the argument names a builtin.
func loadSpec(arg string) (scenario.Spec, error) {
	if data, err := os.ReadFile(arg); err == nil {
		return scenario.Parse(data)
	}
	if spec, ok := scenario.Lookup(arg); ok {
		return spec, nil
	}
	return scenario.Spec{}, fmt.Errorf("mycroft-serve: no file or builtin scenario %q", arg)
}

// parsePeers reads the -peers list: "p1=host:port,p2=host:port,...".
func parsePeers(list string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=addr)", part)
		}
		out[name] = addr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster mode needs -peers name=addr[,name=addr...]")
	}
	return out, nil
}

func peerNames(peers map[string]string) []string {
	out := make([]string, 0, len(peers))
	for name := range peers {
		out = append(out, name)
	}
	return out
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "mycroft-serve:", err)
	os.Exit(1)
}
