// mycroft-bench regenerates every table and figure of the paper's
// evaluation (the experiment index lives in internal/experiments) and
// prints them as text tables. Select experiments with -only (comma-separated ids, e.g.
// "e2,e4"); default runs everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mycroft/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e1..e9); empty = all")
	trials := flag.Int("trials", 3, "trials per fault class in E2")
	runs := flag.Int("runs", 35, "campaign size for E3")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	run := func(id, title string, fn func() string) {
		if !sel(id) {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s — %s ===\n", strings.ToUpper(id), title)
		fmt.Println(fn())
		fmt.Printf("(%s wall time: %v)\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}

	run("e1", "Table 1 capability matrix", func() string { return experiments.RunE1(1).Table() })
	run("e2", "fault injection (§7.1)", func() string { return experiments.RunE2(*trials).Table() })
	run("e3", "detection/RCA latency CDFs", func() string { return experiments.RunE3(*runs).Table() })
	run("e4", "tracing overhead", func() string { return experiments.RunE4(1).Table() })
	run("e5", "anomaly propagation", func() string { return experiments.RunE5([]int{16, 64, 256, 512}).Table() })
	run("e6", "trace data volume", func() string { return experiments.RunE6(1).Table() })
	run("e7", "sampling policy", func() string { return experiments.RunE7(1).Table() })
	run("e8", "straggler thresholds (§9)", func() string { return experiments.RunE8(1).Table() })
	run("e9", "integration triage (Fig. 6)", func() string { return experiments.RunE9(1).Table() })

	if len(want) > 0 {
		for id := range want {
			switch id {
			case "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9":
			default:
				fmt.Fprintf(os.Stderr, "unknown experiment id %q\n", id)
				os.Exit(2)
			}
		}
	}
}
