// mycroft-bench regenerates every table and figure of the paper's
// evaluation (the experiment index lives in internal/experiments) and
// prints them as text tables, plus a multi-tenant service smoke table
// ("svc") exercising the mycroft.Service API. Select with -only
// (comma-separated ids, e.g. "e2,e4,svc"); default runs everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mycroft"
	"mycroft/internal/experiments"
	"mycroft/internal/faults"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e1..e9); empty = all")
	trials := flag.Int("trials", 3, "trials per fault class in E2")
	runs := flag.Int("runs", 35, "campaign size for E3")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	run := func(id, title string, fn func() string) {
		if !sel(id) {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s — %s ===\n", strings.ToUpper(id), title)
		fmt.Println(fn())
		fmt.Printf("(%s wall time: %v)\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}

	run("e1", "Table 1 capability matrix", func() string { return experiments.RunE1(1).Table() })
	run("e2", "fault injection (§7.1)", func() string { return experiments.RunE2(*trials).Table() })
	run("e3", "detection/RCA latency CDFs", func() string { return experiments.RunE3(*runs).Table() })
	run("e4", "tracing overhead", func() string { return experiments.RunE4(1).Table() })
	run("e5", "anomaly propagation", func() string { return experiments.RunE5([]int{16, 64, 256, 512}).Table() })
	run("e6", "trace data volume", func() string { return experiments.RunE6(1).Table() })
	run("e7", "sampling policy", func() string { return experiments.RunE7(1).Table() })
	run("e8", "straggler thresholds (§9)", func() string { return experiments.RunE8(1).Table() })
	run("e9", "integration triage (Fig. 6)", func() string { return experiments.RunE9(1).Table() })
	run("svc", "multi-job service (one engine, 4 tenants)", serviceTable)

	if len(want) > 0 {
		for id := range want {
			switch id {
			case "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "svc":
			default:
				fmt.Fprintf(os.Stderr, "unknown experiment id %q\n", id)
				os.Exit(2)
			}
		}
	}
}

// serviceTable hosts four identical jobs on one Service, kills a NIC on job
// 0 at 15 s, and tabulates per-tenant outcomes: the fault must localize to
// the faulty tenant only.
func serviceTable() string {
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: 1})
	for i := 0; i < 4; i++ {
		svc.MustAddJob("", mycroft.JobOptions{})
	}
	svc.Start()
	lead, _ := svc.Job("job-0")
	lead.Inject(mycroft.Fault{Kind: faults.NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(45 * time.Second)
	defer svc.Stop()

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %8s %s\n", "job", "iters", "records", "triggers", "reports", "first verdict")
	for _, id := range svc.Jobs() {
		h, _ := svc.Job(id)
		reps, _ := svc.QueryReports(mycroft.ReportQuery{Jobs: []mycroft.JobID{id}})
		verdict := "-"
		if len(reps.Reports) > 0 {
			r := reps.Reports[0]
			verdict = fmt.Sprintf("rank %d %s", r.Suspect, r.Category)
		}
		fmt.Fprintf(&b, "%-8s %10d %10d %8d %8d %s\n",
			id, h.Job.IterationsDone(), h.RecordsIngested(), len(h.Triggers()), len(h.Reports()), verdict)
	}
	return b.String()
}
