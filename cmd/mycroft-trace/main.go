// mycroft-trace exercises the cloud database's "observability tool" mode
// (§6.1): run a scenario, then interrogate the sharded trace store through
// the unified query layer — per-rank record counts, the distributed state
// machine at the end of the run, shard occupancy, and optionally the full
// record stream of one rank (fetched in pages, the way an operator console
// would).
//
// The "graph" subcommand (mycroft-trace graph [flags]) instead exports the
// job's live dependency graph as Graphviz dot on stdout, with the latest
// verdict's causal chain and blast radius on stderr:
//
//	mycroft-trace graph -fault nic-down -rank 5 | dot -Tsvg > deps.svg
//
// The "remedy" subcommand attaches the default self-healing policy before
// injecting, then dumps the remediation audit log — every detect→act→verify
// attempt — through the query layer:
//
//	mycroft-trace remedy -fault nic-down -rank 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mycroft"
	"mycroft/internal/faults"
)

func main() {
	var (
		faultName = flag.String("fault", "nic-down", "fault kind (see mycroft-sim) or none")
		rank      = flag.Int("rank", 5, "rank to inject at")
		at        = flag.Duration("at", 15*time.Second, "injection time")
		horizon   = flag.Duration("for", 40*time.Second, "virtual run time")
		dumpRank  = flag.Int("dump", -1, "dump the last -n records of this rank")
		dumpN     = flag.Int("n", 20, "records to dump with -dump")
		pageSize  = flag.Int("page", 512, "query page size for the dump")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	args := os.Args[1:]
	graphMode := len(args) > 0 && args[0] == "graph"
	remedyMode := len(args) > 0 && args[0] == "remedy"
	if graphMode || remedyMode {
		args = args[1:]
	}
	flag.CommandLine.Parse(args)

	opts := mycroft.JobOptions{}
	if remedyMode {
		// Tighten the re-arm so a failed mitigation is re-detected within a
		// short verify window (same tuning as the self-healing builtins).
		opts.Backend.RearmDelay = 10 * time.Second
	}
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: *seed})
	job, err := svc.AddJob("trace", opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if remedyMode {
		p := mycroft.SelfHealPolicy()
		p.Rules = append(p.Rules, mycroft.RemedyRule{Name: "page", Action: mycroft.RemedyEscalate})
		if err := svc.AttachPolicy("trace", p); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	svc.Start()
	if *faultName != "none" {
		job.Inject(mycroft.Fault{Kind: faults.Kind(*faultName), Rank: mycroft.Rank(*rank), At: *at})
	}
	svc.Run(*horizon)
	db := job.Job.DB
	now := svc.Now()

	if remedyMode {
		res, err := svc.QueryRemediations(mycroft.RemediationQuery{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("remediation audit log after %v (%d attempt(s)):\n", *horizon, res.Total)
		for _, a := range res.Attempts {
			fmt.Printf("  %s\n", a.RemedyAttempt)
			fmt.Printf("    reported %v, applied %v, resolved %v\n", a.ReportedAt, a.AppliedAt, a.ResolvedAt)
		}
		if iso := job.Isolated(); len(iso) > 0 {
			fmt.Printf("isolated ranks: %v\n", iso)
		}
		fmt.Printf("iterations completed: %d\n", job.Job.IterationsDone())
		return
	}

	if graphMode {
		// DOT on stdout (pipe into Graphviz); the verdict's chain and blast
		// radius on stderr so the pipe stays clean.
		fmt.Print(job.DependencyDOT())
		if reps := job.Reports(); len(reps) > 0 {
			last := reps[len(reps)-1]
			fmt.Fprintf(os.Stderr, "verdict: %v\n", last)
			for i, h := range last.Chain {
				fmt.Fprintf(os.Stderr, "  hop %d: %v\n", i, h)
			}
			if br, err := svc.BlastRadius(job.ID, last.Suspect); err == nil {
				fmt.Fprintf(os.Stderr, "blast radius now: %v\n", br)
			}
		}
		return
	}

	st := job.StoreStats()
	fmt.Printf("trace store after %v: %d records live, %.1f MB ingested, %d pruned, %d shards\n",
		*horizon, st.Records, float64(st.BytesIngested)/1e6, st.Pruned, len(st.Shards))
	fmt.Print("shard occupancy:")
	for i, ss := range st.Shards {
		fmt.Printf(" s%d=%d", i, ss.Records)
	}
	fmt.Print("\n\n")

	fmt.Println("per-rank record summary:")
	fmt.Printf("%6s %12s %12s %14s %s\n", "rank", "completions", "states", "last-record", "last-op")
	for _, r := range db.Ranks() {
		all, _ := svc.QueryTrace(mycroft.TraceQuery{Ranks: []mycroft.Rank{r}})
		if len(all.Records) == 0 {
			continue
		}
		var comp, st int
		for _, rec := range all.Records {
			if rec.Kind == mycroft.RecordCompletion {
				comp++
			} else {
				st++
			}
		}
		last := all.Records[len(all.Records)-1]
		fmt.Printf("%6d %12d %12d %14v %s seq=%d\n",
			r, comp, st, last.Time, last.Op, last.OpSeq)
	}

	fmt.Println("\ndistributed state machine (freshest state log per rank per comm):")
	for _, r := range db.Ranks() {
		for _, commID := range db.CommsOfRank(r) {
			for ch, rec := range db.LastStatePerChannel(r, commID, job.Job.Eng.Now(), 10*time.Second) {
				fmt.Printf("  rank %2d comm %2d ch %d: %3d/%3d/%3d of %3d chunks, stuck %v\n",
					r, commID, ch, rec.GPUReady, rec.RDMATransmitted, rec.RDMADone, rec.TotalChunks,
					time.Duration(rec.StuckNs).Round(time.Millisecond))
			}
		}
	}

	if *dumpRank >= 0 {
		fmt.Printf("\nlast %d records of rank %d (paged, %d per query):\n", *dumpN, *dumpRank, *pageSize)
		var recs []mycroft.TraceRecord
		q := mycroft.TraceQuery{Ranks: []mycroft.Rank{mycroft.Rank(*dumpRank)}, To: now, Limit: *pageSize}
		pages := 0
		for {
			res, err := svc.QueryTrace(q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			recs = append(recs, res.Records...)
			pages++
			if res.Next == nil {
				break
			}
			q.Cursor = res.Next
		}
		if len(recs) > *dumpN {
			recs = recs[len(recs)-*dumpN:]
		}
		for i := range recs {
			fmt.Println(" ", recs[i].String())
		}
		fmt.Printf("  (%d pages)\n", pages)
	}
}
