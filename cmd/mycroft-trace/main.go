// mycroft-trace exercises the cloud database's "observability tool" mode
// (§6.1): run a scenario, then dump and summarize the raw Coll-level trace —
// per-rank record counts, the distributed state machine at the end of the
// run, and optionally the full record stream of one rank.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mycroft"
	"mycroft/internal/faults"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

func main() {
	var (
		faultName = flag.String("fault", "nic-down", "fault kind (see mycroft-sim) or none")
		rank      = flag.Int("rank", 5, "rank to inject at")
		at        = flag.Duration("at", 15*time.Second, "injection time")
		horizon   = flag.Duration("for", 40*time.Second, "virtual run time")
		dumpRank  = flag.Int("dump", -1, "dump the last -n records of this rank")
		dumpN     = flag.Int("n", 20, "records to dump with -dump")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	sys, err := mycroft.NewSystem(mycroft.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	sys.Start()
	if *faultName != "none" {
		sys.Inject(mycroft.Fault{Kind: faults.Kind(*faultName), Rank: mycroft.Rank(*rank), At: *at})
	}
	sys.Run(*horizon)
	db := sys.Job.DB
	now := sys.Job.Eng.Now()

	fmt.Printf("trace store after %v: %d records, %.1f MB, %d pruned\n\n",
		*horizon, db.Ingested(), float64(db.BytesIngested())/1e6, db.Pruned())

	fmt.Println("per-rank record summary:")
	fmt.Printf("%6s %12s %12s %14s %s\n", "rank", "completions", "states", "last-record", "last-op")
	for _, r := range db.Ranks() {
		recs := db.QueryRank(r, 0, now)
		var comp, st int
		for _, rec := range recs {
			if rec.Kind == trace.KindCompletion {
				comp++
			} else {
				st++
			}
		}
		last := recs[len(recs)-1]
		fmt.Printf("%6d %12d %12d %14v %s seq=%d\n", r, comp, st, last.Time, last.Op, last.OpSeq)
	}

	fmt.Println("\ndistributed state machine (freshest state log per rank per comm):")
	for _, r := range db.Ranks() {
		for _, commID := range db.CommsOfRank(r) {
			for ch, rec := range db.LastStatePerChannel(r, commID, now, 10*time.Second) {
				fmt.Printf("  rank %2d comm %2d ch %d: %3d/%3d/%3d of %3d chunks, stuck %v\n",
					r, commID, ch, rec.GPUReady, rec.RDMATransmitted, rec.RDMADone, rec.TotalChunks,
					time.Duration(rec.StuckNs).Round(time.Millisecond))
			}
		}
	}

	if *dumpRank >= 0 {
		fmt.Printf("\nlast %d records of rank %d:\n", *dumpN, *dumpRank)
		recs := db.QueryRank(topo.Rank(*dumpRank), 0, now)
		if len(recs) > *dumpN {
			recs = recs[len(recs)-*dumpN:]
		}
		for i := range recs {
			fmt.Println(" ", recs[i].String())
		}
	}
}
