// mycroft-trace exercises the cloud database's "observability tool" mode
// (§6.1): interrogate a run's sharded trace store through the unified query
// layer — per-rank record counts, the distributed state machine at the end
// of the run, shard occupancy, and optionally the full record stream of one
// rank (fetched in pages, the way an operator console would).
//
// Every subcommand runs against the transport-agnostic Client interface, so
// the same code path serves two modes:
//
//   - default: build a Service in-process, run the seeded scenario locally,
//     then query it (the classic offline-analysis shape);
//   - -addr host:port: dial a live mycroft-serve daemon and query *it* —
//     no local simulation at all. The injection flags (-fault, -rank, -at,
//     -for, -seed) are ignored; the daemon's run is what it is. A daemon
//     seeded with the same flags yields byte-identical output.
//
// The "graph" subcommand (mycroft-trace graph [flags]) instead exports the
// job's live dependency graph as Graphviz dot on stdout, with the latest
// verdict's causal chain and blast radius on stderr:
//
//	mycroft-trace graph -fault nic-down -rank 5 | dot -Tsvg > deps.svg
//
// The "remedy" subcommand attaches the default self-healing policy before
// injecting (in-process mode; a daemon needs -remedy), then dumps the
// remediation audit log — every detect→act→verify attempt — through the
// query layer:
//
//	mycroft-trace remedy -fault nic-down -rank 5
//	mycroft-trace remedy -addr 127.0.0.1:7466
//
// The "status" subcommand is the operator console: per-job heartbeat health,
// ingest watermarks, store occupancy, subscription fan-out and recent
// remediation outcomes, rendered entirely from virtual-time state so the
// same run prints byte-identically in-process and against a daemon. Pass
// -watch to re-render every -every interval (live daemons only make this
// interesting):
//
//	mycroft-trace status -fault nic-down -rank 5
//	mycroft-trace status -addr 127.0.0.1:7466 -watch
//
// The "spans" subcommand renders the per-incident latency waterfall: every
// pipeline span the job recorded — ingest batches, detection, RCA, report
// publish, stream fan-out, remedy attempts and cluster replication — grouped
// into causal trees and drawn against each incident's own time window, so
// one glance shows where an incident's end-to-end latency went. Pass
// -incident to restrict to one tree:
//
//	mycroft-trace spans -fault gpu-hang -rank 9 -remedy -for 70s
//	mycroft-trace spans -addr 127.0.0.1:7466 -incident trigger-1
//
// The "channels" subcommand renders the multi-modal diagnosis surface: one
// row per channel (tracepoint / log / perf) with its native ingest count,
// published anomalies and delivered verdicts, plus the evidence-fusion
// summary — outcome counts and the latest verdict's fused confidence. Like
// status, every value derives from virtual time, so in-process and -addr
// output are byte-identical for the same run:
//
//	mycroft-trace channels -fault nic-down -rank 5 -remedy
//	mycroft-trace channels -addr 127.0.0.1:7466
//
// The "replay" subcommand re-drives a recorded incident artifact (produced
// by -record on mycroft-serve or mycroft-scenario run, or downloaded live
// from a daemon) through a fresh analysis stack — faithfully, or under
// what-if threshold/policy overrides:
//
//	mycroft-trace replay incident.mycrec -diff
//	mycroft-trace replay incident.mycrec -whatif overrides.json
//	mycroft-trace replay -addr 127.0.0.1:7466 -job trace -o incident.mycrec
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"mycroft"
	"mycroft/internal/seedjob"
	"mycroft/internal/sim"
)

func main() {
	var (
		faultName = flag.String("fault", "nic-down", "fault kind (see mycroft-sim) or none")
		rank      = flag.Int("rank", 5, "rank to inject at")
		at        = flag.Duration("at", 15*time.Second, "injection time")
		horizon   = flag.Duration("for", 40*time.Second, "virtual run time")
		dumpRank  = flag.Int("dump", -1, "dump the last -n records of this rank")
		dumpN     = flag.Int("n", 20, "records to dump with -dump")
		pageSize  = flag.Int("page", 512, "query page size for the dump")
		seed      = flag.Int64("seed", 1, "simulation seed")
		addr      = flag.String("addr", "", "query a live mycroft-serve daemon instead of simulating in-process (comma-separated list dials a cluster: job-aware routing with failover)")
		jobFlag   = flag.String("job", "", "job id to query (default: the daemon's sole job)")
		withRem   = flag.Bool("remedy", false, "status/spans mode, in-process: attach the self-healing policy (parity with a daemon started -remedy)")
		watch     = flag.Bool("watch", false, "status mode: re-render until interrupted")
		every     = flag.Duration("every", time.Second, "status mode: wall-time interval between -watch renders")
		incident  = flag.String("incident", "", "spans mode: restrict to one incident's causal tree (cause label, e.g. trigger-1)")
	)
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "replay" {
		// Replay has its own flag set: it operates on a recorded artifact
		// (file or daemon download), not on a fresh simulation.
		runReplay(args[1:])
		return
	}
	graphMode := len(args) > 0 && args[0] == "graph"
	remedyMode := len(args) > 0 && args[0] == "remedy"
	statusMode := len(args) > 0 && args[0] == "status"
	spansMode := len(args) > 0 && args[0] == "spans"
	channelsMode := len(args) > 0 && args[0] == "channels"
	if graphMode || remedyMode || statusMode || spansMode || channelsMode {
		args = args[1:]
	}
	flag.CommandLine.Parse(args)

	var c mycroft.Client
	var cc *mycroft.ClusterClient
	if strings.Contains(*addr, ",") {
		// A comma-separated -addr is a cluster: route by job, fail over to
		// replicas when a peer dies.
		var err error
		cc, err = mycroft.DialCluster(strings.Split(*addr, ","))
		if err != nil {
			die(err)
		}
		c = cc
	} else if *addr != "" {
		rc, err := mycroft.Dial(*addr)
		if err != nil {
			die(err)
		}
		if id, started := rc.ServerInfo(); id != "" {
			fmt.Fprintf(os.Stderr, "mycroft-trace: connected to %s at %s (up %v)\n",
				id, *addr, time.Since(started).Round(time.Second))
		}
		c = rc
	} else {
		svc, err := buildService(*seed, *faultName, *rank, *at, remedyMode || ((statusMode || spansMode || channelsMode) && *withRem))
		if err != nil {
			die(err)
		}
		svc.Run(*horizon)
		c = svc
	}

	job := mycroft.JobID(*jobFlag)
	var err error
	switch {
	case statusMode:
		render := func() error {
			if e := dumpStatus(c, job, os.Stdout); e != nil {
				return e
			}
			if cc != nil {
				return dumpClusterStatus(cc, os.Stdout)
			}
			return nil
		}
		err = render()
		for err == nil && *watch {
			time.Sleep(*every)
			fmt.Println()
			err = render()
		}
	case remedyMode:
		err = dumpRemedy(c, job, os.Stdout)
	case spansMode:
		err = dumpSpans(c, job, *incident, os.Stdout)
	case channelsMode:
		err = dumpChannels(c, job, os.Stdout)
	case graphMode:
		err = dumpGraph(c, job, os.Stdout, os.Stderr)
	default:
		err = dumpStore(c, job, os.Stdout, *dumpRank, *dumpN, *pageSize)
	}
	if err != nil {
		die(err)
	}
}

// buildService wires the in-process run: one job (id "trace"), the
// self-healing policy in remedy mode, the fault injected after Start.
// mycroft-serve's single-job mode calls the same seedjob constructor — that
// is what makes in-process and -addr output byte-identical for the same
// flags.
func buildService(seed int64, faultName string, rank int, at time.Duration, remedyMode bool) (*mycroft.Service, error) {
	return seedjob.Build("trace", seed, faultName, rank, at, remedyMode)
}

// jobInfo resolves which hosted job to report on: the -job flag, or the
// sole job when the flag is empty.
func jobInfo(c mycroft.Client, job mycroft.JobID) (mycroft.JobsResult, mycroft.JobInfo, error) {
	jobs, err := c.ListJobs()
	if err != nil {
		return mycroft.JobsResult{}, mycroft.JobInfo{}, err
	}
	if job == "" {
		if len(jobs.Jobs) != 1 {
			return mycroft.JobsResult{}, mycroft.JobInfo{}, fmt.Errorf("service hosts %d jobs; pick one with -job", len(jobs.Jobs))
		}
		return jobs, jobs.Jobs[0], nil
	}
	for _, j := range jobs.Jobs {
		if j.ID == job {
			return jobs, j, nil
		}
	}
	return mycroft.JobsResult{}, mycroft.JobInfo{}, fmt.Errorf("no job %q", job)
}

// jobsFilter turns the -job flag into a multi-job query restriction.
func jobsFilter(job mycroft.JobID) []mycroft.JobID {
	if job == "" {
		return nil
	}
	return []mycroft.JobID{job}
}

// dumpStore renders the store occupancy, the per-rank record summary, the
// reconstructed distributed state machine, and optionally one rank's paged
// record dump — all through Client queries.
func dumpStore(c mycroft.Client, job mycroft.JobID, w io.Writer, dumpRank, dumpN, pageSize int) error {
	jobs, info, err := jobInfo(c, job)
	if err != nil {
		return err
	}
	now := jobs.Now
	st := info.Store
	fmt.Fprintf(w, "trace store after %v: %d records live, %.1f MB ingested, %d pruned, %d shards\n",
		now, st.Records, float64(st.BytesIngested)/1e6, st.Pruned, len(st.Shards))
	fmt.Fprint(w, "shard occupancy:")
	for i, ss := range st.Shards {
		fmt.Fprintf(w, " s%d=%d", i, ss.Records)
	}
	fmt.Fprint(w, "\n\n")

	// One full fetch per rank feeds both the summary table and the state
	// machine below; ranks with no records are skipped. Bounding every
	// query at the header's `now` keeps the whole report one consistent
	// snapshot even when the daemon's drive loop is still advancing.
	byRank := make(map[mycroft.Rank][]mycroft.TraceRecord)
	var ranks []mycroft.Rank
	for r := 0; r < info.WorldSize; r++ {
		res, err := c.QueryTrace(mycroft.TraceQuery{Job: job, Ranks: []mycroft.Rank{mycroft.Rank(r)}, To: now})
		if err != nil {
			return err
		}
		if len(res.Records) > 0 {
			ranks = append(ranks, mycroft.Rank(r))
			byRank[mycroft.Rank(r)] = res.Records
		}
	}

	fmt.Fprintln(w, "per-rank record summary:")
	fmt.Fprintf(w, "%6s %12s %12s %14s %s\n", "rank", "completions", "states", "last-record", "last-op")
	for _, r := range ranks {
		recs := byRank[r]
		var comp, st int
		for _, rec := range recs {
			if rec.Kind == mycroft.RecordCompletion {
				comp++
			} else {
				st++
			}
		}
		last := recs[len(recs)-1]
		fmt.Fprintf(w, "%6d %12d %12d %14v %s seq=%d\n",
			r, comp, st, last.Time, last.Op, last.OpSeq)
	}

	fmt.Fprintln(w, "\ndistributed state machine (freshest state log per rank per comm):")
	for _, r := range ranks {
		for _, commID := range commsOf(byRank[r]) {
			for _, rec := range lastStatePerChannel(byRank[r], commID, now, 10*time.Second) {
				fmt.Fprintf(w, "  rank %2d comm %2d ch %d: %3d/%3d/%3d of %3d chunks, stuck %v\n",
					r, commID, rec.Channel, rec.GPUReady, rec.RDMATransmitted, rec.RDMADone, rec.TotalChunks,
					time.Duration(rec.StuckNs).Round(time.Millisecond))
			}
		}
	}

	if dumpRank >= 0 {
		fmt.Fprintf(w, "\nlast %d records of rank %d (paged, %d per query):\n", dumpN, dumpRank, pageSize)
		var recs []mycroft.TraceRecord
		q := mycroft.TraceQuery{Job: job, Ranks: []mycroft.Rank{mycroft.Rank(dumpRank)}, To: now, Limit: pageSize}
		pages := 0
		for {
			res, err := c.QueryTrace(q)
			if err != nil {
				return err
			}
			recs = append(recs, res.Records...)
			pages++
			if res.Next == nil {
				break
			}
			q.Cursor = res.Next
		}
		if len(recs) > dumpN {
			recs = recs[len(recs)-dumpN:]
		}
		for i := range recs {
			fmt.Fprintln(w, " ", recs[i].String())
		}
		fmt.Fprintf(w, "  (%d pages)\n", pages)
	}
	return nil
}

// commsOf lists the communicators a rank's records mention, ascending.
func commsOf(recs []mycroft.TraceRecord) []uint64 {
	var out []uint64
	for _, rec := range recs {
		if !slices.Contains(out, rec.CommID) {
			out = append(out, rec.CommID)
		}
	}
	slices.Sort(out)
	return out
}

// lastStatePerChannel reconstructs the freshest state log per channel for
// one communicator, looking back at most window from now — the same
// reduction clouddb.LastStatePerChannel performs server-side, computed here
// from the wire records so remote output matches in-process output.
// Channels render in ascending order.
func lastStatePerChannel(recs []mycroft.TraceRecord, commID uint64, now time.Duration, window time.Duration) []mycroft.TraceRecord {
	last := make(map[int32]mycroft.TraceRecord)
	for _, rec := range recs {
		t := time.Duration(rec.Time)
		if rec.Kind != mycroft.RecordState || rec.CommID != commID || t <= now-window || t > now {
			continue
		}
		last[rec.Channel] = rec // records are time-ascending: last wins
	}
	channels := make([]int32, 0, len(last))
	for ch := range last {
		channels = append(channels, ch)
	}
	slices.Sort(channels)
	out := make([]mycroft.TraceRecord, 0, len(channels))
	for _, ch := range channels {
		out = append(out, last[ch])
	}
	return out
}

// dumpGraph exports the dependency graph as dot on stdout and the latest
// verdict's chain and blast radius on stderr, so the pipe stays clean.
func dumpGraph(c mycroft.Client, job mycroft.JobID, stdout, stderr io.Writer) error {
	deps, err := c.QueryDependencies(mycroft.DependencyQuery{Job: job, RenderDOT: true})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, deps.DOT)
	reps, err := c.QueryReports(mycroft.ReportQuery{Jobs: jobsFilter(job)})
	if err != nil {
		return err
	}
	if len(reps.Reports) > 0 {
		last := reps.Reports[len(reps.Reports)-1].Report
		fmt.Fprintf(stderr, "verdict: %v\n", last)
		for i, h := range last.Chain {
			fmt.Fprintf(stderr, "  hop %d: %v\n", i, h)
		}
		if br, err := c.BlastRadius(deps.Job, last.Suspect); err == nil {
			fmt.Fprintf(stderr, "blast radius now: %v\n", br)
		}
	}
	return nil
}

// dumpRemedy renders the remediation audit log through the query layer.
func dumpRemedy(c mycroft.Client, job mycroft.JobID, w io.Writer) error {
	jobs, info, err := jobInfo(c, job)
	if err != nil {
		return err
	}
	res, err := c.QueryRemediations(mycroft.RemediationQuery{Jobs: jobsFilter(job)})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "remediation audit log after %v (%d attempt(s)):\n", jobs.Now, res.Total)
	for _, a := range res.Attempts {
		fmt.Fprintf(w, "  %s\n", a.RemedyAttempt)
		fmt.Fprintf(w, "    reported %v, applied %v, resolved %v\n", a.ReportedAt, a.AppliedAt, a.ResolvedAt)
	}
	if len(info.Isolated) > 0 {
		fmt.Fprintf(w, "isolated ranks: %v\n", info.Isolated)
	}
	fmt.Fprintf(w, "iterations completed: %d\n", info.Iterations)
	return nil
}

// dumpSpans renders the per-incident latency waterfall: spans grouped into
// causal trees (children indented under their parent), each with a
// proportional bar over its tree's own time window. Only virtual timestamps
// are printed, so the same run renders byte-identically in-process and
// against a daemon; the wall-clock fields exist for profiling (see -slow-op
// on mycroft-serve) and never reach this surface.
func dumpSpans(c mycroft.Client, job mycroft.JobID, incident string, w io.Writer) error {
	jobs, info, err := jobInfo(c, job)
	if err != nil {
		return err
	}
	res, err := c.QuerySpans(mycroft.SpanQuery{Job: info.ID, Incident: incident})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pipeline spans for job %q after %v: %d span(s)", info.ID, jobs.Now, res.Total)
	if res.Dropped > 0 {
		fmt.Fprintf(w, ", %d overwritten", res.Dropped)
	}
	fmt.Fprintln(w)

	present := make(map[mycroft.SpanID]bool, len(res.Spans))
	for _, s := range res.Spans {
		present[s.ID] = true
	}
	children := make(map[mycroft.SpanID][]mycroft.Span)
	var roots []mycroft.Span
	for _, s := range res.Spans {
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}

	rendered := 0
	for _, root := range roots {
		// Only incident-rooted trees draw; per-batch ingest spans that never
		// joined an incident are summarized below instead of spamming the
		// waterfall.
		if root.Stage != mycroft.StageIncident {
			continue
		}
		// The tree's time window: bars scale to [earliest start, latest end]
		// across the whole tree, so adopted ingest spans that began before
		// the trigger still land on the canvas.
		start, end := root.Start, root.End
		var measure func(s mycroft.Span)
		measure = func(s mycroft.Span) {
			if s.Start < start {
				start = s.Start
			}
			if s.End > end {
				end = s.End
			}
			for _, ch := range children[s.ID] {
				measure(ch)
			}
		}
		measure(root)

		fmt.Fprintf(w, "\nincident %s: %v -> ", root.Cause, root.Start)
		if root.End == 0 {
			fmt.Fprint(w, "open\n")
		} else {
			fmt.Fprintf(w, "%v (%v end-to-end)\n", root.End, root.Dur())
		}
		var walk func(s mycroft.Span, depth int)
		walk = func(s mycroft.Span, depth int) {
			rendered++
			times := fmt.Sprintf("%v -> open", s.Start)
			if s.End != 0 {
				times = fmt.Sprintf("%v -> %v (%v)", s.Start, s.End, s.Dur())
			}
			extra := ""
			if s.Peer != "" {
				extra += " peer=" + s.Peer
			}
			if s.Detail != "" {
				extra += " — " + s.Detail
			}
			fmt.Fprintf(w, "  #%-4d %-22s %s %s%s\n",
				s.ID, strings.Repeat("  ", depth)+s.Stage, spanBar(s, start, end.Sub(start)), times, extra)
			for _, ch := range children[s.ID] {
				walk(ch, depth+1)
			}
		}
		walk(root, 0)
	}
	if out := len(res.Spans) - rendered; out > 0 {
		fmt.Fprintf(w, "\n%d span(s) outside incident trees (unadopted ingest/upload batches)\n", out)
	}
	return nil
}

// spanBar draws one span's proportional bar on a fixed-width canvas scaled
// to its tree's time window: '#' for duration, '|' for an instantaneous
// span, '+' running to the edge for a span still open, '.' for empty canvas.
func spanBar(s mycroft.Span, start sim.Time, total time.Duration) string {
	const width = 24
	b := []byte(strings.Repeat(".", width))
	if total <= 0 {
		b[0] = '|'
		return string(b)
	}
	cell := func(d time.Duration) int {
		i := int(float64(d) / float64(total) * width)
		return max(0, min(width-1, i))
	}
	from := cell(s.Start.Sub(start))
	switch {
	case s.End == 0:
		for i := from; i < width; i++ {
			b[i] = '+'
		}
	case s.Dur() <= 0:
		b[from] = '|'
	default:
		to := cell(s.Start.Sub(start) + s.Dur())
		for i := from; i <= to; i++ {
			b[i] = '#'
		}
	}
	return string(b)
}

// dumpStatus renders the operator console: the service clock, subscription
// fan-out, and each job's heartbeat verdict, ingest watermark, store
// occupancy and recent remediation outcomes. Every printed value derives
// from virtual time, so the same run renders byte-identically in-process
// and against a daemon; process-scoped facts (daemon identity, wall-clock
// uptime) go to stderr at dial time instead.
func dumpStatus(c mycroft.Client, job mycroft.JobID, w io.Writer) error {
	health, err := c.Health()
	if err != nil {
		return err
	}
	jobs, err := c.ListJobs()
	if err != nil {
		return err
	}
	info := make(map[mycroft.JobID]mycroft.JobInfo, len(jobs.Jobs))
	for _, j := range jobs.Jobs {
		info[j.ID] = j
	}
	rem, err := c.QueryRemediations(mycroft.RemediationQuery{Jobs: jobsFilter(job)})
	if err != nil {
		return err
	}
	attempts := make(map[mycroft.JobID]int)
	lastAttempt := make(map[mycroft.JobID]mycroft.JobRemediation)
	for _, a := range rem.Attempts {
		attempts[a.Job]++
		lastAttempt[a.Job] = a // report-time ordered: last wins
	}

	fmt.Fprintf(w, "mycroft status at %v: %d job(s)\n", health.Now, len(health.Jobs))
	fmt.Fprintf(w, "subscriptions: %d active, %d delivered, %d dropped\n",
		health.Subs.Active, health.Subs.Delivered, health.Subs.Dropped)
	shown := 0
	for _, jh := range health.Jobs {
		if job != "" && jh.Job != job {
			continue
		}
		shown++
		ji := info[jh.Job]
		fmt.Fprintf(w, "\njob %q: %s", jh.Job, jh.State)
		if jh.Reason != "" {
			fmt.Fprintf(w, " since %v — %s", jh.Since, jh.Reason)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  last ingest %v (%v ago); %d records ingested, %d live, %d pruned\n",
			jh.LastIngest, health.Now-jh.LastIngest, ji.Records, ji.Store.Records, ji.Store.Pruned)
		fmt.Fprintf(w, "  world size %d, iterations %d", ji.WorldSize, ji.Iterations)
		if ji.Policy != "" {
			fmt.Fprintf(w, ", policy %q", ji.Policy)
		}
		if len(ji.Isolated) > 0 {
			fmt.Fprintf(w, ", isolated %v", ji.Isolated)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "  shards:")
		for i, ss := range ji.Store.Shards {
			fmt.Fprintf(w, " s%d=%d", i, ss.Records)
		}
		fmt.Fprintln(w)
		if n := attempts[jh.Job]; n > 0 {
			la := lastAttempt[jh.Job]
			fmt.Fprintf(w, "  remediation: %d attempt(s), last %s rank %d -> %s at %v\n",
				n, la.Action.Kind, la.Action.Rank, la.Outcome, la.ResolvedAt)
		}
	}
	if job != "" && shown == 0 {
		return fmt.Errorf("no job %q", job)
	}
	return nil
}

// dumpChannels renders the multi-modal diagnosis surface: per-channel ingest
// and finding counters in canonical order, then the fusion summary. Outcome
// counts print in the fixed single/corroborated/conflicted order (never map
// order) and only virtual timestamps appear, so the same run renders
// byte-identically in-process and against a daemon.
func dumpChannels(c mycroft.Client, job mycroft.JobID, w io.Writer) error {
	jobs, info, err := jobInfo(c, job)
	if err != nil {
		return err
	}
	res, err := c.ChannelStats(info.ID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "diagnosis channels for job %q after %v:\n", info.ID, jobs.Now)
	fmt.Fprintf(w, "  %-11s %10s %10s %8s\n", "CHANNEL", "INGESTED", "ANOMALIES", "REPORTS")
	for _, ch := range res.Channels {
		fmt.Fprintf(w, "  %-11s %10d %10d %8d", ch.Channel, ch.Ingested, ch.Anomalies, ch.Reports)
		if ch.Channel == mycroft.ModalityLog {
			fmt.Fprintf(w, "  %d template cluster(s)", ch.Templates)
		}
		fmt.Fprintln(w)
	}
	fu := res.Fusion
	var delivered uint64
	for _, n := range fu.Outcomes {
		delivered += n
	}
	fmt.Fprintf(w, "fusion (window %v): %d delivered report(s)", fu.Window, delivered)
	for _, out := range []string{mycroft.FusionSingle, mycroft.FusionCorroborated, mycroft.FusionConflicted} {
		if n := fu.Outcomes[out]; n > 0 {
			fmt.Fprintf(w, " %s=%d", out, n)
		}
	}
	fmt.Fprintln(w)
	if fu.LastOutcome != "" {
		fmt.Fprintf(w, "  last verdict: %s (confidence %.2f)\n", fu.LastOutcome, fu.LastConfidence)
	}
	return nil
}

// dumpClusterStatus renders the fleet's membership and placement under the
// per-job status: one row per peer (the client's own reachability overrides
// the gossip view — a peer nobody can dial is dead no matter what it last
// said), then one row per job showing where it lives and how far its
// replicas have caught up.
func dumpClusterStatus(cc *mycroft.ClusterClient, w io.Writer) error {
	info, err := cc.ClusterInfo()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncluster %q: %d peer(s), R=%d\n", info.ClusterID, len(info.Peers), info.Replicas)
	fmt.Fprintf(w, "  %-8s %-22s %-8s %s\n", "PEER", "ADDR", "STATE", "LAST-SEEN")
	for _, p := range info.Peers {
		last := "-"
		if p.LastSeenUnixMs > 0 {
			last = time.Since(time.UnixMilli(p.LastSeenUnixMs)).Round(time.Second).String() + " ago"
		}
		fmt.Fprintf(w, "  %-8s %-22s %-8s %s\n", p.Name, p.Addr, p.State, last)
	}
	if len(info.Jobs) > 0 {
		fmt.Fprintf(w, "  %-10s %-8s %-14s %-10s %s\n", "JOB", "PRIMARY", "REPLICAS", "WHERE", "WATERMARK")
		for _, j := range info.Jobs {
			where := "replicated"
			switch {
			case j.Promoted:
				where = "promoted"
			case j.Local:
				where = "primary"
			}
			fmt.Fprintf(w, "  %-10s %-8s %-14s %-10s %d\n",
				j.ID, j.Primary, strings.Join(j.Replicas, ","), where, j.Watermark)
		}
	}
	if s := info.Stats; s != nil {
		fmt.Fprintf(w, "  replication: %d event(s) in %d batch(es), %d failure(s), %d handoff(s)\n",
			s.ReplicatedEvents, s.ReplicationBatches, s.ReplicationFailures, s.Handoffs)
		fmt.Fprintf(w, "  tail pages served: %d primary, %d replica, %d promoted\n",
			s.TailPrimary, s.TailReplica, s.TailPromoted)
	}
	if n := cc.Failovers(); n > 0 {
		fmt.Fprintf(w, "  failovers this session: %d\n", n)
	}
	return nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
