package main

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"mycroft"
)

// dialTestDaemon builds the server half of the acceptance setup: a Service
// seeded exactly like buildService, exposed over real HTTP, driven to the
// horizon in daemon-sized steps.
func dialTestDaemon(t *testing.T, seed int64, fault string, rank int, at, horizon time.Duration, remedyMode bool) *mycroft.RemoteClient {
	t.Helper()
	svc, err := buildService(seed, fault, rank, at, remedyMode)
	if err != nil {
		t.Fatal(err)
	}
	srv := mycroft.NewServer(svc)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for driven := time.Duration(0); driven < horizon; driven += time.Second {
		srv.Advance(time.Second)
	}
	rc, err := mycroft.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// TestRemoteOutputByteIdentical is the PR's acceptance criterion: every
// mycroft-trace subcommand must render byte-identical output for the same
// seeded run whether it queries an in-process Service or a mycroft-serve
// daemon over the wire.
func TestRemoteOutputByteIdentical(t *testing.T) {
	const (
		seed    = int64(1)
		fault   = "nic-down"
		rank    = 5
		at      = 15 * time.Second
		horizon = 40 * time.Second
	)

	t.Run("store", func(t *testing.T) {
		local, err := buildService(seed, fault, rank, at, false)
		if err != nil {
			t.Fatal(err)
		}
		local.Run(horizon)
		remote := dialTestDaemon(t, seed, fault, rank, at, horizon, false)

		var inproc, overWire bytes.Buffer
		if err := dumpStore(local, "", &inproc, rank, 10, 256); err != nil {
			t.Fatal(err)
		}
		if err := dumpStore(remote, "", &overWire, rank, 10, 256); err != nil {
			t.Fatal(err)
		}
		if inproc.String() != overWire.String() {
			t.Errorf("store dump differs in-process vs -addr:\n--- in-process ---\n%s\n--- over wire ---\n%s", inproc.String(), overWire.String())
		}
		if inproc.Len() == 0 {
			t.Error("store dump is empty")
		}
	})

	t.Run("graph", func(t *testing.T) {
		local, err := buildService(seed, fault, rank, at, false)
		if err != nil {
			t.Fatal(err)
		}
		local.Run(horizon)
		remote := dialTestDaemon(t, seed, fault, rank, at, horizon, false)

		var lo, le, ro, re bytes.Buffer
		if err := dumpGraph(local, "", &lo, &le); err != nil {
			t.Fatal(err)
		}
		if err := dumpGraph(remote, "", &ro, &re); err != nil {
			t.Fatal(err)
		}
		if lo.String() != ro.String() {
			t.Errorf("graph dot differs:\n--- in-process ---\n%s\n--- over wire ---\n%s", lo.String(), ro.String())
		}
		if le.String() != re.String() {
			t.Errorf("graph verdict differs:\n--- in-process ---\n%s\n--- over wire ---\n%s", le.String(), re.String())
		}
		if lo.Len() == 0 || le.Len() == 0 {
			t.Errorf("graph output empty: dot %d bytes, verdict %d bytes", lo.Len(), le.Len())
		}
	})

	t.Run("status", func(t *testing.T) {
		// Remedy mode so the console's remediation footer renders too.
		const statusHorizon = 70 * time.Second
		local, err := buildService(seed, fault, rank, at, true)
		if err != nil {
			t.Fatal(err)
		}
		local.Run(statusHorizon)
		remote := dialTestDaemon(t, seed, fault, rank, at, statusHorizon, true)

		var inproc, overWire bytes.Buffer
		if err := dumpStatus(local, "", &inproc); err != nil {
			t.Fatal(err)
		}
		if err := dumpStatus(remote, "", &overWire); err != nil {
			t.Fatal(err)
		}
		if inproc.String() != overWire.String() {
			t.Errorf("status differs in-process vs -addr:\n--- in-process ---\n%s\n--- over wire ---\n%s", inproc.String(), overWire.String())
		}
		for _, want := range []string{"mycroft status at", "subscriptions:", `job "trace"`, "remediation:"} {
			if !bytes.Contains(inproc.Bytes(), []byte(want)) {
				t.Errorf("status output missing %q:\n%s", want, inproc.String())
			}
		}
	})

	t.Run("spans", func(t *testing.T) {
		// Remedy mode over the full horizon so the waterfall covers the whole
		// pipeline: ingest -> detect -> rca -> publish -> remedy -> verified.
		const spansHorizon = 70 * time.Second
		local, err := buildService(seed, fault, rank, at, true)
		if err != nil {
			t.Fatal(err)
		}
		local.Run(spansHorizon)
		remote := dialTestDaemon(t, seed, fault, rank, at, spansHorizon, true)

		for _, incident := range []string{"", "trigger-1"} {
			var inproc, overWire bytes.Buffer
			if err := dumpSpans(local, "", incident, &inproc); err != nil {
				t.Fatal(err)
			}
			if err := dumpSpans(remote, "", incident, &overWire); err != nil {
				t.Fatal(err)
			}
			if inproc.String() != overWire.String() {
				t.Errorf("spans waterfall (incident=%q) differs in-process vs -addr:\n--- in-process ---\n%s\n--- over wire ---\n%s",
					incident, inproc.String(), overWire.String())
			}
			for _, want := range []string{"incident trigger-1", "rca", "remedy-verify"} {
				if !bytes.Contains(inproc.Bytes(), []byte(want)) {
					t.Errorf("spans output (incident=%q) missing %q:\n%s", incident, want, inproc.String())
				}
			}
		}
	})

	t.Run("remedy", func(t *testing.T) {
		const remedyHorizon = 70 * time.Second
		local, err := buildService(seed, fault, rank, at, true)
		if err != nil {
			t.Fatal(err)
		}
		local.Run(remedyHorizon)
		remote := dialTestDaemon(t, seed, fault, rank, at, remedyHorizon, true)

		var inproc, overWire bytes.Buffer
		if err := dumpRemedy(local, "", &inproc); err != nil {
			t.Fatal(err)
		}
		if err := dumpRemedy(remote, "", &overWire); err != nil {
			t.Fatal(err)
		}
		if inproc.String() != overWire.String() {
			t.Errorf("remedy dump differs:\n--- in-process ---\n%s\n--- over wire ---\n%s", inproc.String(), overWire.String())
		}
		if !bytes.Contains(inproc.Bytes(), []byte("remedy")) {
			t.Errorf("remedy dump has no attempts:\n%s", inproc.String())
		}
	})
}
