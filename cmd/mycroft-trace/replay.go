package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mycroft"
	"mycroft/internal/replay"
)

// runReplay implements `mycroft-trace replay`: decode an incident artifact,
// re-drive it through a fresh analysis stack, and report how the replayed
// conclusions relate to the recorded ones.
//
//	mycroft-trace replay <artifact.mycrec> [-whatif file.json] [-diff]
//	mycroft-trace replay -addr host:port [-job id] [-o saved.mycrec] [flags]
//
// A faithful replay (no -whatif) reproduces the original triggers and
// reports byte-for-byte; -diff verifies that and exits 1 on drift. With
// -whatif the artifact's evidence is re-judged under overridden thresholds
// and/or an alternative policy, and the diff shows what would have changed.
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: mycroft-trace replay <artifact.mycrec> [flags]
       mycroft-trace replay -addr host:port [-job id] [flags]

  -whatif FILE  re-judge under overrides: JSON with threshold fields
                (window_ns, throughput_drop, straggler_late_ns, chase_depth,
                ...) and/or a "policy" to shadow-match against the verdicts
  -diff         print the recorded-vs-replayed diff; without -whatif, exit 1
                when a faithful replay drifts
  -addr ADDR    download the artifact from a live mycroft-serve daemon
                (requires -record on the daemon) instead of reading a file
  -job ID       job to download with -addr (default "trace")
  -o FILE       with -addr: also save the downloaded artifact to FILE
`)
	}
	whatifPath := fs.String("whatif", "", "what-if overrides file (JSON)")
	diffMode := fs.Bool("diff", false, "diff recorded vs replayed outcomes")
	addr := fs.String("addr", "", "download from a live daemon")
	jobFlag := fs.String("job", "trace", "job id to download with -addr")
	outPath := fs.String("o", "", "save the downloaded artifact here")

	// Accept the artifact path anywhere among the flags, like scenario run.
	var target string
	rest := args
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		target, rest = rest[0], rest[1:]
	}
	_ = fs.Parse(rest)
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
		_ = fs.Parse(fs.Args()[1:])
	}
	if (target == "") == (*addr == "") {
		fs.Usage()
		os.Exit(2)
	}

	var src io.Reader
	if *addr != "" {
		rc, err := mycroft.Dial(*addr)
		if err != nil {
			die(err)
		}
		var buf bytes.Buffer
		if err := rc.FetchRecord(mycroft.JobID(*jobFlag), &buf); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "mycroft-trace: downloaded %d bytes for job %q\n", buf.Len(), *jobFlag)
		if *outPath != "" {
			if err := os.WriteFile(*outPath, buf.Bytes(), 0o644); err != nil {
				die(err)
			}
			fmt.Fprintf(os.Stderr, "mycroft-trace: saved artifact to %s\n", *outPath)
		}
		src = &buf
	} else {
		f, err := os.Open(target)
		if err != nil {
			die(err)
		}
		defer f.Close()
		src = f
	}

	opts, whatif, err := replayOptions(*whatifPath)
	if err != nil {
		die(err)
	}
	res, err := mycroft.Replay(src, opts)
	if err != nil {
		die(err)
	}
	renderReplay(os.Stdout, res, whatif)

	if *diffMode || whatif {
		d := mycroft.DiffOutcomes(res.Recorded, res.Replayed)
		fmt.Print(d.Render())
		// A faithful replay must not drift; under what-if, drift is the point.
		if *diffMode && !whatif && !d.Zero() {
			os.Exit(1)
		}
	}
}

// replayOptions loads the -whatif file (when given) into replay options and
// reports whether any what-if adjustment is active.
func replayOptions(path string) (mycroft.ReplayOptions, bool, error) {
	var opts mycroft.ReplayOptions
	if path == "" {
		return opts, false, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return opts, false, err
	}
	var w replay.WhatIf
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return opts, false, fmt.Errorf("mycroft-trace: parsing %s: %w", path, err)
	}
	whatif := false
	if !w.Overrides.Zero() {
		o := w.Overrides
		opts.Overrides = &o
		whatif = true
	}
	if w.Policy != nil {
		p, err := w.Policy.Policy()
		if err != nil {
			return opts, false, err
		}
		opts.Policy = &p
		whatif = true
	}
	if !whatif {
		return opts, false, fmt.Errorf("mycroft-trace: %s sets no overrides and no policy", path)
	}
	return opts, true, nil
}

// renderReplay prints the artifact's self-description and both outcome
// streams. Everything derives from the artifact, so output is deterministic.
func renderReplay(w io.Writer, res *mycroft.ReplayResult, whatif bool) {
	h := res.Header
	span := "incomplete (no footer — live snapshot)"
	end := time.Duration(0)
	if res.Complete {
		end = time.Duration(res.Footer.EndNs)
		span = fmt.Sprintf("complete, ends at %v", end)
	}
	fmt.Fprintf(w, "artifact: job %q seed %d world %d (%s)\n", h.Job, h.Seed, h.WorldSize, h.CreatedBy)
	fmt.Fprintf(w, "  topo %dx%d tp=%d pp=%d dp=%d, %d sampled rank(s), starts at %v, %s\n",
		h.Topo.Nodes, h.Topo.GPUsPerNode, h.Topo.TP, h.Topo.PP, h.Topo.DP,
		len(h.SampledRanks), time.Duration(h.StartNs), span)
	fmt.Fprintf(w, "  replayed %d record(s), %d evaluation pass(es)\n", res.RecordsIngested, res.Evals)
	mode := "faithful"
	if whatif {
		mode = "what-if"
	}
	fmt.Fprintf(w, "recorded: %d trigger(s), %d report(s)\n", len(res.Recorded.Triggers), len(res.Recorded.Reports))
	fmt.Fprintf(w, "replayed (%s): %d trigger(s), %d report(s)\n", mode, len(res.Replayed.Triggers), len(res.Replayed.Reports))
	for _, tr := range res.Replayed.Triggers {
		fmt.Fprintf(w, "  trigger: %s\n", tr)
	}
	for _, rep := range res.Replayed.Reports {
		fmt.Fprintf(w, "  report:  %s\n", rep)
	}
	for _, sh := range res.Shadow {
		fmt.Fprintf(w, "  shadow:  %s\n", sh)
	}
}
