// mycroft-sim runs one fault scenario end to end on a simulated training
// job with the Mycroft backend attached, printing the live timeline:
// iterations, the trigger firing, the root-cause verdict and the Fig. 6
// triage outcome.
//
// Example:
//
//	mycroft-sim -fault nic-down -rank 5 -at 15s -for 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mycroft"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
)

func main() {
	var (
		faultName = flag.String("fault", "nic-down", "fault kind: nic-down|nic-flap|link-loss|nic-degrade|gpu-hang|gpu-slow|pcie-degrade|proxy-crash|dataloader-stall|sync-mismatch|compute-hang|none")
		rank      = flag.Int("rank", 5, "rank to inject at")
		at        = flag.Duration("at", 15*time.Second, "injection time")
		horizon   = flag.Duration("for", 60*time.Second, "virtual run time")
		severity  = flag.Float64("severity", 0, "fault severity (0 = per-kind default)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		nodes     = flag.Int("nodes", 2, "nodes")
		gpus      = flag.Int("gpus", 4, "GPUs per node")
		tp        = flag.Int("tp", 2, "tensor parallel size")
		pp        = flag.Int("pp", 2, "pipeline parallel size")
		dp        = flag.Int("dp", 2, "data parallel size")
		commHeavy = flag.Bool("comm-heavy", false, "weight iterations toward communication")
	)
	flag.Parse()

	sys, err := mycroft.NewSystem(mycroft.Options{
		Seed:      *seed,
		Topo:      mycroft.TopoConfig{Nodes: *nodes, GPUsPerNode: *gpus, TP: *tp, PP: *pp, DP: *dp},
		CommHeavy: *commHeavy,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	sys.Job.OnIteration = func(i int, start, end sim.Time) {
		if i%5 == 0 {
			fmt.Printf("[%8v] iteration %d done (%v)\n", end, i, end.Sub(start).Round(time.Millisecond))
		}
	}
	sys.OnTrigger = func(tr mycroft.Trigger) { fmt.Printf("[%8v] TRIGGER  %v\n", tr.At, tr) }
	sys.OnReport = func(r mycroft.Report) { fmt.Printf("[%8v] VERDICT  %v\n", r.AnalyzedAt, r) }

	fmt.Printf("cluster: %d nodes × %d GPUs (TP=%d PP=%d DP=%d), sampled ranks: %v\n",
		*nodes, *gpus, *tp, *pp, *dp, sys.Backend.Sampled())
	sys.Start()

	if *faultName != "none" {
		spec := mycroft.Fault{Kind: faults.Kind(*faultName), Rank: mycroft.Rank(*rank), At: *at, Severity: *severity}
		fmt.Printf("injecting %v\n", spec)
		sys.Inject(spec)
	}
	sys.Run(*horizon)

	fmt.Printf("\n--- summary after %v virtual ---\n", *horizon)
	fmt.Printf("iterations completed: %d\n", sys.Job.IterationsDone())
	fmt.Printf("trace records stored: %d (%0.1f MB)\n", sys.Job.DB.Ingested(), float64(sys.Job.DB.BytesIngested())/1e6)
	if source, suspect, summary, ok := sys.Triage(); ok {
		fmt.Printf("triage: resolved by %s → rank %d\n  %s\n", source, suspect, summary)
	} else {
		fmt.Println("triage: no anomaly reported")
	}
}
