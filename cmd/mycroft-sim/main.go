// mycroft-sim runs one fault scenario end to end on a multi-tenant Mycroft
// service, printing the live timeline: iterations, the trigger firing, the
// root-cause verdict and the Fig. 6 triage outcome. With -jobs N the
// service hosts N identical training jobs on one deterministic engine and
// the fault is injected into job 0 only — the others must stay quiet.
//
// Example:
//
//	mycroft-sim -fault nic-down -rank 5 -at 15s -for 60s -jobs 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mycroft"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
)

func main() {
	var (
		faultName = flag.String("fault", "nic-down", "fault kind: nic-down|nic-flap|link-loss|nic-degrade|gpu-hang|gpu-slow|pcie-degrade|proxy-crash|dataloader-stall|sync-mismatch|compute-hang|none")
		rank      = flag.Int("rank", 5, "rank to inject at (job 0)")
		at        = flag.Duration("at", 15*time.Second, "injection time")
		horizon   = flag.Duration("for", 60*time.Second, "virtual run time")
		severity  = flag.Float64("severity", 0, "fault severity (0 = per-kind default)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		nodes     = flag.Int("nodes", 2, "nodes per job")
		gpus      = flag.Int("gpus", 4, "GPUs per node")
		tp        = flag.Int("tp", 2, "tensor parallel size")
		pp        = flag.Int("pp", 2, "pipeline parallel size")
		dp        = flag.Int("dp", 2, "data parallel size")
		commHeavy = flag.Bool("comm-heavy", false, "weight iterations toward communication")
		jobs      = flag.Int("jobs", 1, "concurrent jobs hosted on the service")
	)
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "error: -jobs must be >= 1")
		os.Exit(2)
	}

	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: *seed})
	opts := mycroft.JobOptions{
		Topo:      mycroft.TopoConfig{Nodes: *nodes, GPUsPerNode: *gpus, TP: *tp, PP: *pp, DP: *dp},
		CommHeavy: *commHeavy,
	}
	handles := make([]*mycroft.JobHandle, *jobs)
	for i := range handles {
		h, err := svc.AddJob("", opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		handles[i] = h
	}
	lead := handles[0]

	lead.Job.OnIteration = func(i int, start, end sim.Time) {
		if i%5 == 0 {
			fmt.Printf("[%8v] job %s iteration %d done (%v)\n", end, lead.ID, i, end.Sub(start).Round(time.Millisecond))
		}
	}
	svc.Subscribe(mycroft.EventFilter{
		Kinds: []mycroft.EventKind{mycroft.EventTrigger, mycroft.EventReport},
	}).Each(func(e mycroft.Event) {
		switch e.Kind {
		case mycroft.EventTrigger:
			fmt.Printf("[%8v] TRIGGER  %v\n", e.At, e)
		case mycroft.EventReport:
			fmt.Printf("[%8v] VERDICT  %v\n", e.At, e)
		}
	})

	fmt.Printf("service: %d job(s), each %d nodes × %d GPUs (TP=%d PP=%d DP=%d), sampled ranks: %v\n",
		*jobs, *nodes, *gpus, *tp, *pp, *dp, lead.Backend.Sampled())
	svc.Start()

	if *faultName != "none" {
		spec := mycroft.Fault{Kind: faults.Kind(*faultName), Rank: mycroft.Rank(*rank), At: *at, Severity: *severity}
		fmt.Printf("injecting into job %s: %v\n", lead.ID, spec)
		lead.Inject(spec)
	}
	svc.Run(*horizon)

	fmt.Printf("\n--- summary after %v virtual ---\n", *horizon)
	for _, h := range handles {
		st := h.StoreStats()
		fmt.Printf("job %s: %d iterations, %d trace records (%0.1f MB, %d shards), %d trigger(s), %d report(s)\n",
			h.ID, h.Job.IterationsDone(), st.Ingested, float64(st.BytesIngested)/1e6, len(st.Shards),
			len(h.Triggers()), len(h.Reports()))
	}
	if source, suspect, summary, ok := lead.Triage(); ok {
		fmt.Printf("triage: resolved by %s → rank %d\n  %s\n", source, suspect, summary)
	} else {
		fmt.Println("triage: no anomaly reported")
	}
}
