// mycroft-sim runs one fault scenario end to end on a multi-tenant Mycroft
// service, printing the live timeline: iterations, the trigger firing, the
// root-cause verdict and the Fig. 6 triage outcome. With -jobs N the
// service hosts N identical training jobs on one deterministic engine and
// the fault is injected into job 0 only — the others must stay quiet.
//
// With -log-only the trace instrumentation is disabled entirely: not one
// 112-byte record is emitted. The run instead feeds the two black-box
// channels — synthetic training-log lines (fleet-wide info chatter plus
// error lines on the faulted rank once the fault lands) and per-rank
// iteration-completion timestamps wired straight off the workload — and the
// verdict, remediation and triage all come from those. It demonstrates that
// the diagnosis loop closes with zero tracepoint coverage.
//
// Examples:
//
//	mycroft-sim -fault nic-down -rank 5 -at 15s -for 60s -jobs 2
//	mycroft-sim -fault nic-down -rank 5 -log-only -for 75s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mycroft"
	"mycroft/internal/experiments"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
)

func main() {
	var (
		faultName = flag.String("fault", "nic-down", "fault kind: nic-down|nic-flap|link-loss|nic-degrade|gpu-hang|gpu-slow|pcie-degrade|proxy-crash|dataloader-stall|sync-mismatch|compute-hang|none")
		rank      = flag.Int("rank", 5, "rank to inject at (job 0)")
		at        = flag.Duration("at", 15*time.Second, "injection time")
		horizon   = flag.Duration("for", 60*time.Second, "virtual run time")
		severity  = flag.Float64("severity", 0, "fault severity (0 = per-kind default)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		nodes     = flag.Int("nodes", 2, "nodes per job")
		gpus      = flag.Int("gpus", 4, "GPUs per node")
		tp        = flag.Int("tp", 2, "tensor parallel size")
		pp        = flag.Int("pp", 2, "pipeline parallel size")
		dp        = flag.Int("dp", 2, "data parallel size")
		commHeavy = flag.Bool("comm-heavy", false, "weight iterations toward communication")
		jobs      = flag.Int("jobs", 1, "concurrent jobs hosted on the service")
		logOnly   = flag.Bool("log-only", false, "tracepoint-free mode: disable trace instrumentation and diagnose through the log and timing channels alone")
	)
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "error: -jobs must be >= 1")
		os.Exit(2)
	}

	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: *seed})
	opts := mycroft.JobOptions{
		Topo:      mycroft.TopoConfig{Nodes: *nodes, GPUsPerNode: *gpus, TP: *tp, PP: *pp, DP: *dp},
		CommHeavy: *commHeavy,
	}
	if *logOnly {
		profile := experiments.ComputeHeavy
		if *commHeavy {
			profile = experiments.CommHeavy
		}
		tc := experiments.JobConfig(opts.Topo, profile)
		tc.DisableTracing = true
		opts.Train = &tc
	}
	handles := make([]*mycroft.JobHandle, *jobs)
	for i := range handles {
		h, err := svc.AddJob("", opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		handles[i] = h
	}
	lead := handles[0]

	lead.Job.OnIteration = func(i int, start, end sim.Time) {
		if i%5 == 0 {
			fmt.Printf("[%8v] job %s iteration %d done (%v)\n", end, lead.ID, i, end.Sub(start).Round(time.Millisecond))
		}
	}
	kinds := []mycroft.EventKind{mycroft.EventTrigger, mycroft.EventReport}
	if *logOnly {
		kinds = append(kinds, mycroft.EventLogAnomaly)
	}
	svc.Subscribe(mycroft.EventFilter{Kinds: kinds}).Each(func(e mycroft.Event) {
		switch e.Kind {
		case mycroft.EventTrigger:
			fmt.Printf("[%8v] TRIGGER  %v\n", e.At, e)
		case mycroft.EventReport:
			fmt.Printf("[%8v] VERDICT  %v\n", e.At, e)
		case mycroft.EventLogAnomaly:
			fmt.Printf("[%8v] ANOMALY  %v\n", e.At, e)
		}
	})

	if *logOnly {
		// The black-box timing feed: per-rank iteration completions, wired
		// straight off the workload into the perf channel's ingest path.
		lead.Job.OnRankIteration = func(r mycroft.Rank, iter int, at sim.Time) {
			svc.IngestTimings(lead.ID, []mycroft.IterationSample{{Rank: r, Iter: iter, At: time.Duration(at)}})
		}
	}

	fmt.Printf("service: %d job(s), each %d nodes × %d GPUs (TP=%d PP=%d DP=%d), sampled ranks: %v\n",
		*jobs, *nodes, *gpus, *tp, *pp, *dp, lead.Backend.Sampled())
	svc.Start()

	if *faultName != "none" {
		spec := mycroft.Fault{Kind: faults.Kind(*faultName), Rank: mycroft.Rank(*rank), At: *at, Severity: *severity}
		fmt.Printf("injecting into job %s: %v\n", lead.ID, spec)
		lead.Inject(spec)
	}
	if *logOnly {
		scheduleLogFeed(svc, lead, *faultName, *rank, *at)
	}
	svc.Run(*horizon)

	fmt.Printf("\n--- summary after %v virtual ---\n", *horizon)
	for _, h := range handles {
		st := h.StoreStats()
		fmt.Printf("job %s: %d iterations, %d trace records (%0.1f MB, %d shards), %d trigger(s), %d report(s)\n",
			h.ID, h.Job.IterationsDone(), st.Ingested, float64(st.BytesIngested)/1e6, len(st.Shards),
			len(h.Triggers()), len(h.Reports()))
		if !*logOnly {
			continue
		}
		if cs, err := svc.ChannelStats(h.ID); err == nil {
			for _, ch := range cs.Channels {
				if ch.Ingested == 0 && ch.Anomalies == 0 && ch.Reports == 0 {
					continue
				}
				fmt.Printf("  channel %s: ingested=%d anomalies=%d reports=%d\n",
					ch.Channel, ch.Ingested, ch.Anomalies, ch.Reports)
			}
		}
	}
	if source, suspect, summary, ok := lead.Triage(); ok {
		fmt.Printf("triage: resolved by %s → rank %d\n  %s\n", source, suspect, summary)
	} else {
		fmt.Println("triage: no anomaly reported")
	}
}

// scheduleLogFeed arms the synthetic training-log stream for -log-only runs:
// fleet-wide info chatter (what a healthy framework prints — it must NOT
// trip the detector), and, once the injected fault has had a moment to bite,
// a burst of error lines on the faulted rank, the way a real send path
// failure surfaces in framework logs. Everything lands through the public
// IngestLogs path, so clustering, events, fusion and escalation run exactly
// as they would for an external log shipper.
func scheduleLogFeed(svc *mycroft.Service, lead *mycroft.JobHandle, faultName string, rank int, at time.Duration) {
	eng := lead.Job.Eng
	world := lead.WorldSize()
	for rep := 0; rep < 8; rep++ {
		iter := rep
		eng.After(5*time.Second+time.Duration(rep)*5*time.Second, func() {
			lines := make([]mycroft.LogLine, 0, world)
			for r := 0; r < world; r++ {
				lines = append(lines, mycroft.LogLine{
					Rank: mycroft.Rank(r), Level: "info",
					Text: fmt.Sprintf("iteration %d loss 2.31 lr 0.0003", iter),
				})
			}
			svc.IngestLogs(lead.ID, lines)
		})
	}
	if faultName == "none" {
		return
	}
	for rep := 0; rep < 6; rep++ {
		eng.After(at+5*time.Second+time.Duration(rep)*2*time.Second, func() {
			svc.IngestLogs(lead.ID, []mycroft.LogLine{{
				Rank: mycroft.Rank(rank), Level: "error",
				Text: "NET/IB rdma qp 17 timeout on port 1, completion queue stalled",
			}})
		})
	}
}
