package mycroft

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mycroft/internal/api"
	"mycroft/internal/cluster"
)

// TestDialRetriesThenUnreachable covers both halves of the dial-backoff
// contract: a daemon that is down for every attempt yields a typed
// ErrUnreachable, and one that comes up between attempts is dialed
// successfully without the caller doing anything.
func TestDialRetriesThenUnreachable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	if _, err := Dial(addr, DialAttempts(3)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial to dead addr: got %v, want ErrUnreachable", err)
	}
	// 3 attempts back off 50ms then 100ms between them.
	if took := time.Since(start); took < 100*time.Millisecond {
		t.Fatalf("3 attempts finished in %v; backoff did not happen", took)
	}

	// Late-starting daemon: the listener appears while Dial is still
	// retrying the same address.
	svc := faultedService(t)
	srv := NewServer(svc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(120 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial below will fail loudly
		}
		go http.Serve(ln2, srv.Handler())
	}()
	rc, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial to late-starting daemon: %v", err)
	}
	if id, _ := rc.ServerInfo(); id == "" {
		t.Fatal("dial succeeded but ping metadata is empty")
	}
	<-done
}

// TestDialNonTransportErrorFailsFast: an address that answers HTTP but is
// not a mycroft daemon must fail immediately — retrying a handshake
// mismatch would just hide a misconfiguration for seconds.
func TestDialNonTransportErrorFailsFast(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	}))
	defer ts.Close()
	start := time.Now()
	_, err := Dial(ts.URL)
	if err == nil {
		t.Fatal("dial to non-daemon succeeded")
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatalf("application-level failure misreported as ErrUnreachable: %v", err)
	}
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("non-transport failure took %v; should not have retried", took)
	}
}

// TestShutdownAnnouncesBeforeClose: a daemon going down must tell its live
// subscribers so — the last event on every stream is the server-shutdown
// lifecycle marker, and the stream then ends cleanly rather than erroring.
func TestShutdownAnnouncesBeforeClose(t *testing.T) {
	svc := faultedService(t)
	srv := NewServer(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st := rc.Subscribe(EventFilter{})
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	srv.Advance(20 * time.Second) // some real traffic first

	if n := srv.AnnounceShutdown(); n != 1 {
		t.Fatalf("AnnounceShutdown reached %d subscription(s), want 1", n)
	}
	srv.CloseSubscriptions()

	var last Event
	got := 0
	for {
		e, ok := st.NextWait(5 * time.Second)
		if !ok {
			break
		}
		last, got = e, got+1
	}
	if got == 0 {
		t.Fatal("stream delivered nothing")
	}
	if last.Kind != EventLifecycle || last.Phase != PhaseServerShutdown {
		t.Fatalf("final event is %v, want lifecycle %q", last, PhaseServerShutdown)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("announced shutdown still errored the stream: %v", err)
	}
}

// TestLostSubscriptionTyped: when a long-poll client's subscription id
// vanishes (daemon restarted), the stream must fail with the typed
// ErrSubscriptionLost — not a bare 404 the caller has to string-match.
func TestLostSubscriptionTyped(t *testing.T) {
	srvA := NewServer(faultedService(t))
	var handler atomic.Value
	handler.Store(srvA.Handler())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()

	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	st := rc.Subscribe(EventFilter{})
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	// "Restart": same address, fresh server, no subscriptions.
	handler.Store(NewServer(faultedService(t)).Handler())

	deadline := time.Now().Add(10 * time.Second)
	for st.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if err := st.Err(); !errors.Is(err, ErrSubscriptionLost) {
		t.Fatalf("stream error after restart: %v, want ErrSubscriptionLost", err)
	}
}

// clusterPeer is one mycroft-serve stand-in for the failover tests: a real
// Server with cluster mode enabled, listening on loopback.
type clusterPeer struct {
	name    string
	addr    string
	svc     *Service
	srv     *Server
	hs      *http.Server
	handles map[JobID]*JobHandle
}

// startCluster boots a fleet of peers sharding jobs by ring primary,
// exactly as `mycroft-serve -cluster-id` does, and returns them keyed by
// name. replicas is the R passed to every peer.
func startCluster(t *testing.T, peerNames []string, jobs []JobID, replicas int) map[string]*clusterPeer {
	t.Helper()
	addrs := make(map[string]string, len(peerNames))
	lns := make(map[string]net.Listener, len(peerNames))
	for _, name := range peerNames {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[name] = ln
		addrs[name] = ln.Addr().String()
	}
	ring := cluster.NewRing(peerNames, 0)
	peers := make(map[string]*clusterPeer, len(peerNames))
	for _, name := range peerNames {
		p := &clusterPeer{name: name, addr: addrs[name], handles: make(map[JobID]*JobHandle)}
		p.svc = NewService(ServiceOptions{Seed: 1})
		for _, job := range jobs {
			if ring.Primary(string(job)) != name {
				continue
			}
			h, err := p.svc.AddJob(job, JobOptions{})
			if err != nil {
				t.Fatal(err)
			}
			p.handles[job] = h
		}
		p.srv = NewServer(p.svc)
		err := p.srv.EnableCluster(ClusterConfig{
			ID: "test", Self: name, SelfAddr: addrs[name],
			Peers: addrs, Replicas: replicas,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.svc.Start()
		p.hs = &http.Server{Handler: p.srv.Handler()}
		go p.hs.Serve(lns[name])
		peers[name] = p
		t.Cleanup(func() { p.hs.Close() })
	}
	return peers
}

// TestClusterFailover is the tentpole acceptance test: with replication
// factor 2, kill -9 the primary of a job mid-subscription and the
// DialCluster client must keep answering queries for that job from a
// replica AND resume the live event stream there, with drops bounded and
// reported via Stream.Dropped.
func TestClusterFailover(t *testing.T) {
	jobs := []JobID{"job-0", "job-1", "job-2", "job-3"}
	peers := startCluster(t, []string{"p1", "p2", "p3"}, jobs, 2)

	// Pinned placement (asserted by TestRingPinnedPlacement): job-0's
	// primary is p2 — the peer this test kills.
	primary := peers["p2"]
	h, ok := primary.handles["job-0"]
	if !ok {
		t.Fatal("placement drifted: p2 no longer hosts job-0")
	}
	h.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})

	cc, err := DialCluster([]string{peers["p1"].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	st := cc.Subscribe(EventFilter{Jobs: []JobID{"job-0"}})
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the tail prime at "now"

	// Drive every engine 40 virtual seconds, replicating after each step so
	// the followers stay caught up — the daemon's replication loop, made
	// deterministic.
	for i := 0; i < 40; i++ {
		for _, p := range peers {
			p.srv.Advance(time.Second)
			if errs := p.srv.ReplicateNow(); len(errs) > 0 {
				t.Fatalf("replication: %v", errs[0])
			}
		}
	}

	// Mid-subscription: at least one live event has arrived from the
	// primary before it dies.
	if _, ok := st.NextWait(5 * time.Second); !ok {
		t.Fatal("no events before failover")
	}

	// kill -9 the primary: listener and every open connection die at once.
	primary.hs.Close()

	// Queries for job-0 must fail over to a replica and keep answering.
	trig, err := cc.QueryTriggers(TriggerQuery{Jobs: []JobID{"job-0"}})
	if err != nil {
		t.Fatalf("triggers after primary death: %v", err)
	}
	if len(trig.Triggers) == 0 {
		t.Fatal("replica served no triggers for job-0")
	}
	tri, err := cc.Triage("job-0")
	if err != nil {
		t.Fatalf("triage after primary death: %v", err)
	}
	if tri.Summary == "" {
		t.Fatal("replica triage returned an empty summary")
	}
	if cc.Failovers() == 0 {
		t.Fatal("failover happened but Failovers() is 0")
	}

	// The event stream resumes on the replica: drain what the replicated
	// log still holds and confirm the incident made it through.
	var sawTrigger, sawReport bool
	for !(sawTrigger && sawReport) {
		e, ok := st.NextWait(5 * time.Second)
		if !ok {
			break
		}
		switch e.Kind {
		case EventTrigger:
			sawTrigger = true
		case EventReport:
			sawReport = true
		}
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream errored across failover: %v", err)
	}
	if !sawTrigger || !sawReport {
		t.Fatalf("incident lost across failover: trigger=%v report=%v dropped=%d",
			sawTrigger, sawReport, st.Dropped())
	}
	// Followers were replicated after every advance, so the bounded drop
	// count is exactly zero here; a lagging replica would surface the gap.
	if d := st.Dropped(); d != 0 {
		t.Fatalf("fully-replicated failover reported %d drops", d)
	}

	// The replica answers the raw tail endpoint for the dead primary's job
	// from seq 1 — this is the primitive the resumed subscription rides on.
	var tail api.TailResponse
	postJSON(t, "http://"+peers["p1"].addr+api.Prefix+"/cluster/tail",
		api.TailRequest{Job: "job-0", AfterSeq: 0, Max: 10}, &tail)
	if len(tail.Entries) == 0 {
		t.Fatal("replica tail returned no entries")
	}
	if tail.Source != "replica" && tail.Source != "promoted" {
		t.Fatalf("tail source %q, want replica or promoted", tail.Source)
	}
	if tail.Entries[0].Seq == 0 {
		t.Fatal("replicated entries lost their primary-assigned seqs")
	}

	// ClusterInfo reflects reality: the killed peer reads as dead.
	info, err := cc.ClusterInfo()
	if err != nil {
		t.Fatal(err)
	}
	var p2State string
	for _, p := range info.Peers {
		if p.Name == "p2" {
			p2State = p.State
		}
	}
	if p2State != api.PeerDead {
		t.Fatalf("killed peer reads %q in ClusterInfo, want dead", p2State)
	}
}

// TestClusterHandoffPromotesReplica: a clean SIGTERM path — the draining
// primary flushes replication and hands its jobs off, after which the
// follower answers as "promoted" and its triage carries the verdict.
func TestClusterHandoffPromotesReplica(t *testing.T) {
	jobs := []JobID{"job-0", "job-1", "job-2", "job-3"}
	peers := startCluster(t, []string{"p1", "p2", "p3"}, jobs, 2)
	peers["p2"].handles["job-0"].Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})

	for i := 0; i < 40; i++ {
		for _, p := range peers {
			p.srv.Advance(time.Second)
			p.srv.ReplicateNow()
		}
	}
	if n := peers["p2"].srv.HandoffAll(); n == 0 {
		t.Fatal("handoff transferred nothing")
	}
	peers["p2"].hs.Close()

	var tail api.TailResponse
	postJSON(t, "http://"+peers["p1"].addr+api.Prefix+"/cluster/tail",
		api.TailRequest{Job: "job-0", AfterSeq: 0, Max: 10}, &tail)
	if tail.Source != "promoted" {
		t.Fatalf("post-handoff tail source %q, want promoted", tail.Source)
	}
}

func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkReplicationLag measures one full replication round over loopback
// HTTP: drain the primary's tap after one virtual second of fleet activity
// and ship the event-log suffix, trace window, and snapshot to the
// follower. The reported events/op is how much log each round moved.
func BenchmarkReplicationLag(b *testing.B) { runReplicationLagBench(b) }

// runReplicationLagBench is the body, shared with the BENCH_cluster.json
// emitter (TestEmitClusterBench).
func runReplicationLagBench(b *testing.B) {
	names := []string{"a", "b"}
	ring := cluster.NewRing(names, 0)
	primaryName := ring.Primary("trace")

	addrs := make(map[string]string, 2)
	lns := make(map[string]net.Listener, 2)
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[name] = ln
		addrs[name] = ln.Addr().String()
	}
	var primary *Server
	for _, name := range names {
		svc := NewService(ServiceOptions{Seed: 1})
		if name == primaryName {
			h, err := svc.AddJob("trace", JobOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Stop()
		}
		srv := NewServer(svc)
		err := srv.EnableCluster(ClusterConfig{
			ID: "bench", Self: name, SelfAddr: addrs[name], Peers: addrs, Replicas: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		svc.Start()
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[name])
		defer hs.Close()
		if name == primaryName {
			primary = srv
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		primary.Advance(time.Second)
		if errs := primary.ReplicateNow(); len(errs) > 0 {
			b.Fatal(errs[0])
		}
	}
	b.StopTimer()
	if cl := primary.loadCluster(); cl != nil {
		b.ReportMetric(float64(cl.mReplEvents.Value())/float64(b.N), "events/op")
	}
}
