package mycroft

import (
	"testing"
	"time"
)

// TestStreamNextWait: the bounded wait returns immediately when an event is
// buffered, wakes when another goroutine delivers mid-wait, and gives up at
// the deadline instead of blocking forever — the contract a long-poll
// handler depends on.
func TestStreamNextWait(t *testing.T) {
	st := newStream(nil, EventFilter{})

	st.deliver(Event{Job: "a", Kind: EventLifecycle, Phase: "job-started"})
	start := time.Now()
	if e, ok := st.NextWait(5 * time.Second); !ok || e.Phase != "job-started" {
		t.Fatalf("NextWait on buffered stream = %v, %v", e, ok)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("NextWait blocked %v with a buffered event", elapsed)
	}

	// Empty stream: a short wait expires empty-handed.
	start = time.Now()
	if _, ok := st.NextWait(50 * time.Millisecond); ok {
		t.Fatal("NextWait returned an event from an empty stream")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("NextWait deadline off: waited %v for a 50ms timeout", elapsed)
	}

	// Delivery from another goroutine wakes a parked waiter.
	go func() {
		time.Sleep(20 * time.Millisecond)
		st.deliver(Event{Job: "a", Kind: EventLifecycle, Phase: "late"})
	}()
	if e, ok := st.NextWait(5 * time.Second); !ok || e.Phase != "late" {
		t.Fatalf("NextWait missed the cross-goroutine delivery: %v, %v", e, ok)
	}

	// Close wakes a parked waiter too, returning false.
	go func() {
		time.Sleep(20 * time.Millisecond)
		st.Close()
	}()
	if _, ok := st.NextWait(5 * time.Second); ok {
		t.Fatal("NextWait returned an event from a closed empty stream")
	}
}

// TestStreamCloseIdempotent: Close may be called any number of times, from
// the consumer or the transport, without error or double-detach effects —
// and buffered events stay consumable after it.
func TestStreamCloseIdempotent(t *testing.T) {
	svc := NewService(ServiceOptions{})
	st := svc.Subscribe(EventFilter{})
	st.deliver(Event{Job: "a", Kind: EventLifecycle, Phase: "one"})
	st.deliver(Event{Job: "a", Kind: EventLifecycle, Phase: "two"})

	if err := st.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if n := len(svc.streams); n != 0 {
		t.Fatalf("service still tracks %d streams after Close", n)
	}

	// Buffered events remain consumable; new deliveries are refused.
	st.deliver(Event{Job: "a", Kind: EventLifecycle, Phase: "after-close"})
	if got := st.Drain(); len(got) != 2 || got[0].Phase != "one" || got[1].Phase != "two" {
		t.Fatalf("post-Close Drain = %v", got)
	}
	if _, ok := st.Next(); ok {
		t.Fatal("closed stream accepted a delivery")
	}

	// An onClose transport hook runs exactly once.
	calls := 0
	st2 := newStream(nil, EventFilter{})
	st2.onClose = func() { calls++ }
	st2.Close()
	st2.Close()
	if calls != 1 {
		t.Fatalf("onClose ran %d times, want 1", calls)
	}
}
