package mycroft

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"mycroft/internal/experiments"
)

// tracelessService builds the tracepoint-free acceptance run: a job whose
// trace instrumentation is disabled outright (not one 112-byte record will
// ever be emitted), the self-healing policy armed, and a genuine nic-down
// injected — the only way the service can see it is through the channels.
func tracelessService(t *testing.T) (*Service, *JobHandle) {
	t.Helper()
	svc := NewService(ServiceOptions{Seed: 1})
	tc := experiments.JobConfig(TopoConfig{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}, experiments.ComputeHeavy)
	tc.DisableTracing = true
	h, err := svc.AddJob("llm", JobOptions{Train: &tc})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AttachPolicy("llm", SelfHealPolicy()); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	h.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	return svc, h
}

// driveTraceless advances the clock one second at a time, feeding the
// synthetic log stream through the transport under test: fleet-wide info
// chatter (which must NOT trip the detector) and, once the fault has bitten,
// a burst of error lines on the faulted rank. Both transports run this exact
// schedule, so their end states must agree.
func driveTraceless(t *testing.T, c Client, advance func(time.Duration)) {
	t.Helper()
	for now := time.Duration(0); now < 75*time.Second; now += time.Second {
		advance(time.Second)
		cur := now + time.Second
		if cur >= 5*time.Second && cur <= 40*time.Second && cur%(5*time.Second) == 0 {
			lines := make([]LogLine, 0, 8)
			for r := 0; r < 8; r++ {
				lines = append(lines, LogLine{Rank: Rank(r), Level: "info",
					Text: fmt.Sprintf("iteration %d loss 2.31 lr 0.0003", int(cur/time.Second))})
			}
			if _, err := c.IngestLogs("llm", lines); err != nil {
				t.Fatal(err)
			}
		}
		if cur >= 20*time.Second && cur <= 30*time.Second && cur%(2*time.Second) == 0 {
			if _, err := c.IngestLogs("llm", []LogLine{{Rank: 5, Level: "error",
				Text: "NET/IB rdma qp 17 timeout on port 1, completion queue stalled"}}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// assertTracelessOutcome checks the acceptance criterion through whichever
// Client drove the run: zero trace records reached the store, yet the job
// carries a correct log-channel verdict AND a succeeded recovery of the
// injected fault.
func assertTracelessOutcome(t *testing.T, c Client) {
	t.Helper()
	jobs, err := c.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs.Jobs) != 1 || jobs.Jobs[0].Records != 0 {
		t.Fatalf("want a sole job with 0 trace records, got %+v", jobs.Jobs)
	}

	reps, err := c.QueryReports(ReportQuery{})
	if err != nil {
		t.Fatal(err)
	}
	verdict := false
	for _, jr := range reps.Reports {
		rep := jr.Report
		if rep.Via == ViaLogTemplate && rep.Category == CatNetworkSendPath && rep.Suspect == 5 {
			verdict = true
		}
	}
	if !verdict {
		t.Fatalf("no log-channel verdict naming rank 5 as %s (%d reports)", CatNetworkSendPath, len(reps.Reports))
	}

	rem, err := c.QueryRemediations(RemediationQuery{})
	if err != nil {
		t.Fatal(err)
	}
	healed := false
	for _, a := range rem.Attempts {
		if a.Action.Kind == RemedyRecoverFault && a.Action.Rank == 5 && a.Outcome == RemedySucceeded {
			healed = true
		}
	}
	if !healed {
		t.Fatalf("no succeeded recover-fault on rank 5 (%d attempts: %v)", len(rem.Attempts), rem.Attempts)
	}

	cs, err := c.ChannelStats("llm")
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range cs.Channels {
		switch ch.Channel {
		case ModalityTracepoint:
			if ch.Ingested != 0 || ch.Anomalies != 0 || ch.Reports != 0 {
				t.Errorf("tracepoint channel not quiet: %+v", ch)
			}
		case ModalityLog:
			if ch.Anomalies < 1 || ch.Reports < 1 {
				t.Errorf("log channel carried no finding: %+v", ch)
			}
		}
	}
}

// TestTracepointFreeDiagnosisInProcess: the diagnosis loop closes with zero
// tracepoint coverage through the in-process Service.
func TestTracepointFreeDiagnosisInProcess(t *testing.T) {
	svc, _ := tracelessService(t)
	driveTraceless(t, svc, func(d time.Duration) { svc.Run(d) })
	assertTracelessOutcome(t, svc)
}

// TestTracepointFreeDiagnosisRemote: the same loop closes over HTTP — logs
// ingested by POST, verdict and audit log read back through the wire — and
// the wire's channel counters match the server's in-process answer exactly.
func TestTracepointFreeDiagnosisRemote(t *testing.T) {
	svc, _ := tracelessService(t)
	srv := NewServer(svc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	driveTraceless(t, rc, func(d time.Duration) { srv.Advance(d) })
	assertTracelessOutcome(t, rc)

	want, err := svc.ChannelStats("llm")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rc.ChannelStats("llm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Channels) != len(want.Channels) || got.Fusion.Window != want.Fusion.Window ||
		got.Fusion.LastOutcome != want.Fusion.LastOutcome || got.Fusion.LastConfidence != want.Fusion.LastConfidence {
		t.Fatalf("channel stats differ over wire:\n got  %+v\n want %+v", got, want)
	}
	for i := range want.Channels {
		if got.Channels[i] != want.Channels[i] {
			t.Errorf("channel %d differs over wire: %+v vs %+v", i, got.Channels[i], want.Channels[i])
		}
	}
	for k, v := range want.Fusion.Outcomes {
		if got.Fusion.Outcomes[k] != v {
			t.Errorf("fusion outcome %q: wire says %d, in-process %d", k, got.Fusion.Outcomes[k], v)
		}
	}
}

// driveCorroborated runs the corroborated-cascade schedule against a traced
// job: the nic-down fires the tracepoint pipeline while error lines on the
// same rank feed the log channel, so the fused verdict must carry both.
func driveCorroborated(t *testing.T, c Client, advance func(time.Duration)) {
	t.Helper()
	for now := time.Duration(0); now < 75*time.Second; now += time.Second {
		advance(time.Second)
		cur := now + time.Second
		if cur >= 16*time.Second && cur <= 26*time.Second && cur%(2*time.Second) == 0 {
			if _, err := c.IngestLogs("trace", []LogLine{{Rank: 5, Level: "error",
				Text: "NET/IB rnic 5 completion error on qp 9"}}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// findCorroborated returns the run's corroborated verdict, failing unless its
// fused confidence is strictly above what either channel could claim alone
// (the single-channel priors top out at 0.75).
func findCorroborated(t *testing.T, c Client) Report {
	t.Helper()
	reps, err := c.QueryReports(ReportQuery{})
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range reps.Reports {
		rep := jr.Report
		if rep.FusionOutcome() != FusionCorroborated {
			continue
		}
		if !rep.HasEvidence(ModalityTracepoint) || !rep.HasEvidence(ModalityLog) {
			t.Fatalf("corroborated verdict missing a channel's evidence: %+v", rep.Evidence)
		}
		if rep.Confidence <= 0.75 {
			t.Fatalf("corroborated confidence %.3f not above the best single-channel prior 0.75", rep.Confidence)
		}
		return rep
	}
	t.Fatalf("no corroborated verdict among %d reports", len(reps.Reports))
	return Report{}
}

// TestCorroboratedFusionConfidence pins the fusion acceptance criterion on
// both transports: when the tracepoint and log channels agree, the fused
// confidence exceeds either channel alone, and the wire reproduces the
// in-process verdict bit for bit.
func TestCorroboratedFusionConfidence(t *testing.T) {
	local := faultedService(t)
	driveCorroborated(t, local, func(d time.Duration) { local.Run(d) })
	want := findCorroborated(t, local)

	remoteSvc := faultedService(t)
	srv := NewServer(remoteSvc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	driveCorroborated(t, rc, func(d time.Duration) { srv.Advance(d) })
	got := findCorroborated(t, rc)

	if got.Confidence != want.Confidence || got.FusionOutcome() != want.FusionOutcome() ||
		got.Suspect != want.Suspect || len(got.Evidence) != len(want.Evidence) {
		t.Fatalf("corroborated verdict differs over wire:\n got  %+v\n want %+v", got, want)
	}
}

// TestLogIngestKeepsTracelessJobAlive is the heartbeat regression for
// tracepoint-free jobs: channel ingest alone must bump the watermark the
// health ladder reads, so a job shipping only logs never reads degraded or
// stale despite a permanently empty trace store.
func TestLogIngestKeepsTracelessJobAlive(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	tc := experiments.JobConfig(TopoConfig{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}, experiments.ComputeHeavy)
	tc.DisableTracing = true
	h, err := svc.AddJob("llm", JobOptions{Train: &tc})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	st := svc.Subscribe(EventFilter{Kinds: []EventKind{EventHealth}})
	// Ship a line every 2s — inside the degraded threshold (staleAfter/2 = 5s)
	// so the watermark never ages out between batches.
	for i := 0; i < 30; i++ {
		svc.Run(2 * time.Second)
		// Round-robin the source rank so the chatter reads fleet-wide, the
		// shape the template detector must NOT flag.
		if _, err := svc.IngestLogs("llm", []LogLine{{Rank: Rank(i % 8), Level: "info",
			Text: fmt.Sprintf("iteration %d loss 2.31 lr 0.0003", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Health(); got != HealthHealthy {
		t.Fatalf("health after 60s of log-only ingest = %v, want healthy", got)
	}
	if st.Len() != 0 {
		t.Fatalf("log-fed traceless job emitted %d health transitions: %v", st.Len(), st.Drain())
	}
	if recs := h.StoreStats().Ingested; recs != 0 {
		t.Fatalf("%d trace records ingested, want 0 with tracing disabled", recs)
	}
}
