package mycroft

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// faultedService builds the canonical one-job test run: seed 1, nic-down on
// rank 5 at 15s.
func faultedService(t *testing.T) *Service {
	t.Helper()
	svc := NewService(ServiceOptions{Seed: 1})
	h, err := svc.AddJob("trace", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	h.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	return svc
}

// TestRemoteSubscribeEquivalence is the wire half of the acceptance
// criterion: a Subscribe stream over HTTP must deliver the same events as
// an in-process subscription on an identically seeded run, with zero drops
// when no buffer cap is set.
func TestRemoteSubscribeEquivalence(t *testing.T) {
	filter := EventFilter{Kinds: []EventKind{EventTrigger, EventReport}}
	const horizon = 40 * time.Second

	// In-process reference run.
	local := faultedService(t)
	stLocal := local.Subscribe(filter)
	local.Run(horizon)
	want := stLocal.Drain()
	if len(want) == 0 {
		t.Fatal("reference run produced no events")
	}

	// Identical run served over HTTP; the remote subscription attaches
	// before any virtual time passes, then the daemon drives.
	remote := faultedService(t)
	srv := NewServer(remote)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	stRemote := rc.Subscribe(filter)
	if err := stRemote.Err(); err != nil {
		t.Fatal(err)
	}
	for driven := time.Duration(0); driven < horizon; driven += time.Second {
		srv.Advance(time.Second)
	}

	var got []Event
	for len(got) < len(want) {
		e, ok := stRemote.NextWait(5 * time.Second)
		if !ok {
			break
		}
		got = append(got, e)
	}
	if err := stRemote.Err(); err != nil {
		t.Fatalf("remote stream failed: %v", err)
	}
	if stRemote.Dropped() != 0 {
		t.Fatalf("uncapped remote stream dropped %d events", stRemote.Dropped())
	}
	if len(got) != len(want) {
		t.Fatalf("remote delivered %d events, in-process %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() || got[i].Kind != want[i].Kind || got[i].At != want[i].At || got[i].Job != want[i].Job {
			t.Errorf("event %d differs:\n remote: %v\n local:  %v", i, got[i], want[i])
		}
	}

	// No stragglers: the remote stream is dry once counts match.
	if e, ok := stRemote.NextWait(200 * time.Millisecond); ok {
		t.Errorf("remote stream delivered an extra event: %v", e)
	}
	if err := stRemote.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stRemote.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteQueriesMatchInProcess spot-checks that every Client query
// answers identically through the wire, including the new pagination
// fields.
func TestRemoteQueriesMatchInProcess(t *testing.T) {
	local := faultedService(t)
	local.Run(40 * time.Second)

	remoteSvc := faultedService(t)
	srv := NewServer(remoteSvc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Advance(40 * time.Second)
	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Triggers, paged one at a time through NextOffset.
	wantTr, err := local.QueryTriggers(TriggerQuery{})
	if err != nil {
		t.Fatal(err)
	}
	var paged []JobTrigger
	q := TriggerQuery{Limit: 1}
	for {
		res, err := rc.QueryTriggers(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total != wantTr.Total {
			t.Fatalf("paged Total %d, want %d", res.Total, wantTr.Total)
		}
		paged = append(paged, res.Triggers...)
		if res.NextOffset < 0 {
			break
		}
		q.Offset = res.NextOffset
	}
	if len(paged) != wantTr.Total {
		t.Fatalf("NextOffset walk returned %d triggers, want %d", len(paged), wantTr.Total)
	}
	for i := range paged {
		if paged[i].String() != wantTr.Triggers[i].String() {
			t.Errorf("trigger %d differs over wire:\n %v\n %v", i, paged[i], wantTr.Triggers[i])
		}
	}

	// Reports.
	wantRep, _ := local.QueryReports(ReportQuery{})
	gotRep, err := rc.QueryReports(ReportQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRep.Reports) != len(wantRep.Reports) || gotRep.Total != wantRep.Total || gotRep.NextOffset != wantRep.NextOffset {
		t.Fatalf("reports over wire: %d/%d/%d, want %d/%d/%d",
			len(gotRep.Reports), gotRep.Total, gotRep.NextOffset,
			len(wantRep.Reports), wantRep.Total, wantRep.NextOffset)
	}
	for i := range wantRep.Reports {
		if gotRep.Reports[i].Report.String() != wantRep.Reports[i].Report.String() {
			t.Errorf("report %d differs over wire", i)
		}
	}

	// Trace page with Total and cursor.
	wantPage, _ := local.QueryTrace(TraceQuery{Ranks: []Rank{5}, Limit: 10})
	gotPage, err := rc.QueryTrace(TraceQuery{Ranks: []Rank{5}, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if gotPage.Total != wantPage.Total || len(gotPage.Records) != len(wantPage.Records) {
		t.Fatalf("trace page over wire: %d records Total %d, want %d Total %d",
			len(gotPage.Records), gotPage.Total, len(wantPage.Records), wantPage.Total)
	}
	if (gotPage.Next == nil) != (wantPage.Next == nil) {
		t.Fatalf("trace cursor mismatch: %v vs %v", gotPage.Next, wantPage.Next)
	}
	if gotPage.Next != nil && *gotPage.Next != *wantPage.Next {
		t.Fatalf("trace cursor differs: %+v vs %+v", *gotPage.Next, *wantPage.Next)
	}

	// Dependencies + blast radius + triage + job listing.
	wantDep, _ := local.QueryDependencies(DependencyQuery{RenderDOT: true})
	gotDep, err := rc.QueryDependencies(DependencyQuery{RenderDOT: true})
	if err != nil {
		t.Fatal(err)
	}
	if gotDep.DOT != wantDep.DOT || len(gotDep.Edges) != len(wantDep.Edges) {
		t.Fatalf("dependencies differ over wire: %d edges, want %d", len(gotDep.Edges), len(wantDep.Edges))
	}
	wantBR, _ := local.BlastRadius("", 5)
	gotBR, err := rc.BlastRadius("", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotBR) != len(wantBR) {
		t.Fatalf("blast radius differs: %v vs %v", gotBR, wantBR)
	}
	wantTri, _ := local.Triage("")
	gotTri, err := rc.Triage("")
	if err != nil {
		t.Fatal(err)
	}
	if gotTri != wantTri {
		t.Fatalf("triage differs: %+v vs %+v", gotTri, wantTri)
	}
	wantJobs, _ := local.ListJobs()
	gotJobs, err := rc.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if gotJobs.Now != wantJobs.Now || len(gotJobs.Jobs) != 1 ||
		gotJobs.Jobs[0].Records != wantJobs.Jobs[0].Records ||
		gotJobs.Jobs[0].WorldSize != wantJobs.Jobs[0].WorldSize {
		t.Fatalf("job listing differs: %+v vs %+v", gotJobs, wantJobs)
	}
}

// TestServiceQueryNextOffset pins the NextOffset pagination contract on the
// in-process side: walking pages by NextOffset visits every match exactly
// once and the final page says -1.
func TestServiceQueryNextOffset(t *testing.T) {
	svc := faultedService(t)
	svc.Run(40 * time.Second)

	full, err := svc.QueryTriggers(TriggerQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total < 1 {
		t.Fatal("run produced no triggers")
	}
	if full.NextOffset != -1 {
		t.Fatalf("unpaginated query NextOffset = %d, want -1", full.NextOffset)
	}

	var walked int
	q := TriggerQuery{Limit: 1}
	for {
		res, err := svc.QueryTriggers(q)
		if err != nil {
			t.Fatal(err)
		}
		walked += len(res.Triggers)
		if res.NextOffset == -1 {
			if len(res.Triggers) == 0 && walked != full.Total {
				t.Fatal("empty non-final page")
			}
			break
		}
		if res.NextOffset != q.Offset+len(res.Triggers) {
			t.Fatalf("NextOffset %d after offset %d + %d items", res.NextOffset, q.Offset, len(res.Triggers))
		}
		q.Offset = res.NextOffset
	}
	if walked != full.Total {
		t.Fatalf("NextOffset walk visited %d of %d matches", walked, full.Total)
	}

	// A page that lands exactly on the last match reports -1, not a
	// phantom next page.
	res, err := svc.QueryTriggers(TriggerQuery{Offset: full.Total - 1, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triggers) != 1 || res.NextOffset != -1 {
		t.Fatalf("exact final page: %d items, NextOffset %d", len(res.Triggers), res.NextOffset)
	}
}

// TestRecordDownloadRoundTrip: a daemon recording with RecordTo serves a
// live artifact snapshot at GET /v1/jobs/{id}/record that replays cleanly,
// and the final on-disk artifact reproduces the run byte-for-byte.
func TestRecordDownloadRoundTrip(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	h, err := svc.AddJob("trace", JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	dir := t.TempDir()
	if err := srv.RecordTo(dir); err != nil {
		t.Fatal(err)
	}
	if len(srv.RecordPaths()) != 1 {
		t.Fatalf("RecordPaths = %v", srv.RecordPaths())
	}
	svc.Start()
	h.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rc, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-run snapshot: valid but incomplete, consistent to "now".
	srv.Advance(30 * time.Second)
	var snap bytes.Buffer
	if err := rc.FetchRecord("trace", &snap); err != nil {
		t.Fatal(err)
	}
	mid, err := Replay(&snap, ReplayOptions{})
	if err != nil {
		t.Fatalf("mid-run snapshot does not replay: %v", err)
	}
	if mid.Complete {
		t.Fatal("mid-run snapshot claims to be complete")
	}
	if mid.RecordsIngested == 0 || len(mid.Replayed.Triggers) == 0 {
		t.Fatalf("snapshot too empty: %d records, %d triggers", mid.RecordsIngested, len(mid.Replayed.Triggers))
	}

	// Unknown job and un-recorded daemons are clean errors, not torn bodies.
	if err := rc.FetchRecord("ghost", io.Discard); err == nil {
		t.Fatal("FetchRecord of unknown job did not error")
	}

	// Finish the run, close out, and replay the finalized artifact.
	srv.Advance(10 * time.Second)
	if err := srv.CloseRecorders(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "trace.mycrec"))
	if err != nil {
		t.Fatal(err)
	}
	final, err := Replay(bytes.NewReader(data), ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Complete {
		t.Fatal("finalized artifact incomplete")
	}
	if d := DiffOutcomes(final.Recorded, final.Replayed); !d.Zero() {
		t.Fatalf("daemon-recorded artifact drifted on replay:\n%s", d.Render())
	}
	// The recorder slot frees after CloseRecorders; downloads now error.
	if err := rc.FetchRecord("trace", io.Discard); err == nil {
		t.Fatal("FetchRecord after CloseRecorders did not error")
	}
}
