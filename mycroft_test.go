package mycroft

import (
	"testing"
	"time"
)

func TestSystemDefaultsRun(t *testing.T) {
	sys := MustNewSystem(Options{})
	sys.Start()
	sys.Start() // idempotent
	sys.Run(20 * time.Second)
	if sys.Job.IterationsDone() < 3 {
		t.Fatalf("iterations = %d", sys.Job.IterationsDone())
	}
	if len(sys.Triggers()) != 0 {
		t.Fatalf("healthy system triggered: %v", sys.Triggers())
	}
	if sys.Now() != 20*time.Second {
		t.Fatalf("Now = %v", sys.Now())
	}
	sys.Stop()
}

func TestSystemDetectsInjectedFault(t *testing.T) {
	sys := MustNewSystem(Options{Seed: 2})
	var triggers, reports int
	sys.OnTrigger = func(Trigger) { triggers++ }
	sys.OnReport = func(Report) { reports++ }
	sys.Start()
	sys.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	sys.Run(45 * time.Second)
	if triggers == 0 || reports == 0 {
		t.Fatalf("triggers=%d reports=%d", triggers, reports)
	}
	rep := sys.Reports()[0]
	if rep.Suspect != 5 {
		t.Fatalf("suspect = %d, want 5 (%v)", rep.Suspect, rep)
	}
	if rep.Category != CatNetworkSendPath && rep.Category != CatNetworkDegrade {
		t.Fatalf("category = %v", rep.Category)
	}
	source, rank, _, ok := sys.Triage()
	if !ok || source != "mycroft" || rank != 5 {
		t.Fatalf("triage = %q rank %d ok=%v", source, rank, ok)
	}
}

func TestSystemTriageDataloader(t *testing.T) {
	sys := MustNewSystem(Options{Seed: 3})
	sys.Start()
	sys.Inject(Fault{Kind: DataloaderStall, Rank: 2, At: 15 * time.Second})
	sys.Run(45 * time.Second)
	source, rank, summary, ok := sys.Triage()
	if !ok || source != "py-spy" || rank != 2 || summary == "" {
		t.Fatalf("triage = %q rank %d ok=%v", source, rank, ok)
	}
}

func TestSystemRejectsBadTopo(t *testing.T) {
	if _, err := NewSystem(Options{Topo: TopoConfig{Nodes: 1, GPUsPerNode: 1, TP: 2, PP: 1, DP: 1}}); err == nil {
		t.Fatal("bad topo accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewSystem did not panic")
		}
	}()
	MustNewSystem(Options{Topo: TopoConfig{Nodes: 1, GPUsPerNode: 1, TP: 2, PP: 1, DP: 1}})
}

func TestSystemCustomTrainConfig(t *testing.T) {
	tc := TrainConfig{ComputePerLayer: 100 * time.Millisecond, DPBytes: 64 << 20}
	sys := MustNewSystem(Options{Train: &tc, CommHeavy: true})
	sys.Start()
	sys.Run(10 * time.Second)
	if sys.Job.IterationsDone() == 0 {
		t.Fatal("custom config did not run")
	}
}

func TestTriageBeforeAnyReport(t *testing.T) {
	sys := MustNewSystem(Options{})
	if _, _, _, ok := sys.Triage(); ok {
		t.Fatal("triage with no reports reported ok")
	}
}
