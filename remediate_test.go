package mycroft

import (
	"testing"
	"time"
)

// TestSelfHealNICDown is the acceptance loop end to end: a recoverable
// nic-down is diagnosed, the policy recovers it, verification sees a quiet
// window, the audit log says succeeded, and the job keeps training.
func TestSelfHealNICDown(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	job := svc.MustAddJob("llm", JobOptions{Backend: BackendConfig{RearmDelay: 10 * time.Second}})
	if err := svc.AttachPolicy("llm", SelfHealPolicy()); err != nil {
		t.Fatal(err)
	}
	actions := svc.Subscribe(EventFilter{Kinds: []EventKind{EventAction}})
	svc.Start()
	job.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(75 * time.Second)

	// The dying NIC first reads as degraded throughput, so the loop may burn
	// an attempt on the wrong category before the failure re-detection names
	// network-send-path; what matters is that the FINAL attempt succeeds.
	log := job.RemediationLog()
	if len(log) == 0 {
		t.Fatal("empty audit log")
	}
	a := log[len(log)-1]
	if a.Outcome != RemedySucceeded || a.Action.Kind != RemedyRecoverFault || a.Action.Rank != 5 {
		t.Fatalf("final attempt = %+v", a)
	}
	for _, prev := range log[:len(log)-1] {
		if prev.Outcome != RemedyFailed {
			t.Fatalf("non-final attempt not failed: %+v", prev)
		}
	}
	// Zero post-verification re-detections of the suspect.
	reps, err := svc.QueryReports(ReportQuery{Suspects: []Rank{5}, From: time.Duration(a.ResolvedAt)})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps.Reports) != 0 {
		t.Fatalf("suspect re-detected after verification: %v", reps.Reports)
	}
	// The job resumed: well past the ~7 iterations a permanently dead NIC
	// allows in this horizon.
	if it := job.Job.IterationsDone(); it < 15 {
		t.Fatalf("job did not resume after remediation: %d iterations", it)
	}
	// EventAction flowed through the subscription: each attempt publishes an
	// applied (pending) transition and a resolution, ending in succeeded.
	evs := actions.Drain()
	if len(evs) != 2*len(log) {
		t.Fatalf("%d action events for %d attempts", len(evs), len(log))
	}
	if evs[0].Action.Outcome != RemedyPending || evs[len(evs)-1].Action.Outcome != RemedySucceeded {
		t.Fatalf("action events = %v", evs)
	}
	// The audit log is queryable through the service layer.
	res, err := svc.QueryRemediations(RemediationQuery{Outcomes: []RemedyOutcome{RemedySucceeded}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 1 || res.Attempts[0].Job != "llm" {
		t.Fatalf("QueryRemediations = %+v", res)
	}
}

// TestRemediationUnrecoverableEscalates: link-loss black-holes bytes the
// substrate cannot replay, so recover-fault attempts cannot quiet the
// suspect and the loop must exhaust its budget and escalate.
func TestRemediationUnrecoverableEscalates(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	job := svc.MustAddJob("llm", JobOptions{Backend: BackendConfig{RearmDelay: 10 * time.Second}})
	p := SelfHealPolicy()
	p.Rules[0].MaxAttempts = 2
	if err := svc.AttachPolicy("llm", p); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	job.Inject(Fault{Kind: LinkLoss, Rank: 6, At: 15 * time.Second})
	svc.Run(150 * time.Second)

	log := job.RemediationLog()
	if len(log) < 3 {
		t.Fatalf("audit log = %v", log)
	}
	last := log[len(log)-1]
	if last.Outcome != RemedyEscalated || last.Action.Kind != RemedyEscalate || last.Action.Rank != 6 {
		t.Fatalf("last attempt = %+v", last)
	}
	for _, a := range log[:len(log)-1] {
		if a.Outcome != RemedyFailed {
			t.Fatalf("pre-escalation attempt not failed: %+v", a)
		}
	}
}

// TestAttachPolicyErrors: duplicate attach, bad policy, unknown job.
func TestAttachPolicyErrors(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	svc.MustAddJob("a", JobOptions{})
	if err := svc.AttachPolicy("a", RemedyPolicy{}); err == nil {
		t.Fatal("empty policy attached")
	}
	if err := svc.AttachPolicy("nope", DefaultRemedyPolicy()); err == nil {
		t.Fatal("unknown job accepted")
	}
	if err := svc.AttachPolicy("a", DefaultRemedyPolicy()); err != nil {
		t.Fatal(err)
	}
	if err := svc.AttachPolicy("a", DefaultRemedyPolicy()); err == nil {
		t.Fatal("duplicate policy attached")
	}
}

// TestStreamBufferBound: a capped poll-mode stream ages out its oldest
// events instead of growing without bound, and counts the drops.
func TestStreamBufferBound(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	svc.MustAddJob("a", JobOptions{})
	st := svc.Subscribe(EventFilter{Kinds: []EventKind{EventLifecycle}, Buffer: 3})
	for i := 0; i < 10; i++ {
		svc.dispatch(Event{Job: "a", Kind: EventLifecycle, At: time.Duration(i), Phase: PhaseJobStarted})
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	if st.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", st.Dropped())
	}
	// The retained events are the newest three.
	evs := st.Drain()
	if evs[0].At != 7 || evs[2].At != 9 {
		t.Fatalf("kept %v..%v, want 7..9", evs[0].At, evs[2].At)
	}
	// An uncapped stream never drops.
	st2 := svc.Subscribe(EventFilter{})
	for i := 0; i < 5; i++ {
		svc.dispatch(Event{Job: "a", Kind: EventLifecycle, Phase: PhaseJobStopped})
	}
	if st2.Dropped() != 0 || st2.Len() != 5 {
		t.Fatalf("uncapped stream: len %d dropped %d", st2.Len(), st2.Dropped())
	}
}

// TestPaginateClampsNegatives: negative Offset/Limit in the query layer
// clamp instead of panicking or mis-slicing.
func TestPaginateClampsNegatives(t *testing.T) {
	svc := NewService(ServiceOptions{Seed: 1})
	job := svc.MustAddJob("a", JobOptions{})
	svc.Start()
	job.Inject(Fault{Kind: NICDown, Rank: 5, At: 15 * time.Second})
	svc.Run(40 * time.Second)

	trs, err := svc.QueryTriggers(TriggerQuery{Offset: -3, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trs.Triggers) != trs.Total || trs.Total == 0 {
		t.Fatalf("negative offset/limit mis-sliced: %d of %d", len(trs.Triggers), trs.Total)
	}
	reps, err := svc.QueryReports(ReportQuery{Offset: -9, Limit: -9})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps.Reports) != reps.Total || reps.Total == 0 {
		t.Fatalf("negative offset/limit mis-sliced: %d of %d", len(reps.Reports), reps.Total)
	}
	// Offset past the end is an empty page, not a slice panic.
	if page, _ := svc.QueryTriggers(TriggerQuery{Offset: 1 << 30}); len(page.Triggers) != 0 {
		t.Fatalf("past-the-end offset returned %d", len(page.Triggers))
	}
	// The trace path hands Limit to the sharded store: negative must mean
	// "no cap" there too.
	all, err := svc.QueryTrace(TraceQuery{Limit: -5})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Records) == 0 || all.Next != nil {
		t.Fatalf("negative trace limit mis-paged: %d records, next %v", len(all.Records), all.Next)
	}
}
