package mycroft

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"mycroft/internal/clouddb"
	"mycroft/internal/core"
	"mycroft/internal/experiments"
	"mycroft/internal/faults"
	"mycroft/internal/obs"
	"mycroft/internal/otrace"
	"mycroft/internal/remedy"
	"mycroft/internal/sim"
	"mycroft/internal/trace"
	"mycroft/internal/train"
)

// JobID addresses one hosted training job inside a Service.
type JobID string

// ServiceOptions configures a Service.
type ServiceOptions struct {
	// Seed makes every hosted job's run reproducible. Default 1.
	Seed int64
	// StaleAfter is the heartbeat staleness threshold: a started job with no
	// ingest for this much virtual time is Stale (Degraded halfway there).
	// Zero means DefaultStaleAfter; negative disables health monitoring.
	StaleAfter time.Duration
}

// Service is Mycroft's multi-tenant analysis backend: N independent training
// jobs — each with its own topology, workload profile, trace store and
// always-on backend — hosted on one deterministic discrete-event engine.
// Jobs are addressed by JobID; observers attach with Subscribe and the
// QueryTrace/QueryTriggers/QueryReports layer answers questions the old
// single-job callbacks could not express.
type Service struct {
	Eng *sim.Engine

	jobs    map[JobID]*JobHandle
	order   []JobID
	started bool
	seed    int64

	// streamsMu guards the subscription list alone: a consumer goroutine may
	// Subscribe or Close a Stream while the engine dispatches (the daemon
	// shape). Everything else on the Service keeps the engine's
	// single-threaded contract.
	streamsMu sync.Mutex
	streams   []*Stream

	// Observability plane: the instrument registry, the subscription
	// counters Stream.deliver bumps, and the heartbeat monitor.
	reg          *obs.Registry
	subDelivered *obs.Counter
	subDropped   *obs.Counter
	staleAfter   time.Duration
	healthTicker *sim.Ticker
}

// NewService builds an empty Service; add jobs with AddJob.
func NewService(opts ServiceOptions) *Service {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	staleAfter := opts.StaleAfter
	switch {
	case staleAfter == 0:
		staleAfter = DefaultStaleAfter
	case staleAfter < 0:
		staleAfter = 0 // monitoring disabled
	}
	s := &Service{Eng: sim.NewEngine(opts.Seed), jobs: make(map[JobID]*JobHandle), staleAfter: staleAfter, seed: opts.Seed}
	s.initMetrics()
	return s
}

// JobOptions sizes one hosted job. The zero value is a runnable 8-GPU job.
type JobOptions struct {
	// Topo sizes the cluster. Default: 2 nodes × 4 GPUs, TP=2 PP=2 DP=2.
	Topo TopoConfig
	// Train overrides the workload; leave zero to derive from Topo with
	// defaults. If both Train.Topo and Topo are set they must agree.
	Train *TrainConfig
	// Backend tunes the trigger/RCA thresholds (§9 heuristics).
	Backend BackendConfig
	// CommHeavy weights iterations toward communication.
	CommHeavy bool
}

// resolve fills defaults and reconciles the two places a topology can be
// declared. A caller-supplied Train.Topo that disagrees with Topo is an
// error, not something to silently clobber.
func (o JobOptions) resolve() (train.Config, error) {
	topoSet := o.Topo != (TopoConfig{})
	if o.Train == nil {
		if !topoSet {
			o.Topo = TopoConfig{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}
		}
		profile := experiments.ComputeHeavy
		if o.CommHeavy {
			profile = experiments.CommHeavy
		}
		return experiments.JobConfig(o.Topo, profile), nil
	}
	tc := *o.Train
	trainTopoSet := tc.Topo != (TopoConfig{})
	switch {
	case trainTopoSet && topoSet && tc.Topo != o.Topo:
		return train.Config{}, fmt.Errorf("mycroft: Train.Topo %+v conflicts with Topo %+v (set one, or make them agree)", tc.Topo, o.Topo)
	case trainTopoSet:
		// The workload's own topology wins when Topo is unset.
	default:
		if !topoSet {
			o.Topo = TopoConfig{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}
		}
		tc.Topo = o.Topo
	}
	return tc, nil
}

// AddJob hosts a new job on the service's engine. An empty id is assigned
// "job-N" in arrival order; a duplicate id is an error. The job is built
// immediately but idle until Start.
func (s *Service) AddJob(id JobID, opts JobOptions) (*JobHandle, error) {
	if id == "" {
		for i := len(s.order); ; i++ {
			candidate := JobID(fmt.Sprintf("job-%d", i))
			if _, taken := s.jobs[candidate]; !taken {
				id = candidate
				break
			}
		}
	}
	if _, dup := s.jobs[id]; dup {
		return nil, fmt.Errorf("mycroft: job %q already hosted", id)
	}
	tc, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	job, err := train.New(s.Eng, tc)
	if err != nil {
		return nil, err
	}
	sampled := core.SampleRanks(job.Cluster.DPGroups(), opts.Backend.MaxSampled)
	if len(sampled) == 0 {
		sampled = core.SampleWorld(job.Cluster.WorldSize(), opts.Backend.MaxSampled)
	}
	bk := core.NewBackend(s.Eng, job.DB, sampled, opts.Backend)
	h := &JobHandle{ID: id, svc: s, Job: job, Backend: bk, health: HealthStopped}
	// One span recorder per job: every pipeline layer — collector upload,
	// store ingest, detection, RCA, publish, fan-out, remediation — threads
	// its stage spans through the same tracer so an incident reads as one
	// causal tree.
	h.tracer = otrace.NewTracer(otrace.NewRecorder(otrace.DefaultCapacity, s.Eng.Now), string(id))
	job.DB.SetTracer(h.tracer)
	bk.SetTracer(h.tracer)
	for _, agent := range job.Agents {
		agent.SetTracer(h.tracer)
	}
	bk.SetPublisher(func(ev core.Event) {
		s.dispatch(Event{
			Job: id, Kind: ev.Kind, At: time.Duration(ev.At),
			Trigger: ev.Trigger, Report: ev.Report, Phase: ev.Phase,
			LogAnomaly: ev.LogAnomaly,
		})
	})
	// The non-tracepoint channels and the evidence fusion every channel —
	// including the backend's own tracepoint verdicts — reports through.
	fusion := core.NewFusion(core.FusionConfig{})
	bk.SetFusion(fusion)
	h.channels = newJobChannels(job.Cluster.WorldSize(), fusion)
	s.registerJobMetrics(h)
	s.registerChannelMetrics(h)
	// The heartbeat watermark: any batch reaching the store proves the job's
	// agents are alive right now (virtual time).
	job.DB.AddIngestObserver(func([]trace.Record) { h.lastIngest = s.Now() })
	s.jobs[id] = h
	s.order = append(s.order, id)
	if s.started {
		h.Start()
	}
	return h, nil
}

// MustAddJob is AddJob for known-good options.
func (s *Service) MustAddJob(id JobID, opts JobOptions) *JobHandle {
	h, err := s.AddJob(id, opts)
	if err != nil {
		panic(err)
	}
	return h
}

// Tracer returns a hosted job's pipeline span tracer (nil for unknown jobs).
// Hosting layers — the cluster node's replicator, say — use it to extend an
// incident's tree with their own stages.
func (s *Service) Tracer(job JobID) *otrace.Tracer {
	if h, ok := s.jobs[job]; ok {
		return h.tracer
	}
	return nil
}

// Job returns the handle for a hosted job.
func (s *Service) Job(id JobID) (*JobHandle, bool) {
	h, ok := s.jobs[id]
	return h, ok
}

// Jobs lists hosted job ids in arrival order.
func (s *Service) Jobs() []JobID { return append([]JobID(nil), s.order...) }

// Start launches every hosted job and its backend, and arms the heartbeat
// monitor. Jobs added later start immediately.
func (s *Service) Start() {
	s.started = true
	for _, id := range s.order {
		s.jobs[id].Start()
	}
	s.armHealthMonitor()
}

// Stop halts every hosted job and backend and disarms the heartbeat monitor.
func (s *Service) Stop() {
	for _, id := range s.order {
		s.jobs[id].Stop()
	}
	s.disarmHealthMonitor()
	s.started = false
}

// Run advances virtual time by d for every hosted job.
func (s *Service) Run(d time.Duration) { s.Eng.RunFor(d) }

// Now returns the current virtual time from the start of the run.
func (s *Service) Now() time.Duration { return time.Duration(s.Eng.Now()) }

// dispatch fans one event out to every live subscription, in subscribe
// order, then to the owning job's remediation loop — after the streams, so
// a subscriber always sees the provoking trigger/report before any
// EventAction it causes (the loop's reaction recursively dispatches).
func (s *Service) dispatch(e Event) {
	s.streamsMu.Lock()
	streams := slices.Clone(s.streams)
	s.streamsMu.Unlock()
	matched := 0
	for _, st := range streams {
		if st.filter.matches(e) {
			st.deliver(e)
			matched++
		}
	}
	if h := s.jobs[e.Job]; h != nil {
		// Pipeline events (not lifecycle/health chatter) record a deliver span
		// under the incident tree: virtually instantaneous, wall-timed.
		switch e.Kind {
		case EventTrigger, EventReport, EventAction:
			if t := h.tracer; t != nil {
				span := t.StageAt(otrace.StageDeliver, sim.Time(e.At))
				t.Annotate(span, "", fmt.Sprintf("%s fan-out to %d stream(s)", e.Kind, matched))
				t.EndAt(span, sim.Time(e.At))
			}
		}
		if e.Kind == EventReport && e.Report != nil {
			h.observeFusion(*e.Report)
		}
		h.observeRemedy(e)
	}
}

// resolveJob maps a query's job field to a handle; empty means "the sole
// hosted job" and is an error when the service hosts several.
func (s *Service) resolveJob(id JobID) (*JobHandle, error) {
	if id == "" {
		if len(s.order) == 1 {
			return s.jobs[s.order[0]], nil
		}
		return nil, fmt.Errorf("mycroft: query needs a Job id (service hosts %d jobs)", len(s.order))
	}
	h, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("mycroft: no job %q", id)
	}
	return h, nil
}

// selectJobs resolves a multi-job filter: nil/empty = every job, else the
// named jobs in arrival order.
func (s *Service) selectJobs(ids []JobID) ([]*JobHandle, error) {
	if len(ids) == 0 {
		out := make([]*JobHandle, 0, len(s.order))
		for _, id := range s.order {
			out = append(out, s.jobs[id])
		}
		return out, nil
	}
	want := make(map[JobID]bool, len(ids))
	for _, id := range ids {
		if _, ok := s.jobs[id]; !ok {
			return nil, fmt.Errorf("mycroft: no job %q", id)
		}
		want[id] = true
	}
	var out []*JobHandle
	for _, id := range s.order {
		if want[id] {
			out = append(out, s.jobs[id])
		}
	}
	return out, nil
}

// JobHandle is one hosted job: the simulated training run, its trace store
// and its analysis backend.
type JobHandle struct {
	ID      JobID
	Job     *train.Job
	Backend *core.Backend

	svc      *Service
	started  bool
	remedy   *remedy.Engine
	isolated []Rank
	recorder *Recorder
	tracer   *otrace.Tracer
	channels *jobChannels

	// Heartbeat state, owned by the service's health monitor. lastIngest is
	// the virtual time records last reached the store.
	health       HealthState
	healthSince  time.Duration
	healthReason string
	lastIngest   time.Duration
}

// Start launches the job's training script and backend (idempotent). Health
// moves to healthy silently — the lifecycle event is the announcement; only
// watermark-driven transitions emit EventHealth.
func (h *JobHandle) Start() {
	if h.started {
		return
	}
	h.started = true
	h.health, h.healthSince, h.healthReason = HealthHealthy, h.svc.Now(), ""
	h.lastIngest = h.svc.Now()
	h.svc.dispatch(Event{Job: h.ID, Kind: EventLifecycle, At: h.svc.Now(), Phase: PhaseJobStarted})
	h.Job.Start()
	h.Backend.Start()
}

// Stop halts the job and its backend (idempotent). Health moves to stopped
// silently, mirroring Start.
func (h *JobHandle) Stop() {
	if !h.started {
		return
	}
	h.started = false
	h.health, h.healthSince, h.healthReason = HealthStopped, h.svc.Now(), ""
	h.Backend.Stop()
	h.Job.Stop()
	h.svc.dispatch(Event{Job: h.ID, Kind: EventLifecycle, At: h.svc.Now(), Phase: PhaseJobStopped})
}

// Inject schedules a fault on this job.
func (h *JobHandle) Inject(f Fault) { faults.Inject(h.Job, f) }

// InjectPlan schedules a whole programmatic injection plan.
func (h *JobHandle) InjectPlan(p faults.Plan) { p.Inject(h.Job) }

// Recover schedules the undo of a recoverable fault (see faults.Recover).
func (h *JobHandle) Recover(f Fault) { faults.Recover(h.Job, f) }

// WorldSize returns the number of ranks in this job's cluster.
func (h *JobHandle) WorldSize() int { return h.Job.Cluster.WorldSize() }

// RecordsIngested returns how many trace records reached this job's store.
func (h *JobHandle) RecordsIngested() uint64 { return h.Job.DB.Ingested() }

// StoreStats reports the job's sharded trace-store counters.
func (h *JobHandle) StoreStats() clouddb.Stats { return h.Job.DB.Stats() }

// DependencyDOT renders the job's current dependency graph in Graphviz dot
// syntax (deterministic; see internal/depgraph).
func (h *JobHandle) DependencyDOT() string { return h.Backend.Graph().DOT() }

// Triggers returns every Algorithm 1 firing so far.
func (h *JobHandle) Triggers() []Trigger { return h.Backend.Triggers() }

// Reports returns every Algorithm 2 verdict so far.
func (h *JobHandle) Reports() []Report { return h.Backend.Reports() }

// Triage runs the Fig. 6 integration pipeline (py-spy → Flight Recorder →
// Mycroft) over the latest report and returns the combined verdict source,
// suspect rank and summary.
func (h *JobHandle) Triage() (source string, rank Rank, summary string, ok bool) {
	reps := h.Backend.Reports()
	if len(reps) == 0 {
		return "", -1, "", false
	}
	v := experiments.Triage(h.Job, reps[len(reps)-1], h.svc.Eng.Now())
	return v.Source, v.Rank, v.Summary, true
}
