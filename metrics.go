package mycroft

import (
	"strconv"
	"time"

	"mycroft/internal/clouddb"
	"mycroft/internal/core"
	"mycroft/internal/obs"
)

// initMetrics builds the service's registry and the service-wide
// instruments. The GaugeFunc callbacks here read engine-owned state, so a
// scraper must serialize with the drive loop (the daemon scrapes under its
// request mutex).
func (s *Service) initMetrics() {
	s.reg = obs.New()
	s.subDelivered = s.reg.Counter("mycroft_subscription_events_total",
		"Events delivered to subscription streams.")
	s.subDropped = s.reg.Counter("mycroft_subscription_events_dropped_total",
		"Events aged out of full subscription buffers.")
	s.reg.GaugeFunc("mycroft_subscriptions_active", "Live subscription streams.", func() float64 {
		s.streamsMu.Lock()
		defer s.streamsMu.Unlock()
		return float64(len(s.streams))
	})
	s.reg.GaugeFunc("mycroft_jobs", "Hosted jobs.", func() float64 { return float64(len(s.order)) })
}

// Metrics returns the service's instrument registry, for exposition
// (Registry.WritePrometheus) or ad-hoc inspection.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// registerJobMetrics attaches the per-job instrument sets: store ingest and
// query instruments, detection instruments, occupancy gauges and the health
// gauge, all labeled {job="<id>"}.
func (s *Service) registerJobMetrics(h *JobHandle) {
	jl := obs.L("job", string(h.ID))
	db := h.Job.DB
	db.SetMetrics(&clouddb.Metrics{
		Records:      s.reg.Counter("mycroft_ingest_records_total", "Trace records ingested into the store.", jl),
		Bytes:        s.reg.Counter("mycroft_ingest_bytes_total", "Encoded trace bytes ingested.", jl),
		Batches:      s.reg.Counter("mycroft_ingest_batches_total", "Ingest batches accepted.", jl),
		Pruned:       s.reg.Counter("mycroft_store_pruned_records_total", "Records dropped by the retention horizon.", jl),
		Queries:      s.reg.Counter("mycroft_queries_total", "Unified store query pages served.", jl),
		QueryLatency: s.reg.Histogram("mycroft_query_latency_seconds", "Wall-clock store query latency in seconds.", obs.LatencyBuckets, jl),
	})
	h.Backend.SetMetrics(&core.Metrics{
		Triggers: map[string]*obs.Counter{
			"failure":   s.reg.Counter("mycroft_triggers_total", "Algorithm 1 firings, by kind.", jl, obs.L("kind", "failure")),
			"straggler": s.reg.Counter("mycroft_triggers_total", "Algorithm 1 firings, by kind.", jl, obs.L("kind", "straggler")),
		},
		Reports:    s.reg.Counter("mycroft_reports_total", "Algorithm 2 verdicts delivered.", jl),
		RCALatency: s.reg.Histogram("mycroft_rca_latency_seconds", "Wall-clock root-cause analysis latency in seconds.", obs.LatencyBuckets, jl),
		ChainDepth: s.reg.Histogram("mycroft_rca_chain_depth", "Causal-chain hops per report.", obs.DepthBuckets, jl),
	})
	s.reg.GaugeFunc("mycroft_store_records", "Live (unpruned) records in the store.",
		func() float64 { return float64(db.LiveRecords()) }, jl)
	for i := 0; i < db.Shards(); i++ {
		shard := i
		s.reg.GaugeFunc("mycroft_store_shard_records", "Live records per store shard.",
			func() float64 { return float64(db.ShardRecords(shard)) }, jl, obs.L("shard", strconv.Itoa(shard)))
	}
	s.reg.GaugeFunc("mycroft_job_health", "Job health (0 stopped, 1 healthy, 2 degraded, 3 stale).",
		func() float64 { return float64(h.health.score()) }, jl)
	s.reg.GaugeFunc("mycroft_job_last_ingest_age_seconds", "Virtual seconds since records last reached the store.",
		func() float64 { return (s.Now() - h.lastIngest).Seconds() }, jl)
}

// observeRemedyMetrics audits one remediation transition. Attempts are rare
// (human-scale), so register-on-demand keeps the outcome label space exact
// without pre-declaring every action×outcome pair.
func (s *Service) observeRemedyMetrics(job JobID, a RemedyAttempt) {
	jl := obs.L("job", string(job))
	s.reg.Counter("mycroft_remedy_attempts_total", "Remediation attempt transitions, by action and outcome.",
		jl, obs.L("action", string(a.Action.Kind)), obs.L("outcome", string(a.Outcome))).Inc()
	if a.Outcome == RemedySucceeded {
		s.reg.Histogram("mycroft_remedy_verify_seconds", "Virtual seconds from action applied to verified success.",
			obs.DurationBuckets, jl).Observe(time.Duration(a.ResolvedAt - a.AppliedAt).Seconds())
	}
}
