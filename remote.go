package mycroft

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mycroft/internal/api"
)

// ErrUnreachable marks a dial (or cluster route) that exhausted its
// connection retries: every attempt was refused, reset or timed out at the
// transport layer. Test with errors.Is.
var ErrUnreachable = errors.New("daemon unreachable")

// ErrSubscriptionLost marks a subscription whose server-side half is gone
// for good — typically the daemon restarted and wiped its subscription
// table. The stream closes with this as its Err; resubscribe to continue.
// Test with errors.Is.
var ErrSubscriptionLost = errors.New("subscription lost")

// RemoteClient is the Client implementation that speaks the /v1 wire
// protocol to a mycroft-serve daemon. Every query converts to the versioned
// wire form, crosses HTTP, and converts back, so code written against
// Client runs unchanged in-process or remote. Subscriptions are fed by a
// background long-poller into the same *Stream type the in-process Service
// hands out; transport failures close the stream and surface via
// Stream.Err.
type RemoteClient struct {
	base string
	hc   *http.Client

	// serverID and serverStarted are captured from the dial-time ping so
	// callers can log what they connected to.
	serverID      string
	serverStarted time.Time
}

// DialOption tunes Dial's connection-retry behavior.
type DialOption func(*dialConfig)

type dialConfig struct {
	attempts  int
	baseDelay time.Duration
	maxDelay  time.Duration
}

// DialAttempts sets how many connection attempts Dial makes before giving
// up with ErrUnreachable (default 4; minimum 1). Only refused/reset/timeout
// transport errors are retried — a daemon that answers with the wrong wire
// version fails immediately.
func DialAttempts(n int) DialOption {
	return func(c *dialConfig) {
		if n >= 1 {
			c.attempts = n
		}
	}
}

// normalizeBase turns "host:port" or an http URL into a canonical base URL.
func normalizeBase(addr string) string {
	base := addr
	if base == "" {
		return ""
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/")
}

// isTransportErr reports whether err is a connection-layer failure
// (refused, reset, dial timeout) rather than an application answer —
// exactly the class worth retrying or failing over.
func isTransportErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	// A peer dying mid-request surfaces as a bare EOF on the reused
	// connection — as much "unreachable" as a refused dial.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ue *url.Error
	if errors.As(err, &ue) && ue.Timeout() {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// Dial connects to a daemon at addr ("host:port" or a full http:// URL),
// verifying the wire-protocol version via /v1/ping. Refused or reset
// connections are retried with capped exponential backoff (a daemon that is
// still binding its port wins the race within a few attempts); exhausting
// the retries returns an error wrapping ErrUnreachable.
func Dial(addr string, opts ...DialOption) (*RemoteClient, error) {
	cfg := dialConfig{attempts: 4, baseDelay: 50 * time.Millisecond, maxDelay: time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	c := &RemoteClient{base: normalizeBase(addr), hc: &http.Client{Timeout: 60 * time.Second}}
	var ping api.PingResponse
	var err error
	delay := cfg.baseDelay
	for attempt := 1; ; attempt++ {
		err = c.get(api.Prefix+"/ping", &ping)
		if err == nil {
			break
		}
		if !isTransportErr(err) || attempt >= cfg.attempts {
			if isTransportErr(err) {
				return nil, fmt.Errorf("mycroft: dialing %s (%d attempts): %w: %v", addr, attempt, ErrUnreachable, err)
			}
			return nil, fmt.Errorf("mycroft: dialing %s: %w", addr, err)
		}
		time.Sleep(delay)
		if delay *= 2; delay > cfg.maxDelay {
			delay = cfg.maxDelay
		}
	}
	if ping.Version != api.Version {
		return nil, fmt.Errorf("mycroft: daemon at %s speaks wire version %d, this client speaks %d", addr, ping.Version, api.Version)
	}
	c.serverID = ping.Server
	if ping.StartedUnixNs != 0 {
		c.serverStarted = time.Unix(0, ping.StartedUnixNs)
	}
	return c, nil
}

// ServerInfo reports the daemon identity and wall-clock start time captured
// at dial; identity is "" (and start zero) against a daemon predating them.
func (c *RemoteClient) ServerInfo() (string, time.Time) {
	return c.serverID, c.serverStarted
}

// Health implements Client over the wire. Uptime and Server come filled by
// the daemon, unlike the in-process Service where both are zero.
func (c *RemoteClient) Health() (HealthResult, error) {
	var resp api.HealthResponse
	if err := c.get(api.Prefix+"/health", &resp); err != nil {
		return HealthResult{}, err
	}
	return healthResultFromWire(resp)
}

// Now returns the daemon's current virtual time.
func (c *RemoteClient) Now() (time.Duration, error) {
	var ping api.PingResponse
	if err := c.get(api.Prefix+"/ping", &ping); err != nil {
		return 0, err
	}
	return time.Duration(ping.NowNs), nil
}

// ListJobs describes every job the daemon hosts.
func (c *RemoteClient) ListJobs() (JobsResult, error) {
	var resp api.JobsResponse
	if err := c.get(api.Prefix+"/jobs", &resp); err != nil {
		return JobsResult{}, err
	}
	return jobsResultFromWire(resp), nil
}

// QueryTrace implements Client over the wire.
func (c *RemoteClient) QueryTrace(q TraceQuery) (TraceResult, error) {
	var resp api.TraceResponse
	if err := c.post(api.Prefix+"/trace/query", traceQueryToWire(q), &resp); err != nil {
		return TraceResult{}, err
	}
	return traceResultFromWire(resp)
}

// QueryTriggers implements Client over the wire.
func (c *RemoteClient) QueryTriggers(q TriggerQuery) (TriggerResult, error) {
	var resp api.TriggersResponse
	if err := c.post(api.Prefix+"/triggers/query", triggerQueryToWire(q), &resp); err != nil {
		return TriggerResult{}, err
	}
	return triggerResultFromWire(resp)
}

// QueryReports implements Client over the wire.
func (c *RemoteClient) QueryReports(q ReportQuery) (ReportResult, error) {
	var resp api.ReportsResponse
	if err := c.post(api.Prefix+"/reports/query", reportQueryToWire(q), &resp); err != nil {
		return ReportResult{}, err
	}
	return reportResultFromWire(resp)
}

// QueryDependencies implements Client over the wire.
func (c *RemoteClient) QueryDependencies(q DependencyQuery) (DependencyResult, error) {
	var resp api.DependenciesResponse
	if err := c.post(api.Prefix+"/dependencies/query", dependencyQueryToWire(q), &resp); err != nil {
		return DependencyResult{}, err
	}
	return dependencyResultFromWire(resp)
}

// BlastRadius implements Client over the wire.
func (c *RemoteClient) BlastRadius(job JobID, suspect Rank) ([]Rank, error) {
	var resp api.BlastRadiusResponse
	if err := c.post(api.Prefix+"/blast-radius", api.BlastRadiusRequest{Job: string(job), Suspect: int(suspect)}, &resp); err != nil {
		return nil, err
	}
	return intsToRanks(resp.Victims), nil
}

// QueryRemediations implements Client over the wire.
func (c *RemoteClient) QueryRemediations(q RemediationQuery) (RemediationResult, error) {
	var resp api.RemediationsResponse
	if err := c.post(api.Prefix+"/remediations/query", remediationQueryToWire(q), &resp); err != nil {
		return RemediationResult{}, err
	}
	return remediationResultFromWire(resp)
}

// QuerySpans implements Client over the wire: the filters ride the query
// string of GET /v1/jobs/{id}/spans. An empty Job resolves against the
// daemon's job list, mirroring the in-process "sole hosted job" rule.
func (c *RemoteClient) QuerySpans(q SpanQuery) (SpanResult, error) {
	job := string(q.Job)
	if job == "" {
		res, err := c.ListJobs()
		if err != nil {
			return SpanResult{}, err
		}
		if len(res.Jobs) != 1 {
			return SpanResult{}, fmt.Errorf("mycroft: query needs a Job id (daemon hosts %d jobs)", len(res.Jobs))
		}
		job = string(res.Jobs[0].ID)
	}
	params := url.Values{}
	if q.Incident != "" {
		params.Set("incident", q.Incident)
	}
	if q.Stage != "" {
		params.Set("stage", q.Stage)
	}
	if q.AfterID != 0 {
		params.Set("after_id", strconv.FormatUint(uint64(q.AfterID), 10))
	}
	if q.MinWall > 0 {
		params.Set("min_wall_ns", strconv.FormatInt(int64(q.MinWall), 10))
	}
	if q.Limit > 0 {
		params.Set("limit", strconv.Itoa(q.Limit))
	}
	path := api.Prefix + "/jobs/" + url.PathEscape(job) + "/spans"
	if enc := params.Encode(); enc != "" {
		path += "?" + enc
	}
	var resp api.SpansResponse
	if err := c.get(path, &resp); err != nil {
		return SpanResult{}, err
	}
	return spanResultFromWire(resp), nil
}

// resolveRemoteJob fills an empty job selector against the daemon's job
// list, mirroring the in-process "sole hosted job" rule.
func (c *RemoteClient) resolveRemoteJob(job JobID) (string, error) {
	if job != "" {
		return string(job), nil
	}
	res, err := c.ListJobs()
	if err != nil {
		return "", err
	}
	if len(res.Jobs) != 1 {
		return "", fmt.Errorf("mycroft: query needs a Job id (daemon hosts %d jobs)", len(res.Jobs))
	}
	return string(res.Jobs[0].ID), nil
}

// IngestLogs implements Client over the wire (POST /v1/jobs/{id}/logs).
func (c *RemoteClient) IngestLogs(job JobID, lines []LogLine) (IngestResult, error) {
	id, err := c.resolveRemoteJob(job)
	if err != nil {
		return IngestResult{}, err
	}
	req := api.LogsRequest{Lines: make([]api.LogLine, 0, len(lines))}
	for _, l := range lines {
		req.Lines = append(req.Lines, api.LogLine{Rank: int(l.Rank), AtNs: int64(l.At), Level: l.Level, Text: l.Text})
	}
	var resp api.IngestChannelResponse
	if err := c.post(api.Prefix+"/jobs/"+url.PathEscape(id)+"/logs", req, &resp); err != nil {
		return IngestResult{}, err
	}
	return IngestResult{Job: JobID(resp.Job), Accepted: resp.Accepted, Anomalies: resp.Anomalies}, nil
}

// IngestTimings implements Client over the wire (POST /v1/jobs/{id}/timings).
func (c *RemoteClient) IngestTimings(job JobID, samples []IterationSample) (IngestResult, error) {
	id, err := c.resolveRemoteJob(job)
	if err != nil {
		return IngestResult{}, err
	}
	req := api.TimingsRequest{Samples: make([]api.TimingSample, 0, len(samples))}
	for _, s := range samples {
		req.Samples = append(req.Samples, api.TimingSample{Rank: int(s.Rank), Iter: s.Iter, AtNs: int64(s.At)})
	}
	var resp api.IngestChannelResponse
	if err := c.post(api.Prefix+"/jobs/"+url.PathEscape(id)+"/timings", req, &resp); err != nil {
		return IngestResult{}, err
	}
	return IngestResult{Job: JobID(resp.Job), Accepted: resp.Accepted, Anomalies: resp.Anomalies}, nil
}

// ChannelStats implements Client over the wire (GET /v1/jobs/{id}/channels).
func (c *RemoteClient) ChannelStats(job JobID) (ChannelStatsResult, error) {
	id, err := c.resolveRemoteJob(job)
	if err != nil {
		return ChannelStatsResult{}, err
	}
	var resp api.ChannelsResponse
	if err := c.get(api.Prefix+"/jobs/"+url.PathEscape(id)+"/channels", &resp); err != nil {
		return ChannelStatsResult{}, err
	}
	return channelStatsFromWire(resp)
}

// Triage implements Client over the wire.
func (c *RemoteClient) Triage(job JobID) (TriageResult, error) {
	var resp api.TriageResponse
	if err := c.post(api.Prefix+"/triage", api.TriageRequest{Job: string(job)}, &resp); err != nil {
		return TriageResult{}, err
	}
	return TriageResult{Job: JobID(resp.Job), Source: resp.Source, Rank: Rank(resp.Rank), Summary: resp.Summary, OK: resp.OK}, nil
}

// FetchRecord streams a job's incident artifact snapshot from the daemon
// into w. The bytes are a valid (possibly footer-less) artifact as of the
// daemon's current virtual instant, ready for mycroft.Replay. Unlike query
// responses, the download is unbounded — artifacts from long runs can exceed
// the JSON response cap by design.
func (c *RemoteClient) FetchRecord(job JobID, w io.Writer) error {
	path := api.Prefix + "/jobs/" + string(job) + "/record"
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var we api.ErrorResponse
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return fmt.Errorf("%s", we.Error)
		}
		return fmt.Errorf("mycroft: %s: HTTP %d", path, resp.StatusCode)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Subscribe creates a server-side subscription and returns a Stream fed by
// a background long-poller. Creation failures come back as an
// already-closed stream whose Err explains why — so the streaming-cursor
// call shape stays identical to the in-process Service.
func (c *RemoteClient) Subscribe(f EventFilter) *Stream {
	st := newStream(nil, f)
	var resp api.SubscribeResponse
	if err := c.post(api.Prefix+"/subscribe", api.SubscribeRequest{Filter: eventFilterToWire(f)}, &resp); err != nil {
		st.fail(err)
		return st
	}
	st.onClose = func() { c.unsubscribe(resp.ID) }
	go c.pollLoop(resp.ID, st)
	return st
}

// pollLoop drains the server-side subscription into the local stream until
// either side closes.
func (c *RemoteClient) pollLoop(id string, st *Stream) {
	for {
		if st.isClosed() {
			return
		}
		var resp api.PollResponse
		if err := c.post(api.Prefix+"/poll", api.PollRequest{ID: id, TimeoutMs: 1000, Max: 256}, &resp); err != nil {
			st.fail(err)
			return
		}
		for _, we := range resp.Events {
			e, err := eventFromWire(we)
			if err != nil {
				st.fail(err)
				return
			}
			st.deliver(e)
		}
		st.setRemoteDropped(resp.Dropped)
		if resp.Lost {
			// The server does not know this ID at all — a restart wiped it.
			// Unlike a clean Closed there is nothing left to drain; surface
			// the typed error so callers know to resubscribe.
			st.fail(fmt.Errorf("mycroft: subscription %s: %w", id, ErrSubscriptionLost))
			return
		}
		if resp.Closed {
			st.Close()
			return
		}
	}
}

func (c *RemoteClient) unsubscribe(id string) {
	req, err := http.NewRequest(http.MethodDelete, c.base+api.Prefix+"/subscriptions/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := c.hc.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// Close releases idle transport connections. Live subscriptions close
// themselves through their own Stream.Close.
func (c *RemoteClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

func (c *RemoteClient) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	return decode(path, resp, out)
}

func (c *RemoteClient) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decode(path, resp, out)
}

// maxResponse bounds how much of a response body the client will read.
const maxResponse = 64 << 20

func decode(path string, resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponse+1))
	if err != nil {
		return err
	}
	if len(body) > maxResponse {
		return fmt.Errorf("mycroft: %s: response exceeds %d MiB — narrow the query or page it", path, maxResponse>>20)
	}
	if resp.StatusCode != http.StatusOK {
		var we api.ErrorResponse
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return fmt.Errorf("%s", we.Error)
		}
		return fmt.Errorf("mycroft: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}
