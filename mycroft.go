// Package mycroft is a from-scratch reproduction of "Mycroft: Tracing
// Dependencies in Collective Communication Towards Reliable LLM Training"
// (SOSP 2025): a lightweight distributed tracing and root-cause-analysis
// system for collective communication, together with the full substrate it
// runs on — an NCCL-like collective library, a simulated RDMA fabric and GPU
// fleet, a Megatron-style training-job driver, the trace pipeline, and the
// always-on analysis backend.
//
// Everything runs on a deterministic discrete-event engine, so failures
// reproduce bit-for-bit from a seed. The typical flow:
//
//	sys, _ := mycroft.NewSystem(mycroft.Options{Seed: 1})
//	sys.OnReport = func(r mycroft.Report) { fmt.Println(r) }
//	sys.Start()
//	sys.Inject(mycroft.Fault{Kind: mycroft.NICDown, Rank: 5, At: 15 * time.Second})
//	sys.Run(60 * time.Second)
//
// See README.md for the build, the CLI tools (including the declarative
// scenario runner, cmd/mycroft-scenario) and the scenario file format;
// bench_test.go regenerates every reproduced table and figure.
package mycroft

import (
	"time"

	"mycroft/internal/core"
	"mycroft/internal/experiments"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// Re-exported domain types, so downstream users need only this package.
type (
	// Rank is a global training rank.
	Rank = topo.Rank
	// Trigger is an Algorithm 1 firing.
	Trigger = core.Trigger
	// Report is an Algorithm 2 root-cause verdict.
	Report = core.Report
	// Category is an RC-table failure category.
	Category = core.Category
	// Fault is an injectable fault specification.
	Fault = faults.Spec
	// FaultKind enumerates injectable faults.
	FaultKind = faults.Kind
	// TopoConfig sizes the simulated cluster.
	TopoConfig = topo.Config
	// TrainConfig tunes the simulated training job.
	TrainConfig = train.Config
	// BackendConfig tunes the analysis backend.
	BackendConfig = core.Config
)

// Fault kinds (the seven §7.1 classes plus the §6.2 integration faults).
const (
	NICDown         = faults.NICDown
	NICFlap         = faults.NICFlap
	LinkLoss        = faults.LinkLoss
	NICDegrade      = faults.NICDegrade
	GPUHang         = faults.GPUHang
	GPUSlow         = faults.GPUSlow
	PCIeDegrade     = faults.PCIeDegrade
	ProxyCrash      = faults.ProxyCrash
	Congestion      = faults.Congestion
	DataloaderStall = faults.DataloaderStall
	SyncMismatch    = faults.SyncMismatch
	ComputeHang     = faults.ComputeHang
	CheckpointStall = faults.CheckpointStall
)

// Root-cause categories.
const (
	CatNetworkSendPath  = core.CatNetworkSendPath
	CatNetworkDegrade   = core.CatNetworkDegrade
	CatGPUHang          = core.CatGPUHang
	CatPCIeDegrade      = core.CatPCIeDegrade
	CatComputeStraggler = core.CatComputeStraggler
	CatProxyCrash       = core.CatProxyCrash
	CatNotLaunched      = core.CatNotLaunched
	CatUnknown          = core.CatUnknown
)

// Options configures a System. The zero value is a runnable 8-GPU job.
type Options struct {
	// Seed makes the run reproducible. Default 1.
	Seed int64
	// Topo sizes the cluster. Default: 2 nodes × 4 GPUs, TP=2 PP=2 DP=2.
	Topo TopoConfig
	// Train overrides the workload; leave zero to derive from Topo with
	// defaults.
	Train *TrainConfig
	// Backend tunes the trigger/RCA thresholds (§9 heuristics).
	Backend BackendConfig
	// CommHeavy weights iterations toward communication.
	CommHeavy bool
}

// System is a fully wired simulation: cluster, CCL, trace pipeline, training
// job and Mycroft backend on one virtual clock.
type System struct {
	Eng     *sim.Engine
	Job     *train.Job
	Backend *core.Backend

	// OnTrigger and OnReport observe the backend live (set before Start).
	OnTrigger func(Trigger)
	OnReport  func(Report)

	started bool
}

// NewSystem builds a System.
func NewSystem(opts Options) (*System, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Topo.Nodes == 0 {
		opts.Topo = TopoConfig{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}
	}
	eng := sim.NewEngine(opts.Seed)
	var tc train.Config
	if opts.Train != nil {
		tc = *opts.Train
		tc.Topo = opts.Topo
	} else {
		profile := experiments.ComputeHeavy
		if opts.CommHeavy {
			profile = experiments.CommHeavy
		}
		tc = experiments.JobConfig(opts.Topo, profile)
	}
	job, err := train.New(eng, tc)
	if err != nil {
		return nil, err
	}
	sys := &System{Eng: eng, Job: job}
	sampled := core.SampleRanks(job.Cluster.DPGroups(), opts.Backend.MaxSampled)
	if len(sampled) == 0 {
		sampled = core.SampleWorld(job.Cluster.WorldSize(), opts.Backend.MaxSampled)
	}
	bk := core.NewBackend(eng, job.DB, sampled, opts.Backend)
	bk.OnTrigger = func(tr Trigger) {
		if sys.OnTrigger != nil {
			sys.OnTrigger(tr)
		}
	}
	bk.OnReport = func(r Report) {
		if sys.OnReport != nil {
			sys.OnReport(r)
		}
	}
	sys.Backend = bk
	return sys, nil
}

// MustNewSystem is NewSystem for known-good options.
func MustNewSystem(opts Options) *System {
	sys, err := NewSystem(opts)
	if err != nil {
		panic(err)
	}
	return sys
}

// Start launches the training job and the always-on backend.
func (s *System) Start() {
	if s.started {
		return
	}
	s.started = true
	s.Job.Start()
	s.Backend.Start()
}

// Run advances virtual time by d.
func (s *System) Run(d time.Duration) { s.Eng.RunFor(d) }

// Now returns the current virtual time from the start of the run.
func (s *System) Now() time.Duration { return time.Duration(s.Eng.Now()) }

// Inject schedules a fault.
func (s *System) Inject(f Fault) { faults.Inject(s.Job, f) }

// InjectPlan schedules a whole programmatic injection plan.
func (s *System) InjectPlan(p faults.Plan) { p.Inject(s.Job) }

// Recover schedules the undo of a recoverable fault (see faults.Recover).
func (s *System) Recover(f Fault) { faults.Recover(s.Job, f) }

// WorldSize returns the number of ranks in the simulated cluster.
func (s *System) WorldSize() int { return s.Job.Cluster.WorldSize() }

// RecordsIngested returns how many trace records have reached the cloud DB
// (the scenario runner's ingest metric).
func (s *System) RecordsIngested() uint64 { return s.Job.DB.Ingested() }

// Triggers returns every Algorithm 1 firing so far.
func (s *System) Triggers() []Trigger { return s.Backend.Triggers() }

// Reports returns every Algorithm 2 verdict so far.
func (s *System) Reports() []Report { return s.Backend.Reports() }

// Triage runs the Fig. 6 integration pipeline (py-spy → Flight Recorder →
// Mycroft) over the latest report and returns the combined verdict source,
// suspect rank and summary.
func (s *System) Triage() (source string, rank Rank, summary string, ok bool) {
	reps := s.Backend.Reports()
	if len(reps) == 0 {
		return "", -1, "", false
	}
	v := experiments.Triage(s.Job, reps[len(reps)-1], s.Eng.Now())
	return v.Source, v.Rank, v.Summary, true
}

// Stop halts the job and backend.
func (s *System) Stop() {
	s.Backend.Stop()
	s.Job.Stop()
}
