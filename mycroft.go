// Package mycroft is a from-scratch reproduction of "Mycroft: Tracing
// Dependencies in Collective Communication Towards Reliable LLM Training"
// (SOSP 2025): a lightweight distributed tracing and root-cause-analysis
// system for collective communication, together with the full substrate it
// runs on — an NCCL-like collective library, a simulated RDMA fabric and GPU
// fleet, a Megatron-style training-job driver, the trace pipeline, and the
// always-on analysis backend.
//
// Everything runs on a deterministic discrete-event engine, so failures
// reproduce bit-for-bit from a seed. The public API is the multi-tenant
// Service: N independent training jobs hosted on one engine, observed
// through typed subscriptions and a unified query layer over each job's
// sharded trace store:
//
//	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: 1})
//	job := svc.MustAddJob("llm-70b", mycroft.JobOptions{})
//	svc.Subscribe(mycroft.EventFilter{Kinds: []mycroft.EventKind{mycroft.EventReport}}).
//		Each(func(e mycroft.Event) { fmt.Println(e) })
//	svc.Start()
//	job.Inject(mycroft.Fault{Kind: mycroft.NICDown, Rank: 5, At: 15 * time.Second})
//	svc.Run(60 * time.Second)
//	res, _ := svc.QueryReports(mycroft.ReportQuery{Suspects: []mycroft.Rank{5}})
//
// Every report carries the causal chain the analysis walked (Report.Chain)
// and the suspect's blast radius (Report.Victims), both read from the
// per-job dependency graph maintained as records ingest; QueryDependencies
// and BlastRadius expose the live graph directly.
//
// AttachPolicy closes the loop: a RemedyPolicy maps verdicts to mitigation
// actions (recover-fault, isolate-rank, rebuild-communicator, restart-job,
// escalate) executed against the live job with per-rank backoff and
// flap-damping, each attempt verified by a quiet window and audited.
// Attempt transitions flow through subscriptions as EventAction events and
// QueryRemediations answers over the audit log.
//
// The single-job System with its OnTrigger/OnReport callbacks remains as a
// deprecated shim over a one-job Service.
//
// See README.md for the build, the CLI tools (including the declarative
// scenario runner, cmd/mycroft-scenario) and the scenario file format;
// bench_test.go regenerates every reproduced table and figure.
package mycroft

import (
	"time"

	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
	"mycroft/internal/train"
)

// Re-exported domain types, so downstream users need only this package.
type (
	// Rank is a global training rank.
	Rank = topo.Rank
	// Trigger is an Algorithm 1 firing.
	Trigger = core.Trigger
	// TriggerKind distinguishes failure from straggler triggers.
	TriggerKind = core.TriggerKind
	// Report is an Algorithm 2 root-cause verdict, carrying the causal
	// Chain and the Victims blast radius from the dependency graph.
	Report = core.Report
	// Hop is one step of a report's cross-communicator causal chain.
	Hop = core.Hop
	// Category is an RC-table failure category.
	Category = core.Category
	// Fault is an injectable fault specification.
	Fault = faults.Spec
	// FaultKind enumerates injectable faults.
	FaultKind = faults.Kind
	// TopoConfig sizes the simulated cluster.
	TopoConfig = topo.Config
	// TrainConfig tunes the simulated training job.
	TrainConfig = train.Config
	// BackendConfig tunes the analysis backend.
	BackendConfig = core.Config
	// TraceRecord is one raw Coll-level trace log line (Table 2).
	TraceRecord = trace.Record
	// RecordKind discriminates completion from state records.
	RecordKind = trace.Kind
)

// Trigger kinds (Algorithm 1's two outputs).
const (
	TriggerFailure   = core.TriggerFailure
	TriggerStraggler = core.TriggerStraggler
)

// Trace record kinds (§4.2).
const (
	RecordCompletion = trace.KindCompletion
	RecordState      = trace.KindState
)

// Fault kinds (the seven §7.1 classes plus the §6.2 integration faults).
const (
	NICDown         = faults.NICDown
	NICFlap         = faults.NICFlap
	LinkLoss        = faults.LinkLoss
	NICDegrade      = faults.NICDegrade
	GPUHang         = faults.GPUHang
	GPUSlow         = faults.GPUSlow
	PCIeDegrade     = faults.PCIeDegrade
	ProxyCrash      = faults.ProxyCrash
	Congestion      = faults.Congestion
	DataloaderStall = faults.DataloaderStall
	SyncMismatch    = faults.SyncMismatch
	ComputeHang     = faults.ComputeHang
	CheckpointStall = faults.CheckpointStall
)

// Root-cause categories.
const (
	CatNetworkSendPath  = core.CatNetworkSendPath
	CatNetworkDegrade   = core.CatNetworkDegrade
	CatGPUHang          = core.CatGPUHang
	CatPCIeDegrade      = core.CatPCIeDegrade
	CatComputeStraggler = core.CatComputeStraggler
	CatProxyCrash       = core.CatProxyCrash
	CatNotLaunched      = core.CatNotLaunched
	CatUnknown          = core.CatUnknown
)

// Options configures a System. The zero value is a runnable 8-GPU job.
//
// Deprecated: build a Service with ServiceOptions and JobOptions instead;
// Options remains for the single-job shim.
type Options struct {
	// Seed makes the run reproducible. Default 1.
	Seed int64
	// Topo sizes the cluster. Default: 2 nodes × 4 GPUs, TP=2 PP=2 DP=2.
	Topo TopoConfig
	// Train overrides the workload; leave zero to derive from Topo with
	// defaults. If both Train.Topo and Topo are set they must agree.
	Train *TrainConfig
	// Backend tunes the trigger/RCA thresholds (§9 heuristics).
	Backend BackendConfig
	// CommHeavy weights iterations toward communication.
	CommHeavy bool
}

// System is a fully wired single-job simulation: cluster, CCL, trace
// pipeline, training job and Mycroft backend on one virtual clock.
//
// Deprecated: System is a thin shim over a one-job Service. New code should
// use NewService/AddJob, Subscribe for observation, and the Query* layer
// for trace access.
type System struct {
	Eng     *sim.Engine
	Job     *train.Job
	Backend *core.Backend

	// OnTrigger and OnReport observe the backend live (set before Start).
	//
	// Deprecated: use Service.Subscribe with an EventFilter.
	OnTrigger func(Trigger)
	OnReport  func(Report)

	svc *Service
	h   *JobHandle
}

// NewSystem builds a System: a Service hosting exactly one job.
func NewSystem(opts Options) (*System, error) {
	svc := NewService(ServiceOptions{Seed: opts.Seed})
	h, err := svc.AddJob("job-0", JobOptions{
		Topo: opts.Topo, Train: opts.Train, Backend: opts.Backend, CommHeavy: opts.CommHeavy,
	})
	if err != nil {
		return nil, err
	}
	sys := &System{Eng: svc.Eng, Job: h.Job, Backend: h.Backend, svc: svc, h: h}
	svc.Subscribe(EventFilter{Kinds: []EventKind{EventTrigger, EventReport}}).Each(func(e Event) {
		switch e.Kind {
		case EventTrigger:
			if sys.OnTrigger != nil {
				sys.OnTrigger(*e.Trigger)
			}
		case EventReport:
			if sys.OnReport != nil {
				sys.OnReport(*e.Report)
			}
		}
	})
	return sys, nil
}

// MustNewSystem is NewSystem for known-good options.
func MustNewSystem(opts Options) *System {
	sys, err := NewSystem(opts)
	if err != nil {
		panic(err)
	}
	return sys
}

// Service returns the one-job Service backing the shim, for incremental
// migration to the subscription and query APIs.
func (s *System) Service() *Service { return s.svc }

// Start launches the training job and the always-on backend.
func (s *System) Start() { s.svc.Start() }

// Run advances virtual time by d.
func (s *System) Run(d time.Duration) { s.svc.Run(d) }

// Now returns the current virtual time from the start of the run.
func (s *System) Now() time.Duration { return s.svc.Now() }

// Inject schedules a fault.
func (s *System) Inject(f Fault) { s.h.Inject(f) }

// InjectPlan schedules a whole programmatic injection plan.
func (s *System) InjectPlan(p faults.Plan) { s.h.InjectPlan(p) }

// Recover schedules the undo of a recoverable fault (see faults.Recover).
func (s *System) Recover(f Fault) { s.h.Recover(f) }

// WorldSize returns the number of ranks in the simulated cluster.
func (s *System) WorldSize() int { return s.h.WorldSize() }

// RecordsIngested returns how many trace records have reached the cloud DB
// (the scenario runner's ingest metric).
func (s *System) RecordsIngested() uint64 { return s.h.RecordsIngested() }

// Triggers returns every Algorithm 1 firing so far.
func (s *System) Triggers() []Trigger { return s.h.Triggers() }

// Reports returns every Algorithm 2 verdict so far.
func (s *System) Reports() []Report { return s.h.Reports() }

// Triage runs the Fig. 6 integration pipeline (py-spy → Flight Recorder →
// Mycroft) over the latest report and returns the combined verdict source,
// suspect rank and summary.
func (s *System) Triage() (source string, rank Rank, summary string, ok bool) {
	return s.h.Triage()
}

// Stop halts the job and backend.
func (s *System) Stop() { s.svc.Stop() }
