package mycroft

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"mycroft/internal/clouddb"
	"mycroft/internal/otrace"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// runSpanRecordBench mirrors internal/otrace's BenchmarkSpanRecord so the
// emitter below can run it from here: one Begin+End pair into the ring —
// the exact work one traced pipeline hop adds. The budget is zero
// allocations per span.
func runSpanRecordBench(b *testing.B) {
	r := otrace.NewRecorder(otrace.DefaultCapacity, func() sim.Time { return 0 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.End(r.Begin("job", otrace.StageIngest, "", 0))
	}
}

// runIngestBench is the M4 ingest path, one 64-record batch per op, with or
// without the span tracer attached — the same shape as
// BenchmarkIngestInstrumented in bench_test.go, but with a retention
// horizon so the store reaches steady state and ns/op stops depending on
// how many iterations the harness happens to pick.
func runIngestBench(spanned bool) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine(1)
		db := clouddb.New(eng, 10*time.Millisecond)
		if spanned {
			db.SetTracer(otrace.NewTracer(otrace.NewRecorder(otrace.DefaultCapacity, eng.Now), "bench"))
		}
		batch := make([]trace.Record, 64)
		ts := sim.Time(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range batch {
				ts += 1000
				batch[j] = trace.Record{Kind: trace.KindState, Time: ts, Rank: topo.Rank(j % 8), CommID: 1, IP: "10.0.0.1"}
			}
			db.Ingest(batch)
		}
	}
}

// TestEmitObsBench regenerates BENCH_obs.json, the committed perf-trajectory
// artifact for the observability plane: span-record cost, the traced and
// bare ingest paths, and the tracer's attributed overhead on a batch
// (budget ≤5%). Overhead is attributed, not differenced: a traced batch
// adds exactly one Begin+End pair, so overhead_pct is the measured pair
// cost over the measured bare batch cost — differencing two separate
// wall-clock runs cannot resolve a sub-1% effect on shared hardware (the
// sign flips run to run). Guarded by env so a plain `go test` stays fast
// and deterministic:
//
//	MYCROFT_BENCH_OUT=BENCH_obs.json go test -run TestEmitObsBench .
func TestEmitObsBench(t *testing.T) {
	out := os.Getenv("MYCROFT_BENCH_OUT")
	if out == "" {
		t.Skip("set MYCROFT_BENCH_OUT to (re)write BENCH_obs.json")
	}
	pair := testing.Benchmark(runSpanRecordBench)
	bare := testing.Benchmark(runIngestBench(false))
	spanned := testing.Benchmark(runIngestBench(true))
	overhead := float64(pair.NsPerOp()) / float64(bare.NsPerOp()) * 100
	t.Logf("span pair %dns on a %dns bare batch: %.2f%% attributed overhead", pair.NsPerOp(), bare.NsPerOp(), overhead)

	spannedRow := toRow("BenchmarkIngestInstrumented/instrumented+spans", spanned)
	spannedRow.Extra = map[string]float64{"overhead_pct": math.Round(overhead*100) / 100}
	rows := []benchRow{
		toRow("BenchmarkSpanRecord", pair),
		toRow("BenchmarkIngestInstrumented/bare", bare),
		spannedRow,
	}
	data, err := json.MarshalIndent(struct {
		Benchmarks []benchRow `json:"benchmarks"`
	}{rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
