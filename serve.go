package mycroft

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"mycroft/internal/api"
	"mycroft/internal/obs"
)

// Server exposes any Client over the versioned /v1 wire protocol — the
// serving half of the transport-agnostic API. cmd/mycroft-serve wraps an
// in-process Service in one; tests mount Handler on an httptest server.
//
// All wire requests are serialized through one mutex, because the
// deterministic engine underneath is single-threaded; the only blocking
// call, a subscription long-poll, waits outside that mutex so it can never
// starve queries or the drive loop. Advance lets a daemon goroutine step
// virtual time under the same serialization.
type Server struct {
	mu  sync.Mutex
	c   Client
	svc *Service // non-nil when c is in-process, enabling Advance

	subs   map[string]*wireSub
	subSeq int

	// records maps hosted jobs to their incident recorders when RecordTo is
	// active; GET /v1/jobs/{id}/record serves snapshots from here.
	records map[JobID]*servedRecord

	// identity and started feed /v1/ping and /v1/health so clients can log
	// what they connected to.
	identity string
	started  time.Time

	// cluster is non-nil once EnableCluster ran: this daemon is one peer of
	// a sharded/replicated fleet (see cluster.go).
	cluster *serverCluster
}

// servedRecord is one job's live incident capture: the recorder plus the
// artifact file it streams to, kept open for snapshot reads.
type servedRecord struct {
	rec  *Recorder
	path string
	f    *os.File
}

// wireSub is one served subscription plus the wall-clock bookkeeping that
// lets the server reap it when its client disappears.
type wireSub struct {
	st       *Stream
	lastSeen time.Time
}

// subIdleTTL is how long a wire subscription may go unpolled before the
// server closes it. An SSE client polls every 500ms and a RemoteClient
// every second, so only a client that crashed (or forgot to DELETE) ever
// ages out; without the TTL every abandoned subscription would buffer and
// match events until daemon restart.
const subIdleTTL = 10 * time.Minute

// NewServer wraps a Client for HTTP exposure.
func NewServer(c Client) *Server {
	svc, _ := c.(*Service)
	sv := &Server{
		c: c, svc: svc, subs: make(map[string]*wireSub),
		records:  make(map[JobID]*servedRecord),
		identity: fmt.Sprintf("mycroft-serve/%d", api.Version), started: time.Now(),
	}
	if svc != nil {
		// The serving process stamps its identity and uptime on the service
		// registry (idempotent: re-wrapping the same Service replaces the
		// callbacks, so the newest server wins).
		reg := svc.Metrics()
		reg.GaugeFunc("mycroft_build_info", "Serving process identity; value is always 1.",
			func() float64 { return 1 },
			obs.L("server", sv.identity), obs.L("go", runtime.Version()))
		reg.GaugeFunc("mycroft_uptime_seconds", "Wall-clock seconds since the serving process started.",
			func() float64 { return time.Since(sv.started).Seconds() })
	}
	return sv
}

// RecordTo attaches an incident recorder to every hosted job, writing one
// artifact per job to <dir>/<job>.mycrec, and makes the live captures
// downloadable at GET /v1/jobs/{id}/record. Call before the first Advance so
// the artifacts replay byte-for-byte. Only an in-process Service can record;
// a proxy has no engine to observe.
func (sv *Server) RecordTo(dir string) error {
	if sv.svc == nil {
		return fmt.Errorf("mycroft: recording requires an in-process service")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	res, err := sv.svc.ListJobs()
	if err != nil {
		return err
	}
	for _, j := range res.Jobs {
		if _, dup := sv.records[j.ID]; dup {
			continue
		}
		path := filepath.Join(dir, string(j.ID)+".mycrec")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		rec, err := sv.svc.Record(j.ID, f)
		if err != nil {
			f.Close()
			return err
		}
		sv.records[j.ID] = &servedRecord{rec: rec, path: path, f: f}
	}
	return nil
}

// RecordPaths returns the artifact path for every recording job.
func (sv *Server) RecordPaths() map[JobID]string {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make(map[JobID]string, len(sv.records))
	for id, sr := range sv.records {
		out[id] = sr.path
	}
	return out
}

// CloseRecorders finalizes every live capture (footer, file close) and
// reports the first error. Safe to call with recording never enabled.
func (sv *Server) CloseRecorders() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	var first error
	for id, sr := range sv.records {
		if err := sr.rec.Close(); err != nil && first == nil {
			first = err
		}
		if err := sr.f.Close(); err != nil && first == nil {
			first = err
		}
		delete(sv.records, id)
	}
	return first
}

// reapIdleLocked closes subscriptions no one has polled within the TTL.
// Callers hold sv.mu; it runs on the subscription-management paths
// (Subscribe, Poll), so a daemon with no subscription traffic does no work.
func (sv *Server) reapIdleLocked(now time.Time) {
	for id, ws := range sv.subs {
		if now.Sub(ws.lastSeen) > subIdleTTL {
			ws.st.Close()
			delete(sv.subs, id)
		}
	}
}

// Handler mounts the /v1 endpoint set (see internal/api.NewHandler for the
// route table) plus, when the wrapped Client is an in-process Service,
// GET /metrics serving the service registry in Prometheus text format.
// Every /v1 route carries per-endpoint request/error/latency instruments
// registered on the same registry.
func (sv *Server) Handler() http.Handler {
	if sv.svc == nil {
		return api.NewHandler(&apiBackend{sv}) // a proxy has no registry to serve
	}
	reg := sv.svc.Metrics()
	mux := http.NewServeMux()
	mux.Handle(api.Prefix+"/", api.NewInstrumentedHandler(&apiBackend{sv}, reg))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Scrape under the server mutex: gauge callbacks read engine-owned
		// state (store occupancy, stream lists) that the drive loop mutates.
		sv.mu.Lock()
		defer sv.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	return mux
}

// Advance steps the wrapped Service's virtual time by d, serialized against
// in-flight wire requests. It reports false when the wrapped Client is not
// an in-process Service (a proxy has no clock to drive).
func (sv *Server) Advance(d time.Duration) bool {
	if sv.svc == nil {
		return false
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.svc.Run(d)
	if sv.cluster != nil {
		// Move everything this step dispatched into the per-job event logs
		// while still serialized, so tails and replication see a log exactly
		// as fresh as the engine.
		sv.cluster.drainTap()
	}
	return true
}

// AnnounceShutdown delivers a terminal lifecycle event (Phase
// PhaseServerShutdown) to every live wire subscription, so clients can
// distinguish a clean daemon shutdown from a crash. Call it before
// CloseSubscriptions — a closed stream no longer accepts deliveries. It
// returns how many subscriptions were notified.
func (sv *Server) AnnounceShutdown() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	e := Event{Kind: EventLifecycle, Phase: PhaseServerShutdown}
	if sv.svc != nil {
		e.At = sv.svc.Now()
	}
	for _, ws := range sv.subs {
		ws.st.deliver(e)
	}
	return len(sv.subs)
}

// CloseSubscriptions closes every live wire subscription (daemon shutdown)
// and reports how many were force-closed. The map entries stay: a final
// poll still drains buffered events (including AnnounceShutdown's terminal
// one) and then sees a clean Closed — only an ID the server has never
// issued (a restart wiped the map) reports Lost.
func (sv *Server) CloseSubscriptions() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	n := 0
	for _, ws := range sv.subs {
		if !ws.st.isClosed() {
			n++
		}
		ws.st.Close()
	}
	return n
}

// apiBackend adapts the Server to the wire-level api.Backend: every method
// converts the request down to domain types, calls the Client under the
// server mutex, and converts the result back up.
type apiBackend struct{ sv *Server }

func (b *apiBackend) Ping() (api.PingResponse, error) {
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.ListJobs()
	if err != nil {
		return api.PingResponse{}, err
	}
	return api.PingResponse{
		Version: api.Version, NowNs: int64(res.Now),
		Server: b.sv.identity, StartedUnixNs: b.sv.started.UnixNano(),
	}, nil
}

func (b *apiBackend) Health() (api.HealthResponse, error) {
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.Health()
	if err != nil {
		return api.HealthResponse{}, err
	}
	w := healthResultToWire(res)
	// The serving process, not the wrapped client, owns uptime and identity.
	w.UptimeMs = time.Since(b.sv.started).Milliseconds()
	w.Server = b.sv.identity
	if cl := b.sv.cluster; cl != nil {
		for _, id := range cl.store.Jobs() {
			if snap := cl.store.Job(id).Snapshot(); snap != nil && snap.Health.Job != "" {
				w.Jobs = append(w.Jobs, snap.Health)
			}
		}
	}
	return w, nil
}

func (b *apiBackend) ListJobs() (api.JobsResponse, error) {
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.ListJobs()
	if err != nil {
		return api.JobsResponse{}, err
	}
	w := jobsResultToWire(res)
	if cl := b.sv.cluster; cl != nil {
		// Followed jobs ride along from their latest replicated snapshot,
		// marked so clients can tell live from mirrored rows.
		for _, id := range cl.store.Jobs() {
			if snap := cl.store.Job(id).Snapshot(); snap != nil {
				ji := snap.Job
				ji.Source = "replica"
				w.Jobs = append(w.Jobs, ji)
			}
		}
	}
	return w, nil
}

func (b *apiBackend) QueryTrace(req api.TraceRequest) (api.TraceResponse, error) {
	if resp, ok := b.replicaTrace(req); ok {
		return resp, nil
	}
	q, err := traceQueryFromWire(req)
	if err != nil {
		return api.TraceResponse{}, err
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.QueryTrace(q)
	if err != nil {
		return api.TraceResponse{}, err
	}
	return traceResultToWire(res), nil
}

func (b *apiBackend) QueryTriggers(req api.TriggersRequest) (api.TriggersResponse, error) {
	if resp, ok := b.replicaTriggers(req); ok {
		return resp, nil
	}
	q, err := triggerQueryFromWire(req)
	if err != nil {
		return api.TriggersResponse{}, err
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.QueryTriggers(q)
	if err != nil {
		return api.TriggersResponse{}, err
	}
	return triggerResultToWire(res), nil
}

func (b *apiBackend) QueryReports(req api.ReportsRequest) (api.ReportsResponse, error) {
	if resp, ok := b.replicaReports(req); ok {
		return resp, nil
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.QueryReports(reportQueryFromWire(req))
	if err != nil {
		return api.ReportsResponse{}, err
	}
	return reportResultToWire(res), nil
}

func (b *apiBackend) QueryDependencies(req api.DependenciesRequest) (api.DependenciesResponse, error) {
	if err := b.sv.loadCluster().replicaGraphErr(req.Job); err != nil {
		return api.DependenciesResponse{}, err
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.QueryDependencies(dependencyQueryFromWire(req))
	if err != nil {
		return api.DependenciesResponse{}, err
	}
	return dependencyResultToWire(res), nil
}

func (b *apiBackend) BlastRadius(req api.BlastRadiusRequest) (api.BlastRadiusResponse, error) {
	if err := b.sv.loadCluster().replicaGraphErr(req.Job); err != nil {
		return api.BlastRadiusResponse{}, err
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	victims, err := b.sv.c.BlastRadius(JobID(req.Job), Rank(req.Suspect))
	if err != nil {
		return api.BlastRadiusResponse{}, err
	}
	return api.BlastRadiusResponse{Job: req.Job, Suspect: req.Suspect, Victims: ranksToInts(victims)}, nil
}

func (b *apiBackend) QueryRemediations(req api.RemediationsRequest) (api.RemediationsResponse, error) {
	if resp, ok := b.replicaRemediations(req); ok {
		return resp, nil
	}
	q, err := remediationQueryFromWire(req)
	if err != nil {
		return api.RemediationsResponse{}, err
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.QueryRemediations(q)
	if err != nil {
		return api.RemediationsResponse{}, err
	}
	return remediationResultToWire(res), nil
}

func (b *apiBackend) QuerySpans(req api.SpansRequest) (api.SpansResponse, error) {
	if resp, ok := b.replicaSpans(req); ok {
		return resp, nil
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.QuerySpans(SpanQuery{
		Job: JobID(req.Job), Incident: req.Incident, Stage: req.Stage,
		AfterID: SpanID(req.AfterID), MinWall: time.Duration(req.MinWallNs), Limit: req.Limit,
	})
	if err != nil {
		return api.SpansResponse{}, err
	}
	w := api.SpansResponse{Job: string(res.Job), Total: res.Total, Dropped: res.Dropped}
	for _, s := range res.Spans {
		w.Spans = append(w.Spans, api.FromSpan(s))
	}
	return w, nil
}

func (b *apiBackend) Triage(req api.TriageRequest) (api.TriageResponse, error) {
	if resp, ok := b.replicaTriage(req.Job); ok {
		return resp, nil
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.Triage(JobID(req.Job))
	if err != nil {
		return api.TriageResponse{}, err
	}
	return api.TriageResponse{Job: string(res.Job), Source: res.Source, Rank: int(res.Rank), Summary: res.Summary, OK: res.OK}, nil
}

func (b *apiBackend) IngestLogs(job string, req api.LogsRequest) (api.IngestChannelResponse, error) {
	lines := make([]LogLine, 0, len(req.Lines))
	for _, l := range req.Lines {
		lines = append(lines, LogLine{Rank: Rank(l.Rank), At: time.Duration(l.AtNs), Level: l.Level, Text: l.Text})
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.IngestLogs(JobID(job), lines)
	if err != nil {
		return api.IngestChannelResponse{}, err
	}
	return api.IngestChannelResponse{Job: string(res.Job), Accepted: res.Accepted, Anomalies: res.Anomalies}, nil
}

func (b *apiBackend) IngestTimings(job string, req api.TimingsRequest) (api.IngestChannelResponse, error) {
	samples := make([]IterationSample, 0, len(req.Samples))
	for _, s := range req.Samples {
		samples = append(samples, IterationSample{Rank: Rank(s.Rank), Iter: s.Iter, At: time.Duration(s.AtNs)})
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.IngestTimings(JobID(job), samples)
	if err != nil {
		return api.IngestChannelResponse{}, err
	}
	return api.IngestChannelResponse{Job: string(res.Job), Accepted: res.Accepted, Anomalies: res.Anomalies}, nil
}

func (b *apiBackend) Channels(job string) (api.ChannelsResponse, error) {
	if resp, ok := b.replicaChannels(job); ok {
		return resp, nil
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	res, err := b.sv.c.ChannelStats(JobID(job))
	if err != nil {
		return api.ChannelsResponse{}, err
	}
	return channelStatsToWire(res), nil
}

// defaultWireBuffer caps a wire subscription whose filter asks for an
// unbounded buffer. An in-process subscriber with Buffer 0 owns its own
// memory, but a remote one that stops polling (crashed client, abandoned
// SSE) would otherwise grow the daemon without bound; overflow is visible
// to the client as PollResponse.Dropped.
const defaultWireBuffer = 4096

func (b *apiBackend) Subscribe(req api.SubscribeRequest) (api.SubscribeResponse, error) {
	f, err := eventFilterFromWire(req.Filter)
	if err != nil {
		return api.SubscribeResponse{}, err
	}
	if f.Buffer <= 0 {
		f.Buffer = defaultWireBuffer
	}
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	b.sv.reapIdleLocked(time.Now())
	st := b.sv.c.Subscribe(f)
	if err := st.Err(); err != nil {
		return api.SubscribeResponse{}, err
	}
	b.sv.subSeq++
	id := fmt.Sprintf("sub-%d", b.sv.subSeq)
	b.sv.subs[id] = &wireSub{st: st, lastSeen: time.Now()}
	return api.SubscribeResponse{ID: id}, nil
}

// Poll long-polls one subscription. Only the stream lookup holds the server
// mutex; the bounded wait parks on the stream itself so the drive loop (and
// every other request) keeps running while this handler blocks.
func (b *apiBackend) Poll(req api.PollRequest) (api.PollResponse, error) {
	b.sv.mu.Lock()
	b.sv.reapIdleLocked(time.Now())
	ws := b.sv.subs[req.ID]
	var st *Stream
	if ws != nil {
		ws.lastSeen = time.Now()
		st = ws.st
	}
	b.sv.mu.Unlock()
	if st == nil {
		// An ID this server never issued (or already reaped): the
		// subscription is gone for good — most often a daemon restart wiped
		// it. Lost tells the client to surface ErrSubscriptionLost instead
		// of treating this like a clean close.
		return api.PollResponse{Closed: true, Lost: true}, nil
	}
	max := req.Max
	if max <= 0 {
		max = 256
	}
	timeout := time.Duration(req.TimeoutMs) * time.Millisecond
	if timeout > 30*time.Second {
		timeout = 30 * time.Second
	}
	var events []api.Event
	if timeout > 0 {
		if e, ok := st.NextWait(timeout); ok {
			events = append(events, eventToWire(e))
		}
	}
	for len(events) < max {
		e, ok := st.Next()
		if !ok {
			break
		}
		events = append(events, eventToWire(e))
	}
	return api.PollResponse{Events: events, Dropped: st.Dropped(), Closed: st.isClosed() && len(events) == 0}, nil
}

// Record streams the job's current artifact snapshot: the recorder's buffer
// is flushed (so the file is a valid, footer-less capture as of now) and the
// file copied out. Runs entirely under the server mutex — the drive loop is
// parked, so the snapshot is consistent to an exact virtual instant.
func (b *apiBackend) Record(job string, w io.Writer) error {
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	sr := b.sv.records[JobID(job)]
	if sr == nil {
		return fmt.Errorf("mycroft: recording not enabled for job %q", job)
	}
	if err := sr.rec.Sync(); err != nil {
		return err
	}
	f, err := os.Open(sr.path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}

func (b *apiBackend) Unsubscribe(id string) error {
	b.sv.mu.Lock()
	defer b.sv.mu.Unlock()
	if ws := b.sv.subs[id]; ws != nil {
		ws.st.Close()
		delete(b.sv.subs, id)
	}
	return nil
}
