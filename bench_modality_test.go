package mycroft

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/logdiag"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// runLogIngestBench mirrors internal/logdiag's BenchmarkLogIngest so the
// emitter below can run it from here: one tokenized line folded into the
// template index — the per-line cost of the log channel's hot path.
func runLogIngestBench(b *testing.B) {
	d := logdiag.New(32, logdiag.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Ingest(logdiag.Line{
			Rank: topo.Rank(i % 32), At: sim.Time(i) * sim.Time(time.Millisecond),
			Level: "info", Text: "iteration 1234 done in 2.5s loss 0.25",
		})
	}
}

// runTemplateClusterBench mirrors internal/logdiag's BenchmarkTemplateCluster:
// the tokenize-and-mask step alone, over a representative line mix.
func runTemplateClusterBench(b *testing.B) {
	lines := []string{
		"iteration 1234 done in 2.5s loss 0.25",
		"NIC rnic5 down: send queue stalled wr=17",
		"GPU gpu3 xid 79 fallen off the bus",
		"checkpoint shard 12 written in 1.2s",
		"allreduce comm 7 seq 42 launched",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = logdiag.TemplateID(logdiag.TemplateOf(lines[i%len(lines)]))
	}
}

// runFusionBench mirrors internal/core's BenchmarkFusion: one Observe plus
// one Finalize per op — the extra work evidence fusion adds to every
// delivered verdict.
func runFusionBench(b *testing.B) {
	f := core.NewFusion(core.FusionConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sim.Time(time.Duration(i) * time.Millisecond)
		f.Observe(core.Evidence{Channel: core.ModalityLog, Rank: 5, Category: core.CatNetworkSendPath, At: at})
		rep := core.Report{Suspect: 5, Category: core.CatNetworkSendPath, AnalyzedAt: at}
		f.Finalize(&rep, core.Evidence{Channel: core.ModalityTracepoint, Rank: 5, Category: core.CatNetworkSendPath, At: at}, at)
	}
}

// TestEmitModalityBench regenerates BENCH_modality.json, the committed
// perf-trajectory artifact for the multi-modal diagnosis channels: log-line
// ingest, template clustering and evidence fusion. Guarded by env so a
// plain `go test` stays fast and deterministic:
//
//	MYCROFT_BENCH_OUT=BENCH_modality.json go test -run TestEmitModalityBench .
func TestEmitModalityBench(t *testing.T) {
	out := os.Getenv("MYCROFT_BENCH_OUT")
	if out == "" {
		t.Skip("set MYCROFT_BENCH_OUT to (re)write BENCH_modality.json")
	}
	rows := []benchRow{
		toRow("BenchmarkLogIngest", testing.Benchmark(runLogIngestBench)),
		toRow("BenchmarkTemplateCluster", testing.Benchmark(runTemplateClusterBench)),
		toRow("BenchmarkFusion", testing.Benchmark(runFusionBench)),
	}
	data, err := json.MarshalIndent(struct {
		Benchmarks []benchRow `json:"benchmarks"`
	}{rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
