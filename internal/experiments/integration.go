package experiments

import (
	"fmt"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/pystack"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// Verdict is the outcome of the Fig. 6 triage pipeline: which reliability
// system named the root cause, and what it said.
type Verdict struct {
	Source  string // "py-spy" | "flight-recorder" | "mycroft"
	Rank    topo.Rank
	Summary string
}

// Triage reproduces the §6.2 integration: on a trigger, dump py-spy stacks
// first (dataloader/checkpoint stalls), then the Flight Recorder rings
// (synchronization bugs), and only then let the Coll-level verdict stand —
// bounding the problematic layer before blaming the CCL.
func Triage(job *train.Job, rep core.Report, now sim.Time) Verdict {
	analysis := pystack.Analyze(job.PyStack.Dump())
	if stuck := analysis.StuckInDataPath(); len(stuck) > 0 {
		return Verdict{
			Source: "py-spy", Rank: stuck[0].Rank,
			Summary: fmt.Sprintf("rank %d stuck in %s since %v", stuck[0].Rank, stuck[0].Frame, stuck[0].Since),
		}
	}
	for _, f := range job.FlightRec.Analyze(now, 5*time.Second) {
		if f.Kind == "skipped-launch" && len(f.Ranks) > 0 {
			return Verdict{
				Source: "flight-recorder", Rank: f.Ranks[0],
				Summary: fmt.Sprintf("rank %d skipped a collective on comm %d: %s", f.Ranks[0], f.CommID, f.Details),
			}
		}
	}
	// Cross-check: Mycroft concluded "rank never launched the op", but if
	// the Flight Recorder shows the rank DID launch it, the layer between
	// the framework and the wire — the proxy — is dead.
	if rep.Category == core.CatNotLaunched && rep.Suspect >= 0 {
		last := job.FlightRec.LastOpPerRank(rep.CommID)
		var peerMax uint64
		for r, s := range last {
			if r != rep.Suspect && s > peerMax {
				peerMax = s
			}
		}
		if s, ok := last[rep.Suspect]; ok && s >= peerMax && peerMax > 0 {
			return Verdict{
				Source: "mycroft", Rank: rep.Suspect,
				Summary: fmt.Sprintf("rank %d launched op seq %d but its proxy produced no trace — proxy crash", rep.Suspect, s),
			}
		}
	}
	return Verdict{
		Source: "mycroft", Rank: rep.Suspect,
		Summary: rep.String(),
	}
}

// E9Result reproduces the integration scenarios: which subsystem resolves
// each failure mode.
type E9Result struct {
	Rows [][]string
}

// RunE9 executes the three §6.2 triage scenarios.
func RunE9(seed int64) E9Result {
	var res E9Result
	cases := []struct {
		name       string
		kind       faults.Kind
		rank       topo.Rank
		wantSource string
	}{
		{"dataloader stall", faults.DataloaderStall, 2, "py-spy"},
		{"sync mismatch (skipped collective)", faults.SyncMismatch, 3, "flight-recorder"},
		{"NIC failure (CCL-internal)", faults.NICDown, 5, "mycroft"},
	}
	for i, cs := range cases {
		eng := sim.NewEngine(seed + int64(i))
		job := train.MustNew(eng, JobConfig(SmallTestbed(), ComputeHeavy))
		bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{})
		job.Start()
		bk.Start()
		warm := 15 * time.Second
		faults.Inject(job, faults.Spec{Kind: cs.kind, Rank: cs.rank, At: warm})
		eng.RunFor(warm + 40*time.Second)

		source, rank := "-", topo.Rank(-1)
		if reps := bk.Reports(); len(reps) > 0 {
			v := Triage(job, reps[0], eng.Now())
			source, rank = v.Source, v.Rank
		}
		res.Rows = append(res.Rows, []string{
			cs.name, source, fmt.Sprintf("%d", rank),
			yn(source == cs.wantSource && rank == cs.rank),
		})
		job.Stop()
	}
	return res
}

// Table renders the triage outcomes.
func (r E9Result) Table() string {
	return "integration triage (Fig. 6) — which reliability system names the root cause\n" +
		Table([]string{"scenario", "resolved-by", "rank", "correct"}, r.Rows)
}
