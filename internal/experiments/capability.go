package experiments

import (
	"time"

	"mycroft/internal/baseline"
	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// E1 reproduces Table 1: the capability matrix of tracing designs. It has
// two parts: the static capability rows, and a dynamic demonstration — for
// each fault class and each tracer design, can the design's own data detect
// the anomaly and localize the faulty rank?
type E1Result struct {
	Static  [][]string
	Dynamic [][]string
}

// CapabilityCase is one (design, fault) outcome of the dynamic part.
type CapabilityCase struct {
	Design    baseline.Kind
	Fault     faults.Kind
	Detected  bool
	Localized bool
}

// RunE1 executes the capability matrix experiment.
func RunE1(seed int64) E1Result {
	var res E1Result
	for _, k := range []baseline.Kind{baseline.OpLevel, baseline.KernelLevel, baseline.RDMALevel, baseline.Coll} {
		c := baseline.Caps(k)
		res.Static = append(res.Static, []string{
			string(k), mark(c.RDMAObservability), mark(c.GPUObservability),
			mark(c.GrayFailure), mark(c.PerformanceIssues), mark(c.Distributed), mark(c.RealTime),
		})
	}

	// Dynamic part: NIC-down and GPU-hang (the two gray-failure archetypes
	// with different faulty layers) under each design.
	cases := []struct {
		kind faults.Kind
		rank int
	}{
		{faults.NICDown, 5},
		{faults.GPUHang, 2},
	}
	for _, cs := range cases {
		for _, design := range []baseline.Kind{baseline.OpLevel, baseline.KernelLevel, baseline.RDMALevel, baseline.Coll} {
			out := runCapabilityCase(seed, design, cs.kind, cs.rank)
			res.Dynamic = append(res.Dynamic, []string{
				string(cs.kind), string(design), yn(out.Detected), yn(out.Localized),
			})
		}
	}
	return res
}

// runCapabilityCase runs one fault under one tracer design and asks the
// design's own data for a verdict.
func runCapabilityCase(seed int64, design baseline.Kind, fk faults.Kind, rank int) CapabilityCase {
	out := CapabilityCase{Design: design, Fault: fk}
	eng := sim.NewEngine(seed)
	cfg := JobConfig(SmallTestbed(), ComputeHeavy)
	var tracer *baseline.Tracer
	var bk *core.Backend

	if design != baseline.Coll {
		cfg.DisableTracing = true
		tracer = baseline.New(design, eng.Now)
		tracer.Wire(&cfg.CCL)
	}
	job := train.MustNew(eng, cfg)
	if design == baseline.Coll {
		bk = core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{})
		bk.Start()
	}
	job.Start()
	warmup := 15 * time.Second
	faults.Inject(job, faults.Spec{Kind: fk, Rank: topo.Rank(rank), At: warmup})
	eng.RunFor(warmup + 30*time.Second)
	now := eng.Now()

	timeout := 5 * time.Second
	switch design {
	case baseline.Coll:
		if trs := bk.Triggers(); len(trs) > 0 {
			out.Detected = true
		}
		if reps := bk.Reports(); len(reps) > 0 && reps[0].Suspect == topo.Rank(rank) {
			out.Localized = true
		}
	case baseline.OpLevel:
		// Op-level data: completions only. The stall shows up as global
		// silence; there is no per-flow state to attribute it with, so
		// localization means "the rank whose ops ceased first" — but every
		// rank's completions cease within one iteration of each other, so
		// the earliest-silent rank is arbitrary.
		out.Detected = tracer.Detected(now, timeout)
		stalled := tracer.StalledRanks(now, timeout)
		out.Localized = len(stalled) > 0 && stalled[0] == topo.Rank(rank)
	case baseline.KernelLevel, baseline.RDMALevel:
		out.Detected = tracer.Detected(now, timeout)
		suspects := tracer.Suspects(now, timeout)
		out.Localized = len(suspects) > 0 && suspects[0] == topo.Rank(rank)
	}
	job.Stop()
	return out
}

// Table renders both parts of E1.
func (r E1Result) Table() string {
	s := "Table 1 — static capabilities (v = has capability)\n"
	s += Table([]string{"tracer", "rdma-vis", "gpu-vis", "gray-failure", "perf-issues", "distributed", "real-time"}, r.Static)
	s += "\nTable 1 (dynamic) — detect & localize under injected gray failures\n"
	s += Table([]string{"fault", "tracer", "detected", "localized-rank"}, r.Dynamic)
	return s
}
