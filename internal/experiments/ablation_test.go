package experiments

import (
	"strings"
	"testing"
)

func TestAblationUploadLatencyShape(t *testing.T) {
	r := RunAblationUploadLatency(1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Every sub-window upload latency must detect the fault, at a positive
	// latency (no pre-fault false triggers), demonstrating the window-drain
	// dominance finding.
	for _, row := range r.Rows {
		if row[1] == "-" {
			t.Fatalf("setting %q failed to detect: %v", row[0], row)
		}
		if strings.HasPrefix(row[1], "-") {
			t.Fatalf("setting %q triggered before the fault: %v", row[0], row)
		}
	}
	if !strings.Contains(r.Table(), "upload latency") {
		t.Fatal("table broken")
	}
}

func TestAblationStatePeriodShape(t *testing.T) {
	r := RunAblationStatePeriod(1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Volume must be monotone decreasing with the period.
	var rates []string
	for _, row := range r.Rows {
		rates = append(rates, row[1])
	}
	if rates[0] <= rates[3] && rates[0] == rates[3] {
		t.Fatalf("volume did not decrease with period: %v", rates)
	}
}

func TestAblationChannelsShape(t *testing.T) {
	r := RunAblationChannels(1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[1] == "0s" || row[1] == "-" {
			t.Fatalf("channel setting %q did not complete: %v", row[0], row)
		}
	}
}

func TestAblationChunkSizeShape(t *testing.T) {
	r := RunAblationChunkSize(1)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Smaller chunks must produce more chunk events (finer observability).
	if r.Rows[0][2] <= r.Rows[2][2] && len(r.Rows[0][2]) <= len(r.Rows[2][2]) {
		t.Fatalf("event counts not decreasing with chunk size: %v", r.Rows)
	}
}
