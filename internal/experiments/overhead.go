package experiments

import (
	"fmt"
	"time"

	"mycroft/internal/baseline"
	"mycroft/internal/sim"
	"mycroft/internal/train"
)

// E4Result reproduces the overhead comparison: training iteration time and
// DP bus bandwidth under each tracing design (§2.3/§7.2: NPKit-style
// kernel tracing costs ~2/3 of bus bandwidth; Mycroft is ~free).
type E4Result struct {
	Rows       [][]string
	BusBW      map[baseline.Kind]float64
	IterTime   map[baseline.Kind]time.Duration
	TraceBytes map[baseline.Kind]uint64
}

// RunE4 measures a comm-heavy job under every design.
func RunE4(seed int64) E4Result {
	res := E4Result{
		BusBW:      make(map[baseline.Kind]float64),
		IterTime:   make(map[baseline.Kind]time.Duration),
		TraceBytes: make(map[baseline.Kind]uint64),
	}
	designs := []baseline.Kind{baseline.None, baseline.Coll, baseline.OpLevel, baseline.RDMALevel, baseline.KernelLevel}
	var baseBW float64
	var baseIter time.Duration
	for _, d := range designs {
		bw, iter, bytes := runOverheadJob(seed, d, 60*time.Second)
		res.BusBW[d] = bw
		res.IterTime[d] = iter
		res.TraceBytes[d] = bytes
		if d == baseline.None {
			baseBW, baseIter = bw, iter
		}
		bwLoss := "-"
		slowdown := "-"
		if d != baseline.None && baseBW > 0 {
			bwLoss = fmt.Sprintf("%.0f%%", 100*(1-bw/baseBW))
			slowdown = fmt.Sprintf("%.1f%%", 100*(float64(iter)/float64(baseIter)-1))
		}
		res.Rows = append(res.Rows, []string{
			string(d), gbps(bw), bwLoss, iter.Round(time.Millisecond).String(), slowdown,
		})
	}
	return res
}

func runOverheadJob(seed int64, d baseline.Kind, dur time.Duration) (busBW float64, iter time.Duration, traceBytes uint64) {
	eng := sim.NewEngine(seed)
	cfg := JobConfig(Testbed(), CommHeavy)
	var tracer *baseline.Tracer
	switch d {
	case baseline.Coll:
		// Mycroft's tracepoints are asynchronous shared-memory writes; their
		// real CPU cost is measured by the M-benchmarks and is off the
		// simulated critical path.
	case baseline.None:
		cfg.DisableTracing = true
	default:
		cfg.DisableTracing = true
		tracer = baseline.New(d, eng.Now)
		tracer.Wire(&cfg.CCL)
	}
	job := train.MustNew(eng, cfg)
	job.Start()
	eng.RunFor(dur)
	bw, _ := job.DPBusBandwidth()
	it, _ := job.MeanIterationTime(job.IterationsDone())
	var bytes uint64
	if tracer != nil {
		bytes = tracer.BytesTraced()
	} else if d == baseline.Coll {
		bytes = job.DB.BytesIngested()
	}
	job.Stop()
	return bw, it, bytes
}

// Table renders the overhead comparison.
func (r E4Result) Table() string {
	return "overhead comparison — comm-heavy job on the 32-GPU testbed\n" +
		Table([]string{"tracer", "dp-bus-bw", "bw-loss", "iteration", "slowdown"}, r.Rows)
}

// E6Result reproduces the data-volume accounting of §6.1: trace bytes per
// GPU per second under Mycroft vs. kernel-level tracing, extrapolated to a
// 10,000-GPU job per day (paper: ~3 TB/day for Mycroft's design point).
type E6Result struct {
	Rows           [][]string
	MycroftPerGPU  float64 // bytes/GPU/s
	KernelPerGPU   float64
	Mycroft10kTBpd float64
}

// RunE6 measures steady-state trace volume.
func RunE6(seed int64) E6Result {
	var res E6Result
	horizon := 60 * time.Second

	eng := sim.NewEngine(seed)
	cfg := JobConfig(Testbed(), CommHeavy)
	job := train.MustNew(eng, cfg)
	job.Start()
	eng.RunFor(horizon)
	world := float64(job.Cluster.WorldSize())
	res.MycroftPerGPU = float64(job.DB.BytesIngested()) / world / horizon.Seconds()
	job.Stop()

	eng2 := sim.NewEngine(seed)
	cfg2 := JobConfig(Testbed(), CommHeavy)
	cfg2.DisableTracing = true
	kt := baseline.New(baseline.KernelLevel, eng2.Now)
	kt.SetOverhead(0) // measure volume at equal speed, cost shown in E4
	kt.Wire(&cfg2.CCL)
	job2 := train.MustNew(eng2, cfg2)
	job2.Start()
	eng2.RunFor(horizon)
	res.KernelPerGPU = float64(kt.BytesTraced()) / world / horizon.Seconds()
	job2.Stop()

	toTBDay := func(perGPU float64) float64 { return perGPU * 10000 * 86400 / 1e12 }
	res.Mycroft10kTBpd = toTBDay(res.MycroftPerGPU)
	res.Rows = [][]string{
		{"mycroft (coll-level)", fmt.Sprintf("%.1f KB/s", res.MycroftPerGPU/1e3), fmt.Sprintf("%.2f TB/day", toTBDay(res.MycroftPerGPU))},
		{"kernel-level", fmt.Sprintf("%.1f KB/s", res.KernelPerGPU/1e3), fmt.Sprintf("%.2f TB/day", toTBDay(res.KernelPerGPU))},
	}
	return res
}

// Table renders the volume comparison.
func (r E6Result) Table() string {
	return "trace data volume — per GPU and extrapolated to a 10k-GPU job\n" +
		Table([]string{"tracer", "per-GPU rate", "10k-GPU volume"}, r.Rows)
}
