package experiments

import (
	"fmt"
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/gpusim"
	"mycroft/internal/rdma"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// E5Result reproduces the anomaly-propagation measurement (§4.1, §7.2):
// after a single NIC fails mid-all-reduce, how long until every rank's
// pipeline has stalled, as a function of cluster size. The paper observes
// cluster-wide propagation within a few hundred milliseconds.
type E5Result struct {
	Rows        [][]string
	Propagation map[int]time.Duration
}

// RunE5 measures propagation for each world size (one GPU per node: the
// worst case where every hop crosses the network).
func RunE5(sizes []int) E5Result {
	res := E5Result{Propagation: make(map[int]time.Duration)}
	for _, world := range sizes {
		p := propagationTime(world)
		res.Propagation[world] = p
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", world), p.Round(time.Millisecond).String(),
		})
	}
	return res
}

func propagationTime(world int) time.Duration {
	eng := sim.NewEngine(1)
	infos := make([]ccl.RankInfo, world)
	nics := make([]*rdma.NIC, world)
	for r := 0; r < world; r++ {
		nics[r] = rdma.NewNIC(eng, rdma.NICID(r), fmt.Sprintf("nic%d", r), rdma.DefaultNIC())
		infos[r] = ccl.RankInfo{
			Rank: topo.Rank(r), IP: topo.IP(fmt.Sprintf("10.0.%d.%d", r/256, r%256)),
			Node: topo.NodeID(r),
			GPU:  gpusim.New(eng, gpusim.ID(r), gpusim.DefaultGPU()),
			NIC:  nics[r],
		}
	}
	comm := ccl.NewCommunicator(eng, 1, infos, ccl.Config{Channels: 1, ChunkBytes: 4 << 20})
	defer comm.Close()

	// A large all-reduce so the pipeline is in steady state when the fault
	// lands: 64 MiB per ring segment keeps every rank sending for
	// ~2.5 ms × (R−1), well past the fault instant at any size.
	op := comm.AllReduce(int64(world)*64<<20, nil)
	warm := 5 * time.Millisecond
	faultAt := sim.Time(warm)
	eng.At(faultAt, func() { nics[world/3].SetDown(true) })
	eng.RunFor(warm + 10*time.Second)

	// Every rank's last pipeline progress timestamp; the propagation time is
	// when the last one froze.
	var lastStall sim.Time
	for r := 0; r < world; r++ {
		for _, cs := range op.Snapshot(topo.Rank(r)) {
			if cs.LastProgress > lastStall {
				lastStall = cs.LastProgress
			}
		}
	}
	if lastStall < faultAt {
		return 0 // stalled before the fault?! (should not happen)
	}
	return lastStall.Sub(faultAt)
}

// Table renders the propagation results.
func (r E5Result) Table() string {
	return "anomaly propagation — single NIC failure to cluster-wide stall\n" +
		Table([]string{"ranks", "propagation"}, r.Rows)
}
