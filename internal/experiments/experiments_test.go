package experiments

import (
	"strings"
	"testing"
	"time"

	"mycroft/internal/baseline"
	"mycroft/internal/faults"
)

func TestTableFormatting(t *testing.T) {
	s := Table([]string{"a", "long-header"}, [][]string{{"xxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table = %q", s)
	}
	if !strings.HasPrefix(lines[0], "a    long-header") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestHelpers(t *testing.T) {
	if dur(0) != "-" || dur(1500*time.Millisecond) != "1.5s" {
		t.Fatal("dur helper wrong")
	}
	if yn(true) != "yes" || mark(false) != "x" {
		t.Fatal("yn/mark wrong")
	}
	if gbps(50e9) != "50.0 GB/s" {
		t.Fatalf("gbps = %q", gbps(50e9))
	}
}

func TestRunCaseNICDown(t *testing.T) {
	c := RunCase(1, SmallTestbed(), faults.Spec{Kind: faults.NICDown, Rank: 5}, 15*time.Second, 40*time.Second)
	if !c.Detected || !c.RCADone {
		t.Fatalf("case = %+v", c)
	}
	if !c.SuspectOK || !c.CategoryOK {
		t.Fatalf("verdict wrong: %+v report=%v", c, c.Report)
	}
	if c.DetectLatency <= 0 || c.DetectLatency > 15*time.Second {
		t.Fatalf("detect latency = %v", c.DetectLatency)
	}
	if c.RCALatency < c.DetectLatency {
		t.Fatalf("RCA before detection: %v < %v", c.RCALatency, c.DetectLatency)
	}
}

func TestE1Capability(t *testing.T) {
	r := RunE1(1)
	if len(r.Static) != 4 || len(r.Dynamic) != 8 {
		t.Fatalf("shape = %d static, %d dynamic", len(r.Static), len(r.Dynamic))
	}
	// Mycroft must detect and localize both faults; op-level neither
	// localizes.
	for _, row := range r.Dynamic {
		design, detected, localized := row[1], row[2], row[3]
		if design == string(baseline.Coll) && (detected != "yes" || localized != "yes") {
			t.Fatalf("mycroft row = %v", row)
		}
		if design == string(baseline.OpLevel) && localized == "yes" {
			t.Fatalf("op-level localized: %v", row)
		}
	}
	if !strings.Contains(r.Table(), "Table 1") {
		t.Fatal("table render broken")
	}
}

func TestE1KernelVsRDMAAsymmetry(t *testing.T) {
	r := RunE1(1)
	// Kernel-level (GPU events only) should localize the GPU hang; the
	// RDMA-level tracer should localize the NIC fault. The matrix must show
	// at least one localization from each partial design to demonstrate the
	// complementary blind spots.
	byKey := map[string]string{}
	for _, row := range r.Dynamic {
		byKey[row[0]+"/"+row[1]] = row[3]
	}
	if byKey[string(faults.GPUHang)+"/"+string(baseline.KernelLevel)] != "yes" {
		t.Fatalf("kernel tracer missed GPU hang: %v", byKey)
	}
	if byKey[string(faults.NICDown)+"/"+string(baseline.RDMALevel)] != "yes" {
		t.Fatalf("rdma tracer missed NIC down: %v", byKey)
	}
}

func TestE2SmallCampaign(t *testing.T) {
	r := RunE2(1)
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[1] != "1/1" {
			t.Fatalf("fault %s not detected: %v", row[0], row)
		}
		if row[3] != "1/1" {
			t.Fatalf("fault %s not localized: %v", row[0], row)
		}
	}
	if !strings.Contains(r.Table(), "fault injection") {
		t.Fatal("table broken")
	}
}

func TestE3CampaignMeetsPaperShape(t *testing.T) {
	r := RunE3(14) // two per fault class
	if r.Misses != 0 {
		t.Fatalf("%d/%d undetected", r.Misses, r.Runs)
	}
	if got := r.Detect.FractionBelow(15); got < 0.9 {
		t.Fatalf("detection <15s fraction = %.2f, want ≥0.9 (paper: 90%%)", got)
	}
	if got := r.RCA.FractionBelow(20); got < 0.6 {
		t.Fatalf("RCA <20s fraction = %.2f, want ≥0.6 (paper: 60%%)", got)
	}
	if !strings.Contains(r.Table(), "CDF") {
		t.Fatal("table broken")
	}
}

func TestE4OverheadShape(t *testing.T) {
	r := RunE4(1)
	base := r.BusBW[baseline.None]
	if base <= 0 {
		t.Fatal("no baseline bandwidth")
	}
	// Mycroft within a few percent of no-tracing.
	if r.BusBW[baseline.Coll] < 0.97*base {
		t.Fatalf("mycroft bw %.3g vs base %.3g", r.BusBW[baseline.Coll], base)
	}
	// Kernel-level loses roughly two thirds (accept 50–85%).
	loss := 1 - r.BusBW[baseline.KernelLevel]/base
	if loss < 0.5 || loss > 0.85 {
		t.Fatalf("kernel-level bw loss = %.2f, want ≈2/3", loss)
	}
	if !strings.Contains(r.Table(), "overhead") {
		t.Fatal("table broken")
	}
}

func TestE5PropagationShape(t *testing.T) {
	r := RunE5([]int{8, 32})
	p8, p32 := r.Propagation[8], r.Propagation[32]
	if p8 <= 0 || p32 <= 0 {
		t.Fatalf("propagation = %v / %v", p8, p32)
	}
	// Cluster-wide within a second (paper: a few hundred ms), growing with
	// scale.
	if p32 > time.Second {
		t.Fatalf("32-rank propagation = %v, want sub-second", p32)
	}
	if p32 < p8 {
		t.Fatalf("propagation shrank with scale: %v < %v", p32, p8)
	}
}

func TestE6VolumeShape(t *testing.T) {
	r := RunE6(1)
	if r.MycroftPerGPU <= 0 || r.KernelPerGPU <= 0 {
		t.Fatal("no volume measured")
	}
	// Mycroft's design point is single-digit TB/day at 10k GPUs; the
	// kernel-level firehose is at least an order of magnitude above it.
	if r.Mycroft10kTBpd > 10 {
		t.Fatalf("mycroft volume = %.1f TB/day, want single digits", r.Mycroft10kTBpd)
	}
	if r.KernelPerGPU < 5*r.MycroftPerGPU {
		t.Fatalf("kernel %.0f B/s not ≫ mycroft %.0f B/s", r.KernelPerGPU, r.MycroftPerGPU)
	}
}

func TestE7SamplingEquivalence(t *testing.T) {
	r := RunE7(1)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[2] == "-" {
			t.Fatalf("policy %q failed to detect: %v", row[0], row)
		}
		if row[3] != "yes" {
			t.Fatalf("policy %q failed to localize: %v", row[0], row)
		}
	}
}

func TestE8ThresholdTradeoff(t *testing.T) {
	r := RunE8(1)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The 1s (paper default) row must detect the true straggler with the
	// correct verdict and at most as many false positives as the tight row.
	var tight, def []string
	for _, row := range r.Rows {
		switch row[0] {
		case "200ms":
			tight = row
		case "1s":
			def = row
		}
	}
	if def == nil || tight == nil {
		t.Fatalf("rows missing: %v", r.Rows)
	}
	if def[2] != "yes" || def[3] != "yes" {
		t.Fatalf("1s threshold failed on true straggler: %v", def)
	}
	if tight[1] < def[1] {
		t.Fatalf("tight threshold has fewer false positives than default: %v vs %v", tight, def)
	}
}

func TestE9TriageRouting(t *testing.T) {
	r := RunE9(1)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[3] != "yes" {
			t.Fatalf("triage scenario %q misrouted: %v", row[0], row)
		}
	}
}
