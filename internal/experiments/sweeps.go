package experiments

import (
	"fmt"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// E7Result reproduces the sampling design argument (§4.3): because
// anomalies cascade cluster-wide, a handful of sampled ranks detect as well
// as sampling everyone.
type E7Result struct {
	Rows [][]string
}

// RunE7 compares sampling policies on the same NIC-down scenario.
func RunE7(seed int64) E7Result {
	var res E7Result
	policies := []struct {
		name   string
		sample func(j *train.Job) []topo.Rank
	}{
		{"1 rank", func(j *train.Job) []topo.Rank { return []topo.Rank{0} }},
		{"1 per DP group (<=10)", func(j *train.Job) []topo.Rank { return core.SampleRanks(j.Cluster.DPGroups(), 10) }},
		{"every rank", func(j *train.Job) []topo.Rank {
			var all []topo.Rank
			for r := 0; r < j.Cluster.WorldSize(); r++ {
				all = append(all, topo.Rank(r))
			}
			return all
		}},
	}
	for _, p := range policies {
		eng := sim.NewEngine(seed)
		job := train.MustNew(eng, JobConfig(Testbed(), ComputeHeavy))
		sampled := p.sample(job)
		// The 32-rank testbed's iteration is ~8 s, so the trigger window
		// must exceed it to avoid counting normal gaps as stalls.
		bk := core.NewBackend(eng, job.DB, sampled, core.Config{Window: 15 * time.Second})
		job.Start()
		bk.Start()
		warm := 15 * time.Second
		faults.Inject(job, faults.Spec{Kind: faults.NICDown, Rank: 17, At: warm})
		eng.RunFor(warm + 40*time.Second)
		detect := "-"
		localized := "no"
		if trs := bk.Triggers(); len(trs) > 0 {
			detect = trs[0].At.Sub(sim.Time(warm)).Round(100 * time.Millisecond).String()
		}
		if reps := bk.Reports(); len(reps) > 0 && reps[0].Suspect == 17 {
			localized = "yes"
		}
		res.Rows = append(res.Rows, []string{p.name, fmt.Sprintf("%d", len(sampled)), detect, localized})
		job.Stop()
	}
	return res
}

// Table renders the sampling sweep.
func (r E7Result) Table() string {
	return "sampling policy — NIC-down detection vs. number of monitored ranks\n" +
		Table([]string{"policy", "sampled", "detection", "localized"}, r.Rows)
}

// E8Result reproduces the threshold-tuning discussion (§9): straggler
// thresholds versus false positives on a legitimately-imbalanced job (heavy
// master rank) and missed detections on a true straggler.
type E8Result struct {
	Rows [][]string
}

// RunE8 sweeps the late-start threshold.
func RunE8(seed int64) E8Result {
	var res E8Result
	for _, late := range []time.Duration{200 * time.Millisecond, time.Second, 5 * time.Second} {
		fp := e8FalsePositives(seed, late)
		detected, correct := e8TrueStraggler(seed, late)
		res.Rows = append(res.Rows, []string{
			late.String(), fmt.Sprintf("%d", fp), yn(detected), yn(correct),
		})
	}
	return res
}

// e8FalsePositives runs a healthy master-heavy job and counts triggers that
// produce a (spurious) straggler verdict.
func e8FalsePositives(seed int64, late time.Duration) int {
	eng := sim.NewEngine(seed)
	cfg := JobConfig(SmallTestbed(), ComputeHeavy)
	cfg.MasterExtra = 600 * time.Millisecond
	job := train.MustNew(eng, cfg)
	bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{
		StragglerLate: late,
		// Aggressive detection settings so threshold effects show.
		ThroughputDrop: 0.85, IntervalGrow: 1.2, BadWindows: 2, RearmDelay: 10 * time.Second,
	})
	job.Start()
	bk.Start()
	eng.RunFor(90 * time.Second)
	fp := 0
	for _, rep := range bk.Reports() {
		if rep.Suspect >= 0 && rep.Category == core.CatComputeStraggler {
			fp++
		}
	}
	job.Stop()
	return fp
}

// e8TrueStraggler injects a genuine GPU straggler and checks the verdict.
func e8TrueStraggler(seed int64, late time.Duration) (detected, correct bool) {
	c := func() CaseResult {
		eng := sim.NewEngine(seed + 7)
		job := train.MustNew(eng, JobConfig(SmallTestbed(), ComputeHeavy))
		bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{StragglerLate: late})
		job.Start()
		bk.Start()
		warm := 15 * time.Second
		faults.Inject(job, faults.Spec{Kind: faults.GPUSlow, Rank: 1, Severity: 6, At: warm})
		eng.RunFor(warm + 60*time.Second)
		var out CaseResult
		if trs := bk.Triggers(); len(trs) > 0 {
			out.Detected = true
		}
		if reps := bk.Reports(); len(reps) > 0 {
			out.Report = reps[0]
			out.SuspectOK = reps[0].Suspect == 1
			out.CategoryOK = reps[0].Category == core.CatComputeStraggler
		}
		job.Stop()
		return out
	}()
	return c.Detected, c.SuspectOK && c.CategoryOK
}

// Table renders the threshold sweep.
func (r E8Result) Table() string {
	return "straggler threshold sweep — false positives (master-heavy job) vs. detection of a 6x GPU straggler\n" +
		Table([]string{"late-threshold", "false-positives", "straggler-detected", "verdict-correct"}, r.Rows)
}
