// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulated substrate. Each experiment returns a
// structured result with a Table() renderer; cmd/mycroft-bench prints them
// and bench_test.go wraps them in testing.B benchmarks (one E-benchmark per
// reproduced table/figure — run `go test -bench . -benchtime 1x -v` for the
// paper-vs-measured record).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"mycroft/internal/collector"
	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// Testbed mirrors the paper's 32-GPU evaluation cluster: 4 nodes × 8 A100s,
// TP=2, PP=4, DP=4.
func Testbed() topo.Config {
	return topo.Config{Nodes: 4, GPUsPerNode: 8, TP: 2, PP: 4, DP: 4}
}

// SmallTestbed is the 8-GPU shape used where many runs are needed.
func SmallTestbed() topo.Config {
	return topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}
}

// JobProfile selects the workload mix.
type JobProfile int

const (
	// ComputeHeavy: iteration dominated by compute (failure-class faults).
	ComputeHeavy JobProfile = iota
	// CommHeavy: iteration dominated by collective time (degradation-class
	// faults, bandwidth experiments).
	CommHeavy
)

// JobConfig builds a train.Config for a topology and profile.
func JobConfig(tc topo.Config, profile JobProfile) train.Config {
	cfg := train.Config{
		Topo:            tc,
		LayersPerStage:  2,
		TPBytesPerLayer: 32 << 20,
		PPBytes:         16 << 20,
		Collector:       collector.Config{DrainPeriod: 50 * time.Millisecond, UploadLatency: 500 * time.Millisecond},
	}
	switch profile {
	case CommHeavy:
		cfg.ComputePerLayer = 100 * time.Millisecond
		cfg.DPBytes = 1 << 30
	default:
		cfg.ComputePerLayer = 300 * time.Millisecond
		cfg.DPBytes = 256 << 20
	}
	return cfg
}

// ProfileFor picks the workload mix a fault class needs to be measurable.
// The scenario engine shares this tuning so declarative runs match the
// campaigns.
func ProfileFor(k faults.Kind) JobProfile {
	switch k {
	case faults.NICDegrade, faults.PCIeDegrade:
		return CommHeavy
	default:
		return ComputeHeavy
	}
}

// SeverityFor returns the per-kind default severity used by the campaigns
// (tuned so every class is detectable on the small testbed). Zero means
// "use the faults package default".
func SeverityFor(k faults.Kind) float64 {
	switch k {
	case faults.NICDegrade:
		return 0.01
	case faults.PCIeDegrade:
		return 0.001
	case faults.GPUSlow:
		return 6
	default:
		return 0
	}
}

// CaseResult is the outcome of one fault-injection run.
type CaseResult struct {
	Spec          faults.Spec
	Detected      bool
	DetectLatency time.Duration
	RCADone       bool
	RCALatency    time.Duration
	Trigger       core.Trigger
	Report        core.Report
	SuspectOK     bool
	CategoryOK    bool
}

// RunCase executes one fault-injection scenario on a fresh job and backend.
// warmup is the healthy period before injection; deadline bounds how long
// after injection we wait for a verdict. The canonical NIC-down case is
// also available declaratively as the "nic-down" builtin of
// internal/scenario, which shares this harness's ProfileFor/SeverityFor
// tuning.
func RunCase(seed int64, tc topo.Config, spec faults.Spec, warmup, deadline time.Duration) CaseResult {
	eng := sim.NewEngine(seed)
	job := train.MustNew(eng, JobConfig(tc, ProfileFor(spec.Kind)))
	bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{})
	job.Start()
	bk.Start()
	if spec.Severity == 0 {
		spec.Severity = SeverityFor(spec.Kind)
	}
	spec.At = warmup
	faults.Inject(job, spec)
	faultAt := sim.Time(warmup)
	eng.RunFor(warmup + deadline)

	res := CaseResult{Spec: spec}
	if trs := bk.Triggers(); len(trs) > 0 {
		res.Detected = true
		res.Trigger = trs[0]
		res.DetectLatency = trs[0].At.Sub(faultAt)
	}
	if reps := bk.Reports(); len(reps) > 0 {
		res.RCADone = true
		res.Report = reps[0]
		res.RCALatency = reps[0].AnalyzedAt.Sub(faultAt)
		exp := faults.Expect(spec.Kind)
		res.SuspectOK = !exp.LocalizeRank || reps[0].Suspect == spec.Rank
		res.CategoryOK = exp.CategoryOK(reps[0].Category)
	}
	job.Stop()
	return res
}

// Table renders rows with aligned columns.
func Table(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func dur(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(10 * time.Millisecond).String()
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func mark(b bool) string {
	if b {
		return "v"
	}
	return "x"
}

func gbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f GB/s", bytesPerSec/1e9)
}
