package experiments

import (
	"fmt"
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/gpusim"
	"mycroft/internal/rdma"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// AblationResult holds one sweep's table.
type AblationResult struct {
	Title string
	Head  []string
	Rows  [][]string
}

// Table renders the sweep.
func (r AblationResult) Table() string { return r.Title + "\n" + Table(r.Head, r.Rows) }

// RunAblationUploadLatency sweeps the trace pipeline's upload latency against
// end-to-end detection latency. Finding: detection is governed by the
// Δ-window drain plus the trigger period and is INSENSITIVE to upload
// latency while the latency stays below the window — the window query is
// over emission timestamps, so late-arriving records only matter at the
// window's trailing edge. Pipeline lag approaching the Δ window breaks the
// naive windowed query (fresh records are not yet visible), so Δ must be
// provisioned above the worst-case ingest lag — the reason the production
// system invests in its Kafka/cache layer.
func RunAblationUploadLatency(seed int64) AblationResult {
	res := AblationResult{
		Title: "ablation — trace upload latency vs. detection latency (NIC-down, Δ = 5 s)",
		Head:  []string{"upload-latency", "detection", "rca"},
	}
	for _, lat := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second, 3 * time.Second} {
		eng := sim.NewEngine(seed)
		cfg := JobConfig(SmallTestbed(), ComputeHeavy)
		cfg.Collector.UploadLatency = lat
		job := train.MustNew(eng, cfg)
		bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{})
		job.Start()
		bk.Start()
		warm := 15 * time.Second
		faults.Inject(job, faults.Spec{Kind: faults.NICDown, Rank: 5, At: warm})
		eng.RunFor(warm + 40*time.Second)
		detect, rca := "-", "-"
		if trs := bk.Triggers(); len(trs) > 0 {
			detect = trs[0].At.Sub(sim.Time(warm)).Round(100 * time.Millisecond).String()
		}
		if reps := bk.Reports(); len(reps) > 0 {
			rca = reps[0].AnalyzedAt.Sub(sim.Time(warm)).Round(100 * time.Millisecond).String()
		}
		res.Rows = append(res.Rows, []string{lat.String(), detect, rca})
		job.Stop()
	}
	return res
}

// RunAblationStatePeriod sweeps the real-time state log period against trace
// volume: the 100 ms default buys flow-level resolution at ~2 KB/s/GPU; a
// 1 s period cuts volume ~10× but coarsens stuck-time resolution.
func RunAblationStatePeriod(seed int64) AblationResult {
	res := AblationResult{
		Title: "ablation — state-log period vs. trace volume (healthy comm-heavy job, 60 s)",
		Head:  []string{"period", "per-GPU rate", "records"},
	}
	for _, period := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond, time.Second} {
		eng := sim.NewEngine(seed)
		cfg := JobConfig(SmallTestbed(), CommHeavy)
		cfg.CCL.StateLogPeriod = period
		job := train.MustNew(eng, cfg)
		job.Start()
		horizon := 60 * time.Second
		eng.RunFor(horizon)
		world := float64(job.Cluster.WorldSize())
		rate := float64(job.DB.BytesIngested()) / world / horizon.Seconds()
		res.Rows = append(res.Rows, []string{
			period.String(), fmt.Sprintf("%.2f KB/s", rate/1e3), fmt.Sprintf("%d", job.DB.Ingested()),
		})
		job.Stop()
	}
	return res
}

// RunAblationChannels sweeps the channel count on a fixed all-reduce: more
// flows raise achievable bandwidth (more NICs engaged per node) and multiply
// state-log volume, the §3.2 trade-off.
func RunAblationChannels(seed int64) AblationResult {
	res := AblationResult{
		Title: "ablation — channels vs. all-reduce completion (8 ranks, 2 nodes, 256 MiB)",
		Head:  []string{"channels", "completion", "algo-bw"},
	}
	for _, ch := range []int{1, 2, 4, 8} {
		eng := sim.NewEngine(seed)
		infos := make([]ccl.RankInfo, 8)
		for r := 0; r < 8; r++ {
			infos[r] = ccl.RankInfo{
				Rank: topo.Rank(r), IP: "10.0.0.1", Node: topo.NodeID(r / 4),
				GPU: gpusim.New(eng, gpusim.ID(r), gpusim.DefaultGPU()),
				NIC: rdma.NewNIC(eng, rdma.NICID(r), "n", rdma.DefaultNIC()),
			}
		}
		comm := ccl.NewCommunicator(eng, 1, infos, ccl.Config{Channels: ch})
		var done sim.Time
		comm.AllReduce(256<<20, func(ts sim.Time) { done = ts })
		eng.RunFor(30 * time.Second)
		comm.Close()
		bw := "-"
		if done > 0 {
			bw = gbps(float64(256<<20) / done.Seconds())
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", ch), time.Duration(done).Round(100 * time.Microsecond).String(), bw,
		})
	}
	return res
}

// RunAblationChunkSize sweeps the pipeline chunk size: small chunks give
// finer counter resolution and smoother pipelining but more per-WR overhead;
// large chunks amortize overhead but coarsen observability.
func RunAblationChunkSize(seed int64) AblationResult {
	res := AblationResult{
		Title: "ablation — chunk size vs. all-reduce completion (4 ranks, cross-node, 256 MiB)",
		Head:  []string{"chunk", "completion", "chunk-events/rank"},
	}
	for _, chunk := range []int64{1 << 20, 4 << 20, 16 << 20} {
		eng := sim.NewEngine(seed)
		infos := make([]ccl.RankInfo, 4)
		for r := 0; r < 4; r++ {
			infos[r] = ccl.RankInfo{
				Rank: topo.Rank(r), IP: "10.0.0.1", Node: topo.NodeID(r),
				GPU: gpusim.New(eng, gpusim.ID(r), gpusim.DefaultGPU()),
				NIC: rdma.NewNIC(eng, rdma.NICID(r), "n", rdma.DefaultNIC()),
			}
		}
		events := 0
		comm := ccl.NewCommunicator(eng, 1, infos, ccl.Config{
			Channels: 1, ChunkBytes: chunk,
			OnChunkEvent: func(r topo.Rank, st ccl.ChunkStage, _ int64) {
				if r == 0 && st == ccl.StageGPUReady {
					events++
				}
			},
		})
		var done sim.Time
		comm.AllReduce(256<<20, func(ts sim.Time) { done = ts })
		eng.RunFor(30 * time.Second)
		comm.Close()
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d MiB", chunk>>20),
			time.Duration(done).Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%d", events),
		})
	}
	return res
}
