package experiments

import (
	"fmt"
	"time"

	"mycroft/internal/faults"
	"mycroft/internal/stats"
	"mycroft/internal/topo"
)

// E2Result reproduces the §7.1 fault-injection table: per fault class,
// detection and localization outcomes across trials.
type E2Result struct {
	Rows  [][]string
	Cases []CaseResult
}

// RunE2 injects each of the seven core fault classes at several ranks and
// scores Mycroft's verdicts.
func RunE2(trials int) E2Result {
	var res E2Result
	world := SmallTestbed().Nodes * SmallTestbed().GPUsPerNode
	for _, kind := range faults.CoreSeven() {
		var detected, suspectOK, categoryOK int
		var dLat, rLat stats.Sample
		for tr := 0; tr < trials; tr++ {
			rank := topo.Rank((3 + 2*tr) % world)
			c := RunCase(int64(100+tr), SmallTestbed(), faults.Spec{Kind: kind, Rank: rank}, 15*time.Second, 60*time.Second)
			res.Cases = append(res.Cases, c)
			if c.Detected {
				detected++
				dLat.Add(c.DetectLatency.Seconds())
			}
			if c.RCADone {
				rLat.Add(c.RCALatency.Seconds())
				if c.SuspectOK {
					suspectOK++
				}
				if c.CategoryOK {
					categoryOK++
				}
			}
		}
		res.Rows = append(res.Rows, []string{
			string(kind),
			fmt.Sprintf("%d/%d", detected, trials),
			fmt.Sprintf("%.1fs", dLat.Quantile(0.5)),
			fmt.Sprintf("%d/%d", suspectOK, trials),
			fmt.Sprintf("%d/%d", categoryOK, trials),
			fmt.Sprintf("%.1fs", rLat.Quantile(0.5)),
		})
	}
	return res
}

// Table renders the injection results.
func (r E2Result) Table() string {
	return "§7.1 fault injection — detection and localization per fault class\n" +
		Table([]string{"fault", "detected", "median-detect", "rank-correct", "category-correct", "median-rca"}, r.Rows)
}

// E3Result reproduces the production-scale claim: CDFs of detection and RCA
// latency across a randomized campaign ("15 s detection in 90% of cases,
// root cause within 20 s in 60%").
type E3Result struct {
	Detect stats.Sample
	RCA    stats.Sample
	Runs   int
	Misses int
}

// RunE3 runs a randomized campaign of runs fault injections across all core
// classes and ranks.
func RunE3(runs int) E3Result {
	var res E3Result
	kinds := faults.CoreSeven()
	world := SmallTestbed().Nodes * SmallTestbed().GPUsPerNode
	for i := 0; i < runs; i++ {
		kind := kinds[i%len(kinds)]
		rank := topo.Rank((1 + 3*i) % world)
		c := RunCase(int64(1000+i), SmallTestbed(), faults.Spec{Kind: kind, Rank: rank}, 15*time.Second, 90*time.Second)
		res.Runs++
		if !c.Detected {
			res.Misses++
			continue
		}
		res.Detect.Add(c.DetectLatency.Seconds())
		if c.RCADone {
			res.RCA.Add(c.RCALatency.Seconds())
		}
	}
	return res
}

// Table renders the CDF summary.
func (r E3Result) Table() string {
	rows := [][]string{
		{"detection", fmt.Sprintf("%.1fs", r.Detect.Quantile(0.5)), fmt.Sprintf("%.1fs", r.Detect.Quantile(0.9)),
			fmt.Sprintf("%.0f%%", 100*r.Detect.FractionBelow(15)), fmt.Sprintf("%.0f%%", 100*r.Detect.FractionBelow(20))},
		{"root cause", fmt.Sprintf("%.1fs", r.RCA.Quantile(0.5)), fmt.Sprintf("%.1fs", r.RCA.Quantile(0.9)),
			fmt.Sprintf("%.0f%%", 100*r.RCA.FractionBelow(15)), fmt.Sprintf("%.0f%%", 100*r.RCA.FractionBelow(20))},
	}
	s := fmt.Sprintf("production-style campaign — %d runs, %d undetected\n", r.Runs, r.Misses)
	s += Table([]string{"latency", "P50", "P90", "<15s", "<20s"}, rows)
	s += "\ndetection CDF:\n"
	for _, p := range r.Detect.CDF(10) {
		s += fmt.Sprintf("  P%02.0f  %6.2fs\n", p.P*100, p.X)
	}
	return s
}
