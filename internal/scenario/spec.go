// Package scenario is the declarative fault-scenario engine: a Spec names a
// cluster (or a generated fleet of clusters), a timed event list of fault
// injections and operational changes, and assertions over the triggers and
// verdicts Mycroft produces. The runner executes a Spec on the existing
// mycroft.System deterministic engine and emits a structured pass/fail
// Result, so stress campaigns reproduce bit-for-bit from a seed.
//
// Specs are plain data: they round-trip through JSON (cmd/mycroft-scenario
// loads them from files) and a built-in library in library.go covers every
// fault kind plus multi-fault, flapping, large-topology and fleet-chaos
// variants.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/remedy"
	"mycroft/internal/topo"
)

// Dur is a time.Duration that marshals as a human-readable string ("15s")
// and unmarshals from either a string or a nanosecond count.
type Dur time.Duration

// D converts to the standard duration type.
func (d Dur) D() time.Duration { return time.Duration(d) }

func (d Dur) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as its String form.
func (d Dur) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(time.Duration(d).String())), nil
}

// UnmarshalJSON accepts "15s" strings or raw nanosecond numbers.
func (d *Dur) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		s, err := strconv.Unquote(string(b))
		if err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Dur(v)
		return nil
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("scenario: bad duration %s", b)
	}
	*d = Dur(n)
	return nil
}

// Topo sizes one simulated cluster in the scenario file format.
type Topo struct {
	Nodes       int `json:"nodes"`
	GPUsPerNode int `json:"gpus_per_node"`
	TP          int `json:"tp"`
	PP          int `json:"pp"`
	DP          int `json:"dp"`
}

// Config converts to the topo package's config.
func (t Topo) Config() topo.Config {
	return topo.Config{Nodes: t.Nodes, GPUsPerNode: t.GPUsPerNode, TP: t.TP, PP: t.PP, DP: t.DP}
}

// IsZero reports whether the shape is unset (the runner substitutes the
// default 2×4 testbed).
func (t Topo) IsZero() bool { return t == Topo{} }

func (t Topo) String() string {
	return fmt.Sprintf("%d×%d tp=%d pp=%d dp=%d", t.Nodes, t.GPUsPerNode, t.TP, t.PP, t.DP)
}

// DefaultTopo is the 8-GPU testbed shape used when a spec leaves the
// topology unset.
var DefaultTopo = Topo{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}

// Fleet declares the job(s) a scenario runs: either one explicit cluster or
// a generated fleet of weighted templates.
type Fleet struct {
	// Topo shapes the single job (ignored when Gen is set). Zero takes
	// DefaultTopo.
	Topo Topo `json:"topo,omitempty"`
	// CommHeavy weights iterations toward communication (degradation-class
	// faults need it to be measurable).
	CommHeavy bool `json:"comm_heavy,omitempty"`
	// CheckpointEvery enables the checkpoint phase every N iterations
	// (required for checkpoint-stall faults).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// UploadLatency overrides the collector pipeline latency.
	UploadLatency Dur `json:"upload_latency,omitempty"`
	// Window overrides the backend's Algorithm 1 look-back Δ. Large
	// topologies with long iterations need it wider than the 5 s default,
	// or warm-up cadence reads as failure.
	Window Dur `json:"window,omitempty"`
	// MaxSampled overrides the backend's sampled-rank cap (§4.3).
	MaxSampled int `json:"max_sampled,omitempty"`
	// Rearm overrides the backend's post-trigger mute delay. Self-healing
	// scenarios tighten it so a failed mitigation is re-detected (and the
	// verify window can stay short).
	Rearm Dur `json:"rearm,omitempty"`
	// NoTracing disables the Mycroft tracepoints on every fleet member: the
	// job emits zero trace records and the tracepoint channel is blind, so
	// only the log/perf diagnosis channels (the logs:/timings: stanzas) can
	// reach a verdict.
	NoTracing bool `json:"no_tracing,omitempty"`
	// Gen generates a fleet instead of a single job.
	Gen *FleetGen `json:"gen,omitempty"`
	// SharedEngine hosts every fleet member on one mycroft.Service (one
	// virtual clock, one event interleaving) instead of running members
	// sequentially on independent engines. This is the multi-tenant
	// production shape: faults on one job must not trigger another.
	SharedEngine bool `json:"shared_engine,omitempty"`
}

// FleetGen generates Jobs clusters by weighted sampling over Templates.
type FleetGen struct {
	Jobs      int        `json:"jobs"`
	Templates []Template `json:"templates"`
}

// Template is one weighted cluster shape in a generated fleet.
type Template struct {
	Name      string `json:"name"`
	Weight    int    `json:"weight"`
	Topo      Topo   `json:"topo"`
	CommHeavy bool   `json:"comm_heavy,omitempty"`
}

// Action is what a timed event does.
type Action string

const (
	// ActInject applies a fault at the event time.
	ActInject Action = "inject"
	// ActRecover undoes a recoverable fault at the event time.
	ActRecover Action = "recover"
	// ActBackendStop halts trigger evaluation (analysis-service maintenance
	// window).
	ActBackendStop Action = "backend-stop"
	// ActBackendStart re-arms trigger evaluation after a stop.
	ActBackendStart Action = "backend-start"
	// ActCollectorStop kills the job's collector agents (the ring keeps
	// overwriting; loss is counted).
	ActCollectorStop Action = "collector-stop"
)

// Fault parameterizes an inject/recover event.
type Fault struct {
	Kind     faults.Kind `json:"kind"`
	Rank     int         `json:"rank"`
	Severity float64     `json:"severity,omitempty"`
	Duration Dur         `json:"duration,omitempty"`
}

// spec converts to the faults package's injection spec at time at.
func (f Fault) spec(at Dur) faults.Spec {
	return faults.Spec{
		Kind: f.Kind, Rank: topo.Rank(f.Rank), At: at.D(),
		Severity: f.Severity, Duration: f.Duration.D(),
	}
}

// Event is one timed entry in the scenario's schedule.
type Event struct {
	At     Dur    `json:"at"`
	Action Action `json:"action"`
	// Job selects the fleet member the event applies to; -1 applies it to
	// every job. Default 0.
	Job   int    `json:"job,omitempty"`
	Fault *Fault `json:"fault,omitempty"`
}

// Logs is one scheduled batch of synthetic training-log lines fed into a
// job's log diagnosis channel: Count repetitions spaced Every apart,
// starting at At, on one rank or the whole fleet. It is how a scenario
// scripts the tracepoint-free signal (driver complaints, fleet-wide phase
// chatter) the logdiag channel clusters and scores.
type Logs struct {
	// Job selects the fleet member the lines feed; -1 feeds every job.
	// Default 0.
	Job int `json:"job,omitempty"`
	// At is when the first batch lands.
	At Dur `json:"at"`
	// Rank is the emitting rank; -1 emits the line on every rank (phase
	// chatter the divergence score must not convict).
	Rank int `json:"rank"`
	// Level is "info", "warn" or "error" (default info).
	Level string `json:"level,omitempty"`
	Text  string `json:"text"`
	// Count repeats the batch (default 1), Every apart (default 1 s).
	Count int `json:"count,omitempty"`
	Every Dur `json:"every,omitempty"`
}

// Timings is one scheduled synthetic iteration-timestamp feed into a job's
// black-box perf channel: every rank completes Count iterations on a fixed
// Period cadence starting at Start, except Rank, which from iteration After
// on takes Factor times longer per iteration — the silent straggler whose
// collectives all still complete.
type Timings struct {
	// Job selects the fleet member the samples feed; -1 feeds every job.
	// Default 0.
	Job int `json:"job,omitempty"`
	// Start is when the feed's clock begins; the first completions land one
	// Period later.
	Start Dur `json:"start"`
	// Period is the healthy per-iteration duration.
	Period Dur `json:"period"`
	// Count is how many iterations the feed covers.
	Count int `json:"count"`
	// Rank straggles when Factor > 1: from iteration After on, its period is
	// multiplied by Factor. With Factor 0 the feed is uniformly healthy and
	// Rank/After are ignored.
	Rank   int     `json:"rank,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	After  int     `json:"after,omitempty"`
}

// RemedyRule is the file-format form of one remediation-policy rule.
type RemedyRule struct {
	Name       string            `json:"name,omitempty"`
	Categories []core.Category   `json:"categories,omitempty"`
	Vias       []core.Via        `json:"vias,omitempty"`
	MinChain   int               `json:"min_chain,omitempty"`
	Action     remedy.ActionKind `json:"action"`
	// MaxAttempts is the per-rank failed-attempt budget before escalation.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Backoff is the minimum gap between attempts on one rank.
	Backoff Dur `json:"backoff,omitempty"`
	// VerifyWindow is the quiet window that marks an attempt succeeded. It
	// must outlast the backend re-arm delay (see Fleet.Rearm) or a failed
	// mitigation can never be observed.
	VerifyWindow Dur `json:"verify_window,omitempty"`
}

// Remediate attaches a remediation policy to fleet member(s): the verdicts
// Mycroft produces are matched against Rules and the matched actions are
// executed, verified and audited during the run.
type Remediate struct {
	// Job selects the fleet member the policy attaches to; -1 attaches it to
	// every job. Default 0.
	Job int `json:"job,omitempty"`
	// Name labels the policy in the audit log.
	Name  string       `json:"name,omitempty"`
	Rules []RemedyRule `json:"rules"`
}

// policy converts to the remedy package's policy.
func (r Remediate) policy() remedy.Policy {
	p := remedy.Policy{Name: r.Name}
	for _, rr := range r.Rules {
		p.Rules = append(p.Rules, remedy.Rule{
			Name: rr.Name, Categories: rr.Categories, Vias: rr.Vias, MinChain: rr.MinChain,
			Action: rr.Action, MaxAttempts: rr.MaxAttempts,
			Backoff: rr.Backoff.D(), VerifyWindow: rr.VerifyWindow.D(),
		})
	}
	return p
}

// AssertKind enumerates the checks a scenario can declare.
type AssertKind string

const (
	// AssertDetected: a trigger fires at/after injection [Event] (within the
	// optional bound).
	AssertDetected AssertKind = "detected"
	// AssertDiagnosed: a report matches faults.Expect for injection [Event]:
	// acceptable category, and the suspect rank when the fault localizes.
	AssertDiagnosed AssertKind = "diagnosed"
	// AssertCategory: some report's category is in Categories.
	AssertCategory AssertKind = "category"
	// AssertSuspect: some report names Rank as the suspect.
	AssertSuspect AssertKind = "suspect"
	// AssertNoFalseTrigger: no trigger fires before the first injection (or
	// at all, in a fault-free scenario).
	AssertNoFalseTrigger AssertKind = "no-false-trigger"
	// AssertMinReports: at least Min verdicts were produced.
	AssertMinReports AssertKind = "min-reports"
	// AssertMinRecords: at least Min trace records reached the cloud DB.
	AssertMinRecords AssertKind = "min-records"
	// AssertMinIterations: the job completed at least Min iterations.
	AssertMinIterations AssertKind = "min-iterations"
	// AssertChain: some report's causal chain has at least Min hops — the
	// cross-communicator cascade was traced, not collapsed to its terminal
	// suspect.
	AssertChain AssertKind = "expect_chain"
	// AssertVictims: some single report's blast radius has at least Min
	// ranks and contains every rank in Victims.
	AssertVictims AssertKind = "expect_victims"
	// AssertRemediation: the job's audit log holds at least Min attempts
	// (default 1) matching the optional Action/Outcomes predicates and the
	// Rank (exact; -1 = any rank) — or, with None, no matching attempt at
	// all (policy-isolation checks).
	AssertRemediation AssertKind = "expect_remediation"
	// AssertRecovered: the loop closed for Rank (exact; -1 = any rank) —
	// some audit-log attempt on it succeeded, and the suspect was never
	// re-detected (no trigger on the rank, no report naming it) after that
	// attempt's verification.
	AssertRecovered AssertKind = "expect_recovered"
	// AssertChannel: the Channel diagnosis channel produced at least Min
	// anomalies (default 1) and at least Reports verdicts — or, with None,
	// stayed completely quiet (zero anomalies, zero reports).
	AssertChannel AssertKind = "expect_channel"
	// AssertModality: some report carries non-conflicting evidence from
	// Channel, with fused confidence >= MinConfidence and (when Outcome is
	// set) the given fusion outcome.
	AssertModality AssertKind = "expect_modality"
	// AssertNoRecords: zero trace records reached the cloud DB — the proof a
	// verdict was reached tracepoint-free.
	AssertNoRecords AssertKind = "no-records"
)

// UnknownModalityError is the typed validation error for an assertion
// naming a channel outside the diagnosis-modality vocabulary.
type UnknownModalityError struct {
	Got   string
	Valid []core.Modality
}

func (e *UnknownModalityError) Error() string {
	return fmt.Sprintf("unknown channel %q (valid: %v)", e.Got, e.Valid)
}

// parseChannel resolves an assertion's channel name against the modality
// vocabulary.
func parseChannel(s string) (core.Modality, error) {
	for _, m := range core.Modalities() {
		if string(m) == s {
			return m, nil
		}
	}
	return "", &UnknownModalityError{Got: s, Valid: core.Modalities()}
}

// Assertion is one declarative check evaluated after the run.
type Assertion struct {
	Kind AssertKind `json:"kind"`
	// Job selects which fleet member(s) the check applies to; -1 = every
	// job. Default 0.
	Job int `json:"job,omitempty"`
	// Event indexes the job's time-ordered injection list (inject events
	// plus chaos samples) for detected/diagnosed.
	Event int `json:"event,omitempty"`
	// Within bounds detection/diagnosis latency from the injection.
	Within     Dur             `json:"within,omitempty"`
	Min        int             `json:"min,omitempty"`
	Categories []core.Category `json:"categories,omitempty"`
	Rank       int             `json:"rank,omitempty"`
	// Victims lists ranks a single report's blast radius must contain
	// (expect_victims only).
	Victims []int `json:"victims,omitempty"`
	// Action restricts expect_remediation to attempts of one mitigation
	// kind ("" = any).
	Action remedy.ActionKind `json:"action,omitempty"`
	// Outcomes restricts expect_remediation to attempts with one of these
	// audited fates (nil = any).
	Outcomes []remedy.Outcome `json:"outcomes,omitempty"`
	// None inverts expect_remediation (the job must have NO matching
	// attempt) and expect_channel (the channel must stay quiet).
	None bool `json:"none,omitempty"`
	// Channel names the diagnosis modality for expect_channel and
	// expect_modality ("tracepoint", "log" or "perf").
	Channel string `json:"channel,omitempty"`
	// Reports is the minimum verdict count expect_channel requires from the
	// channel (0 = don't care).
	Reports int `json:"reports,omitempty"`
	// MinConfidence bounds the fused confidence expect_modality requires.
	MinConfidence float64 `json:"min_confidence,omitempty"`
	// Outcome restricts expect_modality to reports with one fusion outcome
	// ("single", "corroborated" or "conflicted"; "" = any).
	Outcome string `json:"outcome,omitempty"`
}

// Spec is a complete declarative scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed is the default seed (overridable at run time). Default 1.
	Seed int64 `json:"seed,omitempty"`
	// RunFor is the virtual time the scenario simulates. Default 75 s.
	RunFor Dur     `json:"run_for,omitempty"`
	Fleet  Fleet   `json:"fleet"`
	Events []Event `json:"events,omitempty"`
	Chaos  *Chaos  `json:"chaos,omitempty"`
	// Logs and Timings script the synthetic log/perf channel feeds.
	Logs       []Logs      `json:"logs,omitempty"`
	Timings    []Timings   `json:"timings,omitempty"`
	Remediate  []Remediate `json:"remediate,omitempty"`
	Assertions []Assertion `json:"assertions,omitempty"`
}

// DefaultRunFor is the virtual horizon when a spec leaves RunFor unset: a
// 15 s warmup plus a 60 s detection window.
const DefaultRunFor = 75 * time.Second

func (s Spec) runFor() time.Duration {
	if s.RunFor > 0 {
		return s.RunFor.D()
	}
	return DefaultRunFor
}

// JobCount returns how many jobs the fleet declares.
func (s Spec) JobCount() int {
	if s.Fleet.Gen != nil {
		return s.Fleet.Gen.Jobs
	}
	return 1
}

// FaultKinds returns the sorted set of fault kinds the scenario can
// exercise: explicit inject events plus the chaos distribution (including
// the sampler's default kinds when a chaos block declares none).
func (s Spec) FaultKinds() []faults.Kind {
	set := map[faults.Kind]bool{}
	for _, ev := range s.Events {
		if ev.Action == ActInject && ev.Fault != nil {
			set[ev.Fault.Kind] = true
		}
	}
	if s.Chaos != nil {
		kinds := s.Chaos.Kinds
		if len(kinds) == 0 {
			kinds = defaultChaosKinds()
		}
		for _, wk := range kinds {
			set[wk.Kind] = true
		}
	}
	out := make([]faults.Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse decodes a JSON scenario and validates it.
func Parse(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// knownKind reports whether k is in the fault catalog.
func knownKind(k faults.Kind) bool {
	for _, x := range faults.All() {
		if x == k {
			return true
		}
	}
	return false
}

// minWorld returns the smallest world size any fleet member can have, for
// validating explicit ranks up front.
func (s Spec) minWorld() int {
	if s.Fleet.Gen == nil {
		t := s.Fleet.Topo
		if t.IsZero() {
			t = DefaultTopo
		}
		return t.Nodes * t.GPUsPerNode
	}
	min := 0
	for _, tpl := range s.Fleet.Gen.Templates {
		w := tpl.Topo.Nodes * tpl.Topo.GPUsPerNode
		if min == 0 || w < min {
			min = w
		}
	}
	return min
}

// Validate checks the spec for structural errors before any simulation is
// built. Explicit fault ranks are bounded by the smallest possible fleet
// member's world size, so a validated spec runs on any sampled template.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.RunFor < 0 {
		return fmt.Errorf("scenario %s: negative run_for", s.Name)
	}
	if g := s.Fleet.Gen; g != nil {
		if g.Jobs <= 0 {
			return fmt.Errorf("scenario %s: fleet gen needs jobs > 0", s.Name)
		}
		if len(g.Templates) == 0 {
			return fmt.Errorf("scenario %s: fleet gen needs templates", s.Name)
		}
		total := 0
		for i, tpl := range g.Templates {
			if tpl.Weight <= 0 {
				return fmt.Errorf("scenario %s: template %d (%s) needs weight > 0", s.Name, i, tpl.Name)
			}
			total += tpl.Weight
			if err := tpl.Topo.Config().Validate(); err != nil {
				return fmt.Errorf("scenario %s: template %d (%s): %w", s.Name, i, tpl.Name, err)
			}
		}
		if total <= 0 {
			return fmt.Errorf("scenario %s: zero total template weight", s.Name)
		}
	} else if !s.Fleet.Topo.IsZero() {
		if err := s.Fleet.Topo.Config().Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	// Negative overrides would otherwise be silently replaced with the
	// defaults at run time — the same silent-default trap the collector
	// config used to have.
	if s.Fleet.UploadLatency < 0 || s.Fleet.Window < 0 || s.Fleet.Rearm < 0 {
		return fmt.Errorf("scenario %s: negative fleet duration override", s.Name)
	}
	if s.Fleet.MaxSampled < 0 || s.Fleet.CheckpointEvery < 0 {
		return fmt.Errorf("scenario %s: negative fleet count override", s.Name)
	}
	world := s.minWorld()
	jobs := s.JobCount()
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("scenario %s: event %d: negative time", s.Name, i)
		}
		// An event at or past the horizon never fires; an injection there
		// would still count in the report and dilute accuracy (the chaos
		// sampler drops such samples for the same reason).
		if ev.At.D() >= s.runFor() {
			return fmt.Errorf("scenario %s: event %d at %v, at or beyond run_for %v", s.Name, i, ev.At, Dur(s.runFor()))
		}
		if ev.Job < -1 || ev.Job >= jobs {
			return fmt.Errorf("scenario %s: event %d: job %d out of range (fleet has %d)", s.Name, i, ev.Job, jobs)
		}
		switch ev.Action {
		case ActInject, ActRecover:
			if ev.Fault == nil {
				return fmt.Errorf("scenario %s: event %d: %s needs a fault", s.Name, i, ev.Action)
			}
			if !knownKind(ev.Fault.Kind) {
				return fmt.Errorf("scenario %s: event %d: unknown fault kind %q", s.Name, i, ev.Fault.Kind)
			}
			if ev.Fault.Rank < 0 || ev.Fault.Rank >= world {
				return fmt.Errorf("scenario %s: event %d: rank %d out of range (world %d)", s.Name, i, ev.Fault.Rank, world)
			}
			if ev.Fault.Severity < 0 {
				return fmt.Errorf("scenario %s: event %d: negative severity %v", s.Name, i, ev.Fault.Severity)
			}
			if ev.Fault.Duration < 0 {
				return fmt.Errorf("scenario %s: event %d: negative duration %v", s.Name, i, ev.Fault.Duration)
			}
			if ev.Action == ActRecover && !faults.Recoverable(ev.Fault.Kind) {
				return fmt.Errorf("scenario %s: event %d: %q is not recoverable", s.Name, i, ev.Fault.Kind)
			}
			// CheckpointEvery is fleet-wide, so this holds for generated
			// fleets too: without a checkpoint phase the stall can never
			// manifest.
			if ev.Fault.Kind == faults.CheckpointStall && s.Fleet.CheckpointEvery <= 0 {
				return fmt.Errorf("scenario %s: event %d: checkpoint-stall needs fleet.checkpoint_every > 0", s.Name, i)
			}
		case ActBackendStop, ActBackendStart, ActCollectorStop:
			if ev.Fault != nil {
				return fmt.Errorf("scenario %s: event %d: %s takes no fault", s.Name, i, ev.Action)
			}
		default:
			return fmt.Errorf("scenario %s: event %d: unknown action %q", s.Name, i, ev.Action)
		}
	}
	if s.Chaos != nil {
		if err := s.Chaos.validate(s.Name); err != nil {
			return err
		}
		if start := s.Chaos.effectiveStart(); start >= s.runFor() {
			return fmt.Errorf("scenario %s: chaos window starts at %v, at or beyond run_for %v — nothing can inject", s.Name, Dur(start), Dur(s.runFor()))
		}
		if end := s.Chaos.End.D(); end > 0 && end >= s.runFor() {
			return fmt.Errorf("scenario %s: chaos window ends at %v, at or beyond run_for %v — samples past the horizon are dropped", s.Name, s.Chaos.End, Dur(s.runFor()))
		}
		for _, wk := range s.Chaos.Kinds {
			// Same workload precondition explicit events get: a sampled
			// checkpoint stall can never manifest without the phase.
			if wk.Kind == faults.CheckpointStall && s.Fleet.CheckpointEvery <= 0 {
				return fmt.Errorf("scenario %s: chaos kind checkpoint-stall needs fleet.checkpoint_every > 0", s.Name)
			}
		}
	}
	for i, lg := range s.Logs {
		if lg.Job < -1 || lg.Job >= jobs {
			return fmt.Errorf("scenario %s: logs %d: job %d out of range (fleet has %d)", s.Name, i, lg.Job, jobs)
		}
		if lg.At < 0 {
			return fmt.Errorf("scenario %s: logs %d: negative time", s.Name, i)
		}
		if lg.At.D() >= s.runFor() {
			return fmt.Errorf("scenario %s: logs %d at %v, at or beyond run_for %v", s.Name, i, lg.At, Dur(s.runFor()))
		}
		if lg.Text == "" {
			return fmt.Errorf("scenario %s: logs %d: missing text", s.Name, i)
		}
		if lg.Rank < -1 || lg.Rank >= world {
			return fmt.Errorf("scenario %s: logs %d: rank %d out of range (world %d)", s.Name, i, lg.Rank, world)
		}
		if lg.Count < 0 || lg.Every < 0 {
			return fmt.Errorf("scenario %s: logs %d: negative repeat schedule", s.Name, i)
		}
	}
	for i, tm := range s.Timings {
		if tm.Job < -1 || tm.Job >= jobs {
			return fmt.Errorf("scenario %s: timings %d: job %d out of range (fleet has %d)", s.Name, i, tm.Job, jobs)
		}
		if tm.Start < 0 {
			return fmt.Errorf("scenario %s: timings %d: negative start", s.Name, i)
		}
		if tm.Start.D() >= s.runFor() {
			return fmt.Errorf("scenario %s: timings %d starts at %v, at or beyond run_for %v", s.Name, i, tm.Start, Dur(s.runFor()))
		}
		if tm.Period <= 0 {
			return fmt.Errorf("scenario %s: timings %d: period must be > 0", s.Name, i)
		}
		if tm.Count <= 0 {
			return fmt.Errorf("scenario %s: timings %d: count must be > 0", s.Name, i)
		}
		if tm.Factor < 0 || (tm.Factor > 0 && tm.Factor < 1) {
			return fmt.Errorf("scenario %s: timings %d: straggler factor must be >= 1 (or 0 for a healthy feed)", s.Name, i)
		}
		if tm.Factor > 0 && (tm.Rank < 0 || tm.Rank >= world) {
			return fmt.Errorf("scenario %s: timings %d: straggler rank %d out of range (world %d)", s.Name, i, tm.Rank, world)
		}
		if tm.After < 0 {
			return fmt.Errorf("scenario %s: timings %d: negative straggler onset", s.Name, i)
		}
	}
	for i, rem := range s.Remediate {
		if rem.Job < -1 || rem.Job >= jobs {
			return fmt.Errorf("scenario %s: remediate %d: job %d out of range (fleet has %d)", s.Name, i, rem.Job, jobs)
		}
		if err := rem.policy().Validate(); err != nil {
			return fmt.Errorf("scenario %s: remediate %d: %w", s.Name, i, err)
		}
		for j := range s.Remediate[:i] {
			other := s.Remediate[j]
			if other.Job == rem.Job || other.Job == -1 || rem.Job == -1 {
				return fmt.Errorf("scenario %s: remediate %d: job %d already has a policy (stanza %d)", s.Name, i, rem.Job, j)
			}
		}
	}
	for i, a := range s.Assertions {
		if a.Job < -1 || a.Job >= jobs {
			return fmt.Errorf("scenario %s: assertion %d: job %d out of range (fleet has %d)", s.Name, i, a.Job, jobs)
		}
		if a.Within < 0 {
			return fmt.Errorf("scenario %s: assertion %d: negative within bound %v", s.Name, i, a.Within)
		}
		// The remediation kinds use Rank -1 as "any rank" (0 is a real rank
		// there); everywhere else a negative rank is a mistake.
		remedyKind := a.Kind == AssertRemediation || a.Kind == AssertRecovered
		if a.Rank < 0 && !(remedyKind && a.Rank == -1) {
			return fmt.Errorf("scenario %s: assertion %d: negative rank %d", s.Name, i, a.Rank)
		}
		switch a.Kind {
		case AssertDetected, AssertDiagnosed:
			injections := s.minInjections(a.Job, jobs)
			if a.Event < 0 || a.Event >= injections {
				return fmt.Errorf("scenario %s: assertion %d: event %d out of range (job(s) see %d injections)", s.Name, i, a.Event, injections)
			}
		case AssertCategory:
			if len(a.Categories) == 0 {
				return fmt.Errorf("scenario %s: assertion %d: category needs categories", s.Name, i)
			}
		case AssertSuspect:
			if a.Rank >= world {
				return fmt.Errorf("scenario %s: assertion %d: suspect rank %d out of range (world %d)", s.Name, i, a.Rank, world)
			}
		case AssertNoFalseTrigger:
		case AssertMinReports, AssertMinRecords, AssertMinIterations:
			if a.Min <= 0 {
				return fmt.Errorf("scenario %s: assertion %d: %s needs min > 0", s.Name, i, a.Kind)
			}
		case AssertChain:
			if a.Min <= 0 {
				return fmt.Errorf("scenario %s: assertion %d: expect_chain needs min > 0 (hops)", s.Name, i)
			}
		case AssertVictims:
			if a.Min <= 0 && len(a.Victims) == 0 {
				return fmt.Errorf("scenario %s: assertion %d: expect_victims needs min > 0 or victims", s.Name, i)
			}
			for _, v := range a.Victims {
				if v < 0 || v >= world {
					return fmt.Errorf("scenario %s: assertion %d: victim rank %d out of range (world %d)", s.Name, i, v, world)
				}
			}
		case AssertRemediation:
			if a.None && a.Min > 0 {
				return fmt.Errorf("scenario %s: assertion %d: expect_remediation cannot set both none and min", s.Name, i)
			}
			if a.Rank >= world {
				return fmt.Errorf("scenario %s: assertion %d: rank %d out of range (world %d)", s.Name, i, a.Rank, world)
			}
			if a.Action != "" && !remedy.KnownAction(a.Action) {
				return fmt.Errorf("scenario %s: assertion %d: unknown action %q", s.Name, i, a.Action)
			}
			for _, o := range a.Outcomes {
				if !remedy.KnownOutcome(o) {
					return fmt.Errorf("scenario %s: assertion %d: unknown outcome %q", s.Name, i, o)
				}
			}
		case AssertRecovered:
			if a.Rank >= world {
				return fmt.Errorf("scenario %s: assertion %d: rank %d out of range (world %d)", s.Name, i, a.Rank, world)
			}
		case AssertChannel:
			if _, err := parseChannel(a.Channel); err != nil {
				return fmt.Errorf("scenario %s: assertion %d: %w", s.Name, i, err)
			}
			if a.None && (a.Min > 0 || a.Reports > 0) {
				return fmt.Errorf("scenario %s: assertion %d: expect_channel cannot set both none and min/reports", s.Name, i)
			}
			if a.Min < 0 || a.Reports < 0 {
				return fmt.Errorf("scenario %s: assertion %d: negative channel expectation", s.Name, i)
			}
		case AssertModality:
			if _, err := parseChannel(a.Channel); err != nil {
				return fmt.Errorf("scenario %s: assertion %d: %w", s.Name, i, err)
			}
			if a.MinConfidence < 0 || a.MinConfidence > 1 {
				return fmt.Errorf("scenario %s: assertion %d: min_confidence %v outside [0, 1]", s.Name, i, a.MinConfidence)
			}
			switch a.Outcome {
			case "", core.FusionSingle, core.FusionCorroborated, core.FusionConflicted:
			default:
				return fmt.Errorf("scenario %s: assertion %d: unknown fusion outcome %q", s.Name, i, a.Outcome)
			}
		case AssertNoRecords:
		default:
			return fmt.Errorf("scenario %s: assertion %d: unknown kind %q", s.Name, i, a.Kind)
		}
	}
	return nil
}

// injectionsFor counts the injections one job can see: inject events
// targeting it (or all jobs) plus chaos samples.
func (s Spec) injectionsFor(job int) int {
	n := 0
	for _, ev := range s.Events {
		if ev.Action == ActInject && (ev.Job == -1 || ev.Job == job) {
			n++
		}
	}
	if s.Chaos != nil {
		n += s.Chaos.guaranteedFaults(s.runFor())
	}
	return n
}

// minInjections bounds an assertion's Event index: for a specific job, that
// job's injection count; for job == -1 the minimum across the fleet, since
// the assertion must hold for every member.
func (s Spec) minInjections(job, jobs int) int {
	if job >= 0 {
		return s.injectionsFor(job)
	}
	min := s.injectionsFor(0)
	for j := 1; j < jobs; j++ {
		if n := s.injectionsFor(j); n < min {
			min = n
		}
	}
	return min
}
