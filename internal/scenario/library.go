package scenario

import (
	"sort"
	"time"

	"mycroft"
	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/remedy"
)

// Builtins returns the built-in scenario library, sorted by name: one
// scenario per fault kind (the §7.1 classes plus the §6.2 integration
// faults) and the multi-fault, flapping, large-topology, fleet-chaos and
// cascade variants. Every builtin passes its own assertions at its default
// seed; the library test enforces that.
func Builtins() []Spec {
	out := []Spec{
		healthyScenario(),
		singleFault("nic-down", "RNIC stops completing WRs; the port of the quickstart example and experiments.RunCase's E2 NIC-down row.", faults.NICDown, 5, false),
		singleFault("link-loss", "Bytes leave the NIC but never arrive (link black-hole).", faults.LinkLoss, 6, false),
		singleFault("gpu-hang", "Copy engine stuck: the GPU stops feeding the proxy.", faults.GPUHang, 2, false),
		singleFault("proxy-crash", "The NCCL proxy thread exits mid-run.", faults.ProxyCrash, 3, false),
		singleFault("gpu-slow", "Compute straggler: one rank's kernels run slower.", faults.GPUSlow, 1, false),
		singleFault("nic-degrade", "NIC bandwidth throttled on a comm-heavy job.", faults.NICDegrade, 4, true),
		singleFault("pcie-degrade", "Staging path throttled on a comm-heavy job.", faults.PCIeDegrade, 7, true),
		congestionScenario(),
		integrationFault("dataloader-stall", "Dataloader blocks forever; Mycroft reports op-not-launched and hands off (§6.2).", faults.DataloaderStall, 0),
		integrationFault("compute-hang", "A compute step never finishes outside the CCL.", faults.ComputeHang, 6),
		checkpointStallScenario(),
		syncMismatchScenario(),
		flappingScenario(),
		multiFaultScenario(),
		large64Scenario(),
		fleetChaosScenario(),
		cascadeScenario(),
		multiJobSharedScenario(),
		ppCascadeScenario(),
		ppNICCascadeScenario(),
		nestedVictimChainScenario(),
		selfHealNICDownScenario(),
		selfHealStragglerScenario(),
		flappingEscalateScenario(),
		multiJobPolicyScenario(),
		logOnlyNICDownScenario(),
		silentStragglerPerfScenario(),
		corroboratedCascadeScenario(),
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds a builtin scenario by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

const warmup = 15 * time.Second

func injectAt(at time.Duration, kind faults.Kind, rank int, sev float64, dur time.Duration) Event {
	return Event{At: Dur(at), Action: ActInject, Fault: &Fault{Kind: kind, Rank: rank, Severity: sev, Duration: Dur(dur)}}
}

func recoverAt(at time.Duration, kind faults.Kind, rank int) Event {
	return Event{At: Dur(at), Action: ActRecover, Fault: &Fault{Kind: kind, Rank: rank}}
}

// healthyScenario is the false-positive baseline: no faults, no triggers.
func healthyScenario() Spec {
	return Spec{
		Name:        "healthy",
		Description: "Fault-free baseline: a full run with zero triggers and steady ingest.",
		RunFor:      Dur(60 * time.Second),
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertMinIterations, Min: 10},
			{Kind: AssertMinRecords, Min: 1000},
		},
	}
}

// singleFault is the canonical one-fault scenario: warmup, inject, expect
// detection and a correct verdict.
func singleFault(name, desc string, kind faults.Kind, rank int, commHeavy bool) Spec {
	return Spec{
		Name:        name,
		Description: desc,
		Fleet:       Fleet{CommHeavy: commHeavy},
		Events:      []Event{injectAt(warmup, kind, rank, 0, 0)},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed},
			{Kind: AssertMinRecords, Min: 1000},
		},
	}
}

func congestionScenario() Spec {
	s := singleFault("congestion", "External traffic floods the victim's NIC: no local fault, only flow pressure.", faults.Congestion, 4, true)
	s.Events = []Event{injectAt(warmup, faults.Congestion, 4, 0.999, 0)}
	return s
}

// integrationFault covers the §6.2 faults whose root cause is outside the
// CCL: Mycroft must say op-not-launched on the right rank and hand off.
func integrationFault(name, desc string, kind faults.Kind, rank int) Spec {
	return Spec{
		Name:        name,
		Description: desc,
		Events:      []Event{injectAt(warmup, kind, rank, 0, 0)},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed},
		},
	}
}

func checkpointStallScenario() Spec {
	return Spec{
		Name:        "checkpoint-stall",
		Description: "A checkpoint write blocks forever (outside the CCL; py-spy's case).",
		Fleet:       Fleet{CheckpointEvery: 3},
		Events:      []Event{injectAt(warmup, faults.CheckpointStall, 6, 0, 0)},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected},
			{Kind: AssertCategory, Categories: []core.Category{core.CatNotLaunched}},
		},
	}
}

func syncMismatchScenario() Spec {
	return Spec{
		Name:        "sync-mismatch",
		Description: "One rank silently skips a DP all-reduce; Mycroft sees only victims (§6.2).",
		Events:      []Event{injectAt(warmup, faults.SyncMismatch, 3, 0, 0)},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected},
			{Kind: AssertCategory, Categories: []core.Category{core.CatUnknown, core.CatNotLaunched}},
		},
	}
}

func flappingScenario() Spec {
	return Spec{
		Name:        "nic-flapping",
		Description: "A flapping NIC: a long flap that must be detected, then a short one the job rides out.",
		RunFor:      Dur(85 * time.Second),
		Events: []Event{
			injectAt(warmup, faults.NICFlap, 5, 0, 10*time.Second),
			injectAt(50*time.Second, faults.NICFlap, 5, 0, 3*time.Second),
		},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Event: 0, Within: Dur(20 * time.Second)},
			{Kind: AssertMinIterations, Min: 10}, // the job resumes after both flaps
		},
	}
}

func multiFaultScenario() Spec {
	return Spec{
		Name:        "multi-fault",
		Description: "Two faults in sequence: a NIC dies and recovers, then a GPU hangs after the backend re-arms.",
		RunFor:      Dur(100 * time.Second),
		Events: []Event{
			injectAt(warmup, faults.NICDown, 5, 0, 0),
			recoverAt(25*time.Second, faults.NICDown, 5),
			injectAt(60*time.Second, faults.GPUHang, 2, 0, 0),
		},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDiagnosed, Event: 0},
			{Kind: AssertDiagnosed, Event: 1},
			{Kind: AssertMinReports, Min: 2},
		},
	}
}

// large64Scenario is the fleet-scale shape: 64 ranks, multiple faults, with
// the first fault recovering so the second lands on a live job.
func large64Scenario() Spec {
	return Spec{
		Name:        "large-64",
		Description: "64-rank (8 nodes × 8 GPUs) multi-fault run: a NIC dies on a non-sampled rank and recovers, then a second NIC dies across the cluster.",
		RunFor:      Dur(120 * time.Second),
		// Iterations at this scale run ~7 s, so the trigger look-back must
		// widen past the 5 s default or warm-up cadence reads as failure
		// (the E7 sweep makes the same adjustment).
		Fleet: Fleet{Topo: Topo{Nodes: 8, GPUsPerNode: 8, TP: 2, PP: 4, DP: 8}, Window: Dur(15 * time.Second)},
		Events: []Event{
			injectAt(warmup, faults.NICDown, 17, 0, 0),
			recoverAt(40*time.Second, faults.NICDown, 17),
			injectAt(70*time.Second, faults.NICDown, 33, 0, 0),
		},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDiagnosed, Event: 0},
			{Kind: AssertDiagnosed, Event: 1},
			{Kind: AssertMinReports, Min: 2},
			{Kind: AssertMinRecords, Min: 10000},
		},
	}
}

func fleetChaosScenario() Spec {
	return Spec{
		Name:        "fleet-chaos",
		Description: "Weighted-template fleet (8- and 16-rank jobs) with two sampled failure-class faults per job, each recovering.",
		RunFor:      Dur(90 * time.Second),
		Fleet: Fleet{Gen: &FleetGen{
			Jobs: 3,
			Templates: []Template{
				{Name: "small-compute", Weight: 3, Topo: Topo{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2}},
				{Name: "medium-compute", Weight: 2, Topo: Topo{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 2, DP: 4}},
			},
		}},
		Chaos: &Chaos{
			Faults: 2,
			Kinds: []WeightedKind{
				{Kind: faults.NICDown, Weight: 2},
				{Kind: faults.GPUHang, Weight: 1},
			},
			Start: Dur(warmup), End: Dur(45 * time.Second), MinGap: Dur(20 * time.Second),
			Recover: true, RecoverAfter: Dur(10 * time.Second),
		},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger, Job: -1},
			{Kind: AssertDetected, Job: -1, Event: 0, Within: Dur(15 * time.Second)},
			{Kind: AssertMinRecords, Job: -1, Min: 1000},
		},
	}
}

// multiJobSharedScenario is the multi-tenant isolation check: three jobs on
// one mycroft.Service share the virtual clock, one loses a NIC, and the
// fault must be detected on that job without a single false trigger on its
// neighbours.
func multiJobSharedScenario() Spec {
	return Spec{
		Name:        "multi-job-shared",
		Description: "Three concurrent jobs on one shared-engine Service; a NIC dies on job 0 and must not trigger jobs 1 or 2.",
		Fleet: Fleet{
			SharedEngine: true,
			Gen: &FleetGen{
				Jobs: 3,
				Templates: []Template{
					{Name: "small-compute", Weight: 1, Topo: DefaultTopo},
				},
			},
		},
		Events: []Event{{At: Dur(warmup), Action: ActInject, Job: 0, Fault: &Fault{Kind: faults.NICDown, Rank: 5}}},
		Assertions: []Assertion{
			{Kind: AssertDetected, Job: 0, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed, Job: 0},
			{Kind: AssertNoFalseTrigger, Job: 1},
			{Kind: AssertNoFalseTrigger, Job: 2},
			{Kind: AssertMinRecords, Job: -1, Min: 1000},
		},
	}
}

// ppCascadeScenario is the dependency-graph showcase: on a 4-stage pipeline
// a GPU hang deep in stage hierarchy surfaces first as a stalled gradient
// all-reduce several communicators away. The report must carry the full
// multi-hop causal chain (DP comm → PP comm → TP comm) and a blast radius
// covering the whole job — the paper's headline "tracing dependencies"
// behaviour, not just the terminal suspect.
func ppCascadeScenario() Spec {
	return Spec{
		Name:        "pp-cascade",
		Description: "4-stage pipeline: a GPU hang on rank 9 cascades DP → PP → TP; the verdict must carry the multi-hop chain and a job-wide blast radius.",
		RunFor:      Dur(60 * time.Second),
		// Same window widening as large-64: PP=4 iterations are long enough
		// that the 5 s default reads warm-up cadence as failure.
		Fleet:  Fleet{Topo: Topo{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 4, DP: 2}, Window: Dur(15 * time.Second)},
		Events: []Event{injectAt(warmup, faults.GPUHang, 9, 0, 0)},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed},
			{Kind: AssertChain, Min: 3},
			{Kind: AssertVictims, Min: 15},
			{Kind: AssertMinRecords, Min: 1000},
		},
	}
}

// ppNICCascadeScenario kills a NIC mid-pipeline: the chase crosses a
// pipeline-order edge (the SendRecv comm) before convicting the NIC, and
// the blast radius is partial — only the ranks actually downstream of the
// dead NIC, not the whole job yet.
func ppNICCascadeScenario() Spec {
	return Spec{
		Name:        "pp-nic-cascade",
		Description: "4-stage pipeline: a NIC dies on rank 10; the chase follows the pipeline send/recv order into the victim stage and the blast radius stays partial.",
		RunFor:      Dur(60 * time.Second),
		Fleet:       Fleet{Topo: Topo{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 4, DP: 2}, Window: Dur(15 * time.Second)},
		Events:      []Event{injectAt(warmup, faults.NICDown, 10, 0, 0)},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed},
			{Kind: AssertChain, Min: 2},
			{Kind: AssertVictims, Min: 4, Victims: []int{6, 14}},
		},
	}
}

// nestedVictimChainScenario is the 8-GPU nesting case: a GPU hang inside a
// TP group is reached through the PP comm's not-launched suspect, and every
// other rank lands in the blast radius.
func nestedVictimChainScenario() Spec {
	return Spec{
		Name:        "nested-victim-chain",
		Description: "A GPU hang on rank 2 is reached via a nested-comm hop (PP → TP) and takes all 7 peers down with it.",
		Events:      []Event{injectAt(warmup, faults.GPUHang, 2, 0, 0)},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed},
			{Kind: AssertChain, Min: 2},
			{Kind: AssertVictims, Min: 7, Victims: []int{0, 1, 3, 4, 5, 6, 7}},
		},
	}
}

// selfHealRules is the shared self-healing policy of the remediation
// builtins — mycroft.SelfHealPolicy (the tuned rule set the CLI and bench
// also use) rendered into the file format.
func selfHealRules() []RemedyRule {
	var out []RemedyRule
	for _, r := range mycroft.SelfHealPolicy().Rules {
		out = append(out, RemedyRule{
			Name: r.Name, Categories: r.Categories, Vias: r.Vias, MinChain: r.MinChain,
			Action: r.Action, MaxAttempts: r.MaxAttempts,
			Backoff: Dur(r.Backoff), VerifyWindow: Dur(r.VerifyWindow),
		})
	}
	return out
}

// selfHealNICDownScenario is the acceptance loop end to end: a recoverable
// nic-down is diagnosed, the policy recovers it, verification sees a quiet
// window, and the run ends with a succeeded audit entry and the job
// training again.
func selfHealNICDownScenario() Spec {
	return Spec{
		Name:        "self-heal-nic-down",
		Description: "A NIC dies and the attached policy recovers it in place: the audit log ends succeeded, the suspect stays quiet, the job resumes.",
		RunFor:      Dur(90 * time.Second),
		Fleet:       Fleet{Rearm: Dur(10 * time.Second)},
		Events:      []Event{injectAt(warmup, faults.NICDown, 5, 0, 0)},
		Remediate:   []Remediate{{Name: "self-heal", Rules: selfHealRules()}},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed},
			{Kind: AssertRemediation, Action: remedy.ActRecoverFault, Outcomes: []remedy.Outcome{remedy.OutcomeSucceeded}, Rank: 5},
			{Kind: AssertRecovered, Rank: 5},
			{Kind: AssertMinIterations, Min: 10}, // a permanently dead NIC caps the horizon at ~7
		},
	}
}

// selfHealStragglerScenario replaces a straggling GPU: the compute-straggler
// verdict maps to isolate-rank, the rank's hardware is swapped, and the job
// returns to full speed.
func selfHealStragglerScenario() Spec {
	return Spec{
		Name:        "self-heal-straggler",
		Description: "A compute straggler is diagnosed and its rank isolated (hardware swap): the slowdown clears and the isolate audits succeeded.",
		RunFor:      Dur(90 * time.Second),
		Fleet:       Fleet{Rearm: Dur(10 * time.Second)},
		Events:      []Event{injectAt(warmup, faults.GPUSlow, 1, 0, 0)},
		Remediate:   []Remediate{{Name: "self-heal", Rules: selfHealRules()}},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected},
			{Kind: AssertCategory, Categories: []core.Category{core.CatComputeStraggler}},
			{Kind: AssertRemediation, Action: remedy.ActIsolateRank, Outcomes: []remedy.Outcome{remedy.OutcomeSucceeded}, Rank: 1},
			{Kind: AssertRecovered, Rank: 1},
		},
	}
}

// flappingEscalateScenario is the flap-damping path: a link that keeps
// flapping defeats in-place recovery twice, exhausting the rule's budget —
// the loop must stop thrashing and page instead.
func flappingEscalateScenario() Spec {
	rules := []RemedyRule{{
		Name:       "recover",
		Categories: []core.Category{core.CatNetworkSendPath, core.CatNetworkDegrade},
		Action:     remedy.ActRecoverFault, MaxAttempts: 2,
		Backoff: Dur(5 * time.Second), VerifyWindow: Dur(25 * time.Second),
	}}
	return Spec{
		Name:        "flapping-link-escalate",
		Description: "A flapping link keeps re-failing inside the verify window; after the 2-attempt budget the policy escalates instead of thrashing.",
		RunFor:      Dur(120 * time.Second),
		Fleet:       Fleet{Rearm: Dur(5 * time.Second)},
		Events: []Event{
			injectAt(warmup, faults.NICFlap, 5, 0, 8*time.Second),
			injectAt(30*time.Second, faults.NICFlap, 5, 0, 8*time.Second),
			injectAt(45*time.Second, faults.NICFlap, 5, 0, 8*time.Second),
			injectAt(60*time.Second, faults.NICFlap, 5, 0, 8*time.Second),
			injectAt(75*time.Second, faults.NICFlap, 5, 0, 8*time.Second),
		},
		Remediate: []Remediate{{Name: "flap-damping", Rules: rules}},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertRemediation, Action: remedy.ActRecoverFault, Outcomes: []remedy.Outcome{remedy.OutcomeFailed}, Min: 2, Rank: 5},
			{Kind: AssertRemediation, Action: remedy.ActEscalate, Outcomes: []remedy.Outcome{remedy.OutcomeEscalated}, Rank: 5},
		},
	}
}

// multiJobPolicyScenario is the multi-tenant isolation check for the
// remediation loop itself: two jobs share one engine and lose a NIC each,
// but only job 0 carries a policy — job 1 must see zero remediation.
func multiJobPolicyScenario() Spec {
	return Spec{
		Name:        "multi-job-policy",
		Description: "Two shared-engine jobs each lose a NIC; only job 0 has a policy. Job 0 self-heals; job 1 is diagnosed but untouched.",
		RunFor:      Dur(90 * time.Second),
		Fleet: Fleet{
			SharedEngine: true,
			Rearm:        Dur(10 * time.Second),
			Gen: &FleetGen{
				Jobs:      2,
				Templates: []Template{{Name: "small-compute", Weight: 1, Topo: DefaultTopo}},
			},
		},
		Events: []Event{
			{At: Dur(warmup), Action: ActInject, Job: 0, Fault: &Fault{Kind: faults.NICDown, Rank: 5}},
			{At: Dur(warmup), Action: ActInject, Job: 1, Fault: &Fault{Kind: faults.NICDown, Rank: 3}},
		},
		Remediate: []Remediate{{Job: 0, Name: "self-heal", Rules: selfHealRules()}},
		Assertions: []Assertion{
			{Kind: AssertDiagnosed, Job: 0},
			{Kind: AssertDiagnosed, Job: 1},
			{Kind: AssertRemediation, Job: 0, Outcomes: []remedy.Outcome{remedy.OutcomeSucceeded}, Rank: 5},
			{Kind: AssertRecovered, Job: 0, Rank: 5},
			{Kind: AssertRemediation, Job: 1, None: true, Rank: -1},
			{Kind: AssertMinIterations, Job: 0, Min: 10}, // job 0 resumed; job 1's dead NIC pins it lower
		},
	}
}

// logOnlyNICDownScenario is the tracepoint-free acceptance path: tracing is
// disabled entirely (zero 112-byte records reach the cloud DB), a NIC dies,
// and the rank's RDMA driver complaints — against a backdrop of fleet-wide
// info chatter — must localize, categorize and self-heal the fault through
// the log channel alone.
func logOnlyNICDownScenario() Spec {
	return Spec{
		Name:        "log-only-nic-down",
		Description: "Tracing disabled: rank 5's RDMA error lines alone must localize the dead NIC, reach a network-send-path verdict and drive recovery — zero trace records end to end.",
		RunFor:      Dur(75 * time.Second),
		Fleet:       Fleet{NoTracing: true, Rearm: Dur(10 * time.Second)},
		Events:      []Event{injectAt(warmup, faults.NICDown, 5, 0, 0)},
		Logs: []Logs{
			// Fleet-wide phase chatter every rank emits: the divergence score
			// must read it as a phase change, never a fault.
			{At: Dur(5 * time.Second), Rank: -1, Level: "info", Text: "iteration 12 loss 2.31 lr 0.0003", Count: 9, Every: Dur(5 * time.Second)},
			// The failing NIC's driver complains shortly after the fault.
			{At: Dur(20 * time.Second), Rank: 5, Level: "error", Text: "NET/IB rdma qp 17 timeout on port 1, completion queue stalled", Count: 6, Every: Dur(2 * time.Second)},
		},
		Remediate: []Remediate{{Name: "self-heal", Rules: selfHealRules()}},
		Assertions: []Assertion{
			{Kind: AssertNoRecords},
			{Kind: AssertChannel, Channel: "tracepoint", None: true},
			{Kind: AssertChannel, Channel: "log", Min: 1, Reports: 1},
			{Kind: AssertCategory, Categories: []core.Category{core.CatNetworkSendPath}},
			{Kind: AssertSuspect, Rank: 5},
			{Kind: AssertModality, Channel: "log"},
			{Kind: AssertRemediation, Action: remedy.ActRecoverFault, Outcomes: []remedy.Outcome{remedy.OutcomeSucceeded}, Rank: 5},
		},
	}
}

// silentStragglerPerfScenario is the black-box channel's acceptance path: no
// fault is injected and tracing stays on, but a synthetic timing feed shows
// rank 3 drifting 1.8× slower mid-run. The perf channel alone must convict
// it while the tracepoint channel stays completely quiet.
func silentStragglerPerfScenario() Spec {
	return Spec{
		Name:        "silent-straggler-perf",
		Description: "No fault, tracing healthy: iteration timestamps alone show rank 3 drifting 1.8× slower; the perf envelope convicts it while the tracepoint channel stays silent.",
		RunFor:      Dur(90 * time.Second),
		Timings:     []Timings{{Start: Dur(5 * time.Second), Period: Dur(2 * time.Second), Count: 30, Rank: 3, Factor: 1.8, After: 8}},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertChannel, Channel: "tracepoint", None: true},
			{Kind: AssertChannel, Channel: "perf", Min: 1, Reports: 1},
			{Kind: AssertCategory, Categories: []core.Category{core.CatComputeStraggler}},
			{Kind: AssertSuspect, Rank: 3},
			{Kind: AssertModality, Channel: "perf"},
		},
	}
}

// corroboratedCascadeScenario is the fusion showcase: the same dead NIC is
// seen independently by the tracepoint pipeline and the rank's driver log.
// The fused verdict must carry evidence from both channels and a confidence
// strictly above either channel's single prior (noisy-OR of 0.75 and 0.6 is
// 0.9, so the 0.8 bound separates corroboration from any single channel).
func corroboratedCascadeScenario() Spec {
	return Spec{
		Name:        "corroborated-cascade",
		Description: "A NIC dies while the rank's driver logs scream: tracepoint and log evidence fuse, and the verdict's confidence rises strictly above either channel alone.",
		RunFor:      Dur(75 * time.Second),
		Events:      []Event{injectAt(warmup, faults.NICDown, 5, 0, 0)},
		Logs: []Logs{
			{At: Dur(16 * time.Second), Rank: 5, Level: "error", Text: "NET/IB rnic 5 completion error on qp 9", Count: 6, Every: Dur(2 * time.Second)},
		},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Within: Dur(30 * time.Second)},
			{Kind: AssertDiagnosed},
			{Kind: AssertModality, Channel: "tracepoint", Outcome: "corroborated", MinConfidence: 0.8},
			{Kind: AssertModality, Channel: "log", MinConfidence: 0.8},
		},
	}
}

func cascadeScenario() Spec {
	return Spec{
		Name:        "cascade",
		Description: "Correlated failure: a NIC dies and, moments later, a neighbour follows (cascade probability 1).",
		RunFor:      Dur(80 * time.Second),
		Fleet:       Fleet{Topo: Topo{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 2, DP: 4}},
		Chaos: &Chaos{
			Faults: 1,
			Kinds:  []WeightedKind{{Kind: faults.NICDown, Weight: 1}},
			Start:  Dur(warmup), End: Dur(20 * time.Second),
			Cascade: 1, CascadeSpread: Dur(5 * time.Second),
			Recover: true, RecoverAfter: Dur(15 * time.Second),
		},
		Assertions: []Assertion{
			{Kind: AssertNoFalseTrigger},
			{Kind: AssertDetected, Event: 0, Within: Dur(15 * time.Second)},
			{Kind: AssertMinReports, Min: 1},
		},
	}
}
