package scenario

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mycroft"
	"mycroft/internal/core"
	"mycroft/internal/experiments"
	"mycroft/internal/faults"
	"mycroft/internal/remedy"
	"mycroft/internal/sim"
)

// JobResult is the per-fleet-member outcome: what ran, what was injected,
// and what Mycroft concluded.
type JobResult struct {
	Index int `json:"index"`
	// JobID is the job's service address ("job-N").
	JobID      string `json:"job_id"`
	Template   string `json:"template"`
	Topo       Topo   `json:"topo"`
	CommHeavy  bool   `json:"comm_heavy,omitempty"`
	WorldSize  int    `json:"world_size"`
	Iterations int    `json:"iterations"`
	// Records is how many trace records reached the cloud DB.
	Records  uint64   `json:"records"`
	Injected []string `json:"injected,omitempty"`
	Triggers []string `json:"triggers,omitempty"`
	Reports  []string `json:"reports,omitempty"`
	// DetectLatency is first-trigger time minus first-injection time (0 when
	// nothing fired or nothing was injected).
	DetectLatency Dur `json:"detect_latency,omitempty"`
	// RCALatency is first-verdict time minus first-injection time.
	RCALatency Dur `json:"rca_latency,omitempty"`
	// Accuracy is the fraction of injections whose expectation
	// (faults.Expect) is satisfied by some later verdict.
	Accuracy float64 `json:"accuracy"`
	// Remediations is the job's audit log: every detect→act→verify attempt
	// the attached policy made (empty without a remediate stanza).
	Remediations []string `json:"remediations,omitempty"`
	// Channels renders the diagnosis channels that saw anomalies or
	// delivered verdicts (quiet channels are omitted).
	Channels []string `json:"channels,omitempty"`

	injected     faults.Plan
	triggers     []core.Trigger
	reports      []core.Report
	remediations []remedy.Attempt
	channels     mycroft.ChannelStatsResult
}

// channelInfo finds one channel's counters in the job's stats.
func (j *JobResult) channelInfo(name string) (mycroft.ChannelInfo, bool) {
	for _, c := range j.channels.Channels {
		if string(c.Channel) == name {
			return c, true
		}
	}
	return mycroft.ChannelInfo{}, false
}

// Result is the structured pass/fail outcome of one scenario run. Every
// field derives from virtual time, so the same spec and seed render
// byte-for-byte identical Results.
type Result struct {
	Name     string      `json:"name"`
	Seed     int64       `json:"seed"`
	Pass     bool        `json:"pass"`
	Failures []string    `json:"failures,omitempty"`
	Jobs     []JobResult `json:"jobs"`
	// Asserted is how many assertions were evaluated (per-job expansions
	// counted individually).
	Asserted int `json:"asserted"`
}

// Render formats the result as a deterministic human-readable report.
func (r *Result) Render() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s (seed %d): %s\n", r.Name, r.Seed, verdict)
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "  job %s template=%s topo=%s world=%d comm-heavy=%v\n",
			j.JobID, j.Template, j.Topo, j.WorldSize, j.CommHeavy)
		fmt.Fprintf(&b, "    iterations=%d records=%d triggers=%d reports=%d\n",
			j.Iterations, j.Records, len(j.Triggers), len(j.Reports))
		if len(j.Injected) > 0 {
			fmt.Fprintf(&b, "    injected: %s\n", strings.Join(j.Injected, ", "))
			fmt.Fprintf(&b, "    detect=%v rca=%v accuracy=%.2f\n", j.DetectLatency, j.RCALatency, j.Accuracy)
		}
		for _, tr := range j.Triggers {
			fmt.Fprintf(&b, "    trigger: %s\n", tr)
		}
		for _, rep := range j.Reports {
			fmt.Fprintf(&b, "    report:  %s\n", rep)
		}
		for _, rem := range j.Remediations {
			fmt.Fprintf(&b, "    remedy:  %s\n", rem)
		}
		for _, ch := range j.Channels {
			fmt.Fprintf(&b, "    channel: %s\n", ch)
		}
	}
	fmt.Fprintf(&b, "  assertions: %d checked, %d failed\n", r.Asserted, len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "    FAIL %s\n", f)
	}
	return b.String()
}

// RunOptions tunes one scenario execution beyond what the spec declares.
type RunOptions struct {
	// RecordDir, when non-empty, captures every fleet member's incident
	// artifact to <dir>/<job-id>.mycrec. Recorders attach before Start and
	// close at the horizon, so each artifact replays byte-for-byte.
	RecordDir string
}

// Run executes the scenario. seed overrides the spec's seed when non-zero.
// By default fleet members run sequentially on independent engines with
// seeds derived from the scenario seed; with Fleet.SharedEngine every
// member is hosted concurrently on one mycroft.Service. Both modes are
// exactly reproducible from the seed.
func Run(spec Spec, seed int64) (*Result, error) {
	return RunWith(spec, seed, RunOptions{})
}

// RunWith is Run with execution options (incident recording).
func RunWith(spec Spec, seed int64, opts RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = spec.Seed
	}
	if seed == 0 {
		seed = 1
	}
	res := &Result{Name: spec.Name, Seed: seed}
	jobs := resolveFleet(spec.Fleet, seed)
	if spec.Fleet.SharedEngine {
		p, err := prepare(spec, jobs, seed, nil)
		if err != nil {
			return nil, err
		}
		closeRec, err := record(p.Service, p.Handles, opts.RecordDir)
		if err != nil {
			return nil, err
		}
		p.Start()
		p.Service.Run(p.Horizon())
		// Footers land at the horizon, before Stop's lifecycle events — the
		// artifact captures the analyzed run, not the teardown.
		if err := closeRec(); err != nil {
			return nil, err
		}
		defer p.Service.Stop()
		res.Jobs = p.Collect()
	} else {
		for i, js := range jobs {
			jr, err := runJob(spec, js, i, mix(seed, int64(i)), opts)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: job %d: %w", spec.Name, i, err)
			}
			res.Jobs = append(res.Jobs, jr)
		}
	}
	res.Asserted, res.Failures = evaluate(spec, res)
	res.Pass = len(res.Failures) == 0
	return res, nil
}

// record attaches one incident recorder per fleet member, artifacts landing
// in dir. The returned closer finalizes every artifact (footer + file close)
// and must run before Service.Stop. With dir empty both halves are no-ops.
func record(svc *mycroft.Service, handles []*mycroft.JobHandle, dir string) (func() error, error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []*os.File
	var recs []*mycroft.Recorder
	cleanup := func() error {
		var first error
		for i, rec := range recs {
			if err := rec.Close(); err != nil && first == nil {
				first = err
			}
			if err := files[i].Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for _, h := range handles {
		f, err := os.Create(filepath.Join(dir, string(h.ID)+".mycrec"))
		if err != nil {
			cleanup()
			return nil, err
		}
		rec, err := svc.Record(h.ID, f)
		if err != nil {
			f.Close()
			cleanup()
			return nil, err
		}
		files = append(files, f)
		recs = append(recs, rec)
	}
	return cleanup, nil
}

// Prepared is a shared-engine fleet built from a spec but not yet driven:
// the Service hosts every member with its policies attached and its
// injection schedule compiled. A caller that wants the classic batch run
// uses Run; a caller that wants to *serve* the fleet (mycroft-serve
// -scenario) wraps Prepared.Service in a mycroft.Server, Starts it, and
// advances virtual time at its own pace.
type Prepared struct {
	Spec    Spec
	Seed    int64
	Service *mycroft.Service
	Handles []*mycroft.JobHandle

	jobs    []jobSpec
	plans   []faults.Plan
	indices []int // original fleet index of each hosted member
}

// Prepare validates the spec and builds the whole fleet on one Service,
// regardless of the spec's shared_engine flag — a served fleet is always
// shared. seed overrides the spec's seed when non-zero.
func Prepare(spec Spec, seed int64) (*Prepared, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = spec.Seed
	}
	if seed == 0 {
		seed = 1
	}
	return prepare(spec, resolveFleet(spec.Fleet, seed), seed, nil)
}

// PrepareSubset builds only the fleet members keep selects, preserving each
// member's identity: a kept job carries the same id ("job-N"), topology,
// policies, and injection-schedule seed it would have in the full fleet.
// That invariant is what lets a cluster shard a scenario: every
// mycroft-serve peer calls PrepareSubset with the same spec and seed but
// its own placement predicate, and the union of the shards is
// byte-identical to one engine hosting everything. keep == nil keeps all;
// a peer that owns no members gets an empty (but valid) Service.
func PrepareSubset(spec Spec, seed int64, keep func(index int, id string) bool) (*Prepared, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = spec.Seed
	}
	if seed == 0 {
		seed = 1
	}
	return prepare(spec, resolveFleet(spec.Fleet, seed), seed, keep)
}

// prepare builds the shared Service for an already-resolved fleet,
// hosting only the members keep selects (nil keeps all). Per-member
// identity is derived from the original fleet index regardless of the
// subset, so shards agree with the full fleet.
func prepare(spec Spec, jobs []jobSpec, seed int64, keep func(index int, id string) bool) (*Prepared, error) {
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: seed})
	p := &Prepared{Spec: spec, Seed: seed, Service: svc}
	for i, js := range jobs {
		id := fmt.Sprintf("job-%d", i)
		if keep != nil && !keep(i, id) {
			continue
		}
		h, err := svc.AddJob(mycroft.JobID(id), jobOptions(js))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: job %d: %w", spec.Name, i, err)
		}
		if err := attachPolicies(spec, i, svc, h); err != nil {
			return nil, err
		}
		p.Handles = append(p.Handles, h)
		p.jobs = append(p.jobs, js)
		p.plans = append(p.plans, schedule(spec, i, mix(seed, int64(i)), h))
		scheduleFeeds(spec, i, svc, h)
		p.indices = append(p.indices, i)
	}
	return p, nil
}

// Start launches every hosted fleet member.
func (p *Prepared) Start() { p.Service.Start() }

// Horizon is how much virtual time the scenario runs for.
func (p *Prepared) Horizon() time.Duration { return p.Spec.runFor() }

// Collect builds the per-job results at the current virtual time.
func (p *Prepared) Collect() []JobResult {
	out := make([]JobResult, 0, len(p.jobs))
	for i, js := range p.jobs {
		out = append(out, collect(js, p.indices[i], p.Service, p.Handles[i], p.plans[i]))
	}
	return out
}

// MustRun is Run for known-good specs (the built-in library).
func MustRun(spec Spec, seed int64) *Result {
	res, err := Run(spec, seed)
	if err != nil {
		panic(err)
	}
	return res
}

// fillSeverity applies the campaign-tuned per-kind severity when the spec
// left it unset, mirroring experiments.RunCase.
func fillSeverity(s faults.Spec) faults.Spec {
	if s.Severity == 0 {
		s.Severity = experiments.SeverityFor(s.Kind)
	}
	return s
}

// attachPolicies arms the remediate stanzas targeting one fleet member.
func attachPolicies(spec Spec, idx int, svc *mycroft.Service, h *mycroft.JobHandle) error {
	for _, rem := range spec.Remediate {
		if rem.Job != -1 && rem.Job != idx {
			continue
		}
		if err := svc.AttachPolicy(h.ID, rem.policy()); err != nil {
			return fmt.Errorf("scenario %s: job %d: %w", spec.Name, idx, err)
		}
	}
	return nil
}

// jobOptions maps one resolved fleet member to the service job options.
func jobOptions(js jobSpec) mycroft.JobOptions {
	opts := mycroft.JobOptions{Topo: js.Topo.Config(), CommHeavy: js.CommHeavy}
	if js.Window > 0 {
		opts.Backend.Window = js.Window.D()
	}
	if js.MaxSampled > 0 {
		opts.Backend.MaxSampled = js.MaxSampled
	}
	if js.Rearm > 0 {
		opts.Backend.RearmDelay = js.Rearm.D()
	}
	if js.CheckpointEvery > 0 || js.UploadLatency > 0 || js.NoTracing {
		profile := experiments.ComputeHeavy
		if js.CommHeavy {
			profile = experiments.CommHeavy
		}
		tc := experiments.JobConfig(js.Topo.Config(), profile)
		tc.CheckpointEvery = js.CheckpointEvery
		if js.UploadLatency > 0 {
			tc.Collector.UploadLatency = js.UploadLatency.D()
		}
		tc.DisableTracing = js.NoTracing
		opts.Train = &tc
	}
	return opts
}

// scheduleFeeds arms one fleet member's synthetic channel feeds (the
// logs:/timings: stanzas) on the engine clock. Every batch lands through
// the same Service ingest path external agents use, so analysis, events,
// fusion and metrics all fire exactly as they would in production.
func scheduleFeeds(spec Spec, idx int, svc *mycroft.Service, h *mycroft.JobHandle) {
	eng := h.Job.Eng
	world := h.WorldSize()
	for _, lg := range spec.Logs {
		if lg.Job != -1 && lg.Job != idx {
			continue
		}
		lg := lg
		count := lg.Count
		if count <= 0 {
			count = 1
		}
		every := lg.Every.D()
		if every <= 0 {
			every = time.Second
		}
		for rep := 0; rep < count; rep++ {
			eng.After(lg.At.D()+time.Duration(rep)*every, func() {
				var lines []mycroft.LogLine
				if lg.Rank < 0 {
					for r := 0; r < world; r++ {
						lines = append(lines, mycroft.LogLine{Rank: mycroft.Rank(r), Level: lg.Level, Text: lg.Text})
					}
				} else {
					lines = []mycroft.LogLine{{Rank: mycroft.Rank(lg.Rank), Level: lg.Level, Text: lg.Text}}
				}
				svc.IngestLogs(h.ID, lines)
			})
		}
	}
	for _, tm := range spec.Timings {
		if tm.Job != -1 && tm.Job != idx {
			continue
		}
		tm := tm
		period := tm.Period.D()
		straggles := tm.Factor > 1
		for i := 0; i < tm.Count; i++ {
			iter := i
			// Healthy ranks complete iteration i on cadence; the straggler
			// shares the batch until its onset, then falls behind on its own
			// stretched clock.
			eng.After(tm.Start.D()+time.Duration(i+1)*period, func() {
				var batch []mycroft.IterationSample
				for r := 0; r < world; r++ {
					if straggles && r == tm.Rank && iter >= tm.After {
						continue
					}
					batch = append(batch, mycroft.IterationSample{Rank: mycroft.Rank(r), Iter: iter})
				}
				svc.IngestTimings(h.ID, batch)
			})
			if straggles && iter >= tm.After {
				slow := time.Duration(float64(period) * tm.Factor)
				at := tm.Start.D() + time.Duration(tm.After)*period + time.Duration(iter-tm.After+1)*slow
				eng.After(at, func() {
					svc.IngestTimings(h.ID, []mycroft.IterationSample{{Rank: mycroft.Rank(tm.Rank), Iter: iter}})
				})
			}
		}
	}
}

// schedule compiles one job's timed schedule — explicit events targeting
// it, then its chaos samples — onto the handle, and returns the
// time-ordered injection plan.
func schedule(spec Spec, idx int, jobSeed int64, h *mycroft.JobHandle) faults.Plan {
	var plan, recoveries faults.Plan
	backendRunning := true
	eng := h.Job.Eng
	for _, ev := range spec.Events {
		if ev.Job != -1 && ev.Job != idx {
			continue
		}
		switch ev.Action {
		case ActInject:
			plan = append(plan, fillSeverity(ev.Fault.spec(ev.At)))
		case ActRecover:
			recoveries = append(recoveries, ev.Fault.spec(ev.At))
		case ActBackendStop:
			eng.After(ev.At.D(), func() {
				if backendRunning {
					backendRunning = false
					h.Backend.Stop()
				}
			})
		case ActBackendStart:
			eng.After(ev.At.D(), func() {
				if !backendRunning {
					backendRunning = true
					h.Backend.Start()
				}
			})
		case ActCollectorStop:
			eng.After(ev.At.D(), func() {
				for _, a := range h.Job.Agents {
					a.Stop()
				}
			})
		}
	}
	if spec.Chaos != nil {
		rng := rand.New(rand.NewSource(mix(jobSeed, 0x6368616f73))) // "chaos"
		cp := spec.Chaos.plan(rng, h.WorldSize(), spec.runFor())
		for _, s := range cp.inject {
			plan = append(plan, fillSeverity(s))
		}
		recoveries = append(recoveries, cp.recover...)
	}
	plan = plan.Sorted()
	h.InjectPlan(plan)
	for _, s := range recoveries.Sorted() {
		h.Recover(s)
	}
	return plan
}

// collect builds the per-job result after the horizon.
func collect(js jobSpec, idx int, svc *mycroft.Service, h *mycroft.JobHandle, plan faults.Plan) JobResult {
	jr := JobResult{
		Index: idx, JobID: string(h.ID), Template: js.Template, Topo: js.Topo, CommHeavy: js.CommHeavy,
		WorldSize: h.WorldSize(), Iterations: h.Job.IterationsDone(), Records: h.RecordsIngested(),
		injected: plan, triggers: h.Triggers(), reports: h.Reports(), remediations: h.RemediationLog(),
	}
	if stats, err := svc.ChannelStats(h.ID); err == nil {
		jr.channels = stats
		for _, c := range stats.Channels {
			if c.Anomalies == 0 && c.Reports == 0 {
				continue
			}
			jr.Channels = append(jr.Channels, fmt.Sprintf("%s: ingested=%d anomalies=%d reports=%d",
				c.Channel, c.Ingested, c.Anomalies, c.Reports))
		}
	}
	for _, s := range plan {
		jr.Injected = append(jr.Injected, s.String())
	}
	for _, a := range jr.remediations {
		jr.Remediations = append(jr.Remediations, a.String())
	}
	for _, tr := range jr.triggers {
		jr.Triggers = append(jr.Triggers, tr.String())
	}
	for _, rep := range jr.reports {
		jr.Reports = append(jr.Reports, rep.String())
	}
	if first, ok := plan.First(); ok {
		faultAt := sim.Time(first)
		for _, tr := range jr.triggers {
			if tr.At >= faultAt {
				jr.DetectLatency = Dur(tr.At.Sub(faultAt))
				break
			}
		}
		for _, rep := range jr.reports {
			if rep.AnalyzedAt >= faultAt {
				jr.RCALatency = Dur(rep.AnalyzedAt.Sub(faultAt))
				break
			}
		}
		jr.Accuracy = accuracy(plan, jr.reports)
	}
	return jr
}

// runJob runs one fleet member on its own single-job Service.
func runJob(spec Spec, js jobSpec, idx int, seed int64, opts RunOptions) (JobResult, error) {
	svc := mycroft.NewService(mycroft.ServiceOptions{Seed: seed})
	h, err := svc.AddJob(mycroft.JobID(fmt.Sprintf("job-%d", idx)), jobOptions(js))
	if err != nil {
		return JobResult{}, err
	}
	if err := attachPolicies(spec, idx, svc, h); err != nil {
		return JobResult{}, err
	}
	plan := schedule(spec, idx, seed, h)
	scheduleFeeds(spec, idx, svc, h)
	closeRec, err := record(svc, []*mycroft.JobHandle{h}, opts.RecordDir)
	if err != nil {
		return JobResult{}, err
	}
	svc.Start()
	svc.Run(spec.runFor())
	if err := closeRec(); err != nil {
		return JobResult{}, err
	}
	defer svc.Stop()
	return collect(js, idx, svc, h, plan), nil
}

// accuracy scores the run: the fraction of injections for which some verdict
// analyzed after the injection satisfies faults.Expect (category, and the
// suspect rank when the fault localizes).
func accuracy(plan faults.Plan, reports []core.Report) float64 {
	if len(plan) == 0 {
		return 0
	}
	hit := 0
	for _, s := range plan {
		exp := faults.Expect(s.Kind)
		for _, rep := range reports {
			if rep.AnalyzedAt < sim.Time(s.At) {
				continue
			}
			if exp.CategoryOK(rep.Category) && (!exp.LocalizeRank || rep.Suspect == s.Rank) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(plan))
}

// injectionAt returns the job's i-th time-ordered injection.
func (j JobResult) injectionAt(i int) (faults.Spec, bool) {
	if i < 0 || i >= len(j.injected) {
		return faults.Spec{}, false
	}
	return j.injected[i], true
}
