package scenario

import (
	"math/rand"
)

// jobSpec is one resolved fleet member: the shape the runner builds a
// mycroft.System from.
type jobSpec struct {
	Template        string
	Topo            Topo
	CommHeavy       bool
	CheckpointEvery int
	UploadLatency   Dur
	Window          Dur
	MaxSampled      int
	Rearm           Dur
	NoTracing       bool
}

// resolveFleet expands the fleet declaration into concrete job specs. For a
// generated fleet, templates are sampled by weight from an rng derived from
// the scenario seed, so the same seed always produces the same fleet.
func resolveFleet(f Fleet, seed int64) []jobSpec {
	if f.Gen == nil {
		t := f.Topo
		if t.IsZero() {
			t = DefaultTopo
		}
		return []jobSpec{{
			Template: "default", Topo: t, CommHeavy: f.CommHeavy,
			CheckpointEvery: f.CheckpointEvery, UploadLatency: f.UploadLatency,
			Window: f.Window, MaxSampled: f.MaxSampled, Rearm: f.Rearm,
			NoTracing: f.NoTracing,
		}}
	}
	rng := rand.New(rand.NewSource(mix(seed, 0x666c656574))) // "fleet"
	weights := make([]int, len(f.Gen.Templates))
	for i, tpl := range f.Gen.Templates {
		weights[i] = tpl.Weight
	}
	out := make([]jobSpec, 0, f.Gen.Jobs)
	for i := 0; i < f.Gen.Jobs; i++ {
		tpl := f.Gen.Templates[pickWeighted(rng, weights)]
		out = append(out, jobSpec{
			// The fleet-wide knob applies to every member, like the other
			// fleet-level overrides; a template can also opt in itself.
			Template: tpl.Name, Topo: tpl.Topo, CommHeavy: tpl.CommHeavy || f.CommHeavy,
			CheckpointEvery: f.CheckpointEvery, UploadLatency: f.UploadLatency,
			Window: f.Window, MaxSampled: f.MaxSampled, Rearm: f.Rearm,
			NoTracing: f.NoTracing,
		})
	}
	return out
}

// pickWeighted draws an index with probability proportional to its weight.
// Both the fleet sampler and the chaos kind sampler use it, so the two
// cannot diverge. Weights must be positive (Validate enforces it).
func pickWeighted(rng *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for i, w := range weights {
		n -= w
		if n < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// mix folds a salt into a seed (splitmix64 finalizer) so derived streams
// (fleet sampling, per-job chaos) are decorrelated but fully determined by
// the scenario seed.
func mix(seed, salt int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(salt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
