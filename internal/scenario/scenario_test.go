package scenario

import (
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mycroft"
	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/remedy"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// TestBuiltinsPass runs every shipped scenario at its default seed and
// checks (a) its own assertions pass and (b) for every injected fault, some
// verdict's category is one the fault's expectation accepts — the library
// is the regression suite for the whole detection pipeline.
func TestBuiltinsPass(t *testing.T) {
	builtins := Builtins()
	if len(builtins) < 12 {
		t.Fatalf("library has %d scenarios, want >= 12", len(builtins))
	}
	for _, spec := range builtins {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(spec, 0)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Pass {
				t.Fatalf("scenario failed:\n%s", res.Render())
			}
			for _, j := range res.Jobs {
				for _, inj := range j.injected {
					exp := faults.Expect(inj.Kind)
					ok := false
					for _, rep := range j.reports {
						if exp.CategoryOK(rep.Category) {
							ok = true
							break
						}
					}
					// Recovered faults may legitimately outrun diagnosis
					// (the backend is muted or the fault healed first); hard
					// single-fault scenarios must always be categorized.
					if !ok && len(j.injected) == 1 {
						t.Errorf("job %d: no verdict with category in %v for %v:\n%s",
							j.Index, exp.Categories, inj, res.Render())
					}
				}
			}
		})
	}
}

// TestBuiltinsCoverAllKinds: the library exercises the full fault catalog.
func TestBuiltinsCoverAllKinds(t *testing.T) {
	covered := map[faults.Kind]bool{}
	for _, s := range Builtins() {
		for _, k := range s.FaultKinds() {
			covered[k] = true
		}
	}
	for _, k := range faults.All() {
		if !covered[k] {
			t.Errorf("no builtin scenario covers fault kind %q", k)
		}
	}
}

// TestRunDeterministic: same spec and seed render byte-identical reports —
// the property every stress campaign leans on.
func TestRunDeterministic(t *testing.T) {
	spec, ok := Lookup("fleet-chaos")
	if !ok {
		t.Fatal("fleet-chaos builtin missing")
	}
	a := MustRun(spec, 3).Render()
	b := MustRun(spec, 3).Render()
	if a != b {
		t.Fatalf("same seed diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
	c := MustRun(spec, 4).Render()
	if a == c {
		t.Fatal("different seeds produced identical chaos runs (rng not wired through)")
	}
}

func TestChaosPlanDeterministic(t *testing.T) {
	c := Chaos{Faults: 3, Cascade: 0.5, Recover: true}
	p1 := c.plan(rand.New(rand.NewSource(9)), 16, 90*time.Second)
	p2 := c.plan(rand.New(rand.NewSource(9)), 16, 90*time.Second)
	if p1.inject.String() != p2.inject.String() || p1.recover.String() != p2.recover.String() {
		t.Fatalf("chaos plan not deterministic:\n%v\n%v", p1.inject, p2.inject)
	}
	if len(p1.inject) < 3 {
		t.Fatalf("wanted >= 3 faults, got %v", p1.inject)
	}
	for _, s := range p1.inject {
		if int(s.Rank) < 0 || int(s.Rank) >= 16 {
			t.Errorf("rank %d out of world", s.Rank)
		}
	}
	for _, r := range p1.recover {
		if !faults.Recoverable(r.Kind) {
			t.Errorf("recovery scheduled for unrecoverable %v", r.Kind)
		}
	}
}

// TestChaosDropsPastHorizonFaults: min-gap spacing must not produce phantom
// injections scheduled beyond the run horizon (they would never fire yet
// would dilute accuracy and mislead assertions).
func TestChaosDropsPastHorizonFaults(t *testing.T) {
	c := Chaos{Faults: 8, Start: Dur(15 * time.Second), End: Dur(20 * time.Second), MinGap: Dur(10 * time.Second)}
	runFor := 60 * time.Second
	p := c.plan(rand.New(rand.NewSource(3)), 8, runFor)
	if len(p.inject) == 0 {
		t.Fatal("everything dropped")
	}
	if len(p.inject) >= 8 {
		t.Fatalf("8 faults with 10s gaps cannot fit before 60s, got %d", len(p.inject))
	}
	for _, s := range p.inject {
		if s.At >= runFor {
			t.Errorf("injection %v scheduled past the %v horizon", s, runFor)
		}
	}
}

func TestFleetGenWeightedSampling(t *testing.T) {
	f := Fleet{Gen: &FleetGen{
		Jobs: 40,
		Templates: []Template{
			{Name: "a", Weight: 3, Topo: DefaultTopo},
			{Name: "b", Weight: 1, Topo: Topo{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 2, DP: 4}},
		},
	}}
	jobs := resolveFleet(f, 11)
	if len(jobs) != 40 {
		t.Fatalf("got %d jobs, want 40", len(jobs))
	}
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.Template]++
	}
	if counts["a"]+counts["b"] != 40 || counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("bad template sampling: %v", counts)
	}
	if counts["a"] <= counts["b"] {
		t.Errorf("weight-3 template drew %d <= weight-1's %d", counts["a"], counts["b"])
	}
	again := resolveFleet(f, 11)
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("fleet generation not deterministic at job %d", i)
		}
	}
}

// TestSpecJSONRoundTrip: every builtin survives marshal → Parse unchanged.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range Builtins() {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", spec.Name, err)
		}
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", spec.Name, err)
		}
		if string(data) != string(data2) {
			t.Errorf("%s: round trip changed the spec:\n%s\n%s", spec.Name, data, data2)
		}
	}
}

func TestDurParsing(t *testing.T) {
	var d Dur
	if err := json.Unmarshal([]byte(`"1m30s"`), &d); err != nil || d.D() != 90*time.Second {
		t.Fatalf(`"1m30s" -> %v, %v`, d, err)
	}
	if err := json.Unmarshal([]byte(`5000000000`), &d); err != nil || d.D() != 5*time.Second {
		t.Fatalf("5e9 ns -> %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	inject := func(kind faults.Kind, rank int) []Event {
		return []Event{{At: Dur(time.Second), Action: ActInject, Fault: &Fault{Kind: kind, Rank: rank}}}
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing name", Spec{}, "missing name"},
		{"bad topo", Spec{Name: "x", Fleet: Fleet{Topo: Topo{Nodes: 2, GPUsPerNode: 4, TP: 3, PP: 2, DP: 2}}}, "does not cover"},
		{"unknown kind", Spec{Name: "x", Events: inject("warp-core-breach", 0)}, "unknown fault kind"},
		{"rank out of range", Spec{Name: "x", Events: inject(faults.NICDown, 99)}, "out of range"},
		{"unknown action", Spec{Name: "x", Events: []Event{{Action: "explode"}}}, "unknown action"},
		{"recover unrecoverable", Spec{Name: "x", Events: []Event{{Action: ActRecover, Fault: &Fault{Kind: faults.ProxyCrash}}}}, "not recoverable"},
		{"inject without fault", Spec{Name: "x", Events: []Event{{Action: ActInject}}}, "needs a fault"},
		{"checkpoint without phase", Spec{Name: "x", Events: inject(faults.CheckpointStall, 0)}, "checkpoint_every"},
		{"bad assertion kind", Spec{Name: "x", Assertions: []Assertion{{Kind: "vibes"}}}, "unknown kind"},
		{"assertion event range", Spec{Name: "x", Events: inject(faults.NICDown, 0), Assertions: []Assertion{{Kind: AssertDetected, Event: 5}}}, "out of range"},
		{"min without value", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertMinReports}}}, "min > 0"},
		{"gen without templates", Spec{Name: "x", Fleet: Fleet{Gen: &FleetGen{Jobs: 2}}}, "needs templates"},
		{"gen bad weight", Spec{Name: "x", Fleet: Fleet{Gen: &FleetGen{Jobs: 2, Templates: []Template{{Name: "t", Topo: DefaultTopo}}}}}, "weight"},
		{"chaos bad kind", Spec{Name: "x", Chaos: &Chaos{Kinds: []WeightedKind{{Kind: "nope", Weight: 1}}}}, "unknown"},
		{"chaos bad cascade", Spec{Name: "x", Chaos: &Chaos{Cascade: 2}}, "cascade"},
		{"negative severity", Spec{Name: "x", Events: []Event{{Action: ActInject, Fault: &Fault{Kind: faults.NICDegrade, Rank: 0, Severity: -0.5}}}}, "negative severity"},
		{"negative fault duration", Spec{Name: "x", Events: []Event{{Action: ActInject, Fault: &Fault{Kind: faults.NICFlap, Rank: 0, Duration: Dur(-time.Second)}}}}, "negative duration"},
		{"chaos checkpoint without phase", Spec{Name: "x", Chaos: &Chaos{Kinds: []WeightedKind{{Kind: faults.CheckpointStall, Weight: 1}}}}, "checkpoint_every"},
		{"chaos end before default start", Spec{Name: "x", Chaos: &Chaos{End: Dur(10 * time.Second)}}, "does not exceed start"},
		{"chaos window past horizon", Spec{Name: "x", RunFor: Dur(30 * time.Second), Chaos: &Chaos{Start: Dur(100 * time.Second), End: Dur(101 * time.Second)}}, "beyond run_for"},
		{"chaos end past horizon", Spec{Name: "x", RunFor: Dur(60 * time.Second), Chaos: &Chaos{End: Dur(120 * time.Second)}}, "beyond run_for"},
		{"negative fleet override", Spec{Name: "x", Fleet: Fleet{UploadLatency: Dur(-time.Second)}}, "negative fleet"},
		{"negative max sampled", Spec{Name: "x", Fleet: Fleet{MaxSampled: -1}}, "negative fleet"},
		{"negative chaos spacing", Spec{Name: "x", Chaos: &Chaos{MinGap: Dur(-5 * time.Second)}}, "negative spacing"},
		{"event past horizon", Spec{Name: "x", RunFor: Dur(60 * time.Second),
			Events: []Event{{At: Dur(70 * time.Second), Action: ActInject, Fault: &Fault{Kind: faults.NICDown, Rank: 1}}}}, "beyond run_for"},
		{"negative assertion within", Spec{Name: "x", Events: inject(faults.NICDown, 0), Assertions: []Assertion{{Kind: AssertDetected, Within: Dur(-10 * time.Second)}}}, "negative within"},
		{"suspect rank out of range", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertSuspect, Rank: 99}}}, "suspect rank 99 out of range"},
		{"chain without min", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertChain}}}, "min > 0"},
		{"victims without bound", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertVictims}}}, "min > 0 or victims"},
		{"victim rank out of range", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertVictims, Victims: []int{99}}}}, "victim rank 99 out of range"},
		{"assertion targets cascade-only injection", Spec{Name: "x", Chaos: &Chaos{Faults: 1, Cascade: 0.5},
			Assertions: []Assertion{{Kind: AssertDetected, Event: 1}}}, "out of range"},
		{"assertion targets horizon-dropped injection", Spec{Name: "x", RunFor: Dur(60 * time.Second),
			Chaos:      &Chaos{Faults: 8, Start: Dur(15 * time.Second), End: Dur(20 * time.Second), MinGap: Dur(10 * time.Second)},
			Assertions: []Assertion{{Kind: AssertDetected, Event: 7}}}, "out of range"},
		{"negative rearm", Spec{Name: "x", Fleet: Fleet{Rearm: Dur(-time.Second)}}, "negative fleet"},
		{"remediate without rules", Spec{Name: "x", Remediate: []Remediate{{}}}, "no rules"},
		{"remediate unknown action", Spec{Name: "x", Remediate: []Remediate{{Rules: []RemedyRule{{Action: "percussive-maintenance"}}}}}, "unknown action"},
		{"remediate job out of range", Spec{Name: "x", Remediate: []Remediate{{Job: 3, Rules: []RemedyRule{{Action: remedy.ActRecoverFault}}}}}, "out of range"},
		{"remediate duplicate job", Spec{Name: "x", Remediate: []Remediate{
			{Rules: []RemedyRule{{Action: remedy.ActRecoverFault}}},
			{Rules: []RemedyRule{{Action: remedy.ActEscalate}}},
		}}, "already has a policy"},
		{"remediation none with min", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertRemediation, None: true, Min: 2}}}, "both none and min"},
		{"channel none with min", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertChannel, Channel: "log", None: true, Min: 1}}}, "both none and min"},
		{"modality confidence out of range", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertModality, Channel: "log", MinConfidence: 1.5}}}, "outside [0, 1]"},
		{"modality unknown outcome", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertModality, Channel: "log", Outcome: "vibes"}}}, "unknown fusion outcome"},
		{"logs without text", Spec{Name: "x", Logs: []Logs{{At: Dur(time.Second), Rank: 0}}}, "missing text"},
		{"logs rank out of range", Spec{Name: "x", Logs: []Logs{{At: Dur(time.Second), Rank: 99, Text: "boom"}}}, "out of range"},
		{"logs past horizon", Spec{Name: "x", RunFor: Dur(30 * time.Second), Logs: []Logs{{At: Dur(40 * time.Second), Rank: 0, Text: "late"}}}, "beyond run_for"},
		{"timings zero period", Spec{Name: "x", Timings: []Timings{{Start: Dur(time.Second), Count: 5}}}, "period must be > 0"},
		{"timings zero count", Spec{Name: "x", Timings: []Timings{{Start: Dur(time.Second), Period: Dur(time.Second)}}}, "count must be > 0"},
		{"timings sub-unit factor", Spec{Name: "x", Timings: []Timings{{Start: Dur(time.Second), Period: Dur(time.Second), Count: 5, Rank: 1, Factor: 0.5}}}, "factor must be >= 1"},
		{"timings straggler rank out of range", Spec{Name: "x", Timings: []Timings{{Start: Dur(time.Second), Period: Dur(time.Second), Count: 5, Rank: 99, Factor: 2}}}, "out of range"},
		{"remediation unknown action", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertRemediation, Action: "warp"}}}, "unknown action"},
		{"remediation unknown outcome", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertRemediation, Outcomes: []remedy.Outcome{"shrugged"}}}}, "unknown outcome"},
		{"recovered rank out of range", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertRecovered, Rank: 99}}}, "out of range"},
		{"remediation rank out of range", Spec{Name: "x", Assertions: []Assertion{{Kind: AssertRemediation, Rank: 99}}}, "out of range"},
		{"assertion event unreachable for its job", Spec{
			Name:  "x",
			Fleet: Fleet{Gen: &FleetGen{Jobs: 2, Templates: []Template{{Name: "t", Weight: 1, Topo: DefaultTopo}}}},
			Events: []Event{
				{At: Dur(time.Second), Action: ActInject, Job: 0, Fault: &Fault{Kind: faults.NICDown, Rank: 0}},
				{At: Dur(2 * time.Second), Action: ActInject, Job: 1, Fault: &Fault{Kind: faults.NICDown, Rank: 0}},
			},
			Assertions: []Assertion{{Kind: AssertDetected, Job: 0, Event: 1}},
		}, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil {
				t.Fatalf("validated: %+v", c.spec)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if _, err := Run(c.spec, 1); err == nil {
				t.Fatal("Run accepted an invalid spec")
			}
		})
	}
}

// TestCollectorStopEvent: killing the trace agents freezes cloud-DB ingest
// — record counts must stop growing once the agents are down.
func TestCollectorStopEvent(t *testing.T) {
	base := Spec{Name: "baseline", RunFor: Dur(40 * time.Second)}
	healthy := MustRun(base, 1).Jobs[0].Records
	stopped := Spec{
		Name:   "collector-outage",
		RunFor: Dur(40 * time.Second),
		Events: []Event{{At: Dur(10 * time.Second), Action: ActCollectorStop}},
	}
	got := MustRun(stopped, 1).Jobs[0].Records
	if got == 0 {
		t.Fatal("no records before the agents stopped")
	}
	if got >= healthy {
		t.Fatalf("ingest did not freeze: %d records with agents stopped at 10s vs %d healthy", got, healthy)
	}
}

// TestBackendStopEvent: stopping the analysis backend during the fault
// window suppresses detection — the operational-change actions really act.
func TestBackendStopEvent(t *testing.T) {
	spec := Spec{
		Name:   "backend-outage",
		RunFor: Dur(60 * time.Second),
		Events: []Event{
			{At: Dur(10 * time.Second), Action: ActBackendStop},
			{At: Dur(15 * time.Second), Action: ActInject, Fault: &Fault{Kind: faults.NICDown, Rank: 5}},
		},
	}
	res := MustRun(spec, 1)
	if n := len(res.Jobs[0].triggers); n != 0 {
		t.Fatalf("stopped backend still fired %d triggers", n)
	}
	// Restarting it mid-run restores detection.
	spec.Events = append(spec.Events, Event{At: Dur(30 * time.Second), Action: ActBackendStart})
	res = MustRun(spec, 1)
	if n := len(res.Jobs[0].triggers); n == 0 {
		t.Fatal("restarted backend never fired")
	}
}

// TestChainVictimAssertionEvaluation pins the expect_chain/expect_victims
// failure messages against a fabricated job result.
func TestChainVictimAssertionEvaluation(t *testing.T) {
	j := &JobResult{reports: []core.Report{{
		Chain:   []core.Hop{{Comm: 1, Suspect: 2, Via: core.ViaMinOp}},
		Victims: []topo.Rank{3},
	}}}
	if msg := checkJob(Assertion{Kind: AssertChain, Min: 1}, j); msg != "" {
		t.Fatalf("1-hop chain rejected: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertChain, Min: 2}, j); !strings.Contains(msg, "chain") {
		t.Fatalf("chain failure message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertVictims, Min: 1, Victims: []int{3}}, j); msg != "" {
		t.Fatalf("matching victims rejected: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertVictims, Min: 2}, j); !strings.Contains(msg, "victims") {
		t.Fatalf("victims count failure message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertVictims, Victims: []int{4}}, j); !strings.Contains(msg, "lacks rank 4") {
		t.Fatalf("victims membership failure message: %q", msg)
	}
	empty := &JobResult{}
	if msg := checkJob(Assertion{Kind: AssertVictims, Min: 1}, empty); !strings.Contains(msg, "no report") {
		t.Fatalf("empty job failure message: %q", msg)
	}
}

// TestRemediationAssertionEvaluation pins expect_remediation and
// expect_recovered semantics against a fabricated audit log.
func TestRemediationAssertionEvaluation(t *testing.T) {
	at := func(s int) sim.Time { return sim.Time(time.Duration(s) * time.Second) }
	j := &JobResult{
		remediations: []remedy.Attempt{
			{Action: remedy.Action{Kind: remedy.ActRecoverFault, Rank: 5}, Outcome: remedy.OutcomeFailed, ResolvedAt: at(30)},
			{Action: remedy.Action{Kind: remedy.ActRecoverFault, Rank: 5}, Outcome: remedy.OutcomeSucceeded, ResolvedAt: at(50)},
		},
		triggers: []core.Trigger{{Rank: 5, At: at(25)}},
		reports:  []core.Report{{Suspect: 5, AnalyzedAt: at(30)}},
	}
	if msg := checkJob(Assertion{Kind: AssertRemediation, Rank: -1}, j); msg != "" {
		t.Fatalf("any-rank assertion failed: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertRemediation, Outcomes: []remedy.Outcome{remedy.OutcomeSucceeded}, Rank: 5}, j); msg != "" {
		t.Fatalf("succeeded-attempt assertion failed: %s", msg)
	}
	// Rank is exact: 0 names rank 0, which has no attempts here.
	if msg := checkJob(Assertion{Kind: AssertRemediation, Rank: 0}, j); msg == "" {
		t.Fatal("rank-0 assertion matched attempts on rank 5")
	}
	if msg := checkJob(Assertion{Kind: AssertRemediation, Rank: -1, Min: 3}, j); !strings.Contains(msg, "want >= 3") {
		t.Fatalf("min failure message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertRemediation, Rank: -1, Action: remedy.ActIsolateRank}, j); msg == "" {
		t.Fatal("action filter matched nothing yet passed")
	}
	if msg := checkJob(Assertion{Kind: AssertRemediation, Rank: -1, None: true}, j); !strings.Contains(msg, "want none") {
		t.Fatalf("none failure message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertRemediation, Rank: -1, None: true, Action: remedy.ActRestartJob}, j); msg != "" {
		t.Fatalf("none with unmatched filter failed: %s", msg)
	}
	// Recovered: the pre-success trigger/report must not count against the
	// quiet window; a post-success re-detection must.
	if msg := checkJob(Assertion{Kind: AssertRecovered, Rank: 5}, j); msg != "" {
		t.Fatalf("recovered assertion failed: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertRecovered, Rank: 3}, j); !strings.Contains(msg, "no succeeded remediation") {
		t.Fatalf("wrong-rank failure message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertRecovered, Rank: 0}, j); !strings.Contains(msg, "no succeeded remediation") {
		t.Fatalf("rank 0 must mean rank 0, not any: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertRecovered, Rank: -1}, j); msg != "" {
		t.Fatalf("any-rank recovered assertion failed: %s", msg)
	}
	j.triggers = append(j.triggers, core.Trigger{Rank: 5, At: at(60)})
	if msg := checkJob(Assertion{Kind: AssertRecovered, Rank: 5}, j); !strings.Contains(msg, "re-triggered") {
		t.Fatalf("post-verification trigger not caught: %q", msg)
	}
	j.triggers = j.triggers[:1]
	j.reports = append(j.reports, core.Report{Suspect: 5, AnalyzedAt: at(61)})
	if msg := checkJob(Assertion{Kind: AssertRecovered, Rank: 5}, j); !strings.Contains(msg, "re-detected") {
		t.Fatalf("post-verification report not caught: %q", msg)
	}
}

// TestUnknownModalityTypedError: an expect_channel/expect_modality
// assertion naming a channel outside the modality vocabulary fails
// validation with the typed UnknownModalityError, whose message (and
// fields) name the valid set — the error `mycroft-scenario validate -all`
// surfaces for a typo'd spec.
func TestUnknownModalityTypedError(t *testing.T) {
	cases := []struct {
		name string
		a    Assertion
		bad  string
	}{
		{"expect_channel typo", Assertion{Kind: AssertChannel, Channel: "logz"}, "logz"},
		{"expect_channel empty", Assertion{Kind: AssertChannel}, ""},
		{"expect_modality typo", Assertion{Kind: AssertModality, Channel: "telepathy"}, "telepathy"},
		{"expect_modality wrong case", Assertion{Kind: AssertModality, Channel: "Tracepoint"}, "Tracepoint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := Spec{Name: "x", Assertions: []Assertion{c.a}}
			err := spec.Validate()
			if err == nil {
				t.Fatalf("unknown channel %q validated", c.bad)
			}
			var ume *UnknownModalityError
			if !errors.As(err, &ume) {
				t.Fatalf("error %T is not an UnknownModalityError: %v", err, err)
			}
			if ume.Got != c.bad {
				t.Errorf("Got = %q, want %q", ume.Got, c.bad)
			}
			if len(ume.Valid) != len(core.Modalities()) {
				t.Errorf("Valid = %v, want the full modality set %v", ume.Valid, core.Modalities())
			}
			for _, m := range core.Modalities() {
				if !strings.Contains(err.Error(), string(m)) {
					t.Errorf("message %q does not name valid channel %q", err, m)
				}
			}
		})
	}
	// The whole vocabulary is accepted on both kinds.
	for _, m := range core.Modalities() {
		spec := Spec{Name: "x", Assertions: []Assertion{
			{Kind: AssertChannel, Channel: string(m), None: true},
			{Kind: AssertModality, Channel: string(m)},
		}}
		if err := spec.Validate(); err != nil {
			t.Errorf("valid channel %q rejected: %v", m, err)
		}
	}
}

// TestChannelAssertionEvaluation pins expect_channel / expect_modality /
// no-records semantics against a fabricated job result.
func TestChannelAssertionEvaluation(t *testing.T) {
	j := &JobResult{
		Records: 0,
		channels: mycroft.ChannelStatsResult{Channels: []mycroft.ChannelInfo{
			{Channel: "tracepoint", Ingested: 0, Anomalies: 0, Reports: 0},
			{Channel: "log", Ingested: 40, Anomalies: 3, Reports: 1},
			{Channel: "perf", Ingested: 120, Anomalies: 0, Reports: 0},
		}},
		reports: []core.Report{{
			Suspect: 5, Category: core.CatNetworkSendPath, Confidence: 0.9,
			Evidence: []core.Evidence{
				{Channel: core.ModalityLog, Rank: 5},
				{Channel: core.ModalityTracepoint, Rank: 5},
				{Channel: core.ModalityPerf, Rank: 2, Conflict: true},
			},
		}},
	}
	if msg := checkJob(Assertion{Kind: AssertChannel, Channel: "log", Min: 3, Reports: 1}, j); msg != "" {
		t.Fatalf("log channel expectation failed: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertChannel, Channel: "log", Min: 4}, j); !strings.Contains(msg, "want >= 4") {
		t.Fatalf("anomaly-min failure message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertChannel, Channel: "log", Reports: 2}, j); !strings.Contains(msg, "want >= 2") {
		t.Fatalf("report-min failure message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertChannel, Channel: "tracepoint", None: true}, j); msg != "" {
		t.Fatalf("quiet tracepoint channel rejected: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertChannel, Channel: "log", None: true}, j); !strings.Contains(msg, "not quiet") {
		t.Fatalf("noisy-channel none failure message: %q", msg)
	}
	// Perf ingested samples but found nothing: quiet means no findings, not
	// no traffic.
	if msg := checkJob(Assertion{Kind: AssertChannel, Channel: "perf", None: true}, j); msg != "" {
		t.Fatalf("perf channel with ingest but no findings rejected: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertModality, Channel: "log", MinConfidence: 0.8}, j); msg != "" {
		t.Fatalf("log-evidence expectation failed: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertModality, Channel: "log", MinConfidence: 0.95}, j); !strings.Contains(msg, "below") {
		t.Fatalf("confidence failure message: %q", msg)
	}
	// Conflicting evidence does not satisfy the modality expectation.
	if msg := checkJob(Assertion{Kind: AssertModality, Channel: "perf"}, j); !strings.Contains(msg, "no report") {
		t.Fatalf("conflicted perf evidence satisfied expect_modality: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertModality, Channel: "tracepoint", Outcome: core.FusionConflicted}, j); msg != "" {
		t.Fatalf("outcome filter failed: %s", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertModality, Channel: "tracepoint", Outcome: core.FusionSingle}, j); !strings.Contains(msg, "outcome") {
		t.Fatalf("outcome mismatch message: %q", msg)
	}
	if msg := checkJob(Assertion{Kind: AssertNoRecords}, j); msg != "" {
		t.Fatalf("zero-record job rejected: %s", msg)
	}
	j.Records = 7
	if msg := checkJob(Assertion{Kind: AssertNoRecords}, j); !strings.Contains(msg, "tracepoint-free") {
		t.Fatalf("record-count failure message: %q", msg)
	}
}

// TestRemediateJSONRoundTrip: the remediate stanza survives the file
// format.
func TestRemediateJSONRoundTrip(t *testing.T) {
	spec, ok := Lookup("self-heal-nic-down")
	if !ok {
		t.Fatal("no self-heal-nic-down builtin")
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Remediate) != 1 || len(back.Remediate[0].Rules) != 2 {
		t.Fatalf("remediate stanza lost: %+v", back.Remediate)
	}
	if back.Remediate[0].Rules[0].VerifyWindow != Dur(15*time.Second) {
		t.Fatalf("verify window lost: %+v", back.Remediate[0].Rules[0])
	}
	res, err := Run(back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("round-tripped scenario failed:\n%s", res.Render())
	}
}
