package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mycroft/internal/faults"
	"mycroft/internal/topo"
)

// WeightedKind weights one fault kind in the chaos sampler's distribution.
type WeightedKind struct {
	Kind   faults.Kind `json:"kind"`
	Weight int         `json:"weight"`
}

// Chaos samples an injection plan per job: fault kinds from a weighted
// distribution, ranks uniform over the job's world, times uniform over
// [Start, End] with a minimum gap. Cascades model correlated failures: with
// probability Cascade each sampled fault spawns a follow-up shortly after,
// on the same rank or the next rank in the world order. Every draw comes from an rng derived from the scenario
// seed and the job index, so N-fault stress runs reproduce exactly.
type Chaos struct {
	// Faults per job. Default 1.
	Faults int `json:"faults"`
	// Kinds weights the fault distribution. Default: the recoverable,
	// profile-agnostic kinds (nic-down, gpu-hang, gpu-slow), so multi-fault
	// runs keep making progress between injections.
	Kinds []WeightedKind `json:"kinds,omitempty"`
	// Start/End bound injection times. Defaults: 15 s to 2/3 of the run.
	Start Dur `json:"start,omitempty"`
	End   Dur `json:"end,omitempty"`
	// MinGap spaces sampled faults apart. Default 10 s. If spacing pushes a
	// sample past End it spills later; samples pushed past the run horizon
	// are dropped entirely (they could never fire, let alone be detected).
	MinGap Dur `json:"min_gap,omitempty"`
	// Cascade is the probability a fault spawns a correlated follow-up on
	// the same node within CascadeSpread. Default 0.
	Cascade       float64 `json:"cascade,omitempty"`
	CascadeSpread Dur     `json:"cascade_spread,omitempty"`
	// Recover undoes each recoverable fault RecoverAfter later (default
	// 10 s), so the job survives to expose subsequent faults.
	Recover      bool `json:"recover,omitempty"`
	RecoverAfter Dur  `json:"recover_after,omitempty"`
}

// defaultChaosKinds are safe under any workload profile and recoverable.
func defaultChaosKinds() []WeightedKind {
	return []WeightedKind{
		{Kind: faults.NICDown, Weight: 3},
		{Kind: faults.GPUHang, Weight: 2},
		{Kind: faults.GPUSlow, Weight: 2},
	}
}

// guaranteedFaults returns how many sampled injections are certain to land
// before the run horizon, for bounding assertion event indices statically:
// cascade follow-ups are probabilistic (excluded), and min-gap spacing can
// push samples past run_for where they are dropped, so the bound assumes
// the worst case of every sample landing at the window's end.
func (c Chaos) guaranteedFaults(runFor time.Duration) int {
	n := c.Faults
	if n <= 0 {
		n = 1
	}
	start, end, gap := c.window(runFor)
	// Worst case: all samples at end, spaced to end, end+gap, ...; the i-th
	// survives the horizon drop iff end + i*gap < runFor.
	if start >= runFor || end >= runFor {
		return 0
	}
	if fit := int((runFor-end-1)/gap) + 1; fit < n {
		n = fit
	}
	return n
}

func (c Chaos) validate(scen string) error {
	if c.Faults < 0 {
		return fmt.Errorf("scenario %s: chaos: negative fault count", scen)
	}
	for i, wk := range c.Kinds {
		if !knownKind(wk.Kind) {
			return fmt.Errorf("scenario %s: chaos kind %d: unknown %q", scen, i, wk.Kind)
		}
		if wk.Weight <= 0 {
			return fmt.Errorf("scenario %s: chaos kind %d (%s): weight must be > 0", scen, i, wk.Kind)
		}
	}
	if c.Cascade < 0 || c.Cascade > 1 {
		return fmt.Errorf("scenario %s: chaos: cascade %v outside [0,1]", scen, c.Cascade)
	}
	if c.Start < 0 || c.End < 0 {
		return fmt.Errorf("scenario %s: chaos: bad injection window [%v, %v]", scen, c.Start, c.End)
	}
	if c.MinGap < 0 || c.RecoverAfter < 0 || c.CascadeSpread < 0 {
		return fmt.Errorf("scenario %s: chaos: negative spacing (min_gap %v, recover_after %v, cascade_spread %v)", scen, c.MinGap, c.RecoverAfter, c.CascadeSpread)
	}
	// An explicit End must leave a non-empty window after the (possibly
	// defaulted) Start — otherwise plan() would silently widen it past the
	// user's declared bound.
	if c.End > 0 && c.End.D() <= c.effectiveStart() {
		return fmt.Errorf("scenario %s: chaos: end %v does not exceed start %v", scen, c.End, Dur(c.effectiveStart()))
	}
	return nil
}

// effectiveStart is Start with its default applied.
func (c Chaos) effectiveStart() time.Duration {
	if c.Start > 0 {
		return c.Start.D()
	}
	return 15 * time.Second
}

// window resolves the injection window and spacing with all defaults
// applied. Both the sampler and the static assertion-index bound
// (guaranteedFaults) use it, so they can never disagree.
func (c Chaos) window(runFor time.Duration) (start, end, gap time.Duration) {
	start = c.effectiveStart()
	end = c.End.D()
	if end <= start {
		end = runFor * 2 / 3
		if end <= start {
			end = start + time.Second
		}
	}
	gap = c.MinGap.D()
	if gap <= 0 {
		gap = 10 * time.Second
	}
	return start, end, gap
}

// chaosPlan is what the sampler hands the runner: the injections plus the
// recovery points to schedule.
type chaosPlan struct {
	inject  faults.Plan
	recover faults.Plan
}

// plan samples the job's injection schedule. world is the job's rank count;
// runFor bounds the default injection window.
func (c Chaos) plan(rng *rand.Rand, world int, runFor time.Duration) chaosPlan {
	nfaults := c.Faults
	if nfaults <= 0 {
		nfaults = 1
	}
	kinds := c.Kinds
	if len(kinds) == 0 {
		kinds = defaultChaosKinds()
	}
	weights := make([]int, len(kinds))
	for i, wk := range kinds {
		weights[i] = wk.Weight
	}
	start, end, minGap := c.window(runFor)
	recoverAfter := c.RecoverAfter.D()
	if recoverAfter <= 0 {
		recoverAfter = 10 * time.Second
	}

	pickKind := func() faults.Kind { return kinds[pickWeighted(rng, weights)].Kind }

	// Sample injection times first, then space them out.
	times := make([]time.Duration, nfaults)
	for i := range times {
		times[i] = start + time.Duration(rng.Int63n(int64(end-start)+1))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1]+minGap {
			times[i] = times[i-1] + minGap
		}
	}
	// Min-gap spacing can spill past the window; drop anything pushed past
	// the run horizon — a fault that never fires must not appear in the
	// report or dilute the accuracy metric.
	for len(times) > 0 && times[len(times)-1] >= runFor {
		times = times[:len(times)-1]
	}

	var out chaosPlan
	add := func(kind faults.Kind, rank topo.Rank, at time.Duration) {
		spec := faults.Spec{Kind: kind, Rank: rank, At: at}
		out.inject = append(out.inject, spec)
		if c.Recover && faults.Recoverable(kind) {
			rec := spec
			rec.At = at + recoverAfter
			out.recover = append(out.recover, rec)
		}
	}
	for _, at := range times {
		kind := pickKind()
		rank := topo.Rank(rng.Intn(world))
		add(kind, rank, at)
		if c.Cascade > 0 && rng.Float64() < c.Cascade {
			// Correlated follow-up: another fault lands near the first
			// (same rank or a neighbour) shortly after.
			spread := c.CascadeSpread.D()
			if spread <= 0 {
				spread = 5 * time.Second
			}
			r2 := rank
			if rng.Intn(2) == 0 && world > 1 {
				r2 = topo.Rank((int(rank) + 1) % world)
			}
			if at2 := at + time.Duration(rng.Int63n(int64(spread)+1)); at2 < runFor {
				add(pickKind(), r2, at2)
			}
		}
	}
	out.inject = out.inject.Sorted()
	out.recover = out.recover.Sorted()
	return out
}
