package scenario

import (
	"fmt"
	"slices"

	"mycroft/internal/core"
	"mycroft/internal/faults"
	"mycroft/internal/remedy"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// evaluate checks every assertion against the run, expanding Job == -1 over
// the whole fleet. It returns the number of checks performed and the
// failure messages.
func evaluate(spec Spec, res *Result) (checked int, failures []string) {
	for ai, a := range spec.Assertions {
		for ji := range res.Jobs {
			if a.Job != -1 && a.Job != ji {
				continue
			}
			checked++
			if msg := checkJob(a, &res.Jobs[ji]); msg != "" {
				failures = append(failures, fmt.Sprintf("assertion %d (%s) job %d: %s", ai, a.Kind, ji, msg))
			}
		}
	}
	return checked, failures
}

// checkJob evaluates one assertion against one job; "" means pass.
func checkJob(a Assertion, j *JobResult) string {
	switch a.Kind {
	case AssertDetected:
		inj, ok := j.injectionAt(a.Event)
		if !ok {
			return fmt.Sprintf("no injection %d (job saw %d)", a.Event, len(j.injected))
		}
		// Only triggers of a kind the fault's expectation accepts count:
		// a residual firing of the wrong kind from an earlier fault must
		// not pass as detection of this one.
		exp := faults.Expect(inj.Kind)
		at := sim.Time(inj.At)
		for _, tr := range j.triggers {
			if tr.At < at || !exp.TriggerOK(tr.Kind) {
				continue
			}
			if a.Within > 0 && tr.At.Sub(at) > a.Within.D() {
				return fmt.Sprintf("first acceptable trigger after %s came %v late (bound %v)", inj, tr.At.Sub(at), a.Within)
			}
			return ""
		}
		return fmt.Sprintf("no acceptable trigger after %s", inj)

	case AssertDiagnosed:
		inj, ok := j.injectionAt(a.Event)
		if !ok {
			return fmt.Sprintf("no injection %d (job saw %d)", a.Event, len(j.injected))
		}
		exp := faults.Expect(inj.Kind)
		at := sim.Time(inj.At)
		var last string
		for _, rep := range j.reports {
			if rep.AnalyzedAt < at {
				continue
			}
			if a.Within > 0 && rep.AnalyzedAt.Sub(at) > a.Within.D() {
				last = fmt.Sprintf("report came %v after injection (bound %v)", rep.AnalyzedAt.Sub(at), a.Within)
				continue
			}
			if !exp.CategoryOK(rep.Category) {
				last = fmt.Sprintf("category %s not in %v", rep.Category, exp.Categories)
				continue
			}
			if exp.LocalizeRank && rep.Suspect != inj.Rank {
				last = fmt.Sprintf("suspect %d, want %d", rep.Suspect, inj.Rank)
				continue
			}
			return ""
		}
		if last == "" {
			last = "no report"
		}
		return fmt.Sprintf("%s not diagnosed: %s", inj, last)

	case AssertCategory:
		for _, rep := range j.reports {
			for _, c := range a.Categories {
				if rep.Category == c {
					return ""
				}
			}
		}
		return fmt.Sprintf("no report with category in %v (%d reports)", a.Categories, len(j.reports))

	case AssertSuspect:
		for _, rep := range j.reports {
			if rep.Suspect == topo.Rank(a.Rank) {
				return ""
			}
		}
		return fmt.Sprintf("no report naming rank %d", a.Rank)

	case AssertNoFalseTrigger:
		first, any := j.injected.First()
		for _, tr := range j.triggers {
			if !any || tr.At < sim.Time(first) {
				return fmt.Sprintf("trigger before any fault: %v", tr)
			}
		}
		return ""

	case AssertMinReports:
		if len(j.reports) < a.Min {
			return fmt.Sprintf("%d reports, want >= %d", len(j.reports), a.Min)
		}
		return ""

	case AssertMinRecords:
		if j.Records < uint64(a.Min) {
			return fmt.Sprintf("%d records ingested, want >= %d", j.Records, a.Min)
		}
		return ""

	case AssertMinIterations:
		if j.Iterations < a.Min {
			return fmt.Sprintf("%d iterations, want >= %d", j.Iterations, a.Min)
		}
		return ""

	case AssertChain:
		best := 0
		for _, rep := range j.reports {
			if len(rep.Chain) >= a.Min {
				return ""
			}
			if len(rep.Chain) > best {
				best = len(rep.Chain)
			}
		}
		return fmt.Sprintf("no report with a >= %d-hop chain (longest %d of %d reports)", a.Min, best, len(j.reports))

	case AssertVictims:
		var last string
		for _, rep := range j.reports {
			if len(rep.Victims) < a.Min {
				last = fmt.Sprintf("%d victims, want >= %d", len(rep.Victims), a.Min)
				continue
			}
			missing := -1
			for _, want := range a.Victims {
				if !slices.Contains(rep.Victims, topo.Rank(want)) {
					missing = want
					break
				}
			}
			if missing >= 0 {
				last = fmt.Sprintf("blast radius %v lacks rank %d", rep.Victims, missing)
				continue
			}
			return ""
		}
		if last == "" {
			last = "no reports"
		}
		return fmt.Sprintf("no report with the expected blast radius: %s", last)

	case AssertRemediation:
		matches := 0
		for _, att := range j.remediations {
			if a.Action != "" && att.Action.Kind != a.Action {
				continue
			}
			if a.Rank != -1 && att.Action.Rank != topo.Rank(a.Rank) {
				continue
			}
			if len(a.Outcomes) > 0 && !slices.Contains(a.Outcomes, att.Outcome) {
				continue
			}
			matches++
		}
		if a.None {
			if matches > 0 {
				return fmt.Sprintf("%d matching remediation attempt(s), want none", matches)
			}
			return ""
		}
		min := a.Min
		if min <= 0 {
			min = 1
		}
		if matches < min {
			return fmt.Sprintf("%d matching remediation attempt(s), want >= %d (log has %d)", matches, min, len(j.remediations))
		}
		return ""

	case AssertChannel:
		info, ok := j.channelInfo(a.Channel)
		if !ok {
			return fmt.Sprintf("no %q channel stats (job reported %d channels)", a.Channel, len(j.channels.Channels))
		}
		if a.None {
			if info.Anomalies != 0 || info.Reports != 0 {
				return fmt.Sprintf("channel %s not quiet: %d anomalies, %d reports", a.Channel, info.Anomalies, info.Reports)
			}
			return ""
		}
		min := a.Min
		if min <= 0 {
			min = 1
		}
		if info.Anomalies < uint64(min) {
			return fmt.Sprintf("channel %s saw %d anomalies, want >= %d", a.Channel, info.Anomalies, min)
		}
		if info.Reports < uint64(a.Reports) {
			return fmt.Sprintf("channel %s delivered %d reports, want >= %d", a.Channel, info.Reports, a.Reports)
		}
		return ""

	case AssertModality:
		m := core.Modality(a.Channel)
		var last string
		for _, rep := range j.reports {
			if !rep.HasEvidence(m) {
				continue
			}
			if a.MinConfidence > 0 && rep.Confidence < a.MinConfidence {
				last = fmt.Sprintf("confidence %.3f below %.3f", rep.Confidence, a.MinConfidence)
				continue
			}
			if a.Outcome != "" && rep.FusionOutcome() != a.Outcome {
				last = fmt.Sprintf("fusion outcome %s, want %s", rep.FusionOutcome(), a.Outcome)
				continue
			}
			return ""
		}
		if last == "" {
			last = fmt.Sprintf("no report carries %s evidence (%d reports)", a.Channel, len(j.reports))
		}
		return fmt.Sprintf("no report satisfies the %s-evidence expectation: %s", a.Channel, last)

	case AssertNoRecords:
		if j.Records != 0 {
			return fmt.Sprintf("%d trace records ingested, want a tracepoint-free run", j.Records)
		}
		return ""

	case AssertRecovered:
		// The loop closed: a succeeded attempt on the rank, after whose
		// verification the suspect never came back — no trigger fired by the
		// rank and no verdict naming it.
		var healed *remedy.Attempt
		for i := range j.remediations {
			att := &j.remediations[i]
			if att.Outcome == remedy.OutcomeSucceeded && (a.Rank == -1 || att.Action.Rank == topo.Rank(a.Rank)) {
				healed = att
			}
		}
		if healed == nil {
			return fmt.Sprintf("no succeeded remediation for rank %d (log has %d attempts)", a.Rank, len(j.remediations))
		}
		for _, tr := range j.triggers {
			if tr.Rank == healed.Action.Rank && tr.At > healed.ResolvedAt {
				return fmt.Sprintf("suspect re-triggered after verification: %v", tr)
			}
		}
		for _, rep := range j.reports {
			if rep.Suspect == healed.Action.Rank && rep.AnalyzedAt > healed.ResolvedAt {
				return fmt.Sprintf("suspect re-detected after verification: %v", rep)
			}
		}
		return ""
	}
	return fmt.Sprintf("unknown assertion kind %q", a.Kind)
}
