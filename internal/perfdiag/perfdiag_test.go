package perfdiag

import (
	"testing"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// feed drives a synthetic training cadence: every rank completes iters
// iterations, rank by rank in lockstep, with the given per-rank period and a
// slow-factor applied to the ranks in slow after iteration after.
func feed(d *Detector, world, iters int, period time.Duration, slow map[topo.Rank]float64, after int) sim.Time {
	at := make([]sim.Time, world)
	var last sim.Time
	for i := 0; i < iters; i++ {
		for r := 0; r < world; r++ {
			p := period
			if f, ok := slow[topo.Rank(r)]; ok && i >= after {
				p = time.Duration(float64(period) * f)
			}
			at[r] = at[r].Add(p)
			d.Ingest(Sample{Rank: topo.Rank(r), Iter: i, At: at[r]})
			if at[r] > last {
				last = at[r]
			}
		}
	}
	return last
}

func TestHealthyFleetIsQuiet(t *testing.T) {
	d := New(8, Config{})
	end := feed(d, 8, 30, 2*time.Second, nil, 0)
	for i := 0; i < 5; i++ {
		if got := d.Analyze(end); got != nil {
			t.Fatalf("healthy fleet flagged: %v", got)
		}
	}
}

func TestPersistentStragglerDetected(t *testing.T) {
	d := New(8, Config{})
	end := feed(d, 8, 40, 2*time.Second, map[topo.Rank]float64{3: 1.8}, 10)
	var got []Finding
	// The Persist gate requires consecutive anomalous analyses.
	for i := 0; i < 4 && got == nil; i++ {
		got = d.Analyze(end)
	}
	if len(got) != 1 {
		t.Fatalf("straggler not found: %v", got)
	}
	f := got[0]
	if f.Kind != KindStraggler {
		t.Errorf("kind = %s, want %s", f.Kind, KindStraggler)
	}
	if f.Rank != 3 {
		t.Errorf("rank = %d, want 3", f.Rank)
	}
	if f.Ratio <= 1.3 {
		t.Errorf("ratio = %v, want > straggler factor", f.Ratio)
	}
	if f.Persisted < 3 {
		t.Errorf("persisted = %d, want >= 3", f.Persisted)
	}
}

func TestPersistGateSuppressesTransients(t *testing.T) {
	d := New(8, Config{})
	end := feed(d, 8, 40, 2*time.Second, map[topo.Rank]float64{3: 1.8}, 10)
	// One or two anomalous analyses are not enough: the gate needs three.
	if got := d.Analyze(end); got != nil {
		t.Fatalf("finding fired on first analysis: %v", got)
	}
	if got := d.Analyze(end); got != nil {
		t.Fatalf("finding fired on second analysis: %v", got)
	}
	if got := d.Analyze(end); got == nil {
		t.Fatal("finding missing on third consecutive analysis")
	}
}

func TestRecoveryResetsStreak(t *testing.T) {
	d := New(8, Config{})
	end := feed(d, 8, 40, 2*time.Second, map[topo.Rank]float64{3: 1.8}, 10)
	d.Analyze(end)
	d.Analyze(end)
	// Rank 3 recovers: enough healthy iterations to flush its window.
	end = feed(d, 8, 20, 2*time.Second, nil, 0)
	for i := 0; i < 5; i++ {
		if got := d.Analyze(end); got != nil {
			t.Fatalf("recovered rank still flagged: %v", got)
		}
	}
}

func TestStageImbalanceKind(t *testing.T) {
	d := New(8, Config{ImbalanceFrac: 0.25})
	// Three of eight ranks slow together: a stage, not a lone straggler.
	slow := map[topo.Rank]float64{4: 1.8, 5: 1.8, 6: 1.8}
	end := feed(d, 8, 40, 2*time.Second, slow, 10)
	var got []Finding
	for i := 0; i < 4 && got == nil; i++ {
		got = d.Analyze(end)
	}
	if len(got) != 1 {
		t.Fatalf("imbalance not found: %v", got)
	}
	if got[0].Kind != KindImbalance {
		t.Errorf("kind = %s, want %s", got[0].Kind, KindImbalance)
	}
	if len(got[0].Ranks) != 3 {
		t.Errorf("ranks = %v, want the 3 slow ranks", got[0].Ranks)
	}
}

func TestIgnoresOutOfRangeAndStaleSamples(t *testing.T) {
	d := New(4, Config{})
	d.Ingest(Sample{Rank: -1, At: sim.Time(time.Second)})
	d.Ingest(Sample{Rank: 99, At: sim.Time(time.Second)})
	if d.Ingested() != 0 {
		t.Fatalf("out-of-range samples counted: %d", d.Ingested())
	}
	// A non-monotonic timestamp must not produce a negative duration sample.
	d.Ingest(Sample{Rank: 0, At: sim.Time(5 * time.Second)})
	d.Ingest(Sample{Rank: 0, At: sim.Time(3 * time.Second)})
	if n := d.ranks[0].window.N(); n != 0 {
		t.Fatalf("stale timestamp produced %d duration samples, want 0", n)
	}
}
