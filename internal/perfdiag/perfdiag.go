// Package perfdiag is the black-box timing-envelope diagnosis channel: it
// sees nothing but per-rank iteration completion timestamps — no op-level
// trace, no logs — and still catches the failures that hide from both: the
// persistent straggler whose collectives all complete (slowly) and the
// stage imbalance where a whole group of ranks drifts off the fleet's
// cadence. Per-rank iteration durations feed rolling quantile envelopes
// (internal/stats.WindowQuantile); a rank whose median sits persistently
// above the fleet envelope is a straggler, and a coherent group of such
// ranks is stage imbalance — the LLMPrism observation (PAPERS.md) that
// iteration timing alone diagnoses silent slowdowns.
package perfdiag

import (
	"fmt"
	"sort"

	"mycroft/internal/sim"
	"mycroft/internal/stats"
	"mycroft/internal/topo"
)

// Sample is one per-rank iteration completion timestamp.
type Sample struct {
	Rank topo.Rank
	Iter int
	At   sim.Time
}

// Config tunes the detector. Zero values take defaults.
type Config struct {
	// Window is the per-rank duration window (samples). Default 16.
	Window int
	// MinSamples per rank before envelopes arm. Default 6.
	MinSamples int
	// StragglerFactor: a rank whose windowed median exceeds this multiple of
	// the fleet median is anomalous. Default 1.3.
	StragglerFactor float64
	// Persist: consecutive anomalous analyses before a finding is reported.
	// Default 3.
	Persist int
	// ImbalanceFrac: when more than this fraction of the world is anomalous
	// together, the finding is stage imbalance, not a lone straggler.
	// Default 0.25.
	ImbalanceFrac float64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 6
	}
	if c.StragglerFactor <= 1 {
		c.StragglerFactor = 1.3
	}
	if c.Persist <= 0 {
		c.Persist = 3
	}
	if c.ImbalanceFrac <= 0 {
		c.ImbalanceFrac = 0.25
	}
	return c
}

// FindingKind discriminates what the envelope caught.
type FindingKind string

const (
	// KindStraggler: one rank (or a small set) persistently above envelope.
	KindStraggler FindingKind = "persistent-straggler"
	// KindImbalance: a coherent group of ranks off the fleet cadence.
	KindImbalance FindingKind = "stage-imbalance"
)

// Finding is one timing-envelope anomaly.
type Finding struct {
	Kind FindingKind
	// Rank is the worst offender (highest median/fleet ratio; lowest rank
	// breaks ties). Ranks is the full anomalous set, sorted.
	Rank  topo.Rank
	Ranks []topo.Rank
	// RankMedian and FleetMedian are the windowed medians (seconds).
	RankMedian  float64
	FleetMedian float64
	// Ratio is RankMedian / FleetMedian for the worst offender.
	Ratio float64
	// Persisted counts consecutive anomalous analyses behind this finding.
	Persisted int
	At        sim.Time
}

func (f Finding) String() string {
	return fmt.Sprintf("[%v] %s: rank %d median %.3gs vs fleet %.3gs (×%.2f, %d consecutive)",
		f.At, f.Kind, f.Rank, f.RankMedian, f.FleetMedian, f.Ratio, f.Persisted)
}

type rankEnvelope struct {
	lastAt  sim.Time
	hasLast bool
	window  *stats.WindowQuantile
	streak  int // consecutive anomalous analyses
}

// Detector maintains per-rank timing envelopes over iteration timestamps.
type Detector struct {
	world    int
	cfg      Config
	ranks    []*rankEnvelope
	ingested uint64
	lastAt   sim.Time
}

// New builds a detector for a world-size-rank job.
func New(world int, cfg Config) *Detector {
	if world < 1 {
		world = 1
	}
	cfg = cfg.withDefaults()
	d := &Detector{world: world, cfg: cfg, ranks: make([]*rankEnvelope, world)}
	for i := range d.ranks {
		d.ranks[i] = &rankEnvelope{window: stats.NewWindowQuantile(cfg.Window)}
	}
	return d
}

// Ingest folds one iteration completion timestamp in. The duration sample is
// the gap to the rank's previous completion, so the channel needs only
// timestamps, never explicit durations.
func (d *Detector) Ingest(s Sample) {
	if int(s.Rank) < 0 || int(s.Rank) >= d.world {
		return
	}
	d.ingested++
	if s.At > d.lastAt {
		d.lastAt = s.At
	}
	env := d.ranks[s.Rank]
	if env.hasLast && s.At > env.lastAt {
		env.window.Add(s.At.Sub(env.lastAt).Seconds())
	}
	env.lastAt, env.hasLast = s.At, true
}

// Ingested returns lifetime samples folded in.
func (d *Detector) Ingested() uint64 { return d.ingested }

// Analyze compares every armed rank's windowed median against the fleet
// median and returns the findings that have persisted long enough, worst
// first. A nil return means every rank is inside the envelope.
func (d *Detector) Analyze(now sim.Time) []Finding {
	medians := make([]float64, d.world)
	armed := make([]bool, d.world)
	var fleet stats.Sample
	for r, env := range d.ranks {
		if env.window.N() < d.cfg.MinSamples {
			continue
		}
		armed[r] = true
		medians[r] = env.window.Median()
		fleet.Add(medians[r])
	}
	if fleet.N() < 2 {
		return nil
	}
	fleetMedian := fleet.Quantile(0.5)
	if fleetMedian <= 0 {
		return nil
	}

	type offender struct {
		rank  topo.Rank
		ratio float64
	}
	var over []offender
	for r := 0; r < d.world; r++ {
		env := d.ranks[r]
		if !armed[r] {
			continue
		}
		if medians[r] > d.cfg.StragglerFactor*fleetMedian {
			env.streak++
			over = append(over, offender{topo.Rank(r), medians[r] / fleetMedian})
		} else {
			env.streak = 0
		}
	}
	if len(over) == 0 {
		return nil
	}
	sort.Slice(over, func(i, j int) bool {
		if over[i].ratio != over[j].ratio {
			return over[i].ratio > over[j].ratio
		}
		return over[i].rank < over[j].rank
	})

	// The finding only fires once the worst offender's streak persists.
	worst := over[0]
	if d.ranks[worst.rank].streak < d.cfg.Persist {
		return nil
	}
	ranks := make([]topo.Rank, 0, len(over))
	for _, o := range over {
		if d.ranks[o.rank].streak >= d.cfg.Persist {
			ranks = append(ranks, o.rank)
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	kind := KindStraggler
	if float64(len(ranks)) > d.cfg.ImbalanceFrac*float64(d.world) {
		kind = KindImbalance
	}
	return []Finding{{
		Kind: kind, Rank: worst.rank, Ranks: ranks,
		RankMedian: medians[worst.rank], FleetMedian: fleetMedian,
		Ratio: worst.ratio, Persisted: d.ranks[worst.rank].streak, At: now,
	}}
}
