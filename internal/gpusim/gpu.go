// Package gpusim models the GPU half of NCCL's hardware–software
// coordination (§4.2 of the paper): a copy engine that stages chunks from
// user memory into the proxy's preallocated buffer ("SM copies" feeding the
// GPU_ready counter), and a compute model for the gaps between collectives.
//
// Fault hooks reproduce the GPU-side fault classes of §7.1:
//
//   - Hang: the copy engine stops completing work (stuck CUDA kernel).
//   - SlowFactor: compute (and optionally copies) run slower — a compute
//     straggler.
//   - CopyBandwidthScale: degraded staging path (PCIe degrade signature:
//     GPU_ready advances abnormally slowly while compute is healthy).
package gpusim

import (
	"fmt"
	"time"

	"mycroft/internal/sim"
)

// ID identifies a GPU (global, equals rank in this model).
type ID int

// Config sets a GPU's nominal characteristics.
type Config struct {
	CopyBandwidth float64       // staging copy bytes/second (SM copy into proxy buffer)
	LaunchLat     time.Duration // kernel launch latency per copy
}

// DefaultGPU approximates an A100: 200 GB/s effective staging bandwidth,
// 3 µs launch latency.
func DefaultGPU() Config {
	return Config{CopyBandwidth: 200e9, LaunchLat: 3 * time.Microsecond}
}

// GPU is a simulated device. Copies serialize on the copy engine; compute is
// modelled as pure delay scaled by the straggler factor.
type GPU struct {
	eng *sim.Engine
	id  ID

	copyBW    float64
	launchLat time.Duration

	// Fault state.
	hang      bool
	slow      float64 // multiplies compute (and copy) durations; 1 = healthy
	copyScale float64 // multiplies copy bandwidth; 1 = healthy

	copyFree sim.Time // copy-engine serialization pointer
	stalled  []*copyReq

	copies      uint64
	bytesStaged uint64
}

type copyReq struct {
	bytes int64
	done  func()
}

// New creates a GPU on the engine.
func New(eng *sim.Engine, id ID, cfg Config) *GPU {
	if cfg.CopyBandwidth <= 0 {
		panic(fmt.Sprintf("gpusim: non-positive copy bandwidth %v", cfg.CopyBandwidth))
	}
	return &GPU{eng: eng, id: id, copyBW: cfg.CopyBandwidth, launchLat: cfg.LaunchLat, slow: 1, copyScale: 1}
}

// ID returns the GPU id.
func (g *GPU) ID() ID { return g.id }

// Copies returns how many staging copies completed.
func (g *GPU) Copies() uint64 { return g.copies }

// BytesStaged returns the total bytes staged by completed copies.
func (g *GPU) BytesStaged() uint64 { return g.bytesStaged }

// Hung reports whether the copy engine is hung.
func (g *GPU) Hung() bool { return g.hang }

// SlowFactor returns the current compute slowdown (1 = healthy).
func (g *GPU) SlowFactor() float64 { return g.slow }

// SetHang hangs or un-hangs the copy engine. Un-hanging replays stalled
// copies in order.
func (g *GPU) SetHang(h bool) {
	if g.hang == h {
		return
	}
	g.hang = h
	if !h {
		replay := g.stalled
		g.stalled = nil
		if g.copyFree < g.eng.Now() {
			g.copyFree = g.eng.Now()
		}
		for _, r := range replay {
			g.schedule(r)
		}
	}
}

// SetSlowFactor sets the compute slowdown multiplier (must be ≥ 1 for a
// straggler; exactly 1 restores health).
func (g *GPU) SetSlowFactor(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("gpusim: non-positive slow factor %v", f))
	}
	g.slow = f
}

// SetCopyBandwidthScale throttles the staging path (PCIe degrade).
func (g *GPU) SetCopyBandwidthScale(s float64) {
	if s <= 0 {
		panic(fmt.Sprintf("gpusim: non-positive copy scale %v", s))
	}
	g.copyScale = s
}

// Copy stages n bytes into the proxy buffer and calls done on completion.
// While hung, requests queue silently (the gray-failure signature: the
// proxy's GPU_ready counter simply stops advancing).
func (g *GPU) Copy(n int64, done func()) {
	if n < 0 {
		panic(fmt.Sprintf("gpusim: negative copy size %d", n))
	}
	r := &copyReq{bytes: n, done: done}
	if g.hang {
		g.stalled = append(g.stalled, r)
		return
	}
	g.schedule(r)
}

func (g *GPU) schedule(r *copyReq) {
	start := g.copyFree
	if now := g.eng.Now(); start < now {
		start = now
	}
	start = start.Add(g.launchLat)
	bw := g.copyBW * g.copyScale / g.slow
	dur := time.Duration(float64(r.bytes) / bw * float64(time.Second))
	finish := start.Add(dur)
	g.copyFree = finish
	g.eng.At(finish, func() {
		g.copies++
		g.bytesStaged += uint64(r.bytes)
		if r.done != nil {
			r.done()
		}
	})
}

// Compute models a compute phase of nominal duration d, stretched by the
// straggler factor, then calls done. A hung GPU still computes (the hang
// fault targets the copy engine / CUDA stream feeding communication).
func (g *GPU) Compute(d time.Duration, done func()) {
	if d < 0 {
		panic(fmt.Sprintf("gpusim: negative compute duration %v", d))
	}
	g.eng.After(time.Duration(float64(d)*g.slow), done)
}
