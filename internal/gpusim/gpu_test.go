package gpusim

import (
	"testing"
	"time"

	"mycroft/internal/sim"
)

func newGPU(t *testing.T) (*sim.Engine, *GPU) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, New(eng, 0, DefaultGPU())
}

func TestCopyTiming(t *testing.T) {
	eng, g := newGPU(t)
	var done sim.Time
	g.Copy(200_000_000, func() { done = eng.Now() }) // 1ms at 200GB/s
	eng.Run()
	want := sim.Time(time.Millisecond + 3*time.Microsecond)
	if done != want {
		t.Fatalf("copy done at %v, want %v", done, want)
	}
	if g.Copies() != 1 || g.BytesStaged() != 200_000_000 {
		t.Fatalf("counters: copies=%d bytes=%d", g.Copies(), g.BytesStaged())
	}
}

func TestCopySerialization(t *testing.T) {
	eng, g := newGPU(t)
	var done []sim.Time
	for i := 0; i < 3; i++ {
		g.Copy(200_000_000, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	for i := 1; i < 3; i++ {
		gap := done[i].Sub(done[i-1])
		if gap < time.Millisecond {
			t.Fatalf("copies overlapped: gap %v", gap)
		}
	}
}

func TestHangStallsCopies(t *testing.T) {
	eng, g := newGPU(t)
	g.SetHang(true)
	fired := false
	g.Copy(1000, func() { fired = true })
	eng.RunFor(time.Minute)
	if fired {
		t.Fatal("copy completed while hung")
	}
	if !g.Hung() {
		t.Fatal("Hung() = false")
	}
	if g.Copies() != 0 {
		t.Fatal("counter advanced while hung")
	}
}

func TestUnhangReplays(t *testing.T) {
	eng, g := newGPU(t)
	g.SetHang(true)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		g.Copy(1000, func() { order = append(order, i) })
	}
	eng.After(time.Second, func() { g.SetHang(false) })
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("replayed %d copies, want 3", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("replay out of order: %v", order)
		}
	}
	if eng.Now() < sim.Time(time.Second) {
		t.Fatal("copies completed before unhang")
	}
}

func TestSetHangIdempotent(t *testing.T) {
	eng, g := newGPU(t)
	g.SetHang(true)
	g.SetHang(true)
	g.Copy(10, nil)
	g.SetHang(false)
	g.SetHang(false)
	eng.Run()
	if g.Copies() != 1 {
		t.Fatalf("copies = %d, want 1", g.Copies())
	}
}

func TestSlowFactorStretchesCompute(t *testing.T) {
	eng, g := newGPU(t)
	g.SetSlowFactor(3)
	if g.SlowFactor() != 3 {
		t.Fatal("slow factor not recorded")
	}
	var done sim.Time
	g.Compute(100*time.Millisecond, func() { done = eng.Now() })
	eng.Run()
	if done != sim.Time(300*time.Millisecond) {
		t.Fatalf("compute done at %v, want 300ms", done)
	}
}

func TestSlowFactorStretchesCopies(t *testing.T) {
	eng, g := newGPU(t)
	g.SetSlowFactor(2)
	var done sim.Time
	g.Copy(200_000_000, func() { done = eng.Now() })
	eng.Run()
	// 1ms nominal × 2 slow + 3µs launch
	if done < sim.Time(2*time.Millisecond) || done > sim.Time(2*time.Millisecond+10*time.Microsecond) {
		t.Fatalf("slowed copy done at %v, want ~2ms", done)
	}
}

func TestCopyBandwidthScale(t *testing.T) {
	eng, g := newGPU(t)
	g.SetCopyBandwidthScale(0.25)
	var done sim.Time
	g.Copy(200_000_000, func() { done = eng.Now() })
	eng.Run()
	if done < sim.Time(4*time.Millisecond) {
		t.Fatalf("PCIe-degraded copy done at %v, want ≥4ms", done)
	}
}

func TestComputeZeroDelay(t *testing.T) {
	eng, g := newGPU(t)
	fired := false
	g.Compute(0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-duration compute never completed")
	}
}

func TestValidation(t *testing.T) {
	eng, g := newGPU(t)
	_ = eng
	cases := map[string]func(){
		"neg copy":       func() { g.Copy(-1, nil) },
		"zero slow":      func() { g.SetSlowFactor(0) },
		"zero copyScale": func() { g.SetCopyBandwidthScale(0) },
		"neg compute":    func() { g.Compute(-time.Second, nil) },
		"bad config":     func() { New(eng, 1, Config{CopyBandwidth: 0}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
