// Package topo models the physical and logical topology of an LLM training
// cluster: nodes with GPUs and NICs, the rank space, and the Megatron-style
// decomposition of ranks into tensor- (TP), pipeline- (PP) and data-parallel
// (DP) process groups. Mycroft's sampler and root-cause analysis consume
// these groups; the CCL builds its communicators from them.
package topo

import (
	"fmt"
)

// Rank is a global rank id in [0, WorldSize).
type Rank int

// NodeID identifies a physical host.
type NodeID int

// GPUID identifies a GPU globally (equal to the rank in this model: one
// process per GPU, as in production LLM training).
type GPUID int

// IP is the host address used as the key in trace metadata (Table 2 of the
// paper keys logs by IP).
type IP string

// Node is a physical host with LocalGPUs GPUs and one RNIC per GPU.
type Node struct {
	ID  NodeID
	IP  IP
	GPU []GPUID // global GPU ids hosted here, index = local rank
}

// Cluster is the physical layout plus the logical parallelism plan.
type Cluster struct {
	Nodes       []*Node
	GPUsPerNode int

	// Parallelism plan (Megatron order: TP innermost, then PP, then DP).
	TP int
	PP int
	DP int

	rankNode []NodeID // rank -> node
}

// Config sizes a cluster. WorldSize = Nodes × GPUsPerNode must equal
// TP × PP × DP.
type Config struct {
	Nodes       int
	GPUsPerNode int
	TP, PP, DP  int
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.GPUsPerNode <= 0 {
		return fmt.Errorf("topo: non-positive cluster dims %d×%d", c.Nodes, c.GPUsPerNode)
	}
	if c.TP <= 0 || c.PP <= 0 || c.DP <= 0 {
		return fmt.Errorf("topo: non-positive parallelism dims tp=%d pp=%d dp=%d", c.TP, c.PP, c.DP)
	}
	world := c.Nodes * c.GPUsPerNode
	if c.TP*c.PP*c.DP != world {
		return fmt.Errorf("topo: tp×pp×dp = %d does not cover world size %d", c.TP*c.PP*c.DP, world)
	}
	return nil
}

// New builds a cluster from a validated config.
func New(c Config) (*Cluster, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cl := &Cluster{
		GPUsPerNode: c.GPUsPerNode,
		TP:          c.TP, PP: c.PP, DP: c.DP,
	}
	world := c.Nodes * c.GPUsPerNode
	cl.rankNode = make([]NodeID, world)
	for n := 0; n < c.Nodes; n++ {
		node := &Node{
			ID: NodeID(n),
			IP: IP(fmt.Sprintf("10.0.%d.%d", n/256, n%256)),
		}
		for g := 0; g < c.GPUsPerNode; g++ {
			global := GPUID(n*c.GPUsPerNode + g)
			node.GPU = append(node.GPU, global)
			cl.rankNode[int(global)] = node.ID
		}
		cl.Nodes = append(cl.Nodes, node)
	}
	return cl, nil
}

// MustNew is New for known-good configs (tests, examples).
func MustNew(c Config) *Cluster {
	cl, err := New(c)
	if err != nil {
		panic(err)
	}
	return cl
}

// WorldSize returns the number of ranks.
func (cl *Cluster) WorldSize() int { return len(cl.rankNode) }

// NodeOf returns the node hosting rank r.
func (cl *Cluster) NodeOf(r Rank) *Node { return cl.Nodes[cl.rankNode[int(r)]] }

// IPOf returns the host IP of rank r.
func (cl *Cluster) IPOf(r Rank) IP { return cl.NodeOf(r).IP }

// SameNode reports whether two ranks share a host.
func (cl *Cluster) SameNode(a, b Rank) bool { return cl.rankNode[int(a)] == cl.rankNode[int(b)] }

// LocalRank returns r's index within its node.
func (cl *Cluster) LocalRank(r Rank) int { return int(r) % cl.GPUsPerNode }

// Coord is a rank's position in the (DP, PP, TP) grid.
type Coord struct{ DP, PP, TP int }

// CoordOf decomposes rank r using Megatron ordering: rank = ((dp*PP)+pp)*TP+tp.
func (cl *Cluster) CoordOf(r Rank) Coord {
	i := int(r)
	tp := i % cl.TP
	pp := (i / cl.TP) % cl.PP
	dp := i / (cl.TP * cl.PP)
	return Coord{DP: dp, PP: pp, TP: tp}
}

// RankAt composes a rank from a grid coordinate.
func (cl *Cluster) RankAt(c Coord) Rank {
	return Rank(((c.DP*cl.PP)+c.PP)*cl.TP + c.TP)
}

// GroupKind labels a process-group dimension.
type GroupKind string

const (
	GroupTP    GroupKind = "tp"
	GroupPP    GroupKind = "pp"
	GroupDP    GroupKind = "dp"
	GroupWorld GroupKind = "world"
)

// Group is an ordered set of ranks forming one communicator.
type Group struct {
	Kind  GroupKind
	Index int // which group of this kind (0-based)
	Ranks []Rank
}

// Contains reports whether rank r is a member.
func (g *Group) Contains(r Rank) bool {
	for _, x := range g.Ranks {
		if x == r {
			return true
		}
	}
	return false
}

func (g *Group) String() string {
	return fmt.Sprintf("%s[%d]%v", g.Kind, g.Index, g.Ranks)
}

// TPGroups returns the tensor-parallel groups: ranks contiguous in TP.
func (cl *Cluster) TPGroups() []*Group {
	var out []*Group
	n := 0
	for dp := 0; dp < cl.DP; dp++ {
		for pp := 0; pp < cl.PP; pp++ {
			g := &Group{Kind: GroupTP, Index: n}
			for tp := 0; tp < cl.TP; tp++ {
				g.Ranks = append(g.Ranks, cl.RankAt(Coord{DP: dp, PP: pp, TP: tp}))
			}
			out = append(out, g)
			n++
		}
	}
	return out
}

// PPGroups returns the pipeline-parallel groups: one per (dp, tp) pair,
// ordered by pipeline stage.
func (cl *Cluster) PPGroups() []*Group {
	var out []*Group
	n := 0
	for dp := 0; dp < cl.DP; dp++ {
		for tp := 0; tp < cl.TP; tp++ {
			g := &Group{Kind: GroupPP, Index: n}
			for pp := 0; pp < cl.PP; pp++ {
				g.Ranks = append(g.Ranks, cl.RankAt(Coord{DP: dp, PP: pp, TP: tp}))
			}
			out = append(out, g)
			n++
		}
	}
	return out
}

// DPGroups returns the data-parallel groups: one per (pp, tp) pair. The
// gradient all-reduce runs over these; Mycroft samples at least one rank per
// DP group (§4.3).
func (cl *Cluster) DPGroups() []*Group {
	var out []*Group
	n := 0
	for pp := 0; pp < cl.PP; pp++ {
		for tp := 0; tp < cl.TP; tp++ {
			g := &Group{Kind: GroupDP, Index: n}
			for dp := 0; dp < cl.DP; dp++ {
				g.Ranks = append(g.Ranks, cl.RankAt(Coord{DP: dp, PP: pp, TP: tp}))
			}
			out = append(out, g)
			n++
		}
	}
	return out
}

// WorldGroup returns the group of all ranks.
func (cl *Cluster) WorldGroup() *Group {
	g := &Group{Kind: GroupWorld}
	for r := 0; r < cl.WorldSize(); r++ {
		g.Ranks = append(g.Ranks, Rank(r))
	}
	return g
}

// AllGroups returns every process group of the plan (TP, PP, DP), which is
// what the training schedule will create communicators for.
func (cl *Cluster) AllGroups() []*Group {
	var out []*Group
	out = append(out, cl.TPGroups()...)
	out = append(out, cl.PPGroups()...)
	out = append(out, cl.DPGroups()...)
	return out
}
