package topo

import (
	"testing"
	"testing/quick"
)

func std() *Cluster {
	// 4 nodes × 8 GPUs = 32 ranks; TP=2, PP=4, DP=4 (the paper's testbed size).
	return MustNew(Config{Nodes: 4, GPUsPerNode: 8, TP: 2, PP: 4, DP: 4})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0, GPUsPerNode: 8, TP: 1, PP: 1, DP: 1},
		{Nodes: 2, GPUsPerNode: 0, TP: 1, PP: 1, DP: 1},
		{Nodes: 2, GPUsPerNode: 8, TP: 0, PP: 4, DP: 4},
		{Nodes: 2, GPUsPerNode: 8, TP: 2, PP: 2, DP: 2}, // 8 != 16
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated unexpectedly", i, c)
		}
	}
	if err := (Config{Nodes: 4, GPUsPerNode: 8, TP: 2, PP: 4, DP: 4}).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Nodes: 1, GPUsPerNode: 1, TP: 2, PP: 1, DP: 1}); err == nil {
		t.Fatal("New accepted inconsistent config")
	}
}

func TestWorldLayout(t *testing.T) {
	cl := std()
	if cl.WorldSize() != 32 {
		t.Fatalf("WorldSize = %d, want 32", cl.WorldSize())
	}
	if len(cl.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(cl.Nodes))
	}
	// Rank 0..7 on node 0, 8..15 on node 1, ...
	for r := 0; r < 32; r++ {
		wantNode := NodeID(r / 8)
		if cl.NodeOf(Rank(r)).ID != wantNode {
			t.Fatalf("rank %d on node %v, want %v", r, cl.NodeOf(Rank(r)).ID, wantNode)
		}
		if cl.LocalRank(Rank(r)) != r%8 {
			t.Fatalf("local rank of %d = %d", r, cl.LocalRank(Rank(r)))
		}
	}
	if !cl.SameNode(0, 7) || cl.SameNode(7, 8) {
		t.Fatal("SameNode boundaries wrong")
	}
	if cl.IPOf(0) == cl.IPOf(8) {
		t.Fatal("distinct nodes share an IP")
	}
	if cl.IPOf(0) != cl.IPOf(7) {
		t.Fatal("same node has differing IPs")
	}
}

func TestCoordRoundTrip(t *testing.T) {
	cl := std()
	for r := 0; r < cl.WorldSize(); r++ {
		c := cl.CoordOf(Rank(r))
		if back := cl.RankAt(c); back != Rank(r) {
			t.Fatalf("round trip failed: rank %d -> %+v -> %d", r, c, back)
		}
		if c.TP >= cl.TP || c.PP >= cl.PP || c.DP >= cl.DP {
			t.Fatalf("coord out of bounds: %+v", c)
		}
	}
}

// Property: coordinate decomposition round-trips for arbitrary valid shapes.
func TestCoordRoundTripProperty(t *testing.T) {
	f := func(tpRaw, ppRaw, dpRaw uint8) bool {
		tp := int(tpRaw%4) + 1
		pp := int(ppRaw%4) + 1
		dp := int(dpRaw%4) + 1
		world := tp * pp * dp
		gpus := 1
		for _, g := range []int{8, 4, 2, 1} {
			if world%g == 0 {
				gpus = g
				break
			}
		}
		cl := MustNew(Config{Nodes: world / gpus, GPUsPerNode: gpus, TP: tp, PP: pp, DP: dp})
		for r := 0; r < cl.WorldSize(); r++ {
			if cl.RankAt(cl.CoordOf(Rank(r))) != Rank(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupShapes(t *testing.T) {
	cl := std()
	tps := cl.TPGroups()
	pps := cl.PPGroups()
	dps := cl.DPGroups()
	if len(tps) != cl.PP*cl.DP {
		t.Fatalf("TP groups = %d, want %d", len(tps), cl.PP*cl.DP)
	}
	if len(pps) != cl.TP*cl.DP {
		t.Fatalf("PP groups = %d, want %d", len(pps), cl.TP*cl.DP)
	}
	if len(dps) != cl.TP*cl.PP {
		t.Fatalf("DP groups = %d, want %d", len(dps), cl.TP*cl.PP)
	}
	for _, g := range tps {
		if len(g.Ranks) != cl.TP {
			t.Fatalf("TP group size %d, want %d", len(g.Ranks), cl.TP)
		}
	}
	for _, g := range pps {
		if len(g.Ranks) != cl.PP {
			t.Fatalf("PP group size %d, want %d", len(g.Ranks), cl.PP)
		}
	}
	for _, g := range dps {
		if len(g.Ranks) != cl.DP {
			t.Fatalf("DP group size %d, want %d", len(g.Ranks), cl.DP)
		}
	}
}

// Each rank must appear in exactly one group of each kind: the groups of a
// kind partition the world.
func TestGroupsPartitionWorld(t *testing.T) {
	cl := std()
	for _, groups := range [][]*Group{cl.TPGroups(), cl.PPGroups(), cl.DPGroups()} {
		seen := make(map[Rank]int)
		for _, g := range groups {
			for _, r := range g.Ranks {
				seen[r]++
			}
		}
		if len(seen) != cl.WorldSize() {
			t.Fatalf("%s groups cover %d ranks, want %d", groups[0].Kind, len(seen), cl.WorldSize())
		}
		for r, n := range seen {
			if n != 1 {
				t.Fatalf("rank %d appears %d times in %s groups", r, n, groups[0].Kind)
			}
		}
	}
}

// TP groups must be contiguous ranks (NVLink locality in Megatron placement).
func TestTPGroupLocality(t *testing.T) {
	cl := std()
	for _, g := range cl.TPGroups() {
		for i := 1; i < len(g.Ranks); i++ {
			if g.Ranks[i] != g.Ranks[i-1]+1 {
				t.Fatalf("TP group not contiguous: %v", g.Ranks)
			}
		}
		// With TP=2 and 8 GPUs/node, every TP group stays on one node.
		if !cl.SameNode(g.Ranks[0], g.Ranks[len(g.Ranks)-1]) {
			t.Fatalf("TP group spans nodes: %v", g.Ranks)
		}
	}
}

func TestDPGroupStride(t *testing.T) {
	cl := std()
	stride := Rank(cl.TP * cl.PP)
	for _, g := range cl.DPGroups() {
		for i := 1; i < len(g.Ranks); i++ {
			if g.Ranks[i]-g.Ranks[i-1] != stride {
				t.Fatalf("DP group stride %d, want %d: %v", g.Ranks[i]-g.Ranks[i-1], stride, g.Ranks)
			}
		}
	}
}

func TestWorldGroupAndContains(t *testing.T) {
	cl := std()
	w := cl.WorldGroup()
	if len(w.Ranks) != 32 || w.Kind != GroupWorld {
		t.Fatalf("world group wrong: %v", w)
	}
	if !w.Contains(31) || w.Contains(32) {
		t.Fatal("Contains wrong")
	}
	if w.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAllGroupsCount(t *testing.T) {
	cl := std()
	want := cl.PP*cl.DP + cl.TP*cl.DP + cl.TP*cl.PP
	if got := len(cl.AllGroups()); got != want {
		t.Fatalf("AllGroups = %d, want %d", got, want)
	}
}
