package otrace

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mycroft/internal/sim"
)

func testRecorder(capacity int) (*Recorder, *sim.Time) {
	now := new(sim.Time)
	return NewRecorder(capacity, func() sim.Time { return *now }), now
}

func TestSpanLifecycle(t *testing.T) {
	r, now := testRecorder(16)
	*now = sim.Time(time.Second)
	id := r.Begin("job", StageIngest, "", 0)
	if id != 1 {
		t.Fatalf("first span id = %d, want 1", id)
	}
	*now = sim.Time(2 * time.Second)
	r.Annotate(id, "", "records=64")
	r.End(id)

	res := r.Spans(Query{})
	if res.Total != 1 || len(res.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", res.Total)
	}
	s := res.Spans[0]
	if s.Stage != StageIngest || s.Detail != "records=64" || s.Open() {
		t.Fatalf("bad span: %+v", s)
	}
	if s.Dur() != time.Second {
		t.Fatalf("virtual duration = %v, want 1s", s.Dur())
	}
	if s.WallDur() < 0 || s.WallStart == 0 || s.WallEnd == 0 {
		t.Fatalf("wall timestamps not set: %+v", s)
	}
}

func TestIncidentTree(t *testing.T) {
	r, now := testRecorder(64)
	tr := NewTracer(r, "job")

	*now = sim.Time(10 * time.Second)
	ing := tr.Stage(StageIngest) // pre-incident: parentless, no cause
	tr.End(ing)

	*now = sim.Time(15 * time.Second)
	root := tr.OpenIncident("trigger-1", *now)
	tr.AdoptLatest(StageIngest)
	rca := tr.StageAt(StageRCA, *now)
	*now = sim.Time(16 * time.Second)
	tr.EndAt(rca, *now)
	*now = sim.Time(30 * time.Second)
	tr.CloseIncident(*now)

	res := r.Spans(Query{Cause: "trigger-1"})
	if res.Total != 3 {
		t.Fatalf("incident tree has %d spans, want 3 (root, adopted ingest, rca): %+v", res.Total, res.Spans)
	}
	for _, s := range res.Spans {
		if s.Stage != StageIncident && s.Parent != root {
			t.Errorf("span %s not parented to root: %+v", s.Stage, s)
		}
	}
	if id, _ := tr.Incident(); id != 0 {
		t.Errorf("incident still active after close: %d", id)
	}
	// Post-incident stages are parentless again.
	if id := tr.Stage(StageDeliver); id != 0 {
		got := r.Spans(Query{Stage: StageDeliver}).Spans[0]
		if got.Parent != 0 || got.Cause != "" {
			t.Errorf("post-incident stage inherited stale incident: %+v", got)
		}
	}
}

func TestRingWrapCountsDropped(t *testing.T) {
	r, _ := testRecorder(8)
	for i := 0; i < 20; i++ {
		r.End(r.Begin("job", StageIngest, "", 0))
	}
	res := r.Spans(Query{})
	if res.Total != 8 {
		t.Fatalf("live spans = %d, want 8", res.Total)
	}
	if res.Dropped != 12 {
		t.Fatalf("dropped = %d, want 12", res.Dropped)
	}
	// The oldest live ID is 13; ending an overwritten span is a no-op.
	if res.Spans[0].ID != 13 {
		t.Fatalf("oldest live span = %d, want 13", res.Spans[0].ID)
	}
	r.EndAt(1, 99) // must not corrupt slot 1's current occupant
	if got := r.Spans(Query{}).Spans[0]; got.End == 99 {
		t.Fatal("EndAt on an overwritten ID mutated the new occupant")
	}
}

func TestQueryFilters(t *testing.T) {
	r, now := testRecorder(64)
	tr := NewTracer(r, "job")
	root := tr.OpenIncident("trigger-1", *now)
	_ = root
	a := tr.Stage(StageRCA)
	tr.End(a)
	b := tr.Stage(StageDeliver)
	tr.End(b)
	*now = sim.Time(time.Second)
	tr.CloseIncident(*now)

	if got := r.Spans(Query{Stage: StageRCA}).Total; got != 1 {
		t.Errorf("stage filter: got %d, want 1", got)
	}
	if got := r.Spans(Query{Cause: "trigger-1"}).Total; got != 3 {
		t.Errorf("cause filter: got %d, want 3 (root, rca, deliver)", got)
	}
	if got := r.Spans(Query{AfterID: a}).Total; got != 1 {
		t.Errorf("AfterID filter: got %d, want 1", got)
	}
	if got := r.Spans(Query{Limit: 2}); got.Total != 3 || len(got.Spans) != 2 {
		t.Errorf("limit: got %d/%d, want 2 of 3", len(got.Spans), got.Total)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var tr *Tracer
	if id := r.Begin("j", "s", "", 0); id != 0 {
		t.Fatal("nil recorder returned a span id")
	}
	r.End(1)
	r.Annotate(1, "p", "d")
	if res := r.Spans(Query{}); res.Total != 0 {
		t.Fatal("nil recorder returned spans")
	}
	if id := tr.OpenIncident("c", 0); id != 0 {
		t.Fatal("nil tracer opened an incident")
	}
	tr.CloseIncident(0)
	tr.End(tr.Stage("s"))
	tr.AdoptLatest("s")
}

// TestConcurrentRecordAndQuery is the race-detector check: many producers
// spinning Begin/End/Annotate against one deliberately slow consumer
// querying mid-write. Run with -race.
func TestConcurrentRecordAndQuery(t *testing.T) {
	r, _ := testRecorder(128)
	tr := NewTracer(r, "job")
	const producers = 4
	const perProducer = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				var id SpanID
				if i%10 == 0 {
					id = tr.OpenIncident(fmt.Sprintf("trigger-%d-%d", p, i), sim.Time(i))
				} else {
					id = tr.Stage(StageIngest)
				}
				tr.Annotate(id, "", "concurrent")
				if i%10 == 9 {
					tr.CloseIncident(sim.Time(i))
				} else {
					tr.End(id)
				}
			}
		}(p)
	}

	consumerDone := make(chan struct{})
	go func() { // slow consumer: query, then dawdle while producers wrap the ring
		defer close(consumerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := r.Spans(Query{Stage: StageIngest})
			for _, s := range res.Spans {
				if s.ID == 0 || s.Job != "job" {
					t.Errorf("torn span read: %+v", s)
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	<-consumerDone

	res := r.Spans(Query{})
	if res.Total != 128 {
		t.Fatalf("live spans = %d, want full ring 128", res.Total)
	}
	if res.Dropped != producers*perProducer-128 {
		t.Fatalf("dropped = %d, want %d", res.Dropped, producers*perProducer-128)
	}
}

// TestSpanRecordAllocs pins the 0-alloc budget for the record path — the
// same budget BenchmarkSpanRecord reports into BENCH_obs.json.
func TestSpanRecordAllocs(t *testing.T) {
	r, _ := testRecorder(1024)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.End(r.Begin("job", StageIngest, "", 0))
	}); allocs != 0 {
		t.Fatalf("Begin/End allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkSpanRecord prices one Begin/End pair — the per-batch cost the
// ingest path pays with spans enabled. Budget: 0 allocs/op.
func BenchmarkSpanRecord(b *testing.B) {
	r, _ := testRecorder(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.End(r.Begin("job", StageIngest, "", 0))
	}
}
