// Package otrace is Mycroft's own tracing layer: an allocation-lean,
// ring-buffered span recorder that attributes per-incident latency across
// the diagnosis pipeline — ingest batch → detection → RCA walk → report
// publish → subscription fan-out → remediation attempt/verify → cluster
// replication. Each span carries both virtual (sim.Time) and wall
// timestamps: virtual timestamps drive every deterministic surface (wire
// form ordering, the CLI waterfall), wall timestamps price the real compute
// cost of a stage for slow-op logging and profiling.
//
// The recorder is a fixed ring guarded by one uncontended mutex. Begin/End
// write a preallocated slot in place — zero allocations — so the hot ingest
// path can be spanned without moving the M-benchmarks. Span IDs are
// monotonic; a slot overwritten by ring wrap-around is counted in Dropped.
package otrace

import (
	"sync"
	"time"

	"mycroft/internal/sim"
)

// SpanID identifies one recorded span. IDs are monotonic per recorder,
// starting at 1; 0 means "no span" everywhere (parent links, nil tracers).
type SpanID uint64

// Pipeline stage labels. Every layer that records spans uses these
// constants, so queries and the CLI waterfall agree on spelling.
const (
	// StageIncident is the root of one incident's causal tree: opened when a
	// trigger fires, closed when remediation is verified (or fails).
	StageIncident = "incident"
	// StageUpload is a collector agent's drain→cloud-DB upload window.
	StageUpload = "upload"
	// StageIngest is one cloud-DB ingest batch: store, prune, observers.
	StageIngest = "ingest"
	// StageDetect is the detection evaluation pass that fired a trigger.
	StageDetect = "detect"
	// StageRCA is the dependency-graph root-cause walk, trigger→verdict.
	StageRCA = "rca"
	// StagePublish is the report append + event emission.
	StagePublish = "publish"
	// StageDeliver is the Service's subscription fan-out for one event.
	StageDeliver = "deliver"
	// StageApply is a remediation attempt's backoff→apply window.
	StageApply = "remedy-apply"
	// StageVerify is a remediation attempt's apply→verified quiet window.
	StageVerify = "remedy-verify"
	// StageReplicate is one primary→peer replication batch, ship to ack.
	// Replication spans carry the target peer in Peer.
	StageReplicate = "replicate-ship"
	// StageLogAnalyze is one log-channel analysis pass over a freshly
	// ingested batch of training-log lines.
	StageLogAnalyze = "log-analyze"
	// StagePerfAnalyze is one perf-channel analysis pass over a freshly
	// ingested batch of iteration timings.
	StagePerfAnalyze = "perf-analyze"
)

// Span is one recorded pipeline stage. Start/End are virtual time;
// WallStart/WallEnd are wall-clock unix nanoseconds. A span with WallEnd 0
// is still open (wall clock is never 0, unlike virtual time).
type Span struct {
	ID     SpanID
	Parent SpanID // 0 = root (no parent)
	Job    string
	Stage  string
	// Cause correlates a span to its incident: the trigger id label
	// ("trigger-N") stamped on every span of one incident's tree.
	Cause string
	// Peer labels cross-peer spans (replication target); "" = local.
	Peer string
	// Detail is a human-readable annotation ("chain=3 victims=15").
	Detail string
	Start  sim.Time
	End    sim.Time
	// WallStart and WallEnd are wall-clock unix nanoseconds.
	WallStart int64
	WallEnd   int64
}

// Open reports whether the span has not ended yet.
func (s Span) Open() bool { return s.WallEnd == 0 }

// Dur is the span's virtual duration (0 while open).
func (s Span) Dur() time.Duration {
	if s.Open() {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

// WallDur is the span's wall-clock duration (0 while open).
func (s Span) WallDur() time.Duration {
	if s.Open() {
		return 0
	}
	return time.Duration(s.WallEnd - s.WallStart)
}

// DefaultCapacity is the per-job ring size when NewRecorder gets cap <= 0.
const DefaultCapacity = 4096

// Recorder is the ring-buffered span store. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops returning zero), so
// instrumented layers pay exactly one pointer check when tracing is off.
type Recorder struct {
	mu      sync.Mutex
	ring    []Span
	next    uint64 // next SpanID to assign (1-based)
	dropped uint64 // spans overwritten by ring wrap-around
	now     func() sim.Time
	wall    func() int64
}

// NewRecorder builds a recorder holding the last capacity spans, reading
// virtual time from now (typically eng.Now).
func NewRecorder(capacity int, now func() sim.Time) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring: make([]Span, capacity),
		next: 1,
		now:  now,
		wall: func() int64 { return time.Now().UnixNano() },
	}
}

// slotLocked returns the live slot for id, or nil if id was never assigned
// or its slot has been overwritten by a newer span.
func (r *Recorder) slotLocked(id SpanID) *Span {
	if id == 0 || uint64(id) >= r.next {
		return nil
	}
	s := &r.ring[(uint64(id)-1)%uint64(len(r.ring))]
	if s.ID != id {
		return nil
	}
	return s
}

// Begin records a new span starting now. Returns 0 on a nil recorder.
func (r *Recorder) Begin(job, stage, cause string, parent SpanID) SpanID {
	if r == nil {
		return 0
	}
	return r.BeginAt(job, stage, cause, parent, r.now())
}

// BeginAt records a new span with an explicit virtual start (stages whose
// true start is known only retroactively, like a backoff window).
func (r *Recorder) BeginAt(job, stage, cause string, parent SpanID, at sim.Time) SpanID {
	if r == nil {
		return 0
	}
	w := r.wall()
	r.mu.Lock()
	id := SpanID(r.next)
	r.next++
	s := &r.ring[(uint64(id)-1)%uint64(len(r.ring))]
	if s.ID != 0 {
		r.dropped++
	}
	*s = Span{ID: id, Parent: parent, Job: job, Stage: stage, Cause: cause, Start: at, WallStart: w}
	r.mu.Unlock()
	return id
}

// End closes the span at the current virtual instant.
func (r *Recorder) End(id SpanID) {
	if r == nil {
		return
	}
	r.EndAt(id, r.now())
}

// EndAt closes the span with an explicit virtual end time. Ending an
// already-overwritten (or unknown) span is a no-op.
func (r *Recorder) EndAt(id SpanID, at sim.Time) {
	if r == nil {
		return
	}
	w := r.wall()
	r.mu.Lock()
	if s := r.slotLocked(id); s != nil && s.WallEnd == 0 {
		s.End = at
		s.WallEnd = w
	}
	r.mu.Unlock()
}

// Annotate sets the span's peer and/or detail labels (empty strings leave
// the existing value).
func (r *Recorder) Annotate(id SpanID, peer, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if s := r.slotLocked(id); s != nil {
		if peer != "" {
			s.Peer = peer
		}
		if detail != "" {
			s.Detail = detail
		}
	}
	r.mu.Unlock()
}

// Adopt re-parents a span into an incident tree and stamps its cause —
// how the triggering ingest batch, recorded before the incident existed,
// joins the tree once the trigger fires.
func (r *Recorder) Adopt(id, parent SpanID, cause string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if s := r.slotLocked(id); s != nil {
		s.Parent = parent
		s.Cause = cause
	}
	r.mu.Unlock()
}

// LastID returns the most recent span with the given stage (0 if none
// live), open or closed. Used to adopt the freshest ingest batch into a
// firing incident's tree.
func (r *Recorder) LastID(stage string) SpanID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := r.next - 1; id >= 1; id-- {
		s := r.slotLocked(SpanID(id))
		if s == nil {
			break // older slots are overwritten too
		}
		if s.Stage == stage {
			return s.ID
		}
	}
	return 0
}

// LastOpen returns the most recent still-open span with the given stage.
func (r *Recorder) LastOpen(stage string) SpanID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := r.next - 1; id >= 1; id-- {
		s := r.slotLocked(SpanID(id))
		if s == nil {
			break
		}
		if s.Stage == stage && s.WallEnd == 0 {
			return s.ID
		}
	}
	return 0
}

// Query filters the live ring.
type Query struct {
	// Cause restricts to one incident's tree ("" = all).
	Cause string
	// Stage restricts to one stage label ("" = all).
	Stage string
	// AfterID restricts to spans with ID > AfterID (incremental scans).
	AfterID SpanID
	// MinWall restricts to closed spans whose wall duration is at least
	// this (the slow-op scan); 0 = all.
	MinWall time.Duration
	// Limit caps the returned page (0 = everything). Total always counts
	// every match.
	Limit int
}

// Result is one query answer: matching spans in ID (record) order.
type Result struct {
	Spans []Span
	// Total counts every match before Limit.
	Total int
	// Dropped counts spans lost to ring wrap-around over the recorder's
	// lifetime.
	Dropped uint64
}

// Spans answers a query with copies of the matching spans, ascending ID.
func (r *Recorder) Spans(q Query) Result {
	if r == nil {
		return Result{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := uint64(1)
	if r.next > uint64(len(r.ring))+1 {
		oldest = r.next - uint64(len(r.ring))
	}
	if uint64(q.AfterID) >= oldest {
		oldest = uint64(q.AfterID) + 1
	}
	var out Result
	out.Dropped = r.dropped
	for id := oldest; id < r.next; id++ {
		s := r.slotLocked(SpanID(id))
		if s == nil {
			continue
		}
		if q.Cause != "" && s.Cause != q.Cause {
			continue
		}
		if q.Stage != "" && s.Stage != q.Stage {
			continue
		}
		if q.MinWall > 0 && (s.WallEnd == 0 || s.WallDur() < q.MinWall) {
			continue
		}
		out.Total++
		if q.Limit <= 0 || len(out.Spans) < q.Limit {
			out.Spans = append(out.Spans, *s)
		}
	}
	return out
}

// Tracer binds a recorder to one job and tracks the active incident, so
// instrumented layers can parent their stage spans without threading span
// IDs through every call. All methods are nil-safe: a layer holding a nil
// *Tracer pays one pointer check and records nothing.
type Tracer struct {
	r   *Recorder
	job string

	mu       sync.Mutex
	incident SpanID
	cause    string
}

// NewTracer binds recorder r to a job label.
func NewTracer(r *Recorder, job string) *Tracer {
	return &Tracer{r: r, job: job}
}

// Recorder exposes the underlying ring (nil-safe).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.r
}

// OpenIncident begins an incident root span at the given virtual time and
// makes it the active incident: subsequent Stage spans parent under it and
// inherit its cause label.
func (t *Tracer) OpenIncident(cause string, at sim.Time) SpanID {
	if t == nil {
		return 0
	}
	id := t.r.BeginAt(t.job, StageIncident, cause, 0, at)
	t.mu.Lock()
	t.incident, t.cause = id, cause
	t.mu.Unlock()
	return id
}

// CloseIncident ends the active incident root at the given virtual time.
func (t *Tracer) CloseIncident(at sim.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	id := t.incident
	t.incident, t.cause = 0, ""
	t.mu.Unlock()
	t.r.EndAt(id, at)
}

// Incident returns the active incident root and its cause (0, "" if none).
func (t *Tracer) Incident() (SpanID, string) {
	if t == nil {
		return 0, ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.incident, t.cause
}

// Stage begins a child span of the active incident at the current virtual
// instant (parentless with cause "" when no incident is open).
func (t *Tracer) Stage(stage string) SpanID {
	if t == nil {
		return 0
	}
	return t.StageAt(stage, t.r.now())
}

// StageAt is Stage with an explicit virtual start.
func (t *Tracer) StageAt(stage string, at sim.Time) SpanID {
	if t == nil {
		return 0
	}
	parent, cause := t.Incident()
	return t.r.BeginAt(t.job, stage, cause, parent, at)
}

// Batch begins a parentless, causeless span at the current virtual instant
// regardless of any open incident — the shape for routine per-batch
// pipeline spans (upload, ingest), which join an incident's tree only when
// detection adopts the triggering batch via AdoptLatest. Parenting every
// batch that merely overlaps an open incident would bury the causal tree.
func (t *Tracer) Batch(stage string) SpanID {
	if t == nil {
		return 0
	}
	return t.r.Begin(t.job, stage, "", 0)
}

// End closes a span at the current virtual instant (nil/zero-safe).
func (t *Tracer) End(id SpanID) { t.Recorder().End(id) }

// EndAt closes a span at an explicit virtual time (nil/zero-safe).
func (t *Tracer) EndAt(id SpanID, at sim.Time) { t.Recorder().EndAt(id, at) }

// Annotate forwards to the recorder (nil-safe).
func (t *Tracer) Annotate(id SpanID, peer, detail string) { t.Recorder().Annotate(id, peer, detail) }

// AdoptLatest pulls the most recent span of a stage into the active
// incident's tree (the triggering ingest batch). No-op without an open
// incident or a live span of that stage.
func (t *Tracer) AdoptLatest(stage string) {
	if t == nil {
		return
	}
	root, cause := t.Incident()
	if root == 0 {
		return
	}
	if id := t.r.LastID(stage); id != 0 && id != root {
		t.r.Adopt(id, root, cause)
	}
}
