package trace

import (
	"fmt"
	"sync"
)

// Ring is the fixed-size circular buffer tracepoints write into. The
// production system preallocates 512 MB of shared memory per host (§6.1) and
// writes fixed-size slots with no locking against the reader; here the
// writer/reader pair is the per-host agent, and a mutex stands in for the
// single-producer/single-consumer memory protocol (the write path is still
// O(1) and allocation-free).
//
// When the writer laps the reader the oldest records are overwritten and
// counted as dropped — back-pressure never propagates to the critical path,
// matching the paper's design.
type Ring struct {
	mu    sync.Mutex
	slots []Record
	head  uint64 // total records ever written
}

// NewRing creates a ring with the given slot capacity.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: non-positive ring capacity %d", capacity))
	}
	return &Ring{slots: make([]Record, capacity)}
}

// Capacity returns the slot count.
func (rb *Ring) Capacity() int { return len(rb.slots) }

// Written returns the total number of records ever written.
func (rb *Ring) Written() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.head
}

// Emit implements Sink: write one record, overwriting the oldest if full.
func (rb *Ring) Emit(r Record) {
	rb.mu.Lock()
	rb.slots[rb.head%uint64(len(rb.slots))] = r
	rb.head++
	rb.mu.Unlock()
}

// Reader drains a Ring from a cursor, detecting overwritten (lost) records.
type Reader struct {
	ring   *Ring
	cursor uint64
	lost   uint64
}

// NewReader returns a reader positioned at the current head (it will only
// see records emitted after its creation).
func (rb *Ring) NewReader() *Reader {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return &Reader{ring: rb, cursor: rb.head}
}

// Lost returns how many records were overwritten before being read.
func (r *Reader) Lost() uint64 { return r.lost }

// Drain returns all records emitted since the last drain. If the writer
// lapped the reader, the overwritten records are skipped and counted in
// Lost.
func (r *Reader) Drain() []Record {
	rb := r.ring
	rb.mu.Lock()
	defer rb.mu.Unlock()
	head := rb.head
	cap64 := uint64(len(rb.slots))
	if head == r.cursor {
		return nil
	}
	if head-r.cursor > cap64 {
		r.lost += head - r.cursor - cap64
		r.cursor = head - cap64
	}
	out := make([]Record, 0, head-r.cursor)
	for ; r.cursor < head; r.cursor++ {
		out = append(out, rb.slots[r.cursor%cap64])
	}
	return out
}
