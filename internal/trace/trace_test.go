package trace

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

func sample() Record {
	return Record{
		Kind: KindState, Time: sim.Time(12345),
		IP: "10.0.0.3", CommID: 7, Rank: 13, GPUID: 13, Channel: 1, QPID: 42,
		Op: OpAllReduce, OpSeq: 99, MsgSize: 1 << 30,
		Start: sim.Time(time.Second), End: 0,
		TotalChunks: 256, GPUReady: 100, RDMATransmitted: 90, RDMADone: 80,
		StuckNs: int64(2 * time.Second),
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := sample()
	b, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != WireSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), WireSize)
	}
	var got Record
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(commID, opSeq uint64, rank int32, ch, qp int32, msg int64, total, ready, tx, done uint32, stuck int64) bool {
		r := Record{
			Kind: KindCompletion, IP: "10.1.2.3", CommID: commID,
			Rank: topo.Rank(rank), Channel: ch, QPID: qp,
			Op: OpBroadcast, OpSeq: opSeq, MsgSize: msg,
			TotalChunks: total, GPUReady: ready, RDMATransmitted: tx, RDMADone: done,
			StuckNs: stuck,
		}
		b, err := r.MarshalBinary()
		if err != nil {
			return false
		}
		var got Record
		if err := got.UnmarshalBinary(b); err != nil {
			return false
		}
		return reflect.DeepEqual(r, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRejectsLongIP(t *testing.T) {
	r := sample()
	r.IP = "123.456.789.12345" // 17 bytes
	if _, err := r.MarshalBinary(); err == nil {
		t.Fatal("long IP accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var r Record
	if err := r.UnmarshalBinary(make([]byte, WireSize-1)); err == nil {
		t.Fatal("short buffer accepted")
	}
	b := make([]byte, WireSize)
	b[2] = 200 // corrupt IP length
	if err := r.UnmarshalBinary(b); err == nil {
		t.Fatal("corrupt IP length accepted")
	}
}

func TestStalledAndDone(t *testing.T) {
	r := sample()
	if !r.Stalled(time.Second) {
		t.Fatal("2s stuck not detected at 1s threshold")
	}
	if r.Stalled(3 * time.Second) {
		t.Fatal("2s stuck flagged at 3s threshold")
	}
	if r.Done() {
		t.Fatal("incomplete record reported Done")
	}
	r.RDMADone = r.TotalChunks
	if !r.Done() {
		t.Fatal("complete record not Done")
	}
	c := Record{Kind: KindCompletion, StuckNs: int64(time.Hour)}
	if c.Stalled(time.Second) {
		t.Fatal("completion log reported Stalled")
	}
}

func TestKindOpStrings(t *testing.T) {
	if KindCompletion.String() != "completion" || KindState.String() != "state" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
	if OpAllReduce.String() != "AllReduce" || OpBarrier.String() != "Barrier" {
		t.Fatal("op strings wrong")
	}
	if OpKind(200).String() == "" {
		t.Fatal("unknown op empty")
	}
	s := sample()
	if s.String() == "" || (&Record{Kind: KindCompletion}).String() == "" {
		t.Fatal("record String empty")
	}
}

func TestSinks(t *testing.T) {
	var got []Record
	s := SinkFunc(func(r Record) { got = append(got, r) })
	Tee(s, Null, s).Emit(sample())
	if len(got) != 2 {
		t.Fatalf("tee delivered %d copies, want 2", len(got))
	}
}

func TestRingBasics(t *testing.T) {
	rb := NewRing(4)
	if rb.Capacity() != 4 {
		t.Fatalf("capacity = %d", rb.Capacity())
	}
	rd := rb.NewReader()
	if recs := rd.Drain(); recs != nil {
		t.Fatalf("fresh reader drained %d records", len(recs))
	}
	for i := 0; i < 3; i++ {
		r := sample()
		r.OpSeq = uint64(i)
		rb.Emit(r)
	}
	recs := rd.Drain()
	if len(recs) != 3 {
		t.Fatalf("drained %d, want 3", len(recs))
	}
	for i, r := range recs {
		if r.OpSeq != uint64(i) {
			t.Fatalf("order broken: %v", recs)
		}
	}
	if rd.Lost() != 0 {
		t.Fatalf("lost = %d, want 0", rd.Lost())
	}
	if rb.Written() != 3 {
		t.Fatalf("written = %d", rb.Written())
	}
}

func TestRingOverwriteCountsLost(t *testing.T) {
	rb := NewRing(4)
	rd := rb.NewReader()
	for i := 0; i < 10; i++ {
		r := sample()
		r.OpSeq = uint64(i)
		rb.Emit(r)
	}
	recs := rd.Drain()
	if len(recs) != 4 {
		t.Fatalf("drained %d, want 4 (capacity)", len(recs))
	}
	if recs[0].OpSeq != 6 || recs[3].OpSeq != 9 {
		t.Fatalf("kept wrong window: %v..%v", recs[0].OpSeq, recs[3].OpSeq)
	}
	if rd.Lost() != 6 {
		t.Fatalf("lost = %d, want 6", rd.Lost())
	}
}

func TestRingReaderStartsAtHead(t *testing.T) {
	rb := NewRing(8)
	rb.Emit(sample())
	rd := rb.NewReader()
	if recs := rd.Drain(); len(recs) != 0 {
		t.Fatalf("reader saw %d pre-existing records", len(recs))
	}
	rb.Emit(sample())
	if recs := rd.Drain(); len(recs) != 1 {
		t.Fatalf("reader saw %d new records, want 1", len(recs))
	}
}

func TestRingIncrementalDrains(t *testing.T) {
	rb := NewRing(16)
	rd := rb.NewReader()
	total := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			rb.Emit(sample())
		}
		total += len(rd.Drain())
	}
	if total != 15 {
		t.Fatalf("drained %d total, want 15", total)
	}
}

func TestRingInvalidCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewRing(0)
}

// Property: drains never duplicate or reorder records.
func TestRingNoDuplicationProperty(t *testing.T) {
	f := func(batches []uint8) bool {
		rb := NewRing(32)
		rd := rb.NewReader()
		next := uint64(0)
		expect := uint64(0)
		for _, n := range batches {
			for i := 0; i < int(n%16); i++ {
				r := Record{OpSeq: next}
				next++
				rb.Emit(r)
			}
			for _, rec := range rd.Drain() {
				if rec.OpSeq < expect {
					return false // duplicate or reorder
				}
				expect = rec.OpSeq + 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
