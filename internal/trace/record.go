// Package trace defines Mycroft's Coll-level trace schema (Table 2 of the
// paper) and the shared-memory-style circular buffer the tracepoints write
// into.
//
// Two record kinds exist, matching §4.2:
//
//   - completion log: emitted once when a CollOp finishes on a rank, carrying
//     start/end timestamps, bytes and flow metadata.
//   - real-time state log: emitted periodically (default every 100 ms) per
//     active (rank, channel) while an op is in flight, carrying the chunk
//     counters (total_chunks, GPU_ready, RDMA_transmitted, RDMA_done) and the
//     stuck time. State logs stop if the proxy crashes — that silence is
//     itself a diagnostic signal.
package trace

import (
	"encoding/binary"
	"fmt"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Kind discriminates record types.
type Kind uint8

const (
	// KindCompletion marks a completion log.
	KindCompletion Kind = iota + 1
	// KindState marks a real-time state log.
	KindState
)

func (k Kind) String() string {
	switch k {
	case KindCompletion:
		return "completion"
	case KindState:
		return "state"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OpKind names a collective operation.
type OpKind uint8

const (
	OpNone OpKind = iota
	OpAllReduce
	OpAllGather
	OpReduceScatter
	OpBroadcast
	OpSendRecv
	OpAllToAll
	OpBarrier
)

var opNames = [...]string{"none", "AllReduce", "AllGather", "ReduceScatter", "Broadcast", "SendRecv", "AllToAll", "Barrier"}

func (o OpKind) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one trace log line. All Table 2 fields are present; state logs
// leave End zero, completion logs leave the chunk counters at their final
// values.
type Record struct {
	Kind Kind
	Time sim.Time // emission time

	// Metadata (Table 2 row 1).
	IP      topo.IP
	CommID  uint64
	Rank    topo.Rank // Gid: global rank id
	GPUID   int32
	Channel int32
	QPID    int32

	// Operation (Table 2 row 2).
	Op      OpKind
	OpSeq   uint64
	MsgSize int64
	Start   sim.Time
	End     sim.Time

	// Chunk (Table 2 row 3).
	TotalChunks     uint32
	GPUReady        uint32
	RDMATransmitted uint32
	RDMADone        uint32
	StuckNs         int64 // time since this channel last made progress
}

// WireSize is the fixed encoded size of a Record in bytes. The production
// system writes fixed-size slots into preallocated shared memory; keeping
// records fixed-size preserves the volume accounting of §6.1.
const WireSize = 112

const ipBytes = 16

// MarshalBinary encodes the record into a fixed WireSize buffer.
func (r *Record) MarshalBinary() ([]byte, error) {
	b := make([]byte, WireSize)
	if err := r.MarshalBinaryTo(b); err != nil {
		return nil, err
	}
	return b, nil
}

// MarshalBinaryTo encodes the record into the first WireSize bytes of b,
// which must be at least that long. Bulk encoders (the incident recorder's
// batch writer) use this to avoid one allocation per record.
func (r *Record) MarshalBinaryTo(b []byte) error {
	if len(r.IP) > ipBytes-1 {
		return fmt.Errorf("trace: IP %q longer than %d bytes", r.IP, ipBytes-1)
	}
	if len(b) < WireSize {
		return fmt.Errorf("trace: short buffer %d < %d", len(b), WireSize)
	}
	b[0] = byte(r.Kind)
	b[1] = byte(r.Op)
	b[2] = byte(len(r.IP))
	copy(b[3:3+ipBytes-1], r.IP)
	le := binary.LittleEndian
	le.PutUint64(b[18:], uint64(r.Time))
	le.PutUint64(b[26:], r.CommID)
	le.PutUint32(b[34:], uint32(r.Rank))
	le.PutUint32(b[38:], uint32(r.GPUID))
	le.PutUint32(b[42:], uint32(r.Channel))
	le.PutUint32(b[46:], uint32(r.QPID))
	le.PutUint64(b[50:], r.OpSeq)
	le.PutUint64(b[58:], uint64(r.MsgSize))
	le.PutUint64(b[66:], uint64(r.Start))
	le.PutUint64(b[74:], uint64(r.End))
	le.PutUint32(b[82:], r.TotalChunks)
	le.PutUint32(b[86:], r.GPUReady)
	le.PutUint32(b[90:], r.RDMATransmitted)
	le.PutUint32(b[94:], r.RDMADone)
	le.PutUint64(b[98:], uint64(r.StuckNs))
	return nil
}

// UnmarshalBinary decodes a fixed WireSize buffer.
func (r *Record) UnmarshalBinary(b []byte) error {
	if len(b) < WireSize {
		return fmt.Errorf("trace: short buffer %d < %d", len(b), WireSize)
	}
	le := binary.LittleEndian
	r.Kind = Kind(b[0])
	r.Op = OpKind(b[1])
	n := int(b[2])
	if n > ipBytes-1 {
		return fmt.Errorf("trace: corrupt IP length %d", n)
	}
	r.IP = topo.IP(b[3 : 3+n])
	r.Time = sim.Time(le.Uint64(b[18:]))
	r.CommID = le.Uint64(b[26:])
	r.Rank = topo.Rank(int32(le.Uint32(b[34:])))
	r.GPUID = int32(le.Uint32(b[38:]))
	r.Channel = int32(le.Uint32(b[42:]))
	r.QPID = int32(le.Uint32(b[46:]))
	r.OpSeq = le.Uint64(b[50:])
	r.MsgSize = int64(le.Uint64(b[58:]))
	r.Start = sim.Time(le.Uint64(b[66:]))
	r.End = sim.Time(le.Uint64(b[74:]))
	r.TotalChunks = le.Uint32(b[82:])
	r.GPUReady = le.Uint32(b[86:])
	r.RDMATransmitted = le.Uint32(b[90:])
	r.RDMADone = le.Uint32(b[94:])
	r.StuckNs = int64(le.Uint64(b[98:]))
	return nil
}

// Stalled reports whether a state log shows no transmission progress for at
// least d.
func (r *Record) Stalled(d sim.Duration) bool {
	return r.Kind == KindState && r.StuckNs >= int64(d)
}

// Done reports whether the counters show the channel finished its sends.
func (r *Record) Done() bool {
	return r.TotalChunks > 0 && r.RDMADone == r.TotalChunks
}

func (r *Record) String() string {
	if r.Kind == KindCompletion {
		return fmt.Sprintf("[%v] %s comm=%d rank=%d %s seq=%d %dB %v→%v",
			r.Time, r.Kind, r.CommID, r.Rank, r.Op, r.OpSeq, r.MsgSize, r.Start, r.End)
	}
	return fmt.Sprintf("[%v] %s comm=%d rank=%d ch=%d %s seq=%d chunks=%d/%d/%d/%d stuck=%v",
		r.Time, r.Kind, r.CommID, r.Rank, r.Channel, r.Op, r.OpSeq,
		r.GPUReady, r.RDMATransmitted, r.RDMADone, r.TotalChunks, sim.Duration(r.StuckNs))
}

// Sink consumes emitted records. The per-host ring buffer is the production
// sink; tests use slices.
type Sink interface {
	Emit(Record)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record)

// Emit implements Sink.
func (f SinkFunc) Emit(r Record) { f(r) }

// Null discards all records (tracing disabled).
var Null Sink = SinkFunc(func(Record) {})

// Tee fans a record out to several sinks.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(r Record) {
		for _, s := range sinks {
			s.Emit(r)
		}
	})
}
