package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v after run, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.At(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
		e.At(e.Now(), func() { trace = append(trace, e.Now()) }) // same-time requeue
	})
	e.Run()
	if len(trace) != 3 || trace[0] != 10 || trace[1] != 10 || trace[2] != 15 {
		t.Fatalf("trace = %v, want [10 10 15]", trace)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(50)
	if fired {
		t.Fatal("event at 100 fired during RunUntil(50)")
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", e.Now())
	}
	e.RunUntil(100)
	if !fired {
		t.Fatal("event at 100 did not fire during RunUntil(100)")
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(50, func() { fired = true })
	e.RunUntil(50)
	if !fired {
		t.Fatal("event scheduled exactly at boundary did not fire")
	}
}

func TestRunForAccumulates(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(time.Second)
	e.RunFor(time.Second)
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := e.NewTicker(100*time.Millisecond, func(now Time) {
		ticks = append(ticks, now)
	})
	e.RunUntil(Time(350 * time.Millisecond))
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	tk.Stop()
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	e.RunUntil(Time(time.Second))
	if len(ticks) != 3 {
		t.Fatalf("ticker fired after Stop: %v", ticks)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.NewTicker(time.Millisecond, func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("zero-period ticker did not panic")
		}
	}()
	e.NewTicker(0, func(Time) {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var out []int64
		for i := 0; i < 100; i++ {
			d := Duration(e.Rand().Intn(1000)) * time.Microsecond
			e.After(d, func() { out = append(out, int64(e.Now())) })
		}
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDispatchedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Dispatched() != 7 {
		t.Fatalf("Dispatched() = %d, want 7", e.Dispatched())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

// Property: for any set of non-negative offsets, events fire in sorted order
// and the clock is monotone.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		for _, off := range offsets {
			e.At(Time(off), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", tm.Seconds())
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatalf("Sub = %v, want 500ms", tm.Sub(Time(time.Second)))
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String() = %q, want 1.5s", tm.String())
	}
}
