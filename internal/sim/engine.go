// Package sim provides a deterministic discrete-event simulation engine.
//
// Every substrate in this repository (RDMA NICs, GPUs, the collective
// communication library, the trace pipeline and the Mycroft backend itself)
// is an entity on a single Engine. Events are closures ordered by virtual
// time with FIFO tie-breaking, so a run is fully deterministic for a given
// seed. Virtual time is measured in nanoseconds from the start of the run.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration re-exports time.Duration for call-site readability.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string {
	return Duration(t).String()
}

// Infinity is a time later than any event a run will schedule.
const Infinity = Time(1<<63 - 1)

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated concurrency is expressed as events.
type Engine struct {
	now        Time
	seq        uint64
	events     eventHeap
	rng        *rand.Rand
	dispatched uint64
}

// NewEngine returns an engine with virtual time 0 and a deterministic RNG
// derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic RNG. Components must draw all
// randomness from it (or from RNGs seeded by it) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Dispatched reports how many events have run so far (useful for cost
// accounting in experiments and tests).
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Pending reports how many events are scheduled but not yet dispatched.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at time t. Scheduling in the past panics: it is
// always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// Step dispatches the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.dispatched++
	ev.fn()
	return true
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d. See RunUntil.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Ticker invokes a callback periodically until cancelled.
type Ticker struct {
	eng     *Engine
	period  Duration
	fn      func(Time)
	stopped bool
}

// NewTicker starts a ticker whose first tick fires one period from now.
// The callback receives the tick's virtual time. Stop cancels future ticks.
func (e *Engine) NewTicker(period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.eng.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.eng.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker. It is safe to call from within the tick callback
// and more than once.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
