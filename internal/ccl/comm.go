// Package ccl implements an NCCL-like collective communication library on
// top of the simulated RDMA and GPU substrates. It reproduces the structure
// Mycroft instruments (§4.2 of the paper):
//
//   - A Communicator owns several "channels" (network flows). Each channel is
//     a ring over the communicator's ranks; rings are rotated inside each
//     node per channel so different channels cross nodes through different
//     NICs, as NCCL does.
//   - An operation's payload is split across channels, and each channel
//     pipelines fixed-size chunks through the ring: step s on rank r may send
//     only after (a) the local GPU staged the chunk into the proxy buffer and
//     (b) step s−1 on rank r−1 was delivered. These are the intra- and
//     inter-node dependencies of §3.1.
//   - A per-rank proxy maintains the Table 2 chunk counters (total_chunks,
//     GPU_ready, RDMA_transmitted, RDMA_done, stuck_time) and emits
//     completion logs and periodic real-time state logs into a trace.Sink.
//
// Operations on one communicator serialize per rank (stream order), but
// ranks progress independently: a healthy rank finishes op k and moves to
// op k+1 while a faulty rank is still stuck on k — which is exactly what
// makes the minimum-op_seq analysis of Algorithm 2 work.
package ccl

import (
	"fmt"
	"time"

	"mycroft/internal/gpusim"
	"mycroft/internal/rdma"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// RankInfo binds a rank to its hardware resources.
type RankInfo struct {
	Rank topo.Rank
	IP   topo.IP
	Node topo.NodeID
	GPU  *gpusim.GPU
	NIC  *rdma.NIC
}

// ChunkStage identifies a chunk-pipeline tracepoint, consumed by
// kernel-level baseline tracers.
type ChunkStage uint8

const (
	// StageGPUReady: the GPU staged a chunk into the proxy buffer.
	StageGPUReady ChunkStage = iota + 1
	// StageTransmit: the NIC finished pushing a chunk onto the wire.
	StageTransmit
	// StageDone: the proxy polled the chunk's CQE.
	StageDone
)

func (s ChunkStage) String() string {
	switch s {
	case StageGPUReady:
		return "gpu_ready"
	case StageTransmit:
		return "rdma_transmitted"
	case StageDone:
		return "rdma_done"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// OpMeta is the framework-visible identity of one collective operation.
type OpMeta struct {
	CommID uint64
	Seq    uint64
	Kind   trace.OpKind
	Bytes  int64
}

// Config tunes a communicator. Zero values take defaults.
type Config struct {
	// Channels is the number of network flows (NCCL channels). Default 2.
	Channels int
	// ChunkBytes is the pipeline chunk size — "the smallest data unit per
	// network path" (§3.2). Default 4 MiB.
	ChunkBytes int64
	// PipelineDepth bounds chunks staged ahead of transmission (the
	// preallocated GPU buffer slots). Default 4.
	PipelineDepth int
	// StateLogPeriod is the real-time state log interval. Default 100 ms.
	StateLogPeriod time.Duration
	// NVLink characteristics for intra-node hops. Defaults: 200 GB/s, 1 µs.
	NVLinkBandwidth float64
	NVLinkLatency   time.Duration

	// SinkFor returns the trace sink for a rank (its host's ring buffer).
	// Default: trace.Null for every rank.
	SinkFor func(topo.Rank) trace.Sink

	// OnLaunch fires when a rank's framework layer launches an op
	// (Flight-Recorder integration point).
	OnLaunch func(topo.Rank, OpMeta)
	// OnComplete fires when a rank finishes an op (Op-level tracers).
	OnComplete func(topo.Rank, OpMeta, sim.Time, sim.Time)
	// OnChunkEvent fires for every chunk pipeline stage (Kernel-level
	// tracers). High-volume.
	OnChunkEvent func(topo.Rank, ChunkStage, int64)
	// ChunkOverhead is added to the critical path before each chunk send is
	// posted, modelling synchronous per-event instrumentation cost
	// (kernel-level tracers pay this; Mycroft's asynchronous tracepoints do
	// not). Default 0.
	ChunkOverhead time.Duration
}

func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 2
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 4 << 20
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 4
	}
	if c.StateLogPeriod <= 0 {
		c.StateLogPeriod = 100 * time.Millisecond
	}
	if c.NVLinkBandwidth <= 0 {
		c.NVLinkBandwidth = 200e9
	}
	if c.NVLinkLatency <= 0 {
		c.NVLinkLatency = time.Microsecond
	}
	if c.SinkFor == nil {
		c.SinkFor = func(topo.Rank) trace.Sink { return trace.Null }
	}
	return c
}

// rankCtx is the per-rank proxy context, persistent across ops.
type rankCtx struct {
	comm    *Communicator
	idx     int
	info    RankInfo
	sink    trace.Sink
	crashed bool
	held    bool // rank busy outside the CCL (compute, dataloader…)
	cursor  int  // index into comm.ops of the next op this rank will work on
	pumping bool // re-entrancy guard for pump
	ticker  *sim.Ticker

	overheadBusy sim.Time // serialization point for synchronous tracer cost
}

// Communicator is an ordered group of ranks with per-channel ring links.
type Communicator struct {
	eng    *sim.Engine
	id     uint64
	cfg    Config
	ranks  []*rankCtx
	byRank map[topo.Rank]*rankCtx

	// Per channel: ring positions and links.
	ringPos  [][]int       // [ch][rankIdx] -> position in ring
	ringIdx  [][]int       // [ch][pos] -> rankIdx
	nextIdx  [][]int       // [ch][rankIdx] -> successor rankIdx
	prevIdx  [][]int       // [ch][rankIdx] -> predecessor rankIdx
	sendLink [][]rdma.Link // [ch][rankIdx] -> link to successor
	backLink [][]rdma.Link // [ch][rankIdx] -> link to predecessor
	qpid     [][]int       // [ch][rankIdx] -> qp id of successor link

	direct map[directKey]rdma.Link // lazy point-to-point links for SendRecv

	ops     []*opRun
	nextSeq uint64
	nextQP  int
	closed  bool
}

type directKey struct {
	ch       int
	src, dst int
}

// NewCommunicator builds a communicator over ranks (group order is
// significant: pipeline stages, ring construction and root indices all use
// it). id becomes comm_id in trace metadata.
func NewCommunicator(eng *sim.Engine, id uint64, ranks []RankInfo, cfg Config) *Communicator {
	if len(ranks) == 0 {
		panic("ccl: empty communicator")
	}
	cfg = cfg.withDefaults()
	c := &Communicator{
		eng: eng, id: id, cfg: cfg,
		byRank: make(map[topo.Rank]*rankCtx, len(ranks)),
		direct: make(map[directKey]rdma.Link),
	}
	for i, ri := range ranks {
		rc := &rankCtx{comm: c, idx: i, info: ri, sink: cfg.SinkFor(ri.Rank)}
		c.ranks = append(c.ranks, rc)
		if _, dup := c.byRank[ri.Rank]; dup {
			panic(fmt.Sprintf("ccl: duplicate rank %d in communicator %d", ri.Rank, id))
		}
		c.byRank[ri.Rank] = rc
	}
	c.buildRings()
	for _, rc := range c.ranks {
		rc := rc
		rc.ticker = eng.NewTicker(cfg.StateLogPeriod, func(now sim.Time) { rc.emitStateLogs(now) })
	}
	return c
}

// buildRings constructs one ring per channel. Ranks hosted on the same node
// appear as contiguous runs (in group order); each channel rotates every run
// by the channel index so the inter-node hop leaves through a different
// GPU's NIC per channel, spreading load across NICs as NCCL does.
func (c *Communicator) buildRings() {
	R := len(c.ranks)
	C := c.cfg.Channels
	c.ringPos = make([][]int, C)
	c.ringIdx = make([][]int, C)
	c.nextIdx = make([][]int, C)
	c.prevIdx = make([][]int, C)
	c.sendLink = make([][]rdma.Link, C)
	c.backLink = make([][]rdma.Link, C)
	c.qpid = make([][]int, C)

	// Group contiguous same-node runs (indices into c.ranks).
	var runs [][]int
	for i := 0; i < R; i++ {
		if i > 0 && c.ranks[i].info.Node == c.ranks[i-1].info.Node {
			runs[len(runs)-1] = append(runs[len(runs)-1], i)
		} else {
			runs = append(runs, []int{i})
		}
	}

	for ch := 0; ch < C; ch++ {
		ring := make([]int, 0, R)
		for _, run := range runs {
			off := ch % len(run)
			for k := 0; k < len(run); k++ {
				ring = append(ring, run[(off+k)%len(run)])
			}
		}
		c.ringIdx[ch] = ring
		c.ringPos[ch] = make([]int, R)
		c.nextIdx[ch] = make([]int, R)
		c.prevIdx[ch] = make([]int, R)
		c.sendLink[ch] = make([]rdma.Link, R)
		c.backLink[ch] = make([]rdma.Link, R)
		c.qpid[ch] = make([]int, R)
		for pos, idx := range ring {
			c.ringPos[ch][idx] = pos
		}
		if R == 1 {
			continue // single-rank comm: no links
		}
		for pos, idx := range ring {
			succ := ring[(pos+1)%R]
			pred := ring[(pos-1+R)%R]
			c.nextIdx[ch][idx] = succ
			c.prevIdx[ch][idx] = pred
			c.sendLink[ch][idx] = c.makeLink(ch, idx, succ)
			c.backLink[ch][idx] = c.makeLink(ch, idx, pred)
			qpID, _ := c.sendLink[ch][idx].Describe()
			c.qpid[ch][idx] = qpID
		}
	}
}

// makeLink creates the transport from rank index a to rank index b: NVLink
// when co-located, an RDMA QP otherwise.
func (c *Communicator) makeLink(ch, a, b int) rdma.Link {
	c.nextQP++
	id := int(c.id)*100000 + c.nextQP
	ra, rb := c.ranks[a].info, c.ranks[b].info
	if ra.Node == rb.Node {
		return rdma.NewNVLink(c.eng, id, c.cfg.NVLinkBandwidth, c.cfg.NVLinkLatency)
	}
	return rdma.NewQP(id, ra.NIC, rb.NIC).AsLink()
}

// directLink returns (lazily creating) a dedicated point-to-point link for
// SendRecv between arbitrary group members, reusing ring links when the pair
// is ring-adjacent on the channel.
func (c *Communicator) directLink(ch, src, dst int) rdma.Link {
	if c.nextIdx[ch][src] == dst && c.sendLink[ch][src] != nil {
		return c.sendLink[ch][src]
	}
	if c.prevIdx[ch][src] == dst && c.backLink[ch][src] != nil {
		return c.backLink[ch][src]
	}
	k := directKey{ch: ch, src: src, dst: dst}
	if l, ok := c.direct[k]; ok {
		return l
	}
	l := c.makeLink(ch, src, dst)
	c.direct[k] = l
	return l
}

// ID returns the communicator id (comm_id in trace metadata).
func (c *Communicator) ID() uint64 { return c.id }

// Size returns the number of ranks.
func (c *Communicator) Size() int { return len(c.ranks) }

// Ranks returns the member ranks in group order.
func (c *Communicator) Ranks() []topo.Rank {
	out := make([]topo.Rank, len(c.ranks))
	for i, rc := range c.ranks {
		out[i] = rc.info.Rank
	}
	return out
}

// IndexOf returns the group index of rank r, or -1.
func (c *Communicator) IndexOf(r topo.Rank) int {
	if rc, ok := c.byRank[r]; ok {
		return rc.idx
	}
	return -1
}

// NextSeq returns the op_seq the next submitted op will get.
func (c *Communicator) NextSeq() uint64 { return c.nextSeq }

// CrashProxy simulates the NCCL proxy thread of rank r exiting: counters
// freeze, no further chunks move, and — critically — state logs stop being
// emitted (§4.2: logs are generated "until the CollOp completes or the NCCL
// proxy thread exits or crashes").
func (c *Communicator) CrashProxy(r topo.Rank) {
	rc, ok := c.byRank[r]
	if !ok {
		panic(fmt.Sprintf("ccl: rank %d not in communicator %d", r, c.id))
	}
	rc.crashed = true
}

// ProxyCrashed reports whether rank r's proxy has crashed.
func (c *Communicator) ProxyCrashed(r topo.Rank) bool {
	rc, ok := c.byRank[r]
	return ok && rc.crashed
}

// Hold marks rank r busy outside the CCL (a compute phase, the dataloader, a
// checkpoint write): it will not launch queued ops until Release. This is
// how the training layer models each rank calling a collective only when its
// own computation finishes — the source of late starts and lagging op_seq.
func (c *Communicator) Hold(r topo.Rank) {
	rc, ok := c.byRank[r]
	if !ok {
		panic(fmt.Sprintf("ccl: rank %d not in communicator %d", r, c.id))
	}
	rc.held = true
}

// Release lets a held rank resume launching queued ops.
func (c *Communicator) Release(r topo.Rank) {
	rc, ok := c.byRank[r]
	if !ok {
		panic(fmt.Sprintf("ccl: rank %d not in communicator %d", r, c.id))
	}
	if !rc.held {
		return
	}
	rc.held = false
	rc.pump()
}

// Close stops the per-rank state-log tickers. The communicator must not be
// used afterwards.
func (c *Communicator) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, rc := range c.ranks {
		rc.ticker.Stop()
	}
}

// emitStateLogs writes one real-time state log per active channel for the
// rank's in-flight op, if any.
func (rc *rankCtx) emitStateLogs(now sim.Time) {
	if rc.crashed || rc.comm.closed {
		return
	}
	if rc.cursor >= len(rc.comm.ops) {
		return // idle
	}
	op := rc.comm.ops[rc.cursor]
	rr := op.rankRuns[rc.idx]
	if rr == nil || !rr.started || rr.done {
		return
	}
	for _, cr := range rr.chans {
		rec := trace.Record{
			Kind: trace.KindState, Time: now,
			IP: rc.info.IP, CommID: rc.comm.id, Rank: rc.info.Rank,
			GPUID: int32(rc.info.GPU.ID()), Channel: int32(cr.ch), QPID: int32(cr.qpid),
			Op: op.meta.Kind, OpSeq: op.meta.Seq, MsgSize: op.meta.Bytes,
			Start:       rr.start,
			TotalChunks: uint32(len(cr.sends)),
			GPUReady:    uint32(cr.staged), RDMATransmitted: uint32(cr.posted), RDMADone: uint32(cr.acked),
			StuckNs: int64(now.Sub(cr.lastProgress)),
		}
		rc.sink.Emit(rec)
	}
}
