package ccl

import (
	"testing"
	"testing/quick"
	"time"

	"mycroft/internal/gpusim"
	"mycroft/internal/rdma"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// env is a small simulated cluster for CCL tests.
type env struct {
	eng   *sim.Engine
	infos []RankInfo
	nics  []*rdma.NIC
	gpus  []*gpusim.GPU
	recs  map[topo.Rank]*[]trace.Record
}

// newEnv builds nodes×gpusPer ranks. Ranks are laid out node-major.
func newEnv(nodes, gpusPer int) *env {
	e := &env{eng: sim.NewEngine(42), recs: make(map[topo.Rank]*[]trace.Record)}
	for n := 0; n < nodes; n++ {
		for g := 0; g < gpusPer; g++ {
			r := topo.Rank(n*gpusPer + g)
			nic := rdma.NewNIC(e.eng, rdma.NICID(r), "nic", rdma.DefaultNIC())
			gpu := gpusim.New(e.eng, gpusim.ID(r), gpusim.DefaultGPU())
			e.nics = append(e.nics, nic)
			e.gpus = append(e.gpus, gpu)
			e.infos = append(e.infos, RankInfo{
				Rank: r, IP: topo.IP("10.0.0." + string(rune('0'+n))), Node: topo.NodeID(n),
				GPU: gpu, NIC: nic,
			})
			recs := &[]trace.Record{}
			e.recs[r] = recs
		}
	}
	return e
}

func (e *env) sinkFor(r topo.Rank) trace.Sink {
	recs := e.recs[r]
	return trace.SinkFunc(func(rec trace.Record) { *recs = append(*recs, rec) })
}

func (e *env) comm(cfg Config) *Communicator {
	cfg.SinkFor = e.sinkFor
	return NewCommunicator(e.eng, 1, e.infos, cfg)
}

func TestAllReduceCompletes(t *testing.T) {
	e := newEnv(4, 1)
	c := e.comm(Config{Channels: 1, ChunkBytes: 4 << 20})
	var doneAt sim.Time
	op := c.AllReduce(400<<20, func(ts sim.Time) { doneAt = ts })
	e.eng.RunFor(time.Second)
	if !op.Done() {
		t.Fatal("allreduce did not complete")
	}
	// 4 cross-node ranks, 1 channel, ring allreduce of 400 MiB:
	// per rank sends 2(R-1)/R × 400 MiB = 600 MiB at 50 GB/s ≈ 12.6 ms.
	if doneAt < sim.Time(11*time.Millisecond) || doneAt > sim.Time(25*time.Millisecond) {
		t.Fatalf("completed at %v, want ≈12–20 ms", doneAt)
	}
	if op.DoneTime() != doneAt {
		t.Fatal("DoneTime mismatch")
	}
}

func TestAllReduceEmitsCompletionLogs(t *testing.T) {
	e := newEnv(2, 2)
	c := e.comm(Config{Channels: 2})
	c.AllReduce(64<<20, nil)
	e.eng.RunFor(time.Second)
	for r := topo.Rank(0); r < 4; r++ {
		var completions int
		for _, rec := range *e.recs[r] {
			if rec.Kind == trace.KindCompletion {
				completions++
				if rec.Op != trace.OpAllReduce || rec.OpSeq != 0 || rec.MsgSize != 64<<20 {
					t.Fatalf("bad completion record: %+v", rec)
				}
				if rec.End <= rec.Start {
					t.Fatalf("non-positive op duration: %+v", rec)
				}
				if rec.RDMADone != rec.TotalChunks {
					t.Fatalf("completion with unfinished chunks: %+v", rec)
				}
			}
		}
		if completions != 1 {
			t.Fatalf("rank %d emitted %d completion logs, want 1", r, completions)
		}
	}
}

func TestStateLogsDuringLongOp(t *testing.T) {
	e := newEnv(2, 1)
	// Throttle NICs so the op takes ≫ 100 ms and state logs accumulate.
	e.nics[0].SetBandwidthScale(0.01)
	e.nics[1].SetBandwidthScale(0.01)
	c := e.comm(Config{Channels: 1, StateLogPeriod: 100 * time.Millisecond})
	c.AllReduce(256<<20, nil)
	e.eng.RunFor(500 * time.Millisecond)
	var states int
	for _, rec := range *e.recs[0] {
		if rec.Kind == trace.KindState {
			states++
			if rec.Channel != 0 || rec.Op != trace.OpAllReduce {
				t.Fatalf("bad state record: %+v", rec)
			}
			if rec.GPUReady < rec.RDMATransmitted || rec.RDMATransmitted < rec.RDMADone {
				t.Fatalf("counter monotonicity violated: %+v", rec)
			}
		}
	}
	if states < 3 {
		t.Fatalf("got %d state logs in 500ms, want ≥3", states)
	}
}

func TestChannelsSplitLoad(t *testing.T) {
	run := func(channels int) sim.Time {
		e := newEnv(2, 2) // intra-node pairs give the extra channel a 2nd NIC path
		c := e.comm(Config{Channels: channels})
		var doneAt sim.Time
		c.AllReduce(256<<20, func(ts sim.Time) { doneAt = ts })
		e.eng.RunFor(5 * time.Second)
		if doneAt == 0 {
			t.Fatal("op did not complete")
		}
		return doneAt
	}
	one, two := run(1), run(2)
	if two >= one {
		t.Fatalf("2 channels (%v) not faster than 1 (%v)", two, one)
	}
}

func TestRingRotationPerChannel(t *testing.T) {
	e := newEnv(2, 4)
	c := e.comm(Config{Channels: 2})
	if c.ringIdx[0][0] == c.ringIdx[1][0] {
		t.Fatalf("channel rings not rotated: ch0=%v ch1=%v", c.ringIdx[0], c.ringIdx[1])
	}
	// Every ring must be a permutation of all ranks.
	for ch := 0; ch < 2; ch++ {
		seen := make(map[int]bool)
		for _, idx := range c.ringIdx[ch] {
			seen[idx] = true
		}
		if len(seen) != 8 {
			t.Fatalf("channel %d ring covers %d ranks, want 8", ch, len(seen))
		}
	}
}

func TestBroadcastRoles(t *testing.T) {
	e := newEnv(3, 1)
	c := e.comm(Config{Channels: 1})
	var doneAt sim.Time
	c.Broadcast(64<<20, 0, func(ts sim.Time) { doneAt = ts })
	e.eng.RunFor(time.Second)
	if doneAt == 0 {
		t.Fatal("broadcast did not complete")
	}
	// Root emits but receives nothing; tail receives but sends nothing.
	op := c.ops[0]
	root := op.rankRuns[0].chans[0]
	tail := op.rankRuns[2].chans[0]
	if len(root.sends) == 0 || root.expectRecv != 0 {
		t.Fatalf("root role wrong: sends=%d recv=%d", len(root.sends), root.expectRecv)
	}
	if len(tail.sends) != 0 || tail.expectRecv == 0 {
		t.Fatalf("tail role wrong: sends=%d recv=%d", len(tail.sends), tail.expectRecv)
	}
}

func TestSendRecvAdjacentAndDistant(t *testing.T) {
	e := newEnv(4, 1)
	c := e.comm(Config{Channels: 1})
	var first, second sim.Time
	c.SendRecv(32<<20, 0, 1, func(ts sim.Time) { first = ts })
	c.SendRecv(32<<20, 0, 3, func(ts sim.Time) { second = ts }) // not ring-adjacent: direct link
	e.eng.RunFor(time.Second)
	if first == 0 || second == 0 {
		t.Fatalf("sendrecvs incomplete: %v %v", first, second)
	}
	if second <= first {
		t.Fatal("FIFO order violated across ops")
	}
}

func TestSendRecvBystandersFinishInstantly(t *testing.T) {
	e := newEnv(4, 1)
	c := e.comm(Config{Channels: 1})
	op := c.SendRecv(32<<20, 1, 2, nil)
	e.eng.RunFor(time.Second)
	if !op.Done() {
		t.Fatal("sendrecv incomplete")
	}
	if ts, ok := op.RankDone(0); !ok || ts != op.StartTime() {
		t.Fatalf("bystander rank not instantly done: %v %v", ts, ok)
	}
}

func TestAllOpKindsComplete(t *testing.T) {
	e := newEnv(2, 2)
	c := e.comm(Config{})
	done := 0
	cb := func(sim.Time) { done++ }
	c.AllGather(16<<20, cb)
	c.ReduceScatter(16<<20, cb)
	c.AllToAll(16<<20, cb)
	c.Barrier(cb)
	e.eng.RunFor(5 * time.Second)
	if done != 4 {
		t.Fatalf("%d/4 ops completed", done)
	}
}

func TestFIFOPerRank(t *testing.T) {
	e := newEnv(2, 1)
	c := e.comm(Config{Channels: 1})
	var order []uint64
	c.AllReduce(8<<20, func(sim.Time) { order = append(order, 0) })
	c.AllReduce(8<<20, func(sim.Time) { order = append(order, 1) })
	c.AllReduce(8<<20, func(sim.Time) { order = append(order, 2) })
	e.eng.RunFor(time.Second)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order = %v", order)
	}
}

func TestNICDownSignature(t *testing.T) {
	e := newEnv(4, 1)
	c := e.comm(Config{Channels: 1, PipelineDepth: 4})
	op := c.AllReduce(400<<20, nil)
	// Fault rank 1's NIC shortly after start.
	e.eng.After(time.Millisecond, func() { e.nics[1].SetDown(true) })
	e.eng.RunFor(3 * time.Second)
	if op.Done() {
		t.Fatal("op completed despite NIC down")
	}
	cr := c.ops[0].rankRuns[1].chans[0]
	// The faulty rank's outstanding WRs fill the queue and freeze: posted
	// ran ahead of CQEs by the pipeline depth — the send-path signature.
	if cr.posted-cr.acked != 4 {
		t.Fatalf("want posted-acked == depth at faulty rank, got %d-%d", cr.posted, cr.acked)
	}
	// A dependency-starved victim shows the opposite: no outstanding WRs,
	// staging buffer full.
	victim := c.ops[0].rankRuns[3].chans[0]
	if victim.posted != victim.acked {
		t.Fatalf("victim has outstanding WRs: posted=%d acked=%d", victim.posted, victim.acked)
	}
	if victim.staged-victim.posted != 4 {
		t.Fatalf("victim buffer not full: staged=%d posted=%d", victim.staged, victim.posted)
	}
	// The stall cascades outward, so the faulty rank carries the earliest
	// lastProgress (longest stuck_time) — the ordering Algorithm 2 exploits.
	for i, rr := range c.ops[0].rankRuns {
		if i == 1 {
			continue
		}
		if v := rr.chans[0]; v.lastProgress <= cr.lastProgress {
			t.Fatalf("rank %d stalled at %v, not after faulty rank (%v)", i, v.lastProgress, cr.lastProgress)
		}
	}
}

func TestGPUHangSignature(t *testing.T) {
	e := newEnv(4, 1)
	c := e.comm(Config{Channels: 1})
	op := c.AllReduce(400<<20, nil)
	e.eng.After(time.Millisecond, func() { e.gpus[1].SetHang(true) })
	e.eng.RunFor(3 * time.Second)
	if op.Done() {
		t.Fatal("op completed despite GPU hang")
	}
	cr := c.ops[0].rankRuns[1].chans[0]
	// GPU hang: the send path drained everything the GPU staged — all three
	// counters converge below total.
	if cr.staged != cr.posted || cr.posted != cr.acked {
		t.Fatalf("want staged == posted == acked at hung rank, got %d/%d/%d", cr.staged, cr.posted, cr.acked)
	}
	if cr.staged == len(cr.sends) {
		t.Fatal("hung rank staged everything — hang had no effect")
	}
}

func TestWireLossSignature(t *testing.T) {
	e := newEnv(4, 1)
	c := e.comm(Config{Channels: 1})
	op := c.AllReduce(400<<20, nil)
	e.eng.After(time.Millisecond, func() { e.nics[1].SetWireLoss(true) })
	e.eng.RunFor(3 * time.Second)
	if op.Done() {
		t.Fatal("op completed despite wire loss")
	}
	cr := c.ops[0].rankRuns[1].chans[0]
	// Wire loss: WRs keep being posted (and bytes keep leaving the NIC) but
	// CQEs stop — outstanding WRs pin at the queue bound and freeze.
	if cr.posted <= cr.acked {
		t.Fatalf("want posted > acked, got %d/%d", cr.posted, cr.acked)
	}
	if cr.transmitted <= cr.acked {
		t.Fatalf("want wire transmissions > acked, got %d/%d", cr.transmitted, cr.acked)
	}
}

func TestAnomalyPropagatesToAllRanks(t *testing.T) {
	e := newEnv(8, 1)
	c := e.comm(Config{Channels: 1})
	c.AllReduce(1<<30, nil)
	faultAt := sim.Time(2 * time.Millisecond)
	e.eng.At(faultAt, func() { e.nics[3].SetDown(true) })
	e.eng.RunFor(5 * time.Second)
	// Every rank's channel must eventually stop making progress.
	for i, rr := range c.ops[0].rankRuns {
		cr := rr.chans[0]
		if cr.done {
			t.Fatalf("rank %d finished despite upstream stall", i)
		}
		stalledFor := e.eng.Now().Sub(cr.lastProgress)
		if stalledFor < time.Second {
			t.Fatalf("rank %d still progressing %v after fault", i, stalledFor)
		}
	}
}

func TestProxyCrashStopsStateLogs(t *testing.T) {
	e := newEnv(2, 1)
	e.nics[0].SetBandwidthScale(0.001) // make the op crawl
	e.nics[1].SetBandwidthScale(0.001)
	c := e.comm(Config{Channels: 1, StateLogPeriod: 100 * time.Millisecond})
	c.AllReduce(256<<20, nil)
	e.eng.RunFor(500 * time.Millisecond)
	c.CrashProxy(0)
	if !c.ProxyCrashed(0) {
		t.Fatal("ProxyCrashed = false")
	}
	before := len(*e.recs[0])
	e.eng.RunFor(time.Second)
	if after := len(*e.recs[0]); after != before {
		t.Fatalf("crashed proxy emitted %d more logs", after-before)
	}
	// The healthy peer keeps logging (and keeps being stuck).
	if len(*e.recs[1]) <= before {
		t.Fatal("healthy rank stopped logging")
	}
}

func TestSkipRankDeadlocksGroup(t *testing.T) {
	e := newEnv(4, 1)
	c := e.comm(Config{Channels: 1})
	skipped := topo.Rank(2)
	launches := make(map[topo.Rank][]uint64)
	cfg := c.cfg
	cfg.OnLaunch = func(r topo.Rank, m OpMeta) { launches[r] = append(launches[r], m.Seq) }
	c.cfg = cfg
	op0 := c.Submit(OpSpec{Kind: trace.OpAllReduce, Bytes: 64 << 20, Skip: map[topo.Rank]bool{skipped: true}}, nil)
	op1 := c.AllReduce(64<<20, nil)
	e.eng.RunFor(5 * time.Second)
	if op0.Done() || op1.Done() {
		t.Fatal("deadlocked ops reported done")
	}
	// The skipped rank moved on and launched op 1; everyone else is on op 0.
	if got := launches[skipped]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("skipped rank launches = %v, want [1]", got)
	}
	if got := launches[topo.Rank(0)]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("rank 0 launches = %v, want [0]", got)
	}
}

func TestHoldDelaysLaunch(t *testing.T) {
	e := newEnv(2, 1)
	c := e.comm(Config{Channels: 1})
	c.Hold(0)
	op := c.AllReduce(8<<20, nil)
	e.eng.RunFor(300 * time.Millisecond)
	if _, started := op.RankStart(0); started {
		t.Fatal("held rank started the op")
	}
	if _, started := op.RankStart(1); !started {
		t.Fatal("free rank did not start the op")
	}
	c.Release(0)
	e.eng.RunFor(time.Second)
	if !op.Done() {
		t.Fatal("op incomplete after release")
	}
	start0, _ := op.RankStart(0)
	if start0 < sim.Time(300*time.Millisecond) {
		t.Fatalf("held rank start = %v, want ≥300ms", start0)
	}
}

func TestChunkOverheadSlowsOp(t *testing.T) {
	run := func(oh time.Duration) sim.Time {
		e := newEnv(2, 1)
		c := e.comm(Config{Channels: 1, ChunkOverhead: oh})
		var doneAt sim.Time
		c.AllReduce(256<<20, func(ts sim.Time) { doneAt = ts })
		e.eng.RunFor(10 * time.Second)
		return doneAt
	}
	clean, traced := run(0), run(200*time.Microsecond)
	if clean == 0 || traced == 0 {
		t.Fatal("ops incomplete")
	}
	if float64(traced) < 1.5*float64(clean) {
		t.Fatalf("per-chunk overhead barely slowed the op: %v vs %v", clean, traced)
	}
}

func TestOnChunkEventFires(t *testing.T) {
	e := newEnv(2, 1)
	counts := map[ChunkStage]int{}
	c := NewCommunicator(e.eng, 1, e.infos, Config{
		Channels:     1,
		OnChunkEvent: func(_ topo.Rank, s ChunkStage, _ int64) { counts[s]++ },
	})
	c.AllReduce(32<<20, nil)
	e.eng.RunFor(time.Second)
	if counts[StageGPUReady] == 0 || counts[StageTransmit] == 0 || counts[StageDone] == 0 {
		t.Fatalf("chunk events missing: %v", counts)
	}
	if counts[StageGPUReady] != counts[StageTransmit] || counts[StageTransmit] != counts[StageDone] {
		t.Fatalf("chunk stage counts unbalanced: %v", counts)
	}
}

func TestOnCompleteHook(t *testing.T) {
	e := newEnv(2, 1)
	var metas []OpMeta
	c := NewCommunicator(e.eng, 9, e.infos, Config{
		Channels:   1,
		OnComplete: func(_ topo.Rank, m OpMeta, _, _ sim.Time) { metas = append(metas, m) },
	})
	c.AllReduce(8<<20, nil)
	e.eng.RunFor(time.Second)
	if len(metas) != 2 {
		t.Fatalf("OnComplete fired %d times, want 2", len(metas))
	}
	if metas[0].CommID != 9 || metas[0].Kind != trace.OpAllReduce {
		t.Fatalf("bad meta: %+v", metas[0])
	}
}

func TestSingleRankComm(t *testing.T) {
	e := newEnv(1, 1)
	c := e.comm(Config{Channels: 2})
	op := c.AllReduce(1<<20, nil)
	e.eng.RunFor(time.Millisecond)
	if !op.Done() {
		t.Fatal("single-rank op incomplete")
	}
}

func TestCloseStopsTickers(t *testing.T) {
	e := newEnv(2, 1)
	e.nics[0].SetBandwidthScale(0.001)
	e.nics[1].SetBandwidthScale(0.001)
	c := e.comm(Config{Channels: 1})
	c.AllReduce(256<<20, nil)
	e.eng.RunFor(300 * time.Millisecond)
	c.Close()
	c.Close() // idempotent
	before := len(*e.recs[0])
	e.eng.RunFor(time.Second)
	if len(*e.recs[0]) != before {
		t.Fatal("state logs after Close")
	}
}

func TestDeterministicCompletion(t *testing.T) {
	run := func() sim.Time {
		e := newEnv(4, 2)
		c := e.comm(Config{})
		var doneAt sim.Time
		c.AllReduce(128<<20, func(ts sim.Time) { doneAt = ts })
		e.eng.RunFor(5 * time.Second)
		return doneAt
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic completion: %v vs %v", a, b)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newEnv(2, 1)
	c := e.comm(Config{Channels: 1})
	for name, fn := range map[string]func(){
		"zero bytes":    func() { c.AllReduce(0, nil) },
		"bad root":      func() { c.Broadcast(1<<20, 5, nil) },
		"self sendrecv": func() { c.SendRecv(1<<20, 0, 0, nil) },
		"oob sendrecv":  func() { c.SendRecv(1<<20, 0, 7, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCommAccessors(t *testing.T) {
	e := newEnv(2, 2)
	c := e.comm(Config{})
	if c.ID() != 1 || c.Size() != 4 {
		t.Fatalf("ID/Size = %d/%d", c.ID(), c.Size())
	}
	if c.IndexOf(2) != 2 || c.IndexOf(99) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if len(c.Ranks()) != 4 {
		t.Fatal("Ranks wrong")
	}
	if c.NextSeq() != 0 {
		t.Fatal("NextSeq wrong")
	}
	c.AllReduce(1<<20, nil)
	if c.NextSeq() != 1 {
		t.Fatal("NextSeq did not advance")
	}
}

// Property: chunkList pieces are positive, ≤ chunk, and sum to max(n, 1).
func TestChunkListProperty(t *testing.T) {
	f := func(nRaw, chunkRaw uint32) bool {
		n := int64(nRaw % (1 << 26))
		chunk := int64(chunkRaw%(8<<20)) + 1
		pieces := chunkList(n, chunk)
		var sum int64
		for _, p := range pieces {
			if p <= 0 || p > chunk {
				return false
			}
			sum += p
		}
		want := n
		if want <= 0 {
			want = 1
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every op kind, all chunk accounting converges exactly at
// completion (acked == sends, delivered == expectRecv on every channel).
func TestChunkConservation(t *testing.T) {
	kinds := []trace.OpKind{trace.OpAllReduce, trace.OpAllGather, trace.OpReduceScatter, trace.OpAllToAll, trace.OpBroadcast}
	for _, kind := range kinds {
		e := newEnv(2, 2)
		c := e.comm(Config{})
		c.Submit(OpSpec{Kind: kind, Bytes: 48 << 20}, nil)
		e.eng.RunFor(5 * time.Second)
		op := c.ops[0]
		if !op.globalDone {
			t.Fatalf("%v incomplete", kind)
		}
		for i, rr := range op.rankRuns {
			for _, cr := range rr.chans {
				if cr.acked != len(cr.sends) || cr.staged != len(cr.sends) {
					t.Fatalf("%v rank %d ch %d: staged=%d acked=%d sends=%d", kind, i, cr.ch, cr.staged, cr.acked, len(cr.sends))
				}
				if cr.delivered < cr.expectRecv {
					t.Fatalf("%v rank %d ch %d: delivered=%d expect=%d", kind, i, cr.ch, cr.delivered, cr.expectRecv)
				}
			}
		}
	}
}
