package ccl

import (
	"fmt"

	"mycroft/internal/rdma"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// OpSpec describes one collective operation.
type OpSpec struct {
	Kind trace.OpKind
	// Bytes is the per-rank payload (sendcount × element size for symmetric
	// collectives; the message size for SendRecv/Broadcast).
	Bytes int64
	// Root is the group index of the broadcast root.
	Root int
	// Src and Dst are group indices for SendRecv.
	Src, Dst int
	// Skip lists ranks that never launch the op — the synchronization
	// mismatch fault of §6.2. A skipped rank proceeds to the next op; the
	// group deadlocks, and only framework-level analysis (Flight Recorder)
	// sees why.
	Skip map[topo.Rank]bool
	// OnRankDone fires as each rank finishes its part.
	OnRankDone func(topo.Rank, sim.Time)
}

// Op is a handle on a submitted operation.
type Op struct{ run *opRun }

// Meta returns the operation's identity.
func (o *Op) Meta() OpMeta { return o.run.meta }

// Done reports whether every participating rank completed.
func (o *Op) Done() bool { return o.run.globalDone }

// StartTime returns when the first rank started the op (zero until then).
func (o *Op) StartTime() sim.Time { return o.run.startTime }

// DoneTime returns the global completion time (zero until Done).
func (o *Op) DoneTime() sim.Time { return o.run.doneTime }

// RankStart returns when rank r started its part, and whether it has.
func (o *Op) RankStart(r topo.Rank) (sim.Time, bool) {
	rc, ok := o.run.comm.byRank[r]
	if !ok || o.run.rankRuns[rc.idx] == nil {
		return 0, false
	}
	rr := o.run.rankRuns[rc.idx]
	return rr.start, rr.started
}

// RankDone returns when rank r finished its part, and whether it has.
func (o *Op) RankDone(r topo.Rank) (sim.Time, bool) {
	rc, ok := o.run.comm.byRank[r]
	if !ok || o.run.rankRuns[rc.idx] == nil {
		return 0, false
	}
	rr := o.run.rankRuns[rc.idx]
	return rr.end, rr.done
}

// ChanSnapshot is a point-in-time view of one (rank, channel) pipeline,
// for experiments and inspection tooling.
type ChanSnapshot struct {
	Channel      int
	Total        int
	Staged       int
	Posted       int
	Acked        int
	Delivered    int
	ExpectRecv   int
	LastProgress sim.Time
	Done         bool
}

// Snapshot returns the current per-channel pipeline state of rank r, or nil
// if the rank is not participating.
func (o *Op) Snapshot(r topo.Rank) []ChanSnapshot {
	rc, ok := o.run.comm.byRank[r]
	if !ok || o.run.rankRuns[rc.idx] == nil {
		return nil
	}
	rr := o.run.rankRuns[rc.idx]
	out := make([]ChanSnapshot, 0, len(rr.chans))
	for _, cr := range rr.chans {
		out = append(out, ChanSnapshot{
			Channel: cr.ch, Total: len(cr.sends),
			Staged: cr.staged, Posted: cr.posted, Acked: cr.acked,
			Delivered: cr.delivered, ExpectRecv: cr.expectRecv,
			LastProgress: cr.lastProgress, Done: cr.done,
		})
	}
	return out
}

// depNone marks sends with no remote dependency.
const depNone = 1 << 30

// opRun is the engine-side state of one op.
type opRun struct {
	comm       *Communicator
	meta       OpMeta
	spec       OpSpec
	idx        int // position in comm.ops
	rankRuns   []*rankRun
	remaining  int
	started    bool
	startTime  sim.Time
	doneTime   sim.Time
	globalDone bool
	onAllDone  func(sim.Time)
}

// rankRun is one rank's share of an op.
type rankRun struct {
	op      *opRun
	rc      *rankCtx
	chans   []*chanRun
	openCh  int
	started bool
	done    bool
	start   sim.Time
	end     sim.Time
}

// chanRun is the per-(rank, channel) chunk pipeline — the unit Mycroft's
// flow-level tracing observes.
type chanRun struct {
	rr   *rankRun
	ch   int
	qpid int

	link rdma.Link // outbound link (nil when this role sends nothing)
	peer *chanRun  // receiver of our sends (set after all chanRuns exist)

	sends      []int64 // chunk sizes, in send order
	depOffset  int     // send i needs delivered ≥ i-depOffset (depNone: none)
	expectRecv int

	stageReq    int // staging copies requested
	staged      int // GPU_ready: chunks the GPU copied into the proxy buffer
	nextSend    int
	posted      int // RDMA_transmitted: WRs the proxy handed to the NIC
	transmitted int // wire-level transmit completions (internal diagnostics)
	acked       int // RDMA_done: CQEs polled
	delivered   int // chunks received from our ring predecessor / peer

	lastProgress sim.Time
	done         bool
}

// Submit enqueues an operation. Each rank starts it as soon as that rank has
// locally completed all earlier ops on this communicator (stream order).
// onAllDone (optional) fires when every participating rank finished.
func (c *Communicator) Submit(spec OpSpec, onAllDone func(sim.Time)) *Op {
	if c.closed {
		panic("ccl: submit on closed communicator")
	}
	if spec.Bytes <= 0 {
		panic(fmt.Sprintf("ccl: non-positive op bytes %d", spec.Bytes))
	}
	meta := OpMeta{CommID: c.id, Seq: c.nextSeq, Kind: spec.Kind, Bytes: spec.Bytes}
	c.nextSeq++
	op := &opRun{comm: c, meta: meta, spec: spec, idx: len(c.ops), onAllDone: onAllDone}
	op.rankRuns = make([]*rankRun, len(c.ranks))
	for i, rc := range c.ranks {
		if spec.Skip[rc.info.Rank] {
			continue
		}
		rr := &rankRun{op: op, rc: rc}
		for ch := 0; ch < c.cfg.Channels; ch++ {
			cr := c.planChannel(op, rc, ch)
			rr.chans = append(rr.chans, cr)
			cr.rr = rr
		}
		rr.openCh = len(rr.chans)
		op.rankRuns[i] = rr
		op.remaining++
	}
	// Wire send targets now that every chanRun exists.
	for i, rr := range op.rankRuns {
		if rr == nil {
			continue
		}
		for chI, cr := range rr.chans {
			if cr.link == nil {
				continue
			}
			tgt := op.recvTarget(i, chI)
			if tgt >= 0 && op.rankRuns[tgt] != nil {
				cr.peer = op.rankRuns[tgt].chans[chI]
			}
		}
	}
	c.ops = append(c.ops, op)
	// Ranks already idle pick the op up immediately.
	for _, rc := range c.ranks {
		if rc.cursor == op.idx {
			rc.pump()
		}
	}
	return &Op{run: op}
}

// recvTarget returns the group index that receives rank i's channel-ch sends.
func (op *opRun) recvTarget(i, ch int) int {
	c := op.comm
	switch op.meta.Kind {
	case trace.OpSendRecv:
		if i == op.spec.Src {
			return op.spec.Dst
		}
		return -1
	default:
		if len(c.ranks) == 1 {
			return -1
		}
		return c.nextIdx[ch][i]
	}
}

// planChannel computes rank rc's send/receive obligations on channel ch.
func (c *Communicator) planChannel(op *opRun, rc *rankCtx, ch int) *chanRun {
	R := len(c.ranks)
	cr := &chanRun{ch: ch, lastProgress: c.eng.Now()}
	if R > 1 {
		cr.qpid = c.qpid[ch][rc.idx]
	}
	perChan := ceilDiv(op.spec.Bytes, int64(c.cfg.Channels))
	chunk := c.cfg.ChunkBytes

	if R == 1 {
		return cr // trivially complete
	}

	switch op.meta.Kind {
	case trace.OpAllReduce, trace.OpBarrier:
		seg := maxI64(ceilDiv(perChan, int64(R)), 1)
		per := chunkList(seg, chunk)
		steps := 2 * (R - 1)
		cr.sends = repeatChunks(per, steps)
		cr.depOffset = len(per) - 1
		cr.expectRecv = len(cr.sends)
		cr.link = c.sendLink[ch][rc.idx]
	case trace.OpReduceScatter, trace.OpAllToAll:
		seg := maxI64(ceilDiv(perChan, int64(R)), 1)
		per := chunkList(seg, chunk)
		steps := R - 1
		cr.sends = repeatChunks(per, steps)
		cr.depOffset = len(per) - 1
		cr.expectRecv = len(cr.sends)
		cr.link = c.sendLink[ch][rc.idx]
	case trace.OpAllGather:
		per := chunkList(maxI64(perChan, 1), chunk)
		steps := R - 1
		cr.sends = repeatChunks(per, steps)
		cr.depOffset = len(per) - 1
		cr.expectRecv = len(cr.sends)
		cr.link = c.sendLink[ch][rc.idx]
	case trace.OpBroadcast:
		if op.spec.Root < 0 || op.spec.Root >= R {
			panic(fmt.Sprintf("ccl: broadcast root %d out of range", op.spec.Root))
		}
		all := chunkList(maxI64(perChan, 1), chunk)
		rootPos := c.ringPos[ch][op.spec.Root]
		pos := (c.ringPos[ch][rc.idx] - rootPos + R) % R
		if pos < R-1 {
			cr.sends = all
			cr.link = c.sendLink[ch][rc.idx]
		}
		if pos > 0 {
			cr.expectRecv = len(all)
		}
		if pos == 0 {
			cr.depOffset = depNone
		} else {
			cr.depOffset = -1 // forward chunk i only after receiving it
		}
	case trace.OpSendRecv:
		if op.spec.Src == op.spec.Dst || op.spec.Src < 0 || op.spec.Dst < 0 || op.spec.Src >= R || op.spec.Dst >= R {
			panic(fmt.Sprintf("ccl: bad sendrecv pair (%d, %d)", op.spec.Src, op.spec.Dst))
		}
		all := chunkList(maxI64(perChan, 1), chunk)
		switch rc.idx {
		case op.spec.Src:
			cr.sends = all
			cr.depOffset = depNone
			cr.link = c.directLink(ch, op.spec.Src, op.spec.Dst)
		case op.spec.Dst:
			cr.expectRecv = len(all)
			cr.depOffset = depNone
		default:
			cr.depOffset = depNone
		}
	default:
		panic(fmt.Sprintf("ccl: unsupported op kind %v", op.meta.Kind))
	}
	return cr
}

// pump starts the rank's next pending op, skipping ops it was told to skip
// (the sync-mismatch fault), until it blocks on an in-flight op or drains.
// It is the only function that advances the cursor; the pumping flag keeps
// synchronous completions inside begin from advancing it twice.
func (rc *rankCtx) pump() {
	if rc.pumping {
		return
	}
	rc.pumping = true
	defer func() { rc.pumping = false }()
	for rc.cursor < len(rc.comm.ops) {
		op := rc.comm.ops[rc.cursor]
		rr := op.rankRuns[rc.idx]
		if rr == nil { // skipped: pretend this rank never saw the op
			rc.cursor++
			continue
		}
		if !rr.started {
			if rc.held {
				return // busy outside the CCL; Release will pump again
			}
			rr.begin()
		}
		if !rr.done {
			return
		}
		rc.cursor++
	}
}

// begin marks the rank-local op start: launch hook, staging fill.
func (rr *rankRun) begin() {
	now := rr.rc.comm.eng.Now()
	rr.started = true
	rr.start = now
	op := rr.op
	if !op.started {
		op.started = true
		op.startTime = now
	}
	if h := rr.rc.comm.cfg.OnLaunch; h != nil {
		h(rr.rc.info.Rank, op.meta)
	}
	for _, cr := range rr.chans {
		cr.lastProgress = now
		cr.fillStaging()
		cr.trySend()
		cr.checkDone()
	}
	rr.checkDone()
}

// fillStaging keeps up to PipelineDepth chunks in the preallocated buffer
// slots of §4.2. A slot is reclaimed when its WR completes (CQE), as NCCL
// does, so a send path that stops acking starves staging after depth chunks.
func (cr *chanRun) fillStaging() {
	rc := cr.rr.rc
	if rc.crashed {
		return
	}
	depth := rc.comm.cfg.PipelineDepth
	for cr.stageReq < len(cr.sends) && cr.stageReq < cr.acked+depth {
		i := cr.stageReq
		cr.stageReq++
		rc.info.GPU.Copy(cr.sends[i], func() {
			if rc.crashed || cr.rr.done {
				return
			}
			cr.staged++
			cr.progress()
			if h := rc.comm.cfg.OnChunkEvent; h != nil {
				h(rc.info.Rank, StageGPUReady, cr.sends[i])
			}
			cr.trySend()
		})
	}
}

// trySend posts every eligible chunk: staged, dependency satisfied, in order.
func (cr *chanRun) trySend() {
	rc := cr.rr.rc
	if rc.crashed || !cr.rr.started {
		return
	}
	for cr.nextSend < len(cr.sends) && cr.nextSend < cr.staged && cr.delivered >= cr.needDelivered(cr.nextSend) {
		i := cr.nextSend
		cr.nextSend++
		cr.post(i)
	}
}

func (cr *chanRun) needDelivered(i int) int {
	if cr.depOffset == depNone {
		return 0
	}
	need := i - cr.depOffset
	if need < 0 {
		return 0
	}
	return need
}

// post hands chunk i to the NIC, paying any synchronous tracer overhead.
// Posting is what the proxy's RDMA_transmitted counter observes.
func (cr *chanRun) post(i int) {
	rc := cr.rr.rc
	cr.posted++
	cr.progress()
	if h := rc.comm.cfg.OnChunkEvent; h != nil {
		h(rc.info.Rank, StageTransmit, cr.sends[i])
	}
	send := func() {
		if rc.crashed {
			return
		}
		cr.link.Send(cr.sends[i], rdma.SendCallbacks{
			OnTransmit: func() {
				if rc.crashed {
					return
				}
				cr.transmitted++
			},
			OnDeliver: func() {
				if cr.peer != nil {
					cr.peer.onDelivered()
				}
			},
			OnCQE: func() {
				if rc.crashed {
					return
				}
				cr.acked++
				cr.progress()
				if h := rc.comm.cfg.OnChunkEvent; h != nil {
					h(rc.info.Rank, StageDone, cr.sends[i])
				}
				cr.fillStaging()
				cr.checkDone()
			},
		})
	}
	if oh := rc.comm.cfg.ChunkOverhead; oh > 0 {
		// Synchronous instrumentation serializes on the proxy thread.
		at := rc.overheadBusy
		if now := rc.comm.eng.Now(); at < now {
			at = now
		}
		at = at.Add(oh)
		rc.overheadBusy = at
		rc.comm.eng.At(at, send)
	} else {
		send()
	}
}

// onDelivered counts a chunk arriving from the ring predecessor (or the
// SendRecv source). A crashed proxy never processes arrivals. Deliveries do
// NOT update lastProgress: stuck_time tracks only the Table 2 counters
// (GPU_ready / RDMA_transmitted / RDMA_done), so the rank whose local
// pipeline froze first carries the longest stuck time — the ordering
// Algorithm 2's minimum-progress search depends on.
func (cr *chanRun) onDelivered() {
	rc := cr.rr.rc
	if rc.crashed {
		return
	}
	cr.delivered++
	cr.trySend()
	cr.checkDone()
}

func (cr *chanRun) progress() {
	cr.lastProgress = cr.rr.rc.comm.eng.Now()
}

// checkDone closes the channel when all sends acked and receives arrived.
func (cr *chanRun) checkDone() {
	if cr.done || !cr.rr.started {
		return
	}
	if cr.acked == len(cr.sends) && cr.delivered >= cr.expectRecv {
		cr.done = true
		cr.rr.openCh--
		cr.rr.checkDone()
	}
}

// checkDone closes the rank's share: emits the completion log, fires hooks
// and lets the rank move to its next op.
func (rr *rankRun) checkDone() {
	if rr.done || !rr.started || rr.openCh > 0 {
		return
	}
	now := rr.rc.comm.eng.Now()
	rr.done = true
	rr.end = now
	op := rr.op
	rc := rr.rc

	var total, staged, tx, done uint32
	for _, cr := range rr.chans {
		total += uint32(len(cr.sends))
		staged += uint32(cr.staged)
		tx += uint32(cr.posted)
		done += uint32(cr.acked)
	}
	rc.sink.Emit(trace.Record{
		Kind: trace.KindCompletion, Time: now,
		IP: rc.info.IP, CommID: rc.comm.id, Rank: rc.info.Rank,
		GPUID: int32(rc.info.GPU.ID()), Channel: -1, QPID: -1,
		Op: op.meta.Kind, OpSeq: op.meta.Seq, MsgSize: op.meta.Bytes,
		Start: rr.start, End: now,
		TotalChunks: total, GPUReady: staged, RDMATransmitted: tx, RDMADone: done,
	})
	if h := rc.comm.cfg.OnComplete; h != nil {
		h(rc.info.Rank, op.meta, rr.start, now)
	}
	if h := op.spec.OnRankDone; h != nil {
		h(rc.info.Rank, now)
	}
	op.remaining--
	if op.remaining == 0 {
		op.globalDone = true
		op.doneTime = now
		if op.onAllDone != nil {
			op.onAllDone(now)
		}
	}
	rc.pump()
}

// AllReduce submits an all-reduce of bytes per rank.
func (c *Communicator) AllReduce(bytes int64, done func(sim.Time)) *Op {
	return c.Submit(OpSpec{Kind: trace.OpAllReduce, Bytes: bytes}, done)
}

// AllGather submits an all-gather with bytes per-rank input.
func (c *Communicator) AllGather(bytes int64, done func(sim.Time)) *Op {
	return c.Submit(OpSpec{Kind: trace.OpAllGather, Bytes: bytes}, done)
}

// ReduceScatter submits a reduce-scatter with bytes per-rank input.
func (c *Communicator) ReduceScatter(bytes int64, done func(sim.Time)) *Op {
	return c.Submit(OpSpec{Kind: trace.OpReduceScatter, Bytes: bytes}, done)
}

// Broadcast submits a broadcast of bytes from the rank at group index root.
func (c *Communicator) Broadcast(bytes int64, root int, done func(sim.Time)) *Op {
	return c.Submit(OpSpec{Kind: trace.OpBroadcast, Bytes: bytes, Root: root}, done)
}

// SendRecv submits a point-to-point transfer between group indices src and
// dst.
func (c *Communicator) SendRecv(bytes int64, src, dst int, done func(sim.Time)) *Op {
	return c.Submit(OpSpec{Kind: trace.OpSendRecv, Bytes: bytes, Src: src, Dst: dst}, done)
}

// AllToAll submits an all-to-all with bytes per-rank total payload.
func (c *Communicator) AllToAll(bytes int64, done func(sim.Time)) *Op {
	return c.Submit(OpSpec{Kind: trace.OpAllToAll, Bytes: bytes}, done)
}

// Barrier submits a synchronization barrier (a minimal all-reduce).
func (c *Communicator) Barrier(done func(sim.Time)) *Op {
	return c.Submit(OpSpec{Kind: trace.OpBarrier, Bytes: 64}, done)
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// chunkList splits n bytes into chunk-size pieces (the last possibly short).
func chunkList(n, chunk int64) []int64 {
	if n <= 0 {
		n = 1
	}
	k := int(ceilDiv(n, chunk))
	out := make([]int64, 0, k)
	rem := n
	for rem > chunk {
		out = append(out, chunk)
		rem -= chunk
	}
	out = append(out, rem)
	return out
}

// repeatChunks tiles per-step chunk sizes across steps.
func repeatChunks(per []int64, steps int) []int64 {
	out := make([]int64, 0, len(per)*steps)
	for s := 0; s < steps; s++ {
		out = append(out, per...)
	}
	return out
}
