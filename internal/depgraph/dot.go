package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"mycroft/internal/sim"
)

// DOT renders the current dependency graph in Graphviz dot syntax: one
// cluster per communicator, member frontiers as nodes, wait edges inside
// clusters and nested hops across them. Output is fully deterministic —
// comms, ranks and edges all render in sorted order — so same-seed runs
// export byte-identical graphs.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph mycroft_deps {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")

	nodeID := func(n Node) string {
		return fmt.Sprintf("r%d_c%d_s%d", n.Rank, n.Comm, n.Seq)
	}
	// Collect every edge first: nodes referenced by edges must exist even
	// when they sit one op ahead of the frontier (the not-yet-launched op of
	// a nested hop).
	edges := g.Edges(0)
	extra := map[uint64]map[Node]bool{}
	note := func(n Node) {
		if cv := g.comms[n.Comm]; cv != nil {
			if rc := cv.members[n.Rank]; rc != nil && rc.seq == n.Seq {
				return // rendered from the frontier below
			}
		}
		m := extra[n.Comm]
		if m == nil {
			m = make(map[Node]bool)
			extra[n.Comm] = m
		}
		m[n] = true
	}
	for _, e := range edges {
		note(e.From)
		note(e.To)
	}

	for _, id := range g.Comms() {
		cv := g.comms[id]
		fmt.Fprintf(&b, "  subgraph cluster_comm%d {\n    label=\"comm %d\";\n", id, id)
		for _, r := range sortedMembers(cv) {
			rc := cv.members[r]
			status := "done"
			if rc.inFlight() {
				status = "in-flight"
				if rc.stuckNs > 0 {
					status = fmt.Sprintf("stuck %v", sim.Duration(rc.stuckNs))
				}
			}
			fmt.Fprintf(&b, "    %s [label=\"rank %d\\n%s #%d\\n%s\"];\n",
				nodeID(Node{Rank: r, Comm: id, Seq: rc.seq}), r, rc.op, rc.seq, status)
		}
		pending := make([]Node, 0, len(extra[id]))
		for n := range extra[id] {
			pending = append(pending, n)
		}
		sort.Slice(pending, func(i, j int) bool {
			if pending[i].Rank != pending[j].Rank {
				return pending[i].Rank < pending[j].Rank
			}
			return pending[i].Seq < pending[j].Seq
		})
		for _, n := range pending {
			fmt.Fprintf(&b, "    %s [label=\"rank %d\\n#%d\\nnot launched\", style=dashed];\n",
				nodeID(n), n.Rank, n.Seq)
		}
		b.WriteString("  }\n")
	}

	style := map[EdgeKind]string{
		EdgeBarrier:  "",
		EdgePipeline: " [style=bold]",
		EdgeNested:   " [style=dashed, color=red]",
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s\"]%s;\n", nodeID(e.From), nodeID(e.To), e.Kind, style[e.Kind])
	}
	b.WriteString("}\n")
	return b.String()
}
