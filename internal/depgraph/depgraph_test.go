package depgraph

import (
	"strings"
	"testing"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

func sec(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

func state(r topo.Rank, comm, seq uint64, at sim.Time, stuck time.Duration) trace.Record {
	return trace.Record{
		Kind: trace.KindState, Time: at, Rank: r, CommID: comm, OpSeq: seq,
		Op: trace.OpAllReduce, TotalChunks: 100, GPUReady: 10, RDMATransmitted: 10, RDMADone: 8,
		StuckNs: int64(stuck),
	}
}

func completion(r topo.Rank, comm, seq uint64, at sim.Time) trace.Record {
	return trace.Record{
		Kind: trace.KindCompletion, Time: at, Rank: r, CommID: comm, OpSeq: seq,
		Op: trace.OpAllReduce, Start: at.Add(-100 * time.Millisecond), End: at,
	}
}

func sendrecv(rec trace.Record) trace.Record {
	rec.Op = trace.OpSendRecv
	return rec
}

func TestFrontierTracksNewestRecord(t *testing.T) {
	g := New()
	g.Observe(state(1, 7, 3, sec(1), 0))
	g.Observe(completion(1, 7, 3, sec(2)))
	g.Observe(state(1, 7, 4, sec(3), time.Second))

	if got := g.FrontierOp(1, 7); got != trace.OpAllReduce {
		t.Fatalf("frontier op = %v", got)
	}
	rc := g.ranks[1].comms[7]
	if rc.seq != 4 || !rc.inFlight() || rc.stuckNs != int64(time.Second) {
		t.Fatalf("frontier = %+v", rc)
	}
	// A completion closes the op: no longer in flight.
	g.Observe(completion(1, 7, 4, sec(4)))
	if rc.inFlight() {
		t.Fatal("completion did not close the op")
	}
	if g.Records() != 4 {
		t.Fatalf("records = %d", g.Records())
	}
}

func TestStuckCommPicksLatestStateInWindow(t *testing.T) {
	g := New()
	g.Observe(state(1, 7, 2, sec(5), 0))
	g.Observe(state(1, 9, 1, sec(6), 0)) // newer state on comm 9
	if comm, ok := g.StuckComm(1, 7, sec(0), sec(10)); !ok || comm != 9 {
		t.Fatalf("StuckComm = %d, %v", comm, ok)
	}
	// Excluding comm 9 leaves nothing except comm 7, which is excluded too
	// via the window: its state is at t=5, window (5, 10].
	if _, ok := g.StuckComm(1, 9, sec(5), sec(10)); ok {
		t.Fatal("stale state matched the window")
	}
	// Exclude 0 excludes nothing.
	if comm, ok := g.StuckComm(1, 0, sec(0), sec(10)); !ok || comm != 9 {
		t.Fatalf("StuckComm(0) = %d, %v", comm, ok)
	}
	if _, ok := g.StuckComm(99, 0, sec(0), sec(10)); ok {
		t.Fatal("unknown rank matched")
	}
}

func TestStuckCommDuringOverlapsSpans(t *testing.T) {
	g := New()
	// Rank 1 executed comm 9's op from t=2..4, then comm 11's from t=5..6.
	g.Observe(state(1, 9, 1, sec(2), 0))
	g.Observe(state(1, 9, 1, sec(4), 0))
	g.Observe(completion(1, 9, 1, sec(4.5)))
	g.Observe(state(1, 11, 1, sec(5), 0))
	g.Observe(state(1, 11, 1, sec(6), 0))

	// Window (3, 5.5]: both comms overlap; comm 9 started earlier.
	if comm, ok := g.StuckCommDuring(1, sec(3), sec(5.5), 7); !ok || comm != 9 {
		t.Fatalf("during = %d, %v", comm, ok)
	}
	// Window (4.8, 6]: only comm 11.
	if comm, ok := g.StuckCommDuring(1, sec(4.8), sec(6), 7); !ok || comm != 11 {
		t.Fatalf("during = %d, %v", comm, ok)
	}
	// Excluding the only overlapping comm finds nothing.
	if _, ok := g.StuckCommDuring(1, sec(4.8), sec(6), 11); ok {
		t.Fatal("excluded comm matched")
	}
	// Window after all activity.
	if _, ok := g.StuckCommDuring(1, sec(7), sec(9), 0); ok {
		t.Fatal("empty window matched")
	}
}

func TestSpanHistoryBounded(t *testing.T) {
	g := New()
	for seq := uint64(0); seq < 20; seq++ {
		g.Observe(state(1, 7, seq, sec(float64(seq)), 0))
		g.Observe(completion(1, 7, seq, sec(float64(seq)+0.5)))
	}
	if n := len(g.ranks[1].comms[7].spans); n != spanHistory {
		t.Fatalf("span history = %d, want %d", n, spanHistory)
	}
}

func TestBarrierEdges(t *testing.T) {
	g := New()
	// Rank 2 finished op 4 and never launched 5; ranks 0,1,3 in flight at 5.
	g.Observe(completion(2, 7, 4, sec(4)))
	for _, r := range []topo.Rank{0, 1, 3} {
		g.Observe(state(r, 7, 5, sec(10), 2*time.Second))
	}
	edges := g.Edges(7)
	if len(edges) != 3 {
		t.Fatalf("edges = %+v", edges)
	}
	for _, e := range edges {
		if e.Kind != EdgeBarrier || e.To.Rank != 2 || e.To.Seq != 4 {
			t.Fatalf("bad edge %+v", e)
		}
	}
	// Deterministic order by from-rank.
	if edges[0].From.Rank != 0 || edges[1].From.Rank != 1 || edges[2].From.Rank != 3 {
		t.Fatalf("edge order: %+v", edges)
	}
}

func TestPipelineEdgeKind(t *testing.T) {
	g := New()
	g.Observe(sendrecv(completion(2, 8, 4, sec(4))))
	g.Observe(sendrecv(state(3, 8, 5, sec(10), time.Second)))
	edges := g.Edges(8)
	if len(edges) != 1 || edges[0].Kind != EdgePipeline {
		t.Fatalf("edges = %+v", edges)
	}
	if g.HopKind(3, 8) != EdgePipeline || g.HopKind(3, 99) != EdgeNested {
		t.Fatal("HopKind wrong")
	}
}

func TestRingCouplingEdges(t *testing.T) {
	g := New()
	// All four ranks in flight on the same op; rank 2 stalled longest.
	for _, r := range []topo.Rank{0, 1, 3} {
		g.Observe(state(r, 7, 5, sec(10), 3*time.Second))
	}
	g.Observe(state(2, 7, 5, sec(10), 5*time.Second))
	edges := g.Edges(7)
	if len(edges) != 3 {
		t.Fatalf("edges = %+v", edges)
	}
	for _, e := range edges {
		if e.To.Rank != 2 {
			t.Fatalf("hub is not rank 2: %+v", e)
		}
	}
}

func TestNestedEdges(t *testing.T) {
	g := New()
	// Comm 7: rank 1 completed seq 4, peers in flight at 5.
	g.Observe(completion(1, 7, 4, sec(4)))
	for _, r := range []topo.Rank{0, 2, 3} {
		g.Observe(state(r, 7, 5, sec(10), 2*time.Second))
	}
	// Rank 1 is stuck inside comm 9.
	g.Observe(state(1, 9, 2, sec(10), 5*time.Second))
	g.Observe(state(5, 9, 2, sec(10), 2*time.Second))

	var nested []Edge
	for _, e := range g.Edges(0) {
		if e.Kind == EdgeNested {
			nested = append(nested, e)
		}
	}
	if len(nested) != 1 {
		t.Fatalf("nested edges = %+v", nested)
	}
	e := nested[0]
	if e.From != (Node{Rank: 1, Comm: 7, Seq: 5}) || e.To != (Node{Rank: 1, Comm: 9, Seq: 2}) {
		t.Fatalf("nested edge = %+v", e)
	}
}

func TestVictimsBlastRadius(t *testing.T) {
	g := New()
	// Comm 9 (TP): rank 1 is the root cause, rank 5 its ring peer — both in
	// flight on the same op, rank 5 stuck.
	g.Observe(state(1, 9, 2, sec(10), 5*time.Second))
	g.Observe(state(5, 9, 2, sec(10), 2*time.Second))
	// Comm 7 (DP): rank 1 never launched seq 5; ranks 0,2,3 wait in flight.
	g.Observe(completion(1, 7, 4, sec(4)))
	for _, r := range []topo.Rank{0, 2, 3} {
		g.Observe(state(r, 7, 5, sec(10), 2*time.Second))
	}
	got := g.Victims(1)
	want := []topo.Rank{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("victims = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("victims = %v, want %v", got, want)
		}
	}
	// A healthy bystander rank is not a victim.
	g.Observe(state(8, 13, 1, sec(10), 0))
	if got := g.Victims(1); len(got) != 4 {
		t.Fatalf("bystander dragged in: %v", got)
	}
}

func TestVictimsTransitiveAcrossComms(t *testing.T) {
	g := New()
	// Suspect 4 blocks comm 20 (ranks 4,5 on same op, 5 stuck).
	g.Observe(state(4, 20, 3, sec(10), 6*time.Second))
	g.Observe(state(5, 20, 3, sec(10), 3*time.Second))
	// Rank 5 in turn lags comm 21, where rank 6 waits one op ahead.
	g.Observe(state(6, 21, 8, sec(10), 2*time.Second))
	// rank 5's comm-21 frontier: completed 7, never launched 8.
	g.Observe(completion(5, 21, 7, sec(5)))
	got := g.Victims(4)
	want := []topo.Rank{5, 6}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("victims = %v, want %v", got, want)
	}
}

func TestVictimsEmptyForUnknownOrHealthy(t *testing.T) {
	g := New()
	g.Observe(completion(0, 7, 3, sec(1)))
	g.Observe(completion(1, 7, 3, sec(1)))
	if got := g.Victims(0); len(got) != 0 {
		t.Fatalf("healthy comm produced victims: %v", got)
	}
	if got := g.Victims(42); len(got) != 0 {
		t.Fatalf("unknown suspect produced victims: %v", got)
	}
}

func TestDOTDeterministicAndStructured(t *testing.T) {
	build := func() *Graph {
		g := New()
		g.Observe(completion(1, 7, 4, sec(4)))
		for _, r := range []topo.Rank{0, 2, 3} {
			g.Observe(state(r, 7, 5, sec(10), 2*time.Second))
		}
		g.Observe(state(1, 9, 2, sec(10), 5*time.Second))
		g.Observe(state(5, 9, 2, sec(10), 2*time.Second))
		return g
	}
	a, b := build().DOT(), build().DOT()
	if a != b {
		t.Fatal("DOT output is not deterministic")
	}
	for _, want := range []string{
		"digraph mycroft_deps", "cluster_comm7", "cluster_comm9",
		"nested-comm", "barrier-wait", "not launched",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("DOT missing %q:\n%s", want, a)
		}
	}
}

func TestObserveBatchAndAccessors(t *testing.T) {
	g := New()
	g.ObserveBatch([]trace.Record{
		state(0, 7, 1, sec(1), 0),
		state(1, 9, 1, sec(1), 0),
	})
	if comms := g.Comms(); len(comms) != 2 || comms[0] != 7 || comms[1] != 9 {
		t.Fatalf("comms = %v", comms)
	}
	if m := g.Members(7); len(m) != 1 || m[0] != 0 {
		t.Fatalf("members = %v", m)
	}
	if g.Members(99) != nil {
		t.Fatal("unknown comm has members")
	}
}
