// Package depgraph maintains the per-job op-level dependency graph the
// paper's dependency-tracing analysis walks: nodes are (rank, communicator,
// op_seq) states reconstructed from Coll-level trace records, and edges are
// the three dependency kinds of §3.1 —
//
//   - barrier waits inside one communicator (a member that launched op k is
//     held at the collective's implicit barrier by a member still behind),
//   - pipeline send/recv order (the same wait inside a SendRecv
//     communicator, where the order is the pipeline schedule), and
//   - inter-communicator nesting (a rank never launches comm A's next op
//     because it is visibly stuck inside comm B — nested parallelism
//     groups).
//
// The graph is updated incrementally as records ingest into the cloud store
// (O(1) map work per record), so root cause analysis walks an
// already-materialized frontier instead of re-scanning the trace database on
// every trigger. All queries iterate in sorted order and every tie-break is
// explicit, so walks reproduce bit-for-bit from a seed.
package depgraph

import (
	"sort"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// Node identifies one op-level state: rank r participating (or due to
// participate) in op Seq of communicator Comm.
type Node struct {
	Rank topo.Rank
	Comm uint64
	Seq  uint64
}

// EdgeKind classifies a dependency edge.
type EdgeKind string

const (
	// EdgeBarrier: an intra-communicator barrier wait — From launched the op
	// and is held by To, which is still behind.
	EdgeBarrier EdgeKind = "barrier-wait"
	// EdgePipeline: the same wait inside a SendRecv communicator, where the
	// order is the pipeline send/recv schedule.
	EdgePipeline EdgeKind = "pipeline-order"
	// EdgeNested: an inter-communicator hop — From's op never launches
	// because its rank is visibly stuck inside To's communicator.
	EdgeNested EdgeKind = "nested-comm"
)

// Edge is one dependency: From is blocked by (waits on) To.
type Edge struct {
	From, To Node
	Kind     EdgeKind
}

// opSpan records the observed state-log extent of one op on one
// (rank, comm): state logs for Seq were seen from First through Last.
type opSpan struct {
	seq         uint64
	first, last sim.Time
}

// spanHistory bounds the per-(rank, comm) op-span history kept for the
// "was this rank executing here during (from, to]?" query. The straggler
// chase looks back one analysis window, which a handful of ops cover.
const spanHistory = 8

// rankComm is the maintained frontier of one (rank, communicator) pair.
type rankComm struct {
	rank topo.Rank
	comm uint64

	seq  uint64     // highest op seq observed
	kind trace.Kind // newest record kind at that seq (completion wins)
	op   trace.OpKind
	last sim.Time // newest record's emission time

	lastState sim.Time // newest state log's emission time (0 = none yet)
	stateOrd  uint64   // per-rank ordinal of that state log
	stuckNs   int64    // that state log's stuck time

	spans []opSpan // bounded per-op state-log spans, oldest first
}

// inFlight reports whether the frontier shows an op still executing: the
// newest record is a state log, not a completion.
func (rc *rankComm) inFlight() bool { return rc.kind == trace.KindState }

// commView indexes one communicator's member frontiers.
type commView struct {
	id      uint64
	members map[topo.Rank]*rankComm
	maxSeq  uint64
}

// rankView indexes one rank's per-communicator frontiers.
type rankView struct {
	ord   uint64 // records observed for this rank, in emission order
	comms map[uint64]*rankComm
}

// Graph is the incrementally maintained dependency graph of one job.
type Graph struct {
	comms   map[uint64]*commView
	ranks   map[topo.Rank]*rankView
	records uint64
}

// New returns an empty graph; feed it with Observe / ObserveBatch.
func New() *Graph {
	return &Graph{comms: make(map[uint64]*commView), ranks: make(map[topo.Rank]*rankView)}
}

// Observe folds one trace record into the graph. Records for one rank must
// arrive in emission order (the cloud store enforces the same invariant);
// interleaving across ranks is arbitrary.
func (g *Graph) Observe(rec trace.Record) {
	g.records++
	rv := g.ranks[rec.Rank]
	if rv == nil {
		rv = &rankView{comms: make(map[uint64]*rankComm)}
		g.ranks[rec.Rank] = rv
	}
	rv.ord++

	rc := rv.comms[rec.CommID]
	if rc == nil {
		rc = &rankComm{rank: rec.Rank, comm: rec.CommID}
		rv.comms[rec.CommID] = rc
		cv := g.comms[rec.CommID]
		if cv == nil {
			cv = &commView{id: rec.CommID, members: make(map[topo.Rank]*rankComm)}
			g.comms[rec.CommID] = cv
		}
		cv.members[rec.Rank] = rc
	}

	switch {
	case rec.OpSeq > rc.seq || (rc.last == 0 && rc.kind == 0):
		rc.seq = rec.OpSeq
		rc.kind = rec.Kind
	case rec.OpSeq == rc.seq:
		// Same op: a completion supersedes its state logs; a late state log
		// never reopens a completed op.
		if rec.Kind == trace.KindCompletion {
			rc.kind = trace.KindCompletion
		}
	}
	rc.op = rec.Op
	rc.last = rec.Time
	if cv := g.comms[rec.CommID]; rec.OpSeq > cv.maxSeq {
		cv.maxSeq = rec.OpSeq
	}

	if rec.Kind == trace.KindState {
		rc.lastState = rec.Time
		rc.stateOrd = rv.ord
		rc.stuckNs = rec.StuckNs
		if n := len(rc.spans); n > 0 && rc.spans[n-1].seq == rec.OpSeq {
			rc.spans[n-1].last = rec.Time
		} else {
			rc.spans = append(rc.spans, opSpan{seq: rec.OpSeq, first: rec.Time, last: rec.Time})
			if len(rc.spans) > spanHistory {
				rc.spans = rc.spans[len(rc.spans)-spanHistory:]
			}
		}
	}
}

// ObserveBatch folds a whole ingest batch; it has the signature the cloud
// store's ingest observer hook expects.
func (g *Graph) ObserveBatch(batch []trace.Record) {
	for i := range batch {
		g.Observe(batch[i])
	}
}

// Records returns how many records the graph has folded in.
func (g *Graph) Records() uint64 { return g.records }

// Comms returns the known communicator ids, sorted.
func (g *Graph) Comms() []uint64 {
	out := make([]uint64, 0, len(g.comms))
	for id := range g.comms {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns a communicator's observed member ranks, sorted.
func (g *Graph) Members(comm uint64) []topo.Rank {
	cv := g.comms[comm]
	if cv == nil {
		return nil
	}
	return sortedMembers(cv)
}

func sortedMembers(cv *commView) []topo.Rank {
	out := make([]topo.Rank, 0, len(cv.members))
	for r := range cv.members {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StuckComm returns the communicator (≠ exclude; exclude 0 excludes none) on
// which rank r most recently emitted a state log with time in (from, to] —
// the op it is visibly stuck inside. Recency is the rank's own emission
// order, exactly matching a backward scan of its trace series.
func (g *Graph) StuckComm(r topo.Rank, exclude uint64, from, to sim.Time) (uint64, bool) {
	rv := g.ranks[r]
	if rv == nil {
		return 0, false
	}
	var best *rankComm
	for _, rc := range rv.comms {
		if rc.comm == exclude || rc.lastState == 0 {
			continue
		}
		if rc.lastState <= from || rc.lastState > to {
			continue
		}
		if best == nil || rc.stateOrd > best.stateOrd {
			best = rc
		}
	}
	if best == nil {
		return 0, false
	}
	return best.comm, true
}

// StuckCommDuring returns a communicator (≠ exclude) rank r was visibly
// executing an op on during (from, to] — evidence that a late start was
// dependency-induced rather than compute-induced. When several qualify, the
// one whose in-window activity starts earliest wins (lower comm id breaks
// ties). This approximates a forward scan of the rank's series at span
// granularity: a span already running when the window opens counts from the
// window start, which is exact to within one state-log period, and the
// spanHistory bound can drop activity older than the last spanHistory ops
// per (rank, comm) — both deliberate trades for O(1) maintenance, sized so
// the straggler chase's one-window look-back is unaffected.
func (g *Graph) StuckCommDuring(r topo.Rank, from, to sim.Time, exclude uint64) (uint64, bool) {
	rv := g.ranks[r]
	if rv == nil {
		return 0, false
	}
	bestComm := uint64(0)
	var bestAt sim.Time
	for _, rc := range rv.comms {
		if rc.comm == exclude {
			continue
		}
		for _, sp := range rc.spans {
			if sp.last <= from || sp.first > to {
				continue
			}
			at := sp.first
			if at <= from {
				at = from // span entered the window already running
			}
			if bestComm == 0 || at < bestAt || (at == bestAt && rc.comm < bestComm) {
				bestComm, bestAt = rc.comm, at
			}
			break // spans are time-ordered; the first overlap is the earliest
		}
	}
	return bestComm, bestComm != 0
}

// FrontierOp returns the op kind of rank r's newest record on a
// communicator (OpNone when unobserved).
func (g *Graph) FrontierOp(r topo.Rank, comm uint64) trace.OpKind {
	if rv := g.ranks[r]; rv != nil {
		if rc := rv.comms[comm]; rc != nil {
			return rc.op
		}
	}
	return trace.OpNone
}

// waitKind maps an op kind to the intra-comm edge kind: send/recv order is
// the pipeline schedule, everything else is a collective barrier.
func waitKind(op trace.OpKind) EdgeKind {
	if op == trace.OpSendRecv {
		return EdgePipeline
	}
	return EdgeBarrier
}

// HopKind classifies the inter-comm edge of a dependency chase landing on
// rank r inside comm: pipeline order when the nested op is a send/recv,
// plain nesting otherwise.
func (g *Graph) HopKind(r topo.Rank, comm uint64) EdgeKind {
	if g.FrontierOp(r, comm) == trace.OpSendRecv {
		return EdgePipeline
	}
	return EdgeNested
}

// commEdges derives one communicator's current wait edges from its member
// frontiers:
//
//   - members in flight at seq > the group minimum wait on every member
//     still at the minimum (barrier / pipeline order), and
//   - when the whole group is in flight on the same op, stuck members wait
//     on the member whose flows stalled longest (the ring coupling the
//     CheckMinData analysis exploits).
func commEdges(cv *commView) []Edge {
	members := sortedMembers(cv)
	if len(members) < 2 {
		return nil
	}
	minSeq := cv.members[members[0]].seq
	for _, r := range members[1:] {
		if s := cv.members[r].seq; s < minSeq {
			minSeq = s
		}
	}
	var laggards []*rankComm
	for _, r := range members {
		if rc := cv.members[r]; rc.seq == minSeq {
			laggards = append(laggards, rc)
		}
	}
	var edges []Edge
	if len(laggards) < len(members) {
		for _, r := range members {
			rc := cv.members[r]
			if rc.seq == minSeq || !rc.inFlight() {
				continue
			}
			for _, lag := range laggards {
				edges = append(edges, Edge{
					From: Node{Rank: rc.rank, Comm: cv.id, Seq: rc.seq},
					To:   Node{Rank: lag.rank, Comm: cv.id, Seq: lag.seq},
					Kind: waitKind(rc.op),
				})
			}
		}
		return edges
	}
	// Everyone is on the same op: the stalled-first member holds the ring.
	var hub *rankComm
	for _, r := range members {
		rc := cv.members[r]
		if !rc.inFlight() {
			continue
		}
		if hub == nil || rc.stuckNs > hub.stuckNs {
			hub = rc
		}
	}
	if hub == nil {
		return nil
	}
	for _, r := range members {
		rc := cv.members[r]
		if rc == hub || !rc.inFlight() || rc.stuckNs <= 0 {
			continue
		}
		edges = append(edges, Edge{
			From: Node{Rank: rc.rank, Comm: cv.id, Seq: rc.seq},
			To:   Node{Rank: hub.rank, Comm: cv.id, Seq: hub.seq},
			Kind: waitKind(rc.op),
		})
	}
	return edges
}

// nestedEdges derives the inter-communicator edges: rank r never launched
// comm A's next op (its frontier is a completion below the group maximum)
// while visibly in flight on comm B.
func (g *Graph) nestedEdges(cv *commView) []Edge {
	var edges []Edge
	for _, r := range sortedMembers(cv) {
		rc := cv.members[r]
		if rc.inFlight() || rc.seq >= cv.maxSeq {
			continue
		}
		rv := g.ranks[r]
		var busy *rankComm
		for _, other := range rv.comms {
			if other.comm == cv.id || !other.inFlight() {
				continue
			}
			if busy == nil || other.stateOrd > busy.stateOrd {
				busy = other
			}
		}
		if busy == nil {
			continue
		}
		edges = append(edges, Edge{
			From: Node{Rank: r, Comm: cv.id, Seq: rc.seq + 1},
			To:   Node{Rank: r, Comm: busy.comm, Seq: busy.seq},
			Kind: EdgeNested,
		})
	}
	return edges
}

// Edges derives the current dependency edges, grouped per communicator in
// ascending id order: each comm's wait edges first (by from-rank), then its
// nested hops (by rank). comm 0 means all; a non-zero comm restricts to
// edges touching that communicator (including nested hops out of it). The
// ordering is deterministic.
func (g *Graph) Edges(comm uint64) []Edge {
	var out []Edge
	for _, id := range g.Comms() {
		if comm != 0 && id != comm {
			continue
		}
		cv := g.comms[id]
		out = append(out, commEdges(cv)...)
		out = append(out, g.nestedEdges(cv)...)
	}
	return out
}

// Victims returns every rank transitively blocked by the suspect — the
// blast radius. A member waiting at a barrier behind a blocked rank is
// blocked; a member of a ring all on one op is blocked when a blocked
// member's flows pin it (its own progress is stuck); and blockage crosses
// communicators through shared ranks. The suspect itself is excluded; the
// result is sorted.
func (g *Graph) Victims(suspect topo.Rank) []topo.Rank {
	blocked := map[topo.Rank]bool{suspect: true}
	comms := g.Comms()
	for changed := true; changed; {
		changed = false
		for _, id := range comms {
			cv := g.comms[id]
			members := sortedMembers(cv)
			if len(members) < 2 {
				continue
			}
			minSeq := cv.members[members[0]].seq
			for _, r := range members[1:] {
				if s := cv.members[r].seq; s < minSeq {
					minSeq = s
				}
			}
			// Is any blocked rank holding this comm back?
			holding := false
			allSame := true
			for _, r := range members {
				rc := cv.members[r]
				if rc.seq != minSeq {
					allSame = false
				} else if blocked[r] {
					holding = true
				}
			}
			if !holding {
				continue
			}
			for _, r := range members {
				rc := cv.members[r]
				if blocked[r] || !rc.inFlight() {
					continue
				}
				// Ahead of the laggard: held at the barrier. Same op as
				// everyone: held by the ring only if visibly stuck.
				if rc.seq > minSeq || (allSame && rc.stuckNs > 0) {
					blocked[r] = true
					changed = true
				}
			}
		}
	}
	out := make([]topo.Rank, 0, len(blocked)-1)
	for r := range blocked {
		if r != suspect {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
