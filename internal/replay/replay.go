package replay

import (
	"fmt"
	"io"
	"time"

	"mycroft/internal/api"
	"mycroft/internal/clouddb"
	"mycroft/internal/core"
	"mycroft/internal/remedy"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Overrides is the what-if knob set: every field nil-or-set so JSON absence
// keeps the recorded value. Only thresholds that do not change *when*
// Algorithm 1 ran are overridable — evaluation instants are recorded facts
// (the Interval is therefore not here), while everything about what a pass
// concludes at those instants is fair game.
type Overrides struct {
	WindowNs           *int64   `json:"window_ns,omitempty"`
	ThroughputDrop     *float64 `json:"throughput_drop,omitempty"`
	IntervalGrow       *float64 `json:"interval_grow,omitempty"`
	StragglerLateNs    *int64   `json:"straggler_late_ns,omitempty"`
	LateCount          *int     `json:"late_count,omitempty"`
	StateFreshNs       *int64   `json:"state_fresh_ns,omitempty"`
	StragglerWindowNs  *int64   `json:"straggler_window_ns,omitempty"`
	StragglerSettleNs  *int64   `json:"straggler_settle_ns,omitempty"`
	RearmNs            *int64   `json:"rearm_ns,omitempty"`
	MinBaselineSamples *int     `json:"min_baseline_samples,omitempty"`
	BadWindows         *int     `json:"bad_windows,omitempty"`
	BadWindowSpan      *int     `json:"bad_window_span,omitempty"`
	FlowPressureFrac   *float64 `json:"flow_pressure_frac,omitempty"`
	ChaseDepth         *int     `json:"chase_depth,omitempty"`
}

// Zero reports whether no override is set.
func (o *Overrides) Zero() bool { return o == nil || *o == (Overrides{}) }

// apply layers the set fields over cfg.
func (o *Overrides) apply(cfg core.Config) core.Config {
	if o == nil {
		return cfg
	}
	setD := func(dst *time.Duration, src *int64) {
		if src != nil {
			*dst = time.Duration(*src)
		}
	}
	setF := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setI := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setD(&cfg.Window, o.WindowNs)
	setF(&cfg.ThroughputDrop, o.ThroughputDrop)
	setF(&cfg.IntervalGrow, o.IntervalGrow)
	setD(&cfg.StragglerLate, o.StragglerLateNs)
	setI(&cfg.LateCount, o.LateCount)
	setD(&cfg.StateFresh, o.StateFreshNs)
	setD(&cfg.StragglerWindow, o.StragglerWindowNs)
	setD(&cfg.StragglerSettle, o.StragglerSettleNs)
	setD(&cfg.RearmDelay, o.RearmNs)
	setI(&cfg.MinBaselineSamples, o.MinBaselineSamples)
	setI(&cfg.BadWindows, o.BadWindows)
	setI(&cfg.BadWindowSpan, o.BadWindowSpan)
	setF(&cfg.FlowPressureFrac, o.FlowPressureFrac)
	setI(&cfg.ChaseDepth, o.ChaseDepth)
	return cfg
}

// PolicySpec is the JSON form of a what-if remediation policy, mirroring the
// scenario file's remediate stanza.
type PolicySpec struct {
	Name  string     `json:"name,omitempty"`
	Rules []RuleSpec `json:"rules"`
}

// RuleSpec is one what-if policy rule.
type RuleSpec struct {
	Name       string   `json:"name,omitempty"`
	Categories []string `json:"categories,omitempty"`
	Vias       []string `json:"vias,omitempty"`
	MinChain   int      `json:"min_chain,omitempty"`
	Action     string   `json:"action"`
}

// Policy converts the spec to a domain policy, validating action names.
func (s PolicySpec) Policy() (remedy.Policy, error) {
	p := remedy.Policy{Name: s.Name}
	for i, r := range s.Rules {
		if !remedy.KnownAction(remedy.ActionKind(r.Action)) {
			return remedy.Policy{}, fmt.Errorf("replay: policy rule %d: unknown action %q", i, r.Action)
		}
		rule := remedy.Rule{Name: r.Name, MinChain: r.MinChain, Action: remedy.ActionKind(r.Action)}
		for _, c := range r.Categories {
			rule.Categories = append(rule.Categories, core.Category(c))
		}
		for _, v := range r.Vias {
			rule.Vias = append(rule.Vias, core.Via(v))
		}
		p.Rules = append(p.Rules, rule)
	}
	if err := p.Validate(); err != nil {
		return remedy.Policy{}, err
	}
	return p, nil
}

// WhatIf is the -whatif file format: threshold overrides and/or an
// alternative policy to shadow-match against the replayed verdicts.
type WhatIf struct {
	Overrides
	Policy *PolicySpec `json:"policy,omitempty"`
}

// Options tunes one replay.
type Options struct {
	// Overrides replaces detection/analysis thresholds (nil = faithful).
	Overrides *Overrides
	// Policy, when set, is dry-run matched against every replayed report;
	// the hypothetical actions land in Result.Shadow. Nothing is executed —
	// the incident already happened.
	Policy *remedy.Policy
}

// Outcome is one analysis run's ordered trigger and report streams.
type Outcome struct {
	Triggers []core.Trigger
	Reports  []core.Report
}

// ShadowAction is one mitigation a what-if policy would have ordered.
type ShadowAction struct {
	// ReportIndex indexes Result.Replayed.Reports.
	ReportIndex int
	Policy      string
	Rule        string
	Action      remedy.ActionKind
	Rank        topo.Rank
	Comm        uint64
	Category    core.Category
}

func (a ShadowAction) String() string {
	return fmt.Sprintf("report %d → %s/%s: %s rank %d (comm %d, %s)",
		a.ReportIndex, a.Policy, a.Rule, a.Action, a.Rank, a.Comm, a.Category)
}

// Result is one replay's full outcome.
type Result struct {
	Header   Header
	Footer   Footer
	Complete bool

	// Recorded is the original run's outcome, extracted from the artifact's
	// event entries. Replayed is what the fresh engine concluded from the
	// same evidence; under faithful options the two match byte-for-byte.
	Recorded Outcome
	Replayed Outcome

	// RecordsIngested and Evals count the replayed inputs.
	RecordsIngested uint64
	Evals           uint64

	// Shadow lists the actions Options.Policy would have ordered.
	Shadow []ShadowAction
}

// Replay decodes an artifact and re-drives its evidence through a fresh
// analysis stack: a new deterministic engine, a new trace store, a new
// backend built from the header's (possibly overridden) configuration. The
// backend's evaluation timer is never armed — the artifact's eval entries
// are the clock, applied in recorded order after the engine catches up to
// each entry's instant (so deferred straggler analyses scheduled by earlier
// entries fire exactly where they originally did).
func Replay(r io.Reader, opts Options) (*Result, error) {
	dec, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	h := dec.Header()
	res := &Result{Header: h}

	cfg := opts.Overrides.apply(h.Backend.Config())
	sampled := make([]topo.Rank, len(h.SampledRanks))
	for i, r := range h.SampledRanks {
		sampled[i] = topo.Rank(r)
	}
	if len(sampled) == 0 {
		return nil, fmt.Errorf("%w: header has no sampled ranks", ErrCorrupt)
	}
	eng := sim.NewEngine(h.Seed)
	db := clouddb.New(eng, 0) // retention off: the artifact is already bounded
	bk := core.NewBackend(eng, db, sampled, cfg)
	bk.SetPublisher(func(ev core.Event) {
		switch ev.Kind {
		case core.EventTrigger:
			res.Replayed.Triggers = append(res.Replayed.Triggers, *ev.Trigger)
		case core.EventReport:
			res.Replayed.Reports = append(res.Replayed.Reports, *ev.Report)
		}
	})

	lastAt := h.StartNs
	for {
		entry, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		lastAt = entry.At
		// Catch the engine up first: anything the backend deferred (the
		// straggler settle) to an instant at or before this entry originally
		// ran before it, because it was scheduled strictly earlier.
		eng.RunUntil(sim.Time(entry.At))
		switch entry.Kind {
		case EntryBatch:
			db.Ingest(entry.Batch)
			res.RecordsIngested += uint64(len(entry.Batch))
		case EntryEval:
			bk.Evaluate(sim.Time(entry.At))
			res.Evals++
		case EntryEvent:
			if err := collectRecorded(&res.Recorded, entry.Event); err != nil {
				return nil, err
			}
		}
	}
	endNs := lastAt
	if f, ok := dec.Footer(); ok {
		res.Footer, res.Complete = f, true
		endNs = f.EndNs
	}
	// Drain deferred analyses up to the recorded horizon — and no further,
	// so a replay never invents verdicts the original run had no time for.
	eng.RunUntil(sim.Time(endNs))

	if opts.Policy != nil {
		p := *opts.Policy
		if p.Name == "" {
			p.Name = "what-if"
		}
		for i, rep := range res.Replayed.Reports {
			rule, ok := p.Match(rep)
			if !ok {
				continue
			}
			name := rule.Name
			if name == "" {
				name = string(rule.Action)
			}
			res.Shadow = append(res.Shadow, ShadowAction{
				ReportIndex: i, Policy: p.Name, Rule: name, Action: rule.Action,
				Rank: rep.Suspect, Comm: rep.CommID, Category: rep.Category,
			})
		}
	}
	return res, nil
}

// collectRecorded extracts the original trigger/report stream from a
// recorded wire event. Lifecycle, action and health events are part of the
// artifact's audit trail but not of the RCA outcome being compared.
func collectRecorded(out *Outcome, ev api.Event) error {
	switch {
	case ev.Trigger != nil:
		tr, err := ev.Trigger.Trigger()
		if err != nil {
			return fmt.Errorf("%w: recorded trigger: %v", ErrCorrupt, err)
		}
		out.Triggers = append(out.Triggers, tr)
	case ev.Report != nil:
		rep, err := ev.Report.Report()
		if err != nil {
			return fmt.Errorf("%w: recorded report: %v", ErrCorrupt, err)
		}
		out.Reports = append(out.Reports, rep)
	}
	return nil
}
