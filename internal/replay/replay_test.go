package replay_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mycroft"
	"mycroft/internal/replay"
	"mycroft/internal/scenario"
)

// recordScenario runs a builtin scenario with incident recording and returns
// the first job's artifact bytes.
func recordScenario(t testing.TB, name string, seed int64) []byte {
	t.Helper()
	spec, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("no builtin scenario %q", name)
	}
	dir := t.TempDir()
	res, err := scenario.RunWith(spec, seed, scenario.RunOptions{RecordDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) == 0 {
		t.Fatal("scenario produced no jobs")
	}
	data, err := os.ReadFile(filepath.Join(dir, res.Jobs[0].JobID+".mycrec"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFaithfulReplayDeterminism is the tentpole regression: a recorded
// seeded incident must replay byte-for-byte — the replayed trigger and
// report streams match the recorded originals exactly, and two independent
// replays of the same artifact never drift from each other.
func TestFaithfulReplayDeterminism(t *testing.T) {
	data := recordScenario(t, "pp-cascade", 7)

	r1, err := mycroft.Replay(bytes.NewReader(data), mycroft.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mycroft.Replay(bytes.NewReader(data), mycroft.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if !r1.Complete {
		t.Fatal("scenario artifact decoded as incomplete")
	}
	if r1.RecordsIngested < 1000 || r1.Evals == 0 {
		t.Fatalf("replay consumed too little: %d records, %d evals", r1.RecordsIngested, r1.Evals)
	}
	if len(r1.Recorded.Triggers) == 0 || len(r1.Recorded.Reports) == 0 {
		t.Fatalf("recorded outcome empty: %d triggers, %d reports — nothing to verify determinism against",
			len(r1.Recorded.Triggers), len(r1.Recorded.Reports))
	}

	// Recorded vs replayed: the fresh engine must reproduce the original
	// conclusions exactly.
	if d := mycroft.DiffOutcomes(r1.Recorded, r1.Replayed); !d.Zero() {
		t.Fatalf("faithful replay drifted from the recording:\n%s", d.Render())
	}
	// Replay vs replay: no hidden nondeterminism in the replayer itself.
	if !reflect.DeepEqual(r1.Replayed, r2.Replayed) {
		t.Fatal("two replays of the same artifact disagree")
	}
	if d := mycroft.DiffOutcomes(r1.Replayed, r2.Replayed); !d.Zero() {
		t.Fatalf("replay-vs-replay drift:\n%s", d.Render())
	}
}

// TestWhatIfOverridesChangeVerdict: loosening the straggler thresholds on
// the recorded evidence must provably change the RCA outcome — the recorded
// straggler path disappears and the diff reports the drift.
func TestWhatIfOverridesChangeVerdict(t *testing.T) {
	data := recordScenario(t, "gpu-slow", 3)

	faithful, err := mycroft.Replay(bytes.NewReader(data), mycroft.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := mycroft.DiffOutcomes(faithful.Recorded, faithful.Replayed); !d.Zero() {
		t.Fatalf("faithful precondition drifted:\n%s", d.Render())
	}
	if !hasStragglerTrigger(faithful.Replayed) {
		t.Fatalf("gpu-slow recording has no straggler trigger to suppress: %v", faithful.Replayed.Triggers)
	}

	// Loosen every straggler knob far past the recorded signal.
	grow, drop := 100.0, 0.001
	lateNs, lateCount := int64(3_600_000_000_000), 1_000_000
	loose, err := mycroft.Replay(bytes.NewReader(data), mycroft.ReplayOptions{
		Overrides: &mycroft.ReplayOverrides{
			IntervalGrow: &grow, ThroughputDrop: &drop,
			StragglerLateNs: &lateNs, LateCount: &lateCount,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hasStragglerTrigger(loose.Replayed) {
		t.Fatalf("loosened thresholds still fired a straggler trigger: %v", loose.Replayed.Triggers)
	}
	d := mycroft.DiffOutcomes(faithful.Replayed, loose.Replayed)
	if d.Zero() {
		t.Fatal("what-if replay produced an identical outcome — overrides had no effect")
	}
	if len(d.TriggerDrift) == 0 {
		t.Fatalf("expected trigger drift, got:\n%s", d.Render())
	}
}

func hasStragglerTrigger(o replay.Outcome) bool {
	for _, tr := range o.Triggers {
		if strings.Contains(tr.String(), "straggler") {
			return true
		}
	}
	return false
}

// TestWhatIfShadowPolicy: an alternative policy dry-runs against the
// replayed verdicts and reports what it would have ordered, without
// executing anything.
func TestWhatIfShadowPolicy(t *testing.T) {
	data := recordScenario(t, "pp-cascade", 7)

	spec := replay.PolicySpec{
		Name:  "aggressive",
		Rules: []replay.RuleSpec{{Name: "cordon-everything", Action: "isolate-rank"}},
	}
	p, err := spec.Policy()
	if err != nil {
		t.Fatal(err)
	}
	res, err := mycroft.Replay(bytes.NewReader(data), mycroft.ReplayOptions{Policy: &p})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replayed.Reports) == 0 {
		t.Fatal("no replayed reports to shadow-match")
	}
	if len(res.Shadow) != len(res.Replayed.Reports) {
		t.Fatalf("catch-all policy shadowed %d of %d reports", len(res.Shadow), len(res.Replayed.Reports))
	}
	for _, sh := range res.Shadow {
		if sh.Policy != "aggressive" || sh.Rule != "cordon-everything" {
			t.Fatalf("shadow attribution wrong: %+v", sh)
		}
		rep := res.Replayed.Reports[sh.ReportIndex]
		if sh.Rank != rep.Suspect {
			t.Fatalf("shadow action targets rank %d, report suspects %d", sh.Rank, rep.Suspect)
		}
	}

	if spec := (replay.PolicySpec{Rules: []replay.RuleSpec{{Action: "defenestrate"}}}); true {
		if _, err := spec.Policy(); err == nil {
			t.Fatal("unknown action validated")
		}
	}
}
