// Package replay implements Mycroft's incident artifacts and deterministic
// post-mortem replay. An artifact is a portable, self-describing capture of
// one hosted job's diagnosis inputs and outputs: a versioned header (job
// metadata, topology, the effective backend configuration, the virtual-time
// span), then a strictly time-ordered stream of everything the analysis
// consumed and produced — ingested trace batches, Algorithm 1 evaluation
// instants, and published engine events. Replaying the artifact into a fresh
// engine reproduces the original triggers and reports byte-for-byte; what-if
// replay re-runs the same evidence under overridden thresholds or an
// alternative remediation policy and diffs the verdicts.
//
// # Wire layout (format version 1)
//
//	magic   6 bytes  "MYCREC"
//	version u16 LE   1
//	header  u32 LE length, then that many bytes of JSON (Header)
//	chunks  repeated: u32 LE payload length, u32 LE CRC-32 (IEEE) of the
//	        payload, then the payload
//
// Each chunk payload is a sequence of entries; an entry never spans chunks,
// so a reader can stream arbitrarily large artifacts one chunk at a time and
// a torn final chunk loses at most one chunk of tail. Entry encodings:
//
//	'B' batch  i64 time ns, u32 count, count × trace.WireSize record bytes
//	'V' eval   i64 time ns (one Algorithm 1 pass at that instant)
//	'E' event  i64 time ns, u32 length, wire-form api.Event JSON
//	'Z' footer i64 end ns, u64 records, u64 evals, u64 events
//
// Entry times are non-decreasing across the whole stream, and record times
// are non-decreasing per rank — the decoder enforces both, so a replayer can
// feed batches straight into clouddb.Ingest. A clean EOF at a chunk boundary
// without a footer is a valid *incomplete* artifact: that is what a live
// download from a still-running daemon looks like.
//
// Artifacts double as the fixture format for the planned 10k-rank stress
// harness: the chunked framing streams multi-GB captures without buffering.
package replay

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"mycroft/internal/api"
	"mycroft/internal/core"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// FormatVersion is the artifact format this package reads and writes.
const FormatVersion = 1

// magic identifies an incident artifact.
var magic = [6]byte{'M', 'Y', 'C', 'R', 'E', 'C'}

// chunkTarget is the payload size the encoder flushes at. One entry larger
// than the target gets its own oversized chunk.
const chunkTarget = 64 << 10

// maxChunk bounds a decoded chunk payload so a corrupt length field cannot
// ask for an absurd allocation.
const maxChunk = 64 << 20

// maxHeader bounds the decoded header JSON.
const maxHeader = 1 << 20

// Typed decode errors. Every malformed input maps onto exactly one of these
// (wrapped with position detail); the decoder never panics.
var (
	// ErrBadMagic: the input does not start with the artifact magic.
	ErrBadMagic = errors.New("replay: not an incident artifact (bad magic)")
	// ErrUnsupportedVersion: the artifact's format version is unknown.
	ErrUnsupportedVersion = errors.New("replay: unsupported artifact format version")
	// ErrTruncated: the input ends mid-header or mid-chunk.
	ErrTruncated = errors.New("replay: truncated artifact")
	// ErrCorrupt: a CRC mismatch, an unknown entry tag, an entry overrunning
	// its chunk, or undecodable header/event JSON.
	ErrCorrupt = errors.New("replay: corrupt artifact")
	// ErrOutOfOrder: entry times decrease, or a rank's record times decrease.
	ErrOutOfOrder = errors.New("replay: out-of-order artifact")
)

// TopoInfo is the header's topology summary (topo.Config has no JSON tags of
// its own; the artifact pins explicit names).
type TopoInfo struct {
	Nodes       int `json:"nodes"`
	GPUsPerNode int `json:"gpus_per_node"`
	TP          int `json:"tp"`
	PP          int `json:"pp"`
	DP          int `json:"dp"`
}

// FromTopo converts a cluster topology to its header form.
func FromTopo(c topo.Config) TopoInfo {
	return TopoInfo{Nodes: c.Nodes, GPUsPerNode: c.GPUsPerNode, TP: c.TP, PP: c.PP, DP: c.DP}
}

// Config returns the domain topology.
func (t TopoInfo) Config() topo.Config {
	return topo.Config{Nodes: t.Nodes, GPUsPerNode: t.GPUsPerNode, TP: t.TP, PP: t.PP, DP: t.DP}
}

// BackendConfig is the header's wire form of the *effective* analysis
// configuration (core.Config after defaults) — every §9 threshold the replay
// needs to reproduce, or override, the original verdicts. Durations are
// nanoseconds, matching the /v1 convention.
type BackendConfig struct {
	IntervalNs         int64   `json:"interval_ns"`
	WindowNs           int64   `json:"window_ns"`
	ThroughputDrop     float64 `json:"throughput_drop"`
	IntervalGrow       float64 `json:"interval_grow"`
	StragglerLateNs    int64   `json:"straggler_late_ns"`
	LateCount          int     `json:"late_count"`
	MaxSampled         int     `json:"max_sampled"`
	StateFreshNs       int64   `json:"state_fresh_ns"`
	StragglerWindowNs  int64   `json:"straggler_window_ns"`
	StragglerSettleNs  int64   `json:"straggler_settle_ns"`
	RearmNs            int64   `json:"rearm_ns"`
	MinBaselineSamples int     `json:"min_baseline_samples"`
	BadWindows         int     `json:"bad_windows"`
	BadWindowSpan      int     `json:"bad_window_span"`
	FlowPressureFrac   float64 `json:"flow_pressure_frac"`
	ChaseDepth         int     `json:"chase_depth"`
}

// FromBackendConfig converts an effective core.Config to its header form.
func FromBackendConfig(c core.Config) BackendConfig {
	return BackendConfig{
		IntervalNs: int64(c.Interval), WindowNs: int64(c.Window),
		ThroughputDrop: c.ThroughputDrop, IntervalGrow: c.IntervalGrow,
		StragglerLateNs: int64(c.StragglerLate), LateCount: c.LateCount,
		MaxSampled: c.MaxSampled, StateFreshNs: int64(c.StateFresh),
		StragglerWindowNs: int64(c.StragglerWindow), StragglerSettleNs: int64(c.StragglerSettle),
		RearmNs: int64(c.RearmDelay), MinBaselineSamples: c.MinBaselineSamples,
		BadWindows: c.BadWindows, BadWindowSpan: c.BadWindowSpan,
		FlowPressureFrac: c.FlowPressureFrac, ChaseDepth: c.ChaseDepth,
	}
}

// Config returns the domain analysis configuration.
func (b BackendConfig) Config() core.Config {
	return core.Config{
		Interval: time.Duration(b.IntervalNs), Window: time.Duration(b.WindowNs),
		ThroughputDrop: b.ThroughputDrop, IntervalGrow: b.IntervalGrow,
		StragglerLate: time.Duration(b.StragglerLateNs), LateCount: b.LateCount,
		MaxSampled: b.MaxSampled, StateFresh: time.Duration(b.StateFreshNs),
		StragglerWindow: time.Duration(b.StragglerWindowNs), StragglerSettle: time.Duration(b.StragglerSettleNs),
		RearmDelay: time.Duration(b.RearmNs), MinBaselineSamples: b.MinBaselineSamples,
		BadWindows: b.BadWindows, BadWindowSpan: b.BadWindowSpan,
		FlowPressureFrac: b.FlowPressureFrac, ChaseDepth: b.ChaseDepth,
	}
}

// Header is the artifact's self-description: everything a replayer needs to
// rebuild an equivalent analysis stack before the first entry.
type Header struct {
	// FormatVersion is duplicated from the binary prefix so a header-only
	// inspection (jq on the JSON) is self-contained.
	FormatVersion int `json:"format_version"`
	// Job is the hosted job's service address.
	Job string `json:"job"`
	// CreatedBy names the writing program ("mycroft-serve/1", a test, ...).
	CreatedBy string `json:"created_by,omitempty"`
	// Seed is the engine seed the original run used (informational: the
	// replayer re-drives recorded inputs, it does not re-simulate the job).
	Seed int64 `json:"seed"`
	// WorldSize is the job's rank count.
	WorldSize int `json:"world_size"`
	// Topo sizes the original cluster.
	Topo TopoInfo `json:"topo"`
	// SampledRanks are the ranks Algorithm 1 monitored.
	SampledRanks []int `json:"sampled_ranks"`
	// Backend is the effective analysis configuration (defaults applied).
	Backend BackendConfig `json:"backend"`
	// StartNs is the virtual time recording began. A recorder attached at
	// job start captures the whole run; one attached mid-run carries the
	// store's prior contents as a preamble batch stamped StartNs.
	StartNs int64 `json:"start_ns"`
}

// Footer closes a complete artifact.
type Footer struct {
	// EndNs is the virtual time recording stopped.
	EndNs int64
	// Records, Evals and Events count the stream's entries by kind.
	Records uint64
	Evals   uint64
	Events  uint64
}

// EntryKind discriminates stream entries.
type EntryKind byte

const (
	// EntryBatch carries one ingested batch of trace records.
	EntryBatch EntryKind = 'B'
	// EntryEval marks one Algorithm 1 evaluation pass.
	EntryEval EntryKind = 'V'
	// EntryEvent carries one published service event in /v1 wire form.
	EntryEvent EntryKind = 'E'

	entryFooter EntryKind = 'Z'
)

// Entry is one decoded stream element.
type Entry struct {
	Kind EntryKind
	// At is the entry's virtual time in ns. For batches it is the ingest
	// instant (records inside carry their own emission times, which may be
	// earlier — the collector uploads with latency).
	At int64
	// Batch holds the records of an EntryBatch.
	Batch []trace.Record
	// Event holds the decoded wire event of an EntryEvent.
	Event api.Event
}

// Encoder writes an artifact incrementally: entries accumulate in an
// in-memory chunk that is framed and flushed at chunkTarget, on Sync, and on
// Close. The encoder enforces the ordering invariants at write time so every
// artifact it produces decodes cleanly.
type Encoder struct {
	w       io.Writer
	buf     bytes.Buffer // current chunk payload
	scratch [21]byte

	lastAt   int64
	rankLast map[topo.Rank]int64
	footer   Footer
	closed   bool
	err      error
}

// NewEncoder writes the artifact prefix and header and returns an encoder
// positioned at the first entry.
func NewEncoder(w io.Writer, h Header) (*Encoder, error) {
	h.FormatVersion = FormatVersion
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("replay: encoding header: %w", err)
	}
	var pre bytes.Buffer
	pre.Write(magic[:])
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], FormatVersion)
	pre.Write(v[:])
	var hlen [4]byte
	binary.LittleEndian.PutUint32(hlen[:], uint32(len(hdr)))
	pre.Write(hlen[:])
	pre.Write(hdr)
	if _, err := w.Write(pre.Bytes()); err != nil {
		return nil, err
	}
	return &Encoder{w: w, lastAt: h.StartNs, rankLast: make(map[topo.Rank]int64)}, nil
}

// fail latches the first error; once failed every write is a no-op returning
// that error, so a recorder behind a dead disk degrades instead of panicking
// the engine dispatch it runs inside.
func (e *Encoder) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return e.err
}

// Err returns the encoder's latched error, if any.
func (e *Encoder) Err() error { return e.err }

// checkAt enforces non-decreasing entry times at write time.
func (e *Encoder) checkAt(atNs int64) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return e.fail(errors.New("replay: write after Close"))
	}
	if atNs < e.lastAt {
		return e.fail(fmt.Errorf("replay: entry at %dns after %dns: %w", atNs, e.lastAt, ErrOutOfOrder))
	}
	e.lastAt = atNs
	return nil
}

// WriteBatch appends one ingested batch at virtual time atNs.
func (e *Encoder) WriteBatch(atNs int64, recs []trace.Record) error {
	if len(recs) == 0 {
		return e.err
	}
	if err := e.checkAt(atNs); err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		if last, ok := e.rankLast[r.Rank]; ok && int64(r.Time) < last {
			return e.fail(fmt.Errorf("replay: rank %d record at %dns after %dns: %w", r.Rank, int64(r.Time), last, ErrOutOfOrder))
		}
		e.rankLast[r.Rank] = int64(r.Time)
	}
	need := 1 + 8 + 4 + len(recs)*trace.WireSize
	e.reserve(need)
	e.buf.WriteByte(byte(EntryBatch))
	e.putI64(atNs)
	e.putU32(uint32(len(recs)))
	var rb [trace.WireSize]byte
	for i := range recs {
		if err := recs[i].MarshalBinaryTo(rb[:]); err != nil {
			return e.fail(fmt.Errorf("replay: encoding record: %w", err))
		}
		e.buf.Write(rb[:])
	}
	e.footer.Records += uint64(len(recs))
	return e.maybeFlush()
}

// WriteEval appends one Algorithm 1 evaluation instant.
func (e *Encoder) WriteEval(atNs int64) error {
	if err := e.checkAt(atNs); err != nil {
		return err
	}
	e.reserve(1 + 8)
	e.buf.WriteByte(byte(EntryEval))
	e.putI64(atNs)
	e.footer.Evals++
	return e.maybeFlush()
}

// WriteEvent appends one published service event in wire form.
func (e *Encoder) WriteEvent(atNs int64, ev api.Event) error {
	if err := e.checkAt(atNs); err != nil {
		return err
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return e.fail(fmt.Errorf("replay: encoding event: %w", err))
	}
	e.reserve(1 + 8 + 4 + len(payload))
	e.buf.WriteByte(byte(EntryEvent))
	e.putI64(atNs)
	e.putU32(uint32(len(payload)))
	e.buf.Write(payload)
	e.footer.Events++
	return e.maybeFlush()
}

// reserve flushes the current chunk when appending need bytes would overrun
// the target, keeping entries whole within chunks.
func (e *Encoder) reserve(need int) {
	if e.buf.Len() > 0 && e.buf.Len()+need > chunkTarget {
		e.flush()
	}
}

func (e *Encoder) putI64(v int64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], uint64(v))
	e.buf.Write(e.scratch[:8])
}

func (e *Encoder) putU32(v uint32) {
	binary.LittleEndian.PutUint32(e.scratch[:4], v)
	e.buf.Write(e.scratch[:4])
}

func (e *Encoder) maybeFlush() error {
	if e.buf.Len() >= chunkTarget {
		e.flush()
	}
	return e.err
}

// flush frames and writes the buffered chunk.
func (e *Encoder) flush() {
	if e.err != nil || e.buf.Len() == 0 {
		return
	}
	payload := e.buf.Bytes()
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := e.w.Write(frame[:]); err != nil {
		e.fail(err)
		return
	}
	if _, err := e.w.Write(payload); err != nil {
		e.fail(err)
		return
	}
	e.buf.Reset()
}

// Sync flushes the partial chunk so the bytes written so far form a valid
// (incomplete) artifact — the live-download snapshot path.
func (e *Encoder) Sync() error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return nil
	}
	e.flush()
	return e.err
}

// Close writes the footer entry and flushes. endNs stamps when recording
// stopped; it must not precede the last entry. Close is idempotent.
func (e *Encoder) Close(endNs int64) error {
	if e.closed || e.err != nil {
		return e.err
	}
	if endNs < e.lastAt {
		endNs = e.lastAt
	}
	e.footer.EndNs = endNs
	e.reserve(1 + 8 + 24)
	e.buf.WriteByte(byte(entryFooter))
	e.putI64(e.footer.EndNs)
	binary.LittleEndian.PutUint64(e.scratch[:8], e.footer.Records)
	e.buf.Write(e.scratch[:8])
	binary.LittleEndian.PutUint64(e.scratch[:8], e.footer.Evals)
	e.buf.Write(e.scratch[:8])
	binary.LittleEndian.PutUint64(e.scratch[:8], e.footer.Events)
	e.buf.Write(e.scratch[:8])
	e.flush()
	e.closed = true
	return e.err
}

// Decoder streams an artifact: NewDecoder reads the prefix and header, Next
// yields entries until io.EOF (after the footer, or at a clean incomplete
// end) or a typed error.
type Decoder struct {
	r      *bufio.Reader
	header Header

	chunk    []byte // current chunk payload
	off      int    // read offset into chunk
	lastAt   int64
	rankLast map[topo.Rank]int64

	footer   *Footer
	seen     Footer // running counts, cross-checked against the footer
	done     bool
	firstErr error
}

// NewDecoder reads the magic, version and header. The reader is consumed
// incrementally; large artifacts are never buffered whole.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r), rankLast: make(map[topo.Rank]int64)}
	var prefix [8]byte
	if _, err := io.ReadFull(d.r, prefix[:]); err != nil {
		return nil, fmt.Errorf("%w: reading prefix: %v", eofKind(err, ErrBadMagic), err)
	}
	if !bytes.Equal(prefix[:6], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(prefix[6:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrUnsupportedVersion, v, FormatVersion)
	}
	var hlen [4]byte
	if _, err := io.ReadFull(d.r, hlen[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header length", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(hlen[:])
	if n == 0 || n > maxHeader {
		return nil, fmt.Errorf("%w: header length %d", ErrCorrupt, n)
	}
	hdr := make([]byte, n)
	if _, err := io.ReadFull(d.r, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header", ErrTruncated)
	}
	if err := json.Unmarshal(hdr, &d.header); err != nil {
		return nil, fmt.Errorf("%w: header JSON: %v", ErrCorrupt, err)
	}
	if d.header.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: header declares version %d", ErrUnsupportedVersion, d.header.FormatVersion)
	}
	d.lastAt = d.header.StartNs
	return d, nil
}

// eofKind maps an unexpected EOF to trunc and anything else to base.
func eofKind(err, base error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		if base == ErrBadMagic {
			return ErrBadMagic // shorter than the magic: not an artifact at all
		}
		return ErrTruncated
	}
	return base
}

// Header returns the decoded artifact header.
func (d *Decoder) Header() Header { return d.header }

// Footer returns the decoded footer after Next has returned io.EOF on a
// complete artifact.
func (d *Decoder) Footer() (Footer, bool) {
	if d.footer == nil {
		return Footer{}, false
	}
	return *d.footer, true
}

// Complete reports whether the stream ended with a valid footer. Meaningful
// once Next has returned io.EOF; an incomplete artifact (live snapshot,
// crashed recorder) decodes fine but reports false.
func (d *Decoder) Complete() bool { return d.footer != nil }

// fail latches and returns a decode error.
func (d *Decoder) fail(err error) error {
	if d.firstErr == nil {
		d.firstErr = err
	}
	d.done = true
	return err
}

// nextChunk reads and verifies the next chunk frame. io.EOF at a frame
// boundary is the clean incomplete end.
func (d *Decoder) nextChunk() error {
	var frame [8]byte
	if _, err := io.ReadFull(d.r, frame[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF // clean end between chunks
		}
		return d.fail(fmt.Errorf("%w: chunk frame", ErrTruncated))
	}
	n := binary.LittleEndian.Uint32(frame[:4])
	if n == 0 || n > maxChunk {
		return d.fail(fmt.Errorf("%w: chunk length %d", ErrCorrupt, n))
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return d.fail(fmt.Errorf("%w: chunk body (%d bytes expected)", ErrTruncated, n))
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(frame[4:]) {
		return d.fail(fmt.Errorf("%w: chunk CRC mismatch", ErrCorrupt))
	}
	d.chunk, d.off = payload, 0
	return nil
}

// take returns the next n bytes of the current chunk.
func (d *Decoder) take(n int) ([]byte, error) {
	if d.off+n > len(d.chunk) {
		return nil, d.fail(fmt.Errorf("%w: entry overruns chunk", ErrCorrupt))
	}
	b := d.chunk[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Next returns the next entry. It returns io.EOF at the end of the stream
// (complete or not) and a typed error for malformed input; after an error or
// EOF every further call returns the same result.
func (d *Decoder) Next() (Entry, error) {
	if d.done {
		if d.firstErr != nil {
			return Entry{}, d.firstErr
		}
		return Entry{}, io.EOF
	}
	for d.off >= len(d.chunk) {
		if err := d.nextChunk(); err != nil {
			if errors.Is(err, io.EOF) {
				d.done = true
				return Entry{}, io.EOF
			}
			return Entry{}, err
		}
	}
	tag, err := d.take(1)
	if err != nil {
		return Entry{}, err
	}
	atB, err := d.take(8)
	if err != nil {
		return Entry{}, err
	}
	at := int64(binary.LittleEndian.Uint64(atB))
	kind := EntryKind(tag[0])
	if kind != entryFooter {
		if at < d.lastAt {
			return Entry{}, d.fail(fmt.Errorf("%w: entry at %dns after %dns", ErrOutOfOrder, at, d.lastAt))
		}
		d.lastAt = at
	}
	switch kind {
	case EntryBatch:
		nB, err := d.take(4)
		if err != nil {
			return Entry{}, err
		}
		n := binary.LittleEndian.Uint32(nB)
		if int(n)*trace.WireSize > len(d.chunk)-d.off {
			return Entry{}, d.fail(fmt.Errorf("%w: batch of %d records overruns chunk", ErrCorrupt, n))
		}
		recs := make([]trace.Record, n)
		for i := range recs {
			b, err := d.take(trace.WireSize)
			if err != nil {
				return Entry{}, err
			}
			if err := recs[i].UnmarshalBinary(b); err != nil {
				return Entry{}, d.fail(fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err))
			}
			r := &recs[i]
			if last, ok := d.rankLast[r.Rank]; ok && int64(r.Time) < last {
				return Entry{}, d.fail(fmt.Errorf("%w: rank %d record at %dns after %dns", ErrOutOfOrder, r.Rank, int64(r.Time), last))
			}
			d.rankLast[r.Rank] = int64(r.Time)
		}
		d.seen.Records += uint64(n)
		return Entry{Kind: EntryBatch, At: at, Batch: recs}, nil
	case EntryEval:
		d.seen.Evals++
		return Entry{Kind: EntryEval, At: at}, nil
	case EntryEvent:
		nB, err := d.take(4)
		if err != nil {
			return Entry{}, err
		}
		n := binary.LittleEndian.Uint32(nB)
		payload, err := d.take(int(n))
		if err != nil {
			return Entry{}, err
		}
		var ev api.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return Entry{}, d.fail(fmt.Errorf("%w: event JSON: %v", ErrCorrupt, err))
		}
		d.seen.Events++
		return Entry{Kind: EntryEvent, At: at, Event: ev}, nil
	case entryFooter:
		body, err := d.take(24)
		if err != nil {
			return Entry{}, err
		}
		f := Footer{
			EndNs:   at,
			Records: binary.LittleEndian.Uint64(body[0:]),
			Evals:   binary.LittleEndian.Uint64(body[8:]),
			Events:  binary.LittleEndian.Uint64(body[16:]),
		}
		if f.EndNs < d.lastAt {
			return Entry{}, d.fail(fmt.Errorf("%w: footer end %dns before last entry %dns", ErrOutOfOrder, f.EndNs, d.lastAt))
		}
		if f.Records != d.seen.Records || f.Evals != d.seen.Evals || f.Events != d.seen.Events {
			return Entry{}, d.fail(fmt.Errorf("%w: footer counts %+v disagree with stream %+v", ErrCorrupt, f, d.seen))
		}
		if d.off != len(d.chunk) {
			return Entry{}, d.fail(fmt.Errorf("%w: %d bytes after footer", ErrCorrupt, len(d.chunk)-d.off))
		}
		if _, err := d.r.ReadByte(); err == nil {
			return Entry{}, d.fail(fmt.Errorf("%w: data after final chunk", ErrCorrupt))
		}
		d.footer = &f
		d.done = true
		return Entry{}, io.EOF
	default:
		return Entry{}, d.fail(fmt.Errorf("%w: unknown entry tag %q", ErrCorrupt, tag[0]))
	}
}
