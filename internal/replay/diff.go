package replay

import (
	"fmt"
	"strings"

	"mycroft/internal/core"
)

// Drift is one positional mismatch between two outcome streams. The String
// renderings are the comparison key: the wire forms are proven lossless, so
// string equality is value equality, and the rendering is what an operator
// reads anyway.
type Drift struct {
	Index int
	// A and B are the two sides' renderings; "" marks a missing element
	// (one stream is shorter).
	A, B string
}

// VerdictChange is a report pair whose actionable conclusion — category,
// suspect or analysis path — changed between the two runs.
type VerdictChange struct {
	Index int
	From  core.Report
	To    core.Report
}

func (v VerdictChange) String() string {
	return fmt.Sprintf("report %d: %s rank %d via %s → %s rank %d via %s",
		v.Index, v.From.Category, v.From.Suspect, v.From.Via,
		v.To.Category, v.To.Suspect, v.To.Via)
}

// DiffReport compares two outcomes element-wise: count deltas, per-position
// drift, and the subset of report drift that changes the verdict itself.
type DiffReport struct {
	// TriggersA/B and ReportsA/B are the two sides' stream lengths.
	TriggersA, TriggersB int
	ReportsA, ReportsB   int
	// TriggerDrift and ReportDrift list every position where the streams
	// disagree (including length mismatches).
	TriggerDrift []Drift
	ReportDrift  []Drift
	// VerdictChanges is the actionable subset of ReportDrift.
	VerdictChanges []VerdictChange
}

// Diff compares outcome a (e.g. the recorded original) against b (e.g. a
// replay). Deterministic: same inputs, same report.
func Diff(a, b Outcome) *DiffReport {
	d := &DiffReport{
		TriggersA: len(a.Triggers), TriggersB: len(b.Triggers),
		ReportsA: len(a.Reports), ReportsB: len(b.Reports),
	}
	n := max(len(a.Triggers), len(b.Triggers))
	for i := 0; i < n; i++ {
		var sa, sb string
		if i < len(a.Triggers) {
			sa = a.Triggers[i].String()
		}
		if i < len(b.Triggers) {
			sb = b.Triggers[i].String()
		}
		if sa != sb {
			d.TriggerDrift = append(d.TriggerDrift, Drift{Index: i, A: sa, B: sb})
		}
	}
	n = max(len(a.Reports), len(b.Reports))
	for i := 0; i < n; i++ {
		var sa, sb string
		if i < len(a.Reports) {
			sa = a.Reports[i].String()
		}
		if i < len(b.Reports) {
			sb = b.Reports[i].String()
		}
		if sa != sb {
			d.ReportDrift = append(d.ReportDrift, Drift{Index: i, A: sa, B: sb})
		}
		if i < len(a.Reports) && i < len(b.Reports) {
			ra, rb := a.Reports[i], b.Reports[i]
			if ra.Category != rb.Category || ra.Suspect != rb.Suspect || ra.Via != rb.Via {
				d.VerdictChanges = append(d.VerdictChanges, VerdictChange{Index: i, From: ra, To: rb})
			}
		}
	}
	return d
}

// Zero reports whether the two outcomes were byte-identical.
func (d *DiffReport) Zero() bool {
	return len(d.TriggerDrift) == 0 && len(d.ReportDrift) == 0
}

// Render formats the diff as a deterministic human-readable report.
func (d *DiffReport) Render() string {
	var b strings.Builder
	if d.Zero() {
		fmt.Fprintf(&b, "zero drift: %d trigger(s), %d report(s) identical\n", d.TriggersA, d.ReportsA)
		return b.String()
	}
	fmt.Fprintf(&b, "drift: triggers %d→%d (%d position(s) differ), reports %d→%d (%d position(s) differ)\n",
		d.TriggersA, d.TriggersB, len(d.TriggerDrift), d.ReportsA, d.ReportsB, len(d.ReportDrift))
	for _, dr := range d.TriggerDrift {
		renderDrift(&b, "trigger", dr)
	}
	for _, dr := range d.ReportDrift {
		renderDrift(&b, "report", dr)
	}
	for _, vc := range d.VerdictChanges {
		fmt.Fprintf(&b, "  verdict changed — %s\n", vc)
	}
	return b.String()
}

func renderDrift(b *strings.Builder, kind string, dr Drift) {
	switch {
	case dr.B == "":
		fmt.Fprintf(b, "  %s %d only in A: %s\n", kind, dr.Index, dr.A)
	case dr.A == "":
		fmt.Fprintf(b, "  %s %d only in B: %s\n", kind, dr.Index, dr.B)
	default:
		fmt.Fprintf(b, "  %s %d:\n    A: %s\n    B: %s\n", kind, dr.Index, dr.A, dr.B)
	}
}
