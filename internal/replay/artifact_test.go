package replay

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mycroft/internal/api"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden artifact files")

// Fixed fixtures: the golden artifact is byte-pinned, so every value here is
// deliberate — changing any of them (or the wire layout) must show up as a
// golden diff.

func fixtureHeader() Header {
	return Header{
		Job: "job-0", CreatedBy: "replay-test", Seed: 42, WorldSize: 16,
		Topo:         TopoInfo{Nodes: 4, GPUsPerNode: 4, TP: 2, PP: 4, DP: 2},
		SampledRanks: []int{0, 2, 4, 6, 8, 10, 12, 14},
		Backend: FromBackendConfig(BackendConfig{
			IntervalNs: 1_000_000_000, WindowNs: 5_000_000_000,
			ThroughputDrop: 0.3, IntervalGrow: 2.0,
			StragglerLateNs: 300_000_000, LateCount: 3, MaxSampled: 8,
			StateFreshNs: 10_000_000_000, StragglerWindowNs: 5_000_000_000,
			StragglerSettleNs: 6_000_000_000, RearmNs: 30_000_000_000,
			MinBaselineSamples: 4, BadWindows: 3, BadWindowSpan: 5,
			FlowPressureFrac: 0.5, ChaseDepth: 4,
		}.Config()),
		StartNs: 0,
	}
}

func fixtureRecord(rank int, atNs int64) trace.Record {
	return trace.Record{
		Kind: trace.KindState, Time: sim.Time(atNs),
		IP: "10.0.0.1", CommID: 7, Rank: topo.Rank(rank), GPUID: 1, Channel: 0, QPID: 9,
		Op: trace.OpAllReduce, OpSeq: 3, MsgSize: 1 << 20,
		Start:       sim.Time(atNs - 200_000_000),
		TotalChunks: 32, GPUReady: 20, RDMATransmitted: 16, RDMADone: 16, StuckNs: 50_000_000,
	}
}

func fixtureEvent(atNs int64) api.Event {
	return api.Event{Job: "job-0", Kind: "lifecycle", AtNs: atNs, Phase: "start"}
}

// buildFixture encodes the small golden incident: two batches, two evals,
// one event, footer at 2s.
func buildFixture(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, fixtureHeader())
	if err != nil {
		t.Fatal(err)
	}
	steps := []error{
		enc.WriteEvent(0, fixtureEvent(0)),
		enc.WriteBatch(100_000_000, []trace.Record{
			fixtureRecord(0, 90_000_000),
			fixtureRecord(2, 95_000_000),
		}),
		enc.WriteEval(1_000_000_000),
		enc.WriteBatch(1_100_000_000, []trace.Record{fixtureRecord(0, 1_090_000_000)}),
		enc.WriteEval(2_000_000_000),
		enc.Close(2_000_000_000),
	}
	for i, err := range steps {
		if err != nil {
			t.Fatalf("fixture step %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

// golden compares got against testdata/<name>, rewriting under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -update ./internal/replay` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (%d bytes vs %d); if the format change is intentional, bump FormatVersion and re-run with -update", name, len(got), len(want))
	}
}

// TestHeaderGolden pins the header's JSON schema: a field rename or type
// change breaks old artifacts, so it must be a conscious golden update.
func TestHeaderGolden(t *testing.T) {
	h := fixtureHeader()
	h.FormatVersion = FormatVersion
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "header.golden.json", append(data, '\n'))
}

// TestArtifactGolden pins the complete binary layout of a small incident.
func TestArtifactGolden(t *testing.T) {
	golden(t, "small.golden.mycrec", buildFixture(t))
}

// TestDecodeRoundTrip checks the golden incident decodes back to exactly
// what was written.
func TestDecodeRoundTrip(t *testing.T) {
	dec, err := NewDecoder(bytes.NewReader(buildFixture(t)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Header(), fixtureHeader(); !headerEqual(got, want) {
		t.Fatalf("header round-trip:\n got %+v\nwant %+v", got, want)
	}
	var kinds []EntryKind
	var ats []int64
	var records int
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, e.Kind)
		ats = append(ats, e.At)
		records += len(e.Batch)
		if e.Kind == EntryBatch {
			for _, r := range e.Batch {
				if r.CommID != 7 || r.Op != trace.OpAllReduce {
					t.Fatalf("record fields mangled: %+v", r)
				}
			}
		}
	}
	wantKinds := []EntryKind{EntryEvent, EntryBatch, EntryEval, EntryBatch, EntryEval}
	wantAts := []int64{0, 100_000_000, 1_000_000_000, 1_100_000_000, 2_000_000_000}
	if !reflect.DeepEqual(kinds, wantKinds) || !reflect.DeepEqual(ats, wantAts) {
		t.Fatalf("entry stream: kinds %v ats %v", kinds, ats)
	}
	if records != 3 {
		t.Fatalf("decoded %d records, want 3", records)
	}
	f, ok := dec.Footer()
	if !ok || !dec.Complete() {
		t.Fatal("complete artifact reported incomplete")
	}
	if f.EndNs != 2_000_000_000 || f.Records != 3 || f.Evals != 2 || f.Events != 1 {
		t.Fatalf("footer %+v", f)
	}
}

// headerEqual ignores FormatVersion, which NewEncoder stamps itself.
func headerEqual(a, b Header) bool {
	a.FormatVersion, b.FormatVersion = 0, 0
	return reflect.DeepEqual(a, b)
}

// TestIncompleteArtifact: a Sync'd but unclosed capture — the live-download
// snapshot — must decode cleanly and report incomplete.
func TestIncompleteArtifact(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, fixtureHeader())
	if err != nil {
		t.Fatal(err)
	}
	enc.WriteEval(500_000_000)
	enc.WriteBatch(600_000_000, []trace.Record{fixtureRecord(0, 590_000_000)})
	if err := enc.Sync(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := dec.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 || dec.Complete() {
		t.Fatalf("incomplete artifact: %d entries, complete=%v", n, dec.Complete())
	}
}

// frame wraps a payload in the chunk framing (length + CRC).
func frame(payload []byte) []byte {
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// prefixOnly returns a valid artifact prefix+header with no chunks.
func prefixOnly(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := NewEncoder(&buf, fixtureHeader()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// evalEntry renders one 'V' entry.
func evalEntry(atNs int64) []byte {
	out := make([]byte, 9)
	out[0] = byte(EntryEval)
	binary.LittleEndian.PutUint64(out[1:], uint64(atNs))
	return out
}

// TestCorruptInputs maps every malformed-input class onto its typed error.
// None of these may panic — the decoder fronts untrusted downloads.
func TestCorruptInputs(t *testing.T) {
	good := buildFixture(t)
	hdrEnd := len(prefixOnly(t))
	withVersion := func(v uint16) []byte {
		b := bytes.Clone(good)
		binary.LittleEndian.PutUint16(b[6:8], v)
		return b
	}
	flipInChunk := func() []byte {
		b := bytes.Clone(good)
		b[hdrEnd+8] ^= 0xff // first payload byte of the first chunk
		return b
	}
	outOfOrder := append(prefixOnly(t), frame(append(evalEntry(200), evalEntry(100)...))...)
	unknownTag := append(prefixOnly(t), frame([]byte{'X', 0, 0, 0, 0, 0, 0, 0, 0})...)
	badFooter := func() []byte {
		f := make([]byte, 33)
		f[0] = byte(entryFooter)
		binary.LittleEndian.PutUint64(f[9:], 99) // claims 99 records, stream has none
		return append(prefixOnly(t), frame(f)...)
	}()

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"bad magic", []byte("NOTANARTIFACT___"), ErrBadMagic},
		{"short prefix", good[:4], ErrBadMagic},
		{"future version", withVersion(99), ErrUnsupportedVersion},
		{"truncated header", good[:hdrEnd/2], ErrTruncated},
		{"truncated mid-chunk", good[:hdrEnd+12], ErrTruncated},
		{"crc mismatch", flipInChunk(), ErrCorrupt},
		{"data after footer", append(bytes.Clone(good), 0x00), ErrCorrupt},
		{"unknown entry tag", unknownTag, ErrCorrupt},
		{"out-of-order entries", outOfOrder, ErrOutOfOrder},
		{"footer count mismatch", badFooter, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := drain(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// drain decodes data to completion and returns the terminal error (nil for a
// clean EOF).
func drain(data []byte) error {
	dec, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := dec.Next(); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
	}
}

// TestEncoderRejectsOutOfOrder: the write path enforces the same invariants
// the decoder checks, so every produced artifact decodes.
func TestEncoderRejectsOutOfOrder(t *testing.T) {
	enc, err := NewEncoder(io.Discard, fixtureHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEval(200); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEval(100); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("backwards entry: got %v", err)
	}
	if err := enc.WriteEval(300); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("encoder did not latch: got %v", err)
	}

	enc2, err := NewEncoder(io.Discard, fixtureHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := enc2.WriteBatch(100, []trace.Record{fixtureRecord(0, 90)}); err != nil {
		t.Fatal(err)
	}
	if err := enc2.WriteBatch(200, []trace.Record{fixtureRecord(0, 50)}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("per-rank regression: got %v", err)
	}
}

// FuzzDecodeArtifact: arbitrary bytes must produce a typed error or a clean
// decode — never a panic, never an unbounded allocation.
func FuzzDecodeArtifact(f *testing.F) {
	good := buildFixture(f)
	f.Add([]byte(nil))
	f.Add(good)
	f.Add(prefixOnly(f))
	for _, cut := range []int{3, 7, 11, len(good) / 2, len(good) - 1} {
		if cut < len(good) {
			f.Add(good[:cut])
		}
	}
	f.Add(append(bytes.Clone(good), good...))
	f.Fuzz(func(t *testing.T, data []byte) {
		err := drain(data)
		if err != nil &&
			!errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrUnsupportedVersion) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) &&
			!errors.Is(err, ErrOutOfOrder) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
