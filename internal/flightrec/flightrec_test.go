package flightrec

import (
	"testing"
	"time"

	"mycroft/internal/ccl"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

func meta(comm, seq uint64, bytes int64) ccl.OpMeta {
	return ccl.OpMeta{CommID: comm, Seq: seq, Kind: trace.OpAllReduce, Bytes: bytes}
}

func TestRingBounded(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, 3)
	for i := 0; i < 10; i++ {
		rec.Record(0, meta(1, uint64(i), 100))
	}
	d := rec.Dump(0)
	if len(d) != 3 || d[0].Meta.Seq != 7 || d[2].Meta.Seq != 9 {
		t.Fatalf("dump = %+v", d)
	}
}

func TestRanksSorted(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, 4)
	rec.Record(3, meta(1, 0, 1))
	rec.Record(1, meta(1, 0, 1))
	got := rec.Ranks()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ranks = %v", got)
	}
}

func TestAnalyzeHealthySkewTolerated(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, 8)
	// Rank 1 is one op ahead — normal in-flight skew — and the comm is
	// actively launching (fresh entries).
	rec.Record(0, meta(1, 5, 100))
	rec.Record(1, meta(1, 6, 100))
	if fs := rec.Analyze(eng.Now(), 5*time.Second); len(fs) != 0 {
		t.Fatalf("fresh comm produced findings: %+v", fs)
	}
}

// TestAnalyzeStalenessBoundary pins the quiescence threshold exactly: a
// comm whose newest launch is age == stale IS analyzed (>= comparison), one
// tick younger is still "making progress" and skipped.
func TestAnalyzeStalenessBoundary(t *testing.T) {
	const stale = 5 * time.Second
	setup := func() (*sim.Engine, *Recorder) {
		eng := sim.NewEngine(1)
		rec := New(eng, 8)
		// Rank 1 stopped launching: a launch-behind finding once quiesced.
		rec.Record(0, meta(1, 4, 100))
		rec.Record(1, meta(1, 4, 100))
		rec.Record(2, meta(1, 4, 100))
		eng.RunFor(time.Second)
		rec.Record(0, meta(1, 5, 100))
		rec.Record(2, meta(1, 5, 100))
		return eng, rec
	}

	eng, rec := setup()
	// Newest entry is exactly `stale` old: the boundary counts as quiesced.
	fs := rec.Analyze(eng.Now().Add(stale), stale)
	if len(fs) != 1 || fs[0].Kind != "launch-behind" || len(fs[0].Ranks) != 1 || fs[0].Ranks[0] != 1 {
		t.Fatalf("at-threshold comm not analyzed: %+v", fs)
	}
	// One nanosecond younger than the threshold: still in flight, skipped.
	eng, rec = setup()
	if fs := rec.Analyze(eng.Now().Add(stale-time.Nanosecond), stale); len(fs) != 0 {
		t.Fatalf("sub-threshold comm analyzed: %+v", fs)
	}
}

func TestAnalyzeLaunchAhead(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, 8)
	for r := topo.Rank(0); r < 4; r++ {
		seq := uint64(5)
		if r == 2 {
			seq = 6 // skipped op 5, ran ahead
		}
		rec.Record(r, meta(1, seq, 100))
	}
	eng.RunFor(time.Minute) // comm quiesces
	fs := rec.Analyze(eng.Now(), 5*time.Second)
	if len(fs) != 1 || fs[0].Kind != "launch-ahead" {
		t.Fatalf("findings = %+v", fs)
	}
	if len(fs[0].Ranks) != 1 || fs[0].Ranks[0] != 2 {
		t.Fatalf("ahead ranks = %v", fs[0].Ranks)
	}
}

func TestAnalyzeLaunchBehind(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, 8)
	for r := topo.Rank(0); r < 4; r++ {
		seq := uint64(5)
		if r == 3 {
			seq = 3 // stopped launching
		}
		rec.Record(r, meta(1, seq, 100))
	}
	eng.RunFor(time.Minute)
	fs := rec.Analyze(eng.Now(), 5*time.Second)
	if len(fs) != 1 || fs[0].Kind != "launch-behind" {
		t.Fatalf("findings = %+v", fs)
	}
	if len(fs[0].Ranks) != 1 || fs[0].Ranks[0] != 3 {
		t.Fatalf("behind ranks = %v", fs[0].Ranks)
	}
}

func TestAnalyzeSizeMismatch(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, 8)
	rec.Record(0, meta(1, 5, 100))
	rec.Record(1, meta(1, 5, 200)) // different payload for the same op
	eng.RunFor(time.Minute)
	fs := rec.Analyze(eng.Now(), 5*time.Second)
	found := false
	for _, f := range fs {
		if f.Kind == "size-mismatch" && f.CommID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("size mismatch not found: %+v", fs)
	}
}

func TestLastOpPerRank(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := New(eng, 8)
	rec.Record(0, meta(1, 3, 100))
	rec.Record(0, meta(1, 7, 100))
	rec.Record(0, meta(2, 99, 100))
	got := rec.LastOpPerRank(1)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("LastOpPerRank = %v", got)
	}
}

func TestInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero ring did not panic")
		}
	}()
	New(sim.NewEngine(1), 0)
}
