// Package flightrec reproduces PyTorch's Flight Recorder (§6.2): a per-rank
// ring buffer of the most recent framework-level CollOp launches. On a
// trigger the rings are dumped and aggregated to find synchronization
// problems the CCL cannot see: the rank that never launched an op the rest
// of its group is blocked on, or mismatched op shapes.
package flightrec

import (
	"fmt"
	"sort"

	"mycroft/internal/ccl"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Entry is one recorded CollOp launch.
type Entry struct {
	Rank topo.Rank
	Meta ccl.OpMeta
	At   sim.Time
}

// Recorder keeps the last N launches per rank.
type Recorder struct {
	eng *sim.Engine
	n   int
	buf map[topo.Rank][]Entry
}

// New creates a recorder keeping n entries per rank (PyTorch's default ring
// is similar in spirit).
func New(eng *sim.Engine, n int) *Recorder {
	if n <= 0 {
		panic(fmt.Sprintf("flightrec: non-positive ring size %d", n))
	}
	return &Recorder{eng: eng, n: n, buf: make(map[topo.Rank][]Entry)}
}

// Record appends a launch; wire it to ccl.Config.OnLaunch.
func (rec *Recorder) Record(r topo.Rank, meta ccl.OpMeta) {
	b := append(rec.buf[r], Entry{Rank: r, Meta: meta, At: rec.eng.Now()})
	if len(b) > rec.n {
		b = b[len(b)-rec.n:]
	}
	rec.buf[r] = b
}

// Dump returns rank r's ring, oldest first.
func (rec *Recorder) Dump(r topo.Rank) []Entry {
	return append([]Entry(nil), rec.buf[r]...)
}

// Ranks lists ranks with any recorded launches.
func (rec *Recorder) Ranks() []topo.Rank {
	out := make([]topo.Rank, 0, len(rec.buf))
	for r := range rec.buf {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Finding is one synchronization anomaly.
type Finding struct {
	CommID uint64
	// Kind is "skipped-launch" (a rank launched a later op without ever
	// launching one its peers did — the precise sync-bug signature),
	// "launch-ahead" / "launch-behind" (majority-vote desync on a quiesced
	// comm), or "size-mismatch".
	Kind    string
	Ranks   []topo.Rank
	Details string
}

// Analyze aggregates the rings per communicator. A communicator whose newest
// launch is younger than stale is still making progress and is skipped —
// in-flight skew between ranks is normal. For quiesced (stuck) comms, the
// majority launch sequence is the reference: minority ranks ahead of it
// skipped a collective; minority ranks behind it stopped launching. Message
// sizes are cross-checked per (comm, seq).
func (rec *Recorder) Analyze(now sim.Time, stale sim.Duration) []Finding {
	lastSeq := make(map[uint64]map[topo.Rank]uint64)
	seqSets := make(map[uint64]map[topo.Rank]map[uint64]bool)
	newest := make(map[uint64]sim.Time)
	sizeByOp := make(map[uint64]map[uint64]map[int64][]topo.Rank) // comm -> seq -> size -> ranks
	for r, entries := range rec.buf {
		for _, e := range entries {
			m := lastSeq[e.Meta.CommID]
			if m == nil {
				m = make(map[topo.Rank]uint64)
				lastSeq[e.Meta.CommID] = m
			}
			if cur, ok := m[r]; !ok || e.Meta.Seq > cur {
				m[r] = e.Meta.Seq
			}
			ss := seqSets[e.Meta.CommID]
			if ss == nil {
				ss = make(map[topo.Rank]map[uint64]bool)
				seqSets[e.Meta.CommID] = ss
			}
			if ss[r] == nil {
				ss[r] = make(map[uint64]bool)
			}
			ss[r][e.Meta.Seq] = true
			if e.At > newest[e.Meta.CommID] {
				newest[e.Meta.CommID] = e.At
			}
			sm := sizeByOp[e.Meta.CommID]
			if sm == nil {
				sm = make(map[uint64]map[int64][]topo.Rank)
				sizeByOp[e.Meta.CommID] = sm
			}
			bm := sm[e.Meta.Seq]
			if bm == nil {
				bm = make(map[int64][]topo.Rank)
				sm[e.Meta.Seq] = bm
			}
			bm[e.Meta.Bytes] = append(bm[e.Meta.Bytes], r)
		}
	}

	var findings []Finding
	comms := make([]uint64, 0, len(lastSeq))
	for c := range lastSeq {
		comms = append(comms, c)
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
	for _, c := range comms {
		m := lastSeq[c]
		// Skipped-launch: rank r launched a later seq without ever launching
		// seq s that a peer launched — a hole in its sequence. This is exact
		// regardless of quiescence (each ring buffer bounds the horizon: only
		// seqs at or above the rank's oldest retained entry are judged).
		if len(m) > 1 {
			ss := seqSets[c]
			union := make(map[uint64]bool)
			for _, set := range ss {
				for s := range set {
					union[s] = true
				}
			}
			var skippers []topo.Rank
			var skipDetail string
			for r, set := range ss {
				low := ^uint64(0)
				for s := range set {
					if s < low {
						low = s
					}
				}
				for s := range union {
					if s >= low && s < m[r] && !set[s] {
						skippers = append(skippers, r)
						skipDetail = fmt.Sprintf("rank %d launched seq %d but never seq %d", r, m[r], s)
						break
					}
				}
			}
			if len(skippers) > 0 {
				sort.Slice(skippers, func(i, j int) bool { return skippers[i] < skippers[j] })
				findings = append(findings, Finding{
					CommID: c, Kind: "skipped-launch", Ranks: skippers, Details: skipDetail,
				})
			}
		}
		if now.Sub(newest[c]) >= stale && len(m) > 1 {
			// Majority vote on the last launched seq.
			counts := make(map[uint64]int)
			for _, s := range m {
				counts[s]++
			}
			var mode uint64
			best := -1
			for s, n := range counts {
				if n > best || (n == best && s < mode) {
					best, mode = n, s
				}
			}
			var ahead, behind []topo.Rank
			for r, s := range m {
				switch {
				case s > mode:
					ahead = append(ahead, r)
				case s < mode:
					behind = append(behind, r)
				}
			}
			sort.Slice(ahead, func(i, j int) bool { return ahead[i] < ahead[j] })
			sort.Slice(behind, func(i, j int) bool { return behind[i] < behind[j] })
			if len(ahead) > 0 && len(ahead) < len(m) {
				findings = append(findings, Finding{
					CommID: c, Kind: "launch-ahead", Ranks: ahead,
					Details: fmt.Sprintf("group majority at seq %d; %d rank(s) ran ahead (skipped a collective?)", mode, len(ahead)),
				})
			}
			if len(behind) > 0 && len(behind) < len(m) {
				findings = append(findings, Finding{
					CommID: c, Kind: "launch-behind", Ranks: behind,
					Details: fmt.Sprintf("group majority at seq %d; %d rank(s) stopped launching", mode, len(behind)),
				})
			}
		}
		for seq, bm := range sizeByOp[c] {
			if len(bm) > 1 {
				var all []topo.Rank
				for _, rs := range bm {
					all = append(all, rs...)
				}
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				findings = append(findings, Finding{
					CommID: c, Kind: "size-mismatch", Ranks: all,
					Details: fmt.Sprintf("op seq %d launched with %d distinct sizes", seq, len(bm)),
				})
			}
		}
	}
	return findings
}

// LastOpPerRank returns, for one comm, each rank's latest launched seq — the
// per-stream view used to visualize abnormal devices.
func (rec *Recorder) LastOpPerRank(commID uint64) map[topo.Rank]uint64 {
	out := make(map[topo.Rank]uint64)
	for r, entries := range rec.buf {
		for _, e := range entries {
			if e.Meta.CommID != commID {
				continue
			}
			if cur, ok := out[r]; !ok || e.Meta.Seq > cur {
				out[r] = e.Meta.Seq
			}
		}
	}
	return out
}
