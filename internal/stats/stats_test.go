package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// population variance is 4; unbiased sample variance is 32/7
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	s.Add(3)
	if s.Var() != 0 {
		t.Fatalf("single-sample Var = %v, want 0", s.Var())
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-sample min/max wrong")
	}
}

// Property: Welford mean matches naive mean for random inputs.
func TestSummaryMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		if len(xs) > 0 {
			naive := sum / float64(len(xs))
			ok = math.Abs(s.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("Q1 = %v, want 100", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := s.Quantile(0.9); math.Abs(got-90.1) > 1e-9 {
		t.Fatalf("P90 = %v, want 90.1", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.FractionBelow(10) != 0 {
		t.Fatal("empty sample should return zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 2, 3, 10} {
		s.Add(x)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.2}, {2, 0.6}, {5, 0.8}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sample
	for i := 0; i < 57; i++ {
		s.Add(float64((i * 7919) % 101))
	}
	pts := s.CDF(20)
	if len(pts) != 20 {
		t.Fatalf("CDF returned %d points, want 20", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P < pts[i-1].P {
			t.Fatalf("CDF not monotone at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Fatalf("last CDF P = %v, want 1", pts[len(pts)-1].P)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		var s Sample
		for _, x := range xs {
			s.Add(x)
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRollingRate(t *testing.T) {
	r := NewRollingRate(0.5)
	if _, ok := r.Value(); ok {
		t.Fatal("unprimed rate reported ok")
	}
	r.Observe(10)
	if v, ok := r.Value(); !ok || v != 10 {
		t.Fatalf("first observation: v=%v ok=%v", v, ok)
	}
	r.Observe(20)
	if v, _ := r.Value(); v != 15 {
		t.Fatalf("EWMA = %v, want 15", v)
	}
	if r.Samples() != 2 {
		t.Fatalf("Samples = %d, want 2", r.Samples())
	}
}

func TestRollingRateBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", alpha)
				}
			}()
			NewRollingRate(alpha)
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d, want 8", h.N())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Fatalf("outliers = %d/%d, want 1/2", under, over)
	}
	count, lo, hi := h.Bucket(0)
	if count != 2 || lo != 0 || hi != 2 {
		t.Fatalf("bucket 0 = (%d, %v, %v), want (2, 0, 2)", count, lo, hi)
	}
	if c, _, _ := h.Bucket(1); c != 1 { // value 2 lands in [2,4)
		t.Fatalf("bucket 1 = %d, want 1", c)
	}
	if c, _, _ := h.Bucket(4); c != 1 { // 9.99
		t.Fatalf("bucket 4 = %d, want 1", c)
	}
	if h.NumBuckets() != 5 {
		t.Fatalf("NumBuckets = %d, want 5", h.NumBuckets())
	}
}

func TestHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram bounds did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}
