// Package stats provides the small statistical toolkit used by the
// experiment harness and the Mycroft backend: streaming summaries, quantiles,
// empirical CDFs and rolling rate estimators over virtual time.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max using Welford's algorithm.
// The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds a sample into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of samples.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Sample is an exact quantile estimator: it retains all values. Suitable for
// the experiment scales in this repository (≤ millions of points).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends a value.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of values.
func (s *Sample) N() int { return len(s.xs) }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation,
// or 0 if the sample is empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q <= 0 {
		s.sort()
		return s.xs[0]
	}
	if q >= 1 {
		s.sort()
		return s.xs[len(s.xs)-1]
	}
	s.sort()
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// FractionBelow reports the fraction of samples ≤ x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, x)
	// include equal values
	for i < len(s.xs) && s.xs[i] <= x {
		i++
	}
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability
}

// CDF returns the empirical CDF evaluated at n evenly spaced probabilities
// (including 0+1/n ... 1.0).
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	s.sort()
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		pts = append(pts, CDFPoint{X: s.Quantile(p), P: p})
	}
	return pts
}

// RollingRate tracks an exponentially weighted rate baseline, as the trigger
// mechanism uses for "normal throughput" and "normal op interval".
type RollingRate struct {
	alpha   float64
	value   float64
	primed  bool
	samples int
}

// NewRollingRate returns an EWMA with smoothing factor alpha in (0, 1].
func NewRollingRate(alpha float64) *RollingRate {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: alpha %v out of (0,1]", alpha))
	}
	return &RollingRate{alpha: alpha}
}

// Observe folds in a new observation.
func (r *RollingRate) Observe(x float64) {
	r.samples++
	if !r.primed {
		r.value = x
		r.primed = true
		return
	}
	r.value = r.alpha*x + (1-r.alpha)*r.value
}

// Value returns the current baseline; ok is false until at least one
// observation has been folded in.
func (r *RollingRate) Value() (v float64, ok bool) { return r.value, r.primed }

// Samples returns how many observations have been folded in.
func (r *RollingRate) Samples() int { return r.samples }

// Histogram is a fixed-bucket histogram over [lo, hi) with uniform buckets
// plus underflow/overflow counters.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	under   int64
	over    int64
	n       int64
}

// NewHistogram creates a histogram with nb uniform buckets over [lo, hi).
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if hi <= lo || nb <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, nb)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i == len(h.buckets) { // guard FP edge
			i--
		}
		h.buckets[i]++
	}
}

// N returns the total count.
func (h *Histogram) N() int64 { return h.n }

// Bucket returns the count of bucket i and its [lo, hi) bounds.
func (h *Histogram) Bucket(i int) (count int64, lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.buckets))
	return h.buckets[i], h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// NumBuckets returns the number of uniform buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int64) { return h.under, h.over }
