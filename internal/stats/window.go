package stats

import (
	"math"
	"sort"
)

// WindowQuantile is an exact quantile estimator over a sliding window of the
// last N samples — the primitive perfdiag's timing envelopes ride on. Adding
// past capacity evicts the oldest sample. The zero cost of exactness is fine
// at envelope scale (tens of samples per rank).
type WindowQuantile struct {
	cap  int
	ring []float64
	head int  // next write position
	full bool // ring has wrapped at least once
}

// NewWindowQuantile builds a window holding the last n samples (n >= 1).
func NewWindowQuantile(n int) *WindowQuantile {
	if n < 1 {
		n = 1
	}
	return &WindowQuantile{cap: n, ring: make([]float64, 0, n)}
}

// Add folds in a sample, evicting the oldest once the window is full.
func (w *WindowQuantile) Add(x float64) {
	if len(w.ring) < w.cap {
		w.ring = append(w.ring, x)
		w.head = len(w.ring) % w.cap
		w.full = len(w.ring) == w.cap
		return
	}
	w.ring[w.head] = x
	w.head = (w.head + 1) % w.cap
}

// N returns how many samples the window currently holds.
func (w *WindowQuantile) N() int { return len(w.ring) }

// Full reports whether the window has reached capacity.
func (w *WindowQuantile) Full() bool { return w.full }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the windowed samples using
// linear interpolation, or 0 when the window is empty. A single sample
// answers every quantile with itself; all-equal samples answer with the
// common value.
func (w *WindowQuantile) Quantile(q float64) float64 {
	n := len(w.ring)
	if n == 0 {
		return 0
	}
	xs := make([]float64, n)
	copy(xs, w.ring)
	sort.Float64s(xs)
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Median is Quantile(0.5).
func (w *WindowQuantile) Median() float64 { return w.Quantile(0.5) }
