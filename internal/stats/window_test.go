package stats

import (
	"math"
	"testing"
)

// The windowed-quantile edge cases perfdiag's envelopes depend on: an empty
// window must answer 0 (not panic), a single sample must answer itself at
// every q, and an all-equal window must answer the common value with no
// interpolation drift.

func TestWindowQuantileEmpty(t *testing.T) {
	w := NewWindowQuantile(8)
	for _, q := range []float64{-1, 0, 0.5, 0.9, 1, 2} {
		if got := w.Quantile(q); got != 0 {
			t.Fatalf("empty window Quantile(%v) = %v, want 0", q, got)
		}
	}
	if w.N() != 0 || w.Full() {
		t.Fatalf("empty window N=%d Full=%v, want 0/false", w.N(), w.Full())
	}
	if w.Median() != 0 {
		t.Fatalf("empty window Median = %v, want 0", w.Median())
	}
}

func TestWindowQuantileSingleSample(t *testing.T) {
	w := NewWindowQuantile(8)
	w.Add(3.25)
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.99, 1, 7} {
		if got := w.Quantile(q); got != 3.25 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 3.25", q, got)
		}
	}
	if w.N() != 1 || w.Full() {
		t.Fatalf("single-sample N=%d Full=%v, want 1/false", w.N(), w.Full())
	}
}

func TestWindowQuantileAllEqual(t *testing.T) {
	w := NewWindowQuantile(5)
	for i := 0; i < 12; i++ { // wraps the ring more than twice
		w.Add(7.5)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := w.Quantile(q); got != 7.5 {
			t.Fatalf("all-equal Quantile(%v) = %v, want exactly 7.5", q, got)
		}
	}
	if !w.Full() || w.N() != 5 {
		t.Fatalf("N=%d Full=%v, want 5/true", w.N(), w.Full())
	}
}

func TestWindowQuantileEviction(t *testing.T) {
	w := NewWindowQuantile(3)
	for _, x := range []float64{100, 200, 1, 2, 3} { // 100, 200 evicted
		w.Add(x)
	}
	if got := w.Quantile(0); got != 1 {
		t.Fatalf("min after eviction = %v, want 1", got)
	}
	if got := w.Quantile(1); got != 3 {
		t.Fatalf("max after eviction = %v, want 3", got)
	}
	if got := w.Median(); got != 2 {
		t.Fatalf("median after eviction = %v, want 2", got)
	}
}

func TestWindowQuantileInterpolation(t *testing.T) {
	w := NewWindowQuantile(4)
	for _, x := range []float64{10, 20, 30, 40} {
		w.Add(x)
	}
	if got := w.Median(); math.Abs(got-25) > 1e-12 {
		t.Fatalf("median = %v, want 25", got)
	}
	if got := w.Quantile(0.25); math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("P25 = %v, want 17.5", got)
	}
}

func TestWindowQuantileDegenerateCapacity(t *testing.T) {
	w := NewWindowQuantile(0) // clamps to 1
	w.Add(5)
	w.Add(9)
	if got := w.Quantile(0.5); got != 9 {
		t.Fatalf("capacity-1 window keeps latest: got %v, want 9", got)
	}
	if w.N() != 1 {
		t.Fatalf("N = %d, want 1", w.N())
	}
}
