// Package collector implements the per-host read-only agent of §4.2: it
// asynchronously drains the host's shared-memory trace ring and uploads
// batches to the cloud database with a configurable pipeline latency
// (standing in for the Kafka hop). The agent never applies back pressure to
// the tracepoints — if it falls behind, the ring overwrites and the loss is
// counted.
package collector

import (
	"fmt"
	"time"

	"mycroft/internal/otrace"
	"mycroft/internal/sim"
	"mycroft/internal/trace"
)

// Ingester is the downstream the agent uploads batches into. The production
// store is *clouddb.DB; tests can substitute a capture.
type Ingester interface {
	Ingest(batch []trace.Record)
}

// Config tunes an agent.
type Config struct {
	// DrainPeriod is how often the agent polls the ring. Default 50 ms.
	DrainPeriod time.Duration
	// UploadLatency is the tracepoint-to-queryable delay through the
	// pipeline. Default 1 s. This latency dominates Mycroft's detection
	// time, so E3 sweeps it.
	UploadLatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.DrainPeriod < 0 {
		panic(fmt.Sprintf("collector: negative drain period %v", c.DrainPeriod))
	}
	if c.DrainPeriod == 0 {
		c.DrainPeriod = 50 * time.Millisecond
	}
	if c.UploadLatency < 0 {
		panic(fmt.Sprintf("collector: negative upload latency %v", c.UploadLatency))
	}
	if c.UploadLatency == 0 {
		c.UploadLatency = time.Second
	}
	return c
}

// Agent drains one host's ring into the DB.
type Agent struct {
	eng    *sim.Engine
	db     Ingester
	reader *trace.Reader
	cfg    Config
	ticker *sim.Ticker

	batches       uint64
	recordsSent   uint64
	bytesUploaded uint64
	spans         *otrace.Tracer
}

// SetTracer attaches a pipeline span tracer: each drained batch records one
// StageUpload span covering the drain→ingest pipeline hop, whose virtual
// width is exactly the configured UploadLatency. Nil detaches.
func (a *Agent) SetTracer(t *otrace.Tracer) { a.spans = t }

// NewAgent starts an agent over the host ring. It begins draining
// immediately.
func NewAgent(eng *sim.Engine, ring *trace.Ring, db Ingester, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	a := &Agent{eng: eng, db: db, reader: ring.NewReader(), cfg: cfg}
	a.ticker = eng.NewTicker(cfg.DrainPeriod, func(sim.Time) { a.drain() })
	return a
}

func (a *Agent) drain() {
	batch := a.reader.Drain()
	if len(batch) == 0 {
		return
	}
	a.batches++
	a.recordsSent += uint64(len(batch))
	a.bytesUploaded += uint64(len(batch)) * trace.WireSize
	span := a.spans.Batch(otrace.StageUpload)
	a.eng.After(a.cfg.UploadLatency, func() {
		a.db.Ingest(batch)
		a.spans.End(span)
	})
}

// Stop halts the drain loop (host decommissioned).
func (a *Agent) Stop() { a.ticker.Stop() }

// Flush drains once immediately (tests and shutdown paths).
func (a *Agent) Flush() { a.drain() }

// Stats reports the agent's lifetime counters.
func (a *Agent) Stats() (batches, records, bytes, lost uint64) {
	return a.batches, a.recordsSent, a.bytesUploaded, a.reader.Lost()
}
