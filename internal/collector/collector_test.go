package collector

import (
	"testing"
	"time"

	"mycroft/internal/clouddb"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

func setup() (*sim.Engine, *trace.Ring, *clouddb.DB) {
	eng := sim.NewEngine(1)
	return eng, trace.NewRing(1024), clouddb.New(eng, 0)
}

func emit(eng *sim.Engine, ring *trace.Ring, rank topo.Rank) {
	ring.Emit(trace.Record{Kind: trace.KindState, Time: eng.Now(), Rank: rank, CommID: 1, IP: "10.0.0.1"})
}

func TestUploadLatency(t *testing.T) {
	eng, ring, db := setup()
	NewAgent(eng, ring, db, Config{DrainPeriod: 50 * time.Millisecond, UploadLatency: time.Second})
	emit(eng, ring, 0)
	// After the first drain (50 ms) the batch is in flight but not queryable.
	eng.RunFor(500 * time.Millisecond)
	if db.Ingested() != 0 {
		t.Fatal("record queryable before upload latency elapsed")
	}
	eng.RunFor(700 * time.Millisecond) // 1.2s total > 50ms + 1s
	if db.Ingested() != 1 {
		t.Fatalf("Ingested = %d after latency", db.Ingested())
	}
}

func TestContinuousDrain(t *testing.T) {
	eng, ring, db := setup()
	a := NewAgent(eng, ring, db, Config{DrainPeriod: 10 * time.Millisecond, UploadLatency: time.Millisecond})
	tick := eng.NewTicker(5*time.Millisecond, func(sim.Time) { emit(eng, ring, 0) })
	eng.RunFor(time.Second)
	tick.Stop()
	eng.RunFor(100 * time.Millisecond)
	batches, records, bytes, lost := a.Stats()
	if records != 200 { // one emission per 5ms over 1s, ticks at 5ms..1000ms inclusive
		t.Fatalf("records = %d, want 200", records)
	}
	if db.Ingested() != records {
		t.Fatalf("db has %d, agent sent %d", db.Ingested(), records)
	}
	if bytes != records*trace.WireSize {
		t.Fatalf("bytes = %d", bytes)
	}
	if lost != 0 {
		t.Fatalf("lost = %d", lost)
	}
	if batches == 0 || batches > records {
		t.Fatalf("batches = %d", batches)
	}
}

func TestOverrunCountsLostNotBackpressure(t *testing.T) {
	eng := sim.NewEngine(1)
	ring := trace.NewRing(8)
	db := clouddb.New(eng, 0)
	a := NewAgent(eng, ring, db, Config{DrainPeriod: time.Second, UploadLatency: time.Millisecond})
	for i := 0; i < 100; i++ {
		emit(eng, ring, 0)
	}
	eng.RunFor(2 * time.Second)
	_, records, _, lost := a.Stats()
	if lost != 92 {
		t.Fatalf("lost = %d, want 92", lost)
	}
	if records != 8 {
		t.Fatalf("records = %d, want 8", records)
	}
}

func TestStopHaltsDraining(t *testing.T) {
	eng, ring, db := setup()
	a := NewAgent(eng, ring, db, Config{DrainPeriod: 10 * time.Millisecond, UploadLatency: time.Millisecond})
	a.Stop()
	emit(eng, ring, 0)
	eng.RunFor(time.Second)
	if db.Ingested() != 0 {
		t.Fatal("stopped agent uploaded")
	}
	// Flush still works explicitly.
	a.Flush()
	eng.RunFor(time.Second)
	if db.Ingested() != 1 {
		t.Fatal("flush did not upload")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.DrainPeriod != 50*time.Millisecond || cfg.UploadLatency != time.Second {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative latency did not panic")
		}
	}()
	Config{UploadLatency: -time.Second}.withDefaults()
}

func TestNegativeDrainPeriodPanics(t *testing.T) {
	// A negative DrainPeriod used to be silently replaced with the default
	// while a negative UploadLatency panicked; both are config errors and
	// both must panic.
	defer func() {
		if recover() == nil {
			t.Error("negative drain period did not panic")
		}
	}()
	Config{DrainPeriod: -time.Millisecond}.withDefaults()
}
