package api

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mycroft/internal/core"
	"mycroft/internal/depgraph"
	"mycroft/internal/otrace"
	"mycroft/internal/remedy"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden wire-format files")

// Fixed domain fixtures: every enum and every field exercised, including a
// multi-hop Chain and a Victims blast radius.

func fixtureTrigger() core.Trigger {
	return core.Trigger{
		Kind: core.TriggerFailure, Rank: 5, IP: "10.0.0.1",
		At: 17_500_000_000, CommID: 3, Reason: "stalled mid-op: state logs but no completion in window",
	}
}

func fixtureReport() core.Report {
	return core.Report{
		Trigger: fixtureTrigger(), Suspect: 5, SuspectIP: "10.0.0.1", CommID: 7,
		Category: core.CatNetworkSendPath, Via: core.ViaMinData,
		AnalyzedAt: 19_000_000_000, Details: "WRs stuck at NIC; 0/32 chunks drained",
		Chain: []core.Hop{
			{Comm: 3, Suspect: 2, Via: core.ViaMinOp, Edge: depgraph.EdgeNested},
			{Comm: 7, Suspect: 5, Via: core.ViaMinData},
		},
		Victims: []topo.Rank{1, 3, 9},
		// The fused attribution: tracepoint and log agree, perf points away.
		Confidence: 0.9,
		Evidence: []core.Evidence{
			{Channel: core.ModalityTracepoint, Rank: 5, Category: core.CatNetworkSendPath,
				Weight: 0.75, At: 19_000_000_000, Detail: "min-data"},
			{Channel: core.ModalityLog, Rank: 5, Category: core.CatNetworkSendPath,
				Weight: 0.6, Score: 0.88, At: 18_000_000_000,
				Detail: "NET/IB rdma qp <*> timeout on port <*>"},
			{Channel: core.ModalityPerf, Rank: 2, Category: core.CatComputeStraggler,
				Weight: 0.5, Score: 1.42, At: 17_000_000_000, Detail: "straggler", Conflict: true},
		},
	}
}

func fixtureLogAnomaly() core.LogAnomaly {
	return core.LogAnomaly{
		Channel: core.ModalityLog, Rank: 5, Ranks: []topo.Rank{5, 7},
		Template: "NET/IB rdma qp <*> timeout on port <*>", Level: "error",
		Count: 6, Fleet: 8, Score: 0.88, Category: core.CatNetworkSendPath,
		At: 18_000_000_000,
	}
}

func fixtureChannelsResponse() ChannelsResponse {
	return ChannelsResponse{
		Job: "llm-70b",
		Channels: []ChannelInfo{
			{Channel: "tracepoint", Ingested: 7516, Anomalies: 2, Reports: 1},
			{Channel: "log", Ingested: 70, Anomalies: 4, Reports: 1, Templates: 2},
			{Channel: "perf", Ingested: 38},
		},
		Fusion: FusionInfo{
			WindowNs:       60_000_000_000,
			Outcomes:       map[string]uint64{"corroborated": 1, "single": 1},
			LastOutcome:    "corroborated",
			LastConfidence: 0.9,
		},
	}
}

func fixtureRecord() trace.Record {
	return trace.Record{
		Kind: trace.KindState, Time: 18_200_000_000,
		IP: "10.0.0.1", CommID: 7, Rank: 5, GPUID: 1, Channel: 1, QPID: 9,
		Op: trace.OpAllReduce, OpSeq: 42, MsgSize: 1 << 20,
		Start: 18_000_000_000, End: 0,
		TotalChunks: 32, GPUReady: 20, RDMATransmitted: 16, RDMADone: 16, StuckNs: 1_216_000_000,
	}
}

func fixtureAttempt() remedy.Attempt {
	return remedy.Attempt{
		ID: 0, Policy: "self-heal", Rule: "recover",
		Action:     remedy.Action{Kind: remedy.ActRecoverFault, Rank: 5, Comm: 7, Category: core.CatNetworkSendPath},
		Try:        1,
		ReportedAt: 19_000_000_000, AppliedAt: 19_000_000_000, ResolvedAt: 34_000_000_000,
		Outcome: remedy.OutcomeSucceeded, Detail: "quiet for 15s after action",
	}
}

func fixtureSpan() otrace.Span {
	return otrace.Span{
		ID: 893, Parent: 891, Job: "llm-70b", Stage: otrace.StageRCA,
		Cause: "trigger-1", Peer: "p2", Detail: "suspect rank 5 (gpu-hang): chain=3 victims=7",
		Start: 21_000_000_000, End: 27_000_000_000,
		WallStart: 1_700_000_000_123_456_789, WallEnd: 1_700_000_000_123_500_000,
	}
}

// golden marshals v with stable indentation and compares it (or rewrites
// it, under -update) against testdata/<name>.golden.json.
func golden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/api -run Golden -update`): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("wire format drifted from %s — field renames break remote clients.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenWireFormat pins the JSON encoding of every payload the /v1
// protocol carries. A failing diff here means the wire format changed:
// either bump api.Version or revert the rename.
func TestGoldenWireFormat(t *testing.T) {
	rep := fixtureReport()
	golden(t, "trigger", FromTrigger(fixtureTrigger()))
	golden(t, "report", FromReport(rep))
	golden(t, "record", FromRecord(fixtureRecord()))
	golden(t, "attempt", FromAttempt(fixtureAttempt()))
	golden(t, "event_trigger", Event{Job: "llm-70b", Kind: "trigger", AtNs: 17_500_000_000, Trigger: ptr(FromTrigger(fixtureTrigger()))})
	golden(t, "event_report", Event{Job: "llm-70b", Kind: "report", AtNs: 19_000_000_000, Report: ptr(FromReport(rep))})
	golden(t, "event_lifecycle", Event{Job: "llm-70b", Kind: "lifecycle", AtNs: 0, Phase: "job-started"})
	golden(t, "event_action", Event{Job: "llm-70b", Kind: "action", AtNs: 19_000_000_000, Action: ptr(FromAttempt(fixtureAttempt()))})
	golden(t, "event_health", Event{Job: "llm-70b", Kind: "health", AtNs: 42_000_000_000, Health: ptr(fixtureHealthChange())})
	golden(t, "log_anomaly", FromLogAnomaly(fixtureLogAnomaly()))
	golden(t, "event_log_anomaly", Event{Job: "llm-70b", Kind: "log-anomaly", AtNs: 18_000_000_000, LogAnomaly: ptr(FromLogAnomaly(fixtureLogAnomaly()))})
	golden(t, "channels_response", fixtureChannelsResponse())
	golden(t, "health", fixtureHealthResponse())
	golden(t, "span", FromSpan(fixtureSpan()))
	golden(t, "spans_response", SpansResponse{
		Job:   "llm-70b",
		Spans: []Span{FromSpan(fixtureSpan())},
		Total: 3068, Dropped: 12,
	})
}

func fixtureHealthChange() HealthChange {
	return HealthChange{
		From: "healthy", To: "stale", LastIngestNs: 30_000_000_000,
		Reason: "no ingest for 12s (threshold 10s)",
	}
}

func fixtureHealthResponse() HealthResponse {
	return HealthResponse{
		NowNs: 42_000_000_000, UptimeMs: 1234, Server: "mycroft-serve/1", Version: 1,
		Subscriptions: SubscriptionStats{Active: 2, Delivered: 917, Dropped: 3},
		Jobs: []JobHealthInfo{
			{Job: "llm-70b", State: "stale", SinceNs: 41_500_000_000, LastIngestNs: 30_000_000_000, Reason: "no ingest for 12s (threshold 10s)"},
			{Job: "moe-8x22", State: "healthy", SinceNs: 0, LastIngestNs: 41_900_000_000},
		},
	}
}

func ptr[T any](v T) *T { return &v }

// TestWireRoundTrip proves the wire form is lossless: domain → wire → JSON
// → wire → domain reproduces the original value exactly.
func TestWireRoundTrip(t *testing.T) {
	t.Run("trigger", func(t *testing.T) {
		roundTrip(t, fixtureTrigger(), FromTrigger, Trigger.Trigger)
	})
	t.Run("report", func(t *testing.T) {
		roundTrip(t, fixtureReport(), FromReport, Report.Report)
	})
	t.Run("record", func(t *testing.T) {
		roundTrip(t, fixtureRecord(), FromRecord, TraceRecord.Record)
	})
	t.Run("attempt", func(t *testing.T) {
		roundTrip(t, fixtureAttempt(), FromAttempt, Attempt.Attempt)
	})
	t.Run("log_anomaly", func(t *testing.T) {
		roundTrip(t, fixtureLogAnomaly(), FromLogAnomaly, LogAnomaly.LogAnomaly)
	})
	t.Run("evidence", func(t *testing.T) {
		roundTrip(t, fixtureReport().Evidence[2], FromEvidence, Evidence.Evidence)
	})
	t.Run("span", func(t *testing.T) {
		roundTrip(t, fixtureSpan(), FromSpan, func(w Span) (otrace.Span, error) { return w.Span(), nil })
	})
	t.Run("edge", func(t *testing.T) {
		roundTrip(t, depgraph.Edge{
			From: depgraph.Node{Rank: 2, Comm: 3, Seq: 41},
			To:   depgraph.Node{Rank: 5, Comm: 7, Seq: 40},
			Kind: depgraph.EdgePipeline,
		}, FromEdge, Edge.Edge)
	})
}

func roundTrip[D any, W any](t *testing.T, domain D, to func(D) W, back func(W) (D, error)) {
	t.Helper()
	wire := to(domain)
	data, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var decoded W
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := back(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, domain) {
		t.Errorf("round trip lost data:\n got %+v\nwant %+v", got, domain)
	}
}

// TestParseRejectsUnknownEnums keeps the strict parse surfaces strict: a
// daemon speaking a future enum value must fail loudly, not alias to zero.
func TestParseRejectsUnknownEnums(t *testing.T) {
	if _, err := ParseEventKind("telemetry"); err == nil {
		t.Error("ParseEventKind accepted unknown kind")
	}
	if k, err := ParseEventKind("health"); err != nil || k != core.EventHealth {
		t.Errorf("ParseEventKind(health) = %v, %v; want EventHealth", k, err)
	}
	if _, err := ParseHealthState("zombie"); err == nil {
		t.Error("ParseHealthState accepted unknown state")
	}
	for _, s := range []string{"stopped", "healthy", "degraded", "stale"} {
		if got, err := ParseHealthState(s); err != nil || got != s {
			t.Errorf("ParseHealthState(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := ParseTriggerKind("hiccup"); err == nil {
		t.Error("ParseTriggerKind accepted unknown kind")
	}
	if _, err := ParseRecordKind("summary"); err == nil {
		t.Error("ParseRecordKind accepted unknown kind")
	}
	if _, err := ParseOp("AllDance"); err == nil {
		t.Error("ParseOp accepted unknown op")
	}
	if _, err := ParseEdgeKind("wormhole"); err == nil {
		t.Error("ParseEdgeKind accepted unknown edge")
	}
	if _, err := ParseActionKind("reboot-universe"); err == nil {
		t.Error("ParseActionKind accepted unknown action")
	}
	if _, err := ParseOutcome("shrug"); err == nil {
		t.Error("ParseOutcome accepted unknown outcome")
	}
	if k, err := ParseEventKind("log-anomaly"); err != nil || k != core.EventLogAnomaly {
		t.Errorf("ParseEventKind(log-anomaly) = %v, %v; want EventLogAnomaly", k, err)
	}
	if _, err := ParseModality("telepathy"); err == nil {
		t.Error("ParseModality accepted unknown channel")
	}
	for _, m := range core.Modalities() {
		if got, err := ParseModality(string(m)); err != nil || got != m {
			t.Errorf("ParseModality(%q) = %q, %v", m, got, err)
		}
	}
}
