// Package api defines Mycroft's versioned wire protocol: the
// JSON-serializable request/response types every transport-facing consumer
// speaks, and the HTTP server that mounts them under /v1/.
//
// The wire format is the compatibility contract between a mycroft-serve
// daemon and its remote clients, so it is deliberately decoupled from the
// in-memory domain types: every enum crosses the wire as a stable string
// (EventKind "trigger", not a Go iota that renumbers under refactors), every
// timestamp as int64 virtual nanoseconds, and every paginated response
// carries Total and NextOffset so a caller can always tell a short page from
// the last page. Golden-file tests pin the encoding; renaming a field is a
// wire break and fails CI.
package api

import (
	"fmt"

	"mycroft/internal/clouddb"
	"mycroft/internal/core"
	"mycroft/internal/depgraph"
	"mycroft/internal/otrace"
	"mycroft/internal/remedy"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// simTime converts wire nanoseconds back to virtual time.
func simTime(ns int64) sim.Time { return sim.Time(ns) }

// Version is the wire-protocol generation. It is served at /v1/ping and
// checked by Dial; all endpoints mount under "/v1/".
const Version = 1

// Prefix is the URL prefix every endpoint of this Version mounts under.
const Prefix = "/v1"

// ---------------------------------------------------------------------------
// Stable enum names.
//
// Numeric Go enums (EventKind, TriggerKind, record Kind, OpKind) cross the
// wire as canonical strings so a renumbering refactor cannot silently change
// the protocol. String-typed domain enums (Category, Via, EdgeKind,
// ActionKind, Outcome) pass through as-is; the closed sets among them are
// validated on parse.

// EventKindName renders a core.EventKind as its wire name.
func EventKindName(k core.EventKind) string { return k.String() }

// ParseEventKind maps a wire name back to the core kind.
func ParseEventKind(s string) (core.EventKind, error) {
	switch s {
	case "trigger":
		return core.EventTrigger, nil
	case "report":
		return core.EventReport, nil
	case "lifecycle":
		return core.EventLifecycle, nil
	case "action":
		return core.EventAction, nil
	case "health":
		return core.EventHealth, nil
	case "log-anomaly":
		return core.EventLogAnomaly, nil
	}
	return 0, fmt.Errorf("api: unknown event kind %q", s)
}

// ParseModality validates a diagnosis-channel name from the wire. The
// channel set is part of the protocol: "tracepoint", "log", "perf".
func ParseModality(s string) (core.Modality, error) {
	for _, m := range core.Modalities() {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("api: unknown channel %q (valid: %v)", s, core.Modalities())
}

// ParseHealthState validates a job health state from the wire. The state
// set is part of the protocol: "stopped", "healthy", "degraded", "stale".
func ParseHealthState(s string) (string, error) {
	switch s {
	case "stopped", "healthy", "degraded", "stale":
		return s, nil
	}
	return "", fmt.Errorf("api: unknown health state %q", s)
}

// TriggerKindName renders a core.TriggerKind as its wire name.
func TriggerKindName(k core.TriggerKind) string { return k.String() }

// ParseTriggerKind maps a wire name back to the core kind.
func ParseTriggerKind(s string) (core.TriggerKind, error) {
	switch s {
	case "failure":
		return core.TriggerFailure, nil
	case "straggler":
		return core.TriggerStraggler, nil
	}
	return 0, fmt.Errorf("api: unknown trigger kind %q", s)
}

// RecordKindName renders a trace.Kind as its wire name.
func RecordKindName(k trace.Kind) string { return k.String() }

// ParseRecordKind maps a wire name back to the trace kind.
func ParseRecordKind(s string) (trace.Kind, error) {
	switch s {
	case "completion":
		return trace.KindCompletion, nil
	case "state":
		return trace.KindState, nil
	}
	return 0, fmt.Errorf("api: unknown record kind %q", s)
}

// OpName renders a trace.OpKind as its wire name ("AllReduce", ...).
func OpName(o trace.OpKind) string { return o.String() }

// ParseOp maps a wire name back to the collective op kind.
func ParseOp(s string) (trace.OpKind, error) {
	for o := trace.OpNone; o <= trace.OpBarrier; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("api: unknown op %q", s)
}

// ParseEdgeKind validates a dependency-edge kind from the wire.
func ParseEdgeKind(s string) (depgraph.EdgeKind, error) {
	switch k := depgraph.EdgeKind(s); k {
	case depgraph.EdgeBarrier, depgraph.EdgePipeline, depgraph.EdgeNested, "":
		return k, nil
	}
	return "", fmt.Errorf("api: unknown edge kind %q", s)
}

// ParseActionKind validates a remediation action kind from the wire.
func ParseActionKind(s string) (remedy.ActionKind, error) {
	if k := remedy.ActionKind(s); remedy.KnownAction(k) {
		return k, nil
	}
	return "", fmt.Errorf("api: unknown action kind %q", s)
}

// ParseOutcome validates a remediation outcome from the wire.
func ParseOutcome(s string) (remedy.Outcome, error) {
	if o := remedy.Outcome(s); remedy.KnownOutcome(o) {
		return o, nil
	}
	return "", fmt.Errorf("api: unknown outcome %q", s)
}

// ---------------------------------------------------------------------------
// Domain payloads on the wire.

// Trigger is the wire form of an Algorithm 1 firing.
type Trigger struct {
	Kind   string `json:"kind"`
	Rank   int    `json:"rank"`
	IP     string `json:"ip"`
	AtNs   int64  `json:"at_ns"`
	CommID uint64 `json:"comm_id"`
	Reason string `json:"reason"`
}

// FromTrigger converts a domain trigger to its wire form.
func FromTrigger(t core.Trigger) Trigger {
	return Trigger{
		Kind: TriggerKindName(t.Kind), Rank: int(t.Rank), IP: string(t.IP),
		AtNs: int64(t.At), CommID: t.CommID, Reason: t.Reason,
	}
}

// Trigger converts back to the domain type.
func (t Trigger) Trigger() (core.Trigger, error) {
	k, err := ParseTriggerKind(t.Kind)
	if err != nil {
		return core.Trigger{}, err
	}
	return core.Trigger{
		Kind: k, Rank: topo.Rank(t.Rank), IP: topo.IP(t.IP),
		At: simTime(t.AtNs), CommID: t.CommID, Reason: t.Reason,
	}, nil
}

// Hop is one wire step of a report's cross-communicator causal chain.
type Hop struct {
	Comm    uint64 `json:"comm"`
	Suspect int    `json:"suspect"`
	Via     string `json:"via"`
	Edge    string `json:"edge,omitempty"`
}

// Evidence is the wire form of one channel's contribution to a fused
// verdict.
type Evidence struct {
	Channel  string  `json:"channel"`
	Rank     int     `json:"rank"`
	Category string  `json:"category"`
	Weight   float64 `json:"weight"`
	Score    float64 `json:"score,omitempty"`
	AtNs     int64   `json:"at_ns"`
	Detail   string  `json:"detail,omitempty"`
	Conflict bool    `json:"conflict,omitempty"`
}

// FromEvidence converts domain evidence to its wire form.
func FromEvidence(e core.Evidence) Evidence {
	return Evidence{
		Channel: string(e.Channel), Rank: int(e.Rank), Category: string(e.Category),
		Weight: e.Weight, Score: e.Score, AtNs: int64(e.At), Detail: e.Detail, Conflict: e.Conflict,
	}
}

// Evidence converts back to the domain type.
func (e Evidence) Evidence() (core.Evidence, error) {
	m, err := ParseModality(e.Channel)
	if err != nil {
		return core.Evidence{}, err
	}
	return core.Evidence{
		Channel: m, Rank: topo.Rank(e.Rank), Category: core.Category(e.Category),
		Weight: e.Weight, Score: e.Score, At: simTime(e.AtNs), Detail: e.Detail, Conflict: e.Conflict,
	}, nil
}

// Report is the wire form of an Algorithm 2 root-cause verdict. Evidence and
// Confidence carry the fused per-channel attribution (append-only additions;
// absent on pre-fusion servers).
type Report struct {
	Trigger      Trigger    `json:"trigger"`
	Suspect      int        `json:"suspect"`
	SuspectIP    string     `json:"suspect_ip"`
	CommID       uint64     `json:"comm_id"`
	Category     string     `json:"category"`
	Via          string     `json:"via"`
	AnalyzedAtNs int64      `json:"analyzed_at_ns"`
	Details      string     `json:"details"`
	Chain        []Hop      `json:"chain,omitempty"`
	Victims      []int      `json:"victims,omitempty"`
	Evidence     []Evidence `json:"evidence,omitempty"`
	Confidence   float64    `json:"confidence,omitempty"`
}

// FromReport converts a domain report to its wire form.
func FromReport(r core.Report) Report {
	w := Report{
		Trigger: FromTrigger(r.Trigger), Suspect: int(r.Suspect), SuspectIP: string(r.SuspectIP),
		CommID: r.CommID, Category: string(r.Category), Via: string(r.Via),
		AnalyzedAtNs: int64(r.AnalyzedAt), Details: r.Details, Confidence: r.Confidence,
	}
	for _, h := range r.Chain {
		w.Chain = append(w.Chain, Hop{Comm: h.Comm, Suspect: int(h.Suspect), Via: string(h.Via), Edge: string(h.Edge)})
	}
	for _, v := range r.Victims {
		w.Victims = append(w.Victims, int(v))
	}
	for _, e := range r.Evidence {
		w.Evidence = append(w.Evidence, FromEvidence(e))
	}
	return w
}

// Report converts back to the domain type.
func (r Report) Report() (core.Report, error) {
	tr, err := r.Trigger.Trigger()
	if err != nil {
		return core.Report{}, err
	}
	out := core.Report{
		Trigger: tr, Suspect: topo.Rank(r.Suspect), SuspectIP: topo.IP(r.SuspectIP),
		CommID: r.CommID, Category: core.Category(r.Category), Via: core.Via(r.Via),
		AnalyzedAt: simTime(r.AnalyzedAtNs), Details: r.Details,
	}
	for _, h := range r.Chain {
		edge, err := ParseEdgeKind(h.Edge)
		if err != nil {
			return core.Report{}, err
		}
		out.Chain = append(out.Chain, core.Hop{Comm: h.Comm, Suspect: topo.Rank(h.Suspect), Via: core.Via(h.Via), Edge: edge})
	}
	for _, v := range r.Victims {
		out.Victims = append(out.Victims, topo.Rank(v))
	}
	for _, e := range r.Evidence {
		ev, err := e.Evidence()
		if err != nil {
			return core.Report{}, err
		}
		out.Evidence = append(out.Evidence, ev)
	}
	out.Confidence = r.Confidence
	return out, nil
}

// TraceRecord is the wire form of one Coll-level trace log line (Table 2).
type TraceRecord struct {
	Kind   string `json:"kind"`
	TimeNs int64  `json:"time_ns"`

	IP      string `json:"ip"`
	CommID  uint64 `json:"comm_id"`
	Rank    int    `json:"rank"`
	GPUID   int32  `json:"gpu_id"`
	Channel int32  `json:"channel"`
	QPID    int32  `json:"qp_id"`

	Op      string `json:"op"`
	OpSeq   uint64 `json:"op_seq"`
	MsgSize int64  `json:"msg_size"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`

	TotalChunks     uint32 `json:"total_chunks"`
	GPUReady        uint32 `json:"gpu_ready"`
	RDMATransmitted uint32 `json:"rdma_transmitted"`
	RDMADone        uint32 `json:"rdma_done"`
	StuckNs         int64  `json:"stuck_ns"`
}

// FromRecord converts a domain trace record to its wire form.
func FromRecord(r trace.Record) TraceRecord {
	return TraceRecord{
		Kind: RecordKindName(r.Kind), TimeNs: int64(r.Time),
		IP: string(r.IP), CommID: r.CommID, Rank: int(r.Rank),
		GPUID: r.GPUID, Channel: r.Channel, QPID: r.QPID,
		Op: OpName(r.Op), OpSeq: r.OpSeq, MsgSize: r.MsgSize,
		StartNs: int64(r.Start), EndNs: int64(r.End),
		TotalChunks: r.TotalChunks, GPUReady: r.GPUReady,
		RDMATransmitted: r.RDMATransmitted, RDMADone: r.RDMADone, StuckNs: r.StuckNs,
	}
}

// Record converts back to the domain type.
func (r TraceRecord) Record() (trace.Record, error) {
	k, err := ParseRecordKind(r.Kind)
	if err != nil {
		return trace.Record{}, err
	}
	op, err := ParseOp(r.Op)
	if err != nil {
		return trace.Record{}, err
	}
	return trace.Record{
		Kind: k, Time: simTime(r.TimeNs),
		IP: topo.IP(r.IP), CommID: r.CommID, Rank: topo.Rank(r.Rank),
		GPUID: r.GPUID, Channel: r.Channel, QPID: r.QPID,
		Op: op, OpSeq: r.OpSeq, MsgSize: r.MsgSize,
		Start: simTime(r.StartNs), End: simTime(r.EndNs),
		TotalChunks: r.TotalChunks, GPUReady: r.GPUReady,
		RDMATransmitted: r.RDMATransmitted, RDMADone: r.RDMADone, StuckNs: r.StuckNs,
	}, nil
}

// Action is the wire form of one ordered mitigation.
type Action struct {
	Kind     string `json:"kind"`
	Rank     int    `json:"rank"`
	Comm     uint64 `json:"comm"`
	Category string `json:"category"`
}

// Attempt is the wire form of one remediation audit-log entry.
type Attempt struct {
	ID           int    `json:"id"`
	Policy       string `json:"policy"`
	Rule         string `json:"rule"`
	Action       Action `json:"action"`
	Try          int    `json:"try"`
	ReportedAtNs int64  `json:"reported_at_ns"`
	AppliedAtNs  int64  `json:"applied_at_ns"`
	ResolvedAtNs int64  `json:"resolved_at_ns"`
	Outcome      string `json:"outcome"`
	Detail       string `json:"detail,omitempty"`
}

// FromAttempt converts a domain audit-log entry to its wire form.
func FromAttempt(a remedy.Attempt) Attempt {
	return Attempt{
		ID: a.ID, Policy: a.Policy, Rule: a.Rule,
		Action:       Action{Kind: string(a.Action.Kind), Rank: int(a.Action.Rank), Comm: a.Action.Comm, Category: string(a.Action.Category)},
		Try:          a.Try,
		ReportedAtNs: int64(a.ReportedAt), AppliedAtNs: int64(a.AppliedAt), ResolvedAtNs: int64(a.ResolvedAt),
		Outcome: string(a.Outcome), Detail: a.Detail,
	}
}

// Attempt converts back to the domain type.
func (a Attempt) Attempt() (remedy.Attempt, error) {
	kind, err := ParseActionKind(a.Action.Kind)
	if err != nil {
		return remedy.Attempt{}, err
	}
	outcome, err := ParseOutcome(a.Outcome)
	if err != nil {
		return remedy.Attempt{}, err
	}
	return remedy.Attempt{
		ID: a.ID, Policy: a.Policy, Rule: a.Rule,
		Action:     remedy.Action{Kind: kind, Rank: topo.Rank(a.Action.Rank), Comm: a.Action.Comm, Category: core.Category(a.Action.Category)},
		Try:        a.Try,
		ReportedAt: simTime(a.ReportedAtNs), AppliedAt: simTime(a.AppliedAtNs), ResolvedAt: simTime(a.ResolvedAtNs),
		Outcome: outcome, Detail: a.Detail,
	}, nil
}

// Span is the wire form of one pipeline span: one stage of an incident's
// causal tree, with virtual (deterministic) and wall-clock (profiling)
// timestamps. A span with wall_end_ns 0 is still open.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Job    string `json:"job"`
	Stage  string `json:"stage"`
	Cause  string `json:"cause,omitempty"`
	Peer   string `json:"peer,omitempty"`
	Detail string `json:"detail,omitempty"`
	// StartNs and EndNs are virtual nanoseconds; WallStartNs and WallEndNs
	// are wall-clock unix nanoseconds (nondeterministic — deterministic
	// consumers render only the virtual fields).
	StartNs     int64 `json:"start_ns"`
	EndNs       int64 `json:"end_ns"`
	WallStartNs int64 `json:"wall_start_ns,omitempty"`
	WallEndNs   int64 `json:"wall_end_ns,omitempty"`
}

// FromSpan converts a domain span to its wire form.
func FromSpan(s otrace.Span) Span {
	return Span{
		ID: uint64(s.ID), Parent: uint64(s.Parent), Job: s.Job, Stage: s.Stage,
		Cause: s.Cause, Peer: s.Peer, Detail: s.Detail,
		StartNs: int64(s.Start), EndNs: int64(s.End),
		WallStartNs: s.WallStart, WallEndNs: s.WallEnd,
	}
}

// Span converts back to the domain type.
func (s Span) Span() otrace.Span {
	return otrace.Span{
		ID: otrace.SpanID(s.ID), Parent: otrace.SpanID(s.Parent), Job: s.Job, Stage: s.Stage,
		Cause: s.Cause, Peer: s.Peer, Detail: s.Detail,
		Start: simTime(s.StartNs), End: simTime(s.EndNs),
		WallStart: s.WallStartNs, WallEnd: s.WallEndNs,
	}
}

// SpansRequest asks GET /v1/jobs/{id}/spans for pipeline spans. Over HTTP
// the filters ride the query string (incident, stage, after_id, min_wall_ns,
// limit); the JSON form exists for symmetry and tests.
type SpansRequest struct {
	Job       string `json:"job,omitempty"`
	Incident  string `json:"incident,omitempty"`
	Stage     string `json:"stage,omitempty"`
	AfterID   uint64 `json:"after_id,omitempty"`
	MinWallNs int64  `json:"min_wall_ns,omitempty"`
	Limit     int    `json:"limit,omitempty"`
}

// SpansResponse is one span query's answer: matches ascending by ID, the
// total matched before Limit, and the ring's lifetime overwrite count.
type SpansResponse struct {
	Job     string `json:"job"`
	Spans   []Span `json:"spans"`
	Total   int    `json:"total"`
	Dropped uint64 `json:"dropped,omitempty"`
}

// Node is the wire form of one dependency-graph node.
type Node struct {
	Rank int    `json:"rank"`
	Comm uint64 `json:"comm"`
	Seq  uint64 `json:"seq"`
}

// Edge is the wire form of one dependency-graph wait edge.
type Edge struct {
	From Node   `json:"from"`
	To   Node   `json:"to"`
	Kind string `json:"kind"`
}

// FromEdge converts a domain dependency edge to its wire form.
func FromEdge(e depgraph.Edge) Edge {
	return Edge{
		From: Node{Rank: int(e.From.Rank), Comm: e.From.Comm, Seq: e.From.Seq},
		To:   Node{Rank: int(e.To.Rank), Comm: e.To.Comm, Seq: e.To.Seq},
		Kind: string(e.Kind),
	}
}

// Edge converts back to the domain type.
func (e Edge) Edge() (depgraph.Edge, error) {
	k, err := ParseEdgeKind(e.Kind)
	if err != nil {
		return depgraph.Edge{}, err
	}
	return depgraph.Edge{
		From: depgraph.Node{Rank: topo.Rank(e.From.Rank), Comm: e.From.Comm, Seq: e.From.Seq},
		To:   depgraph.Node{Rank: topo.Rank(e.To.Rank), Comm: e.To.Comm, Seq: e.To.Seq},
		Kind: k,
	}, nil
}

// HealthChange is the wire form of one job health transition.
type HealthChange struct {
	From         string `json:"from"`
	To           string `json:"to"`
	LastIngestNs int64  `json:"last_ingest_ns"`
	Reason       string `json:"reason,omitempty"`
}

// LogAnomaly is the wire form of one non-tracepoint channel finding: a
// log-template divergence or a timing-envelope breach. Template doubles as
// the finding kind for perf findings.
type LogAnomaly struct {
	Channel  string  `json:"channel"`
	Rank     int     `json:"rank"`
	Ranks    []int   `json:"ranks,omitempty"`
	Template string  `json:"template"`
	Level    string  `json:"level,omitempty"`
	Count    int     `json:"count,omitempty"`
	Fleet    int     `json:"fleet,omitempty"`
	Score    float64 `json:"score"`
	Category string  `json:"category"`
	AtNs     int64   `json:"at_ns"`
}

// FromLogAnomaly converts a domain channel finding to its wire form.
func FromLogAnomaly(a core.LogAnomaly) LogAnomaly {
	w := LogAnomaly{
		Channel: string(a.Channel), Rank: int(a.Rank), Template: a.Template,
		Level: a.Level, Count: a.Count, Fleet: a.Fleet, Score: a.Score,
		Category: string(a.Category), AtNs: int64(a.At),
	}
	for _, r := range a.Ranks {
		w.Ranks = append(w.Ranks, int(r))
	}
	return w
}

// LogAnomaly converts back to the domain type.
func (a LogAnomaly) LogAnomaly() (core.LogAnomaly, error) {
	m, err := ParseModality(a.Channel)
	if err != nil {
		return core.LogAnomaly{}, err
	}
	out := core.LogAnomaly{
		Channel: m, Rank: topo.Rank(a.Rank), Template: a.Template,
		Level: a.Level, Count: a.Count, Fleet: a.Fleet, Score: a.Score,
		Category: core.Category(a.Category), At: simTime(a.AtNs),
	}
	for _, r := range a.Ranks {
		out.Ranks = append(out.Ranks, topo.Rank(r))
	}
	return out, nil
}

// Event is the wire form of one subscription event. Exactly one of Trigger,
// Report, Phase, Action, Health or LogAnomaly is set, matching Kind.
type Event struct {
	Job        string        `json:"job"`
	Kind       string        `json:"kind"`
	AtNs       int64         `json:"at_ns"`
	Trigger    *Trigger      `json:"trigger,omitempty"`
	Report     *Report       `json:"report,omitempty"`
	Phase      string        `json:"phase,omitempty"`
	Action     *Attempt      `json:"action,omitempty"`
	Health     *HealthChange `json:"health,omitempty"`
	LogAnomaly *LogAnomaly   `json:"log_anomaly,omitempty"`
}

// EventFilter is the wire form of a subscription filter. Buffer 0 does not
// mean unbounded over the wire: the server caps unbounded requests at its
// default so an abandoned subscription cannot grow the daemon without
// bound (overflow is reported via PollResponse.Dropped).
type EventFilter struct {
	Jobs       []string `json:"jobs,omitempty"`
	Kinds      []string `json:"kinds,omitempty"`
	Ranks      []int    `json:"ranks,omitempty"`
	Categories []string `json:"categories,omitempty"`
	Victims    []int    `json:"victims,omitempty"`
	MinChain   int      `json:"min_chain,omitempty"`
	Outcomes   []string `json:"outcomes,omitempty"`
	FromNs     int64    `json:"from_ns,omitempty"`
	ToNs       int64    `json:"to_ns,omitempty"`
	Buffer     int      `json:"buffer,omitempty"`
}

// ---------------------------------------------------------------------------
// Store statistics on the wire.

// ShardStats is the wire form of one shard's counters.
type ShardStats struct {
	Ranks    int    `json:"ranks"`
	Records  int    `json:"records"`
	Ingested uint64 `json:"ingested"`
	Pruned   uint64 `json:"pruned"`
}

// StoreStats is the wire form of a job's trace-store counters.
type StoreStats struct {
	Ranks         int          `json:"ranks"`
	Records       int          `json:"records"`
	Ingested      uint64       `json:"ingested"`
	BytesIngested uint64       `json:"bytes_ingested"`
	Pruned        uint64       `json:"pruned"`
	Shards        []ShardStats `json:"shards"`
}

// FromStats converts domain store stats to the wire form.
func FromStats(st clouddb.Stats) StoreStats {
	w := StoreStats{
		Ranks: st.Ranks, Records: st.Records,
		Ingested: st.Ingested, BytesIngested: st.BytesIngested, Pruned: st.Pruned,
	}
	for _, ss := range st.Shards {
		w.Shards = append(w.Shards, ShardStats{Ranks: ss.Ranks, Records: ss.Records, Ingested: ss.Ingested, Pruned: ss.Pruned})
	}
	return w
}

// Stats converts back to the domain type.
func (s StoreStats) Stats() clouddb.Stats {
	st := clouddb.Stats{
		Ranks: s.Ranks, Records: s.Records,
		Ingested: s.Ingested, BytesIngested: s.BytesIngested, Pruned: s.Pruned,
	}
	for _, ss := range s.Shards {
		st.Shards = append(st.Shards, clouddb.ShardStats{Ranks: ss.Ranks, Records: ss.Records, Ingested: ss.Ingested, Pruned: ss.Pruned})
	}
	return st
}

// ---------------------------------------------------------------------------
// Requests and responses.

// PingResponse answers GET /v1/ping: protocol version and the daemon's
// current virtual time, so clients (and CI) can watch the drive loop advance.
// Server and StartedUnixNs identify the serving process (both omitted by
// minimal servers, so old clients keep parsing).
type PingResponse struct {
	Version int   `json:"version"`
	NowNs   int64 `json:"now_ns"`
	// Server is the daemon's self-reported identity ("mycroft-serve/1").
	Server string `json:"server,omitempty"`
	// StartedUnixNs is the wall-clock time the daemon started, Unix ns.
	StartedUnixNs int64 `json:"started_unix_ns,omitempty"`
}

// JobHealthInfo is one job's heartbeat verdict inside a HealthResponse.
type JobHealthInfo struct {
	Job          string `json:"job"`
	State        string `json:"state"`
	SinceNs      int64  `json:"since_ns"`
	LastIngestNs int64  `json:"last_ingest_ns"`
	Reason       string `json:"reason,omitempty"`
}

// SubscriptionStats summarizes the daemon's subscription fan-out.
type SubscriptionStats struct {
	Active    int    `json:"active"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

// HealthResponse answers GET /v1/health: per-job heartbeat state plus the
// serving process's uptime and identity.
type HealthResponse struct {
	NowNs         int64             `json:"now_ns"`
	UptimeMs      int64             `json:"uptime_ms"`
	Server        string            `json:"server,omitempty"`
	Version       int               `json:"version"`
	Subscriptions SubscriptionStats `json:"subscriptions"`
	Jobs          []JobHealthInfo   `json:"jobs"`
}

// JobInfo describes one hosted job.
type JobInfo struct {
	ID         string     `json:"id"`
	WorldSize  int        `json:"world_size"`
	Iterations int        `json:"iterations"`
	Records    uint64     `json:"records"`
	Store      StoreStats `json:"store"`
	Isolated   []int      `json:"isolated,omitempty"`
	Policy     string     `json:"policy,omitempty"`
	// Source marks a row not hosted by the answering daemon: "replica" when
	// it comes from a cluster peer's replicated snapshot ("" = live local).
	Source string `json:"source,omitempty"`
}

// JobsResponse answers GET /v1/jobs.
type JobsResponse struct {
	NowNs int64     `json:"now_ns"`
	Jobs  []JobInfo `json:"jobs"`
}

// TraceCursor is the wire form of a trace pagination cursor.
type TraceCursor struct {
	Rank    int   `json:"rank"`
	TimeNs  int64 `json:"time_ns"`
	Emitted int   `json:"emitted"`
}

// TraceRequest asks POST /v1/trace/query for raw records.
type TraceRequest struct {
	Job    string       `json:"job,omitempty"`
	Ranks  []int        `json:"ranks,omitempty"`
	Comm   uint64       `json:"comm,omitempty"`
	Kinds  []string     `json:"kinds,omitempty"`
	FromNs int64        `json:"from_ns,omitempty"`
	ToNs   int64        `json:"to_ns,omitempty"`
	Limit  int          `json:"limit,omitempty"`
	Cursor *TraceCursor `json:"cursor,omitempty"`
}

// TraceResponse is one page of records. Total counts every match of the
// query on a walk's first page (-1 on a cursor-resumed full page — track
// progress from page one); Next resumes the page when non-nil.
type TraceResponse struct {
	Job     string        `json:"job"`
	Records []TraceRecord `json:"records"`
	Total   int           `json:"total"`
	Next    *TraceCursor  `json:"next,omitempty"`
}

// TriggersRequest asks POST /v1/triggers/query for Algorithm 1 firings.
type TriggersRequest struct {
	Jobs   []string `json:"jobs,omitempty"`
	Ranks  []int    `json:"ranks,omitempty"`
	Kinds  []string `json:"kinds,omitempty"`
	FromNs int64    `json:"from_ns,omitempty"`
	ToNs   int64    `json:"to_ns,omitempty"`
	Offset int      `json:"offset,omitempty"`
	Limit  int      `json:"limit,omitempty"`
}

// JobTrigger is a trigger tagged with its job.
type JobTrigger struct {
	Job     string  `json:"job"`
	Trigger Trigger `json:"trigger"`
}

// TriggersResponse is one page of matches. NextOffset is the offset of the
// first unreturned match, -1 when this page exhausted them.
type TriggersResponse struct {
	Triggers   []JobTrigger `json:"triggers"`
	Total      int          `json:"total"`
	NextOffset int          `json:"next_offset"`
}

// ReportsRequest asks POST /v1/reports/query for Algorithm 2 verdicts.
type ReportsRequest struct {
	Jobs       []string `json:"jobs,omitempty"`
	Suspects   []int    `json:"suspects,omitempty"`
	Categories []string `json:"categories,omitempty"`
	Comm       uint64   `json:"comm,omitempty"`
	FromNs     int64    `json:"from_ns,omitempty"`
	ToNs       int64    `json:"to_ns,omitempty"`
	Offset     int      `json:"offset,omitempty"`
	Limit      int      `json:"limit,omitempty"`
}

// JobReport is a verdict tagged with its job.
type JobReport struct {
	Job    string `json:"job"`
	Report Report `json:"report"`
}

// ReportsResponse is one page of matches (NextOffset as in TriggersResponse).
type ReportsResponse struct {
	Reports    []JobReport `json:"reports"`
	Total      int         `json:"total"`
	NextOffset int         `json:"next_offset"`
}

// DependenciesRequest asks POST /v1/dependencies/query for live wait edges.
type DependenciesRequest struct {
	Job   string `json:"job,omitempty"`
	Comm  uint64 `json:"comm,omitempty"`
	Ranks []int  `json:"ranks,omitempty"`
	// RenderDOT asks the server to render the whole graph as Graphviz dot.
	RenderDOT bool `json:"render_dot,omitempty"`
}

// DependenciesResponse is the matched edge set.
type DependenciesResponse struct {
	Job   string `json:"job"`
	Edges []Edge `json:"edges"`
	DOT   string `json:"dot,omitempty"`
}

// BlastRadiusRequest asks POST /v1/blast-radius for a suspect's victims.
type BlastRadiusRequest struct {
	Job     string `json:"job,omitempty"`
	Suspect int    `json:"suspect"`
}

// BlastRadiusResponse lists the ranks transitively blocked by the suspect.
type BlastRadiusResponse struct {
	Job     string `json:"job"`
	Suspect int    `json:"suspect"`
	Victims []int  `json:"victims"`
}

// RemediationsRequest asks POST /v1/remediations/query for audit-log entries.
type RemediationsRequest struct {
	Jobs     []string `json:"jobs,omitempty"`
	Ranks    []int    `json:"ranks,omitempty"`
	Actions  []string `json:"actions,omitempty"`
	Outcomes []string `json:"outcomes,omitempty"`
	FromNs   int64    `json:"from_ns,omitempty"`
	ToNs     int64    `json:"to_ns,omitempty"`
	Offset   int      `json:"offset,omitempty"`
	Limit    int      `json:"limit,omitempty"`
}

// JobAttempt is an audit-log entry tagged with its job.
type JobAttempt struct {
	Job     string  `json:"job"`
	Attempt Attempt `json:"attempt"`
}

// RemediationsResponse is one page of matches (NextOffset as above).
type RemediationsResponse struct {
	Attempts   []JobAttempt `json:"attempts"`
	Total      int          `json:"total"`
	NextOffset int          `json:"next_offset"`
}

// TriageRequest asks POST /v1/triage for the Fig. 6 combined verdict.
type TriageRequest struct {
	Job string `json:"job,omitempty"`
}

// TriageResponse is the combined py-spy / Flight Recorder / Mycroft verdict.
type TriageResponse struct {
	Job     string `json:"job"`
	Source  string `json:"source"`
	Rank    int    `json:"rank"`
	Summary string `json:"summary"`
	OK      bool   `json:"ok"`
}

// SubscribeRequest asks POST /v1/subscribe for a streaming cursor.
type SubscribeRequest struct {
	Filter EventFilter `json:"filter"`
}

// SubscribeResponse names the created subscription; poll it with
// POST /v1/poll or stream it from GET /v1/subscriptions/{id}/sse, and close
// it with DELETE /v1/subscriptions/{id}.
type SubscribeResponse struct {
	ID string `json:"id"`
}

// PollRequest long-polls a subscription: it waits up to TimeoutMs for the
// first event, then drains up to Max buffered events.
type PollRequest struct {
	ID        string `json:"id"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
	Max       int    `json:"max,omitempty"`
}

// PollResponse is one long-poll result. Dropped is the subscription's
// cumulative buffer-overflow count; Closed reports that the subscription is
// gone and polling should stop.
type PollResponse struct {
	Events  []Event `json:"events"`
	Dropped uint64  `json:"dropped"`
	Closed  bool    `json:"closed"`
	// Lost marks an ID the server does not know — the subscription is gone
	// for good (typically a daemon restart wiped it), as opposed to a clean
	// Closed whose buffered events were still drainable. Clients surface it
	// as ErrSubscriptionLost.
	Lost bool `json:"lost,omitempty"`
}

// LogLine is one structured training-log line on the wire. at_ns 0 means
// "the server's current virtual time".
type LogLine struct {
	Rank  int    `json:"rank"`
	AtNs  int64  `json:"at_ns,omitempty"`
	Level string `json:"level,omitempty"`
	Text  string `json:"text"`
}

// LogsRequest asks POST /v1/jobs/{id}/logs to fold log lines into the job's
// log-diagnosis channel (the tracepoint-free ingest path).
type LogsRequest struct {
	Lines []LogLine `json:"lines"`
}

// TimingSample is one per-rank iteration-completion timestamp on the wire.
type TimingSample struct {
	Rank int   `json:"rank"`
	Iter int   `json:"iter"`
	AtNs int64 `json:"at_ns,omitempty"`
}

// TimingsRequest asks POST /v1/jobs/{id}/timings to feed the black-box perf
// channel.
type TimingsRequest struct {
	Samples []TimingSample `json:"samples"`
}

// IngestChannelResponse answers a channel ingest: how many items were folded
// in and how many anomalies the triggered analysis pass currently sees.
type IngestChannelResponse struct {
	Job       string `json:"job"`
	Accepted  int    `json:"accepted"`
	Anomalies int    `json:"anomalies"`
}

// ChannelInfo is one diagnosis channel's counters on the wire.
type ChannelInfo struct {
	Channel   string `json:"channel"`
	Ingested  uint64 `json:"ingested"`
	Anomalies uint64 `json:"anomalies"`
	Reports   uint64 `json:"reports"`
	Templates int    `json:"templates,omitempty"`
}

// FusionInfo summarizes evidence fusion for one job on the wire.
type FusionInfo struct {
	WindowNs       int64             `json:"window_ns"`
	Outcomes       map[string]uint64 `json:"outcomes,omitempty"`
	LastOutcome    string            `json:"last_outcome,omitempty"`
	LastConfidence float64           `json:"last_confidence,omitempty"`
}

// ChannelsResponse answers GET /v1/jobs/{id}/channels: per-channel counters
// in canonical order plus the job's fusion summary.
type ChannelsResponse struct {
	Job      string        `json:"job"`
	Channels []ChannelInfo `json:"channels"`
	Fusion   FusionInfo    `json:"fusion"`
}

// ErrorResponse is the body of every non-200 endpoint answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
