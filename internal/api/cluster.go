package api

import "fmt"

// Cluster-mode wire types: the /v1/cluster/* endpoint set that turns N
// mycroft-serve daemons into one diagnosis plane. Peers replicate each
// job's event stream (plus periodic snapshots and a best-effort trace
// mirror) from its primary to R followers, exchange health views by
// gossip, and serve a seq-resumable event tail that a cluster-aware client
// uses to fail a live subscription over from a dead primary to a replica
// with exact drop accounting.

// Peer health states on the wire. The ladder is alive → suspect (one missed
// contact) → dead (MissesBeforeDead consecutive misses).
const (
	PeerAlive   = "alive"
	PeerSuspect = "suspect"
	PeerDead    = "dead"
)

// ParsePeerState validates a peer state from the wire.
func ParsePeerState(s string) (string, error) {
	switch s {
	case PeerAlive, PeerSuspect, PeerDead:
		return s, nil
	}
	return "", fmt.Errorf("api: unknown peer state %q", s)
}

// ClusterPeer is one member of the cluster as seen by the answering peer.
type ClusterPeer struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// State is the answering peer's verdict: alive, suspect or dead.
	State string `json:"state"`
	// LastSeenUnixMs is when the answering peer last heard from this peer
	// directly or via gossip (wall clock; 0 = never).
	LastSeenUnixMs int64 `json:"last_seen_unix_ms,omitempty"`
	// Self marks the answering peer's own row.
	Self bool `json:"self,omitempty"`
}

// ClusterJob is one placed job: where the ring puts it and what the
// answering peer holds for it.
type ClusterJob struct {
	ID string `json:"id"`
	// Primary and Replicas are the ring placement (names).
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
	// Local reports that the answering peer hosts the live engine for this
	// job; Replicated that it holds a replica store for it.
	Local      bool `json:"local,omitempty"`
	Replicated bool `json:"replicated,omitempty"`
	// Promoted reports that the answering peer received a handoff for this
	// job and now answers authoritatively for it.
	Promoted bool `json:"promoted,omitempty"`
	// Watermark is the answering peer's event-log high sequence for the job
	// (its own log when local, the replicated log otherwise).
	Watermark uint64 `json:"watermark,omitempty"`
}

// ClusterStats is the answering peer's lifetime replication and failover
// counters: the numeric story of how much the fleet has shipped and how
// often followers had to answer.
type ClusterStats struct {
	// ReplicatedEvents and ReplicationBatches count event-log entries shipped
	// to followers and batches acknowledged; ReplicationFailures counts
	// batches that never reached their follower.
	ReplicatedEvents    uint64 `json:"replicated_events"`
	ReplicationBatches  uint64 `json:"replication_batches"`
	ReplicationFailures uint64 `json:"replication_failures,omitempty"`
	// Handoffs counts clean-shutdown job transfers this peer completed.
	Handoffs uint64 `json:"handoffs,omitempty"`
	// Tail pages served by answering role: the replica/promoted series
	// climbing is the server-visible failover signal.
	TailPrimary  uint64 `json:"tail_primary,omitempty"`
	TailReplica  uint64 `json:"tail_replica,omitempty"`
	TailPromoted uint64 `json:"tail_promoted,omitempty"`
}

// ClusterInfoResponse answers GET /v1/cluster/info: identity, ring
// parameters, the answering peer's health view and the job placement table.
// A client rebuilds the exact placement from ClusterID+Peers+VNodes alone.
type ClusterInfoResponse struct {
	ClusterID string `json:"cluster_id"`
	Self      string `json:"self"`
	// Replicas is R: how many followers each job's primary replicates to.
	Replicas int           `json:"replicas"`
	VNodes   int           `json:"vnodes"`
	Peers    []ClusterPeer `json:"peers"`
	Jobs     []ClusterJob  `json:"jobs,omitempty"`
	// Stats carries the answering peer's replication/failover counters
	// (merged by summation in a cluster-aware client; omitted by peers
	// predating it).
	Stats *ClusterStats `json:"stats,omitempty"`
}

// JoinRequest announces a peer to another peer (POST /v1/cluster/join).
// Membership is static (the -peers flag); join validates agreement and
// freshens the health tables on both sides.
type JoinRequest struct {
	ClusterID string `json:"cluster_id"`
	Name      string `json:"name"`
	Addr      string `json:"addr,omitempty"`
}

// JoinResponse acks a join with the receiver's identity and current view,
// so the joiner leaves the exchange with a fresh table.
type JoinResponse struct {
	Accepted bool          `json:"accepted"`
	Self     string        `json:"self"`
	Peers    []ClusterPeer `json:"peers,omitempty"`
}

// GossipRequest exchanges health views (POST /v1/cluster/gossip): the
// sender's table goes in, the receiver's comes back, and both merge by
// freshest LastSeen.
type GossipRequest struct {
	ClusterID string        `json:"cluster_id"`
	From      string        `json:"from"`
	Peers     []ClusterPeer `json:"peers,omitempty"`
}

// GossipResponse is the receiver's view.
type GossipResponse struct {
	Peers []ClusterPeer `json:"peers"`
}

// SeqEvent is one event-log entry: the primary-assigned, per-job,
// gap-free-ascending sequence number plus the event itself. Sequence
// numbers are what make tails resumable across peers and drops countable.
type SeqEvent struct {
	Seq   uint64 `json:"seq"`
	Event Event  `json:"event"`
}

// ClusterSnapshot is the periodically replicated coarse job state: enough
// for a replica to answer ListJobs/Health/status for the job.
type ClusterSnapshot struct {
	NowNs  int64         `json:"now_ns"`
	Job    JobInfo       `json:"job"`
	Health JobHealthInfo `json:"health"`
	// Channels mirrors the job's per-channel diagnosis counters and fusion
	// state so a replica can answer GET /jobs/{id}/channels after failover
	// (omitted by pre-fusion primaries).
	Channels *ChannelsResponse `json:"channels,omitempty"`
}

// ReplicateRequest is one asynchronous replication batch from a job's
// primary to a follower (POST /v1/cluster/replicate): the event-log entries
// past the follower's last ack, a best-effort trace-record mirror window,
// and the current snapshot. Watermark is the primary's log head so the
// follower can measure its own lag.
type ReplicateRequest struct {
	ClusterID string     `json:"cluster_id"`
	From      string     `json:"from"`
	Job       string     `json:"job"`
	Entries   []SeqEvent `json:"entries,omitempty"`
	// Trace is the mirror window: records with Time > the follower's last
	// acked trace watermark, capped per batch. The mirror is best-effort
	// (exactness lives in the event log); equal-timestamp boundary records
	// can be skipped and the window is capped by the primary's retention.
	Trace []TraceRecord `json:"trace,omitempty"`
	// TraceWatermarkNs is the max record Time in Trace (0 = none shipped).
	TraceWatermarkNs int64            `json:"trace_watermark_ns,omitempty"`
	Snapshot         *ClusterSnapshot `json:"snapshot,omitempty"`
	Watermark        uint64           `json:"watermark"`
}

// ReplicateResponse acks a batch: the follower's new event-log head and
// trace watermark, which the primary uses as the next batch's start.
type ReplicateResponse struct {
	AckSeq     uint64 `json:"ack_seq"`
	TraceAckNs int64  `json:"trace_ack_ns"`
	// Gap counts event sequence numbers the follower detected as missing
	// when applying this batch (should stay 0: batches are sent in order).
	Gap uint64 `json:"gap,omitempty"`
}

// TailRequest reads a job's event log past a sequence number
// (POST /v1/cluster/tail). It long-polls like /v1/poll: waits up to
// TimeoutMs for the log to grow past AfterSeq, then returns up to Max
// entries. It works identically on the job's primary (live log) and on a
// replica (replicated log), which is exactly what lets a subscription
// resume on another peer: the client re-issues the same request with the
// last seq it saw.
type TailRequest struct {
	Job       string `json:"job"`
	AfterSeq  uint64 `json:"after_seq"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
	Max       int    `json:"max,omitempty"`
}

// TailResponse is one tail page. Source reports which role answered
// ("primary", "replica" or "promoted"); a client counts drops from the seq
// gaps between consecutive entries (a trimmed or lagging log shows up as a
// jump), so there is no separate dropped field to trust.
type TailResponse struct {
	Job       string     `json:"job"`
	Entries   []SeqEvent `json:"entries,omitempty"`
	Watermark uint64     `json:"watermark"`
	Source    string     `json:"source"`
}

// HandoffRequest is the clean-shutdown transfer (POST /v1/cluster/handoff):
// a draining primary flushes its replication queues, then tells a follower
// it is now the authoritative answerer for the job.
type HandoffRequest struct {
	ClusterID string `json:"cluster_id"`
	From      string `json:"from"`
	Job       string `json:"job"`
	// Watermark is the primary's final event-log head; the follower can
	// compare it with its own to report how clean the handoff was.
	Watermark uint64 `json:"watermark"`
}

// HandoffResponse acks a handoff. Lag is how many log entries the follower
// was missing at handoff time (final flush should make it 0).
type HandoffResponse struct {
	Accepted bool   `json:"accepted"`
	Lag      uint64 `json:"lag"`
}
