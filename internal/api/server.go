package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Backend is the wire-level service the HTTP server fronts. The root
// package's Server adapts any mycroft.Client (an in-process Service or even
// another remote) to this interface; the server itself never touches domain
// types, only the versioned wire forms.
//
// Implementations must be safe for concurrent calls. Poll is the one method
// expected to block (up to its request's timeout); everything else should
// answer promptly so a long poll never starves queries.
type Backend interface {
	Ping() (PingResponse, error)
	ListJobs() (JobsResponse, error)
	QueryTrace(TraceRequest) (TraceResponse, error)
	QueryTriggers(TriggersRequest) (TriggersResponse, error)
	QueryReports(ReportsRequest) (ReportsResponse, error)
	QueryDependencies(DependenciesRequest) (DependenciesResponse, error)
	BlastRadius(BlastRadiusRequest) (BlastRadiusResponse, error)
	QueryRemediations(RemediationsRequest) (RemediationsResponse, error)
	Triage(TriageRequest) (TriageResponse, error)
	Subscribe(SubscribeRequest) (SubscribeResponse, error)
	Poll(PollRequest) (PollResponse, error)
	Unsubscribe(id string) error
}

// NewHandler mounts the /v1 wire protocol over a Backend:
//
//	GET    /v1/ping                     → PingResponse
//	GET    /v1/jobs                     → JobsResponse
//	POST   /v1/trace/query              → TraceResponse
//	POST   /v1/triggers/query           → TriggersResponse
//	POST   /v1/reports/query            → ReportsResponse
//	POST   /v1/dependencies/query       → DependenciesResponse
//	POST   /v1/blast-radius             → BlastRadiusResponse
//	POST   /v1/remediations/query       → RemediationsResponse
//	POST   /v1/triage                   → TriageResponse
//	POST   /v1/subscribe                → SubscribeResponse
//	POST   /v1/poll                     → PollResponse (long poll)
//	DELETE /v1/subscriptions/{id}       → 204
//	GET    /v1/subscriptions/{id}/sse   → text/event-stream
//
// Requests are JSON bodies; errors come back as ErrorResponse with a 400.
func NewHandler(b Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+Prefix+"/ping", func(w http.ResponseWriter, r *http.Request) {
		resp, err := b.Ping()
		answer(w, resp, err)
	})
	mux.HandleFunc("GET "+Prefix+"/jobs", func(w http.ResponseWriter, r *http.Request) {
		resp, err := b.ListJobs()
		answer(w, resp, err)
	})
	post(mux, "/trace/query", b.QueryTrace)
	post(mux, "/triggers/query", b.QueryTriggers)
	post(mux, "/reports/query", b.QueryReports)
	post(mux, "/dependencies/query", b.QueryDependencies)
	post(mux, "/blast-radius", b.BlastRadius)
	post(mux, "/remediations/query", b.QueryRemediations)
	post(mux, "/triage", b.Triage)
	post(mux, "/subscribe", b.Subscribe)
	post(mux, "/poll", b.Poll)
	mux.HandleFunc("DELETE "+Prefix+"/subscriptions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := b.Unsubscribe(r.PathValue("id")); err != nil {
			fail(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET "+Prefix+"/subscriptions/{id}/sse", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(b, w, r)
	})
	return mux
}

// post mounts one decode→call→encode JSON-RPC style endpoint.
func post[Req, Resp any](mux *http.ServeMux, path string, fn func(Req) (Resp, error)) {
	mux.HandleFunc("POST "+Prefix+path, func(w http.ResponseWriter, r *http.Request) {
		var req Req
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
		if err != nil {
			fail(w, fmt.Errorf("api: reading request: %w", err))
			return
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				fail(w, fmt.Errorf("api: decoding request: %w", err))
				return
			}
		}
		resp, err := fn(req)
		answer(w, resp, err)
	})
}

func answer(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func fail(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// serveSSE streams a subscription as server-sent events: each matched event
// is one `data:` frame of wire-form Event JSON; buffer overflow shows up as
// a `: dropped=N` comment and the terminal frame is `event: closed`. The
// loop long-polls the backend in short slices so a client disconnect is
// noticed within half a second.
func serveSSE(b Backend, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fl.Flush()

	id := r.PathValue("id")
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		resp, err := b.Poll(PollRequest{ID: id, TimeoutMs: 500, Max: 64})
		if err != nil {
			fmt.Fprintf(w, "event: error\ndata: %s\n\n", jsonLine(ErrorResponse{Error: err.Error()}))
			fl.Flush()
			return
		}
		for _, e := range resp.Events {
			fmt.Fprintf(w, "data: %s\n\n", jsonLine(e))
		}
		if resp.Dropped != reported {
			reported = resp.Dropped
			fmt.Fprintf(w, ": dropped=%d\n\n", reported)
		}
		if resp.Closed {
			fmt.Fprint(w, "event: closed\ndata: {}\n\n")
			fl.Flush()
			return
		}
		if len(resp.Events) == 0 {
			// Heartbeat comment: keeps intermediaries from timing the stream
			// out and surfaces a broken pipe on the next write.
			fmt.Fprint(w, ": keep-alive\n\n")
		}
		fl.Flush()
	}
}

func jsonLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{}`)
	}
	return b
}
