package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mycroft/internal/obs"
)

// Backend is the wire-level service the HTTP server fronts. The root
// package's Server adapts any mycroft.Client (an in-process Service or even
// another remote) to this interface; the server itself never touches domain
// types, only the versioned wire forms.
//
// Implementations must be safe for concurrent calls. Poll is the one method
// expected to block (up to its request's timeout); everything else should
// answer promptly so a long poll never starves queries.
type Backend interface {
	Ping() (PingResponse, error)
	Health() (HealthResponse, error)
	ListJobs() (JobsResponse, error)
	QueryTrace(TraceRequest) (TraceResponse, error)
	QueryTriggers(TriggersRequest) (TriggersResponse, error)
	QueryReports(ReportsRequest) (ReportsResponse, error)
	QueryDependencies(DependenciesRequest) (DependenciesResponse, error)
	BlastRadius(BlastRadiusRequest) (BlastRadiusResponse, error)
	QueryRemediations(RemediationsRequest) (RemediationsResponse, error)
	QuerySpans(SpansRequest) (SpansResponse, error)
	Triage(TriageRequest) (TriageResponse, error)
	Subscribe(SubscribeRequest) (SubscribeResponse, error)
	Poll(PollRequest) (PollResponse, error)
	Unsubscribe(id string) error
	// Record streams a job's incident artifact (the recorder's current
	// snapshot: a valid, possibly footer-less capture) to w. It errors when
	// the job is unknown or the daemon is not recording it.
	Record(job string, w io.Writer) error

	// Diagnosis channels: log and timing ingest feed a job's non-tracepoint
	// detectors; Channels reports per-channel counters and fusion state.
	IngestLogs(job string, req LogsRequest) (IngestChannelResponse, error)
	IngestTimings(job string, req TimingsRequest) (IngestChannelResponse, error)
	Channels(job string) (ChannelsResponse, error)

	// Cluster endpoints: peer membership, health gossip, replication and the
	// seq-resumable event tail ride the same /v1 transport queries use. A
	// standalone daemon answers every one with a "cluster disabled" error.
	// ClusterTail may block like Poll (up to its request's timeout).
	ClusterInfo() (ClusterInfoResponse, error)
	ClusterJoin(JoinRequest) (JoinResponse, error)
	ClusterGossip(GossipRequest) (GossipResponse, error)
	ClusterReplicate(ReplicateRequest) (ReplicateResponse, error)
	ClusterTail(TailRequest) (TailResponse, error)
	ClusterHandoff(HandoffRequest) (HandoffResponse, error)
}

// NewHandler mounts the /v1 wire protocol over a Backend:
//
//	GET    /v1/ping                     → PingResponse
//	GET    /v1/health                   → HealthResponse
//	GET    /v1/jobs                     → JobsResponse
//	POST   /v1/trace/query              → TraceResponse
//	POST   /v1/triggers/query           → TriggersResponse
//	POST   /v1/reports/query            → ReportsResponse
//	POST   /v1/dependencies/query       → DependenciesResponse
//	POST   /v1/blast-radius             → BlastRadiusResponse
//	POST   /v1/remediations/query       → RemediationsResponse
//	GET    /v1/jobs/{id}/spans          → SpansResponse
//	POST   /v1/jobs/{id}/logs           → IngestChannelResponse
//	POST   /v1/jobs/{id}/timings        → IngestChannelResponse
//	GET    /v1/jobs/{id}/channels       → ChannelsResponse
//	POST   /v1/triage                   → TriageResponse
//	POST   /v1/subscribe                → SubscribeResponse
//	POST   /v1/poll                     → PollResponse (long poll)
//	DELETE /v1/subscriptions/{id}       → 204
//	GET    /v1/subscriptions/{id}/sse   → text/event-stream
//	GET    /v1/cluster/info             → ClusterInfoResponse
//	POST   /v1/cluster/join             → JoinResponse
//	POST   /v1/cluster/gossip           → GossipResponse
//	POST   /v1/cluster/replicate        → ReplicateResponse
//	POST   /v1/cluster/tail             → TailResponse (long poll)
//	POST   /v1/cluster/handoff          → HandoffResponse
//
// Requests are JSON bodies; errors come back as ErrorResponse with a 400.
func NewHandler(b Backend) http.Handler { return NewInstrumentedHandler(b, nil) }

// NewInstrumentedHandler is NewHandler plus per-endpoint request counters,
// error counters and a latency histogram registered on reg (nil disables
// instrumentation). Endpoints are labeled by their route, not the raw URL,
// so subscription ids never explode the label space.
func NewInstrumentedHandler(b Backend, reg *obs.Registry) http.Handler {
	mm := &muxMetrics{reg: reg}
	mux := http.NewServeMux()
	handle := func(method, path, endpoint string, fn http.HandlerFunc) {
		mux.HandleFunc(method+" "+Prefix+path, mm.wrap(endpoint, fn))
	}
	handle("GET", "/ping", "/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		resp, err := b.Ping()
		answer(w, resp, err)
	})
	handle("GET", "/health", "/v1/health", func(w http.ResponseWriter, r *http.Request) {
		resp, err := b.Health()
		answer(w, resp, err)
	})
	handle("GET", "/jobs", "/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		resp, err := b.ListJobs()
		answer(w, resp, err)
	})
	post(handle, "/trace/query", b.QueryTrace)
	post(handle, "/triggers/query", b.QueryTriggers)
	post(handle, "/reports/query", b.QueryReports)
	post(handle, "/dependencies/query", b.QueryDependencies)
	post(handle, "/blast-radius", b.BlastRadius)
	post(handle, "/remediations/query", b.QueryRemediations)
	post(handle, "/triage", b.Triage)
	post(handle, "/subscribe", b.Subscribe)
	post(handle, "/poll", b.Poll)
	handle("GET", "/jobs/{id}/record", "/v1/jobs/{id}/record", func(w http.ResponseWriter, r *http.Request) {
		// Stage the artifact before writing: a recording error must become a
		// clean HTTP error, not a torn 200. The snapshot is bounded by the
		// recorder's current file size, and the chunked format means a
		// client can replay it even though it has no footer yet.
		var buf bytes.Buffer
		if err := b.Record(r.PathValue("id"), &buf); err != nil {
			fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
		io.Copy(w, &buf)
	})
	handle("GET", "/jobs/{id}/spans", "/v1/jobs/{id}/spans", func(w http.ResponseWriter, r *http.Request) {
		req := SpansRequest{Job: r.PathValue("id")}
		q := r.URL.Query()
		req.Incident, req.Stage = q.Get("incident"), q.Get("stage")
		var err error
		if v := q.Get("after_id"); v != "" {
			if req.AfterID, err = strconv.ParseUint(v, 10, 64); err != nil {
				fail(w, fmt.Errorf("api: bad after_id %q", v))
				return
			}
		}
		if v := q.Get("min_wall_ns"); v != "" {
			if req.MinWallNs, err = strconv.ParseInt(v, 10, 64); err != nil {
				fail(w, fmt.Errorf("api: bad min_wall_ns %q", v))
				return
			}
		}
		if v := q.Get("limit"); v != "" {
			if req.Limit, err = strconv.Atoi(v); err != nil {
				fail(w, fmt.Errorf("api: bad limit %q", v))
				return
			}
		}
		resp, err := b.QuerySpans(req)
		answer(w, resp, err)
	})
	handle("POST", "/jobs/{id}/logs", "/v1/jobs/{id}/logs", func(w http.ResponseWriter, r *http.Request) {
		var req LogsRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := b.IngestLogs(r.PathValue("id"), req)
		answer(w, resp, err)
	})
	handle("POST", "/jobs/{id}/timings", "/v1/jobs/{id}/timings", func(w http.ResponseWriter, r *http.Request) {
		var req TimingsRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := b.IngestTimings(r.PathValue("id"), req)
		answer(w, resp, err)
	})
	handle("GET", "/jobs/{id}/channels", "/v1/jobs/{id}/channels", func(w http.ResponseWriter, r *http.Request) {
		resp, err := b.Channels(r.PathValue("id"))
		answer(w, resp, err)
	})
	handle("DELETE", "/subscriptions/{id}", "/v1/subscriptions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := b.Unsubscribe(r.PathValue("id")); err != nil {
			fail(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	handle("GET", "/subscriptions/{id}/sse", "/v1/subscriptions/{id}/sse", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(b, w, r)
	})
	handle("GET", "/cluster/info", "/v1/cluster/info", func(w http.ResponseWriter, r *http.Request) {
		resp, err := b.ClusterInfo()
		answer(w, resp, err)
	})
	post(handle, "/cluster/join", b.ClusterJoin)
	post(handle, "/cluster/gossip", b.ClusterGossip)
	post(handle, "/cluster/replicate", b.ClusterReplicate)
	post(handle, "/cluster/tail", b.ClusterTail)
	post(handle, "/cluster/handoff", b.ClusterHandoff)
	return mux
}

// decodeBody reads and decodes a JSON request body, answering the error
// itself; it returns false when the caller should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		fail(w, fmt.Errorf("api: reading request: %w", err))
		return false
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, into); err != nil {
			fail(w, fmt.Errorf("api: decoding request: %w", err))
			return false
		}
	}
	return true
}

// post mounts one decode→call→encode JSON-RPC style endpoint.
func post[Req, Resp any](handle func(method, path, endpoint string, fn http.HandlerFunc), path string, fn func(Req) (Resp, error)) {
	handle("POST", path, Prefix+path, func(w http.ResponseWriter, r *http.Request) {
		var req Req
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
		if err != nil {
			fail(w, fmt.Errorf("api: reading request: %w", err))
			return
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				fail(w, fmt.Errorf("api: decoding request: %w", err))
				return
			}
		}
		resp, err := fn(req)
		answer(w, resp, err)
	})
}

// muxMetrics holds the per-endpoint HTTP instruments.
type muxMetrics struct{ reg *obs.Registry }

// wrap instruments one route: request count, wall-clock latency, and an
// error count for 4xx/5xx answers. With no registry it returns fn untouched.
func (m *muxMetrics) wrap(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	if m.reg == nil {
		return fn
	}
	el := obs.L("endpoint", endpoint)
	requests := m.reg.Counter("mycroft_http_requests_total", "HTTP requests served, by endpoint.", el)
	errors := m.reg.Counter("mycroft_http_errors_total", "HTTP requests answered 4xx/5xx, by endpoint.", el)
	latency := m.reg.Histogram("mycroft_http_request_seconds", "Wall-clock HTTP request latency in seconds.", obs.LatencyBuckets, el)
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		fn(sw, r)
		latency.Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			errors.Inc()
		}
	}
}

// statusWriter records the response code and forwards Flush so the SSE
// stream keeps working behind the instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func answer(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func fail(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// serveSSE streams a subscription as server-sent events: each matched event
// is one `data:` frame of wire-form Event JSON; buffer overflow shows up as
// a `: dropped=N` comment and the terminal frame is `event: closed`. The
// loop long-polls the backend in short slices so a client disconnect is
// noticed within half a second.
func serveSSE(b Backend, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fl.Flush()

	id := r.PathValue("id")
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		resp, err := b.Poll(PollRequest{ID: id, TimeoutMs: 500, Max: 64})
		if err != nil {
			fmt.Fprintf(w, "event: error\ndata: %s\n\n", jsonLine(ErrorResponse{Error: err.Error()}))
			fl.Flush()
			return
		}
		for _, e := range resp.Events {
			fmt.Fprintf(w, "data: %s\n\n", jsonLine(e))
		}
		if resp.Dropped != reported {
			reported = resp.Dropped
			fmt.Fprintf(w, ": dropped=%d\n\n", reported)
		}
		if resp.Closed {
			fmt.Fprint(w, "event: closed\ndata: {}\n\n")
			fl.Flush()
			return
		}
		if len(resp.Events) == 0 {
			// Heartbeat comment: keeps intermediaries from timing the stream
			// out and surfaces a broken pipe on the next write.
			fmt.Fprint(w, ": keep-alive\n\n")
		}
		fl.Flush()
	}
}

func jsonLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{}`)
	}
	return b
}
