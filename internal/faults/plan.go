package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mycroft/internal/train"
)

// Plan is a programmatic injection schedule: an ordered list of fault specs
// applied to one job. The scenario engine compiles declarative event lists
// and chaos samples into Plans; experiment code can build them directly.
type Plan []Spec

// Sorted returns a copy of the plan ordered by injection time (stable, so
// specs sharing a time keep their relative order).
func (p Plan) Sorted() Plan {
	out := append(Plan(nil), p...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Inject schedules every spec on the job's engine.
func (p Plan) Inject(j *train.Job) {
	for _, s := range p {
		Inject(j, s)
	}
}

// First returns the earliest injection time, or false for an empty plan.
func (p Plan) First() (time.Duration, bool) {
	if len(p) == 0 {
		return 0, false
	}
	min := p[0].At
	for _, s := range p[1:] {
		if s.At < min {
			min = s.At
		}
	}
	return min, true
}

func (p Plan) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// Recoverable reports whether a fault kind can be cleanly undone by Recover:
// the substrate replays queued work (NIC down, GPU hang) or the throttle is
// simply restored. Link loss is not recoverable — black-holed bytes never
// arrive, so the in-flight op stays stuck; crashes and stalls likewise have
// no undo in the substrate.
func Recoverable(k Kind) bool {
	switch k {
	case NICDown, NICDegrade, GPUHang, GPUSlow, PCIeDegrade:
		return true
	}
	return false
}

// Recover schedules the undo of a previously injected fault at s.At on the
// job's engine: the NIC comes back up (pending WRs replay), the GPU unhangs,
// or the degraded bandwidth is restored. It panics for kinds that are not
// Recoverable.
func Recover(j *train.Job, s Spec) {
	if int(s.Rank) < 0 || int(s.Rank) >= j.Cluster.WorldSize() {
		panic(fmt.Sprintf("faults: rank %d out of range", s.Rank))
	}
	if !Recoverable(s.Kind) {
		panic(fmt.Sprintf("faults: kind %q is not recoverable", s.Kind))
	}
	j.Eng.After(s.At, func() {
		switch s.Kind {
		case NICDown:
			j.NICs[s.Rank].SetDown(false)
		case NICDegrade:
			j.NICs[s.Rank].SetBandwidthScale(1)
		case GPUHang:
			j.GPUs[s.Rank].SetHang(false)
		case GPUSlow:
			j.GPUs[s.Rank].SetSlowFactor(1)
		case PCIeDegrade:
			j.GPUs[s.Rank].SetCopyBandwidthScale(1)
		}
	})
}
