// End-to-end fault-injection tests: a full simulated training job with the
// Mycroft backend attached, one fault per run, verifying Algorithm 1 fires
// and Algorithm 2 localizes the injected rank with the right category. This
// is the repository's core integration suite — it exercises every layer
// (GPU, RDMA, CCL, trace ring, collector, cloud DB, trigger, RCA) together.
package faults

import (
	"testing"
	"time"

	"mycroft/internal/collector"
	"mycroft/internal/core"
	"mycroft/internal/pystack"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// harness runs a 2×4 job with the backend attached.
type harness struct {
	eng *sim.Engine
	job *train.Job
	bk  *core.Backend
}

// newHarness builds a compute-heavy job (failure-class faults block it
// outright, so the workload mix does not matter much).
func newHarness(t *testing.T, seed int64) *harness {
	return newHarnessCfg(t, seed, 300*time.Millisecond, 256<<20)
}

// newCommHeavyHarness weights iterations toward communication so that
// degradation-class faults move the throughput/interval needles, as the
// paper's comm-bound production jobs do.
func newCommHeavyHarness(t *testing.T, seed int64) *harness {
	return newHarnessCfg(t, seed, 100*time.Millisecond, 1<<30)
}

func newHarnessCfg(t *testing.T, seed int64, compute time.Duration, dpBytes int64) *harness {
	t.Helper()
	eng := sim.NewEngine(seed)
	job := train.MustNew(eng, train.Config{
		Topo:            topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		LayersPerStage:  2,
		ComputePerLayer: compute,
		TPBytesPerLayer: 32 << 20,
		PPBytes:         16 << 20,
		DPBytes:         dpBytes,
		Collector:       collector.Config{DrainPeriod: 50 * time.Millisecond, UploadLatency: 500 * time.Millisecond},
	})
	sampled := core.SampleRanks(job.Cluster.DPGroups(), 10)
	bk := core.NewBackend(eng, job.DB, sampled, core.Config{
		Window:        5 * time.Second,
		StragglerLate: time.Second,
	})
	return &harness{eng: eng, job: job, bk: bk}
}

// run starts the job and backend, injects the fault after warmup, and runs
// until a report lands or the deadline passes.
func (h *harness) run(t *testing.T, spec Spec, deadline time.Duration) (core.Trigger, core.Report, sim.Time) {
	t.Helper()
	h.job.Start()
	h.bk.Start()
	warmup := 15 * time.Second
	spec.At = warmup
	Inject(h.job, spec)
	faultAt := sim.Time(warmup)
	h.eng.RunFor(warmup + deadline)
	trs, reps := h.bk.Triggers(), h.bk.Reports()
	if len(trs) == 0 {
		t.Fatalf("%v: no trigger within %v of injection", spec, deadline)
	}
	if len(reps) == 0 {
		t.Fatalf("%v: no report", spec)
	}
	return trs[0], reps[0], faultAt
}

func checkVerdict(t *testing.T, spec Spec, tr core.Trigger, rep core.Report, faultAt sim.Time) {
	t.Helper()
	exp := Expect(spec.Kind)
	if !exp.TriggerOK(tr.Kind) {
		t.Errorf("%v: trigger kind %v, want one of %v (reason %q)", spec, tr.Kind, exp.Triggers, tr.Reason)
	}
	if tr.At <= faultAt {
		t.Errorf("%v: trigger at %v before fault at %v", spec, tr.At, faultAt)
	}
	if exp.LocalizeRank && rep.Suspect != spec.Rank {
		t.Errorf("%v: suspect rank %d, want %d (report: %v)", spec, rep.Suspect, spec.Rank, rep)
	}
	if !exp.CategoryOK(rep.Category) {
		t.Errorf("%v: category %v, want one of %v (report: %v)", spec, rep.Category, exp.Categories, rep)
	}
	detect := tr.At.Sub(faultAt)
	if detect > 15*time.Second {
		t.Errorf("%v: detection took %v, want < 15s", spec, detect)
	}
}

func TestNICDownDetectedAndLocalized(t *testing.T) {
	h := newHarness(t, 1)
	spec := Spec{Kind: NICDown, Rank: 5}
	tr, rep, faultAt := h.run(t, spec, 30*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestLinkLossDetectedAndLocalized(t *testing.T) {
	h := newHarness(t, 2)
	spec := Spec{Kind: LinkLoss, Rank: 6}
	tr, rep, faultAt := h.run(t, spec, 30*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestGPUHangDetectedAndLocalized(t *testing.T) {
	h := newHarness(t, 3)
	spec := Spec{Kind: GPUHang, Rank: 2}
	tr, rep, faultAt := h.run(t, spec, 30*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestProxyCrashDetectedAndLocalized(t *testing.T) {
	h := newHarness(t, 4)
	spec := Spec{Kind: ProxyCrash, Rank: 3}
	tr, rep, faultAt := h.run(t, spec, 30*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestNICDegradeDetectedAndLocalized(t *testing.T) {
	h := newCommHeavyHarness(t, 5)
	spec := Spec{Kind: NICDegrade, Rank: 4, Severity: 0.01}
	tr, rep, faultAt := h.run(t, spec, 60*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestGPUSlowDetectedAndLocalized(t *testing.T) {
	h := newHarness(t, 6)
	spec := Spec{Kind: GPUSlow, Rank: 1, Severity: 6}
	tr, rep, faultAt := h.run(t, spec, 60*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestPCIeDegradeDetectedAndLocalized(t *testing.T) {
	h := newCommHeavyHarness(t, 7)
	spec := Spec{Kind: PCIeDegrade, Rank: 7, Severity: 0.001}
	tr, rep, faultAt := h.run(t, spec, 60*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestComputeHangHandsOffOutsideCCL(t *testing.T) {
	h := newHarness(t, 8)
	spec := Spec{Kind: ComputeHang, Rank: 6}
	tr, rep, faultAt := h.run(t, spec, 30*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestDataloaderStallHandsOffOutsideCCL(t *testing.T) {
	h := newHarness(t, 9)
	spec := Spec{Kind: DataloaderStall, Rank: 0}
	tr, rep, faultAt := h.run(t, spec, 30*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestCongestionDetectedAndLocalized(t *testing.T) {
	h := newCommHeavyHarness(t, 13)
	spec := Spec{Kind: Congestion, Rank: 4, Severity: 0.999}
	tr, rep, faultAt := h.run(t, spec, 60*time.Second)
	checkVerdict(t, spec, tr, rep, faultAt)
}

func TestNICFlapRecovers(t *testing.T) {
	// A transient flap shorter than the stall horizon: the job must resume
	// on its own (queued WRs replay on recovery), and iterations continue.
	eng := sim.NewEngine(14)
	job := train.MustNew(eng, train.Config{
		Topo:            topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		ComputePerLayer: 300 * time.Millisecond,
		Collector:       collector.Config{UploadLatency: 500 * time.Millisecond},
	})
	job.Start()
	Inject(job, Spec{Kind: NICFlap, Rank: 5, At: 10 * time.Second, Duration: 3 * time.Second})
	eng.RunFor(15 * time.Second)
	atRecovery := job.IterationsDone()
	eng.RunFor(20 * time.Second)
	if job.IterationsDone() <= atRecovery+2 {
		t.Fatalf("job did not resume after flap: %d then %d iterations", atRecovery, job.IterationsDone())
	}
}

func TestCheckpointStallTriagedByPyspy(t *testing.T) {
	eng := sim.NewEngine(15)
	job := train.MustNew(eng, train.Config{
		Topo:            topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		ComputePerLayer: 300 * time.Millisecond,
		CheckpointEvery: 3,
		Collector:       collector.Config{UploadLatency: 500 * time.Millisecond},
	})
	bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{})
	job.Start()
	bk.Start()
	Inject(job, Spec{Kind: CheckpointStall, Rank: 6, At: 5 * time.Second})
	eng.RunFor(60 * time.Second)
	if len(bk.Triggers()) == 0 {
		t.Fatal("checkpoint stall not detected")
	}
	// The stack sampler must show rank 6 alone in checkpoint.save.
	a := pystack.Analyze(job.PyStack.Dump())
	stuck := a.StuckInDataPath()
	if len(stuck) != 1 || stuck[0].Rank != 6 || stuck[0].Frame != pystack.FrameCheckpoint {
		t.Fatalf("py-spy outliers = %+v", stuck)
	}
}

func TestComputeJitterNoFalsePositives(t *testing.T) {
	eng := sim.NewEngine(16)
	job := train.MustNew(eng, train.Config{
		Topo:            topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		ComputePerLayer: 300 * time.Millisecond,
		ComputeJitter:   0.2, // ±20% noise on every compute phase
		Collector:       collector.Config{UploadLatency: 500 * time.Millisecond},
	})
	bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{})
	job.Start()
	bk.Start()
	eng.RunFor(120 * time.Second)
	if trs := bk.Triggers(); len(trs) != 0 {
		t.Fatalf("jittered healthy job triggered: %v", trs)
	}
}

func TestNoFaultNoTrigger(t *testing.T) {
	h := newHarness(t, 10)
	h.job.Start()
	h.bk.Start()
	h.eng.RunFor(60 * time.Second)
	if trs := h.bk.Triggers(); len(trs) != 0 {
		t.Fatalf("healthy job triggered: %v", trs)
	}
}

func TestMasterHeavyNoFalsePositive(t *testing.T) {
	// §9: the master rank legitimately does more work; the 1s straggler
	// threshold must tolerate it.
	eng := sim.NewEngine(11)
	job := train.MustNew(eng, train.Config{
		Topo:            topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		ComputePerLayer: 300 * time.Millisecond,
		MasterExtra:     400 * time.Millisecond,
		Collector:       collector.Config{UploadLatency: 500 * time.Millisecond},
	})
	bk := core.NewBackend(eng, job.DB, core.SampleRanks(job.Cluster.DPGroups(), 10), core.Config{})
	job.Start()
	bk.Start()
	eng.RunFor(60 * time.Second)
	if trs := bk.Triggers(); len(trs) != 0 {
		t.Fatalf("master-heavy job triggered: %v", trs)
	}
}

func TestSpecDefaultsAndValidation(t *testing.T) {
	s := Spec{Kind: GPUSlow}.withDefaults()
	if s.Severity != 4 {
		t.Fatalf("GPUSlow default severity = %v", s.Severity)
	}
	s = Spec{Kind: NICDegrade}.withDefaults()
	if s.Severity != 0.1 || s.Duration != 5*time.Second {
		t.Fatalf("NICDegrade defaults = %+v", s)
	}
	if (Spec{Kind: NICDown, Rank: 3}).String() == "" {
		t.Fatal("empty String")
	}
	if len(CoreSeven()) != 7 {
		t.Fatalf("CoreSeven = %d kinds", len(CoreSeven()))
	}
	if len(All()) != 13 {
		t.Fatalf("All = %d kinds", len(All()))
	}
	h := newHarness(t, 12)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range rank did not panic")
			}
		}()
		Inject(h.job, Spec{Kind: NICDown, Rank: 99})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown kind did not panic")
			}
		}()
		Inject(h.job, Spec{Kind: "bogus", Rank: 0})
		h.eng.RunFor(time.Second)
	}()
}

func TestExpectCoversAllKinds(t *testing.T) {
	for _, k := range All() {
		e := Expect(k)
		if len(e.Triggers) == 0 || len(e.Categories) == 0 {
			t.Errorf("Expect(%s) incomplete: %+v", k, e)
		}
	}
	if e := Expect("bogus"); len(e.Triggers) != 0 {
		t.Error("unknown kind has expectation")
	}
}
