package faults

import (
	"testing"
	"time"

	"mycroft/internal/collector"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

func TestPlanSortedAndFirst(t *testing.T) {
	p := Plan{
		{Kind: GPUHang, Rank: 2, At: 30 * time.Second},
		{Kind: NICDown, Rank: 5, At: 10 * time.Second},
		{Kind: GPUSlow, Rank: 1, At: 20 * time.Second},
	}
	s := p.Sorted()
	if s[0].Kind != NICDown || s[1].Kind != GPUSlow || s[2].Kind != GPUHang {
		t.Fatalf("bad order: %v", s)
	}
	if p[0].Kind != GPUHang {
		t.Fatal("Sorted mutated the receiver")
	}
	first, ok := p.First()
	if !ok || first != 10*time.Second {
		t.Fatalf("First = %v, %v", first, ok)
	}
	if _, ok := (Plan{}).First(); ok {
		t.Fatal("empty plan has a First")
	}
}

func TestRecoverableCatalog(t *testing.T) {
	want := map[Kind]bool{
		NICDown: true, NICDegrade: true, GPUHang: true, GPUSlow: true, PCIeDegrade: true,
	}
	for _, k := range All() {
		if Recoverable(k) != want[k] {
			t.Errorf("Recoverable(%v) = %v, want %v", k, Recoverable(k), want[k])
		}
	}
}

// TestPlanInjectAndRecover: a NIC dies via a plan and recovers via Recover;
// the job must stall and then resume iterating (queued WRs replay).
func TestPlanInjectAndRecover(t *testing.T) {
	eng := sim.NewEngine(21)
	job := train.MustNew(eng, train.Config{
		Topo:            topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		ComputePerLayer: 300 * time.Millisecond,
		Collector:       collector.Config{UploadLatency: 500 * time.Millisecond},
	})
	job.Start()
	Plan{{Kind: NICDown, Rank: 5, At: 10 * time.Second}}.Inject(job)
	Recover(job, Spec{Kind: NICDown, Rank: 5, At: 20 * time.Second})
	eng.RunFor(20 * time.Second)
	stalled := job.IterationsDone()
	eng.RunFor(20 * time.Second)
	if job.IterationsDone() <= stalled+2 {
		t.Fatalf("job did not resume after recovery: %d then %d iterations", stalled, job.IterationsDone())
	}
}

func TestRecoverRejectsBadSpecs(t *testing.T) {
	eng := sim.NewEngine(22)
	job := train.MustNew(eng, train.Config{
		Topo:      topo.Config{Nodes: 2, GPUsPerNode: 4, TP: 2, PP: 2, DP: 2},
		Collector: collector.Config{UploadLatency: 500 * time.Millisecond},
	})
	mustPanic := func(spec Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Recover(%v) did not panic", spec)
			}
		}()
		Recover(job, spec)
	}
	// Every kind outside the Recoverable set must be rejected — the
	// remediation loop leans on this gate, so a kind silently accepted here
	// would turn a failed mitigation into a no-op "success".
	for _, k := range All() {
		if !Recoverable(k) {
			mustPanic(Spec{Kind: k, Rank: 1})
		}
	}
	mustPanic(Spec{Kind: NICDown, Rank: 99}) // out of range
	mustPanic(Spec{Kind: NICDown, Rank: -1}) // negative rank
}
