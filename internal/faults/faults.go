// Package faults defines the fault-injection catalog used by the evaluation
// (§7.1): seven fault classes covering common hardware and software issues,
// plus the two integration faults of §6.2 (dataloader stall and
// synchronization mismatch). Each spec knows how to apply itself to a
// running train.Job and what verdict a correct diagnosis produces, so the
// experiment harness can score detection and localization.
package faults

import (
	"fmt"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/topo"
	"mycroft/internal/train"
)

// Kind enumerates the injectable faults.
type Kind string

const (
	// The seven CCL-visible classes of §7.1.
	NICDown     Kind = "nic-down"     // RNIC stops completing WRs
	NICFlap     Kind = "nic-flap"     // transient down/up
	LinkLoss    Kind = "link-loss"    // bytes leave the NIC, never arrive
	NICDegrade  Kind = "nic-degrade"  // bandwidth throttled
	GPUHang     Kind = "gpu-hang"     // copy engine stuck
	GPUSlow     Kind = "gpu-slow"     // compute straggler
	PCIeDegrade Kind = "pcie-degrade" // staging path throttled
	ProxyCrash  Kind = "proxy-crash"  // NCCL proxy thread exits
	// Congestion: external traffic floods the rank's NIC (the rank's own
	// flows slow with no local fault).
	Congestion Kind = "congestion"
	// Integration faults resolved by py-spy / Flight Recorder (§6.2).
	DataloaderStall Kind = "dataloader-stall"
	SyncMismatch    Kind = "sync-mismatch"
	ComputeHang     Kind = "compute-hang"
	CheckpointStall Kind = "checkpoint-stall"
)

// CoreSeven returns the seven CCL-layer fault classes the paper's injection
// experiments cover.
func CoreSeven() []Kind {
	return []Kind{NICDown, LinkLoss, NICDegrade, GPUHang, GPUSlow, PCIeDegrade, ProxyCrash}
}

// All returns every fault kind, including the integration faults.
func All() []Kind {
	return append(CoreSeven(), NICFlap, Congestion, DataloaderStall, SyncMismatch, ComputeHang, CheckpointStall)
}

// Spec is one concrete injection.
type Spec struct {
	Kind Kind
	Rank topo.Rank
	// At is the injection delay from Inject time (scheduled on the engine).
	At time.Duration
	// Severity parameterizes degradations: bandwidth scale for NICDegrade /
	// PCIeDegrade (default 0.1), slow factor for GPUSlow (default 4).
	Severity float64
	// Duration bounds transient faults (NICFlap; default 5 s).
	Duration time.Duration
}

func (s Spec) withDefaults() Spec {
	if s.Severity <= 0 {
		switch s.Kind {
		case GPUSlow:
			s.Severity = 4
		case Congestion:
			s.Severity = 0.9
		default:
			s.Severity = 0.1
		}
	}
	if s.Duration <= 0 {
		s.Duration = 5 * time.Second
	}
	return s
}

func (s Spec) String() string {
	return fmt.Sprintf("%s@rank%d(+%v)", s.Kind, s.Rank, s.At)
}

// Expectation describes what a correct diagnosis looks like, for scoring.
type Expectation struct {
	// Triggers acceptable for this fault. A hard network failure may fire
	// the throughput rule first (the last window before total silence) —
	// both firings mark the same suspicious time point.
	Triggers []core.TriggerKind
	// Categories acceptable for this fault (the RC table collapses some
	// physically-indistinguishable cases, e.g. NIC-down vs. link black-hole,
	// and a dying NIC classifies as degraded in its final window).
	Categories []core.Category
	// LocalizeRank: whether the suspect rank must equal the injected rank.
	LocalizeRank bool
	// CCLVisible: false for faults whose root cause is outside the CCL,
	// where Mycroft should say "not launched" and hand off (§6.2).
	CCLVisible bool
}

// TriggerOK reports whether a trigger kind satisfies the expectation.
func (e Expectation) TriggerOK(k core.TriggerKind) bool {
	for _, t := range e.Triggers {
		if t == k {
			return true
		}
	}
	return false
}

// CategoryOK reports whether a category satisfies the expectation.
func (e Expectation) CategoryOK(c core.Category) bool {
	for _, x := range e.Categories {
		if x == c {
			return true
		}
	}
	return false
}

// Expect returns the scoring expectation for a fault kind.
func Expect(k Kind) Expectation {
	both := []core.TriggerKind{core.TriggerFailure, core.TriggerStraggler}
	switch k {
	case NICDown, LinkLoss, NICFlap:
		return Expectation{Triggers: both, Categories: []core.Category{core.CatNetworkSendPath, core.CatNetworkDegrade}, LocalizeRank: true, CCLVisible: true}
	case NICDegrade, Congestion:
		return Expectation{Triggers: []core.TriggerKind{core.TriggerStraggler}, Categories: []core.Category{core.CatNetworkDegrade}, LocalizeRank: true, CCLVisible: true}
	case GPUHang:
		return Expectation{Triggers: both, Categories: []core.Category{core.CatGPUHang}, LocalizeRank: true, CCLVisible: true}
	case GPUSlow:
		return Expectation{Triggers: []core.TriggerKind{core.TriggerStraggler}, Categories: []core.Category{core.CatComputeStraggler}, LocalizeRank: true, CCLVisible: true}
	case PCIeDegrade:
		return Expectation{Triggers: []core.TriggerKind{core.TriggerStraggler}, Categories: []core.Category{core.CatPCIeDegrade, core.CatNetworkDegrade}, LocalizeRank: true, CCLVisible: true}
	case ProxyCrash:
		// A proxy that dies mid-op is classified by its silent state logs; a
		// proxy that dies between ops is indistinguishable from a rank that
		// never launched — localization is still exact and the Fig. 6 triage
		// cross-check with the Flight Recorder refines the category.
		return Expectation{Triggers: both, Categories: []core.Category{core.CatProxyCrash, core.CatNotLaunched}, LocalizeRank: true, CCLVisible: true}
	case DataloaderStall, ComputeHang, CheckpointStall:
		return Expectation{Triggers: both, Categories: []core.Category{core.CatNotLaunched}, LocalizeRank: true, CCLVisible: false}
	case SyncMismatch:
		// The skipping rank runs AHEAD of its group, so Mycroft's
		// minimum-based analysis sees only victims; the verdict comes from
		// the Flight Recorder during triage (§6.2).
		return Expectation{Triggers: both, Categories: []core.Category{core.CatUnknown, core.CatNotLaunched}, LocalizeRank: false, CCLVisible: false}
	default:
		return Expectation{}
	}
}

// Inject schedules the fault on the job's engine.
func Inject(j *train.Job, s Spec) {
	s = s.withDefaults()
	if int(s.Rank) < 0 || int(s.Rank) >= j.Cluster.WorldSize() {
		panic(fmt.Sprintf("faults: rank %d out of range", s.Rank))
	}
	apply := func() {
		switch s.Kind {
		case NICDown:
			j.NICs[s.Rank].SetDown(true)
		case NICFlap:
			j.NICs[s.Rank].FlapFor(s.Duration)
		case LinkLoss:
			j.NICs[s.Rank].SetWireLoss(true)
		case NICDegrade:
			j.NICs[s.Rank].SetBandwidthScale(s.Severity)
		case GPUHang:
			j.GPUs[s.Rank].SetHang(true)
		case GPUSlow:
			j.GPUs[s.Rank].SetSlowFactor(s.Severity)
		case PCIeDegrade:
			j.GPUs[s.Rank].SetCopyBandwidthScale(s.Severity)
		case ProxyCrash:
			j.CrashProxy(s.Rank)
		case Congestion:
			// Severity is the share of the NIC the flood occupies.
			j.StartBackgroundTraffic(s.Rank, s.Severity)
		case CheckpointStall:
			j.StallCheckpoint(s.Rank)
		case DataloaderStall:
			j.StallDataloader(s.Rank)
		case ComputeHang:
			j.StallCompute(s.Rank)
		case SyncMismatch:
			j.SkipNextDPLaunch(s.Rank)
		default:
			panic(fmt.Sprintf("faults: unknown kind %q", s.Kind))
		}
	}
	j.Eng.After(s.At, apply)
}
