package remedy

import (
	"fmt"

	"mycroft/internal/core"
	"mycroft/internal/otrace"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Applier executes one mitigation against the live job. It returns an error
// when the action cannot be carried out (no recoverable mapping for the
// category, say); the engine audits that as a failed attempt.
type Applier func(Action) error

// rankState is the engine's per-suspect-rank loop state.
type rankState struct {
	// fails counts failed attempts per rule name since the last verified
	// heal (each rule's flap-damping budget is its own).
	fails map[string]int
	// nextAllowed is the earliest time another attempt may apply (backoff).
	nextAllowed sim.Time
	// pending is the attempt awaiting verification, by audit-log index; -1
	// when none.
	pending int
	// escalated latches once a budget is exhausted: the rank belongs to a
	// human and the engine stops acting on it.
	escalated bool
}

// Engine is the closed-loop remediation driver for one job: it consumes the
// backend's verdicts, orders policy-matched actions through the Applier,
// and verifies each attempt by watching for re-detections of the same
// suspect. All scheduling rides the job's deterministic sim engine, so
// remediation replays bit-for-bit with the run.
type Engine struct {
	eng    *sim.Engine
	policy Policy
	apply  Applier
	emit   func(Attempt) // audit-log transition hook (may be nil)

	state map[topo.Rank]*rankState
	log   []Attempt

	tracer *otrace.Tracer
	// spans tracks the open apply/verify spans per audit-log index, plus the
	// incident cause active when the attempt started — so a terminal
	// transition closes exactly its own incident root, not a newer trigger's.
	spans map[int]*attemptSpans
}

// attemptSpans is the span bookkeeping for one in-flight attempt.
type attemptSpans struct {
	apply  otrace.SpanID
	verify otrace.SpanID
	cause  string
}

// SetTracer attaches (or with nil, detaches) a pipeline span tracer: each
// attempt then records a remedy-apply span (verdict→action, the backoff
// window) and a remedy-verify span (action→outcome, the quiet window), and
// a terminal outcome closes the owning incident's root span.
func (e *Engine) SetTracer(t *otrace.Tracer) { e.tracer = t }

// New builds an engine for one job. The policy must have been Validated;
// emit (optional) observes every audit-log transition — the service layer
// publishes it as an EventAction.
func New(eng *sim.Engine, p Policy, apply Applier, emit func(Attempt)) *Engine {
	if apply == nil {
		panic("remedy: nil applier")
	}
	return &Engine{eng: eng, policy: p.withDefaults(), apply: apply, emit: emit, state: make(map[topo.Rank]*rankState), spans: make(map[int]*attemptSpans)}
}

// Policy returns the effective (defaulted) policy.
func (e *Engine) Policy() Policy { return e.policy }

// Log returns a copy of the audit log, in attempt order.
func (e *Engine) Log() []Attempt { return append([]Attempt(nil), e.log...) }

func (e *Engine) rank(r topo.Rank) *rankState {
	st := e.state[r]
	if st == nil {
		st = &rankState{fails: make(map[string]int), pending: -1}
		e.state[r] = st
	}
	return st
}

func (e *Engine) transition(idx int, outcome Outcome, detail string) {
	a := &e.log[idx]
	a.Outcome = outcome
	if outcome != OutcomePending {
		a.ResolvedAt = e.eng.Now()
	}
	if detail != "" {
		a.Detail = detail
	}
	if e.emit != nil {
		e.emit(*a)
	}
	// Spans close after emit so the terminal EventAction's own fan-out span
	// still parents under the incident tree it resolves.
	if outcome != OutcomePending {
		e.closeSpans(idx, a.ResolvedAt, outcome)
	}
}

// closeSpans ends an attempt's open apply/verify spans at its resolution
// time and, when the attempt belongs to the currently active incident,
// closes the incident root — the end of the tree the trigger opened.
func (e *Engine) closeSpans(idx int, at sim.Time, outcome Outcome) {
	t := e.tracer
	if t == nil {
		return
	}
	if as := e.spans[idx]; as != nil {
		if as.apply != 0 {
			t.EndAt(as.apply, at)
		}
		if as.verify != 0 {
			t.Annotate(as.verify, "", fmt.Sprint(outcome))
			t.EndAt(as.verify, at)
		}
		if _, cause := t.Incident(); cause != "" && cause == as.cause {
			t.CloseIncident(at)
		}
		delete(e.spans, idx)
	} else if _, cause := t.Incident(); cause != "" {
		// An attempt with no spans of its own (an escalation) still ends
		// the incident it answered.
		t.CloseIncident(at)
	}
}

// ObserveTrigger feeds one Algorithm 1 firing. A trigger on a rank whose
// attempt is mid-verification is the fast failure signal: the fault came
// back before the quiet window elapsed.
func (e *Engine) ObserveTrigger(tr core.Trigger) {
	st := e.state[tr.Rank]
	if st == nil || st.pending < 0 {
		return
	}
	a := e.log[st.pending]
	if a.Outcome != OutcomePending || a.AppliedAt == 0 || tr.At <= a.AppliedAt {
		return
	}
	e.failPending(tr.Rank, fmt.Sprintf("re-triggered at %v: %s", tr.At, tr.Reason))
}

// ObserveReport feeds one Algorithm 2 verdict: the loop's input. A verdict
// re-naming a suspect under verification fails the pending attempt first,
// then (budget permitting) starts the next one.
func (e *Engine) ObserveReport(rep core.Report) {
	if rep.Suspect < 0 {
		// An un-localized verdict cannot be acted on, but a rule ordering
		// escalation must still page — the least-diagnosable faults are
		// exactly the ones a human needs to hear about.
		if rule, ok := e.policy.Match(rep); ok && rule.Action == ActEscalate {
			e.escalate(rule, rep, e.rank(rep.Suspect))
		}
		return
	}
	st := e.rank(rep.Suspect)
	if st.escalated {
		return
	}
	if st.pending >= 0 {
		a := e.log[st.pending]
		if a.AppliedAt == 0 || rep.AnalyzedAt <= a.AppliedAt {
			// The action has not applied yet (backoff) or this verdict is the
			// one that provoked it; one attempt in flight per rank.
			return
		}
		e.failPending(rep.Suspect, fmt.Sprintf("re-detected at %v as %s via %s", rep.AnalyzedAt, rep.Category, rep.Via))
	}
	rule, ok := e.policy.Match(rep)
	if !ok {
		return
	}
	if rule.Action == ActEscalate || st.fails[rule.Name] >= rule.MaxAttempts {
		e.escalate(rule, rep, st)
		return
	}
	idx := len(e.log)
	e.log = append(e.log, Attempt{
		ID: idx, Policy: e.policy.Name, Rule: rule.Name,
		Action:     Action{Kind: rule.Action, Rank: rep.Suspect, Comm: rep.CommID, Category: rep.Category},
		Try:        st.fails[rule.Name] + 1,
		ReportedAt: rep.AnalyzedAt, Outcome: OutcomePending,
	})
	st.pending = idx
	if t := e.tracer; t != nil {
		_, cause := t.Incident()
		id := t.StageAt(otrace.StageApply, rep.AnalyzedAt)
		t.Annotate(id, "", fmt.Sprintf("%s: %s rank %d (try %d)", rule.Name, rule.Action, rep.Suspect, st.fails[rule.Name]+1))
		e.spans[idx] = &attemptSpans{apply: id, cause: cause}
	}
	now := e.eng.Now()
	if st.nextAllowed > now {
		e.eng.After(st.nextAllowed.Sub(now), func() { e.applyAttempt(idx, rule) })
		return
	}
	e.applyAttempt(idx, rule)
}

// applyAttempt runs the executor and arms the verification window.
func (e *Engine) applyAttempt(idx int, rule Rule) {
	a := &e.log[idx]
	if a.Outcome != OutcomePending {
		return // resolved while waiting out the backoff
	}
	st := e.rank(a.Action.Rank)
	a.AppliedAt = e.eng.Now()
	st.nextAllowed = a.AppliedAt.Add(rule.Backoff)
	if err := e.apply(a.Action); err != nil {
		e.failPending(a.Action.Rank, fmt.Sprintf("executor rejected: %v", err))
		return
	}
	if t := e.tracer; t != nil {
		if as := e.spans[idx]; as != nil {
			t.EndAt(as.apply, a.AppliedAt)
			as.apply = 0
			as.verify = t.StageAt(otrace.StageVerify, a.AppliedAt)
		}
	}
	e.transition(idx, OutcomePending, "") // applied: publish the pending entry
	e.eng.After(rule.VerifyWindow, func() {
		if st.pending != idx || e.log[idx].Outcome != OutcomePending {
			return // already failed (and possibly superseded)
		}
		st.pending = -1
		st.fails = make(map[string]int) // a verified heal restores every budget
		e.transition(idx, OutcomeSucceeded, fmt.Sprintf("quiet for %v after action", rule.VerifyWindow))
	})
}

// failPending resolves the rank's in-flight attempt as failed and charges
// the owning rule's flap-damping budget.
func (e *Engine) failPending(r topo.Rank, detail string) {
	st := e.rank(r)
	if st.pending < 0 {
		return
	}
	idx := st.pending
	st.pending = -1
	st.fails[e.log[idx].Rule]++
	e.transition(idx, OutcomeFailed, detail)
}

// escalate records an escalation. Budget exhaustion latches the rank — the
// loop gives it up to a human and ignores further verdicts. A rule that
// orders escalation outright does NOT latch: it pages per detection (the
// backend's re-arm delay paces the reports), so a later fault on the same
// rank that an earlier rule CAN mitigate still self-heals. The executor
// sees every escalation so the job layer can page/cordon.
func (e *Engine) escalate(rule Rule, rep core.Report, st *rankState) {
	idx := len(e.log)
	act := Action{Kind: ActEscalate, Rank: rep.Suspect, Comm: rep.CommID, Category: rep.Category}
	var detail string
	if rule.Action == ActEscalate {
		detail = "rule orders escalation"
	} else {
		st.escalated = true
		detail = fmt.Sprintf("%d failed attempt(s) exhausted budget %d", st.fails[rule.Name], rule.MaxAttempts)
	}
	if err := e.apply(act); err != nil {
		detail += fmt.Sprintf("; executor: %v", err)
	}
	e.log = append(e.log, Attempt{
		ID: idx, Policy: e.policy.Name, Rule: rule.Name, Action: act, Try: st.fails[rule.Name] + 1,
		ReportedAt: rep.AnalyzedAt, AppliedAt: e.eng.Now(), Outcome: OutcomePending,
	})
	e.transition(idx, OutcomeEscalated, detail)
}
