package remedy

import (
	"fmt"
	"testing"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

func testPolicy(rules ...Rule) Policy { return Policy{Name: "test", Rules: rules} }

func report(at time.Duration, suspect topo.Rank, cat core.Category) core.Report {
	return core.Report{Suspect: suspect, CommID: 1, Category: cat, Via: core.ViaMinOp, AnalyzedAt: sim.Time(at)}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{}).Validate(); err == nil {
		t.Fatal("empty policy validated")
	}
	if err := testPolicy(Rule{Action: "reboot-universe"}).Validate(); err == nil {
		t.Fatal("unknown action validated")
	}
	if err := testPolicy(Rule{Action: ActRecoverFault, Backoff: -time.Second}).Validate(); err == nil {
		t.Fatal("negative backoff validated")
	}
	if err := testPolicy(Rule{Action: ActRecoverFault}).Validate(); err != nil {
		t.Fatalf("good policy rejected: %v", err)
	}
}

func TestRuleMatching(t *testing.T) {
	p := testPolicy(
		Rule{Name: "hangs", Categories: []core.Category{core.CatGPUHang}, Action: ActIsolateRank},
		Rule{Name: "cascades", MinChain: 2, Action: ActRebuildComm},
		Rule{Name: "rest", Action: ActRecoverFault},
	).withDefaults()
	rep := report(time.Second, 3, core.CatGPUHang)
	if r, ok := p.Match(rep); !ok || r.Name != "hangs" {
		t.Fatalf("matched %v, want hangs", r.Name)
	}
	rep = report(time.Second, 3, core.CatNetworkSendPath)
	rep.Chain = []core.Hop{{Comm: 1}, {Comm: 2}}
	if r, ok := p.Match(rep); !ok || r.Name != "cascades" {
		t.Fatalf("matched %v, want cascades (first match wins on chain shape)", r.Name)
	}
	rep.Chain = nil
	if r, ok := p.Match(rep); !ok || r.Name != "rest" {
		t.Fatalf("matched %v, want rest", r.Name)
	}
}

// TestLoopSucceeds: one verdict, the action applies, the suspect stays
// quiet, and the attempt audits as succeeded.
func TestLoopSucceeds(t *testing.T) {
	eng := sim.NewEngine(1)
	var applied []Action
	var emitted []Attempt
	e := New(eng, testPolicy(Rule{Action: ActRecoverFault, VerifyWindow: 10 * time.Second}),
		func(a Action) error { applied = append(applied, a); return nil },
		func(a Attempt) { emitted = append(emitted, a) })
	eng.RunFor(20 * time.Second)
	e.ObserveReport(report(20*time.Second, 5, core.CatNetworkSendPath))
	eng.RunFor(30 * time.Second)

	if len(applied) != 1 || applied[0].Kind != ActRecoverFault || applied[0].Rank != 5 {
		t.Fatalf("applied = %v", applied)
	}
	log := e.Log()
	if len(log) != 1 {
		t.Fatalf("log = %v", log)
	}
	a := log[0]
	if a.Outcome != OutcomeSucceeded || a.Try != 1 {
		t.Fatalf("attempt = %+v", a)
	}
	if a.AppliedAt != sim.Time(20*time.Second) || a.ResolvedAt != sim.Time(30*time.Second) {
		t.Fatalf("timing: applied %v resolved %v", a.AppliedAt, a.ResolvedAt)
	}
	// Two audit transitions published: applied (pending), then succeeded.
	if len(emitted) != 2 || emitted[0].Outcome != OutcomePending || emitted[1].Outcome != OutcomeSucceeded {
		t.Fatalf("emitted = %v", emitted)
	}
}

// TestReDetectionFailsAndBacksOff: a verdict inside the verify window fails
// the attempt; the retry honours the backoff; a third failure exhausts the
// budget and escalates — the flap-damping path end to end.
func TestReDetectionFailsAndBacksOff(t *testing.T) {
	eng := sim.NewEngine(1)
	var applied []Action
	e := New(eng, testPolicy(Rule{
		Action: ActRecoverFault, MaxAttempts: 2,
		Backoff: 8 * time.Second, VerifyWindow: 20 * time.Second,
	}), func(a Action) error { applied = append(applied, a); return nil }, nil)

	eng.RunFor(10 * time.Second)
	e.ObserveReport(report(10*time.Second, 5, core.CatNetworkSendPath)) // attempt 1 applies at 10s
	eng.RunFor(5 * time.Second)
	e.ObserveReport(report(15*time.Second, 5, core.CatNetworkSendPath)) // re-detected: fail 1, attempt 2 waits for backoff (18s)
	if got := e.Log()[0].Outcome; got != OutcomeFailed {
		t.Fatalf("attempt 1 outcome = %v", got)
	}
	eng.RunFor(10 * time.Second) // applies at 18s
	log := e.Log()
	if len(log) != 2 || log[1].AppliedAt != sim.Time(18*time.Second) {
		t.Fatalf("attempt 2 did not honour backoff: %+v", log)
	}
	e.ObserveReport(report(25*time.Second, 5, core.CatNetworkSendPath)) // fail 2 → budget exhausted
	e.ObserveReport(report(26*time.Second, 5, core.CatNetworkSendPath)) // escalates
	log = e.Log()
	if len(log) != 3 {
		t.Fatalf("log = %+v", log)
	}
	if log[1].Outcome != OutcomeFailed || log[2].Outcome != OutcomeEscalated || log[2].Action.Kind != ActEscalate {
		t.Fatalf("outcomes = %v %v", log[1].Outcome, log[2].Outcome)
	}
	// Escalated rank is latched: further verdicts are ignored.
	e.ObserveReport(report(30*time.Second, 5, core.CatNetworkSendPath))
	if len(e.Log()) != 3 {
		t.Fatal("escalated rank acted on again")
	}
	// Escalation reached the executor (for paging/cordoning).
	if last := applied[len(applied)-1]; last.Kind != ActEscalate {
		t.Fatalf("executor saw %v, want escalate", last)
	}
}

// TestTriggerFailsFast: a trigger on the suspect mid-verification fails the
// attempt without waiting for the re-analyzed verdict.
func TestTriggerFailsFast(t *testing.T) {
	eng := sim.NewEngine(1)
	e := New(eng, testPolicy(Rule{Action: ActRecoverFault, VerifyWindow: 30 * time.Second}),
		func(Action) error { return nil }, nil)
	eng.RunFor(10 * time.Second)
	e.ObserveReport(report(10*time.Second, 5, core.CatGPUHang))
	eng.RunFor(5 * time.Second)
	e.ObserveTrigger(core.Trigger{Kind: core.TriggerFailure, Rank: 5, At: sim.Time(15 * time.Second), Reason: "still silent"})
	if got := e.Log()[0].Outcome; got != OutcomeFailed {
		t.Fatalf("outcome = %v", got)
	}
	// The provoking trigger (at or before apply) must NOT fail an attempt.
	e.ObserveReport(report(15*time.Second, 7, core.CatGPUHang))
	e.ObserveTrigger(core.Trigger{Kind: core.TriggerFailure, Rank: 7, At: sim.Time(15 * time.Second)})
	if got := e.Log()[1].Outcome; got != OutcomePending {
		t.Fatalf("same-instant trigger failed the attempt: %v", got)
	}
}

// TestExecutorErrorAudits: an unactionable order (no recoverable mapping)
// audits as failed, charging the budget.
func TestExecutorErrorAudits(t *testing.T) {
	eng := sim.NewEngine(1)
	e := New(eng, testPolicy(Rule{Action: ActRecoverFault, MaxAttempts: 1}),
		func(Action) error { return fmt.Errorf("no recoverable mapping") }, nil)
	eng.RunFor(10 * time.Second)
	e.ObserveReport(report(10*time.Second, 2, core.CatProxyCrash))
	log := e.Log()
	if len(log) != 1 || log[0].Outcome != OutcomeFailed {
		t.Fatalf("log = %+v", log)
	}
	e.ObserveReport(report(12*time.Second, 2, core.CatProxyCrash))
	if log = e.Log(); len(log) != 2 || log[1].Outcome != OutcomeEscalated {
		t.Fatalf("budget-1 executor failure did not escalate: %+v", log)
	}
}

// TestEscalateRule: a rule whose action IS escalate pages immediately —
// and does NOT latch the rank, so a later fault an earlier rule can
// mitigate still self-heals, and a fresh unmatched verdict pages again.
func TestEscalateRule(t *testing.T) {
	eng := sim.NewEngine(1)
	e := New(eng, testPolicy(
		Rule{Categories: []core.Category{core.CatGPUHang}, Action: ActRecoverFault, VerifyWindow: 5 * time.Second},
		Rule{Categories: []core.Category{core.CatUnknown}, Action: ActEscalate},
	), func(Action) error { return nil }, nil)
	eng.RunFor(time.Second)
	e.ObserveReport(report(time.Second, 4, core.CatUnknown))
	log := e.Log()
	if len(log) != 1 || log[0].Outcome != OutcomeEscalated || log[0].Detail != "rule orders escalation" {
		t.Fatalf("log = %+v", log)
	}
	// The same rank is still remediable by the recover rule...
	eng.RunFor(9 * time.Second)
	e.ObserveReport(report(10*time.Second, 4, core.CatGPUHang))
	eng.RunFor(10 * time.Second)
	log = e.Log()
	if len(log) != 2 || log[1].Outcome != OutcomeSucceeded {
		t.Fatalf("escalate rule latched the rank: %+v", log)
	}
	// ...and a fresh unmatched verdict pages again.
	e.ObserveReport(report(20*time.Second, 4, core.CatUnknown))
	if log = e.Log(); len(log) != 3 || log[2].Outcome != OutcomeEscalated {
		t.Fatalf("repeat detection did not page: %+v", log)
	}
}

// TestSuspectlessReportPages: an un-localized verdict (Suspect -1) cannot
// be acted on, but a rule ordering escalation must still page — and rules
// ordering real actions must not fire for it.
func TestSuspectlessReportPages(t *testing.T) {
	eng := sim.NewEngine(1)
	var applied []Action
	e := New(eng, testPolicy(
		Rule{Categories: []core.Category{core.CatGPUHang}, Action: ActRecoverFault},
		Rule{Action: ActEscalate},
	), func(a Action) error { applied = append(applied, a); return nil }, nil)
	e.ObserveReport(report(time.Second, -1, core.CatUnknown))
	log := e.Log()
	if len(log) != 1 || log[0].Outcome != OutcomeEscalated || log[0].Action.Rank != -1 {
		t.Fatalf("suspectless verdict did not page: %+v", log)
	}
	// A verdict matching an actionable rule stays unactionable without a
	// target: no attempt, no executor call.
	applied = nil
	e.ObserveReport(report(2*time.Second, -1, core.CatGPUHang))
	if len(e.Log()) != 1 || len(applied) != 0 {
		t.Fatalf("actionable rule fired without a suspect: %+v, applied %v", e.Log(), applied)
	}
}

// TestBudgetIsPerRule: one rule's failures must not consume another rule's
// budget on the same rank.
func TestBudgetIsPerRule(t *testing.T) {
	eng := sim.NewEngine(1)
	e := New(eng, testPolicy(
		Rule{Name: "recover", Categories: []core.Category{core.CatNetworkSendPath}, Action: ActRecoverFault,
			MaxAttempts: 3, Backoff: time.Second, VerifyWindow: 5 * time.Second},
		Rule{Name: "isolate", Categories: []core.Category{core.CatComputeStraggler}, Action: ActIsolateRank,
			MaxAttempts: 2, Backoff: time.Second, VerifyWindow: 5 * time.Second},
	), func(Action) error { return nil }, nil)
	eng.RunFor(10 * time.Second)
	e.ObserveReport(report(10*time.Second, 5, core.CatNetworkSendPath))
	eng.RunFor(2 * time.Second)
	e.ObserveReport(report(12*time.Second, 5, core.CatNetworkSendPath)) // recover fail 1
	eng.RunFor(2 * time.Second)
	e.ObserveReport(report(14*time.Second, 5, core.CatNetworkSendPath)) // recover fail 2
	eng.RunFor(2 * time.Second)
	// Two recover failures charged; the isolate rule's own budget (2) is
	// untouched, so a straggler verdict must attempt, not escalate.
	e.ObserveReport(report(16*time.Second, 5, core.CatComputeStraggler))
	log := e.Log()
	last := log[len(log)-1]
	if last.Action.Kind != ActIsolateRank || last.Try != 1 {
		t.Fatalf("isolate rule inherited another rule's failures: %+v", last)
	}
}

// TestSuccessRestoresBudget: a verified heal resets the per-rank failure
// count, so a later independent fault gets the full retry budget.
func TestSuccessRestoresBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	e := New(eng, testPolicy(Rule{Action: ActRecoverFault, MaxAttempts: 2, Backoff: time.Second, VerifyWindow: 5 * time.Second}),
		func(Action) error { return nil }, nil)
	eng.RunFor(10 * time.Second)
	e.ObserveReport(report(10*time.Second, 5, core.CatNetworkSendPath))
	eng.RunFor(2 * time.Second)
	e.ObserveReport(report(12*time.Second, 5, core.CatNetworkSendPath)) // fail 1; retry applies at 13s (backoff)
	eng.RunFor(20 * time.Second)                                        // retry verifies quiet by 18s
	log := e.Log()
	if len(log) != 2 || log[1].Outcome != OutcomeSucceeded {
		t.Fatalf("log = %+v", log)
	}
	// A fresh fault months later must attempt again, not escalate.
	e.ObserveReport(report(32*time.Second, 5, core.CatNetworkSendPath))
	if log = e.Log(); len(log) != 3 || log[2].Outcome != OutcomePending || log[2].Try != 1 {
		t.Fatalf("budget not restored: %+v", log)
	}
}
