// Package remedy closes the loop the paper's production deployment closes:
// Mycroft's diagnoses feed the fault-tolerance machinery so jobs recover
// without a human in the loop. A Policy maps RCA verdicts (category, via,
// chain shape) to mitigation Actions; the Engine executes matched actions
// against the live job with per-rank backoff and flap-damping, then a
// verification pass watches for a quiet window — no re-detection of the same
// suspect — before marking the attempt succeeded. Every attempt lands in a
// queryable audit log, so "did the mitigation actually work?" is a first-
// class question, not a log-grep.
package remedy

import (
	"fmt"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// ActionKind enumerates the mitigations a policy can order.
type ActionKind string

const (
	// ActRecoverFault undoes the diagnosed fault in place: the NIC is reset,
	// the throttle lifted, the hung GPU recovered (faults.Recover semantics,
	// keyed by the verdict's category).
	ActRecoverFault ActionKind = "recover-fault"
	// ActIsolateRank cordons the suspect: its hardware is replaced wholesale
	// (every NIC/GPU knob reset) and the rank is marked isolated for the
	// operator.
	ActIsolateRank ActionKind = "isolate-rank"
	// ActRebuildComm tears down and rebuilds the implicated communicator:
	// every member rank's transport state is reset.
	ActRebuildComm ActionKind = "rebuild-communicator"
	// ActRestartJob is the big hammer: every rank's substrate is reset, as a
	// checkpoint-restore restart would.
	ActRestartJob ActionKind = "restart-job"
	// ActEscalate pages a human instead of acting. It is also what any rule
	// degrades to once its attempt budget for a rank is exhausted.
	ActEscalate ActionKind = "escalate"
)

// KnownAction reports whether k is in the action catalog.
func KnownAction(k ActionKind) bool {
	switch k {
	case ActRecoverFault, ActIsolateRank, ActRebuildComm, ActRestartJob, ActEscalate:
		return true
	}
	return false
}

// Action is one concrete mitigation order handed to the executor: what to
// do, to whom, and the verdict context it was derived from.
type Action struct {
	Kind     ActionKind
	Rank     topo.Rank
	Comm     uint64
	Category core.Category
}

func (a Action) String() string {
	return fmt.Sprintf("%s rank %d (comm %d, %s)", a.Kind, a.Rank, a.Comm, a.Category)
}

// Rule is one policy entry: match conditions over a Report, the action to
// take, and the retry/verification budget. Zero-valued conditions match
// everything; set conditions are ANDed.
type Rule struct {
	// Name labels the rule in the audit log. Defaults to the action kind.
	Name string
	// Categories restricts to verdicts with one of these categories.
	Categories []core.Category
	// Vias restricts to verdicts reached by one of these analysis paths.
	Vias []core.Via
	// MinChain restricts to verdicts whose causal chain has at least this
	// many hops (cross-communicator cascades).
	MinChain int
	// Action is the mitigation to order.
	Action ActionKind
	// MaxAttempts is this rule's failed-attempt budget per rank before it
	// escalates instead (flap damping); a verified heal restores it. Each
	// rule's budget is its own — another rule's failures do not consume it.
	// Default 2.
	MaxAttempts int
	// Backoff is the minimum gap between attempts on the same rank.
	// Default 10 s.
	Backoff time.Duration
	// VerifyWindow is how long after the action the suspect must stay quiet
	// (no re-detection) before the attempt counts as succeeded. It must
	// outlast the backend's re-arm delay or a persisting fault cannot be
	// observed re-triggering. Default 35 s.
	VerifyWindow time.Duration
}

func (r Rule) withDefaults() Rule {
	if r.Name == "" {
		r.Name = string(r.Action)
	}
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 2
	}
	if r.Backoff <= 0 {
		r.Backoff = 10 * time.Second
	}
	if r.VerifyWindow <= 0 {
		r.VerifyWindow = 35 * time.Second
	}
	return r
}

// matches reports whether the rule applies to a verdict.
func (r Rule) matches(rep core.Report) bool {
	if len(r.Categories) > 0 {
		ok := false
		for _, c := range r.Categories {
			if rep.Category == c {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(r.Vias) > 0 {
		ok := false
		for _, v := range r.Vias {
			if rep.Via == v {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return len(rep.Chain) >= r.MinChain
}

// Policy is an ordered rule list; the first matching rule wins.
type Policy struct {
	// Name labels the policy in the audit log. Default "default".
	Name  string
	Rules []Rule
}

// Validate rejects structurally broken policies before they are attached.
func (p Policy) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("remedy: policy %q has no rules", p.Name)
	}
	for i, r := range p.Rules {
		if !KnownAction(r.Action) {
			return fmt.Errorf("remedy: policy %q rule %d: unknown action %q", p.Name, i, r.Action)
		}
		if r.MaxAttempts < 0 || r.Backoff < 0 || r.VerifyWindow < 0 || r.MinChain < 0 {
			return fmt.Errorf("remedy: policy %q rule %d: negative budget", p.Name, i)
		}
	}
	return nil
}

func (p Policy) withDefaults() Policy {
	if p.Name == "" {
		p.Name = "default"
	}
	rules := make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = r.withDefaults()
	}
	p.Rules = rules
	return p
}

// Match returns the first rule applying to the verdict. The remediation
// engine uses it to pick live actions; what-if replay uses it to compute the
// shadow actions an alternative policy would have ordered.
func (p Policy) Match(rep core.Report) (Rule, bool) {
	for _, r := range p.Rules {
		if r.matches(rep) {
			return r, true
		}
	}
	return Rule{}, false
}

// Outcome is the audited fate of one remediation attempt.
type Outcome string

const (
	// OutcomePending: the action was ordered; verification has not concluded.
	OutcomePending Outcome = "pending"
	// OutcomeSucceeded: the suspect stayed quiet for the full verify window.
	OutcomeSucceeded Outcome = "succeeded"
	// OutcomeFailed: the suspect was re-detected inside the verify window, or
	// the executor rejected the action.
	OutcomeFailed Outcome = "failed"
	// OutcomeEscalated: the per-rank attempt budget was exhausted (or the
	// rule orders escalation directly); a human owns the fault now.
	OutcomeEscalated Outcome = "escalated"
)

// KnownOutcome reports whether o is a valid audit-log outcome.
func KnownOutcome(o Outcome) bool {
	switch o {
	case OutcomePending, OutcomeSucceeded, OutcomeFailed, OutcomeEscalated:
		return true
	}
	return false
}

// Attempt is one audit-log entry: a single detect→act→verify cycle.
type Attempt struct {
	// ID numbers attempts per engine, in creation order.
	ID int
	// Policy and Rule name what matched.
	Policy string
	Rule   string
	// Action is the mitigation that was ordered.
	Action Action
	// Try is the 1-based attempt number for this rank under this rule.
	Try int
	// ReportedAt is when the verdict that provoked the attempt was analyzed.
	ReportedAt sim.Time
	// AppliedAt is when the executor ran the action (>= ReportedAt under
	// backoff). Escalations stamp it too: the page itself is the action.
	AppliedAt sim.Time
	// ResolvedAt is when the outcome left pending: the quiet window elapsed,
	// the suspect was re-detected, or the escalation was recorded.
	ResolvedAt sim.Time
	// Outcome is the attempt's current fate.
	Outcome Outcome
	// Detail is a human-readable note (re-detection reason, executor error).
	Detail string
}

func (a Attempt) String() string {
	s := fmt.Sprintf("[%v] remedy #%d %s/%s try %d: %s — %s", a.ReportedAt, a.ID, a.Policy, a.Rule, a.Try, a.Action, a.Outcome)
	if a.Detail != "" {
		s += " (" + a.Detail + ")"
	}
	return s
}
