// Package obs is Mycroft's dependency-free metrics layer: counters, gauges
// and fixed-bucket histograms collected in a Registry and exposed in
// Prometheus text format (exposition format version 0.0.4).
//
// The hot-path instruments (Counter.Add, Gauge.Set, Histogram.Observe) are
// single atomic operations — no locks, no allocation — so the ingest and
// dispatch paths can be instrumented without moving the M-benchmarks.
// Registration is mutex-guarded and idempotent: asking for the same
// (name, labels) series twice returns the same instrument, so wiring code
// never has to thread instrument pointers around. GaugeFunc registers a
// scrape-time callback for values that are cheaper to read than to track
// (store occupancy, live subscription counts); callers are responsible for
// making those callbacks safe at scrape time (the daemon scrapes under the
// same mutex that serializes the engine).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The zero value is usable.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is usable.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets. Observe is
// lock-free: a binary search over the bounds plus three atomic updates.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
	ex     atomic.Pointer[exemplar]
}

// exemplar is the worst exemplared observation so far: its value and the
// caller-supplied reference (a pipeline span ID).
type exemplar struct {
	value float64
	ref   uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the `le` bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records v and, when v is the largest exemplared
// observation the series has seen, remembers ref (a span ID from
// internal/otrace) as the series' exemplar. The exemplar renders on the
// matching bucket line in OpenMetrics style, so a scrape links the worst
// bucket hit back to the concrete pipeline span that caused it. Observe's
// hot path is untouched; the CAS here allocates only on a new maximum.
func (h *Histogram) ObserveExemplar(v float64, ref uint64) {
	h.Observe(v)
	if ref == 0 {
		return
	}
	for {
		old := h.ex.Load()
		if old != nil && old.value >= v {
			return
		}
		if h.ex.CompareAndSwap(old, &exemplar{value: v, ref: ref}) {
			return
		}
	}
}

// Exemplar returns the worst exemplared observation and its span reference
// (ok false when no exemplared observation has been recorded).
func (h *Histogram) Exemplar() (value float64, ref uint64, ok bool) {
	e := h.ex.Load()
	if e == nil {
		return 0, 0, false
	}
	return e.value, e.ref, true
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is the default bucket layout for wall-clock latencies in
// seconds: 1µs to 10s, decade steps with a midpoint.
var LatencyBuckets = []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1, 10}

// DurationBuckets is the default layout for virtual-time durations in
// seconds (remediation verify windows and the like).
var DurationBuckets = []float64{0.1, 0.5, 1, 2, 5, 10, 15, 30, 60, 120, 300}

// DepthBuckets is the default layout for small integral sizes (causal-chain
// depth).
var DepthBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 16}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	lstr   string // rendered label set, the within-family sort key

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds registered metrics and renders them for scraping. The zero
// value is not usable; call New.
type Registry struct {
	mu     sync.Mutex
	series map[string]*metric // name + label set → series
	family map[string]metricKind
	order  []*metric
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{series: make(map[string]*metric), family: make(map[string]metricKind)}
}

// Counter returns the counter series for (name, labels), registering it on
// first use. Help is recorded from the first registration of the family.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels)
	return m.counter
}

// Gauge returns the gauge series for (name, labels), registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels)
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time.
// Re-registering the same series replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, kindGaugeFunc, labels)
	m.gaugeFn = fn
}

// Histogram returns the histogram series for (name, labels) with the given
// bucket upper bounds (ascending; +Inf is implicit), registering it on first
// use. Bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.registerWith(name, help, kindHistogram, labels, func(m *metric) {
		m.hist = newHistogram(bounds)
	})
	return m.hist
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label) *metric {
	return r.registerWith(name, help, kind, labels, func(m *metric) {
		switch kind {
		case kindCounter:
			m.counter = &Counter{}
		case kindGauge:
			m.gauge = &Gauge{}
		}
	})
}

func (r *Registry) registerWith(name, help string, kind metricKind, labels []Label, init func(*metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) || l.Key == "le" {
			panic(fmt.Sprintf("obs: invalid label key %q on %s", l.Key, name))
		}
	}
	lstr := labelString(labels, "", "")
	key := name + lstr
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.family[name]; ok {
		if have != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind.promType(), have.promType()))
		}
	} else {
		r.family[name] = kind
	}
	if m, ok := r.series[key]; ok {
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...), lstr: lstr}
	init(m)
	r.series[key] = m
	r.order = append(r.order, m)
	return m
}

// WritePrometheus renders every registered series in Prometheus text format:
// families sorted by name with one HELP/TYPE header each, series sorted by
// label set within a family. GaugeFunc callbacks run on the calling
// goroutine, so a caller that registered engine-reading callbacks must hold
// whatever serializes the engine.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].lstr < ms[j].lstr
	})
	var b strings.Builder
	prev := ""
	for _, m := range ms {
		if m.name != prev {
			prev = m.name
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind.promType())
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.lstr, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.lstr, m.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s%s %s\n", m.name, m.lstr, formatFloat(m.gaugeFn()))
		case kindHistogram:
			// The exemplar (worst exemplared observation + its span ID)
			// renders OpenMetrics-style on the one bucket line it fell into.
			exBucket := -1
			var exSuffix string
			if v, ref, ok := m.hist.Exemplar(); ok {
				exBucket = sort.SearchFloat64s(m.hist.bounds, v)
				exSuffix = fmt.Sprintf(" # {span_id=\"%d\"} %s", ref, formatFloat(v))
			}
			var cum uint64
			for i, bound := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				suffix := ""
				if i == exBucket {
					suffix = exSuffix
				}
				fmt.Fprintf(&b, "%s_bucket%s %d%s\n", m.name, labelString(m.labels, "le", formatFloat(bound)), cum, suffix)
			}
			cum += m.hist.counts[len(m.hist.bounds)].Load()
			suffix := ""
			if exBucket == len(m.hist.bounds) {
				suffix = exSuffix
			}
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n", m.name, labelString(m.labels, "le", "+Inf"), cum, suffix)
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.lstr, formatFloat(m.hist.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.lstr, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}, with an optional extra pair appended
// (the histogram `le` label). Empty sets render as "".
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeValue(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(s)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
