package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "help", L("job", "a"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Re-registering the same series returns the same instrument.
	if again := r.Counter("test_total", "help", L("job", "a")); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// A different label set is a different series.
	if other := r.Counter("test_total", "help", L("job", "b")); other == c {
		t.Fatal("distinct label sets share a counter")
	}

	g := r.Gauge("test_gauge", "help")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 102.65 {
		t.Fatalf("sum = %v, want 102.65", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`, // le is inclusive: 0.05 and 0.1
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 102.65`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusOrderingAndEscaping(t *testing.T) {
	r := New()
	r.Counter("zzz_total", "last family").Inc()
	r.Counter("aaa_total", "first family", L("job", "b")).Add(2)
	r.Counter("aaa_total", "first family", L("job", "a")).Inc()
	r.GaugeFunc("mid_gauge", "computed", func() float64 { return 2.5 }, L("path", `a"b\c`))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Families sorted by name, series by label set, one header per family.
	wantOrder := []string{
		"# HELP aaa_total first family",
		"# TYPE aaa_total counter",
		`aaa_total{job="a"} 1`,
		`aaa_total{job="b"} 2`,
		"# TYPE mid_gauge gauge",
		`mid_gauge{path="a\"b\\c"} 2.5`,
		"# TYPE zzz_total counter",
		"zzz_total 1",
	}
	pos := -1
	for _, want := range wantOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
		if i < pos {
			t.Fatalf("%q out of order:\n%s", want, out)
		}
		pos = i
	}
	if strings.Count(out, "# TYPE aaa_total") != 1 {
		t.Fatalf("family header emitted more than once:\n%s", out)
	}
}

func TestFamilyKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("dual_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("dual_total", "help")
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c := r.Counter("conc_total", "help")
	h := r.Histogram("conc_seconds", "help", LatencyBuckets)
	g := r.Gauge("conc_gauge", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter %d gauge %d hist %d", c.Value(), g.Value(), h.Count())
	}
}
