package clouddb

import (
	"testing"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// fill ingests n records per rank at 100ns spacing starting at t=100
// (queries are (from, to], so t=0 records would fall outside a from=0
// window), alternating kinds, comm = rank%2 + 1.
func fill(db *DB, ranks, n int) {
	for i := 0; i < n; i++ {
		var batch []trace.Record
		for r := 0; r < ranks; r++ {
			kind := trace.KindState
			if i%4 == 3 {
				kind = trace.KindCompletion
			}
			batch = append(batch, trace.Record{
				Kind: kind, Time: sim.Time((i + 1) * 100), Rank: topo.Rank(r),
				CommID: uint64(r%2 + 1), IP: topo.IP("10.0.0.1"),
			})
		}
		db.Ingest(batch)
	}
}

func TestQueryPredicates(t *testing.T) {
	db := New(sim.NewEngine(1), 0)
	fill(db, 4, 20)

	// All records, no predicates, unbounded To.
	if got := db.Query(Query{}); len(got.Records) != 80 || got.Next != nil {
		t.Fatalf("unfiltered query: %d records, next=%v", len(got.Records), got.Next)
	}
	// Rank predicate, ordered by (rank, time).
	got := db.Query(Query{Ranks: []topo.Rank{2, 1}})
	if len(got.Records) != 40 {
		t.Fatalf("rank query: %d records", len(got.Records))
	}
	if got.Records[0].Rank != 1 || got.Records[39].Rank != 2 {
		t.Fatalf("rank order wrong: first %d last %d", got.Records[0].Rank, got.Records[39].Rank)
	}
	// Comm predicate implies the member ranks (1 and 3 produce comm 2).
	got = db.Query(Query{Comm: 2})
	if len(got.Records) != 40 {
		t.Fatalf("comm query: %d records", len(got.Records))
	}
	for _, r := range got.Records {
		if r.CommID != 2 {
			t.Fatalf("comm leak: %+v", r)
		}
	}
	// Kind + window: completions land at times 400, 800, 1200, ...; the
	// (300, 1100] window keeps 400 and 800.
	got = db.Query(Query{Kinds: []trace.Kind{trace.KindCompletion}, From: 300, To: 1100})
	if len(got.Records) != 8 { // 2 times × 4 ranks
		t.Fatalf("kind+window query: %d records", len(got.Records))
	}
}

func TestQueryPagination(t *testing.T) {
	db := New(sim.NewEngine(1), 0)
	fill(db, 4, 20)

	var pages int
	var all []trace.Record
	q := Query{Limit: 7}
	for {
		res := db.Query(q)
		pages++
		all = append(all, res.Records...)
		if res.Next == nil {
			break
		}
		if len(res.Records) != 7 {
			t.Fatalf("page %d has %d records with a next cursor", pages, len(res.Records))
		}
		q.Cursor = res.Next
	}
	if len(all) != 80 {
		t.Fatalf("pagination returned %d records, want 80", len(all))
	}
	if pages != 12 { // ceil(80/7) = 12
		t.Fatalf("pagination took %d pages, want 12", pages)
	}
	// Paged result must equal the unpaged result exactly.
	whole := db.Query(Query{})
	for i := range whole.Records {
		if all[i] != whole.Records[i] {
			t.Fatalf("page stitching diverges at %d: %+v vs %+v", i, all[i], whole.Records[i])
		}
	}
}

// TestQueryPaginationEqualTimes: several records at one (rank, time) — the
// cursor's Emitted field must disambiguate them.
func TestQueryPaginationEqualTimes(t *testing.T) {
	db := New(sim.NewEngine(1), 0)
	var batch []trace.Record
	for ch := int32(0); ch < 5; ch++ {
		batch = append(batch, trace.Record{
			Kind: trace.KindState, Time: 100, Rank: 3, CommID: 1, Channel: ch, IP: "10.0.0.1",
		})
	}
	db.Ingest(batch)
	var all []trace.Record
	q := Query{Limit: 2}
	for {
		res := db.Query(q)
		all = append(all, res.Records...)
		if res.Next == nil {
			break
		}
		q.Cursor = res.Next
	}
	if len(all) != 5 {
		t.Fatalf("equal-time pagination returned %d records, want 5", len(all))
	}
	for i := range all {
		if all[i].Channel != int32(i) {
			t.Fatalf("record %d is channel %d (duplicate or skip)", i, all[i].Channel)
		}
	}
}

// TestQueryTotal: the first page of a paginated query reports the full
// match count (so a caller can always tell a short page from the last
// page), resumed full pages skip the re-count (-1), and the resumed final
// page reports its exact remainder.
func TestQueryTotal(t *testing.T) {
	db := New(sim.NewEngine(1), 0)
	fill(db, 4, 20) // 80 records

	if got := db.Query(Query{}); got.Total != 80 {
		t.Fatalf("unpaginated Total = %d, want 80", got.Total)
	}
	q := Query{Limit: 7}
	remaining := 80
	for {
		res := db.Query(q)
		switch {
		case q.Cursor == nil && res.Total != 80:
			t.Fatalf("first page Total = %d, want 80", res.Total)
		case q.Cursor != nil && res.Next != nil && res.Total != -1:
			t.Fatalf("resumed full page Total = %d, want -1 (no re-scan)", res.Total)
		case q.Cursor != nil && res.Next == nil && res.Total != remaining:
			t.Fatalf("final page Total = %d, want %d", res.Total, remaining)
		}
		remaining -= len(res.Records)
		if res.Next == nil {
			break
		}
		q.Cursor = res.Next
	}
	if remaining != 0 {
		t.Fatalf("pages summed to %d short of Total", remaining)
	}
	// A page whose Limit lands exactly on the final match is the last page:
	// no Next, and Total equals the page length.
	res := db.Query(Query{Ranks: []topo.Rank{3}, Limit: 20})
	if len(res.Records) != 20 || res.Total != 20 || res.Next != nil {
		t.Fatalf("exact-limit final page: %d records, Total %d, Next %v", len(res.Records), res.Total, res.Next)
	}
}

// TestQueryPaginationShardBoundary: with one rank per shard, a page that
// fills exactly at the end of one rank's series must resume cleanly into
// the next rank — which lives in a different shard — and Total must stay
// consistent across the boundary.
func TestQueryPaginationShardBoundary(t *testing.T) {
	db := NewSharded(sim.NewEngine(1), 0, 4)
	fill(db, 8, 5) // ranks 0..7 → shards 0..3 twice over; 5 records each

	// Limit 5 = exactly rank 0's series; the cursor crosses into rank 1
	// (shard 1).
	res := db.Query(Query{Limit: 5})
	if len(res.Records) != 5 || res.Total != 40 {
		t.Fatalf("first page: %d records, Total %d; want 5, 40", len(res.Records), res.Total)
	}
	if res.Next == nil {
		t.Fatal("first page of 40 matches reported no Next")
	}
	res2 := db.Query(Query{Limit: 5, Cursor: res.Next})
	if len(res2.Records) != 5 || res2.Total != -1 {
		t.Fatalf("second page: %d records, Total %d; want 5, -1", len(res2.Records), res2.Total)
	}
	for _, r := range res2.Records {
		if r.Rank != 1 {
			t.Fatalf("second page leaked rank %d across the shard boundary", r.Rank)
		}
	}
	// Walk the rest; the stitched stream must match the unpaged one.
	all := append(append([]trace.Record(nil), res.Records...), res2.Records...)
	q := Query{Limit: 5, Cursor: res2.Next}
	for q.Cursor != nil {
		r := db.Query(q)
		all = append(all, r.Records...)
		q.Cursor = r.Next
	}
	whole := db.Query(Query{})
	if len(all) != len(whole.Records) {
		t.Fatalf("stitched %d records, want %d", len(all), len(whole.Records))
	}
	for i := range whole.Records {
		if all[i] != whole.Records[i] {
			t.Fatalf("stitched stream diverges at %d", i)
		}
	}
}

func TestQueryMatchesQueryRank(t *testing.T) {
	db := New(sim.NewEngine(1), 0)
	fill(db, 4, 20)
	want := db.QueryRank(2, 300, 1500)
	got := db.Query(Query{Ranks: []topo.Rank{2}, From: 300, To: 1500})
	if len(got.Records) != len(want) {
		t.Fatalf("Query %d vs QueryRank %d", len(got.Records), len(want))
	}
	for i := range want {
		if got.Records[i] != want[i] {
			t.Fatalf("diverges at %d", i)
		}
	}
}
