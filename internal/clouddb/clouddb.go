// Package clouddb is the in-memory stand-in for Mycroft's cloud trace
// database (§6.1): the caching layer the always-on backend queries. It
// indexes records by rank and by communicator, supports the time-window
// queries Algorithms 1 and 2 issue, enforces a retention horizon (the
// production system keeps one day), and accounts ingested volume so the
// data-volume experiment (E6) can extrapolate to cluster scale.
package clouddb

import (
	"fmt"
	"sort"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// DB stores trace records ordered by emission time per rank.
type DB struct {
	eng       *sim.Engine
	retention time.Duration

	byRank    map[topo.Rank][]trace.Record
	commRanks map[uint64]map[topo.Rank]bool
	rankIP    map[topo.Rank]topo.IP
	ipRanks   map[topo.IP][]topo.Rank

	ingested      uint64 // records
	bytesIngested uint64
	pruned        uint64
}

// New creates a DB with the given retention horizon (0 = keep forever).
func New(eng *sim.Engine, retention time.Duration) *DB {
	if retention < 0 {
		panic(fmt.Sprintf("clouddb: negative retention %v", retention))
	}
	return &DB{
		eng:       eng,
		retention: retention,
		byRank:    make(map[topo.Rank][]trace.Record),
		commRanks: make(map[uint64]map[topo.Rank]bool),
		rankIP:    make(map[topo.Rank]topo.IP),
		ipRanks:   make(map[topo.IP][]topo.Rank),
	}
}

// Ingest appends a batch. Records for one rank must arrive in emission
// order, which the per-host agent guarantees (it drains an ordered ring).
func (db *DB) Ingest(batch []trace.Record) {
	for _, r := range batch {
		rs := db.byRank[r.Rank]
		if n := len(rs); n > 0 && rs[n-1].Time > r.Time {
			panic(fmt.Sprintf("clouddb: out-of-order ingest for rank %d: %v after %v", r.Rank, r.Time, rs[n-1].Time))
		}
		db.byRank[r.Rank] = append(rs, r)
		if _, seen := db.rankIP[r.Rank]; !seen {
			db.rankIP[r.Rank] = r.IP
			db.ipRanks[r.IP] = append(db.ipRanks[r.IP], r.Rank)
		}
		cr := db.commRanks[r.CommID]
		if cr == nil {
			cr = make(map[topo.Rank]bool)
			db.commRanks[r.CommID] = cr
		}
		cr[r.Rank] = true
		db.ingested++
		db.bytesIngested += trace.WireSize
	}
	db.prune()
}

// prune drops records older than the retention horizon.
func (db *DB) prune() {
	if db.retention == 0 {
		return
	}
	cut := db.eng.Now().Add(-db.retention)
	if cut <= 0 {
		return
	}
	for rank, rs := range db.byRank {
		i := sort.Search(len(rs), func(i int) bool { return rs[i].Time >= cut })
		if i > 0 {
			db.pruned += uint64(i)
			db.byRank[rank] = rs[i:]
		}
	}
}

// Ingested returns how many records have been stored.
func (db *DB) Ingested() uint64 { return db.ingested }

// BytesIngested returns the stored volume in encoded bytes.
func (db *DB) BytesIngested() uint64 { return db.bytesIngested }

// Pruned returns how many records retention dropped.
func (db *DB) Pruned() uint64 { return db.pruned }

// Ranks returns every rank that has ever produced a record.
func (db *DB) Ranks() []topo.Rank {
	out := make([]topo.Rank, 0, len(db.byRank))
	for r := range db.byRank {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IPOf returns the IP a rank reports from.
func (db *DB) IPOf(r topo.Rank) (topo.IP, bool) {
	ip, ok := db.rankIP[r]
	return ip, ok
}

// RanksAt returns the ranks reporting from an IP (the paper keys triggers by
// IP; one host carries several ranks).
func (db *DB) RanksAt(ip topo.IP) []topo.Rank {
	out := append([]topo.Rank(nil), db.ipRanks[ip]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RanksOfComm returns the member ranks observed for a communicator.
func (db *DB) RanksOfComm(commID uint64) []topo.Rank {
	set := db.commRanks[commID]
	out := make([]topo.Rank, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CommsOfRank returns the communicators rank r has produced records for.
func (db *DB) CommsOfRank(r topo.Rank) []uint64 {
	var out []uint64
	for comm, set := range db.commRanks {
		if set[r] {
			out = append(out, comm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueryRank returns rank r's records with Time in (from, to], in order.
func (db *DB) QueryRank(r topo.Rank, from, to sim.Time) []trace.Record {
	rs := db.byRank[r]
	lo := sort.Search(len(rs), func(i int) bool { return rs[i].Time > from })
	hi := sort.Search(len(rs), func(i int) bool { return rs[i].Time > to })
	if lo >= hi {
		return nil
	}
	return append([]trace.Record(nil), rs[lo:hi]...)
}

// QueryGroup returns, per member rank of the communicator, the records in
// (from, to] that belong to that communicator.
func (db *DB) QueryGroup(commID uint64, from, to sim.Time) map[topo.Rank][]trace.Record {
	out := make(map[topo.Rank][]trace.Record)
	for r := range db.commRanks[commID] {
		var recs []trace.Record
		for _, rec := range db.QueryRank(r, from, to) {
			if rec.CommID == commID {
				recs = append(recs, rec)
			}
		}
		out[r] = recs
	}
	return out
}

// LastRecord returns rank r's most recent record at or before t for the
// given communicator (commID 0 matches any), and whether one exists.
func (db *DB) LastRecord(r topo.Rank, commID uint64, t sim.Time) (trace.Record, bool) {
	rs := db.byRank[r]
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Time > t })
	for i--; i >= 0; i-- {
		if commID == 0 || rs[i].CommID == commID {
			return rs[i], true
		}
	}
	return trace.Record{}, false
}

// LastCompletion returns rank r's most recent completion log at or before t
// (any communicator), and whether one exists.
func (db *DB) LastCompletion(r topo.Rank, t sim.Time) (trace.Record, bool) {
	rs := db.byRank[r]
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Time > t })
	for i--; i >= 0; i-- {
		if rs[i].Kind == trace.KindCompletion {
			return rs[i], true
		}
	}
	return trace.Record{}, false
}

// LastStatePerChannel returns rank r's most recent state log per channel for
// a communicator, looking back at most window from t.
func (db *DB) LastStatePerChannel(r topo.Rank, commID uint64, t sim.Time, window time.Duration) map[int32]trace.Record {
	out := make(map[int32]trace.Record)
	for _, rec := range db.QueryRank(r, t.Add(-window), t) {
		if rec.Kind == trace.KindState && rec.CommID == commID {
			out[rec.Channel] = rec // query order is ascending: last wins
		}
	}
	return out
}
