// Package clouddb is the in-memory stand-in for Mycroft's cloud trace
// database (§6.1): the caching layer the always-on backend queries. Records
// are sharded by rank-hash into independently pruned shards, each with its
// own per-rank series, IP index and communicator index, so fleet-scale
// ingest and the Algorithms 1/2 window queries never walk one global map.
// The store supports the time-window lookups the backend issues, a unified
// predicate/pagination query layer (see query.go), a retention horizon (the
// production system keeps one day), and volume accounting so the data-volume
// experiment (E6) can extrapolate to cluster scale.
package clouddb

import (
	"fmt"
	"sort"
	"time"

	"mycroft/internal/otrace"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// DefaultShards is the shard count New uses. Sharding is by rank modulo
// shard count: one host's ranks are consecutive, so a host's traffic spreads
// across shards instead of hammering one.
const DefaultShards = 8

// maxShards bounds the shard count so a batch's touched-shard set fits in a
// word (Ingest tracks which shards to prune with a bitmask).
const maxShards = 64

// rankSeries holds one rank's records in emission order plus the per-rank
// facts Ingest would otherwise re-derive per record (reporting IP, the set
// of communicators already indexed).
type rankSeries struct {
	ip    topo.IP
	recs  []trace.Record
	comms map[uint64]bool
}

// shard is one independently pruned partition of the store.
type shard struct {
	byRank    map[topo.Rank]*rankSeries
	ipRanks   map[topo.IP][]topo.Rank
	commRanks map[uint64]map[topo.Rank]bool

	ingested uint64
	pruned   uint64
	maxTime  sim.Time
}

func newShard() *shard {
	return &shard{
		byRank:    make(map[topo.Rank]*rankSeries),
		ipRanks:   make(map[topo.IP][]topo.Rank),
		commRanks: make(map[uint64]map[topo.Rank]bool),
	}
}

// DB stores trace records ordered by emission time per rank.
type DB struct {
	eng       *sim.Engine
	retention time.Duration
	shards    []*shard

	ingested      uint64 // records
	bytesIngested uint64

	observers []func([]trace.Record)
	metrics   *Metrics
	spans     *otrace.Tracer
}

// SetTracer attaches a pipeline span tracer: every subsequent Ingest batch
// records one StageIngest span covering store, prune and observers (the
// dependency-graph update rides the observer list, so its cost lands inside
// the span's wall window). Nil detaches. Like SetMetrics, the hot path pays
// one pointer check when no tracer is attached.
func (db *DB) SetTracer(t *otrace.Tracer) { db.spans = t }

// New creates a DB with the given retention horizon (0 = keep forever) and
// the default shard count.
func New(eng *sim.Engine, retention time.Duration) *DB {
	return NewSharded(eng, retention, DefaultShards)
}

// NewSharded is New with an explicit shard count in [1, 64].
func NewSharded(eng *sim.Engine, retention time.Duration, shards int) *DB {
	if retention < 0 {
		panic(fmt.Sprintf("clouddb: negative retention %v", retention))
	}
	if shards < 1 || shards > maxShards {
		panic(fmt.Sprintf("clouddb: shard count %d outside [1, %d]", shards, maxShards))
	}
	db := &DB{eng: eng, retention: retention, shards: make([]*shard, shards)}
	for i := range db.shards {
		db.shards[i] = newShard()
	}
	return db
}

// shardIdx maps a rank to its shard.
func (db *DB) shardIdx(r topo.Rank) int {
	if r < 0 {
		r = -r
	}
	return int(r) % len(db.shards)
}

// seriesFor returns (creating on first sight) the series for a rank. First
// sight is the only time the IP index is touched — the per-record lookups
// the unsharded store did are hoisted here.
func (db *DB) seriesFor(r topo.Rank, ip topo.IP) (int, *shard, *rankSeries) {
	idx := db.shardIdx(r)
	sh := db.shards[idx]
	s := sh.byRank[r]
	if s == nil {
		s = &rankSeries{ip: ip, comms: make(map[uint64]bool)}
		sh.byRank[r] = s
		sh.ipRanks[ip] = append(sh.ipRanks[ip], r)
	}
	return idx, sh, s
}

// Ingest appends a batch. Records for one rank must arrive in emission
// order, which the per-host agent guarantees (it drains an ordered ring).
// Only the shards the batch touches are pruned; untouched shards keep their
// over-horizon records until their next ingest (retention is a horizon, not
// an instant).
func (db *DB) Ingest(batch []trace.Record) {
	if len(batch) == 0 {
		return
	}
	span := db.spans.Batch(otrace.StageIngest)
	var (
		series  *rankSeries
		sh      *shard
		last    topo.Rank
		touched uint64
	)
	for i := range batch {
		r := &batch[i]
		if series == nil || r.Rank != last {
			var idx int
			idx, sh, series = db.seriesFor(r.Rank, r.IP)
			last = r.Rank
			touched |= 1 << uint(idx)
		}
		if n := len(series.recs); n > 0 && series.recs[n-1].Time > r.Time {
			panic(fmt.Sprintf("clouddb: out-of-order ingest for rank %d: %v after %v", r.Rank, r.Time, series.recs[n-1].Time))
		}
		series.recs = append(series.recs, *r)
		if !series.comms[r.CommID] {
			series.comms[r.CommID] = true
			cr := sh.commRanks[r.CommID]
			if cr == nil {
				cr = make(map[topo.Rank]bool)
				sh.commRanks[r.CommID] = cr
			}
			cr[r.Rank] = true
		}
		if r.Time > sh.maxTime {
			sh.maxTime = r.Time
		}
		sh.ingested++
	}
	db.ingested += uint64(len(batch))
	db.bytesIngested += uint64(len(batch)) * trace.WireSize
	if m := db.metrics; m != nil {
		m.Records.Add(uint64(len(batch)))
		m.Bytes.Add(uint64(len(batch)) * trace.WireSize)
		m.Batches.Inc()
	}
	db.prune(touched)
	for _, fn := range db.observers {
		fn(batch)
	}
	db.spans.End(span)
}

// AddIngestObserver registers fn to run on every batch, after it is stored
// and pruning has run. The dependency graph subscribes here so it is
// maintained as records arrive instead of re-scanning the store per trigger.
// Observers must not retain the batch slice. The returned func unregisters
// the observer; an observer never removed lives (and costs O(batch) per
// ingest) as long as the DB does.
func (db *DB) AddIngestObserver(fn func([]trace.Record)) (remove func()) {
	db.observers = append(db.observers, fn)
	idx := len(db.observers) - 1
	return func() {
		if idx >= 0 {
			db.observers[idx] = func([]trace.Record) {}
			idx = -1
		}
	}
}

// Replay feeds every live record to fn, ranks in ascending order and each
// rank's records in ingestion (= emission) order. Observers attached after
// ingest began bootstrap from this; per-rank order is the only ordering
// invariant the store guarantees, and Replay preserves it.
func (db *DB) Replay(fn func(trace.Record)) {
	for _, r := range db.Ranks() {
		for _, rec := range db.series(r).recs {
			fn(rec)
		}
	}
}

// Export feeds every live record with Time in (from, to] to fn in one global
// deterministic order — ascending (Time, Rank) — and returns how many were
// visited. fn returning false stops the walk early. Within one rank records
// keep their ingestion order, so re-Ingesting an exported stream can never
// trip the per-rank monotonicity check: this is the incident recorder's
// preamble iterator, and a merged stream is also what an operator expects a
// downloaded artifact to contain. A simple k-way merge over the per-rank
// series; memory stays O(ranks), not O(records).
func (db *DB) Export(from, to sim.Time, fn func(trace.Record) bool) uint64 {
	ranks := db.Ranks()
	type cursor struct {
		recs []trace.Record
		i    int
	}
	cursors := make([]cursor, 0, len(ranks))
	for _, r := range ranks {
		s := db.series(r)
		lo, hi := window(s.recs, from, to)
		if lo < hi {
			cursors = append(cursors, cursor{recs: s.recs[lo:hi]})
		}
	}
	var visited uint64
	for {
		best := -1
		for i := range cursors {
			c := &cursors[i]
			if c.i >= len(c.recs) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := &cursors[best]
			// Cursors are rank-ascending, so strict Time comparison alone
			// gives the (Time, Rank) order: ties keep the earlier cursor.
			if c.recs[c.i].Time < b.recs[b.i].Time {
				best = i
			}
		}
		if best < 0 {
			return visited
		}
		c := &cursors[best]
		rec := c.recs[c.i]
		c.i++
		visited++
		if !fn(rec) {
			return visited
		}
	}
}

// prune drops records older than the retention horizon from the touched
// shards.
func (db *DB) prune(touched uint64) {
	if db.retention == 0 {
		return
	}
	cut := db.eng.Now().Add(-db.retention)
	if cut <= 0 {
		return
	}
	var dropped uint64
	for idx, sh := range db.shards {
		if touched&(1<<uint(idx)) == 0 {
			continue
		}
		for _, s := range sh.byRank {
			i := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].Time >= cut })
			if i > 0 {
				sh.pruned += uint64(i)
				dropped += uint64(i)
				s.recs = s.recs[i:]
			}
		}
	}
	if m := db.metrics; m != nil && dropped > 0 {
		m.Pruned.Add(dropped)
	}
}

// series returns the series for a rank, or nil.
func (db *DB) series(r topo.Rank) *rankSeries {
	return db.shards[db.shardIdx(r)].byRank[r]
}

// Ingested returns how many records have been stored.
func (db *DB) Ingested() uint64 { return db.ingested }

// BytesIngested returns the stored volume in encoded bytes.
func (db *DB) BytesIngested() uint64 { return db.bytesIngested }

// Pruned returns how many records retention dropped, across all shards.
func (db *DB) Pruned() uint64 {
	var n uint64
	for _, sh := range db.shards {
		n += sh.pruned
	}
	return n
}

// Shards returns the shard count.
func (db *DB) Shards() int { return len(db.shards) }

// ShardStats describes one shard's live state.
type ShardStats struct {
	Ranks    int    // ranks with a series in this shard
	Records  int    // live (unpruned) records
	Ingested uint64 // lifetime records ingested
	Pruned   uint64 // lifetime records dropped by retention
}

// Stats aggregates the store's live state.
type Stats struct {
	Ranks         int
	Records       int // live records across all shards
	Ingested      uint64
	BytesIngested uint64
	Pruned        uint64
	Shards        []ShardStats
}

// Stats reports per-shard and aggregate counters. The query layer and the
// CLIs use it; it never walks record payloads, only per-shard metadata.
func (db *DB) Stats() Stats {
	st := Stats{Ingested: db.ingested, BytesIngested: db.bytesIngested, Shards: make([]ShardStats, len(db.shards))}
	for i, sh := range db.shards {
		ss := ShardStats{Ranks: len(sh.byRank), Ingested: sh.ingested, Pruned: sh.pruned}
		for _, s := range sh.byRank {
			ss.Records += len(s.recs)
		}
		st.Shards[i] = ss
		st.Ranks += ss.Ranks
		st.Records += ss.Records
		st.Pruned += ss.Pruned
	}
	return st
}

// Ranks returns every rank that has ever produced a record.
func (db *DB) Ranks() []topo.Rank {
	var out []topo.Rank
	for _, sh := range db.shards {
		for r := range sh.byRank {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IPOf returns the IP a rank reports from.
func (db *DB) IPOf(r topo.Rank) (topo.IP, bool) {
	if s := db.series(r); s != nil {
		return s.ip, true
	}
	return "", false
}

// RanksAt returns the ranks reporting from an IP (the paper keys triggers by
// IP; one host carries several ranks, and its ranks spread across shards).
func (db *DB) RanksAt(ip topo.IP) []topo.Rank {
	var out []topo.Rank
	for _, sh := range db.shards {
		out = append(out, sh.ipRanks[ip]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RanksOfComm returns the member ranks observed for a communicator.
func (db *DB) RanksOfComm(commID uint64) []topo.Rank {
	var out []topo.Rank
	for _, sh := range db.shards {
		for r := range sh.commRanks[commID] {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CommsOfRank returns the communicators rank r has produced records for.
func (db *DB) CommsOfRank(r topo.Rank) []uint64 {
	s := db.series(r)
	if s == nil {
		return nil
	}
	out := make([]uint64, 0, len(s.comms))
	for comm := range s.comms {
		out = append(out, comm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueryRank returns rank r's records with Time in (from, to], in order.
func (db *DB) QueryRank(r topo.Rank, from, to sim.Time) []trace.Record {
	s := db.series(r)
	if s == nil {
		return nil
	}
	lo, hi := window(s.recs, from, to)
	if lo >= hi {
		return nil
	}
	return append([]trace.Record(nil), s.recs[lo:hi]...)
}

// window returns the half-open index range of records with Time in (from, to].
func window(rs []trace.Record, from, to sim.Time) (lo, hi int) {
	lo = sort.Search(len(rs), func(i int) bool { return rs[i].Time > from })
	hi = sort.Search(len(rs), func(i int) bool { return rs[i].Time > to })
	return lo, hi
}

// QueryGroup returns, per member rank of the communicator, the records in
// (from, to] that belong to that communicator.
func (db *DB) QueryGroup(commID uint64, from, to sim.Time) map[topo.Rank][]trace.Record {
	out := make(map[topo.Rank][]trace.Record)
	for _, r := range db.RanksOfComm(commID) {
		var recs []trace.Record
		for _, rec := range db.QueryRank(r, from, to) {
			if rec.CommID == commID {
				recs = append(recs, rec)
			}
		}
		out[r] = recs
	}
	return out
}

// LastRecord returns rank r's most recent record at or before t for the
// given communicator (commID 0 matches any), and whether one exists.
func (db *DB) LastRecord(r topo.Rank, commID uint64, t sim.Time) (trace.Record, bool) {
	s := db.series(r)
	if s == nil {
		return trace.Record{}, false
	}
	i := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].Time > t })
	for i--; i >= 0; i-- {
		if commID == 0 || s.recs[i].CommID == commID {
			return s.recs[i], true
		}
	}
	return trace.Record{}, false
}

// LastCompletion returns rank r's most recent completion log at or before t
// (any communicator), and whether one exists.
func (db *DB) LastCompletion(r topo.Rank, t sim.Time) (trace.Record, bool) {
	s := db.series(r)
	if s == nil {
		return trace.Record{}, false
	}
	i := sort.Search(len(s.recs), func(i int) bool { return s.recs[i].Time > t })
	for i--; i >= 0; i-- {
		if s.recs[i].Kind == trace.KindCompletion {
			return s.recs[i], true
		}
	}
	return trace.Record{}, false
}

// LastStatePerChannel returns rank r's most recent state log per channel for
// a communicator, looking back at most window from t.
func (db *DB) LastStatePerChannel(r topo.Rank, commID uint64, t sim.Time, window time.Duration) map[int32]trace.Record {
	out := make(map[int32]trace.Record)
	for _, rec := range db.QueryRank(r, t.Add(-window), t) {
		if rec.Kind == trace.KindState && rec.CommID == commID {
			out[rec.Channel] = rec // query order is ascending: last wins
		}
	}
	return out
}
