package clouddb

import (
	"testing"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

func rec(rank topo.Rank, comm uint64, t sim.Time, kind trace.Kind) trace.Record {
	return trace.Record{
		Kind: kind, Time: t, Rank: rank, CommID: comm,
		IP: topo.IP("10.0.0.1"), Op: trace.OpAllReduce,
	}
}

func TestIngestAndQueryRank(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	for i := 0; i < 10; i++ {
		db.Ingest([]trace.Record{rec(3, 1, sim.Time(i*100), trace.KindState)})
	}
	if db.Ingested() != 10 {
		t.Fatalf("Ingested = %d", db.Ingested())
	}
	if db.BytesIngested() != 10*trace.WireSize {
		t.Fatalf("BytesIngested = %d", db.BytesIngested())
	}
	got := db.QueryRank(3, 100, 500)
	if len(got) != 4 { // times 200,300,400,500: (100, 500]
		t.Fatalf("QueryRank returned %d records: %+v", len(got), got)
	}
	if got[0].Time != 200 || got[3].Time != 500 {
		t.Fatalf("window bounds wrong: %v..%v", got[0].Time, got[3].Time)
	}
	if db.QueryRank(99, 0, 1000) != nil {
		t.Fatal("unknown rank returned records")
	}
}

func TestOutOfOrderIngestPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	db.Ingest([]trace.Record{rec(1, 1, 100, trace.KindState)})
	defer func() {
		if recover() == nil {
			t.Error("out-of-order ingest did not panic")
		}
	}()
	db.Ingest([]trace.Record{rec(1, 1, 50, trace.KindState)})
}

func TestGroupIndexes(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	db.Ingest([]trace.Record{
		rec(0, 7, 10, trace.KindState),
		rec(1, 7, 11, trace.KindState),
		rec(2, 8, 12, trace.KindState),
	})
	if got := db.RanksOfComm(7); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("RanksOfComm(7) = %v", got)
	}
	if got := db.CommsOfRank(1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("CommsOfRank(1) = %v", got)
	}
	if got := db.Ranks(); len(got) != 3 {
		t.Fatalf("Ranks = %v", got)
	}
	grp := db.QueryGroup(7, 0, 100)
	if len(grp) != 2 || len(grp[0]) != 1 || len(grp[1]) != 1 {
		t.Fatalf("QueryGroup = %v", grp)
	}
}

func TestQueryGroupFiltersOtherComms(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	db.Ingest([]trace.Record{
		rec(0, 7, 10, trace.KindState),
		rec(0, 8, 20, trace.KindState),
	})
	grp := db.QueryGroup(7, 0, 100)
	if len(grp[0]) != 1 || grp[0][0].CommID != 7 {
		t.Fatalf("cross-comm leakage: %v", grp[0])
	}
}

func TestIPIndex(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	a := rec(0, 1, 10, trace.KindState)
	b := rec(1, 1, 11, trace.KindState)
	b.IP = "10.0.0.2"
	db.Ingest([]trace.Record{a, b})
	if ip, ok := db.IPOf(0); !ok || ip != "10.0.0.1" {
		t.Fatalf("IPOf(0) = %v %v", ip, ok)
	}
	if got := db.RanksAt("10.0.0.2"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("RanksAt = %v", got)
	}
	if _, ok := db.IPOf(9); ok {
		t.Fatal("IPOf unknown rank reported ok")
	}
}

func TestLastRecord(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	db.Ingest([]trace.Record{
		rec(0, 7, 10, trace.KindState),
		rec(0, 8, 20, trace.KindState),
		rec(0, 7, 30, trace.KindCompletion),
	})
	if r, ok := db.LastRecord(0, 0, 100); !ok || r.Time != 30 {
		t.Fatalf("LastRecord any = %+v %v", r, ok)
	}
	if r, ok := db.LastRecord(0, 8, 100); !ok || r.Time != 20 {
		t.Fatalf("LastRecord comm 8 = %+v %v", r, ok)
	}
	if r, ok := db.LastRecord(0, 7, 25); !ok || r.Time != 10 {
		t.Fatalf("LastRecord before 25 = %+v %v", r, ok)
	}
	if _, ok := db.LastRecord(0, 9, 100); ok {
		t.Fatal("LastRecord unknown comm reported ok")
	}
}

func TestLastStatePerChannel(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	mk := func(ch int32, ts sim.Time, done uint32) trace.Record {
		r := rec(0, 7, ts, trace.KindState)
		r.Channel = ch
		r.RDMADone = done
		return r
	}
	db.Ingest([]trace.Record{mk(0, 10, 1), mk(1, 11, 2), mk(0, 20, 5), mk(1, 21, 6)})
	got := db.LastStatePerChannel(0, 7, 100, time.Hour)
	if len(got) != 2 {
		t.Fatalf("channels = %d", len(got))
	}
	if got[0].RDMADone != 5 || got[1].RDMADone != 6 {
		t.Fatalf("stale channel states: %+v", got)
	}
}

func TestRetentionPrunes(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, time.Second)
	db.Ingest([]trace.Record{rec(0, 1, sim.Time(0), trace.KindState)})
	eng.RunFor(5 * time.Second)
	db.Ingest([]trace.Record{rec(0, 1, sim.Time(5*time.Second), trace.KindState)})
	if db.Pruned() != 1 {
		t.Fatalf("Pruned = %d, want 1", db.Pruned())
	}
	if got := db.QueryRank(0, 0, sim.Time(10*time.Second)); len(got) != 1 {
		t.Fatalf("retention left %d records", len(got))
	}
}

func TestNegativeRetentionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative retention did not panic")
		}
	}()
	New(sim.NewEngine(1), -time.Second)
}

func TestBadShardCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero shard count did not panic")
		}
	}()
	NewSharded(sim.NewEngine(1), 0, 0)
}

// TestRetentionAcrossShards: retention is enforced per shard, and only the
// shards an ingest touches are swept — an idle shard keeps its over-horizon
// records until its own next ingest, and the Pruned accounting sums over
// shards.
func TestRetentionAcrossShards(t *testing.T) {
	eng := sim.NewEngine(1)
	db := NewSharded(eng, time.Second, 4)
	// Ranks 0 and 1 land in different shards (rank % 4).
	db.Ingest([]trace.Record{rec(0, 1, 1, trace.KindState)})
	db.Ingest([]trace.Record{rec(1, 1, 1, trace.KindState)})
	eng.RunFor(5 * time.Second)

	// Touch only rank 0's shard: its expired record goes, rank 1's stays.
	db.Ingest([]trace.Record{rec(0, 1, sim.Time(5*time.Second), trace.KindState)})
	if db.Pruned() != 1 {
		t.Fatalf("Pruned = %d, want 1 (only the touched shard swept)", db.Pruned())
	}
	if got := db.QueryRank(1, 0, sim.Time(10*time.Second)); len(got) != 1 {
		t.Fatalf("idle shard lost %d records early", 1-len(got))
	}

	// Touching rank 1's shard sweeps it too.
	db.Ingest([]trace.Record{rec(1, 1, sim.Time(5*time.Second), trace.KindState)})
	if db.Pruned() != 2 {
		t.Fatalf("Pruned = %d, want 2 after both shards swept", db.Pruned())
	}
	st := db.Stats()
	if st.Pruned != 2 || st.Records != 2 || st.Ingested != 4 {
		t.Fatalf("Stats = %+v", st)
	}
	var perShard uint64
	for _, ss := range st.Shards {
		perShard += ss.Pruned
	}
	if perShard != st.Pruned {
		t.Fatalf("per-shard pruned sums to %d, aggregate says %d", perShard, st.Pruned)
	}
}

// TestRetentionPrunesAllRanksInShard: ranks that hash to the same shard are
// swept together when any of them ingests.
func TestRetentionPrunesAllRanksInShard(t *testing.T) {
	eng := sim.NewEngine(1)
	db := NewSharded(eng, time.Second, 4)
	db.Ingest([]trace.Record{rec(2, 1, 1, trace.KindState)})
	db.Ingest([]trace.Record{rec(6, 1, 1, trace.KindState)}) // 6 % 4 == 2 % 4
	eng.RunFor(5 * time.Second)
	db.Ingest([]trace.Record{rec(2, 1, sim.Time(5*time.Second), trace.KindState)})
	if db.Pruned() != 2 {
		t.Fatalf("Pruned = %d, want 2 (whole shard swept)", db.Pruned())
	}
	if got := db.QueryRank(6, 0, sim.Time(10*time.Second)); got != nil {
		t.Fatalf("rank 6 kept %d expired records", len(got))
	}
}

func TestOutOfOrderIngestPanicMessage(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	db.Ingest([]trace.Record{rec(1, 1, 100, trace.KindState)})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-order ingest did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		want := "clouddb: out-of-order ingest for rank 1: 50ns after 100ns"
		if msg != want {
			t.Fatalf("panic message %q, want %q", msg, want)
		}
	}()
	db.Ingest([]trace.Record{rec(1, 1, 50, trace.KindState)})
}

func TestShardsAccessor(t *testing.T) {
	if got := New(sim.NewEngine(1), 0).Shards(); got != DefaultShards {
		t.Fatalf("Shards = %d, want %d", got, DefaultShards)
	}
	if got := NewSharded(sim.NewEngine(1), 0, 3).Shards(); got != 3 {
		t.Fatalf("Shards = %d, want 3", got)
	}
}

// TestIngestObserverAndReplay covers the dependency-graph hook points:
// observers see every batch after it is stored, and Replay feeds the full
// live history rank by rank in ingestion order.
func TestIngestObserverAndReplay(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	var seen []trace.Record
	db.AddIngestObserver(func(batch []trace.Record) {
		seen = append(seen, batch...)
	})
	db.Ingest([]trace.Record{
		rec(3, 1, 100, trace.KindState),
		rec(5, 1, 100, trace.KindState),
	})
	db.Ingest([]trace.Record{rec(3, 1, 200, trace.KindCompletion)})
	if len(seen) != 3 {
		t.Fatalf("observer saw %d records, want 3", len(seen))
	}

	var replayed []trace.Record
	db.Replay(func(r trace.Record) { replayed = append(replayed, r) })
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records, want 3", len(replayed))
	}
	// Ranks ascend; per-rank order is ingestion order.
	if replayed[0].Rank != 3 || replayed[1].Rank != 3 || replayed[2].Rank != 5 {
		t.Fatalf("replay order: %v", replayed)
	}
	if replayed[0].Time != 100 || replayed[1].Time != 200 {
		t.Fatalf("per-rank replay order broken: %v", replayed)
	}

	// A second observer attaches independently and can be removed; removal
	// must not disturb the first observer.
	n := 0
	remove := db.AddIngestObserver(func(batch []trace.Record) { n += len(batch) })
	db.Ingest([]trace.Record{rec(5, 1, 300, trace.KindState)})
	if n != 1 || len(seen) != 4 {
		t.Fatalf("multi-observer dispatch: n=%d seen=%d", n, len(seen))
	}
	remove()
	remove() // idempotent
	db.Ingest([]trace.Record{rec(5, 1, 400, trace.KindState)})
	if n != 1 || len(seen) != 5 {
		t.Fatalf("after remove: n=%d seen=%d", n, len(seen))
	}
}

func TestExportGlobalMergeOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	// Three ranks with interleaved and colliding times; per-rank ingest order
	// is the store's only invariant, Export must weave the (Time, Rank) order.
	db.Ingest([]trace.Record{rec(2, 1, 100, trace.KindState), rec(0, 1, 150, trace.KindState)})
	db.Ingest([]trace.Record{rec(1, 1, 100, trace.KindState), rec(2, 1, 200, trace.KindState)})
	db.Ingest([]trace.Record{rec(0, 1, 300, trace.KindCompletion)})

	var got []trace.Record
	n := db.Export(0, 1000, func(r trace.Record) bool {
		got = append(got, r)
		return true
	})
	if n != 5 || len(got) != 5 {
		t.Fatalf("Export visited %d records, collected %d; want 5", n, len(got))
	}
	type key struct {
		t sim.Time
		r topo.Rank
	}
	want := []key{{100, 1}, {100, 2}, {150, 0}, {200, 2}, {300, 0}}
	for i, w := range want {
		if got[i].Time != w.t || got[i].Rank != w.r {
			t.Fatalf("Export[%d] = (t=%v, rank=%d), want (t=%v, rank=%d)", i, got[i].Time, got[i].Rank, w.t, w.r)
		}
	}
}

func TestExportWindowAndEarlyStop(t *testing.T) {
	eng := sim.NewEngine(1)
	db := New(eng, 0)
	for i := 1; i <= 10; i++ {
		db.Ingest([]trace.Record{rec(0, 1, sim.Time(i*100), trace.KindState)})
	}
	var got []trace.Record
	db.Export(200, 500, func(r trace.Record) bool {
		got = append(got, r)
		return true
	})
	if len(got) != 3 { // (200, 500]: 300, 400, 500
		t.Fatalf("windowed Export returned %d records: %+v", len(got), got)
	}
	stopped := 0
	n := db.Export(0, 10000, func(trace.Record) bool {
		stopped++
		return stopped < 2
	})
	if stopped != 2 || n != 2 {
		t.Fatalf("early-stop Export: fn ran %d times, visited %d; want 2, 2", stopped, n)
	}
}
