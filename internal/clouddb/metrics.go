package clouddb

import "mycroft/internal/obs"

// Metrics is the instrument set a DB updates when one is attached with
// SetMetrics. Every field is optional-as-a-whole: a nil Metrics (the
// default) costs one pointer check per batch, so library users who never
// scrape pay nothing. The instruments are plain obs handles — the hosting
// layer owns registration and labeling (typically one set per job).
type Metrics struct {
	Records      *obs.Counter   // records stored, lifetime
	Bytes        *obs.Counter   // encoded bytes stored, lifetime
	Batches      *obs.Counter   // ingest batches accepted
	Pruned       *obs.Counter   // records dropped by the retention horizon
	Queries      *obs.Counter   // unified Query pages served
	QueryLatency *obs.Histogram // wall-clock seconds per Query page
}

// SetMetrics attaches (or with nil, detaches) an instrument set. Not safe
// to call concurrently with Ingest/Query; wire it up before the run starts,
// like observers.
func (db *DB) SetMetrics(m *Metrics) { db.metrics = m }

// ShardRecords returns the live (unpruned) record count of one shard, for
// scrape-time occupancy gauges — cheaper than a full Stats walk when the
// caller wants a single shard.
func (db *DB) ShardRecords(i int) int {
	n := 0
	for _, s := range db.shards[i].byRank {
		n += len(s.recs)
	}
	return n
}

// LiveRecords returns the live record count across all shards.
func (db *DB) LiveRecords() int {
	n := 0
	for i := range db.shards {
		n += db.ShardRecords(i)
	}
	return n
}
