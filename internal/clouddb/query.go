package clouddb

import (
	"slices"
	"sort"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// Query is the unified predicate query the service API exposes: a record
// matches when it falls in the (From, To] window and passes every non-zero
// predicate. Results are ordered by (rank, time) — the same deterministic
// order for a given store regardless of shard count.
type Query struct {
	// Ranks restricts to these ranks (nil = every rank; when Comm is set,
	// every member rank of that communicator).
	Ranks []topo.Rank
	// Comm restricts to records of one communicator (0 = any).
	Comm uint64
	// Kinds restricts record kinds (nil = any).
	Kinds []trace.Kind
	// From, To bound emission time: (From, To]. To 0 means unbounded.
	From, To sim.Time
	// Limit caps the returned records (0 = no cap). When more matches
	// remain, Result.Next resumes after the last returned record.
	Limit int
	// Cursor resumes a paginated query. Pass Result.Next verbatim with the
	// rest of the query unchanged.
	Cursor *Cursor
}

// Cursor marks the position after the last returned record of a page.
// Emitted disambiguates several matching records at the same (rank, time).
type Cursor struct {
	Rank    topo.Rank
	Time    sim.Time
	Emitted int
}

// Result is one page of query matches.
type Result struct {
	Records []trace.Record
	// Total counts every match of the query — this page plus everything
	// Limit cut off — so a caller can tell a short page from the last page
	// without fetching it. It is computed on a walk's first page (Cursor
	// nil); a cursor-resumed page that fills to Limit reports -1 instead of
	// re-scanning the remainder (which would make a full paged walk
	// quadratic) — callers track progress from the first page's Total. A
	// resumed final page (shorter than Limit) again reports its exact
	// remaining count.
	Total int
	// Next is non-nil when Limit cut the page short; resubmitting the query
	// with it continues where this page ended.
	Next *Cursor
}

// matches applies the non-window predicates.
func (q *Query) matches(r *trace.Record) bool {
	if q.Comm != 0 && r.CommID != q.Comm {
		return false
	}
	return len(q.Kinds) == 0 || slices.Contains(q.Kinds, r.Kind)
}

// queryRanks resolves the rank list a query walks, ascending.
func (db *DB) queryRanks(q Query) []topo.Rank {
	if len(q.Ranks) > 0 {
		out := append([]topo.Rank(nil), q.Ranks...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	if q.Comm != 0 {
		return db.RanksOfComm(q.Comm)
	}
	return db.Ranks()
}

// Query runs one page of a unified query. Shards whose newest record
// predates the window are skipped wholesale; within a shard only the
// binary-searched window of each rank's series is touched, so the cost
// scales with the window, not the retained history.
func (db *DB) Query(q Query) Result {
	if m := db.metrics; m != nil {
		m.Queries.Inc()
		start := time.Now()
		defer func() { m.QueryLatency.Observe(time.Since(start).Seconds()) }()
	}
	to := q.To
	if to == 0 {
		to = sim.Infinity
	}
	if q.Limit < 0 {
		q.Limit = 0 // negative cap from a user query means "no cap", not a mis-slice
	}
	var res Result
	for _, r := range db.queryRanks(q) {
		resuming := false
		if q.Cursor != nil {
			if r < q.Cursor.Rank {
				continue
			}
			resuming = r == q.Cursor.Rank
		}
		sh := db.shards[db.shardIdx(r)]
		if sh.maxTime <= q.From {
			continue // the whole shard predates the window
		}
		s := sh.byRank[r]
		if s == nil {
			continue
		}
		lo, hi := window(s.recs, q.From, to)
		if resuming {
			// Restart at the cursor time, then skip the matches already
			// emitted at exactly that time.
			lo = sort.Search(len(s.recs), func(i int) bool { return s.recs[i].Time >= q.Cursor.Time })
		}
		skip := 0
		for i := lo; i < hi; i++ {
			rec := &s.recs[i]
			if !q.matches(rec) {
				continue
			}
			if resuming && rec.Time == q.Cursor.Time && skip < q.Cursor.Emitted {
				skip++
				continue
			}
			res.Total++
			if q.Limit > 0 && len(res.Records) == q.Limit {
				// The page is full: stamp the resume cursor the first time we
				// overflow. A first page keeps walking to count Total; a
				// resumed page stops here and reports Total -1 (the caller
				// learned the count on page one).
				if res.Next == nil {
					last := res.Records[len(res.Records)-1]
					emitted := 1
					if q.Cursor != nil && last.Rank == q.Cursor.Rank && last.Time == q.Cursor.Time {
						emitted += q.Cursor.Emitted
					}
					for j := len(res.Records) - 2; j >= 0; j-- {
						if res.Records[j].Rank != last.Rank || res.Records[j].Time != last.Time {
							break
						}
						emitted++
					}
					res.Next = &Cursor{Rank: last.Rank, Time: last.Time, Emitted: emitted}
					if q.Cursor != nil {
						res.Total = -1
						return res
					}
				}
				continue
			}
			res.Records = append(res.Records, *rec)
		}
	}
	return res
}
