package core

import (
	"fmt"
	"sort"

	"mycroft/internal/clouddb"
	"mycroft/internal/depgraph"
	"mycroft/internal/otrace"
	"mycroft/internal/sim"
	"mycroft/internal/stats"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// rankState is the backend's per-sampled-rank rolling baseline.
type rankState struct {
	everSeen      bool
	everCompleted bool
	tpBaseline    *stats.RollingRate // bytes per second over the window
	gapBaseline   *stats.RollingRate // mean completion interval (seconds)
	baselineObs   int
	tpHist        []bool // recent windows violating the throughput rule
	gapHist       []bool // recent windows violating the interval rule
}

func pushHist(h []bool, v bool, span int) []bool {
	h = append(h, v)
	if len(h) > span {
		h = h[len(h)-span:]
	}
	return h
}

func countTrue(h []bool) int {
	n := 0
	for _, v := range h {
		if v {
			n++
		}
	}
	return n
}

// Backend is the always-on analysis service: it runs Algorithm 1 on a timer
// over the sampled ranks and Algorithm 2 on each firing.
type Backend struct {
	eng     *sim.Engine
	db      *clouddb.DB
	graph   *depgraph.Graph
	cfg     Config
	sampled []topo.Rank
	state   map[topo.Rank]*rankState

	ticker    *sim.Ticker
	muteUntil sim.Time

	triggers []Trigger
	reports  []Report

	publish func(Event)
	evalObs func(sim.Time)
	metrics *Metrics
	spans   *otrace.Tracer
	fusion  *Fusion

	// OnTrigger fires on every Algorithm 1 firing, before analysis.
	//
	// Deprecated: install a publisher with SetPublisher (or subscribe via
	// the mycroft.Service API); the callback remains as a thin shim.
	OnTrigger func(Trigger)
	// OnReport fires with each Algorithm 2 verdict.
	//
	// Deprecated: see OnTrigger.
	OnReport func(Report)
	// Evaluations counts trigger passes (for the M-benchmarks).
	Evaluations uint64
}

// NewBackend creates (but does not start) a backend over the sampled ranks.
func NewBackend(eng *sim.Engine, db *clouddb.DB, sampled []topo.Rank, cfg Config) *Backend {
	if len(sampled) == 0 {
		panic("core: no sampled ranks")
	}
	cfg = cfg.withDefaults()
	b := &Backend{eng: eng, db: db, graph: depgraph.New(), cfg: cfg, sampled: sampled, state: make(map[topo.Rank]*rankState)}
	// The dependency graph is maintained as records ingest; anything already
	// stored bootstraps it so a backend attached mid-run sees history too.
	// The observer stays attached for the store's lifetime (Stop only pauses
	// trigger evaluation), so build at most one backend per DB.
	db.Replay(b.graph.Observe)
	db.AddIngestObserver(b.graph.ObserveBatch)
	for _, r := range sampled {
		b.state[r] = &rankState{
			tpBaseline:  stats.NewRollingRate(0.3),
			gapBaseline: stats.NewRollingRate(0.3),
		}
	}
	return b
}

// Sampled returns the monitored ranks.
func (b *Backend) Sampled() []topo.Rank { return append([]topo.Rank(nil), b.sampled...) }

// Config returns the effective configuration.
func (b *Backend) Config() Config { return b.cfg }

// Graph returns the incrementally maintained dependency graph — the service
// layer's QueryDependencies/BlastRadius and the DOT export read it.
func (b *Backend) Graph() *depgraph.Graph { return b.graph }

// Triggers returns all trigger firings so far.
func (b *Backend) Triggers() []Trigger { return append([]Trigger(nil), b.triggers...) }

// Reports returns all RCA verdicts so far.
func (b *Backend) Reports() []Report { return append([]Report(nil), b.reports...) }

// Start arms the evaluation timer.
func (b *Backend) Start() {
	if b.ticker != nil {
		panic("core: backend already started")
	}
	b.ticker = b.eng.NewTicker(b.cfg.Interval, func(now sim.Time) { b.Evaluate(now) })
	b.emit(Event{Kind: EventLifecycle, At: b.eng.Now(), Phase: PhaseBackendStarted})
}

// Stop disarms the timer.
func (b *Backend) Stop() {
	if b.ticker != nil {
		b.ticker.Stop()
		b.ticker = nil
		b.emit(Event{Kind: EventLifecycle, At: b.eng.Now(), Phase: PhaseBackendStopped})
	}
}

// SetEvalObserver registers fn to run at the top of every Evaluate pass,
// muted or not, before any rule fires. The incident recorder uses it to
// journal evaluation times, so a replayer can re-drive Algorithm 1 at
// exactly the recorded instants instead of re-arming the timer.
func (b *Backend) SetEvalObserver(fn func(sim.Time)) { b.evalObs = fn }

// Evaluate runs one Algorithm 1 pass over the sampled ranks at time t. It is
// exported so tests and ad-hoc tooling can drive the backend without the
// timer.
func (b *Backend) Evaluate(t sim.Time) {
	if b.evalObs != nil {
		b.evalObs(t)
	}
	b.Evaluations++
	if t < b.muteUntil {
		return
	}
	for _, rank := range b.sampled {
		if tr, ok := b.evaluateRank(rank, t); ok {
			b.fire(tr)
			return // one trigger per pass: the cascade makes the rest redundant
		}
	}
}

// evaluateRank applies Algorithm 1's rules to one sampled rank.
func (b *Backend) evaluateRank(rank topo.Rank, t sim.Time) (Trigger, bool) {
	if t < sim.Time(b.cfg.Window) {
		return Trigger{}, false // the look-back window is not yet full
	}
	st := b.state[rank]
	recs := b.db.QueryRank(rank, t.Add(-b.cfg.Window), t)
	if !st.everSeen {
		if _, ok := b.db.LastRecord(rank, 0, t); !ok {
			return Trigger{}, false // job not producing yet
		}
		st.everSeen = true
	}

	var completions, states []trace.Record
	for _, r := range recs {
		switch r.Kind {
		case trace.KindCompletion:
			completions = append(completions, r)
		case trace.KindState:
			states = append(states, r)
		}
	}

	ip, _ := b.db.IPOf(rank)
	if !st.everCompleted {
		if _, ok := b.db.LastCompletion(rank, t); ok {
			st.everCompleted = true
		}
	}
	if len(completions) == 0 {
		// Stalled mid-operation (state logs without completion) or silent
		// entirely (proxy crash / dead host). Guard against warm-up: before
		// the rank has ever completed an op, require a visibly stuck flow
		// rather than mere absence of completions.
		var maxStuck int64
		for _, s := range states {
			if s.StuckNs > maxStuck {
				maxStuck = s.StuckNs
			}
		}
		if !st.everCompleted && maxStuck <= int64(b.cfg.Window)/2 {
			return Trigger{}, false
		}
		reason := "no CollOp completed in window"
		if len(states) == 0 {
			reason = "rank silent: no logs at all in window"
		}
		return Trigger{
			Kind: TriggerFailure, Rank: rank, IP: ip, At: t,
			CommID: b.implicatedComm(rank, t), Reason: reason,
		}, true
	}
	st.everCompleted = true

	// Performance rules: windowed throughput and op interval vs. baselines.
	// The interval metric is the MEDIAN gap between completions: a single
	// long gap per iteration (e.g. the master rank's legitimately heavier
	// step, §9) must not read as degradation, while a uniform stretch of
	// the cadence must.
	var bytes int64
	for _, c := range completions {
		bytes += c.MsgSize
	}
	tp := float64(bytes) / b.cfg.Window.Seconds()
	var gap float64
	if len(completions) >= 2 {
		gaps := make([]float64, 0, len(completions)-1)
		for i := 1; i < len(completions); i++ {
			gaps = append(gaps, completions[i].Time.Sub(completions[i-1].Time).Seconds())
		}
		sort.Float64s(gaps)
		gap = gaps[len(gaps)/2]
	}

	if st.baselineObs >= b.cfg.MinBaselineSamples {
		tpBad, gapBad := false, false
		var tpBase, gapBase float64
		if base, ok := st.tpBaseline.Value(); ok && tp < b.cfg.ThroughputDrop*base {
			tpBad, tpBase = true, base
		}
		if base, ok := st.gapBaseline.Value(); ok && gap > 0 && base > 0 && gap > b.cfg.IntervalGrow*base {
			gapBad, gapBase = true, base
		}
		st.tpHist = pushHist(st.tpHist, tpBad, b.cfg.BadWindowSpan)
		st.gapHist = pushHist(st.gapHist, gapBad, b.cfg.BadWindowSpan)
		if countTrue(st.tpHist) >= b.cfg.BadWindows {
			st.tpHist, st.gapHist = nil, nil
			return Trigger{
				Kind: TriggerStraggler, Rank: rank, IP: ip, At: t,
				CommID: b.implicatedComm(rank, t),
				Reason: fmt.Sprintf("throughput %.2g B/s below %.0f%% of baseline %.2g B/s in %d of %d windows", tp, 100*b.cfg.ThroughputDrop, tpBase, b.cfg.BadWindows, b.cfg.BadWindowSpan),
			}, true
		}
		if countTrue(st.gapHist) >= b.cfg.BadWindows {
			st.tpHist, st.gapHist = nil, nil
			return Trigger{
				Kind: TriggerStraggler, Rank: rank, IP: ip, At: t,
				CommID: b.implicatedComm(rank, t),
				Reason: fmt.Sprintf("op interval %.3gs over %.1f× baseline %.3gs in %d of %d windows", gap, b.cfg.IntervalGrow, gapBase, b.cfg.BadWindows, b.cfg.BadWindowSpan),
			}, true
		}
		if tpBad || gapBad {
			return Trigger{}, false // suspicious: freeze baselines, wait for persistence
		}
	}
	st.tpBaseline.Observe(tp)
	if gap > 0 {
		st.gapBaseline.Observe(gap)
	}
	st.baselineObs++
	return Trigger{}, false
}

// implicatedComm picks the communicator a rank's freshest logs point at:
// the in-flight op's comm if state logs exist (a dependency-graph frontier
// lookup), else the last record's.
func (b *Backend) implicatedComm(rank topo.Rank, t sim.Time) uint64 {
	if comm, ok := b.graph.StuckComm(rank, 0, t.Add(-b.cfg.Window), t); ok {
		return comm
	}
	if last, ok := b.db.LastRecord(rank, 0, t); ok {
		return last.CommID
	}
	return 0
}

// fire records a trigger, publishes it, runs Algorithm 2, and mutes the
// backend while the fault is being handled.
//
// With a tracer attached this is also where an incident's span tree is
// rooted: the trigger opens the incident, the freshest upload/ingest spans
// are adopted as its first children (the batch that carried the evidence),
// a zero-width detect span marks the firing pass, and an rca span opens
// here to be closed by deliver at verdict time — so the trigger→verdict
// stage reads straight off the tree, including the straggler settle window.
func (b *Backend) fire(tr Trigger) {
	b.triggers = append(b.triggers, tr)
	b.muteUntil = tr.At.Add(b.cfg.RearmDelay)
	if m := b.metrics; m != nil {
		if c := m.Triggers[tr.Kind.String()]; c != nil {
			c.Inc()
		}
	}
	var rcaSpan otrace.SpanID
	if t := b.spans; t != nil {
		t.OpenIncident(fmt.Sprintf("trigger-%d", len(b.triggers)), tr.At)
		t.AdoptLatest(otrace.StageUpload)
		t.AdoptLatest(otrace.StageIngest)
		det := t.StageAt(otrace.StageDetect, tr.At)
		t.Annotate(det, "", fmt.Sprintf("%s rank %d: %s", tr.Kind, tr.Rank, tr.Reason))
		t.EndAt(det, tr.At)
		rcaSpan = t.StageAt(otrace.StageRCA, tr.At)
	}
	b.emit(Event{Kind: EventTrigger, At: tr.At, Trigger: &tr})
	switch tr.Kind {
	case TriggerFailure:
		b.deliver(b.timedAnalysis(rcaSpan, func() Report { return b.AnalyzeFailure(tr) }))
	default:
		// Let post-onset evidence (late launches, pressured flows) land in
		// the store before analyzing a performance anomaly.
		b.eng.After(b.cfg.StragglerSettle, func() {
			at := tr
			at.At = b.eng.Now()
			rep := b.timedAnalysis(rcaSpan, func() Report {
				rep := b.AnalyzeStraggler(at)
				if rep.Suspect < 0 {
					// No straggler pattern: the slowdown may be a failure in
					// progress (throughput collapsing toward zero fires the
					// straggler rule first). Re-analyze as a failure.
					if fr := b.AnalyzeFailure(at); fr.Suspect >= 0 {
						rep = fr
					}
				}
				return rep
			})
			rep.Trigger = tr
			b.deliver(rep)
		})
	}
}

// SetFusion attaches an evidence-fusion state: every verdict the backend
// delivers (its own tracepoint analyses and DeliverExternal channel reports)
// is fused against the other channels' recent findings before publishing.
func (b *Backend) SetFusion(f *Fusion) { b.fusion = f }

// Fusion returns the attached fusion state (nil when none).
func (b *Backend) Fusion() *Fusion { return b.fusion }

// DeliverExternal routes a channel-sourced verdict (log or perf diagnosis)
// through the standard report path: fusion, the report ledger, metrics, the
// publish span, and the EventReport emit — so subscribers, remediation and
// the cluster replicator cannot tell it from a tracepoint verdict. The
// report's first Evidence entry names the producing channel. Returns the
// fused report as published.
func (b *Backend) DeliverExternal(rep Report, own Evidence) Report {
	b.fuse(&rep, own)
	b.reports = append(b.reports, rep)
	if m := b.metrics; m != nil {
		m.Reports.Inc()
		m.ChainDepth.Observe(float64(len(rep.Chain)))
	}
	if t := b.spans; t != nil {
		pub := t.StageAt(otrace.StagePublish, rep.AnalyzedAt)
		defer t.EndAt(pub, rep.AnalyzedAt)
	}
	b.emit(Event{Kind: EventReport, At: rep.AnalyzedAt, Report: &rep})
	return rep
}

// fuse attaches evidence and confidence to a report about to be delivered.
func (b *Backend) fuse(rep *Report, own Evidence) {
	if b.fusion == nil {
		if own.Weight <= 0 {
			own.Weight = FusionConfig{}.withDefaults().ChannelWeight(own.Channel)
		}
		rep.Evidence = []Evidence{own}
		rep.Confidence = own.Weight
		return
	}
	b.fusion.Observe(own)
	b.fusion.Finalize(rep, own, rep.AnalyzedAt)
}

func (b *Backend) deliver(rep Report) {
	b.fuse(&rep, Evidence{
		Channel: ModalityTracepoint, Rank: rep.Suspect, Category: rep.Category,
		At: rep.AnalyzedAt, Detail: string(rep.Via),
	})
	b.reports = append(b.reports, rep)
	if m := b.metrics; m != nil {
		m.Reports.Inc()
		m.ChainDepth.Observe(float64(len(rep.Chain)))
	}
	if t := b.spans; t != nil {
		if id := t.Recorder().LastOpen(otrace.StageRCA); id != 0 {
			t.Annotate(id, "", fmt.Sprintf("suspect rank %d (%s): chain=%d victims=%d", rep.Suspect, rep.Category, len(rep.Chain), len(rep.Victims)))
			t.EndAt(id, rep.AnalyzedAt)
		}
		pub := t.StageAt(otrace.StagePublish, rep.AnalyzedAt)
		defer t.EndAt(pub, rep.AnalyzedAt)
	}
	b.emit(Event{Kind: EventReport, At: rep.AnalyzedAt, Report: &rep})
}
