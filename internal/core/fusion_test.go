package core

import (
	"testing"
	"time"

	"mycroft/internal/sim"
)

func fat(d time.Duration) sim.Time { return sim.Time(d) }

func TestFusionSingleChannel(t *testing.T) {
	f := NewFusion(FusionConfig{})
	rep := Report{Suspect: 5, Category: CatNetworkSendPath, AnalyzedAt: fat(20 * time.Second)}
	own := Evidence{Channel: ModalityTracepoint, Rank: 5, Category: CatNetworkSendPath, At: rep.AnalyzedAt}
	if out := f.Finalize(&rep, own, rep.AnalyzedAt); out != FusionSingle {
		t.Fatalf("outcome = %s, want %s", out, FusionSingle)
	}
	if len(rep.Evidence) != 1 || rep.Evidence[0].Channel != ModalityTracepoint {
		t.Fatalf("evidence = %v, want one tracepoint entry", rep.Evidence)
	}
	if rep.Confidence != f.Config().TracepointWeight {
		t.Fatalf("confidence = %v, want channel prior %v", rep.Confidence, f.Config().TracepointWeight)
	}
}

func TestFusionCorroborationLiftsConfidence(t *testing.T) {
	f := NewFusion(FusionConfig{})
	// The log channel saw rank 5 first; the tracepoint verdict lands later.
	f.Observe(Evidence{Channel: ModalityLog, Rank: 5, Category: CatNetworkSendPath, At: fat(18 * time.Second)})
	rep := Report{Suspect: 5, Category: CatNetworkSendPath, AnalyzedAt: fat(20 * time.Second)}
	own := Evidence{Channel: ModalityTracepoint, Rank: 5, Category: CatNetworkSendPath, At: rep.AnalyzedAt}
	if out := f.Finalize(&rep, own, rep.AnalyzedAt); out != FusionCorroborated {
		t.Fatalf("outcome = %s, want %s", out, FusionCorroborated)
	}
	cfg := f.Config()
	// Noisy-OR: strictly above either single channel's prior.
	if rep.Confidence <= cfg.TracepointWeight || rep.Confidence <= cfg.LogWeight {
		t.Fatalf("confidence %v not above single-channel priors (%v, %v)",
			rep.Confidence, cfg.TracepointWeight, cfg.LogWeight)
	}
	want := 1 - (1-cfg.TracepointWeight)*(1-cfg.LogWeight)
	if diff := rep.Confidence - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("confidence = %v, want noisy-OR %v", rep.Confidence, want)
	}
	if !rep.HasEvidence(ModalityTracepoint) || !rep.HasEvidence(ModalityLog) {
		t.Fatalf("evidence missing a channel: %v", rep.Evidence)
	}
	if rep.FusionOutcome() != FusionCorroborated {
		t.Fatalf("FusionOutcome = %s, want %s", rep.FusionOutcome(), FusionCorroborated)
	}
}

func TestFusionConflictPenalizesAndFlags(t *testing.T) {
	f := NewFusion(FusionConfig{})
	f.Observe(Evidence{Channel: ModalityPerf, Rank: 2, Category: CatComputeStraggler, At: fat(19 * time.Second)})
	rep := Report{Suspect: 5, Category: CatNetworkSendPath, AnalyzedAt: fat(20 * time.Second)}
	own := Evidence{Channel: ModalityTracepoint, Rank: 5, Category: CatNetworkSendPath, At: rep.AnalyzedAt}
	if out := f.Finalize(&rep, own, rep.AnalyzedAt); out != FusionConflicted {
		t.Fatalf("outcome = %s, want %s", out, FusionConflicted)
	}
	cfg := f.Config()
	if rep.Confidence >= cfg.TracepointWeight {
		t.Fatalf("confidence %v not penalized below prior %v", rep.Confidence, cfg.TracepointWeight)
	}
	var flagged *Evidence
	for i := range rep.Evidence {
		if rep.Evidence[i].Conflict {
			flagged = &rep.Evidence[i]
		}
	}
	if flagged == nil || flagged.Channel != ModalityPerf || flagged.Rank != 2 {
		t.Fatalf("dissenting evidence not attached+flagged: %v", rep.Evidence)
	}
	if rep.FusionOutcome() != FusionConflicted {
		t.Fatalf("FusionOutcome = %s, want %s", rep.FusionOutcome(), FusionConflicted)
	}
}

func TestFusionWindowExpiry(t *testing.T) {
	f := NewFusion(FusionConfig{Window: 30 * time.Second})
	f.Observe(Evidence{Channel: ModalityLog, Rank: 5, Category: CatNetworkSendPath, At: fat(10 * time.Second)})
	rep := Report{Suspect: 5, Category: CatNetworkSendPath, AnalyzedAt: fat(2 * time.Minute)}
	own := Evidence{Channel: ModalityTracepoint, Rank: 5, Category: CatNetworkSendPath, At: rep.AnalyzedAt}
	if out := f.Finalize(&rep, own, rep.AnalyzedAt); out != FusionSingle {
		t.Fatalf("stale evidence still fused: outcome %s, evidence %v", out, rep.Evidence)
	}
}

func TestFusionSupersedesPerChannelRank(t *testing.T) {
	f := NewFusion(FusionConfig{})
	f.Observe(Evidence{Channel: ModalityLog, Rank: 5, Category: CatNetworkSendPath, At: fat(10 * time.Second), Score: 0.3})
	f.Observe(Evidence{Channel: ModalityLog, Rank: 5, Category: CatNetworkSendPath, At: fat(15 * time.Second), Score: 0.9})
	rep := Report{Suspect: 5, Category: CatNetworkSendPath, AnalyzedAt: fat(16 * time.Second)}
	own := Evidence{Channel: ModalityTracepoint, Rank: 5, Category: CatNetworkSendPath, At: rep.AnalyzedAt}
	f.Finalize(&rep, own, rep.AnalyzedAt)
	logs := 0
	for _, e := range rep.Evidence {
		if e.Channel == ModalityLog {
			logs++
			if e.Score != 0.9 {
				t.Fatalf("stale log evidence won: %v", e)
			}
		}
	}
	if logs != 1 {
		t.Fatalf("%d log evidence entries, want the freshest only", logs)
	}
}

func TestCompatibleCategory(t *testing.T) {
	cases := []struct {
		a, b Category
		want bool
	}{
		{CatNetworkSendPath, CatNetworkSendPath, true},
		{CatNetworkSendPath, CatNetworkDegrade, true},
		{CatComputeStraggler, CatPCIeDegrade, true},
		{CatUnknown, CatGPUHang, true},
		{CatNetworkSendPath, CatGPUHang, false},
		{CatProxyCrash, CatNotLaunched, false},
	}
	for _, c := range cases {
		if got := compatibleCategory(c.a, c.b); got != c.want {
			t.Errorf("compatibleCategory(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkFusion(b *testing.B) {
	f := NewFusion(FusionConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := fat(time.Duration(i) * time.Millisecond)
		f.Observe(Evidence{Channel: ModalityLog, Rank: 5, Category: CatNetworkSendPath, At: at})
		rep := Report{Suspect: 5, Category: CatNetworkSendPath, AnalyzedAt: at}
		f.Finalize(&rep, Evidence{Channel: ModalityTracepoint, Rank: 5, Category: CatNetworkSendPath, At: at}, at)
	}
}
