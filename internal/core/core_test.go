package core

import (
	"strings"
	"testing"
	"time"

	"mycroft/internal/clouddb"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

func sec(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

type fixture struct {
	eng *sim.Engine
	db  *clouddb.DB
	b   *Backend
}

func newFixture(t *testing.T, sampled []topo.Rank, cfg Config) *fixture {
	t.Helper()
	eng := sim.NewEngine(1)
	db := clouddb.New(eng, 0)
	return &fixture{eng: eng, db: db, b: NewBackend(eng, db, sampled, cfg)}
}

func ipOf(r topo.Rank) topo.IP { return topo.IP("10.0.0." + string(rune('0'+int(r)))) }

func (f *fixture) completion(r topo.Rank, comm, seq uint64, start, end sim.Time, bytes int64) {
	f.db.Ingest([]trace.Record{{
		Kind: trace.KindCompletion, Time: end, IP: ipOf(r), CommID: comm, Rank: r,
		Op: trace.OpAllReduce, OpSeq: seq, MsgSize: bytes, Start: start, End: end,
	}})
}

func (f *fixture) state(r topo.Rank, comm, seq uint64, at sim.Time, ch int32, total, ready, tx, done uint32, stuck time.Duration) {
	f.db.Ingest([]trace.Record{{
		Kind: trace.KindState, Time: at, IP: ipOf(r), CommID: comm, Rank: r,
		Op: trace.OpAllReduce, OpSeq: seq, MsgSize: 1 << 30, Channel: ch,
		TotalChunks: total, GPUReady: ready, RDMATransmitted: tx, RDMADone: done,
		StuckNs: int64(stuck),
	}})
}

func TestSampleRanksCoversDPGroups(t *testing.T) {
	cl := topo.MustNew(topo.Config{Nodes: 4, GPUsPerNode: 8, TP: 2, PP: 4, DP: 4})
	dp := cl.DPGroups() // 8 groups
	s := SampleRanks(dp, 10)
	if len(s) != 8 {
		t.Fatalf("sampled %d ranks, want 8 (one per DP group)", len(s))
	}
	for i, g := range dp {
		found := false
		for _, r := range s {
			if g.Contains(r) {
				found = true
			}
		}
		if !found {
			t.Fatalf("DP group %d has no sampled rank", i)
		}
	}
}

func TestSampleRanksCap(t *testing.T) {
	cl := topo.MustNew(topo.Config{Nodes: 8, GPUsPerNode: 8, TP: 4, PP: 4, DP: 4})
	if got := SampleRanks(cl.DPGroups(), 10); len(got) != 10 {
		t.Fatalf("cap not applied: %d", len(got))
	}
	if got := SampleRanks(nil, 10); got != nil {
		t.Fatalf("no groups should sample nothing, got %v", got)
	}
}

func TestSampleWorld(t *testing.T) {
	s := SampleWorld(100, 10)
	if len(s) != 10 || s[0] != 0 || s[9] != 90 {
		t.Fatalf("SampleWorld = %v", s)
	}
	if got := SampleWorld(3, 10); len(got) != 3 {
		t.Fatalf("small world: %v", got)
	}
	if SampleWorld(0, 10) != nil {
		t.Fatal("empty world sampled")
	}
}

func TestNoTriggerBeforeJobProducesLogs(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	f.b.Evaluate(sec(10))
	if len(f.b.Triggers()) != 0 {
		t.Fatal("triggered on silent pre-start rank")
	}
}

func TestFailureTriggerOnStall(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	f.eng.RunUntil(sec(1))
	f.completion(0, 7, 0, sec(0.2), sec(1), 1<<30)
	// Then only state logs: op 1 in flight, stuck.
	for i := 0; i < 10; i++ {
		f.state(0, 7, 1, sec(2+0.1*float64(i)), 0, 100, 10, 10, 10, time.Duration(float64(time.Second)*0.1*float64(i)))
	}
	f.b.Evaluate(sec(8)) // window (3,8]: states only
	trs := f.b.Triggers()
	if len(trs) != 1 || trs[0].Kind != TriggerFailure {
		t.Fatalf("triggers = %v", trs)
	}
	if trs[0].CommID != 7 || trs[0].Rank != 0 {
		t.Fatalf("trigger meta wrong: %+v", trs[0])
	}
}

func TestFailureTriggerOnTotalSilence(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	f.completion(0, 7, 0, sec(0.2), sec(0.5), 1<<30)
	f.b.Evaluate(sec(30)) // window (25,30]: nothing at all, but rank was seen before
	trs := f.b.Triggers()
	if len(trs) != 1 || trs[0].Kind != TriggerFailure {
		t.Fatalf("triggers = %v", trs)
	}
	if !strings.Contains(trs[0].Reason, "silent") {
		t.Fatalf("reason = %q", trs[0].Reason)
	}
}

func TestNoFalseTriggerOnHealthyCadence(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	for i := 0; i < 30; i++ {
		ts := sec(float64(i))
		f.completion(0, 7, uint64(i), ts, ts.Add(200*time.Millisecond), 1<<30)
	}
	for ts := 5.0; ts < 30; ts++ {
		f.b.Evaluate(sec(ts))
	}
	if n := len(f.b.Triggers()); n != 0 {
		t.Fatalf("healthy run produced %d triggers: %v", n, f.b.Triggers())
	}
}

func TestStragglerTriggerOnThroughputDrop(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// Warm baseline: 1 GiB per second-ish.
	seq := uint64(0)
	for i := 0; i < 10; i++ {
		ts := sec(float64(i))
		f.completion(0, 7, seq, ts, ts.Add(200*time.Millisecond), 1<<30)
		seq++
	}
	for ts := 5.0; ts <= 10; ts++ {
		f.b.Evaluate(sec(ts))
	}
	if len(f.b.Triggers()) != 0 {
		t.Fatalf("premature trigger: %v", f.b.Triggers())
	}
	// Degrade: tiny ops (1/8 the bytes) at the same cadence.
	for i := 0; i < 10; i++ {
		ts := sec(float64(10 + i))
		f.completion(0, 7, seq, ts, ts.Add(200*time.Millisecond), 1<<27)
		seq++
	}
	for ts := 11.0; ts <= 20; ts++ {
		f.b.Evaluate(sec(ts))
	}
	trs := f.b.Triggers()
	if len(trs) != 1 || trs[0].Kind != TriggerStraggler {
		t.Fatalf("triggers = %v", trs)
	}
	if !strings.Contains(trs[0].Reason, "throughput") {
		t.Fatalf("reason = %q", trs[0].Reason)
	}
}

func TestStragglerTriggerOnIntervalGrowth(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	seq := uint64(0)
	// Baseline: completions every 1 s, 1 GiB each.
	for i := 0; i < 12; i++ {
		ts := sec(float64(i))
		f.completion(0, 7, seq, ts, ts.Add(100*time.Millisecond), 1<<30)
		seq++
	}
	for ts := 5.0; ts <= 12; ts++ {
		f.b.Evaluate(sec(ts))
	}
	if len(f.b.Triggers()) != 0 {
		t.Fatalf("premature trigger: %v", f.b.Triggers())
	}
	// Slow phase: completions every 2.5 s. Message size scales with the gap
	// so windowed throughput stays at the baseline — only the interval rule
	// can fire.
	for i := 0; i < 6; i++ {
		ts := sec(14.5 + 2.5*float64(i))
		f.completion(0, 7, seq, ts, ts.Add(100*time.Millisecond), 5<<29) // 2.5 GiB
		seq++
	}
	for ts := 13.0; ts <= 30; ts++ {
		f.b.Evaluate(sec(ts))
	}
	trs := f.b.Triggers()
	if len(trs) == 0 || trs[0].Kind != TriggerStraggler {
		t.Fatalf("triggers = %v", trs)
	}
	if !strings.Contains(trs[0].Reason, "interval") {
		t.Fatalf("reason = %q", trs[0].Reason)
	}
}

func TestRearmMutesAfterTrigger(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{RearmDelay: 30 * time.Second})
	f.completion(0, 7, 0, sec(0.1), sec(0.2), 1<<30)
	f.state(0, 7, 1, sec(1), 0, 100, 5, 5, 5, 0)
	f.b.Evaluate(sec(8))
	f.b.Evaluate(sec(9))
	f.b.Evaluate(sec(10))
	if n := len(f.b.Triggers()); n != 1 {
		t.Fatalf("muting failed: %d triggers", n)
	}
	f.b.Evaluate(sec(39))
	if n := len(f.b.Triggers()); n != 2 {
		t.Fatalf("rearm failed: %d triggers", n)
	}
}

func TestStartStopTicker(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{Interval: time.Second})
	f.b.Start()
	f.eng.RunFor(5 * time.Second)
	if f.b.Evaluations != 5 {
		t.Fatalf("evaluations = %d, want 5", f.b.Evaluations)
	}
	f.b.Stop()
	f.eng.RunFor(5 * time.Second)
	if f.b.Evaluations != 5 {
		t.Fatal("ticker survived Stop")
	}
	func() {
		defer func() { recover() }()
		f.b.Start()
		f.b.Start()
		t.Fatal("double Start did not panic")
	}()
}

func TestEmptySampledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty sampled did not panic")
		}
	}()
	NewBackend(sim.NewEngine(1), clouddb.New(sim.NewEngine(1), 0), nil, Config{})
}

// --- Algorithm 2: failure analysis ---

func stuckTrigger(f *fixture, comm uint64) Trigger {
	return Trigger{Kind: TriggerFailure, Rank: 0, IP: ipOf(0), At: f.eng.Now(), CommID: comm}
}

func TestRCANetworkSendPath(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	f.eng.RunUntil(sec(10))
	// 4 ranks on comm 7, all op seq 1. Rank 2 stalled first with outstanding
	// WRs; others are dependency-starved victims with shorter stuck times.
	for r := topo.Rank(0); r < 4; r++ {
		if r == 2 {
			f.state(r, 7, 1, sec(10), 0, 100, 24, 24, 20, 5*time.Second)
		} else {
			f.state(r, 7, 1, sec(10), 0, 100, 28, 24, 24, 4*time.Second)
		}
	}
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if rep.Suspect != 2 || rep.Category != CatNetworkSendPath || rep.Via != ViaMinData {
		t.Fatalf("report = %+v", rep)
	}
	if rep.SuspectIP != ipOf(2) {
		t.Fatalf("suspect IP = %v", rep.SuspectIP)
	}
}

func TestRCAGPUHang(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	f.eng.RunUntil(sec(10))
	for r := topo.Rank(0); r < 4; r++ {
		if r == 1 {
			// staged == posted == acked < total: GPU stopped feeding.
			f.state(r, 7, 1, sec(10), 0, 100, 30, 30, 30, 5*time.Second)
		} else {
			f.state(r, 7, 1, sec(10), 0, 100, 34, 30, 30, 4*time.Second)
		}
	}
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if rep.Suspect != 1 || rep.Category != CatGPUHang {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRCASilentProxy(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// Rank 3's last state log is stale; peers log freshly at t=10.
	f.state(3, 7, 1, sec(4), 0, 100, 10, 10, 10, 100*time.Millisecond)
	f.eng.RunUntil(sec(10))
	for r := topo.Rank(0); r < 3; r++ {
		f.state(r, 7, 1, sec(10), 0, 100, 20, 20, 20, 4*time.Second)
	}
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if rep.Suspect != 3 || rep.Category != CatProxyCrash || rep.Via != ViaSilentProxy {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRCAMinOpNotLaunched(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// Rank 1 completed seq 4 and went quiet; others show seq 5 in flight.
	f.completion(1, 7, 4, sec(3), sec(4), 1<<30)
	f.eng.RunUntil(sec(10))
	for _, r := range []topo.Rank{0, 2, 3} {
		f.state(r, 7, 5, sec(10), 0, 100, 10, 10, 10, 4*time.Second)
	}
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if rep.Suspect != 1 || rep.Category != CatNotLaunched || rep.Via != ViaMinOp {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRCAChainAndVictims(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// Comm 7 (DP): rank 1 finished seq 4, peers stuck at 5 → rank 1 lags.
	f.completion(1, 7, 4, sec(3), sec(4), 1<<30)
	f.eng.RunUntil(sec(10))
	for _, r := range []topo.Rank{0, 2, 3} {
		f.state(r, 7, 5, sec(10), 0, 100, 10, 10, 10, 4*time.Second)
	}
	// Comm 9 (rank 1's TP group): the true root cause; rank 5 is a victim.
	f.state(1, 9, 2, sec(10), 0, 50, 12, 12, 8, 5*time.Second)
	f.state(5, 9, 2, sec(10), 0, 50, 16, 12, 12, 4*time.Second)
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))

	if len(rep.Chain) != 2 {
		t.Fatalf("chain = %+v", rep.Chain)
	}
	if rep.Chain[0] != (Hop{Comm: 7, Suspect: 1, Via: ViaMinOp, Edge: "nested-comm"}) {
		t.Fatalf("hop 0 = %+v", rep.Chain[0])
	}
	if rep.Chain[1] != (Hop{Comm: 9, Suspect: 1, Via: ViaMinData}) {
		t.Fatalf("hop 1 = %+v", rep.Chain[1])
	}
	// Blast radius: DP peers 0,2,3 and TP peer 5 — every rank transitively
	// blocked by rank 1.
	want := []topo.Rank{0, 2, 3, 5}
	if len(rep.Victims) != len(want) {
		t.Fatalf("victims = %v, want %v", rep.Victims, want)
	}
	for i := range want {
		if rep.Victims[i] != want[i] {
			t.Fatalf("victims = %v, want %v", rep.Victims, want)
		}
	}
	if s := rep.String(); !strings.Contains(s, "chain") || !strings.Contains(s, "victims") {
		t.Fatalf("report string lacks chain/victims: %s", s)
	}
}

// TestRCACycleTerminates pins the chase's cycle guard: two communicators
// each blaming a rank that is visibly stuck inside the other must terminate
// via the visited set (and never exceed ChaseDepth).
func TestRCACycleTerminates(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// Comm 7: rank 1 lags at a completion; peers in flight at 5.
	f.completion(1, 7, 4, sec(3), sec(4), 1<<30)
	// Comm 9: rank 2 lags at a completion; peers in flight at 3.
	f.completion(2, 9, 2, sec(3.5), sec(4.5), 1<<30)
	f.eng.RunUntil(sec(10))
	for _, r := range []topo.Rank{0, 3} {
		f.state(r, 7, 5, sec(10), 0, 100, 10, 10, 10, 4*time.Second)
	}
	// Rank 1 is stuck inside comm 9 → chase hops 7 → 9.
	f.state(1, 9, 3, sec(10), 0, 50, 12, 12, 12, 4*time.Second)
	// Comm 9's laggard (rank 2) is stuck inside comm 7 → the chase would hop
	// back to 7, which visited must refuse.
	f.state(2, 7, 5, sec(9.9), 0, 100, 10, 10, 10, 4*time.Second)

	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if len(rep.Chain) != 2 {
		t.Fatalf("cycle did not terminate after 2 hops: %+v", rep.Chain)
	}
	if rep.Chain[0].Comm != 7 || rep.Chain[1].Comm != 9 {
		t.Fatalf("chain = %+v", rep.Chain)
	}
	// The terminal verdict stands on comm 9 even though its suspect points
	// back into comm 7.
	if rep.CommID != 9 || rep.Suspect != 2 {
		t.Fatalf("report = %+v", rep)
	}
	// The refused back-hop still records its edge kind: the trail was cut by
	// visited, not by a missing dependency.
	if rep.Chain[1].Edge != "nested-comm" {
		t.Fatalf("terminal hop edge = %q", rep.Chain[1].Edge)
	}
}

// TestRCACycleRespectsChaseDepth drives a longer chain than ChaseDepth
// allows and checks the bound.
func TestRCACycleRespectsChaseDepth(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{ChaseDepth: 2})
	f.eng.RunUntil(sec(10))
	// Comms 7→9→11→13: in each, rank (comm-6) lags via completion and is in
	// flight on the next comm.
	for _, c := range []uint64{7, 9, 11} {
		lag := topo.Rank(c - 6)
		f.completion(lag, c, 4, sec(3), sec(4), 1<<30)
	}
	f.db.Ingest([]trace.Record{
		{Kind: trace.KindState, Time: sec(10), IP: ipOf(0), CommID: 7, Rank: 0, Op: trace.OpAllReduce, OpSeq: 5, TotalChunks: 100, GPUReady: 10, RDMATransmitted: 10, RDMADone: 10, StuckNs: int64(4 * time.Second)},
		{Kind: trace.KindState, Time: sec(10), IP: ipOf(1), CommID: 9, Rank: 1, Op: trace.OpAllReduce, OpSeq: 5, TotalChunks: 100, GPUReady: 10, RDMATransmitted: 10, RDMADone: 10, StuckNs: int64(4 * time.Second)},
		{Kind: trace.KindState, Time: sec(10), IP: ipOf(3), CommID: 11, Rank: 3, Op: trace.OpAllReduce, OpSeq: 5, TotalChunks: 100, GPUReady: 10, RDMATransmitted: 10, RDMADone: 10, StuckNs: int64(4 * time.Second)},
		{Kind: trace.KindState, Time: sec(10), IP: ipOf(5), CommID: 13, Rank: 5, Op: trace.OpAllReduce, OpSeq: 5, TotalChunks: 100, GPUReady: 10, RDMATransmitted: 10, RDMADone: 8, StuckNs: int64(5 * time.Second)},
	})
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if len(rep.Chain) > 2 {
		t.Fatalf("ChaseDepth 2 exceeded: %+v", rep.Chain)
	}
}

// TestStragglerTieBreakDeterministic is the regression for the lateRanks
// ordering: two ranks with identical late counts must always convict the
// lower rank, run after run.
func TestStragglerTieBreakDeterministic(t *testing.T) {
	for run := 0; run < 20; run++ {
		f := newFixture(t, []topo.Rank{0}, Config{StragglerLate: time.Second, LateCount: 3})
		// 4 ranks, 6 iterations; ranks 1 and 3 both start 2 s late every time.
		for i := 0; i < 6; i++ {
			base := sec(float64(3 * i))
			for r := topo.Rank(0); r < 4; r++ {
				start := base
				if r == 1 || r == 3 {
					start = base.Add(2 * time.Second)
				}
				f.completion(r, 7, uint64(i), start, start.Add(500*time.Millisecond), 1<<30)
			}
		}
		f.eng.RunUntil(sec(18))
		tr := Trigger{Kind: TriggerStraggler, Rank: 0, IP: ipOf(0), At: sec(18), CommID: 7}
		rep := f.b.AnalyzeStraggler(tr)
		if rep.Suspect != 1 {
			t.Fatalf("run %d: suspect = %d, want 1 (deterministic tie-break)", run, rep.Suspect)
		}
	}
}

func TestRCAChasesAcrossComms(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// Comm 7 (DP): rank 1 finished seq 4, peers stuck at 5 → rank 1 lags.
	f.completion(1, 7, 4, sec(3), sec(4), 1<<30)
	// Comm 9 (rank 1's TP group): rank 1 is stuck with outstanding WRs —
	// the true root cause. Peer rank 5 is a victim.
	f.eng.RunUntil(sec(10))
	for _, r := range []topo.Rank{0, 2, 3} {
		f.state(r, 7, 5, sec(10), 0, 100, 10, 10, 10, 4*time.Second)
	}
	f.state(1, 9, 2, sec(10), 0, 50, 12, 12, 8, 5*time.Second)
	f.state(5, 9, 2, sec(10), 0, 50, 16, 12, 12, 4*time.Second)
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if rep.Suspect != 1 || rep.Category != CatNetworkSendPath {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CommID != 9 {
		t.Fatalf("chase did not land on comm 9: %+v", rep)
	}
}

func TestRCAMinOpStuckInComm(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	f.eng.RunUntil(sec(10))
	// Rank 2's last record is a fresh state log at seq 4 while others are at
	// seq 5: it is behind AND visibly stuck inside this comm.
	f.state(2, 7, 4, sec(10), 0, 100, 24, 24, 20, 5*time.Second)
	for _, r := range []topo.Rank{0, 1, 3} {
		f.state(r, 7, 5, sec(10), 0, 100, 10, 10, 10, time.Second)
	}
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 7))
	if rep.Suspect != 2 || rep.Via != ViaMinOp || rep.Category != CatNetworkSendPath {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRCAUnknownOnNoLogs(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	rep := f.b.AnalyzeFailure(stuckTrigger(f, 77))
	if rep.Category != CatUnknown || rep.Suspect != -1 {
		t.Fatalf("report = %+v", rep)
	}
}

// --- Algorithm 2: straggler analysis ---

func TestStragglerLateStart(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{StragglerLate: time.Second, LateCount: 3})
	// 4 ranks, 5 iterations 4 s apart; rank 2 starts 2 s late every time.
	for i := 0; i < 5; i++ {
		base := sec(float64(4 * i))
		for r := topo.Rank(0); r < 4; r++ {
			start := base
			if r == 2 {
				start = base.Add(2 * time.Second)
			}
			f.completion(r, 7, uint64(i), start, start.Add(500*time.Millisecond), 1<<30)
		}
	}
	f.eng.RunUntil(sec(20))
	tr := Trigger{Kind: TriggerStraggler, Rank: 0, IP: ipOf(0), At: sec(20), CommID: 7}
	rep := f.b.AnalyzeStraggler(tr)
	if rep.Suspect != 2 || rep.Category != CatComputeStraggler || rep.Via != ViaLateStart {
		t.Fatalf("report = %+v", rep)
	}
}

func TestStragglerFlowPressureNIC(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// No late starts; rank 3's flows show outstanding WRs in every snapshot.
	for i := 0; i < 10; i++ {
		ts := sec(1 + 0.1*float64(i))
		for r := topo.Rank(0); r < 4; r++ {
			if r == 3 {
				f.state(r, 7, 1, ts, 0, 100, uint32(10+i), uint32(10+i), uint32(8+i), 0)
			} else {
				f.state(r, 7, 1, ts, 0, 100, uint32(14+i), uint32(10+i), uint32(10+i), 0)
			}
		}
	}
	f.eng.RunUntil(sec(3))
	tr := Trigger{Kind: TriggerStraggler, Rank: 0, IP: ipOf(0), At: sec(3), CommID: 7}
	rep := f.b.AnalyzeStraggler(tr)
	if rep.Suspect != 3 || rep.Category != CatNetworkDegrade || rep.Via != ViaFlowPressure {
		t.Fatalf("report = %+v", rep)
	}
}

func TestStragglerFlowPressurePCIe(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	// Rank 1 staging-bound (buffer empty), others buffer-full victims, and
	// nobody shows outstanding WRs.
	for i := 0; i < 10; i++ {
		ts := sec(1 + 0.1*float64(i))
		for r := topo.Rank(0); r < 4; r++ {
			if r == 1 {
				f.state(r, 7, 1, ts, 0, 100, uint32(10+i), uint32(10+i), uint32(10+i), 0)
			} else {
				f.state(r, 7, 1, ts, 0, 100, uint32(14+i), uint32(10+i), uint32(10+i), 0)
			}
		}
	}
	f.eng.RunUntil(sec(3))
	tr := Trigger{Kind: TriggerStraggler, Rank: 0, IP: ipOf(0), At: sec(3), CommID: 7}
	rep := f.b.AnalyzeStraggler(tr)
	if rep.Suspect != 1 || rep.Category != CatPCIeDegrade || rep.Via != ViaFlowPressure {
		t.Fatalf("report = %+v", rep)
	}
}

func TestStragglerNoLogs(t *testing.T) {
	f := newFixture(t, []topo.Rank{0}, Config{})
	tr := Trigger{Kind: TriggerStraggler, Rank: 0, At: 0, CommID: 55}
	rep := f.b.AnalyzeStraggler(tr)
	if rep.Suspect != -1 || rep.Category != CatUnknown {
		t.Fatalf("report = %+v", rep)
	}
}

func TestStringers(t *testing.T) {
	tr := Trigger{Kind: TriggerFailure, Rank: 3, IP: "10.0.0.3", At: sec(1), CommID: 7, Reason: "x"}
	if tr.String() == "" || TriggerStraggler.String() != "straggler" || TriggerKind(9).String() == "" {
		t.Fatal("stringers broken")
	}
	rep := Report{Trigger: tr, Suspect: 3, Category: CatGPUHang, Via: ViaMinData}
	if rep.String() == "" {
		t.Fatal("report stringer broken")
	}
}
