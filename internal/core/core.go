// Package core implements Mycroft's always-on analysis backend — the paper's
// primary contribution (§4.3, §5): rank sampling, the real-time trigger
// mechanism (Algorithm 1), and dependency-driven root cause analysis
// (Algorithm 2) over the distributed state machine reconstructed from
// Coll-level trace logs.
package core

import (
	"fmt"
	"strings"
	"time"

	"mycroft/internal/depgraph"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Category is an RC-table failure category (the actionable verdict).
type Category string

const (
	// CatNetworkSendPath: WRs are stuck at the suspect's NIC — a local NIC
	// failure or a black-holed link. Remediation: check that NIC/link.
	CatNetworkSendPath Category = "network-send-path"
	// CatNetworkDegrade: the suspect's flows move but at a fraction of the
	// baseline rate (NIC throttling, congestion).
	CatNetworkDegrade Category = "network-degrade"
	// CatGPUHang: the send path drained everything the GPU staged and the
	// GPU stopped feeding — a stuck kernel or dead copy engine.
	CatGPUHang Category = "gpu-hang"
	// CatPCIeDegrade: staging is the bottleneck — the GPU feeds the proxy
	// buffer abnormally slowly while the network drains instantly.
	CatPCIeDegrade Category = "pcie-degrade"
	// CatComputeStraggler: the rank consistently launches collectives late —
	// slow compute ahead of the op.
	CatComputeStraggler Category = "compute-straggler"
	// CatProxyCrash: the rank's proxy stopped emitting state logs mid-op.
	CatProxyCrash Category = "proxy-crash"
	// CatNotLaunched: the rank never launched the op others are blocked on.
	// The root cause is outside the CCL (compute hang, dataloader stall,
	// synchronization bug) — Mycroft hands off to py-spy / Flight Recorder.
	CatNotLaunched Category = "op-not-launched"
	// CatUnknown: the state machine does not match any known pattern.
	CatUnknown Category = "unknown"
)

// TriggerKind distinguishes Algorithm 1's two outputs.
type TriggerKind uint8

const (
	// TriggerFailure: a sampled rank stalled mid-operation (state logs but no
	// completion log in the window), or went silent entirely.
	TriggerFailure TriggerKind = iota + 1
	// TriggerStraggler: throughput halved or op interval doubled versus the
	// rolling baseline.
	TriggerStraggler
)

func (k TriggerKind) String() string {
	switch k {
	case TriggerFailure:
		return "failure"
	case TriggerStraggler:
		return "straggler"
	default:
		return fmt.Sprintf("trigger(%d)", uint8(k))
	}
}

// Trigger is an active-trigger firing: a suspicious time point and the
// sampled rank that exposed it (not yet a localization).
type Trigger struct {
	Kind   TriggerKind
	Rank   topo.Rank
	IP     topo.IP
	At     sim.Time
	CommID uint64 // communicator implicated by the rank's freshest logs
	Reason string
}

func (tr Trigger) String() string {
	return fmt.Sprintf("[%v] %s trigger at rank %d (%s), comm %d: %s", tr.At, tr.Kind, tr.Rank, tr.IP, tr.CommID, tr.Reason)
}

// Via names the Algorithm 2 path that produced a verdict.
type Via string

const (
	ViaMinOp        Via = "min-op"
	ViaMinData      Via = "min-data"
	ViaSilentProxy  Via = "silent-proxy"
	ViaLateStart    Via = "late-start"
	ViaFlowPressure Via = "flow-pressure"
	ViaNone         Via = "none"
)

// Hop is one step of the cross-communicator dependency chase: the
// communicator analyzed, the suspect it yielded there, how (Via), and the
// dependency-graph edge kind that led to the next hop ("" marks the
// terminal hop — the root cause, or where the trail went cold).
type Hop struct {
	Comm    uint64
	Suspect topo.Rank
	Via     Via
	Edge    depgraph.EdgeKind
}

func (h Hop) String() string {
	s := fmt.Sprintf("comm %d/rank %d (%s)", h.Comm, h.Suspect, h.Via)
	if h.Edge != "" {
		s += fmt.Sprintf(" -%s->", h.Edge)
	}
	return s
}

// Report is the outcome of root cause analysis.
type Report struct {
	Trigger    Trigger
	Suspect    topo.Rank
	SuspectIP  topo.IP
	CommID     uint64 // communicator the verdict was reached on
	Category   Category
	Via        Via
	AnalyzedAt sim.Time
	Details    string
	// Chain is the causal path the analysis walked, trigger communicator
	// first, root-cause communicator last. A single-hop chain means the
	// verdict was reached on the trigger's own communicator.
	Chain []Hop
	// Victims is the blast radius: every rank the dependency graph shows
	// transitively blocked by the suspect (suspect excluded, sorted).
	Victims []topo.Rank
	// Evidence is the per-channel attribution behind this verdict (empty on
	// backends without fusion attached). Confidence is the fused belief in
	// (0,1]: it rises above any single channel's prior when independent
	// channels corroborate, and takes a penalty when they conflict.
	Evidence   []Evidence
	Confidence float64
}

func (r Report) String() string {
	s := fmt.Sprintf("[%v] root cause: rank %d (%s) %s via %s on comm %d — %s",
		r.AnalyzedAt, r.Suspect, r.SuspectIP, r.Category, r.Via, r.CommID, r.Details)
	if len(r.Chain) > 1 {
		hops := make([]string, len(r.Chain))
		for i, h := range r.Chain {
			hops[i] = h.String()
		}
		s += "; chain " + strings.Join(hops, " ")
	}
	if len(r.Victims) > 0 {
		s += fmt.Sprintf("; victims %v", r.Victims)
	}
	return s
}

// Config tunes the backend. Zero values take the paper's defaults.
type Config struct {
	// Interval is the trigger evaluation period. Default 1 s.
	Interval time.Duration
	// Window is Δ of Algorithm 1: the look-back for trigger evaluation.
	// Default 5 s.
	Window time.Duration
	// ThroughputDrop fires the straggler trigger when windowed throughput
	// falls below this fraction of the baseline. Default 0.5 (§9).
	ThroughputDrop float64
	// IntervalGrow fires the straggler trigger when the mean op interval
	// exceeds this multiple of the baseline. Default 2.0 (§9).
	IntervalGrow float64
	// StragglerLate is the per-iteration lateness that marks a straggler.
	// Default 1 s (§9).
	StragglerLate time.Duration
	// LateCount is how many consecutive late ops confirm a straggler.
	// Default 3.
	LateCount int
	// MaxSampled caps the sampled ranks. Default 10 (§4.3).
	MaxSampled int
	// StateFresh is how stale a rank's state logs may be before the rank
	// counts as silent (proxy crash candidate). Default 1 s.
	StateFresh time.Duration
	// StragglerWindow is the look-back for straggler RCA. Short enough that
	// post-onset behaviour dominates the analysis. Default 15 s.
	StragglerWindow time.Duration
	// StragglerSettle delays straggler RCA after the trigger so the
	// post-onset evidence (late launches, pressured flows) accumulates in
	// the trace store. Default 6 s.
	StragglerSettle time.Duration
	// RearmDelay mutes the trigger after it fires, while analysis and
	// remediation proceed. Default 30 s.
	RearmDelay time.Duration
	// MinBaselineSamples before throughput/interval triggers arm. Default 5.
	MinBaselineSamples int
	// BadWindows is how many of the last BadWindowSpan windows must violate
	// a straggler rule before it fires — debouncing both the alignment
	// noise of nested op cadences and the aliasing of iteration boundaries
	// against the window. Default 3.
	BadWindows int
	// BadWindowSpan is the sliding span the BadWindows quorum is counted
	// over. Default BadWindows+2.
	BadWindowSpan int
	// FlowPressureFrac: fraction of snapshots with outstanding WRs that
	// convicts a rank's NIC in straggler flow analysis. Default 0.6.
	FlowPressureFrac float64
	// ChaseDepth bounds the cross-communicator dependency chase. Default 4.
	ChaseDepth int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.ThroughputDrop <= 0 {
		c.ThroughputDrop = 0.5
	}
	if c.IntervalGrow <= 0 {
		c.IntervalGrow = 2.0
	}
	if c.StragglerLate <= 0 {
		c.StragglerLate = time.Second
	}
	if c.LateCount <= 0 {
		c.LateCount = 3
	}
	if c.MaxSampled <= 0 {
		c.MaxSampled = 10
	}
	if c.StateFresh <= 0 {
		c.StateFresh = time.Second
	}
	if c.StragglerWindow <= 0 {
		c.StragglerWindow = 15 * time.Second
	}
	if c.StragglerSettle <= 0 {
		c.StragglerSettle = 6 * time.Second
	}
	if c.RearmDelay <= 0 {
		c.RearmDelay = 30 * time.Second
	}
	if c.MinBaselineSamples <= 0 {
		c.MinBaselineSamples = 5
	}
	if c.BadWindows <= 0 {
		c.BadWindows = 3
	}
	if c.BadWindowSpan < c.BadWindows {
		c.BadWindowSpan = c.BadWindows + 2
	}
	if c.FlowPressureFrac <= 0 {
		c.FlowPressureFrac = 0.6
	}
	if c.ChaseDepth <= 0 {
		c.ChaseDepth = 4
	}
	return c
}

// SampleRanks picks the monitored ranks: at least one per DP group (the
// gradient all-reduce spans DP groups, so any member observes a cascade),
// capped at max (§4.3). Deterministic: the first member of each group in
// order.
func SampleRanks(dpGroups []*topo.Group, max int) []topo.Rank {
	if max <= 0 {
		max = 10
	}
	var out []topo.Rank
	seen := make(map[topo.Rank]bool)
	for _, g := range dpGroups {
		if len(out) >= max {
			break
		}
		if len(g.Ranks) == 0 {
			continue
		}
		r := g.Ranks[0]
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// SampleWorld spreads max samples evenly over the world when no parallelism
// plan is known (the paper notes other schemes work because anomalies
// propagate).
func SampleWorld(world int, max int) []topo.Rank {
	if max <= 0 {
		max = 10
	}
	if world <= 0 {
		return nil
	}
	if max > world {
		max = world
	}
	out := make([]topo.Rank, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, topo.Rank(i*world/max))
	}
	return out
}
