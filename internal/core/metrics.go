package core

import (
	"time"

	"mycroft/internal/obs"
	"mycroft/internal/otrace"
)

// Metrics is the instrument set a Backend updates when one is attached with
// SetMetrics. Nil (the default) costs a pointer check per firing. The
// hosting layer owns registration and labeling; Triggers is keyed by
// TriggerKind.String() so the label set matches the wire enum.
type Metrics struct {
	Triggers   map[string]*obs.Counter // Algorithm 1 firings, by kind
	Reports    *obs.Counter            // Algorithm 2 verdicts delivered
	RCALatency *obs.Histogram          // wall-clock seconds per analysis
	ChainDepth *obs.Histogram          // causal-chain hops per report
}

// SetMetrics attaches (or with nil, detaches) an instrument set. Wire it up
// before Start, like the publisher.
func (b *Backend) SetMetrics(m *Metrics) { b.metrics = m }

// SetTracer attaches (or with nil, detaches) a pipeline span tracer. Each
// trigger firing then opens an incident span tree — detect, rca and publish
// stages — that the hosting layer extends with fan-out, remediation and
// replication spans. Wire it up before Start, like the publisher.
func (b *Backend) SetTracer(t *otrace.Tracer) { b.spans = t }

// timedAnalysis runs one Algorithm 2 analysis under the RCA wall-clock
// histogram. Virtual time never moves inside fn, so wall clock is the only
// meaningful latency here. The rca span (0 when tracing is off) is recorded
// as the histogram observation's exemplar, linking the worst bucket hit to
// the concrete graph walk that caused it.
func (b *Backend) timedAnalysis(span otrace.SpanID, fn func() Report) Report {
	m := b.metrics
	if m == nil {
		return fn()
	}
	start := time.Now()
	rep := fn()
	m.RCALatency.ObserveExemplar(time.Since(start).Seconds(), uint64(span))
	return rep
}
