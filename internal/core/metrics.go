package core

import (
	"time"

	"mycroft/internal/obs"
)

// Metrics is the instrument set a Backend updates when one is attached with
// SetMetrics. Nil (the default) costs a pointer check per firing. The
// hosting layer owns registration and labeling; Triggers is keyed by
// TriggerKind.String() so the label set matches the wire enum.
type Metrics struct {
	Triggers   map[string]*obs.Counter // Algorithm 1 firings, by kind
	Reports    *obs.Counter            // Algorithm 2 verdicts delivered
	RCALatency *obs.Histogram          // wall-clock seconds per analysis
	ChainDepth *obs.Histogram          // causal-chain hops per report
}

// SetMetrics attaches (or with nil, detaches) an instrument set. Wire it up
// before Start, like the publisher.
func (b *Backend) SetMetrics(m *Metrics) { b.metrics = m }

// timedAnalysis runs one Algorithm 2 analysis under the RCA wall-clock
// histogram. Virtual time never moves inside fn, so wall clock is the only
// meaningful latency here.
func (b *Backend) timedAnalysis(fn func() Report) Report {
	m := b.metrics
	if m == nil {
		return fn()
	}
	start := time.Now()
	rep := fn()
	m.RCALatency.Observe(time.Since(start).Seconds())
	return rep
}
