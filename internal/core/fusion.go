package core

import (
	"fmt"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Modality names a diagnosis channel: where the evidence behind a verdict
// came from. The tracepoint channel is the paper's Coll-level trace pipeline;
// the log and perf channels diagnose without any tracepoints at all.
type Modality string

const (
	// ModalityTracepoint: the 112-byte Coll-level trace records (Algorithm 1/2).
	ModalityTracepoint Modality = "tracepoint"
	// ModalityLog: template-clustered training-log divergence (logdiag).
	ModalityLog Modality = "log"
	// ModalityPerf: black-box iteration-timing envelopes (perfdiag).
	ModalityPerf Modality = "perf"
)

// Modalities returns the valid channel set, in canonical order.
func Modalities() []Modality {
	return []Modality{ModalityTracepoint, ModalityLog, ModalityPerf}
}

// Vias for channel-sourced verdicts.
const (
	ViaLogTemplate  Via = "log-template"
	ViaPerfEnvelope Via = "perf-envelope"
)

// Evidence is one channel's contribution to a fused verdict.
type Evidence struct {
	Channel  Modality
	Rank     topo.Rank
	Category Category
	// Weight is the channel's prior reliability in (0,1): how much one
	// uncorroborated finding from it is worth.
	Weight float64
	// Score is the channel-native anomaly strength (divergence score,
	// envelope ratio, ...), informational.
	Score  float64
	At     sim.Time
	Detail string
	// Conflict marks evidence that points away from the fused suspect.
	Conflict bool
}

func (e Evidence) String() string {
	s := fmt.Sprintf("%s: rank %d %s (w=%.2f)", e.Channel, e.Rank, e.Category, e.Weight)
	if e.Conflict {
		s += " [conflict]"
	}
	return s
}

// Fusion outcomes, for metrics and assertions.
const (
	FusionSingle       = "single"
	FusionCorroborated = "corroborated"
	FusionConflicted   = "conflicted"
)

// FusionConfig tunes evidence fusion. Zero values take defaults.
type FusionConfig struct {
	// Window is how long channel evidence stays eligible for fusion.
	// Default 60 s.
	Window time.Duration
	// TracepointWeight, LogWeight, PerfWeight are the per-channel priors.
	// Defaults 0.75 / 0.6 / 0.5.
	TracepointWeight float64
	LogWeight        float64
	PerfWeight       float64
	// ConflictPenalty multiplies confidence when channels disagree on the
	// suspect. Default 0.6.
	ConflictPenalty float64
}

func (c FusionConfig) withDefaults() FusionConfig {
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.TracepointWeight <= 0 {
		c.TracepointWeight = 0.75
	}
	if c.LogWeight <= 0 {
		c.LogWeight = 0.6
	}
	if c.PerfWeight <= 0 {
		c.PerfWeight = 0.5
	}
	if c.ConflictPenalty <= 0 {
		c.ConflictPenalty = 0.6
	}
	return c
}

// ChannelWeight returns the configured prior for a channel.
func (c FusionConfig) ChannelWeight(m Modality) float64 {
	switch m {
	case ModalityLog:
		return c.LogWeight
	case ModalityPerf:
		return c.PerfWeight
	default:
		return c.TracepointWeight
	}
}

// Fusion merges evidence from the diagnosis channels into one verdict.
// Confidence follows noisy-OR over the distinct corroborating channels —
// independent channels agreeing on a suspect push confidence strictly above
// any single channel's prior — and takes a penalty when channels point at
// different ranks, with the dissenters attached and flagged rather than
// dropped.
type Fusion struct {
	cfg    FusionConfig
	recent []Evidence
}

// NewFusion builds a fusion state with the given config.
func NewFusion(cfg FusionConfig) *Fusion {
	return &Fusion{cfg: cfg.withDefaults()}
}

// Config returns the effective fusion configuration.
func (f *Fusion) Config() FusionConfig { return f.cfg }

// Observe records one channel finding for future corroboration. Only the
// freshest finding per (channel, rank) is kept.
func (f *Fusion) Observe(ev Evidence) {
	if ev.Weight <= 0 {
		ev.Weight = f.cfg.ChannelWeight(ev.Channel)
	}
	ev.Conflict = false
	kept := f.recent[:0]
	cut := ev.At.Add(-sim.Duration(f.cfg.Window))
	for _, e := range f.recent {
		if e.At < cut {
			continue
		}
		if e.Channel == ev.Channel && e.Rank == ev.Rank {
			continue // superseded
		}
		kept = append(kept, e)
	}
	f.recent = append(kept, ev)
}

// compatibleCategory reports whether two verdict categories can describe the
// same underlying fault — exact match, either side unknown, or both on the
// network path (a NIC failure reads as send-path from traces and as degrade
// from coarser channels).
func compatibleCategory(a, b Category) bool {
	if a == b || a == CatUnknown || b == CatUnknown {
		return true
	}
	netish := func(c Category) bool {
		return c == CatNetworkSendPath || c == CatNetworkDegrade
	}
	if netish(a) && netish(b) {
		return true
	}
	// A straggler verdict is compatible with any hardware degradation — slow
	// hardware is what makes a straggler.
	slowish := func(c Category) bool {
		return c == CatComputeStraggler || c == CatPCIeDegrade || c == CatNetworkDegrade || c == CatGPUHang
	}
	return slowish(a) && slowish(b)
}

// Finalize fuses the in-window evidence into rep: own is the delivering
// channel's evidence (always attached first), corroborating channels lift
// confidence by noisy-OR, dissenting channels attach flagged and penalize
// it. Returns the fusion outcome (FusionSingle/Corroborated/Conflicted).
func (f *Fusion) Finalize(rep *Report, own Evidence, now sim.Time) string {
	if own.Weight <= 0 {
		own.Weight = f.cfg.ChannelWeight(own.Channel)
	}
	own.Conflict = false
	evs := []Evidence{own}
	cut := now.Add(-sim.Duration(f.cfg.Window))
	corroborated, conflicted := false, false
	disbelief := 1 - own.Weight
	for _, e := range f.recent {
		if e.At < cut || e.Channel == own.Channel {
			continue
		}
		if e.Rank == rep.Suspect && compatibleCategory(e.Category, rep.Category) {
			corroborated = true
			disbelief *= 1 - e.Weight
			evs = append(evs, e)
		} else if e.Rank != rep.Suspect {
			conflicted = true
			e.Conflict = true
			evs = append(evs, e)
		}
	}
	confidence := 1 - disbelief
	outcome := FusionSingle
	if corroborated {
		outcome = FusionCorroborated
	}
	if conflicted {
		outcome = FusionConflicted
		confidence *= f.cfg.ConflictPenalty
	}
	rep.Evidence = evs
	rep.Confidence = confidence
	return outcome
}

// FusionOutcome classifies a fused report by its attached evidence: any
// flagged dissenter makes it conflicted, two or more agreeing channels make
// it corroborated, else single.
func (r Report) FusionOutcome() string {
	agree := 0
	for _, e := range r.Evidence {
		if e.Conflict {
			return FusionConflicted
		}
		agree++
	}
	if agree >= 2 {
		return FusionCorroborated
	}
	return FusionSingle
}

// HasEvidence reports whether a report carries evidence from channel m
// (non-conflicting).
func (r Report) HasEvidence(m Modality) bool {
	for _, e := range r.Evidence {
		if e.Channel == m && !e.Conflict {
			return true
		}
	}
	return false
}

// LogAnomaly is the payload of an EventLogAnomaly: one channel finding,
// published as it happens (before, and independent of, any report it may
// escalate into). The log and perf channels share the shape; Channel
// distinguishes them, and Template doubles as the finding text for perf
// findings.
type LogAnomaly struct {
	Channel  Modality
	Rank     topo.Rank
	Ranks    []topo.Rank
	Template string
	Level    string
	Count    int
	Fleet    int
	Score    float64
	Category Category
	At       sim.Time
}

func (a LogAnomaly) String() string {
	return fmt.Sprintf("[%v] %s anomaly: %q on rank %d (score %.2f) → %s",
		a.At, a.Channel, a.Template, a.Rank, a.Score, a.Category)
}
