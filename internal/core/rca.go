package core

import (
	"fmt"
	"sort"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
	"mycroft/internal/trace"
)

// AnalyzeFailure is Algorithm 2's AnalyzeFailureRootCause: reconstruct the
// group's distributed state machine from last logs, find the rank that is
// behind (CheckMinOp) or, failing that, the rank whose flows stalled first
// (CheckMinData), and classify it with the RC table.
//
// When the suspect never launched the blocked op, the cause lives in another
// dependency: either outside the CCL entirely, or inside a *different*
// communicator the suspect is stuck on (nested parallelism groups). The
// analysis chases that dependency across the maintained dependency graph up
// to ChaseDepth, recording every hop in Report.Chain and the suspect's
// transitive blast radius in Report.Victims.
func (b *Backend) AnalyzeFailure(tr Trigger) Report {
	t := tr.At
	visited := map[uint64]bool{}
	commID := tr.CommID
	rep := Report{Trigger: tr, CommID: commID, Category: CatUnknown, Via: ViaNone, AnalyzedAt: t, Suspect: -1}

	for depth := 0; depth < b.cfg.ChaseDepth; depth++ {
		if commID == 0 || visited[commID] {
			break
		}
		visited[commID] = true
		suspect, via, cat, details := b.analyzeCommFailure(commID, t)
		rep.CommID = commID
		rep.Suspect = suspect
		rep.Via = via
		rep.Category = cat
		rep.Details = details
		rep.Chain = append(rep.Chain, Hop{Comm: commID, Suspect: suspect, Via: via})
		if suspect < 0 {
			break
		}
		rep.SuspectIP, _ = b.db.IPOf(suspect)
		if cat != CatNotLaunched {
			break
		}
		// The suspect never joined this comm's op. If the graph shows it
		// visibly stuck inside another communicator, the true root cause is
		// there.
		next, ok := b.graph.StuckComm(suspect, commID, t.Add(-b.cfg.Window), t)
		if !ok {
			break // outside the CCL: hand off to py-spy / Flight Recorder
		}
		rep.Chain[len(rep.Chain)-1].Edge = b.graph.HopKind(suspect, next)
		commID = next
	}
	b.fillVictims(&rep)
	rep.AnalyzedAt = b.eng.Now()
	return rep
}

// fillVictims attaches the suspect's blast radius from the dependency graph.
func (b *Backend) fillVictims(rep *Report) {
	if rep.Suspect < 0 {
		return
	}
	rep.Victims = b.graph.Victims(rep.Suspect)
}

// analyzeCommFailure analyzes one communicator's stuck state.
func (b *Backend) analyzeCommFailure(commID uint64, t sim.Time) (topo.Rank, Via, Category, string) {
	members := b.db.RanksOfComm(commID)
	if len(members) == 0 {
		return -1, ViaNone, CatUnknown, fmt.Sprintf("no members known for comm %d", commID)
	}

	// AcquireGroupLastLog: the latest record per member for this comm.
	last := make(map[topo.Rank]trace.Record, len(members))
	var maxSeq uint64
	haveFresh := false
	freshCut := t.Add(-b.cfg.StateFresh)
	for _, r := range members {
		rec, ok := b.db.LastRecord(r, commID, t)
		if !ok {
			continue
		}
		last[r] = rec
		if rec.OpSeq > maxSeq {
			maxSeq = rec.OpSeq
		}
		if rec.Kind == trace.KindState && rec.Time >= freshCut {
			haveFresh = true
		}
	}
	if len(last) == 0 {
		return -1, ViaNone, CatUnknown, fmt.Sprintf("no logs for comm %d", commID)
	}

	// Silent proxy: a member whose logging stopped mid-op (its last record
	// is a stale state log) while peers still log. The absence of logs is
	// the signal (§4.2).
	if haveFresh {
		for _, r := range members {
			rec, ok := last[r]
			if ok && rec.Kind == trace.KindState && rec.Time < freshCut {
				return r, ViaSilentProxy, CatProxyCrash,
					fmt.Sprintf("state logs stopped at %v mid-op seq %d while peers keep logging", rec.Time, rec.OpSeq)
			}
		}
	}

	// CheckMinOp: a member strictly behind in op sequence.
	minRank := topo.Rank(-1)
	minSeq := maxSeq
	for _, r := range members {
		rec, ok := last[r]
		seq := rec.OpSeq
		if !ok {
			seq = 0 // never logged: maximally behind
		}
		if seq < minSeq || (!ok && minSeq > 0) {
			minSeq = seq
			minRank = r
		}
	}
	if minRank >= 0 && minSeq < maxSeq {
		rec, ok := last[minRank]
		if ok && rec.Kind == trace.KindState {
			// Behind and visibly stuck mid-op inside this comm.
			cat, detail := b.checkRCTable(minRank, commID, t)
			return minRank, ViaMinOp, cat, fmt.Sprintf("lagging at op seq %d < %d; %s", minSeq, maxSeq, detail)
		}
		// Cleanly finished an earlier op and never launched the next.
		return minRank, ViaMinOp, CatNotLaunched,
			fmt.Sprintf("last log is completion of seq %d while peers reached %d", minSeq, maxSeq)
	}

	// CheckMinData: everyone is on the same op; the root cause stalled
	// first, so it carries the maximum stuck time across its flows.
	suspect := topo.Rank(-1)
	var worst int64 = -1
	for _, r := range members {
		for _, st := range b.db.LastStatePerChannel(r, commID, t, 2*b.cfg.Window) {
			if st.TotalChunks == 0 {
				continue
			}
			if st.StuckNs > worst {
				worst = st.StuckNs
				suspect = r
			}
		}
	}
	if suspect < 0 {
		return -1, ViaNone, CatUnknown, "no per-channel state available"
	}
	cat, detail := b.checkRCTable(suspect, commID, t)
	return suspect, ViaMinData, cat, detail
}

// checkRCTable classifies a suspect rank from its freshest per-channel state
// logs — the paper's CheckRCTable.
func (b *Backend) checkRCTable(r topo.Rank, commID uint64, t sim.Time) (Category, string) {
	chans := b.db.LastStatePerChannel(r, commID, t, 2*b.cfg.Window)
	// Iterate channels in id order: map order would break StuckNs ties
	// nondeterministically, and runs must reproduce bit-for-bit.
	ids := make([]int32, 0, len(chans))
	for ch := range chans {
		ids = append(ids, ch)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var pick *trace.Record
	for _, ch := range ids {
		rec := chans[ch]
		if rec.TotalChunks == 0 {
			continue
		}
		if pick == nil || rec.StuckNs > pick.StuckNs {
			pick = &rec
		}
	}
	if pick == nil {
		return CatUnknown, "no active flows in state logs"
	}
	outstanding := int64(pick.RDMATransmitted) - int64(pick.RDMADone)
	fill := int64(pick.GPUReady) - int64(pick.RDMATransmitted)
	detail := fmt.Sprintf("ch %d: chunks %d/%d/%d of %d, stuck %v",
		pick.Channel, pick.GPUReady, pick.RDMATransmitted, pick.RDMADone, pick.TotalChunks, sim.Duration(pick.StuckNs))
	switch {
	case outstanding > 0:
		// WRs handed to the NIC are not completing: local NIC or link.
		return CatNetworkSendPath, detail + " — outstanding WRs frozen at NIC"
	case fill == 0 && pick.GPUReady < pick.TotalChunks:
		// Send path drained everything; the GPU stopped feeding.
		return CatGPUHang, detail + " — staging stopped, send path drained"
	case pick.GPUReady == pick.TotalChunks && pick.RDMADone == pick.TotalChunks:
		return CatUnknown, detail + " — all local work done, waiting on peers"
	default:
		return CatUnknown, detail + " — dependency-starved (victim pattern)"
	}
}

// AnalyzeStraggler is Algorithm 2's AnalyzeStragglerRootCause plus the
// flow-pressure analysis that chunk-level tracing makes possible: first look
// for a rank with constant late starts (compute-side straggler); failing
// that, find the flow whose NIC queue stays occupied (network degrade) or
// whose staging is the bottleneck (PCIe degrade). Cross-communicator chases
// walk the dependency graph and are recorded in Report.Chain.
func (b *Backend) AnalyzeStraggler(tr Trigger) Report {
	rep := b.analyzeStragglerComm(tr, tr.CommID, map[uint64]bool{}, nil)
	b.fillVictims(&rep)
	rep.AnalyzedAt = b.eng.Now()
	return rep
}

// analyzeStragglerComm analyzes one communicator. chain carries the hops
// already walked; each recursion level appends its own hop, so the returned
// report's Chain reads trigger comm first, verdict comm last. chain is
// always appended through appendHop (which copies), so sibling speculative
// chases never alias one another's backing array.
func (b *Backend) analyzeStragglerComm(tr Trigger, commID uint64, visited map[uint64]bool, chain []Hop) Report {
	t := tr.At
	visited[commID] = true
	rep := Report{Trigger: tr, CommID: commID, Category: CatUnknown, Via: ViaNone, AnalyzedAt: t, Suspect: -1}
	group := b.db.QueryGroup(commID, t.Add(-b.cfg.StragglerWindow), t)
	if len(group) == 0 {
		rep.Details = "no group logs in straggler window"
		rep.Chain = appendHop(chain, Hop{Comm: commID, Suspect: -1, Via: ViaNone})
		rep.AnalyzedAt = b.eng.Now()
		return rep
	}

	// Late-start analysis per op seq. Completion logs carry the rank-local
	// start; state logs do too, which lets the analysis see ops still in
	// flight — a heavy straggler's current op counts before it finishes.
	type se struct{ start, end sim.Time }
	bySeq := make(map[uint64]map[topo.Rank]se)
	for r, recs := range group {
		for _, rec := range recs {
			if rec.Start == 0 {
				continue
			}
			m := bySeq[rec.OpSeq]
			if m == nil {
				m = make(map[topo.Rank]se)
				bySeq[rec.OpSeq] = m
			}
			if prev, ok := m[r]; !ok || rec.Start < prev.start {
				m[r] = se{start: rec.Start, end: rec.End}
			}
		}
	}
	late := make(map[topo.Rank]int)
	type gapT struct{ from, to sim.Time }
	lastGap := make(map[topo.Rank]gapT) // most recent late gap per rank
	seqs := 0
	for _, m := range bySeq {
		if len(m) < 2 {
			continue
		}
		seqs++
		minStart := sim.Time(1<<63 - 1)
		for _, v := range m {
			if v.start < minStart {
				minStart = v.start
			}
		}
		for r, v := range m {
			if v.start.Sub(minStart) > b.cfg.StragglerLate {
				late[r]++
				if g, ok := lastGap[r]; !ok || v.start > g.to {
					lastGap[r] = gapT{from: minStart, to: v.start}
				}
			}
		}
	}
	// "Constant late starts" (Algorithm 2): at least LateCount late ops AND
	// a third of the observed ops — isolated skew from pipeline drift must
	// not convict a rank.
	lateNeed := b.cfg.LateCount
	if frac := seqs / 3; frac > lateNeed {
		lateNeed = frac
	}
	var lateRanks []topo.Rank
	for r, n := range late {
		if n >= lateNeed {
			lateRanks = append(lateRanks, r)
		}
	}
	if len(lateRanks) > 0 {
		// Order by late count, rank breaking ties: the slice is populated
		// from map iteration, so without the tie-break equal-count ranks
		// would flip between identical runs.
		sort.Slice(lateRanks, func(i, j int) bool {
			ni, nj := late[lateRanks[i]], late[lateRanks[j]]
			if ni != nj {
				return ni > nj
			}
			return lateRanks[i] < lateRanks[j]
		})
		r := lateRanks[0]
		// A rank that starts late because it is still INSIDE another
		// collective is a victim, not the cause: chase the dependency into
		// that communicator (nested parallelism groups, §3.1).
		if g, ok := lastGap[r]; ok && len(visited) < b.cfg.ChaseDepth {
			if busy, ok := b.graph.StuckCommDuring(r, g.from, g.to, commID); ok && !visited[busy] {
				hop := Hop{Comm: commID, Suspect: r, Via: ViaLateStart, Edge: b.graph.HopKind(r, busy)}
				return b.analyzeStragglerComm(tr, busy, visited, appendHop(chain, hop))
			}
		}
		rep.Suspect = r
		rep.SuspectIP, _ = b.db.IPOf(r)
		rep.Category = CatComputeStraggler
		rep.Via = ViaLateStart
		rep.Details = fmt.Sprintf("late start (> %v) in %d/%d ops", b.cfg.StragglerLate, late[r], seqs)
		rep.Chain = appendHop(chain, Hop{Comm: commID, Suspect: r, Via: ViaLateStart})
		rep.AnalyzedAt = b.eng.Now()
		return rep
	}
	if len(late) > 0 && len(visited) < b.cfg.ChaseDepth {
		// Sub-quorum lateness: not enough evidence to convict on this comm
		// (slow cadences yield few ops per window), but the latest late gap
		// still points at where the rank was held up — follow it.
		var r topo.Rank = -1
		best := 0
		for cand, n := range late {
			if n > best || (n == best && (r < 0 || cand < r)) {
				best, r = n, cand
			}
		}
		if g, ok := lastGap[r]; ok {
			if busy, ok := b.graph.StuckCommDuring(r, g.from, g.to, commID); ok && !visited[busy] {
				hop := Hop{Comm: commID, Suspect: r, Via: ViaLateStart, Edge: b.graph.HopKind(r, busy)}
				if sub := b.analyzeStragglerComm(tr, busy, visited, appendHop(chain, hop)); sub.Suspect >= 0 {
					return sub
				}
			}
		}
	}

	// Flow-pressure analysis over state logs: which rank's flows are
	// NIC-bound (outstanding WRs) or staging-bound (empty buffer)?
	type pressure struct{ snaps, nicBound, gpuBound int }
	per := make(map[topo.Rank]*pressure)
	for r, recs := range group {
		p := &pressure{}
		per[r] = p
		for _, rec := range recs {
			if rec.Kind != trace.KindState || rec.TotalChunks == 0 {
				continue
			}
			p.snaps++
			if rec.RDMATransmitted > rec.RDMADone {
				p.nicBound++
			}
			if rec.GPUReady == rec.RDMATransmitted && rec.GPUReady < rec.TotalChunks {
				p.gpuBound++
			}
		}
	}
	best := topo.Rank(-1)
	bestFrac := 0.0
	for r, p := range per {
		if p.snaps == 0 {
			continue
		}
		f := float64(p.nicBound) / float64(p.snaps)
		if f > bestFrac || (f == bestFrac && best >= 0 && r < best) {
			bestFrac, best = f, r
		}
	}
	if best >= 0 && bestFrac >= b.cfg.FlowPressureFrac {
		rep.Suspect = best
		rep.SuspectIP, _ = b.db.IPOf(best)
		rep.Category = CatNetworkDegrade
		rep.Via = ViaFlowPressure
		rep.Details = fmt.Sprintf("NIC queue occupied in %.0f%% of state snapshots", 100*bestFrac)
		rep.Chain = appendHop(chain, Hop{Comm: commID, Suspect: best, Via: ViaFlowPressure})
		rep.AnalyzedAt = b.eng.Now()
		return rep
	}
	best, bestFrac = -1, 0
	for r, p := range per {
		if p.snaps == 0 {
			continue
		}
		f := float64(p.gpuBound) / float64(p.snaps)
		if f > bestFrac || (f == bestFrac && best >= 0 && r < best) {
			bestFrac, best = f, r
		}
	}
	if best >= 0 && bestFrac >= b.cfg.FlowPressureFrac {
		rep.Suspect = best
		rep.SuspectIP, _ = b.db.IPOf(best)
		rep.Category = CatPCIeDegrade
		rep.Via = ViaFlowPressure
		rep.Details = fmt.Sprintf("staging-bound in %.0f%% of state snapshots", 100*bestFrac)
		rep.Chain = appendHop(chain, Hop{Comm: commID, Suspect: best, Via: ViaFlowPressure})
		rep.AnalyzedAt = b.eng.Now()
		return rep
	}
	rep.Details = "no straggler pattern matched"
	rep.Chain = appendHop(chain, Hop{Comm: commID, Suspect: -1, Via: ViaNone})
	rep.AnalyzedAt = b.eng.Now()
	return rep
}

// appendHop copies-then-appends so recursive chases never share a chain's
// backing array.
func appendHop(chain []Hop, h Hop) []Hop {
	out := make([]Hop, len(chain), len(chain)+1)
	copy(out, chain)
	return append(out, h)
}
