package core

import (
	"fmt"

	"mycroft/internal/sim"
)

// EventKind discriminates what a backend publishes.
type EventKind uint8

const (
	// EventTrigger carries an Algorithm 1 firing.
	EventTrigger EventKind = iota + 1
	// EventReport carries an Algorithm 2 verdict.
	EventReport
	// EventLifecycle marks a backend state change (Phase names it).
	EventLifecycle
	// EventAction marks a remediation-loop transition (an attempt applied or
	// resolved). The backend never emits it; the service layer's remediation
	// engine does, and it is declared here so every event consumer shares one
	// kind space.
	EventAction
	// EventHealth marks a job health transition (healthy → degraded → stale
	// and back). Like EventAction it is service-layer: the heartbeat monitor
	// emits it when a job's ingest watermark goes quiet past the staleness
	// threshold.
	EventHealth
	// EventLogAnomaly carries a channel finding (log-template divergence or
	// timing-envelope breach) the moment a diagnosis channel spots it —
	// before, and independent of, any report it escalates into. Service-layer,
	// like EventAction and EventHealth.
	EventLogAnomaly
)

func (k EventKind) String() string {
	switch k {
	case EventTrigger:
		return "trigger"
	case EventReport:
		return "report"
	case EventLifecycle:
		return "lifecycle"
	case EventAction:
		return "action"
	case EventHealth:
		return "health"
	case EventLogAnomaly:
		return "log-anomaly"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Lifecycle phases.
const (
	PhaseBackendStarted = "backend-started"
	PhaseBackendStopped = "backend-stopped"
)

// Event is one published backend observation. Exactly one of Trigger,
// Report or Phase is set, matching Kind.
type Event struct {
	Kind    EventKind
	At      sim.Time
	Trigger *Trigger
	Report  *Report
	Phase   string
	// LogAnomaly is set for EventLogAnomaly (channel findings).
	LogAnomaly *LogAnomaly
}

// SetPublisher routes every subsequent event (triggers, reports, lifecycle
// changes) to fn. The multi-job service layer installs one publisher per
// hosted job; the legacy OnTrigger/OnReport callbacks keep firing alongside.
func (b *Backend) SetPublisher(fn func(Event)) { b.publish = fn }

// emit fans an event out to the publisher and the deprecated callbacks.
func (b *Backend) emit(ev Event) {
	if b.publish != nil {
		b.publish(ev)
	}
	switch ev.Kind {
	case EventTrigger:
		if b.OnTrigger != nil {
			b.OnTrigger(*ev.Trigger)
		}
	case EventReport:
		if b.OnReport != nil {
			b.OnReport(*ev.Report)
		}
	}
}
