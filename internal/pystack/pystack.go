// Package pystack is the py-spy integration of §6.2: a sampling view of each
// rank's "Python" call stack. The training simulator updates each rank's
// current frame as its script advances; on a Mycroft trigger the orchestrator
// dumps all stacks, groups identical ones onto a topology grid, and flags
// outliers — stuck threads have different stacks from the rest and stand out.
package pystack

import (
	"fmt"
	"sort"
	"strings"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Frame labels used by the training simulator. Free-form strings are
// accepted; these constants cover the states the analyzer knows about.
const (
	FrameDataloader = "dataloader.next"
	FrameForward    = "model.forward"
	FrameBackward   = "model.backward"
	FrameCollWait   = "torch.distributed.all_reduce.wait"
	FrameCheckpoint = "checkpoint.save"
	FrameIdle       = "idle"
)

// Sampler tracks per-rank current stacks.
type Sampler struct {
	eng    *sim.Engine
	stacks map[topo.Rank]string
	since  map[topo.Rank]sim.Time
}

// New creates an empty sampler.
func New(eng *sim.Engine) *Sampler {
	return &Sampler{eng: eng, stacks: make(map[topo.Rank]string), since: make(map[topo.Rank]sim.Time)}
}

// Set records rank r's current top frame (called by the training loop as a
// real process would naturally move between frames).
func (s *Sampler) Set(r topo.Rank, frame string) {
	if s.stacks[r] != frame {
		s.stacks[r] = frame
		s.since[r] = s.eng.Now()
	}
}

// Stack is one rank's sampled call stack.
type Stack struct {
	Rank  topo.Rank
	Frame string
	Since sim.Time // when the rank entered this frame
}

// Dump samples every tracked rank, as the automatic dump on a Mycroft
// trigger does.
func (s *Sampler) Dump() []Stack {
	out := make([]Stack, 0, len(s.stacks))
	for r, f := range s.stacks {
		out = append(out, Stack{Rank: r, Frame: f, Since: s.since[r]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Group is a set of ranks sharing a call stack — one color on the grid.
type Group struct {
	Frame string
	Ranks []topo.Rank
}

// Analysis is the grouped grid view plus outlier detection.
type Analysis struct {
	Groups   []Group // largest first
	Outliers []Stack // ranks outside the dominant group
}

// Analyze groups identical stacks and flags the minority groups, mirroring
// the colored-grid troubleshooting view of §6.2.
func Analyze(stacks []Stack) Analysis {
	byFrame := make(map[string][]topo.Rank)
	for _, st := range stacks {
		byFrame[st.Frame] = append(byFrame[st.Frame], st.Rank)
	}
	var groups []Group
	for f, ranks := range byFrame {
		sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
		groups = append(groups, Group{Frame: f, Ranks: ranks})
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].Ranks) != len(groups[j].Ranks) {
			return len(groups[i].Ranks) > len(groups[j].Ranks)
		}
		return groups[i].Frame < groups[j].Frame
	})
	a := Analysis{Groups: groups}
	if len(groups) > 1 {
		dominant := groups[0].Frame
		for _, st := range stacks {
			if st.Frame != dominant {
				a.Outliers = append(a.Outliers, st)
			}
		}
		sort.Slice(a.Outliers, func(i, j int) bool { return a.Outliers[i].Rank < a.Outliers[j].Rank })
	}
	return a
}

// StuckInDataPath reports ranks stuck in dataloader or checkpoint frames —
// the cases py-spy triage resolves without touching the CCL.
func (a Analysis) StuckInDataPath() []Stack {
	var out []Stack
	for _, st := range a.Outliers {
		if strings.HasPrefix(st.Frame, "dataloader") || strings.HasPrefix(st.Frame, "checkpoint") {
			out = append(out, st)
		}
	}
	return out
}

// Grid renders the colored topology grid as text: one cell per rank, one
// letter per stack group.
func (a Analysis) Grid(perRow int) string {
	if perRow <= 0 {
		perRow = 8
	}
	letter := make(map[string]byte)
	for i, g := range a.Groups {
		letter[g.Frame] = byte('A' + i%26)
	}
	cells := make(map[topo.Rank]byte)
	maxRank := topo.Rank(-1)
	for _, g := range a.Groups {
		for _, r := range g.Ranks {
			cells[r] = letter[g.Frame]
			if r > maxRank {
				maxRank = r
			}
		}
	}
	var b strings.Builder
	for r := topo.Rank(0); r <= maxRank; r++ {
		if c, ok := cells[r]; ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('.')
		}
		if (int(r)+1)%perRow == 0 {
			b.WriteByte('\n')
		}
	}
	var legend []string
	for _, g := range a.Groups {
		legend = append(legend, fmt.Sprintf("%c=%s(%d)", letter[g.Frame], g.Frame, len(g.Ranks)))
	}
	return strings.TrimRight(b.String(), "\n") + "\n" + strings.Join(legend, " ")
}
