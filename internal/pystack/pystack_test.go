package pystack

import (
	"strings"
	"testing"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

func TestSetAndDump(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.Set(0, FrameForward)
	eng.RunFor(time.Second)
	s.Set(1, FrameDataloader)
	s.Set(0, FrameForward) // no-op: Since must not reset
	stacks := s.Dump()
	if len(stacks) != 2 {
		t.Fatalf("dumped %d stacks", len(stacks))
	}
	if stacks[0].Rank != 0 || stacks[0].Frame != FrameForward || stacks[0].Since != 0 {
		t.Fatalf("stack 0 = %+v", stacks[0])
	}
	if stacks[1].Since != sim.Time(time.Second) {
		t.Fatalf("stack 1 since = %v", stacks[1].Since)
	}
}

func TestSinceResetsOnChange(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng)
	s.Set(0, FrameForward)
	eng.RunFor(time.Second)
	s.Set(0, FrameBackward)
	if got := s.Dump()[0].Since; got != sim.Time(time.Second) {
		t.Fatalf("since = %v after frame change", got)
	}
}

func TestAnalyzeFindsOutliers(t *testing.T) {
	var stacks []Stack
	for r := topo.Rank(0); r < 8; r++ {
		f := FrameCollWait
		if r == 5 {
			f = FrameDataloader
		}
		stacks = append(stacks, Stack{Rank: r, Frame: f})
	}
	a := Analyze(stacks)
	if len(a.Groups) != 2 || a.Groups[0].Frame != FrameCollWait || len(a.Groups[0].Ranks) != 7 {
		t.Fatalf("groups = %+v", a.Groups)
	}
	if len(a.Outliers) != 1 || a.Outliers[0].Rank != 5 {
		t.Fatalf("outliers = %+v", a.Outliers)
	}
	stuck := a.StuckInDataPath()
	if len(stuck) != 1 || stuck[0].Rank != 5 {
		t.Fatalf("data-path stuck = %+v", stuck)
	}
}

func TestAnalyzeUniformNoOutliers(t *testing.T) {
	var stacks []Stack
	for r := topo.Rank(0); r < 4; r++ {
		stacks = append(stacks, Stack{Rank: r, Frame: FrameCollWait})
	}
	a := Analyze(stacks)
	if len(a.Groups) != 1 || len(a.Outliers) != 0 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.StuckInDataPath() != nil {
		t.Fatal("uniform stacks reported data-path stuck")
	}
}

func TestCheckpointCountsAsDataPath(t *testing.T) {
	a := Analyze([]Stack{
		{Rank: 0, Frame: FrameCollWait}, {Rank: 1, Frame: FrameCollWait},
		{Rank: 2, Frame: FrameCheckpoint},
	})
	if got := a.StuckInDataPath(); len(got) != 1 || got[0].Rank != 2 {
		t.Fatalf("checkpoint outlier = %+v", got)
	}
}

func TestGridRendering(t *testing.T) {
	var stacks []Stack
	for r := topo.Rank(0); r < 16; r++ {
		f := FrameCollWait
		if r == 9 {
			f = FrameDataloader
		}
		stacks = append(stacks, Stack{Rank: r, Frame: f})
	}
	grid := Analyze(stacks).Grid(8)
	lines := strings.Split(grid, "\n")
	if len(lines) != 3 { // two rows + legend
		t.Fatalf("grid = %q", grid)
	}
	if lines[0] != "AAAAAAAA" {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if lines[1] != "ABAAAAAA" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "B=dataloader.next(1)") {
		t.Fatalf("legend = %q", lines[2])
	}
	if Analyze(stacks).Grid(0) == "" {
		t.Fatal("default perRow failed")
	}
}
