// Package rdma simulates the RDMA data plane that NCCL-style collective
// communication rides on: RNICs with finite bandwidth, queue pairs (QPs)
// between them, work requests (WRs) and completion-queue entries (CQEs).
//
// The model is intentionally at the granularity Mycroft observes (§3 of the
// paper): per-flow (QP) transmission progress and completion signals. It
// reproduces the fault signatures that matter for root-cause analysis:
//
//   - NIC down: WRs are accepted but neither deliver nor complete until the
//     NIC recovers (gray failure — nothing errors out).
//   - bandwidth degradation: transmissions serialize at a fraction of the
//     nominal rate.
//   - packet loss: goodput inflates by the retransmission factor.
//   - link flap: a timed down/up cycle.
//
// All state lives on a sim.Engine; the package is deterministic.
package rdma

import (
	"fmt"
	"time"

	"mycroft/internal/sim"
)

// NICID identifies an RNIC.
type NICID int

// Counters aggregates per-NIC statistics, exposed for RDMA-level tracers
// (the Aegis-style baseline) and tests.
type Counters struct {
	WRsPosted    uint64
	WRsCompleted uint64
	BytesSent    uint64
	BytesAcked   uint64
}

// NIC is a simulated RNIC. A NIC serializes its outbound transmissions:
// concurrent WRs queue behind one another, which is how congestion between
// flows sharing a NIC arises.
type NIC struct {
	eng  *sim.Engine
	id   NICID
	name string

	// Nominal performance.
	bw      float64       // bytes/second at full health
	propLat time.Duration // one-way propagation latency
	wrSetup time.Duration // per-WR doorbell/DMA setup cost

	// Mutable health state (fault hooks).
	down     bool
	bwScale  float64
	loss     float64 // packet loss probability in [0, 1)
	wireLoss bool    // bytes leave the NIC but never arrive nor ack

	nextFree sim.Time // transmit serialization pointer
	pending  []*wr    // WRs accepted while down

	counters Counters
}

// NICConfig sets a NIC's nominal characteristics.
type NICConfig struct {
	Bandwidth float64       // bytes/second (e.g. 50e9 for 400 Gbps)
	PropLat   time.Duration // one-way latency
	WRSetup   time.Duration // fixed per-WR cost
}

// DefaultNIC is a 400 Gbps RNIC with 5 µs one-way latency, matching the
// paper's testbed NICs.
func DefaultNIC() NICConfig {
	return NICConfig{Bandwidth: 50e9, PropLat: 5 * time.Microsecond, WRSetup: 1 * time.Microsecond}
}

// NewNIC creates a NIC on the engine.
func NewNIC(eng *sim.Engine, id NICID, name string, cfg NICConfig) *NIC {
	if cfg.Bandwidth <= 0 {
		panic(fmt.Sprintf("rdma: non-positive bandwidth %v", cfg.Bandwidth))
	}
	return &NIC{
		eng: eng, id: id, name: name,
		bw: cfg.Bandwidth, propLat: cfg.PropLat, wrSetup: cfg.WRSetup,
		bwScale: 1,
	}
}

// ID returns the NIC id.
func (n *NIC) ID() NICID { return n.id }

// Name returns the NIC's human-readable name.
func (n *NIC) Name() string { return n.name }

// Counters returns a snapshot of the NIC's counters.
func (n *NIC) Counters() Counters { return n.counters }

// Down reports whether the NIC is currently down.
func (n *NIC) Down() bool { return n.down }

// BandwidthScale returns the current throttle factor.
func (n *NIC) BandwidthScale() float64 { return n.bwScale }

// SetDown takes the NIC down or brings it back up. Recovering replays WRs
// accepted while down, in order.
func (n *NIC) SetDown(down bool) {
	if n.down == down {
		return
	}
	n.down = down
	if !down {
		replay := n.pending
		n.pending = nil
		if n.nextFree < n.eng.Now() {
			n.nextFree = n.eng.Now()
		}
		for _, w := range replay {
			n.transmit(w)
		}
	}
}

// FlapFor takes the NIC down now and back up after d.
func (n *NIC) FlapFor(d time.Duration) {
	n.SetDown(true)
	n.eng.After(d, func() { n.SetDown(false) })
}

// SetBandwidthScale throttles (or restores) the NIC. scale must be > 0.
func (n *NIC) SetBandwidthScale(scale float64) {
	if scale <= 0 {
		panic(fmt.Sprintf("rdma: non-positive bandwidth scale %v", scale))
	}
	n.bwScale = scale
}

// SetLossRate sets the packet loss probability (goodput inflates by
// 1/(1-loss), modelling go-back-N retransmission cost).
func (n *NIC) SetLossRate(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("rdma: loss rate %v out of [0,1)", p))
	}
	n.loss = p
}

// SetWireLoss makes transmissions black-hole after leaving the NIC: the
// sender observes normal transmit progress (RDMA_transmitted advances) but
// data never delivers and no CQE ever arrives (RDMA_done stalls). This is the
// link/remote-failure signature of the root-cause table, distinct from a
// local NIC-down where nothing transmits at all.
func (n *NIC) SetWireLoss(on bool) { n.wireLoss = on }

// WireLoss reports whether the black-hole fault is active.
func (n *NIC) WireLoss() bool { return n.wireLoss }

// SendCallbacks carries the three observation points of one transfer, in
// temporal order. Any may be nil.
type SendCallbacks struct {
	// OnTransmit fires when the sender NIC finished pushing the bytes onto
	// the wire (this is what the proxy's RDMA_transmitted counter observes).
	OnTransmit func()
	// OnDeliver fires when the data lands at the receiver.
	OnDeliver func()
	// OnCQE fires when the sender polls the completion-queue entry.
	OnCQE func()
}

// wr is an in-flight work request.
type wr struct {
	qp    *QP
	bytes int64
	cb    SendCallbacks
}

// QP is a queue pair: a unidirectional flow from a source NIC to a
// destination NIC (NCCL opens one or more QPs per channel per peer).
type QP struct {
	id   int
	src  *NIC
	dst  *NIC
	name string

	posted    uint64
	completed uint64
	bytesSent uint64
}

// NewQP connects src to dst. The id is carried into trace metadata (QP_id in
// Table 2).
func NewQP(id int, src, dst *NIC) *QP {
	return &QP{id: id, src: src, dst: dst, name: fmt.Sprintf("qp%d(%s->%s)", id, src.name, dst.name)}
}

// ID returns the QP id.
func (q *QP) ID() int { return q.id }

// Src returns the source NIC.
func (q *QP) Src() *NIC { return q.src }

// Dst returns the destination NIC.
func (q *QP) Dst() *NIC { return q.dst }

// Posted returns the number of WRs posted on this QP.
func (q *QP) Posted() uint64 { return q.posted }

// Completed returns the number of CQEs delivered for this QP.
func (q *QP) Completed() uint64 { return q.completed }

// BytesSent returns the bytes for which transmission finished.
func (q *QP) BytesSent() uint64 { return q.bytesSent }

func (q *QP) String() string { return q.name }

// Post posts an RDMA write of n bytes with full observability callbacks.
//
// If the source NIC is down the WR is queued and will transmit after
// recovery — exactly the silent-stall gray failure of §2.1: the post
// "succeeds" and nothing errors out.
func (q *QP) Post(n int64, cb SendCallbacks) {
	if n < 0 {
		panic(fmt.Sprintf("rdma: negative write size %d", n))
	}
	q.posted++
	q.src.counters.WRsPosted++
	w := &wr{qp: q, bytes: n, cb: cb}
	if q.src.down {
		q.src.pending = append(q.src.pending, w)
		return
	}
	q.src.transmit(w)
}

// PostWrite is a convenience wrapper over Post for callers that do not need
// the transmit-stage callback.
func (q *QP) PostWrite(n int64, onDelivered, onCQE func()) {
	q.Post(n, SendCallbacks{OnDeliver: onDelivered, OnCQE: onCQE})
}

// transmit serializes w on the NIC and schedules transmit/delivery/CQE.
func (n *NIC) transmit(w *wr) {
	start := n.nextFree
	if now := n.eng.Now(); start < now {
		start = now
	}
	start = start.Add(n.wrSetup)
	goodput := n.bw * n.bwScale * (1 - n.loss)
	dur := time.Duration(float64(w.bytes) / goodput * float64(time.Second))
	finish := start.Add(dur)
	n.nextFree = finish
	blackHole := n.wireLoss

	n.eng.At(finish, func() {
		// Transmission finished at the sender; bytes leave the wire propLat later.
		n.counters.BytesSent += uint64(w.bytes)
		w.qp.bytesSent += uint64(w.bytes)
		if w.cb.OnTransmit != nil {
			w.cb.OnTransmit()
		}
	})
	if blackHole {
		return // data vanishes on the wire: no delivery, no CQE
	}
	n.eng.At(finish.Add(n.propLat), func() {
		if w.cb.OnDeliver != nil {
			w.cb.OnDeliver()
		}
	})
	n.eng.At(finish.Add(2*n.propLat), func() {
		n.counters.WRsCompleted++
		n.counters.BytesAcked += uint64(w.bytes)
		w.qp.completed++
		if w.cb.OnCQE != nil {
			w.cb.OnCQE()
		}
	})
}

// Link is an abstract point-to-point transport. RDMA QPs and intra-node
// NVLink paths both satisfy it, so the CCL can pipeline over either.
type Link interface {
	// Send moves n bytes, reporting the transmit/deliver/CQE stages.
	Send(n int64, cb SendCallbacks)
	// Describe returns trace metadata for this flow.
	Describe() (qpID int, kind string)
}

// qpLink adapts QP to Link.
type qpLink struct{ qp *QP }

// AsLink exposes the QP as a generic Link.
func (q *QP) AsLink() Link { return qpLink{q} }

func (l qpLink) Send(n int64, cb SendCallbacks) { l.qp.Post(n, cb) }
func (l qpLink) Describe() (int, string)        { return l.qp.id, "rdma" }

// NVLink is a dedicated intra-node path between two GPUs: full bandwidth per
// pair, no NIC contention. It shares the QP fault hooks shape where relevant
// (an NVLink can degrade too, though the paper's faults are NIC/GPU-side).
type NVLink struct {
	eng      *sim.Engine
	id       int
	bw       float64
	lat      time.Duration
	nextFree sim.Time
	scale    float64
}

// NewNVLink creates an intra-node link (default A100-class: 200 GB/s,
// 1 µs latency).
func NewNVLink(eng *sim.Engine, id int, bw float64, lat time.Duration) *NVLink {
	if bw <= 0 {
		panic("rdma: non-positive nvlink bandwidth")
	}
	return &NVLink{eng: eng, id: id, bw: bw, lat: lat, scale: 1}
}

// SetBandwidthScale throttles the link.
func (l *NVLink) SetBandwidthScale(s float64) {
	if s <= 0 {
		panic("rdma: non-positive nvlink scale")
	}
	l.scale = s
}

// Send implements Link. NVLink transfers report all three stages at the
// completion instant (there is no separate ACK path on the fabric).
func (l *NVLink) Send(n int64, cb SendCallbacks) {
	start := l.nextFree
	if now := l.eng.Now(); start < now {
		start = now
	}
	dur := time.Duration(float64(n) / (l.bw * l.scale) * float64(time.Second))
	finish := start.Add(dur)
	l.nextFree = finish
	l.eng.At(finish, func() {
		if cb.OnTransmit != nil {
			cb.OnTransmit()
		}
	})
	l.eng.At(finish.Add(l.lat), func() {
		if cb.OnDeliver != nil {
			cb.OnDeliver()
		}
		if cb.OnCQE != nil {
			cb.OnCQE()
		}
	})
}

// Describe implements Link.
func (l *NVLink) Describe() (int, string) { return l.id, "nvlink" }
