package rdma

import (
	"testing"
	"time"

	"mycroft/internal/sim"
)

func pair(t *testing.T) (*sim.Engine, *NIC, *NIC, *QP) {
	t.Helper()
	eng := sim.NewEngine(1)
	a := NewNIC(eng, 0, "nic-a", DefaultNIC())
	b := NewNIC(eng, 1, "nic-b", DefaultNIC())
	return eng, a, b, NewQP(0, a, b)
}

func TestWriteDeliveryAndCQE(t *testing.T) {
	eng, a, b, qp := pair(t)
	_ = b
	var deliveredAt, cqeAt sim.Time = -1, -1
	qp.PostWrite(50_000_000, // 1ms at 50GB/s
		func() { deliveredAt = eng.Now() },
		func() { cqeAt = eng.Now() })
	eng.Run()
	if deliveredAt < 0 || cqeAt < 0 {
		t.Fatal("callbacks did not fire")
	}
	// transmit = 1ms + 1us setup; delivery adds 5us, CQE adds 10us.
	wantDeliver := sim.Time(time.Millisecond + 1*time.Microsecond + 5*time.Microsecond)
	if deliveredAt != wantDeliver {
		t.Fatalf("deliveredAt = %v, want %v", deliveredAt, wantDeliver)
	}
	if cqeAt != wantDeliver.Add(5*time.Microsecond) {
		t.Fatalf("cqeAt = %v, want %v", cqeAt, wantDeliver.Add(5*time.Microsecond))
	}
	if cqeAt <= deliveredAt {
		t.Fatal("CQE must trail delivery")
	}
	c := a.Counters()
	if c.WRsPosted != 1 || c.WRsCompleted != 1 || c.BytesSent != 50_000_000 || c.BytesAcked != 50_000_000 {
		t.Fatalf("counters = %+v", c)
	}
	if qp.Posted() != 1 || qp.Completed() != 1 || qp.BytesSent() != 50_000_000 {
		t.Fatalf("qp counters: posted=%d completed=%d bytes=%d", qp.Posted(), qp.Completed(), qp.BytesSent())
	}
}

func TestNICSerializesWRs(t *testing.T) {
	eng, _, _, qp := pair(t)
	var done []sim.Time
	for i := 0; i < 3; i++ {
		qp.PostWrite(50_000_000, nil, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	if len(done) != 3 {
		t.Fatalf("got %d CQEs, want 3", len(done))
	}
	// Each transmit is ~1ms; CQEs must be spaced ~1ms apart (serialized).
	for i := 1; i < 3; i++ {
		gap := done[i].Sub(done[i-1])
		if gap < 900*time.Microsecond || gap > 1100*time.Microsecond {
			t.Fatalf("CQE gap %d = %v, want ~1ms", i, gap)
		}
	}
}

func TestTwoQPsShareNIC(t *testing.T) {
	eng := sim.NewEngine(1)
	a := NewNIC(eng, 0, "a", DefaultNIC())
	b := NewNIC(eng, 1, "b", DefaultNIC())
	c := NewNIC(eng, 2, "c", DefaultNIC())
	q1 := NewQP(1, a, b)
	q2 := NewQP(2, a, c)
	var t1, t2 sim.Time
	q1.PostWrite(50_000_000, nil, func() { t1 = eng.Now() })
	q2.PostWrite(50_000_000, nil, func() { t2 = eng.Now() })
	eng.Run()
	// Sharing one 50GB/s NIC, the second flow finishes ~1ms after the first.
	if t2.Sub(t1) < 900*time.Microsecond {
		t.Fatalf("flows did not serialize on shared NIC: t1=%v t2=%v", t1, t2)
	}
}

func TestDownNICStallsSilently(t *testing.T) {
	eng, a, _, qp := pair(t)
	a.SetDown(true)
	fired := false
	qp.PostWrite(1000, func() { fired = true }, nil)
	eng.RunFor(10 * time.Second)
	if fired {
		t.Fatal("delivery fired while NIC down")
	}
	if !a.Down() {
		t.Fatal("Down() = false")
	}
	// Gray failure: the WR was accepted (posted counter moves) but nothing
	// completes — exactly what an Op-level tracer cannot see.
	if a.Counters().WRsPosted != 1 || a.Counters().WRsCompleted != 0 {
		t.Fatalf("counters = %+v", a.Counters())
	}
}

func TestRecoveryReplaysPending(t *testing.T) {
	eng, a, _, qp := pair(t)
	a.SetDown(true)
	var delivered []int
	for i := 0; i < 3; i++ {
		i := i
		qp.PostWrite(1000, func() { delivered = append(delivered, i) }, nil)
	}
	eng.After(2*time.Second, func() { a.SetDown(false) })
	eng.Run()
	if len(delivered) != 3 {
		t.Fatalf("delivered %d writes after recovery, want 3", len(delivered))
	}
	for i, d := range delivered {
		if d != i {
			t.Fatalf("recovery replay out of order: %v", delivered)
		}
	}
	if eng.Now() < sim.Time(2*time.Second) {
		t.Fatal("deliveries completed before recovery")
	}
}

func TestFlapFor(t *testing.T) {
	eng, a, _, qp := pair(t)
	a.FlapFor(time.Second)
	var deliveredAt sim.Time = -1
	qp.PostWrite(1000, func() { deliveredAt = eng.Now() }, nil)
	eng.Run()
	if deliveredAt < sim.Time(time.Second) {
		t.Fatalf("delivery at %v, want after 1s flap", deliveredAt)
	}
	if a.Down() {
		t.Fatal("NIC still down after flap window")
	}
}

func TestBandwidthScale(t *testing.T) {
	eng, a, _, qp := pair(t)
	a.SetBandwidthScale(0.5)
	if a.BandwidthScale() != 0.5 {
		t.Fatal("scale not recorded")
	}
	var done sim.Time
	qp.PostWrite(50_000_000, nil, func() { done = eng.Now() })
	eng.Run()
	// At half bandwidth the 1ms transfer takes ~2ms.
	if done < sim.Time(1900*time.Microsecond) || done > sim.Time(2200*time.Microsecond) {
		t.Fatalf("done = %v, want ~2ms", done)
	}
}

func TestLossInflatesGoodput(t *testing.T) {
	eng, a, _, qp := pair(t)
	a.SetLossRate(0.5)
	var done sim.Time
	qp.PostWrite(50_000_000, nil, func() { done = eng.Now() })
	eng.Run()
	if done < sim.Time(1900*time.Microsecond) {
		t.Fatalf("done = %v, want ~2ms with 50%% loss", done)
	}
}

func TestFaultHookValidation(t *testing.T) {
	_, a, _, qp := pair(t)
	for name, fn := range map[string]func(){
		"zero bw scale":  func() { a.SetBandwidthScale(0) },
		"neg bw scale":   func() { a.SetBandwidthScale(-1) },
		"loss = 1":       func() { a.SetLossRate(1) },
		"neg loss":       func() { a.SetLossRate(-0.1) },
		"neg write size": func() { qp.PostWrite(-5, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewNICValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-bandwidth NIC did not panic")
		}
	}()
	NewNIC(sim.NewEngine(1), 0, "bad", NICConfig{Bandwidth: 0})
}

func TestQPAsLink(t *testing.T) {
	eng, _, _, qp := pair(t)
	l := qp.AsLink()
	id, kind := l.Describe()
	if id != 0 || kind != "rdma" {
		t.Fatalf("Describe = (%d, %s)", id, kind)
	}
	var stages []string
	l.Send(100, SendCallbacks{
		OnTransmit: func() { stages = append(stages, "tx") },
		OnDeliver:  func() { stages = append(stages, "deliver") },
		OnCQE:      func() { stages = append(stages, "cqe") },
	})
	eng.Run()
	want := []string{"tx", "deliver", "cqe"}
	if len(stages) != 3 || stages[0] != want[0] || stages[1] != want[1] || stages[2] != want[2] {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
}

func TestWireLossTransmitsButNeverCompletes(t *testing.T) {
	eng, a, _, qp := pair(t)
	a.SetWireLoss(true)
	if !a.WireLoss() {
		t.Fatal("WireLoss() = false")
	}
	var tx, deliver, cqe bool
	qp.Post(1000, SendCallbacks{
		OnTransmit: func() { tx = true },
		OnDeliver:  func() { deliver = true },
		OnCQE:      func() { cqe = true },
	})
	eng.RunFor(10 * time.Second)
	if !tx {
		t.Fatal("transmit stage did not fire under wire loss")
	}
	if deliver || cqe {
		t.Fatal("delivery or CQE fired despite wire loss")
	}
	// The signature: BytesSent advances, BytesAcked does not.
	c := a.Counters()
	if c.BytesSent != 1000 || c.BytesAcked != 0 {
		t.Fatalf("counters = %+v, want sent=1000 acked=0", c)
	}
}

func TestNVLink(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewNVLink(eng, 7, 200e9, time.Microsecond)
	id, kind := l.Describe()
	if id != 7 || kind != "nvlink" {
		t.Fatalf("Describe = (%d, %s)", id, kind)
	}
	var done sim.Time
	l.Send(200_000_000, SendCallbacks{OnDeliver: func() { done = eng.Now() }}) // 1ms at 200GB/s
	eng.Run()
	if done < sim.Time(time.Millisecond) || done > sim.Time(time.Millisecond+10*time.Microsecond) {
		t.Fatalf("nvlink delivery at %v, want ~1ms", done)
	}
}

func TestNVLinkSerializationAndScale(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewNVLink(eng, 0, 200e9, 0)
	l.SetBandwidthScale(0.5)
	var times []sim.Time
	l.Send(100_000_000, SendCallbacks{OnDeliver: func() { times = append(times, eng.Now()) }})
	l.Send(100_000_000, SendCallbacks{OnDeliver: func() { times = append(times, eng.Now()) }})
	eng.Run()
	if len(times) != 2 {
		t.Fatal("sends incomplete")
	}
	// Each 100MB at 100GB/s effective = 1ms; serialized => 1ms, 2ms.
	if times[0] != sim.Time(time.Millisecond) || times[1] != sim.Time(2*time.Millisecond) {
		t.Fatalf("times = %v, want [1ms 2ms]", times)
	}
}

func TestNVLinkValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-bw nvlink did not panic")
			}
		}()
		NewNVLink(eng, 0, 0, 0)
	}()
	l := NewNVLink(eng, 0, 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero nvlink scale did not panic")
		}
	}()
	l.SetBandwidthScale(0)
}

func TestSetDownIdempotent(t *testing.T) {
	eng, a, _, qp := pair(t)
	a.SetDown(true)
	a.SetDown(true) // no-op
	fired := false
	qp.PostWrite(10, func() { fired = true }, nil)
	a.SetDown(false)
	a.SetDown(false) // no-op; must not replay twice
	eng.Run()
	if !fired {
		t.Fatal("write not delivered after recovery")
	}
	if qp.Completed() != 1 {
		t.Fatalf("completed = %d, want 1 (double replay?)", qp.Completed())
	}
}
