// Package logdiag is the structured training-log diagnosis channel: a
// tracepoint-free path to a fault verdict built from nothing but the log
// lines ranks already emit. Lines are clustered online into templates
// (token-hash templating: variable tokens collapse to a wildcard), each
// template keeps a per-rank rate series over a sliding window, and a
// cross-rank divergence score separates "one template spiking on a few
// ranks" (a localized fault) from fleet-wide chatter (a phase change every
// rank goes through). Dominant anomalous templates map onto Mycroft's
// existing fault-category vocabulary so verdicts flow through the standard
// Report/Chain path — the L4 result (PAPERS.md) that training logs alone
// localize most large-scale failures.
package logdiag

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// Line is one structured training-log line on the ingest path.
type Line struct {
	Rank  topo.Rank
	At    sim.Time
	Level string // "info", "warn" or "error" (anything else reads as info)
	Text  string
}

// Config tunes the detector. Zero values take defaults.
type Config struct {
	// Window is the rate-series look-back. Default 15 s.
	Window time.Duration
	// MinCount: occurrences (in window, on affected ranks) before a template
	// can be anomalous. Default 3.
	MinCount int
	// MaxRankFrac: an anomaly must concentrate on at most this fraction of
	// the world — fleet-wide spikes are phase changes, not faults.
	// Default 0.5.
	MaxRankFrac float64
	// DomFrac: the affected ranks must carry at least this fraction of the
	// template's windowed occurrences. Default 0.6.
	DomFrac float64
	// MinScore gates reporting. Default 0.25.
	MinScore float64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 15 * time.Second
	}
	if c.MinCount <= 0 {
		c.MinCount = 3
	}
	if c.MaxRankFrac <= 0 {
		c.MaxRankFrac = 0.5
	}
	if c.DomFrac <= 0 {
		c.DomFrac = 0.6
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.25
	}
	return c
}

// Template is one online log-template cluster.
type Template struct {
	ID    uint64
	Text  string // templated form, variable tokens as <*>
	Level string // highest severity seen for this template
	Total uint64 // lifetime occurrences

	// byRank holds the in-window occurrence timestamps per rank, pruned
	// lazily on ingest and analysis.
	byRank map[topo.Rank][]sim.Time
}

// Anomaly is one cross-rank divergence finding: a template spiking on a
// small set of ranks.
type Anomaly struct {
	TemplateID uint64
	Template   string
	Level      string
	// Rank is the dominant rank (most in-window occurrences; lowest rank
	// breaks ties deterministically). Ranks is the full affected set, sorted.
	Rank  topo.Rank
	Ranks []topo.Rank
	// Count is the windowed occurrences on affected ranks; Fleet across all.
	Count int
	Fleet int
	// Score is the divergence score in (0, 1]: concentration × rank-focus ×
	// severity weight.
	Score float64
	// Category is the mapped fault-category verdict for this template.
	Category core.Category
	At       sim.Time
}

// Detector clusters lines online and scores cross-rank divergence.
type Detector struct {
	world     int
	cfg       Config
	templates map[uint64]*Template
	ingested  uint64
	lastAt    sim.Time
}

// New builds a detector for a world-size-rank job.
func New(world int, cfg Config) *Detector {
	if world < 1 {
		world = 1
	}
	return &Detector{world: world, cfg: cfg.withDefaults(), templates: make(map[uint64]*Template)}
}

// TemplateOf renders the token-hash template of a log line: tokens carrying
// digits (ids, addresses, counters) collapse to the <*> wildcard, so "NIC
// rnic5 down" and "NIC rnic12 down" cluster together.
func TemplateOf(text string) string {
	fields := strings.Fields(text)
	for i, f := range fields {
		if hasDigit(f) {
			fields[i] = "<*>"
		}
	}
	return strings.Join(fields, " ")
}

// TemplateID hashes a templated line to its cluster id.
func TemplateID(template string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(template))
	return h.Sum64()
}

func hasDigit(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

func severityWeight(level string) float64 {
	switch level {
	case "error":
		return 1.0
	case "warn":
		return 0.7
	default:
		return 0.3
	}
}

// severityRank orders levels so a template keeps its highest severity.
func severityRank(level string) int {
	switch level {
	case "error":
		return 2
	case "warn":
		return 1
	default:
		return 0
	}
}

// Ingest folds one line into its template cluster.
func (d *Detector) Ingest(l Line) {
	d.ingested++
	if l.At > d.lastAt {
		d.lastAt = l.At
	}
	tpl := TemplateOf(l.Text)
	id := TemplateID(tpl)
	t := d.templates[id]
	if t == nil {
		t = &Template{ID: id, Text: tpl, Level: normLevel(l.Level), byRank: make(map[topo.Rank][]sim.Time)}
		d.templates[id] = t
	}
	if severityRank(normLevel(l.Level)) > severityRank(t.Level) {
		t.Level = normLevel(l.Level)
	}
	t.Total++
	t.byRank[l.Rank] = pruneWindow(append(t.byRank[l.Rank], l.At), l.At, d.cfg.Window)
}

func normLevel(l string) string {
	switch l {
	case "warn", "error":
		return l
	default:
		return "info"
	}
}

func pruneWindow(ts []sim.Time, now sim.Time, w time.Duration) []sim.Time {
	cut := now.Add(-sim.Duration(w))
	i := 0
	for i < len(ts) && ts[i] < cut {
		i++
	}
	if i > 0 {
		ts = append(ts[:0], ts[i:]...)
	}
	return ts
}

// Ingested returns lifetime lines folded in.
func (d *Detector) Ingested() uint64 { return d.ingested }

// Templates returns the number of live template clusters.
func (d *Detector) Templates() int { return len(d.templates) }

// Analyze scores every template's cross-rank divergence at virtual time now
// and returns the anomalies above threshold, strongest first (template text
// breaks score ties deterministically).
func (d *Detector) Analyze(now sim.Time) []Anomaly {
	ids := make([]uint64, 0, len(d.templates))
	for id := range d.templates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return d.templates[ids[i]].Text < d.templates[ids[j]].Text })

	var out []Anomaly
	for _, id := range ids {
		t := d.templates[id]
		if a, ok := d.scoreTemplate(t, now); ok {
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Template < out[j].Template
	})
	return out
}

// scoreTemplate computes the divergence score of one template: how strongly
// its windowed occurrences concentrate on a small subset of ranks.
func (d *Detector) scoreTemplate(t *Template, now sim.Time) (Anomaly, bool) {
	type rankCount struct {
		rank  topo.Rank
		count int
	}
	var counts []rankCount
	fleet := 0
	for r, ts := range t.byRank {
		ts = pruneWindow(ts, now, d.cfg.Window)
		t.byRank[r] = ts
		if len(ts) > 0 {
			counts = append(counts, rankCount{r, len(ts)})
			fleet += len(ts)
		}
	}
	if fleet < d.cfg.MinCount {
		return Anomaly{}, false
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count > counts[j].count
		}
		return counts[i].rank < counts[j].rank
	})

	// Affected set: the smallest count-descending prefix carrying DomFrac of
	// the fleet occurrences.
	affected, carried := []rankCount(nil), 0
	for _, rc := range counts {
		affected = append(affected, rc)
		carried += rc.count
		if float64(carried) >= d.cfg.DomFrac*float64(fleet) {
			break
		}
	}
	rankFrac := float64(len(affected)) / float64(d.world)
	if rankFrac > d.cfg.MaxRankFrac {
		return Anomaly{}, false // fleet-wide: a phase change, not a fault
	}
	if carried < d.cfg.MinCount {
		return Anomaly{}, false
	}
	concentration := float64(carried) / float64(fleet)
	score := concentration * (1 - rankFrac) * severityWeight(t.Level)
	if score < d.cfg.MinScore {
		return Anomaly{}, false
	}
	ranks := make([]topo.Rank, len(affected))
	for i, rc := range affected {
		ranks[i] = rc.rank
	}
	dominant := affected[0].rank
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	return Anomaly{
		TemplateID: t.ID, Template: t.Text, Level: t.Level,
		Rank: dominant, Ranks: ranks, Count: carried, Fleet: fleet,
		Score: score, Category: MapCategory(t.Text), At: now,
	}, true
}

// categoryRule maps template keywords onto the fault-category vocabulary.
// First match wins, so the more specific subsystems come first.
var categoryRules = []struct {
	keywords []string
	cat      core.Category
}{
	{[]string{"rdma", "roce", "infiniband"}, core.CatNetworkSendPath},
	{[]string{"pcie", "dma", "staging"}, core.CatPCIeDegrade},
	{[]string{"proxy"}, core.CatProxyCrash},
	{[]string{"throttl", "congest", "retrans", "bandwidth", "degrad"}, core.CatNetworkDegrade},
	{[]string{"nic", "rnic", "link", "rdma", "qp ", "port", "cable", "net"}, core.CatNetworkSendPath},
	{[]string{"xid", "ecc", "cuda", "gpu", "kernel", "copy engine"}, core.CatGPUHang},
	{[]string{"slow", "straggl", "late"}, core.CatComputeStraggler},
	{[]string{"dataloader", "checkpoint", "python", "stack", "launch"}, core.CatNotLaunched},
}

// MapCategory maps a template's text onto the existing fault-category
// vocabulary by keyword, CatUnknown when nothing matches.
func MapCategory(template string) core.Category {
	lower := strings.ToLower(template)
	for _, rule := range categoryRules {
		for _, kw := range rule.keywords {
			if strings.Contains(lower, kw) {
				return rule.cat
			}
		}
	}
	return core.CatUnknown
}

func (a Anomaly) String() string {
	return fmt.Sprintf("[%v] log anomaly: %q (%s) on rank %d (%d/%d in window, score %.2f) → %s",
		a.At, a.Template, a.Level, a.Rank, a.Count, a.Fleet, a.Score, a.Category)
}
