package logdiag

import (
	"fmt"
	"testing"
	"time"

	"mycroft/internal/core"
	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

func at(d time.Duration) sim.Time { return sim.Time(d) }

func TestTemplateClustering(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{"NIC rnic5 down: send queue stalled", "NIC rnic12 down: send queue stalled", true},
		{"iteration 100 done in 2.5s", "iteration 2000 done in 2.7s", true},
		{"NIC rnic5 down", "GPU gpu5 hang", false},
		{"dataloader fetch ok", "dataloader fetch ok", true},
	}
	for _, c := range cases {
		sa, sb := TemplateOf(c.a), TemplateOf(c.b)
		if (sa == sb) != c.same {
			t.Errorf("TemplateOf(%q)=%q vs TemplateOf(%q)=%q, same=%v want %v", c.a, sa, c.b, sb, sa == sb, c.same)
		}
		if (TemplateID(sa) == TemplateID(sb)) != c.same {
			t.Errorf("TemplateID mismatch for %q vs %q", c.a, c.b)
		}
	}
}

func TestDetectorFlagsLocalizedErrorSpike(t *testing.T) {
	d := New(8, Config{})
	// Fleet-wide info chatter: every rank logs an iteration line each second.
	for sec := 0; sec < 12; sec++ {
		for r := 0; r < 8; r++ {
			d.Ingest(Line{Rank: topo.Rank(r), At: at(time.Duration(sec) * time.Second),
				Level: "info", Text: fmt.Sprintf("iteration %d done in 2.5s", sec)})
		}
	}
	// Rank 5 spikes an error template.
	for i := 0; i < 6; i++ {
		d.Ingest(Line{Rank: 5, At: at(time.Duration(6+i) * time.Second),
			Level: "error", Text: fmt.Sprintf("NIC rnic5 down: send queue stalled wr=%d", i)})
	}
	got := d.Analyze(at(12 * time.Second))
	if len(got) != 1 {
		t.Fatalf("Analyze = %d anomalies (%v), want exactly 1", len(got), got)
	}
	a := got[0]
	if a.Rank != 5 {
		t.Errorf("dominant rank = %d, want 5", a.Rank)
	}
	if a.Category != core.CatNetworkSendPath {
		t.Errorf("category = %s, want %s", a.Category, core.CatNetworkSendPath)
	}
	if a.Level != "error" {
		t.Errorf("level = %s, want error", a.Level)
	}
	if a.Score <= 0 || a.Score > 1 {
		t.Errorf("score = %v, want (0,1]", a.Score)
	}
}

func TestDetectorIgnoresFleetWideSpike(t *testing.T) {
	d := New(8, Config{})
	// Every rank logs the same warn template: a phase change, not a fault.
	for sec := 0; sec < 10; sec++ {
		for r := 0; r < 8; r++ {
			d.Ingest(Line{Rank: topo.Rank(r), At: at(time.Duration(sec) * time.Second),
				Level: "warn", Text: "gradient allreduce retry busy"})
		}
	}
	if got := d.Analyze(at(10 * time.Second)); len(got) != 0 {
		t.Fatalf("fleet-wide template flagged: %v", got)
	}
}

func TestDetectorWindowExpiry(t *testing.T) {
	d := New(4, Config{Window: 5 * time.Second})
	for i := 0; i < 6; i++ {
		d.Ingest(Line{Rank: 1, At: at(time.Duration(i) * time.Second), Level: "error", Text: "GPU xid 79 error"})
	}
	if got := d.Analyze(at(6 * time.Second)); len(got) == 0 {
		t.Fatal("fresh spike not flagged")
	}
	// 30 s later the window is empty: the anomaly must have aged out.
	if got := d.Analyze(at(36 * time.Second)); len(got) != 0 {
		t.Fatalf("expired spike still flagged: %v", got)
	}
}

func TestDetectorDeterministicOrder(t *testing.T) {
	mk := func() []Anomaly {
		d := New(8, Config{})
		for i := 0; i < 5; i++ {
			d.Ingest(Line{Rank: 2, At: at(time.Duration(i) * time.Second), Level: "error", Text: "NIC rnic2 link flap"})
			d.Ingest(Line{Rank: 6, At: at(time.Duration(i) * time.Second), Level: "error", Text: "GPU gpu6 xid 79"})
		}
		return d.Analyze(at(5 * time.Second))
	}
	a, b := mk(), mk()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("want 2 anomalies, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TemplateID != b[i].TemplateID || a[i].Rank != b[i].Rank {
			t.Fatalf("analysis order not deterministic: %v vs %v", a, b)
		}
	}
}

func TestMapCategory(t *testing.T) {
	cases := []struct {
		text string
		want core.Category
	}{
		{"NIC <*> down: send queue stalled", core.CatNetworkSendPath},
		{"rdma qp <*> timeout retry exceeded", core.CatNetworkSendPath},
		{"port <*> bandwidth throttled to <*>", core.CatNetworkDegrade},
		{"GPU <*> xid <*> fatal", core.CatGPUHang},
		{"cuda launch failure on device <*>", core.CatGPUHang},
		{"pcie link width degraded to x<*>", core.CatPCIeDegrade},
		{"proxy thread exited unexpectedly", core.CatProxyCrash},
		{"dataloader worker <*> stuck", core.CatNotLaunched},
		{"compute step running slow on rank <*>", core.CatComputeStraggler},
		{"mysterious flux capacitor event", core.CatUnknown},
	}
	for _, c := range cases {
		if got := MapCategory(c.text); got != c.want {
			t.Errorf("MapCategory(%q) = %s, want %s", c.text, got, c.want)
		}
	}
}

func BenchmarkLogIngest(b *testing.B) {
	d := New(32, Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Ingest(Line{
			Rank: topo.Rank(i % 32), At: sim.Time(i) * sim.Time(time.Millisecond),
			Level: "info", Text: "iteration 1234 done in 2.5s loss 0.25",
		})
	}
}

func BenchmarkTemplateCluster(b *testing.B) {
	lines := []string{
		"iteration 1234 done in 2.5s loss 0.25",
		"NIC rnic5 down: send queue stalled wr=17",
		"GPU gpu3 xid 79 fallen off the bus",
		"checkpoint shard 12 written in 1.2s",
		"allreduce comm 7 seq 42 launched",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TemplateID(TemplateOf(lines[i%len(lines)]))
	}
}
