package logdiag

import (
	"strings"
	"testing"
	"time"

	"mycroft/internal/sim"
	"mycroft/internal/topo"
)

// FuzzTemplateCluster throws arbitrary log text at the templater and the
// detector and checks the clustering invariants: templating is a pure
// function (same text, same template, same id), templates never retain a
// digit-bearing token, and ingest/analyze never panic or violate basic
// accounting on any input.
func FuzzTemplateCluster(f *testing.F) {
	f.Add("NIC rnic5 down: send queue stalled", uint8(3), uint8(1))
	f.Add("iteration 100 done in 2.5s", uint8(0), uint8(0))
	f.Add("", uint8(7), uint8(2))
	f.Add("   \t\n  ", uint8(1), uint8(1))
	f.Add("GPU gpu3 xid 79 fallen off the bus", uint8(2), uint8(0))
	f.Add("<*> already templated <*>", uint8(4), uint8(2))
	f.Add("unicode ° ± ∞ rank 5 weirdness", uint8(5), uint8(1))

	levels := []string{"info", "warn", "error", "verbose"}
	f.Fuzz(func(t *testing.T, text string, rank uint8, level uint8) {
		tpl := TemplateOf(text)
		if tpl != TemplateOf(text) {
			t.Fatalf("TemplateOf not deterministic for %q", text)
		}
		if TemplateID(tpl) != TemplateID(tpl) {
			t.Fatal("TemplateID not deterministic")
		}
		// Idempotence: templating a template changes nothing.
		if again := TemplateOf(tpl); again != tpl {
			t.Fatalf("TemplateOf not idempotent: %q -> %q", tpl, again)
		}
		for _, tok := range strings.Fields(tpl) {
			if tok != "<*>" && hasDigit(tok) {
				t.Fatalf("template %q retains digit token %q", tpl, tok)
			}
		}

		d := New(16, Config{})
		for i := 0; i < 3; i++ {
			d.Ingest(Line{
				Rank: topo.Rank(rank % 16), At: sim.Time(i) * sim.Time(time.Second),
				Level: levels[int(level)%len(levels)], Text: text,
			})
		}
		if d.Ingested() != 3 {
			t.Fatalf("Ingested = %d, want 3", d.Ingested())
		}
		if d.Templates() != 1 {
			t.Fatalf("Templates = %d after one distinct line, want 1", d.Templates())
		}
		for _, a := range d.Analyze(sim.Time(3 * time.Second)) {
			if a.Score <= 0 || a.Score > 1 {
				t.Fatalf("score %v out of (0,1]", a.Score)
			}
			if a.Count > a.Fleet {
				t.Fatalf("affected count %d exceeds fleet count %d", a.Count, a.Fleet)
			}
		}
	})
}
